#include "isex/reconfig/fabric_sim.hpp"

#include <algorithm>

#include "isex/reconfig/architectures.hpp"

namespace isex::reconfig {

FabricSimResult simulate_fabric(const Problem& p, const Solution& s,
                                FabricCostModel model, double rho_per_area) {
  FabricSimResult res;
  const int k = std::max(1, s.num_configs());
  res.loads_per_config.assign(static_cast<std::size_t>(k), 0);
  res.entries_per_config.assign(static_cast<std::size_t>(k), 0);

  // Per-entry gain of each loop: the version's total gain spread uniformly
  // over its trace occurrences (the Problem's gains are whole-run figures).
  std::vector<long> occurrences(p.loops.size(), 0);
  for (int l : p.trace) ++occurrences[static_cast<std::size_t>(l)];
  std::vector<double> per_entry(p.loops.size(), 0);
  for (std::size_t l = 0; l < p.loops.size(); ++l) {
    const double total =
        p.loops[l].versions[static_cast<std::size_t>(s.version[l])].gain;
    per_entry[l] = occurrences[l] > 0
                       ? total / static_cast<double>(occurrences[l])
                       : 0.0;
  }
  std::vector<double> areas(static_cast<std::size_t>(k), 0);
  for (int c = 0; c < k; ++c)
    areas[static_cast<std::size_t>(c)] = config_area(p, s, c);

  int resident = -1;  // configuration loaded in the fabric
  for (int l : p.trace) {
    const int c = s.config[static_cast<std::size_t>(l)];
    if (c < 0) continue;  // software loop: fabric untouched, no gain either
    if (resident != c) {
      if (resident >= 0) {  // first load is free (boot-time configuration)
        ++res.reconfigurations;
        ++res.loads_per_config[static_cast<std::size_t>(c)];
        res.reconfig_cycles += model == FabricCostModel::kFullReload
                                   ? p.reconfig_cost
                                   : rho_per_area *
                                         areas[static_cast<std::size_t>(c)];
      }
      resident = c;
    }
    ++res.entries_per_config[static_cast<std::size_t>(c)];
    res.gained_cycles += per_entry[static_cast<std::size_t>(l)];
  }
  // Loops with a hardware version but no trace occurrences still contribute
  // their whole-run gain (the analytic model counts them; e.g. loops hotter
  // than the trace sampling).
  for (std::size_t l = 0; l < p.loops.size(); ++l)
    if (s.config[l] >= 0 && occurrences[l] == 0)
      res.gained_cycles +=
          p.loops[l].versions[static_cast<std::size_t>(s.version[l])].gain;

  res.net_gain = res.gained_cycles - res.reconfig_cycles;
  return res;
}

}  // namespace isex::reconfig
