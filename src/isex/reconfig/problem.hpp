// The Chapter 6 partitioning problem: spatial + temporal partitioning of
// custom-instruction sets (CIS) under runtime reconfiguration.
//
// Input: hot loops, each with CIS versions trading hardware area against
// performance gain (version 0 is always the pure-software point), a loop
// trace capturing control flow among the hot loops, the per-configuration
// fabric area MaxA, and the cost rho of one full-fabric reconfiguration.
// A solution picks one version per loop and clubs the hardware-accelerated
// loops into configurations; its net gain is the summed version gains minus
// rho times the number of configuration switches the trace induces.
#pragma once

#include <string>
#include <vector>

#include "isex/partition/kway.hpp"
#include "isex/util/rng.hpp"

namespace isex::reconfig {

struct CisVersion {
  double area = 0;  // fabric area consumed
  double gain = 0;  // cycles saved over the loop's software execution
};

struct HotLoop {
  std::string name;
  std::vector<CisVersion> versions;  // versions[0] == {0, 0} (software)

  int best_version() const;  // max-gain version index
};

struct Problem {
  std::vector<HotLoop> loops;
  std::vector<int> trace;     // execution sequence of hot-loop entries
  double max_area = 0;        // fabric area per configuration (MaxA)
  double reconfig_cost = 0;   // rho
  double area_grid = 1.0;     // DP quantization for spatial selection
};

struct Solution {
  std::vector<int> version;  // per loop; 0 = software
  std::vector<int> config;   // per loop; -1 = software (no fabric use)

  int num_configs() const;
};

/// Number of configuration switches the trace induces: software loops are
/// skipped; each adjacent pair of hardware loops in different configurations
/// costs one reconfiguration (the initial load is not counted, matching the
/// Fig 6.4 accounting).
long count_reconfigurations(const Problem& p, const Solution& s);

/// Summed gains of the selected versions.
double raw_gain(const Problem& p, const Solution& s);

/// raw_gain - reconfigurations * rho (Eq 6.1).
double net_gain(const Problem& p, const Solution& s);

/// Structural validity: consistent vectors, every configuration fits MaxA,
/// and version/config agreement (version>0 iff config>=0).
bool feasible(const Problem& p, const Solution& s);

/// All-software solution (zero gain, zero reconfigurations).
Solution software_solution(const Problem& p);

/// Reconfiguration-cost graph over the loops listed in `hw_loops`: edge
/// weight = number of adjacent occurrences in the trace after erasing all
/// other loops (Fig 6.6). Vertex v of the result corresponds to hw_loops[v]
/// and carries vertex_weight[v].
partition::WeightedGraph build_rcg(const Problem& p,
                                   const std::vector<int>& hw_loops,
                                   const std::vector<double>& vertex_weight);

/// Synthetic instance generator (Section 6.4.1): n hot loops with 1-10
/// versions each (gain 1000-10000, area 1-100, gain increasing with area),
/// and a phased random trace that gives the partitioner locality to exploit.
Problem synthetic_problem(int num_loops, util::Rng& rng);

}  // namespace isex::reconfig
