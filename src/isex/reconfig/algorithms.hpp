// The three Chapter 6 partitioners compared in Table 6.1 / Figs 6.8, 6.10:
//   * iterative_partition (Algorithm 6) — the paper's contribution: sweep the
//     configuration count k, and for each k run global spatial selection
//     (budget k*MaxA), temporal k-way partitioning of the reconfiguration
//     cost graph (with and without CIS-informed vertex weights, the P / P'
//     pair), and a local spatial patch-up per configuration;
//   * greedy_partition (Algorithm 8) — builds one configuration at a time,
//     always adding the CIS version with the best expected net profit;
//   * exhaustive_partition — optimal via enumeration of all set partitions
//     (Bell-number blow-up past ~12 loops).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "isex/reconfig/problem.hpp"

namespace isex::reconfig {

/// Algorithm 6. Deterministic given rng.
Solution iterative_partition(const Problem& p, util::Rng& rng);

/// Algorithm 8.
Solution greedy_partition(const Problem& p);

struct ExhaustiveResult {
  Solution solution;
  bool completed = true;        // false if the partition budget ran out
  std::uint64_t visited = 0;    // set partitions evaluated
};

/// Optimal solution by set-partition enumeration; stops (completed=false)
/// after max_partitions partitions.
ExhaustiveResult exhaustive_partition(const Problem& p,
                                      std::uint64_t max_partitions = 50'000'000);

/// Builds a Solution from a temporal grouping by running the local spatial
/// DP (Algorithm 7) on every group under MaxA. Exposed for the architecture
/// variants and for custom evaluation models.
Solution solution_from_groups(const Problem& p,
                              const std::vector<std::vector<int>>& groups);

/// Single-loop-move local search over temporal groups under an arbitrary
/// objective (higher is better). Used with net_gain for the Chapter 6 model
/// and with partial_net_gain for the partial-reconfiguration variant.
Solution polish_solution(
    const Problem& p, Solution s,
    const std::function<double(const Problem&, const Solution&)>& objective);

}  // namespace isex::reconfig
