// The JPEG case study of Section 6.4.2 (Table 6.2 / Fig 6.10).
//
// A JPEG encode + decode pipeline runs eight hot loops (colour conversion,
// forward DCT, quantization, Huffman coding, and their decode-side
// counterparts). Each loop's CIS versions are derived by running the real
// identification/selection pipeline on the corresponding kernel blocks of
// the cjpeg/djpeg workloads; the loop trace follows the per-MCU phase
// structure of the codec. The reconfiguration cost rho is a parameter so the
// Fig 6.10 bench can sweep it.
#pragma once

#include "isex/reconfig/problem.hpp"

namespace isex::reconfig {

/// Builds the JPEG partitioning problem. `mcu_repetitions` controls the
/// trace length (phases per image); `max_versions` thins each loop's
/// configuration curve (Table 6.2 reports a handful of versions per loop).
Problem jpeg_case_study(double reconfig_cost, double max_area,
                        int mcu_repetitions = 48, int max_versions = 5);

}  // namespace isex::reconfig
