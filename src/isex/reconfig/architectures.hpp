// Extensible-processor architecture variants (Fig 2.2) as reconfiguration
// cost models — the extension study DESIGN.md calls out.
//
//   (a) static            — one configuration, never reloaded (the k=1 case);
//   (b) temporal-only     — a single custom instruction set resident at a
//                           time: every hot loop with hardware support is its
//                           own configuration (no spatial sharing);
//   (c) temporal+spatial  — the Chapter 6 model (full-fabric reload, constant
//                           rho), solved by iterative_partition;
//   (d) partial           — only the incoming configuration's area is
//                           (re)loaded: switching to configuration g costs
//                           rho_per_area * area(g).
// The variants share Problem/Solution; (d) only changes the evaluation, and
// partial_net_gain exposes it.
#pragma once

#include "isex/reconfig/problem.hpp"

namespace isex::reconfig {

/// (b): every loop that can profit gets its own configuration with its best
/// version that fits the fabric (no spatial clustering).
Solution temporal_only_solution(const Problem& p);

/// Fabric area occupied by one configuration of the solution.
double config_area(const Problem& p, const Solution& s, int config);

/// (d): net gain under partial reconfiguration — each switch to
/// configuration g costs rho_per_area * area(g) instead of the constant
/// p.reconfig_cost.
double partial_net_gain(const Problem& p, const Solution& s,
                        double rho_per_area);

/// Re-optimizes the temporal grouping for the partial-reconfiguration cost
/// model: runs the Chapter 6 iterative partitioner, then greedily re-splits /
/// merges groups under the area-proportional cost (cheap local search).
Solution iterative_partition_partial(const Problem& p, double rho_per_area,
                                     util::Rng& rng);

}  // namespace isex::reconfig
