// Trace-driven fabric simulation for Chapter 6 solutions.
//
// Replays the loop trace against a fabric state machine: entering a
// hardware loop whose configuration is not resident triggers a reload
// (full-fabric at cost rho, or area-proportional under the partial model).
// The analytic net_gain()/partial_net_gain() figures must match this
// event-by-event account exactly — the tests assert it — and the simulator
// additionally reports per-configuration residency statistics the analytic
// path cannot provide.
#pragma once

#include "isex/reconfig/problem.hpp"

namespace isex::reconfig {

enum class FabricCostModel { kFullReload, kPartial };

struct FabricSimResult {
  double gained_cycles = 0;        // cycle savings accumulated over the trace
  long reconfigurations = 0;       // reload events
  double reconfig_cycles = 0;      // total stall cycles
  double net_gain = 0;             // gained - stalls
  std::vector<long> loads_per_config;     // reload count per configuration
  std::vector<long> entries_per_config;   // hardware-loop entries served
};

FabricSimResult simulate_fabric(const Problem& p, const Solution& s,
                                FabricCostModel model = FabricCostModel::kFullReload,
                                double rho_per_area = 0);

}  // namespace isex::reconfig
