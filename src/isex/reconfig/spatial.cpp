#include "isex/reconfig/spatial.hpp"

#include <cmath>

namespace isex::reconfig {

std::vector<int> spatial_select(const Problem& p,
                                const std::vector<int>& loop_ids,
                                double budget) {
  const double grid = p.area_grid;
  const int cells = static_cast<int>(std::floor(budget / grid + 1e-9));
  const auto width = static_cast<std::size_t>(cells) + 1;
  const auto n = loop_ids.size();

  // g[i*width + a]: max gain of loops 0..i with quantized budget a;
  // choice[.]: version index achieving it.
  std::vector<double> g(n * width, 0);
  std::vector<int> choice(n * width, 0);
  for (std::size_t i = 0; i < n; ++i) {
    const HotLoop& loop = p.loops[static_cast<std::size_t>(loop_ids[i])];
    for (int a = 0; a <= cells; ++a) {
      double best = -1;
      int best_j = 0;
      for (std::size_t j = 0; j < loop.versions.size(); ++j) {
        const int w = static_cast<int>(
            std::ceil(loop.versions[j].area / grid - 1e-9));
        if (w > a) continue;
        const double below =
            i == 0 ? 0.0
                   : g[(i - 1) * width + static_cast<std::size_t>(a - w)];
        const double cand = loop.versions[j].gain + below;
        if (cand > best) {
          best = cand;
          best_j = static_cast<int>(j);
        }
      }
      g[i * width + static_cast<std::size_t>(a)] = best;
      choice[i * width + static_cast<std::size_t>(a)] = best_j;
    }
  }

  std::vector<int> version(n, 0);
  int a = cells;
  for (std::size_t i = n; i-- > 0;) {
    const int j = choice[i * width + static_cast<std::size_t>(a)];
    version[i] = j;
    const HotLoop& loop = p.loops[static_cast<std::size_t>(loop_ids[i])];
    a -= static_cast<int>(
        std::ceil(loop.versions[static_cast<std::size_t>(j)].area / grid -
                  1e-9));
  }
  return version;
}

}  // namespace isex::reconfig
