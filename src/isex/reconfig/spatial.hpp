// Spatial partitioning (Algorithm 7): select one CIS version per loop to
// maximize total gain under an area budget — the pseudo-polynomial grouped
// knapsack DP, with solution reconstruction. Used by the iterative
// partitioner in its global phase (budget k*MaxA over all loops) and local
// phase (budget MaxA per configuration).
#pragma once

#include "isex/reconfig/problem.hpp"

namespace isex::reconfig {

/// Chooses versions for the loops listed in `loop_ids`, maximizing summed
/// gain with summed area <= budget. Returns one version index per entry of
/// loop_ids (0 = software). Exact up to the problem's area grid.
std::vector<int> spatial_select(const Problem& p,
                                const std::vector<int>& loop_ids,
                                double budget);

}  // namespace isex::reconfig
