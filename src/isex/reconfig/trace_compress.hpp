// Grammar-based loop-trace compression (Section 6.1: "for longer loop
// traces, we can use lossless compression techniques (such as SEQUITUR) to
// compactly maintain the loop trace").
//
// We implement the Re-Pair scheme (Larsson & Moffat), a batch variant of the
// same grammar-compression family: the most frequent adjacent symbol pair is
// repeatedly replaced by a fresh nonterminal until every pair is unique.
// The payoff for the partitioners: the number of reconfigurations a
// configuration assignment induces can be counted directly on the grammar in
// O(|grammar|) — no expansion — via bottom-up (first, last, internal
// transitions) summaries per rule.
#pragma once

#include <vector>

#include "isex/reconfig/problem.hpp"

namespace isex::reconfig {

/// A straight-line grammar for a loop trace. Terminals are loop ids;
/// nonterminal k is encoded as -(k+1). Rule bodies only reference earlier
/// rules, so index order is a topological order.
struct TraceGrammar {
  std::vector<int> root;                   // compressed top-level sequence
  std::vector<std::vector<int>> rules;     // each expands to >= 2 symbols

  std::size_t size() const;                // total symbols stored
  std::vector<int> expand() const;         // reconstruct the original trace
};

/// Compresses a trace; lossless (expand() returns the input).
TraceGrammar compress_trace(const std::vector<int>& trace);

/// Reconfiguration count of solution s over the *compressed* trace, without
/// expansion; equals count_reconfigurations(p, s) when the grammar encodes
/// p.trace.
long count_reconfigurations(const TraceGrammar& g, const Problem& p,
                            const Solution& s);

}  // namespace isex::reconfig
