#include "isex/reconfig/algorithms.hpp"

#include <algorithm>
#include <numeric>

#include "isex/opt/set_partition.hpp"
#include "isex/reconfig/spatial.hpp"

namespace isex::reconfig {

namespace {

/// Builds a Solution from a temporal grouping: for every configuration, run
/// the local spatial DP under MaxA; loops whose local selection lands on the
/// software version leave the fabric.
Solution local_spatial(const Problem& p,
                       const std::vector<std::vector<int>>& groups) {
  Solution s = software_solution(p);
  int next_config = 0;
  for (const auto& group : groups) {
    if (group.empty()) continue;
    const auto versions = spatial_select(p, group, p.max_area);
    bool any_hw = false;
    for (std::size_t i = 0; i < group.size(); ++i) {
      if (versions[i] <= 0) continue;
      s.version[static_cast<std::size_t>(group[i])] = versions[i];
      s.config[static_cast<std::size_t>(group[i])] = next_config;
      any_hw = true;
    }
    if (any_hw) ++next_config;
  }
  return s;
}

/// Temporal partitioning of `hw_loops` into k groups via multilevel k-way
/// partitioning of the reconfiguration cost graph.
std::vector<std::vector<int>> temporal_partition(
    const Problem& p, const std::vector<int>& hw_loops,
    const std::vector<double>& vweight, int k, util::Rng& rng) {
  std::vector<std::vector<int>> groups(static_cast<std::size_t>(k));
  if (hw_loops.empty()) return groups;
  if (static_cast<int>(hw_loops.size()) <= k) {
    for (std::size_t i = 0; i < hw_loops.size(); ++i)
      groups[i].push_back(hw_loops[i]);
    return groups;
  }
  const auto rcg = build_rcg(p, hw_loops, vweight);
  const auto part = partition::kway_partition(rcg, k, rng);
  for (std::size_t v = 0; v < hw_loops.size(); ++v)
    groups[static_cast<std::size_t>(part[v])].push_back(hw_loops[v]);
  return groups;
}

/// Post-pass polish: single-loop moves between temporal groups (including
/// into software and into a fresh group), re-running the local spatial DP
/// only on the two touched groups. Compensates for the balance constraint
/// of the k-way partitioner, which cannot express very uneven
/// configurations.
Solution polish(const Problem& p, Solution s,
                const std::function<double(const Problem&, const Solution&)>&
                    objective) {
  const int n = static_cast<int>(p.loops.size());
  // Group membership lists; group index == configuration id. One spare
  // empty group at the end lets a move open a new configuration.
  std::vector<std::vector<int>> groups(
      static_cast<std::size_t>(s.num_configs()) + 1);
  std::vector<int> member_of(static_cast<std::size_t>(n), -1);
  for (int j = 0; j < n; ++j)
    if (s.config[static_cast<std::size_t>(j)] >= 0) {
      groups[static_cast<std::size_t>(s.config[static_cast<std::size_t>(j)])]
          .push_back(j);
      member_of[static_cast<std::size_t>(j)] =
          s.config[static_cast<std::size_t>(j)];
    }

  // (Re)selects versions for one group inside `sol`.
  auto reselect = [&](Solution& sol, const std::vector<int>& group, int gid) {
    const auto versions = spatial_select(p, group, p.max_area);
    for (std::size_t i = 0; i < group.size(); ++i) {
      const auto li = static_cast<std::size_t>(group[i]);
      sol.version[li] = versions[i];
      sol.config[li] = versions[i] > 0 ? gid : -1;
    }
  };

  double best_gain = objective(p, s);
  for (int pass = 0; pass < 3; ++pass) {
    bool improved = false;
    for (int l = 0; l < n; ++l) {
      const int src = member_of[static_cast<std::size_t>(l)];
      for (int target = -1; target < static_cast<int>(groups.size());
           ++target) {
        if (target == src) continue;
        Solution cand = s;
        std::vector<int> src_group, tgt_group;
        if (src >= 0) {
          src_group = groups[static_cast<std::size_t>(src)];
          src_group.erase(std::find(src_group.begin(), src_group.end(), l));
          reselect(cand, src_group, src);
        }
        if (target >= 0) {
          tgt_group = groups[static_cast<std::size_t>(target)];
          tgt_group.push_back(l);
          reselect(cand, tgt_group, target);
        } else {
          cand.version[static_cast<std::size_t>(l)] = 0;
          cand.config[static_cast<std::size_t>(l)] = -1;
        }
        const double g = objective(p, cand);
        if (g > best_gain + 1e-9) {
          best_gain = g;
          s = std::move(cand);
          if (src >= 0) groups[static_cast<std::size_t>(src)] = src_group;
          if (target >= 0) {
            groups[static_cast<std::size_t>(target)] = tgt_group;
            if (target + 1 == static_cast<int>(groups.size()))
              groups.emplace_back();  // keep one spare group available
          }
          member_of[static_cast<std::size_t>(l)] = target;
          improved = true;
          break;
        }
      }
    }
    if (!improved) break;
  }
  return s;
}

}  // namespace

Solution iterative_partition(const Problem& p, util::Rng& rng) {
  const int n = static_cast<int>(p.loops.size());
  Solution best = software_solution(p);
  double best_gain = 0;

  std::vector<int> all(static_cast<std::size_t>(n));
  std::iota(all.begin(), all.end(), 0);

  for (int k = 1; k <= n; ++k) {
    // Phase 1 — global spatial partitioning over a virtual k*MaxA fabric.
    const auto global_versions = spatial_select(p, all, k * p.max_area);
    std::vector<int> hw;
    std::vector<double> areas;
    for (int l = 0; l < n; ++l)
      if (global_versions[static_cast<std::size_t>(l)] > 0) {
        hw.push_back(l);
        areas.push_back(
            p.loops[static_cast<std::size_t>(l)]
                .versions[static_cast<std::size_t>(
                    global_versions[static_cast<std::size_t>(l)])]
                .area);
      }

    // Phase 2 — temporal partitioning, with CIS-informed weights (P) and
    // CIS-agnostic unit weights over all loops (P'). The k-way partitioner
    // is randomized, so a small multistart smooths out unlucky seeds.
    // Phase 3 — local spatial patch-up; keep the best over the P/P' pair
    // and the restarts.
    std::vector<double> unit(p.loops.size(), 1.0);
    for (int attempt = 0; attempt < 4; ++attempt) {
      const auto groups_p = temporal_partition(p, hw, areas, k, rng);
      const auto groups_pp = temporal_partition(p, all, unit, k, rng);
      const Solution sol_p = local_spatial(p, groups_p);
      const Solution sol_pp = local_spatial(p, groups_pp);
      for (const Solution& s : {sol_p, sol_pp}) {
        const double g = net_gain(p, s);
        if (g > best_gain) {
          best_gain = g;
          best = s;
        }
      }
    }

    // Early exit: every loop already enjoys its best version.
    bool saturated = true;
    for (int l = 0; l < n; ++l)
      if (best.version[static_cast<std::size_t>(l)] !=
          p.loops[static_cast<std::size_t>(l)].best_version())
        saturated = false;
    if (saturated) break;
  }
  return polish(p, std::move(best), net_gain);
}

Solution greedy_partition(const Problem& p) {
  const int n = static_cast<int>(p.loops.size());
  Solution s = software_solution(p);
  int current_config = s.num_configs();  // the configuration being built (0)
  double current_area = 0;
  std::vector<bool> decided(static_cast<std::size_t>(n), false);

  while (true) {
    // Most profitable feasible (loop, version): expected net profit = gain
    // minus the additional reconfigurations its admission causes.
    int best_loop = -1, best_ver = -1;
    double best_profit = 0;
    for (int l = 0; l < n; ++l) {
      if (decided[static_cast<std::size_t>(l)]) continue;
      if (p.loops[static_cast<std::size_t>(l)].versions.size() < 2) continue;
      // Additional reconfiguration cost of putting l into current_config.
      Solution with = s;
      with.config[static_cast<std::size_t>(l)] = current_config;
      with.version[static_cast<std::size_t>(l)] = 1;  // placeholder HW marker
      const double extra =
          static_cast<double>(count_reconfigurations(p, with) -
                              count_reconfigurations(p, s)) *
          p.reconfig_cost;
      const HotLoop& loop = p.loops[static_cast<std::size_t>(l)];
      for (std::size_t j = 1; j < loop.versions.size(); ++j) {
        if (current_area + loop.versions[j].area > p.max_area + 1e-9) continue;
        const double profit = loop.versions[j].gain - extra;
        if (profit > best_profit + 1e-12) {
          best_profit = profit;
          best_loop = l;
          best_ver = static_cast<int>(j);
        }
      }
    }
    if (best_loop >= 0) {
      s.version[static_cast<std::size_t>(best_loop)] = best_ver;
      s.config[static_cast<std::size_t>(best_loop)] = current_config;
      current_area +=
          p.loops[static_cast<std::size_t>(best_loop)]
              .versions[static_cast<std::size_t>(best_ver)]
              .area;
      decided[static_cast<std::size_t>(best_loop)] = true;
      continue;
    }
    if (current_area > 0) {
      // Commit the configuration and start an empty one.
      ++current_config;
      current_area = 0;
      continue;
    }
    break;  // empty configuration and nothing profitable: done
  }
  return s;
}

Solution solution_from_groups(const Problem& p,
                              const std::vector<std::vector<int>>& groups) {
  return local_spatial(p, groups);
}

Solution polish_solution(
    const Problem& p, Solution s,
    const std::function<double(const Problem&, const Solution&)>& objective) {
  return polish(p, std::move(s), objective);
}

ExhaustiveResult exhaustive_partition(const Problem& p,
                                      std::uint64_t max_partitions) {
  const int n = static_cast<int>(p.loops.size());
  ExhaustiveResult res;
  res.solution = software_solution(p);
  double best_gain = 0;

  std::vector<std::vector<int>> groups;
  const auto visited = opt::for_each_partition(
      n,
      [&](const std::vector<int>& assignment, int num_groups) {
        groups.assign(static_cast<std::size_t>(num_groups), {});
        for (int l = 0; l < n; ++l)
          groups[static_cast<std::size_t>(assignment[static_cast<std::size_t>(
                     l)])]
              .push_back(l);
        const Solution s = local_spatial(p, groups);
        const double g = net_gain(p, s);
        if (g > best_gain) {
          best_gain = g;
          res.solution = s;
        }
        return true;
      },
      max_partitions);
  res.visited = visited;
  res.completed = visited < max_partitions || opt::bell_number(n) == visited;
  return res;
}

}  // namespace isex::reconfig
