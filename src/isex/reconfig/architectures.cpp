#include "isex/reconfig/architectures.hpp"

#include <algorithm>

#include "isex/reconfig/algorithms.hpp"
#include "isex/reconfig/spatial.hpp"

namespace isex::reconfig {

Solution temporal_only_solution(const Problem& p) {
  Solution s = software_solution(p);
  int next_config = 0;
  for (std::size_t l = 0; l < p.loops.size(); ++l) {
    // Best version of the loop that fits the fabric alone.
    const HotLoop& loop = p.loops[l];
    int best = 0;
    for (std::size_t j = 1; j < loop.versions.size(); ++j)
      if (loop.versions[j].area <= p.max_area + 1e-9 &&
          loop.versions[j].gain >
              loop.versions[static_cast<std::size_t>(best)].gain)
        best = static_cast<int>(j);
    if (best > 0) {
      s.version[l] = best;
      s.config[l] = next_config++;
    }
  }
  return s;
}

double config_area(const Problem& p, const Solution& s, int config) {
  double area = 0;
  for (std::size_t l = 0; l < p.loops.size(); ++l)
    if (s.config[l] == config)
      area += p.loops[l]
                  .versions[static_cast<std::size_t>(s.version[l])]
                  .area;
  return area;
}

double partial_net_gain(const Problem& p, const Solution& s,
                        double rho_per_area) {
  // Per-configuration areas once; then walk the trace.
  const int k = s.num_configs();
  std::vector<double> area(static_cast<std::size_t>(std::max(k, 1)), 0);
  for (int c = 0; c < k; ++c) area[static_cast<std::size_t>(c)] = config_area(p, s, c);
  double cost = 0;
  int current = -1;
  for (int l : p.trace) {
    const int c = s.config[static_cast<std::size_t>(l)];
    if (c < 0) continue;
    if (current >= 0 && c != current)
      cost += rho_per_area * area[static_cast<std::size_t>(c)];
    current = c;
  }
  return raw_gain(p, s) - cost;
}

Solution iterative_partition_partial(const Problem& p, double rho_per_area,
                                     util::Rng& rng) {
  // Seed with the full-reload solution computed at an equivalent constant
  // rho (the average configuration is roughly half the fabric), then local-
  // search under the true area-proportional objective.
  Problem seed_problem = p;
  seed_problem.reconfig_cost = rho_per_area * 0.5 * p.max_area;
  Solution seed = iterative_partition(seed_problem, rng);
  auto objective = [rho_per_area](const Problem& prob, const Solution& sol) {
    return partial_net_gain(prob, sol, rho_per_area);
  };
  // Also consider the temporal-only start: partial reconfiguration often
  // prefers many small configurations.
  Solution a = polish_solution(p, std::move(seed), objective);
  Solution b = polish_solution(p, temporal_only_solution(p), objective);
  return objective(p, a) >= objective(p, b) ? a : b;
}

}  // namespace isex::reconfig
