#include "isex/reconfig/jpeg_case.hpp"

#include <algorithm>

#include "isex/opt/knapsack.hpp"
#include "isex/select/config_curve.hpp"
#include "isex/workloads/workloads.hpp"

namespace isex::reconfig {

namespace {

/// Builds the CIS version list of one hot loop from the candidate items of
/// its kernel blocks: the undominated (area, gain) staircase, thinned.
HotLoop loop_from_blocks(const ir::Program& prog, const std::string& name,
                         const std::vector<int>& blocks, double per_entry_execs,
                         double total_entries, int max_versions) {
  const auto& lib = hw::CellLibrary::standard_018um();
  std::vector<std::int64_t> counts(static_cast<std::size_t>(prog.num_blocks()),
                                   0);
  for (int b : blocks)
    counts[static_cast<std::size_t>(b)] =
        static_cast<std::int64_t>(per_entry_execs * total_entries);
  select::CurveOptions opts;
  opts.max_points = max_versions + 1;
  const auto curve = select::build_config_curve(prog, counts, lib, opts);

  HotLoop loop;
  loop.name = name;
  const double base = curve.base_cycles();
  for (const auto& pt : curve.points)
    loop.versions.push_back(CisVersion{pt.area, base - pt.cycles});
  return loop;
}

}  // namespace

Problem jpeg_case_study(double reconfig_cost, double max_area,
                        int mcu_repetitions, int max_versions) {
  Problem p;
  p.reconfig_cost = reconfig_cost;
  p.max_area = max_area;
  p.area_grid = 0.5;

  const auto enc = workloads::make_jpeg_encode();
  const auto dec = workloads::make_jpeg_decode();
  const double entries = mcu_repetitions;

  // Encode-side hot loops: blocks {setup=0, color=1, dct=2, quant=3, huff=4}.
  // Per MCU entry the colour loop runs 64 pixels, the DCT 16 1-D passes.
  p.loops.push_back(
      loop_from_blocks(enc, "enc_color", {1}, 64, entries, max_versions));
  p.loops.push_back(
      loop_from_blocks(enc, "enc_fdct", {2}, 16, entries, max_versions));
  p.loops.push_back(
      loop_from_blocks(enc, "enc_quant", {3}, 1, entries, max_versions));
  p.loops.push_back(
      loop_from_blocks(enc, "enc_huff", {4}, 1, entries, max_versions));
  // Decode side.
  p.loops.push_back(
      loop_from_blocks(dec, "dec_huff", {4}, 1, entries, max_versions));
  p.loops.push_back(
      loop_from_blocks(dec, "dec_dequant", {3}, 1, entries, max_versions));
  p.loops.push_back(
      loop_from_blocks(dec, "dec_idct", {2}, 16, entries, max_versions));
  p.loops.push_back(
      loop_from_blocks(dec, "dec_color", {1}, 64, entries, max_versions));

  // Trace: encode phase then decode phase per image, each MCU touching its
  // loops in pipeline order.
  for (int rep = 0; rep < mcu_repetitions; ++rep)
    for (int l : {0, 1, 2, 3}) p.trace.push_back(l);
  for (int rep = 0; rep < mcu_repetitions; ++rep)
    for (int l : {4, 5, 6, 7}) p.trace.push_back(l);
  return p;
}

}  // namespace isex::reconfig
