#include "isex/reconfig/trace_compress.hpp"

#include <map>
#include <utility>

namespace isex::reconfig {

std::size_t TraceGrammar::size() const {
  std::size_t n = root.size();
  for (const auto& r : rules) n += r.size();
  return n;
}

std::vector<int> TraceGrammar::expand() const {
  // Expand each rule bottom-up (bodies reference only earlier rules).
  std::vector<std::vector<int>> full(rules.size());
  auto expand_symbol = [&](int sym, std::vector<int>& out) {
    if (sym >= 0) {
      out.push_back(sym);
    } else {
      const auto& sub = full[static_cast<std::size_t>(-sym - 1)];
      out.insert(out.end(), sub.begin(), sub.end());
    }
  };
  for (std::size_t r = 0; r < rules.size(); ++r)
    for (int sym : rules[r]) expand_symbol(sym, full[r]);
  std::vector<int> out;
  for (int sym : root) expand_symbol(sym, out);
  return out;
}

TraceGrammar compress_trace(const std::vector<int>& trace) {
  TraceGrammar g;
  g.root = trace;
  while (true) {
    // Most frequent adjacent pair (non-overlapping counting).
    // (Runs like "aaa" overcount the overlapping pair (a,a); the greedy
    // replacement below is non-overlapping regardless, and each round
    // strictly shortens the sequence, so the loop still terminates.)
    std::map<std::pair<int, int>, int> freq;
    for (std::size_t i = 0; i + 1 < g.root.size(); ++i)
      ++freq[std::make_pair(g.root[i], g.root[i + 1])];
    std::pair<int, int> best{};
    int best_count = 1;
    for (const auto& [pair, count] : freq)
      if (count > best_count) {
        best_count = count;
        best = pair;
      }
    if (best_count < 2) break;  // every pair unique: Re-Pair fixpoint

    const int nonterminal = -static_cast<int>(g.rules.size()) - 1;
    g.rules.push_back({best.first, best.second});
    std::vector<int> next;
    next.reserve(g.root.size());
    for (std::size_t i = 0; i < g.root.size(); ++i) {
      if (i + 1 < g.root.size() && g.root[i] == best.first &&
          g.root[i + 1] == best.second) {
        next.push_back(nonterminal);
        ++i;
      } else {
        next.push_back(g.root[i]);
      }
    }
    g.root = std::move(next);
  }
  return g;
}

long count_reconfigurations(const TraceGrammar& g, const Problem& p,
                            const Solution& s) {
  // Per-symbol summary after erasing software loops: the first and last
  // configuration inside the expansion (-1 if the expansion is all-software)
  // and the internal transition count.
  struct Summary {
    int first = -1;
    int last = -1;
    long transitions = 0;
  };
  auto terminal_summary = [&](int loop) {
    Summary sum;
    const int c = s.config[static_cast<std::size_t>(loop)];
    sum.first = c;
    sum.last = c;
    return sum;
  };
  auto concat = [](const Summary& a, const Summary& b) {
    if (a.first < 0 && a.last < 0) return b;   // a is all software
    if (b.first < 0 && b.last < 0) return a;
    Summary out;
    out.first = a.first;
    out.last = b.last;
    out.transitions = a.transitions + b.transitions +
                      ((a.last >= 0 && b.first >= 0 && a.last != b.first) ? 1 : 0);
    return out;
  };

  std::vector<Summary> rule_summary(g.rules.size());
  auto symbol_summary = [&](int sym) {
    return sym >= 0 ? terminal_summary(sym)
                    : rule_summary[static_cast<std::size_t>(-sym - 1)];
  };
  for (std::size_t r = 0; r < g.rules.size(); ++r) {
    Summary acc;  // empty: all-software identity
    for (int sym : g.rules[r]) acc = concat(acc, symbol_summary(sym));
    rule_summary[r] = acc;
  }
  Summary total;
  for (int sym : g.root) total = concat(total, symbol_summary(sym));
  return total.transitions;
}

}  // namespace isex::reconfig
