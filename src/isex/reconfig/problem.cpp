#include "isex/reconfig/problem.hpp"

#include <algorithm>
#include <map>

namespace isex::reconfig {

int HotLoop::best_version() const {
  int best = 0;
  for (std::size_t j = 0; j < versions.size(); ++j)
    if (versions[j].gain > versions[static_cast<std::size_t>(best)].gain)
      best = static_cast<int>(j);
  return best;
}

int Solution::num_configs() const {
  int mx = -1;
  for (int c : config) mx = std::max(mx, c);
  return mx + 1;
}

long count_reconfigurations(const Problem& p, const Solution& s) {
  long r = 0;
  int current = -1;
  for (int l : p.trace) {
    const int c = s.config[static_cast<std::size_t>(l)];
    if (c < 0) continue;  // software loop; fabric untouched
    if (current >= 0 && c != current) ++r;
    current = c;
  }
  return r;
}

double raw_gain(const Problem& p, const Solution& s) {
  double g = 0;
  for (std::size_t i = 0; i < p.loops.size(); ++i)
    g += p.loops[i]
             .versions[static_cast<std::size_t>(s.version[i])]
             .gain;
  return g;
}

double net_gain(const Problem& p, const Solution& s) {
  return raw_gain(p, s) -
         static_cast<double>(count_reconfigurations(p, s)) * p.reconfig_cost;
}

bool feasible(const Problem& p, const Solution& s) {
  if (s.version.size() != p.loops.size() || s.config.size() != p.loops.size())
    return false;
  std::map<int, double> config_area;
  for (std::size_t i = 0; i < p.loops.size(); ++i) {
    const int v = s.version[i];
    if (v < 0 ||
        v >= static_cast<int>(p.loops[i].versions.size()))
      return false;
    const bool hw = v > 0;
    if (hw != (s.config[i] >= 0)) return false;
    if (hw)
      config_area[s.config[i]] +=
          p.loops[i].versions[static_cast<std::size_t>(v)].area;
  }
  for (const auto& [c, area] : config_area)
    if (area > p.max_area + 1e-9) return false;
  return true;
}

Solution software_solution(const Problem& p) {
  Solution s;
  s.version.assign(p.loops.size(), 0);
  s.config.assign(p.loops.size(), -1);
  return s;
}

partition::WeightedGraph build_rcg(const Problem& p,
                                   const std::vector<int>& hw_loops,
                                   const std::vector<double>& vertex_weight) {
  partition::WeightedGraph g(static_cast<int>(hw_loops.size()));
  std::vector<int> loop_to_vertex(p.loops.size(), -1);
  for (std::size_t v = 0; v < hw_loops.size(); ++v) {
    loop_to_vertex[static_cast<std::size_t>(hw_loops[v])] =
        static_cast<int>(v);
    g.set_weight(static_cast<int>(v), vertex_weight[v]);
  }
  // Erase non-hardware loops from the trace, then count adjacent pairs.
  int prev = -1;
  for (int l : p.trace) {
    const int v = loop_to_vertex[static_cast<std::size_t>(l)];
    if (v < 0) continue;
    if (prev >= 0 && prev != v) g.add_edge(prev, v, 1);
    prev = v;
  }
  return g;
}

Problem synthetic_problem(int num_loops, util::Rng& rng) {
  Problem p;
  p.reconfig_cost = rng.uniform_int(500, 3000);
  p.area_grid = 1.0;
  double mean_best_area = 0;
  for (int i = 0; i < num_loops; ++i) {
    HotLoop loop;
    loop.name = "loop" + std::to_string(i);
    loop.versions.push_back({0, 0});
    const int extra = rng.uniform_int(1, 9);
    double area = 0, gain = 0;
    for (int j = 0; j < extra; ++j) {
      area += rng.uniform_int(1, 100 / extra + 1);
      gain += rng.uniform_int(1000, 10000) / extra;
      loop.versions.push_back({area, gain});
    }
    mean_best_area += area;
    p.loops.push_back(std::move(loop));
  }
  mean_best_area /= num_loops;
  // Fabric holds roughly three fully-enhanced loops: tight enough that
  // temporal partitioning matters, loose enough that clustering pays.
  p.max_area = std::max(100.0, 3.0 * mean_best_area);

  // Phased trace: execution dwells in a working set of a few loops, then
  // moves on — the locality structure real applications exhibit.
  const int phases = std::max(2, num_loops / 3);
  for (int ph = 0; ph < phases; ++ph) {
    std::vector<int> working;
    const int ws = rng.uniform_int(2, 4);
    for (int w = 0; w < ws; ++w) working.push_back(rng.uniform_int(0, num_loops - 1));
    const int dwell = rng.uniform_int(8, 30);
    for (int t = 0; t < dwell; ++t)
      p.trace.push_back(working[static_cast<std::size_t>(
          rng.uniform_int(0, ws - 1))]);
  }
  return p;
}

}  // namespace isex::reconfig
