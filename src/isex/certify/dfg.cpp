#include "isex/certify/dfg.hpp"

#include <algorithm>
#include <string>

namespace isex::certify {

namespace {

std::string node_str(ir::NodeId n, const ir::Node& node) {
  return "node " + std::to_string(n) + " (" +
         std::string(ir::opcode_name(node.op)) + ")";
}

}  // namespace

CertifyReport check_dfg(const ir::Dfg& dfg) {
  CertifyReport rep;
  const int n = dfg.num_nodes();

  for (ir::NodeId i = 0; i < n; ++i) {
    const ir::Node& node = dfg.node(i);

    // Opcode inside the enum range.
    if (static_cast<int>(node.op) < 0 ||
        static_cast<int>(node.op) >= ir::kNumOpcodes) {
      rep.fail("dfg.opcode", "node " + std::to_string(i) +
                                 " has out-of-range opcode " +
                                 std::to_string(static_cast<int>(node.op)));
      continue;  // opcode_name on a bad opcode is meaningless
    }
    rep.pass();

    // Operands exist, respect topological order, and produce values.
    for (ir::NodeId o : node.operands) {
      if (o < 0 || o >= n) {
        rep.fail("dfg.operand_range",
                 node_str(i, node) + " reads nonexistent node " +
                     std::to_string(o));
        continue;
      }
      if (o >= i) {
        rep.fail("dfg.topological",
                 node_str(i, node) + " reads node " + std::to_string(o) +
                     " at or after itself (ids must be a topological order)");
        continue;
      }
      if (!ir::produces_value(dfg.node(o).op)) {
        rep.fail("dfg.operand_value",
                 node_str(i, node) + " reads " + node_str(o, dfg.node(o)) +
                     ", which produces no register value");
        continue;
      }
      rep.pass();
    }

    // Leaves take no operands.
    if ((node.op == ir::Opcode::kConst || node.op == ir::Opcode::kInput) &&
        !node.operands.empty()) {
      rep.fail("dfg.leaf_operands",
               node_str(i, node) + " is a leaf but has " +
                   std::to_string(node.operands.size()) + " operands");
    } else {
      rep.pass();
    }

    // Live-out marks only make sense on nodes that produce a value.
    if (node.live_out && !ir::produces_value(node.op)) {
      rep.fail("dfg.live_out",
               node_str(i, node) + " is live-out but produces no value");
    } else {
      rep.pass();
    }

    // Consumer entries must be in range; transpose equality checked below.
    for (ir::NodeId c : node.consumers) {
      if (c < 0 || c >= n) {
        rep.fail("dfg.consumer_range",
                 node_str(i, node) + " lists nonexistent consumer " +
                     std::to_string(c));
      } else {
        rep.pass();
      }
    }
  }
  if (!rep.ok()) return rep;  // transpose check needs in-range ids

  // Operand and consumer lists must be exact transposes: edge u->v appears
  // in v.operands exactly as often as u.consumers lists v.
  for (ir::NodeId v = 0; v < n; ++v) {
    for (ir::NodeId u : dfg.node(v).operands) {
      const auto& cons = dfg.node(u).consumers;
      const long in_ops = std::count(dfg.node(v).operands.begin(),
                                     dfg.node(v).operands.end(), u);
      const long in_cons = std::count(cons.begin(), cons.end(), v);
      if (in_ops != in_cons) {
        rep.fail("dfg.transpose",
                 "edge " + std::to_string(u) + "->" + std::to_string(v) +
                     " appears " + std::to_string(in_ops) +
                     "x as operand but " + std::to_string(in_cons) +
                     "x as consumer");
      } else {
        rep.pass();
      }
    }
    for (ir::NodeId c : dfg.node(v).consumers) {
      const auto& ops = dfg.node(c).operands;
      if (std::find(ops.begin(), ops.end(), v) == ops.end()) {
        rep.fail("dfg.transpose",
                 "node " + std::to_string(v) + " lists consumer " +
                     std::to_string(c) + " which never reads it");
      } else {
        rep.pass();
      }
    }
  }
  return rep;
}

CertifyReport check_program(const ir::Program& prog) {
  CertifyReport rep;
  for (int b = 0; b < prog.num_blocks(); ++b) {
    CertifyReport block_rep = check_dfg(prog.block(b).dfg);
    for (Violation& v : block_rep.violations)
      v.message = prog.block(b).label + ": " + v.message;
    rep.merge(block_rep);
  }
  // The statement tree must reference existing blocks only. Walk the raw
  // stmt arena from the root without Program's own traversal helpers.
  if (prog.root() >= 0) {
    std::vector<int> stack = {prog.root()};
    std::vector<bool> seen;
    while (!stack.empty()) {
      const int s = stack.back();
      stack.pop_back();
      if (s < 0 || s >= prog.num_stmts()) {
        rep.fail("prog.stmt_range",
                 "statement index " + std::to_string(s) + " outside arena");
        continue;
      }
      if (static_cast<std::size_t>(s) >= seen.size())
        seen.resize(static_cast<std::size_t>(s) + 1, false);
      if (seen[static_cast<std::size_t>(s)]) continue;  // DAG sharing is fine
      seen[static_cast<std::size_t>(s)] = true;
      const ir::Stmt& st = prog.stmt(s);
      if (st.kind == ir::StmtKind::kBlock) {
        if (st.block < 0 || st.block >= prog.num_blocks()) {
          rep.fail("prog.block_range",
                   "statement " + std::to_string(s) +
                       " references nonexistent block " +
                       std::to_string(st.block));
        } else {
          rep.pass();
        }
      } else {
        for (int c : st.children) stack.push_back(c);
        rep.pass();
      }
    }
  }
  return rep;
}

}  // namespace isex::certify
