#include "isex/certify/pareto.hpp"

#include <cmath>

#include "isex/obs/metrics.hpp"

namespace isex::certify {

namespace {

void publish(const CertifyReport& r) {
  ISEX_COUNT_ADD("certify.pareto.checks", r.checks);
  ISEX_COUNT_ADD("certify.pareto.violations",
                 static_cast<long>(r.violations.size()));
}

std::string point_str(const pareto::Point& p) {
  return "(" + std::to_string(p.cost) + ", " + std::to_string(p.value) + ")";
}

}  // namespace

CertifyReport check_front(const pareto::Front& f, const std::string& what) {
  CertifyReport r;
  for (std::size_t i = 0; i < f.size(); ++i)
    if (!std::isfinite(f[i].cost) || !std::isfinite(f[i].value) ||
        f[i].cost < 0 || f[i].value < 0) {
      r.fail("pareto.finite", what + " front point #" + std::to_string(i) +
                                  " = " + point_str(f[i]) +
                                  " is not finite and non-negative");
      publish(r);
      return r;
    }
  r.pass();
  for (std::size_t i = 1; i < f.size(); ++i) {
    if (f[i].cost <= f[i - 1].cost - 1e-12) {
      r.fail("pareto.cost_order",
             what + " front cost descends at #" + std::to_string(i) + ": " +
                 point_str(f[i - 1]) + " then " + point_str(f[i]));
      break;
    }
    if (f[i].value >= f[i - 1].value - 1e-12) {
      r.fail("pareto.value_order",
             what + " front value fails to descend at #" + std::to_string(i) +
                 ": " + point_str(f[i - 1]) + " then " + point_str(f[i]));
      break;
    }
  }
  r.pass();
  // Pairwise non-dominance, independent of the ordering checks above: p
  // dominates q when <= in both coordinates and < in at least one (the
  // producer's tolerances).
  bool dominated = false;
  for (std::size_t i = 0; i < f.size() && !dominated; ++i)
    for (std::size_t j = 0; j < f.size() && !dominated; ++j) {
      if (i == j) continue;
      const pareto::Point& p = f[i];
      const pareto::Point& q = f[j];
      if (p.cost <= q.cost + 1e-12 && p.value <= q.value + 1e-12 &&
          (p.cost < q.cost - 1e-12 || p.value < q.value - 1e-12)) {
        r.fail("pareto.dominated", what + " front point #" +
                                       std::to_string(j) + " " +
                                       point_str(q) + " is dominated by #" +
                                       std::to_string(i) + " " +
                                       point_str(p));
        dominated = true;
      }
    }
  if (!dominated) r.pass();
  publish(r);
  return r;
}

CertifyReport check_eps_cover(const pareto::Front& exact,
                              const pareto::Front& approx, double eps) {
  CertifyReport r;
  if (!exact.empty() && approx.empty()) {
    r.fail("pareto.cover_empty",
           "approx front is empty but the exact front has " +
               std::to_string(exact.size()) + " points");
    publish(r);
    return r;
  }
  for (std::size_t i = 0; i < exact.size(); ++i) {
    bool covered = false;
    for (const pareto::Point& q : approx)
      if (q.cost <= (1 + eps) * exact[i].cost + 1e-9 &&
          q.value <= (1 + eps) * exact[i].value + 1e-9) {
        covered = true;
        break;
      }
    if (!covered) {
      r.fail("pareto.eps_cover",
             "exact point #" + std::to_string(i) + " " + point_str(exact[i]) +
                 " has no approx point within (1+" + std::to_string(eps) +
                 ") in both coordinates");
      publish(r);
      return r;
    }
  }
  r.pass();
  publish(r);
  return r;
}

}  // namespace isex::certify
