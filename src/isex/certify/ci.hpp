// Independent witness checkers for custom-instruction legality.
//
// Re-validates what ise::enumerate / ise::single_cut / mlgp::generate claim
// about their outputs — valid opcodes, input/output port limits, convexity,
// membership in the source DFG, and the hardware estimate the selection
// stages trust — from first principles. None of the Dfg subgraph queries or
// hw::estimate are called here: the checker walks raw operand/consumer lists
// and recomputes reachability, port counts, critical path and area with its
// own (deliberately naive, O(|S| * E)) code, so a bug in the shared fast
// paths cannot certify its own output.
#pragma once

#include <vector>

#include "isex/certify/report.hpp"
#include "isex/hw/cell_library.hpp"
#include "isex/ir/dfg.hpp"
#include "isex/ise/candidate.hpp"

namespace isex::certify {

/// Re-checks one candidate: node ids in range, every op CI-valid, input /
/// output counts honest and within the constraints, the set convex, and the
/// hardware estimate (area, sw/hw cycles, gain) consistent with the cell
/// library. `expected_block` >= 0 additionally pins the owning block index.
CertifyReport check_candidate(const ir::Dfg& dfg, const hw::CellLibrary& lib,
                              const ise::Constraints& c,
                              const ise::Candidate& cand,
                              int expected_block = -1);

struct PoolCheckOptions {
  /// Certify at most this many candidates (deterministic stride sample when
  /// the pool is larger); < 0 checks everything. The sampling is recorded in
  /// the report's check count and the certify.ci.sampled counter — a sampled
  /// certificate is weaker, never silently so.
  long max_full_checks = -1;
  /// Also reject duplicate node sets (enumerate_candidates deduplicates;
  /// MISO-only pools may not).
  bool require_unique = true;
};

/// Re-checks a candidate pool: every (sampled) candidate legal, and node
/// sets unique when required.
CertifyReport check_candidate_pool(const ir::Dfg& dfg,
                                   const hw::CellLibrary& lib,
                                   const ise::Constraints& c,
                                   const std::vector<ise::Candidate>& pool,
                                   const PoolCheckOptions& opts = {});

/// Witness for partition-style generators (mlgp::generate): every part is a
/// legal candidate, parts are pairwise node-disjoint, and each part lies
/// inside `region` (coverage of the region is not promised by the producer —
/// single-node and zero-gain parts are dropped — so only containment is
/// certified).
CertifyReport check_partition(const ir::Dfg& dfg, const hw::CellLibrary& lib,
                              const ise::Constraints& c,
                              const util::Bitset& region,
                              const std::vector<ise::Candidate>& parts);

}  // namespace isex::certify
