// isex::certify — certificate verdicts (the certifying-algorithms layer).
//
// Every solver in this codebase returns an answer whose feasibility used to
// be asserted by the producer alone. A CertifyReport is the verdict of an
// *independent witness checker* (see ci.hpp / schedule.hpp / pareto.hpp):
// deliberately simple code, sharing no logic with the solver it validates,
// that re-derives every claim of the answer from first principles. The
// report records how many individual checks ran and every violation found;
// an empty violation list is the certificate of correctness.
//
// This header is dependency-free on purpose: robust::Outcome embeds a
// CertifyReport so every ladder rung carries its certificate, and
// robust/outcome.hpp must stay includable from the lowest solver layers.
#pragma once

#include <string>
#include <utility>
#include <vector>

namespace isex::certify {

/// One failed check: which invariant broke and how.
struct Violation {
  std::string check;    // dotted id, e.g. "ci.convexity", "sched.area_budget"
  std::string message;  // the offending values, one line
};

struct CertifyReport {
  long checks = 0;  // individual invariants verified (including failed ones)
  std::vector<Violation> violations;

  bool ok() const { return violations.empty(); }

  void pass(long n = 1) { checks += n; }
  void fail(std::string check, std::string message) {
    ++checks;
    violations.push_back({std::move(check), std::move(message)});
  }
  void merge(const CertifyReport& other) {
    checks += other.checks;
    violations.insert(violations.end(), other.violations.begin(),
                      other.violations.end());
  }

  /// "ok (N checks)" or "FAILED k/N: <first violation>".
  std::string summary() const {
    if (ok()) return "ok (" + std::to_string(checks) + " checks)";
    return "FAILED " + std::to_string(violations.size()) + "/" +
           std::to_string(checks) + ": " + violations.front().check + ": " +
           violations.front().message;
  }
};

}  // namespace isex::certify
