// isex::certify — independent well-formedness witness for whole DFGs.
//
// The other certify checkers validate *answers* (candidates, schedules,
// curves) against a DFG assumed well-formed. check_dfg validates the DFG
// itself — the contract every producer of graphs (the synthetic workload
// generators, serve's request decoder, and above all the untrusted-binary
// lifter) must meet before a solver may touch its output. Like the rest of
// certify, it shares no logic with the producers or with Dfg's own cached
// queries: it walks the raw node vectors and recomputes every property with
// deliberately naive code.
#pragma once

#include "isex/certify/report.hpp"
#include "isex/ir/dfg.hpp"
#include "isex/ir/program.hpp"

namespace isex::certify {

/// Re-derives the structural invariants of one DFG from its raw node list:
/// every opcode inside the enum range, every operand id in [0, n) and
/// strictly less than its consumer (topological order), every operand a
/// value-producing node, operand/consumer lists exact transposes of each
/// other (no phantom or missing edges), leaf opcodes (kConst/kInput)
/// operand-free, and live-out marks only on value-producing nodes.
CertifyReport check_dfg(const ir::Dfg& dfg);

/// check_dfg over every block of a program, violations prefixed with the
/// block label; also checks the statement tree references existing blocks.
CertifyReport check_program(const ir::Program& prog);

}  // namespace isex::certify
