#include "isex/certify/schedule.hpp"

#include <cmath>
#include <limits>
#include <map>
#include <vector>

#include "isex/obs/metrics.hpp"
#include "isex/rt/schedulability.hpp"

namespace isex::certify {

namespace {

bool close(double a, double b) {
  return std::fabs(a - b) <=
         1e-9 + 1e-6 * std::max(std::fabs(a), std::fabs(b));
}

void publish(const char* what_checks, const char* what_violations,
             const CertifyReport& r) {
  ISEX_COUNT_ADD(what_checks, r.checks);
  ISEX_COUNT_ADD(what_violations, static_cast<long>(r.violations.size()));
  (void)what_checks;
  (void)what_violations;
}

/// Shape, index-range, area and utilization claims shared by both policies.
/// Returns the recomputed utilization through `util_out` (NaN when the
/// assignment is malformed and no recompute was possible).
void check_selection_common(const rt::TaskSet& ts, double area_budget,
                            const customize::SelectionResult& r,
                            CertifyReport& rep, double* util_out) {
  *util_out = std::numeric_limits<double>::quiet_NaN();
  if (r.assignment.size() != ts.size()) {
    rep.fail("sched.shape",
             "assignment has " + std::to_string(r.assignment.size()) +
                 " entries for " + std::to_string(ts.size()) + " tasks");
    return;
  }
  rep.pass();
  for (std::size_t i = 0; i < ts.size(); ++i) {
    const int j = r.assignment[i];
    if (j < 0 || j >= static_cast<int>(ts.tasks[i].configs.size())) {
      rep.fail("sched.config_index",
               "task " + ts.tasks[i].name + " assigned configuration " +
                   std::to_string(j) + " of " +
                   std::to_string(ts.tasks[i].configs.size()));
      return;
    }
  }
  rep.pass();

  double area = 0, util = 0;
  for (std::size_t i = 0; i < ts.size(); ++i) {
    const select::Config& cfg =
        ts.tasks[i].configs[static_cast<std::size_t>(r.assignment[i])];
    area += cfg.area;
    util += cfg.cycles / ts.tasks[i].period;
  }
  *util_out = util;

  const double area_tol = 1e-6 * std::max(1.0, std::fabs(area_budget));
  if (area > area_budget + area_tol)
    rep.fail("sched.area_budget", "assignment uses area " +
                                      std::to_string(area) + " > budget " +
                                      std::to_string(area_budget));
  else
    rep.pass();
  if (!close(area, r.area_used))
    rep.fail("sched.area_claim", "claims area " + std::to_string(r.area_used) +
                                     ", recompute " + std::to_string(area));
  else
    rep.pass();
  if (!close(util, r.utilization))
    rep.fail("sched.util_claim",
             "claims U = " + std::to_string(r.utilization) + ", recompute " +
                 std::to_string(util));
  else
    rep.pass();
  if (r.optimality_gap < 0)
    rep.fail("sched.gap_sign",
             "negative optimality gap " + std::to_string(r.optimality_gap));
  else
    rep.pass();
  if (r.status == robust::Status::kExact && r.optimality_gap != 0)
    rep.fail("sched.gap_exact", "Exact status with nonzero gap " +
                                    std::to_string(r.optimality_gap));
  else
    rep.pass();
}

}  // namespace

CertifyReport check_selection_edf(const rt::TaskSet& ts, double area_budget,
                                  const customize::SelectionResult& r) {
  CertifyReport rep;
  double util = 0;
  check_selection_common(ts, area_budget, r, rep, &util);
  if (std::isfinite(util)) {
    // EDF has an exact utilization-only test, so the flag must agree both
    // ways regardless of how the search ended.
    if (r.schedulable != rt::edf_schedulable(util))
      rep.fail("sched.edf_flag",
               std::string("schedulable claim ") +
                   (r.schedulable ? "true" : "false") + " but U = " +
                   std::to_string(util));
    else
      rep.pass();
  }
  publish("certify.sched.checks", "certify.sched.violations", rep);
  return rep;
}

CertifyReport check_selection_rms(const rt::TaskSet& ts, double area_budget,
                                  const customize::SelectionResult& r,
                                  bool completed) {
  CertifyReport rep;
  for (std::size_t i = 1; i < ts.size(); ++i)
    if (ts.tasks[i].period < ts.tasks[i - 1].period - 1e-12) {
      rep.fail("sched.rms_order",
               "task set not sorted by increasing period at index " +
                   std::to_string(i));
      publish("certify.sched.checks", "certify.sched.violations", rep);
      return rep;
    }
  rep.pass();
  double util = 0;
  check_selection_common(ts, area_budget, r, rep, &util);
  if (std::isfinite(util)) {
    std::vector<double> cycles, periods;
    cycles.reserve(ts.size());
    periods.reserve(ts.size());
    for (std::size_t i = 0; i < ts.size(); ++i) {
      cycles.push_back(
          ts.tasks[i].configs[static_cast<std::size_t>(r.assignment[i])].cycles);
      periods.push_back(ts.tasks[i].period);
    }
    const bool exact_ok = rt::rms_schedulable(cycles, periods);
    if (r.schedulable && !exact_ok)
      rep.fail("sched.rms_flag",
               "schedulable claim fails the exact response-time test");
    else if (!r.schedulable && completed && exact_ok)
      rep.fail("sched.rms_flag",
               "completed search claims unschedulable, but the returned "
               "assignment passes the exact test");
    else
      rep.pass();
  }
  publish("certify.sched.checks", "certify.sched.violations", rep);
  return rep;
}

CertifyReport check_selection_rms(const rt::TaskSet& ts, double area_budget,
                                  const customize::RmsResult& r) {
  CertifyReport rep;
  if (r.found_feasible != r.schedulable)
    rep.fail("sched.rms_feasible_flag",
             std::string("found_feasible=") +
                 (r.found_feasible ? "true" : "false") + " but schedulable=" +
                 (r.schedulable ? "true" : "false"));
  else
    rep.pass();
  rep.merge(check_selection_rms(
      ts, area_budget, static_cast<const customize::SelectionResult&>(r),
      r.completed));
  return rep;
}

CertifyReport spot_check_edf(const rt::TaskSet& ts, double area_budget,
                             double area_grid,
                             const customize::SelectionResult& r,
                             long max_assignments) {
  CertifyReport rep;
  if (r.status != robust::Status::kExact ||
      r.assignment.size() != ts.size() || ts.size() == 0)
    return rep;
  long combos = 1;
  for (const rt::Task& t : ts.tasks) {
    combos *= static_cast<long>(t.configs.size());
    if (combos > max_assignments || combos <= 0) {
      ISEX_COUNT("certify.spot.skipped");
      return rep;
    }
  }
  // The DP's feasibility rule: per-configuration weight ceil(area/grid),
  // capacity floor(budget/grid).
  const long capacity =
      static_cast<long>(std::floor(area_budget / area_grid + 1e-9));
  std::vector<std::vector<long>> weight(ts.size());
  for (std::size_t i = 0; i < ts.size(); ++i)
    for (const select::Config& c : ts.tasks[i].configs)
      weight[i].push_back(
          static_cast<long>(std::ceil(c.area / area_grid - 1e-9)));

  double best = std::numeric_limits<double>::infinity();
  std::vector<std::size_t> pick(ts.size(), 0);
  while (true) {
    long w = 0;
    double u = 0;
    for (std::size_t i = 0; i < ts.size(); ++i) {
      w += weight[i][pick[i]];
      u += ts.tasks[i].configs[pick[i]].cycles / ts.tasks[i].period;
    }
    if (w <= capacity) best = std::min(best, u);
    std::size_t i = 0;
    for (; i < ts.size(); ++i) {
      if (++pick[i] < ts.tasks[i].configs.size()) break;
      pick[i] = 0;
    }
    if (i == ts.size()) break;
  }
  if (!close(r.utilization, best))
    rep.fail("spot.edf_optimum",
             "Exact claim U = " + std::to_string(r.utilization) +
                 ", brute force finds " + std::to_string(best));
  else
    rep.pass();
  publish("certify.spot.checks", "certify.spot.violations", rep);
  return rep;
}

CertifyReport spot_check_rms(const rt::TaskSet& ts, double area_budget,
                             const customize::RmsResult& r,
                             long max_assignments) {
  CertifyReport rep;
  if (!r.completed || r.assignment.size() != ts.size() || ts.size() == 0)
    return rep;
  long combos = 1;
  for (const rt::Task& t : ts.tasks) {
    combos *= static_cast<long>(t.configs.size());
    if (combos > max_assignments || combos <= 0) {
      ISEX_COUNT("certify.spot.skipped");
      return rep;
    }
  }
  double best = std::numeric_limits<double>::infinity();
  bool any = false;
  std::vector<std::size_t> pick(ts.size(), 0);
  std::vector<double> cycles(ts.size()), periods(ts.size());
  while (true) {
    double area = 0, u = 0;
    for (std::size_t i = 0; i < ts.size(); ++i) {
      const select::Config& c = ts.tasks[i].configs[pick[i]];
      area += c.area;
      u += c.cycles / ts.tasks[i].period;
      cycles[i] = c.cycles;
      periods[i] = ts.tasks[i].period;
    }
    if (area <= area_budget + 1e-9 && rt::rms_schedulable(cycles, periods)) {
      any = true;
      best = std::min(best, u);
    }
    std::size_t i = 0;
    for (; i < ts.size(); ++i) {
      if (++pick[i] < ts.tasks[i].configs.size()) break;
      pick[i] = 0;
    }
    if (i == ts.size()) break;
  }
  if (any != r.found_feasible)
    rep.fail("spot.rms_feasibility",
             std::string("brute force says feasible=") +
                 (any ? "true" : "false") + ", completed search claims " +
                 (r.found_feasible ? "true" : "false"));
  else
    rep.pass();
  if (any && r.found_feasible && !close(r.utilization, best))
    rep.fail("spot.rms_optimum",
             "completed search claims U = " + std::to_string(r.utilization) +
                 ", brute force finds " + std::to_string(best));
  else
    rep.pass();
  publish("certify.spot.checks", "certify.spot.violations", rep);
  return rep;
}

CertifyReport check_rtreconfig(const rtreconfig::Problem& p,
                               const rtreconfig::Solution& s) {
  CertifyReport rep;
  const std::size_t n = p.tasks.size();
  if (s.version.size() != n || s.config.size() != n) {
    rep.fail("reconfig.shape",
             "solution vectors sized " + std::to_string(s.version.size()) +
                 "/" + std::to_string(s.config.size()) + " for " +
                 std::to_string(n) + " tasks");
    publish("certify.reconfig.checks", "certify.reconfig.violations", rep);
    return rep;
  }
  rep.pass();
  int num_configs = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const int v = s.version[i];
    const int c = s.config[i];
    if (v < 0 || v >= static_cast<int>(p.tasks[i].versions.size())) {
      rep.fail("reconfig.version_index",
               "task " + p.tasks[i].name + " assigned version " +
                   std::to_string(v));
      publish("certify.reconfig.checks", "certify.reconfig.violations", rep);
      return rep;
    }
    if ((v > 0) != (c >= 0)) {
      rep.fail("reconfig.version_config",
               "task " + p.tasks[i].name + " has version " +
                   std::to_string(v) + " but configuration " +
                   std::to_string(c));
      publish("certify.reconfig.checks", "certify.reconfig.violations", rep);
      return rep;
    }
    num_configs = std::max(num_configs, c + 1);
  }
  rep.pass(2);

  std::map<int, double> config_area;
  for (std::size_t i = 0; i < n; ++i)
    if (s.version[i] > 0)
      config_area[s.config[i]] +=
          p.tasks[i].versions[static_cast<std::size_t>(s.version[i])].area;
  for (const auto& [c, area] : config_area)
    if (area > p.max_area + 1e-9) {
      rep.fail("reconfig.area",
               "configuration " + std::to_string(c) + " holds area " +
                   std::to_string(area) + " > MaxA " +
                   std::to_string(p.max_area));
      publish("certify.reconfig.checks", "certify.reconfig.violations", rep);
      return rep;
    }
  rep.pass();

  const bool pay_reconfig = num_configs >= 2;
  double util = 0;
  for (std::size_t i = 0; i < n; ++i) {
    double cycles =
        p.tasks[i].versions[static_cast<std::size_t>(s.version[i])].cycles;
    if (pay_reconfig && s.version[i] > 0) cycles += p.reconfig_cost;
    util += cycles / p.tasks[i].period;
  }
  if (!close(util, s.utilization))
    rep.fail("reconfig.util_claim",
             "claims U = " + std::to_string(s.utilization) + ", recompute " +
                 std::to_string(util));
  else
    rep.pass();
  if (s.schedulable != (util <= 1.0 + 1e-9))
    rep.fail("reconfig.edf_flag",
             std::string("schedulable claim ") +
                 (s.schedulable ? "true" : "false") + " but U = " +
                 std::to_string(util));
  else
    rep.pass();
  publish("certify.reconfig.checks", "certify.reconfig.violations", rep);
  return rep;
}

}  // namespace isex::certify
