#include "isex/certify/ci.hpp"

#include <cmath>
#include <cstddef>
#include <unordered_set>
#include <vector>

#include "isex/obs/metrics.hpp"

namespace isex::certify {

namespace {

bool close(double a, double b) {
  return std::fabs(a - b) <=
         1e-9 + 1e-6 * std::max(std::fabs(a), std::fabs(b));
}

std::string node_list(const std::vector<int>& ids, std::size_t max = 8) {
  std::string s = "{";
  for (std::size_t i = 0; i < ids.size() && i < max; ++i) {
    if (i) s += ",";
    s += std::to_string(ids[i]);
  }
  if (ids.size() > max) s += ",...";
  return s + "}";
}

void publish(const CertifyReport& r) {
  ISEX_COUNT_ADD("certify.ci.checks", r.checks);
  ISEX_COUNT_ADD("certify.ci.violations",
                 static_cast<long>(r.violations.size()));
}

}  // namespace

CertifyReport check_candidate(const ir::Dfg& dfg, const hw::CellLibrary& lib,
                              const ise::Constraints& c,
                              const ise::Candidate& cand, int expected_block) {
  CertifyReport r;
  const auto n = static_cast<std::size_t>(dfg.num_nodes());
  if (cand.nodes.size() != n) {
    r.fail("ci.universe", "candidate bitset sized " +
                              std::to_string(cand.nodes.size()) +
                              " for a DFG of " + std::to_string(n) + " nodes");
    publish(r);
    return r;  // every later walk would index out of the graph
  }
  const std::vector<int> ids = cand.nodes.to_vector();
  if (ids.empty()) {
    r.fail("ci.nonempty", "empty candidate node set");
    publish(r);
    return r;
  }
  r.pass(2);

  if (expected_block >= 0) {
    if (cand.block != expected_block)
      r.fail("ci.block", "candidate claims block " +
                             std::to_string(cand.block) + ", expected " +
                             std::to_string(expected_block));
    else
      r.pass();
  }

  // Opcode validity, straight off the enum predicate.
  for (int v : ids)
    if (!ir::is_valid_for_ci(dfg.node(v).op)) {
      r.fail("ci.valid_ops",
             "node " + std::to_string(v) + " (" +
                 std::string(ir::opcode_name(dfg.node(v).op)) +
                 ") cannot join a custom instruction");
      break;
    }
  r.pass();

  // Input operands: distinct out-of-set value producers, constants free.
  std::vector<char> seen_in(n, 0);
  int inputs = 0;
  for (int v : ids)
    for (ir::NodeId o : dfg.node(v).operands) {
      const auto oi = static_cast<std::size_t>(o);
      if (cand.nodes.test(oi) || seen_in[oi]) continue;
      seen_in[oi] = 1;
      if (!ir::is_free_input(dfg.node(o).op)) ++inputs;
    }
  if (inputs != cand.num_inputs)
    r.fail("ci.input_count", "claims " + std::to_string(cand.num_inputs) +
                                 " inputs, recount " +
                                 std::to_string(inputs) + " for " +
                                 node_list(ids));
  else
    r.pass();
  if (inputs > c.max_inputs)
    r.fail("ci.input_limit", std::to_string(inputs) + " inputs > " +
                                 std::to_string(c.max_inputs) + " allowed");
  else
    r.pass();

  // Outputs: in-set value producers consumed outside or live-out.
  int outputs = 0;
  for (int v : ids) {
    const ir::Node& node = dfg.node(v);
    if (!ir::produces_value(node.op)) continue;
    bool out = node.live_out;
    for (ir::NodeId w : node.consumers) {
      if (out) break;
      if (!cand.nodes.test(static_cast<std::size_t>(w))) out = true;
    }
    if (out) ++outputs;
  }
  if (outputs != cand.num_outputs)
    r.fail("ci.output_count", "claims " + std::to_string(cand.num_outputs) +
                                  " outputs, recount " +
                                  std::to_string(outputs) + " for " +
                                  node_list(ids));
  else
    r.pass();
  if (outputs > c.max_outputs)
    r.fail("ci.output_limit", std::to_string(outputs) + " outputs > " +
                                  std::to_string(c.max_outputs) + " allowed");
  else
    r.pass();

  // Convexity: flood outward from the set through outside consumers; any
  // edge from a reached outside node back into the set closes an S -> out
  // -> S path. This re-derives reachability on the raw consumer lists (the
  // solvers use the Dfg's cached ancestor/descendant bitsets instead).
  {
    std::vector<char> reached(n, 0);
    std::vector<int> stack;
    for (int v : ids)
      for (ir::NodeId w : dfg.node(v).consumers) {
        const auto wi = static_cast<std::size_t>(w);
        if (!cand.nodes.test(wi) && !reached[wi]) {
          reached[wi] = 1;
          stack.push_back(w);
        }
      }
    bool convex = true;
    while (!stack.empty() && convex) {
      const int v = stack.back();
      stack.pop_back();
      for (ir::NodeId w : dfg.node(v).consumers) {
        const auto wi = static_cast<std::size_t>(w);
        if (cand.nodes.test(wi)) {
          r.fail("ci.convexity",
                 "path re-enters the candidate at node " + std::to_string(w) +
                     " through excluded node " + std::to_string(v));
          convex = false;
          break;
        }
        if (!reached[wi]) {
          reached[wi] = 1;
          stack.push_back(w);
        }
      }
    }
    if (convex) r.pass();
  }

  // Hardware estimate: recompute the software cost, datapath area and
  // critical path with a plain topological pass (node ids are topological).
  {
    double sw = 0, raw_area = 0, latency = 0;
    std::vector<double> depth(n, 0);
    for (int v : ids) {
      const hw::OpCost& cost = lib.cost(dfg.node(v).op);
      double in_depth = 0;
      for (ir::NodeId o : dfg.node(v).operands) {
        const auto oi = static_cast<std::size_t>(o);
        if (cand.nodes.test(oi)) in_depth = std::max(in_depth, depth[oi]);
      }
      depth[static_cast<std::size_t>(v)] = in_depth + cost.hw_latency_ns;
      latency = std::max(latency, depth[static_cast<std::size_t>(v)]);
      sw += cost.sw_cycles;
      raw_area += cost.area;
    }
    const double area = raw_area * lib.area_overhead_factor();
    const int hw_cycles =
        std::max(1, static_cast<int>(std::ceil(
                        latency / lib.clock_period_ns() - 1e-9))) +
        lib.issue_overhead_cycles();
    const double gain = std::max(0.0, sw - hw_cycles);
    if (!close(cand.est.area, area))
      r.fail("ci.area", "claims area " + std::to_string(cand.est.area) +
                            ", recompute " + std::to_string(area));
    else
      r.pass();
    if (!close(cand.est.sw_cycles, sw))
      r.fail("ci.sw_cycles", "claims " + std::to_string(cand.est.sw_cycles) +
                                 " sw cycles, recompute " +
                                 std::to_string(sw));
    else
      r.pass();
    if (cand.est.hw_cycles != hw_cycles)
      r.fail("ci.hw_cycles", "claims " + std::to_string(cand.est.hw_cycles) +
                                 " hw cycles, recompute " +
                                 std::to_string(hw_cycles));
    else
      r.pass();
    if (!close(cand.est.gain_per_exec, gain))
      r.fail("ci.gain", "claims gain " + std::to_string(cand.est.gain_per_exec) +
                            "/exec, recompute " + std::to_string(gain));
    else
      r.pass();
    if (!(cand.exec_freq >= 0) || !std::isfinite(cand.exec_freq))
      r.fail("ci.exec_freq",
             "non-finite or negative execution frequency " +
                 std::to_string(cand.exec_freq));
    else
      r.pass();
  }

  publish(r);
  return r;
}

CertifyReport check_candidate_pool(const ir::Dfg& dfg,
                                   const hw::CellLibrary& lib,
                                   const ise::Constraints& c,
                                   const std::vector<ise::Candidate>& pool,
                                   const PoolCheckOptions& opts) {
  CertifyReport r;
  // Stride-sample only the per-candidate deep checks; uniqueness always runs
  // over the full pool (it is one hash insert per candidate).
  std::size_t stride = 1;
  if (opts.max_full_checks >= 0 &&
      pool.size() > static_cast<std::size_t>(opts.max_full_checks)) {
    stride = opts.max_full_checks == 0
                 ? pool.size()
                 : (pool.size() + static_cast<std::size_t>(opts.max_full_checks) -
                    1) /
                       static_cast<std::size_t>(opts.max_full_checks);
    ISEX_COUNT_ADD("certify.ci.sampled",
                   static_cast<long>(pool.size() - pool.size() / stride));
  }
  for (std::size_t i = 0; i < pool.size(); i += stride) {
    CertifyReport one = check_candidate(dfg, lib, c, pool[i]);
    if (!one.ok())
      one.violations.front().message = "candidate #" + std::to_string(i) +
                                       ": " + one.violations.front().message;
    r.merge(one);
    if (r.violations.size() >= 16) break;  // enough evidence; stay cheap
  }
  if (opts.require_unique) {
    std::unordered_set<util::Bitset, util::BitsetHash> seen;
    for (std::size_t i = 0; i < pool.size(); ++i)
      if (!seen.insert(pool[i].nodes).second) {
        r.fail("ci.unique", "candidate #" + std::to_string(i) +
                                " duplicates an earlier node set");
        break;
      }
    r.pass();
  }
  return r;
}

CertifyReport check_partition(const ir::Dfg& dfg, const hw::CellLibrary& lib,
                              const ise::Constraints& c,
                              const util::Bitset& region,
                              const std::vector<ise::Candidate>& parts) {
  CertifyReport r;
  util::Bitset covered(static_cast<std::size_t>(dfg.num_nodes()));
  for (std::size_t i = 0; i < parts.size(); ++i) {
    const ise::Candidate& p = parts[i];
    CertifyReport one = check_candidate(dfg, lib, c, p);
    r.merge(one);
    if (p.nodes.size() != covered.size()) continue;  // already reported
    if (!p.nodes.is_subset_of(region))
      r.fail("partition.containment",
             "part #" + std::to_string(i) + " leaves the source region");
    else
      r.pass();
    if (p.nodes.intersects(covered))
      r.fail("partition.disjoint",
             "part #" + std::to_string(i) + " overlaps an earlier part");
    else
      r.pass();
    covered |= p.nodes;
  }
  ISEX_COUNT_ADD("certify.partition.checks", r.checks);
  ISEX_COUNT_ADD("certify.partition.violations",
                 static_cast<long>(r.violations.size()));
  return r;
}

}  // namespace isex::certify
