// Corruption-injection harness: named mutations of solver outputs.
//
// Each mutation corrupts one genuine solver answer in a way the matching
// witness checker (ci.hpp / schedule.hpp / pareto.hpp) is guaranteed to
// reject — stale claims after a node drop, an overstated area, a flipped
// configuration index, a reordered front. The certify tests iterate every
// kind, require the checker to accept the unmutated original and reject the
// mutant, and fail on any checker that lets a corruption through. Shared by
// tests/certify_test.cpp and the stress benches so the proof that the
// checkers catch bugs runs in both places.
#pragma once

#include "isex/customize/select_edf.hpp"
#include "isex/ir/dfg.hpp"
#include "isex/ise/candidate.hpp"
#include "isex/pareto/front.hpp"
#include "isex/rt/task.hpp"

namespace isex::certify {

/// Corruptions of a CI candidate (rejected by check_candidate).
enum class CandidateMutation {
  kDropNode,            // remove one member node; every claim goes stale
  kAddNode,             // absorb a non-member node without updating claims
  kOverstateArea,       // est.area inflated past the checker's tolerance
  kUnderstateHwCycles,  // est.hw_cycles forced to 0 (recompute is >= 1)
  kInflateGain,         // est.gain_per_exec inflated
  kMiscountInputs,      // num_inputs claim off by one
  kMiscountOutputs,     // num_outputs claim off by one
};
inline constexpr CandidateMutation kCandidateMutations[] = {
    CandidateMutation::kDropNode,           CandidateMutation::kAddNode,
    CandidateMutation::kOverstateArea,      CandidateMutation::kUnderstateHwCycles,
    CandidateMutation::kInflateGain,        CandidateMutation::kMiscountInputs,
    CandidateMutation::kMiscountOutputs,
};
const char* name(CandidateMutation m);
/// Applies `m` to `cand` in place. Returns false when the mutation is not
/// applicable to this candidate (e.g. kAddNode with no suitable non-member);
/// the caller then skips the kind for this specimen.
bool apply(CandidateMutation m, const ir::Dfg& dfg, ise::Candidate& cand);

/// Corruptions of a selection result (rejected by check_selection_edf /
/// check_selection_rms).
enum class SelectionMutation {
  kFlipConfigIndex,     // reassign one task; area/utilization claims go stale
  kOutOfRangeConfig,    // configuration index past the task's menu
  kMisstateArea,        // area_used claim inflated
  kMisstateUtilization, // utilization claim inflated
  kFlipSchedulable,     // negate the schedulability verdict
  kNegativeGap,         // optimality_gap < 0
  kTruncateAssignment,  // assignment shorter than the task set
};
inline constexpr SelectionMutation kSelectionMutations[] = {
    SelectionMutation::kFlipConfigIndex,
    SelectionMutation::kOutOfRangeConfig,
    SelectionMutation::kMisstateArea,
    SelectionMutation::kMisstateUtilization,
    SelectionMutation::kFlipSchedulable,
    SelectionMutation::kNegativeGap,
    SelectionMutation::kTruncateAssignment,
};
const char* name(SelectionMutation m);
bool apply(SelectionMutation m, const rt::TaskSet& ts,
           customize::SelectionResult& r);

/// Corruptions of a Pareto front (rejected by check_front).
enum class FrontMutation {
  kSwapPoints,       // adjacent swap breaks the cost staircase
  kDuplicatePoint,   // equal neighbours break the strict value descent
  kAppendDominated,  // trailing point dominated by the previous one
  kNegativeCost,     // coordinate outside the domain
};
inline constexpr FrontMutation kFrontMutations[] = {
    FrontMutation::kSwapPoints,
    FrontMutation::kDuplicatePoint,
    FrontMutation::kAppendDominated,
    FrontMutation::kNegativeCost,
};
const char* name(FrontMutation m);
bool apply(FrontMutation m, pareto::Front& f);

}  // namespace isex::certify
