// Independent witness checkers for Pareto fronts.
//
// pareto::undominated / the intra- and inter-stage DPs return staircase
// fronts; the FPTAS additionally promises an epsilon-cover of the exact
// front. Both properties are re-checked here with plain nested loops that
// share no code with pareto/front.cpp (same numeric tolerances, different
// implementation), so a sorting or pruning bug cannot certify itself.
#pragma once

#include "isex/certify/report.hpp"
#include "isex/pareto/front.hpp"

namespace isex::certify {

/// Re-checks staircase form: every coordinate finite and non-negative, cost
/// strictly ascending, value strictly descending, and — independently of the
/// ordering — no point dominated by any other (naive O(n^2) pairwise scan).
/// `what` labels the front in violation messages (e.g. "exact", "approx").
CertifyReport check_front(const pareto::Front& f, const std::string& what);

/// Re-checks the Papadimitriou-Yannakakis guarantee: every exact point has
/// an approx point within factor (1+eps) in both coordinates.
CertifyReport check_eps_cover(const pareto::Front& exact,
                              const pareto::Front& approx, double eps);

}  // namespace isex::certify
