#include "isex/certify/mutate.hpp"

#include <cmath>
#include <utility>

namespace isex::certify {

const char* name(CandidateMutation m) {
  switch (m) {
    case CandidateMutation::kDropNode: return "ci.drop_node";
    case CandidateMutation::kAddNode: return "ci.add_node";
    case CandidateMutation::kOverstateArea: return "ci.overstate_area";
    case CandidateMutation::kUnderstateHwCycles: return "ci.understate_hw";
    case CandidateMutation::kInflateGain: return "ci.inflate_gain";
    case CandidateMutation::kMiscountInputs: return "ci.miscount_inputs";
    case CandidateMutation::kMiscountOutputs: return "ci.miscount_outputs";
  }
  return "ci.unknown";
}

bool apply(CandidateMutation m, const ir::Dfg& dfg, ise::Candidate& cand) {
  switch (m) {
    case CandidateMutation::kDropNode: {
      // Claims (sw cycles, area, ports) go stale; a singleton goes empty.
      const std::vector<int> ids = cand.nodes.to_vector();
      if (ids.empty()) return false;
      cand.nodes.reset(static_cast<std::size_t>(ids.front()));
      return true;
    }
    case CandidateMutation::kAddNode: {
      // Absorb a non-member that is not a free input: an invalid op trips
      // ci.valid_ops, a real op leaves the sw-cycle/area claims stale.
      for (int v = 0; v < dfg.num_nodes(); ++v) {
        const auto vi = static_cast<std::size_t>(v);
        if (cand.nodes.test(vi)) continue;
        if (ir::is_free_input(dfg.node(v).op)) continue;
        cand.nodes.set(vi);
        return true;
      }
      return false;
    }
    case CandidateMutation::kOverstateArea:
      cand.est.area += 1.0;
      return true;
    case CandidateMutation::kUnderstateHwCycles:
      cand.est.hw_cycles = 0;  // the recompute is always >= 1
      return true;
    case CandidateMutation::kInflateGain:
      cand.est.gain_per_exec += 5.0;
      return true;
    case CandidateMutation::kMiscountInputs:
      cand.num_inputs += 1;
      return true;
    case CandidateMutation::kMiscountOutputs:
      cand.num_outputs += 1;
      return true;
  }
  return false;
}

const char* name(SelectionMutation m) {
  switch (m) {
    case SelectionMutation::kFlipConfigIndex: return "sched.flip_config";
    case SelectionMutation::kOutOfRangeConfig: return "sched.config_range";
    case SelectionMutation::kMisstateArea: return "sched.misstate_area";
    case SelectionMutation::kMisstateUtilization: return "sched.misstate_util";
    case SelectionMutation::kFlipSchedulable: return "sched.flip_schedulable";
    case SelectionMutation::kNegativeGap: return "sched.negative_gap";
    case SelectionMutation::kTruncateAssignment: return "sched.truncate";
  }
  return "sched.unknown";
}

bool apply(SelectionMutation m, const rt::TaskSet& ts,
           customize::SelectionResult& r) {
  if (r.assignment.size() != ts.size()) return false;
  switch (m) {
    case SelectionMutation::kFlipConfigIndex: {
      // Reassign one task to a configuration with different cycles or area
      // so the stale utilization / area claims are detectable.
      for (std::size_t i = 0; i < ts.size(); ++i) {
        const auto cur = static_cast<std::size_t>(r.assignment[i]);
        const std::vector<select::Config>& menu = ts.tasks[i].configs;
        for (std::size_t j = 0; j < menu.size(); ++j)
          if (j != cur && (std::abs(menu[j].cycles - menu[cur].cycles) > 1e-6 ||
                           std::abs(menu[j].area - menu[cur].area) > 1e-6)) {
            r.assignment[i] = static_cast<int>(j);
            return true;
          }
      }
      return false;
    }
    case SelectionMutation::kOutOfRangeConfig:
      r.assignment[0] = static_cast<int>(ts.tasks[0].configs.size());
      return true;
    case SelectionMutation::kMisstateArea:
      r.area_used += 1.0;
      return true;
    case SelectionMutation::kMisstateUtilization:
      r.utilization += 0.25;
      return true;
    case SelectionMutation::kFlipSchedulable:
      r.schedulable = !r.schedulable;
      return true;
    case SelectionMutation::kNegativeGap:
      r.optimality_gap = -0.1;
      return true;
    case SelectionMutation::kTruncateAssignment:
      r.assignment.pop_back();
      return true;
  }
  return false;
}

const char* name(FrontMutation m) {
  switch (m) {
    case FrontMutation::kSwapPoints: return "pareto.swap_points";
    case FrontMutation::kDuplicatePoint: return "pareto.duplicate_point";
    case FrontMutation::kAppendDominated: return "pareto.append_dominated";
    case FrontMutation::kNegativeCost: return "pareto.negative_cost";
  }
  return "pareto.unknown";
}

bool apply(FrontMutation m, pareto::Front& f) {
  switch (m) {
    case FrontMutation::kSwapPoints:
      if (f.size() < 2) return false;
      std::swap(f[0], f[1]);
      return true;
    case FrontMutation::kDuplicatePoint:
      if (f.empty()) return false;
      f.insert(f.begin() + 1, f.front());
      return true;
    case FrontMutation::kAppendDominated:
      if (f.empty()) return false;
      f.push_back({f.back().cost + 1.0, f.back().value + 1.0});
      return true;
    case FrontMutation::kNegativeCost:
      if (f.empty()) return false;
      f.front().cost = -1.0;
      return true;
  }
  return false;
}

}  // namespace isex::certify
