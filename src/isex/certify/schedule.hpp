// Independent witness checkers for selection feasibility and schedulability.
//
// The DATE'07 selectors (customize::select_edf / select_rms), the graceful-
// degradation ladder rungs built on them, and the Chapter 7 reconfiguration
// partitioners all return a per-task assignment plus claims about it: its
// area, its utilization, and whether the resulting system is schedulable.
// The checkers below re-derive every claim — area and utilization are
// re-summed from the raw configuration tables, and schedulability is
// re-established through the *exact* tests in rt/schedulability (EDF: U <= 1;
// RMS: the Bini-Buttazzo response check), never through the DP / B&B that
// produced the answer. spot_check_* additionally compare an Exact answer
// against plain brute force on instances small enough to enumerate.
#pragma once

#include "isex/certify/report.hpp"
#include "isex/customize/select_rms.hpp"
#include "isex/rt/task.hpp"
#include "isex/rtreconfig/problem.hpp"

namespace isex::certify {

/// Re-checks an EDF selection: assignment shape, configuration indices in
/// range, re-summed area within `area_budget`, re-summed utilization equal
/// to the claim, gap sanity (>= 0, zero when Exact), and the schedulable
/// flag agreeing with the exact EDF test on the recomputed utilization.
CertifyReport check_selection_edf(const rt::TaskSet& ts, double area_budget,
                                  const customize::SelectionResult& r);

/// Re-checks an RMS selection with the exact response-time test. Requires
/// `ts` sorted by increasing period (certified too). A schedulable claim
/// must pass the exact test; an unschedulable claim is re-verified only when
/// `completed` (an incomplete search may under-claim, never over-claim).
CertifyReport check_selection_rms(const rt::TaskSet& ts, double area_budget,
                                  const customize::SelectionResult& r,
                                  bool completed = true);

/// RmsResult overload: also cross-checks found_feasible/completed/schedulable
/// agreement before delegating to the base check.
CertifyReport check_selection_rms(const rt::TaskSet& ts, double area_budget,
                                  const customize::RmsResult& r);

/// Optimality witness for an Exact EDF answer on a small instance: brute-
/// forces every assignment under the DP's quantized-area feasibility rule
/// (weight ceil(area/grid), capacity floor(budget/grid)) and requires the
/// claimed utilization to match the enumerated minimum. Instances with more
/// than `max_assignments` combinations are skipped (zero checks recorded);
/// non-Exact answers are skipped likewise.
CertifyReport spot_check_edf(const rt::TaskSet& ts, double area_budget,
                             double area_grid,
                             const customize::SelectionResult& r,
                             long max_assignments = 200000);

/// Optimality witness for a completed RMS search on a small instance:
/// enumerates every area-feasible assignment, filters by the exact RMS test,
/// and requires agreement on both feasibility and the minimum utilization.
CertifyReport spot_check_rms(const rt::TaskSet& ts, double area_budget,
                             const customize::RmsResult& r,
                             long max_assignments = 200000);

/// Re-checks a Chapter 7 reconfiguration partition: vector shapes, version /
/// configuration agreement (hardware version iff assigned a configuration),
/// per-configuration fabric area within MaxA, re-summed overhead-inclusive
/// utilization equal to the claim, and the schedulable flag agreeing with
/// the EDF bound on the recomputed utilization.
CertifyReport check_rtreconfig(const rtreconfig::Problem& p,
                               const rtreconfig::Solution& s);

}  // namespace isex::certify
