// Minimal fixed-width text table / CSV emitter used by the bench harnesses to
// print the rows and series of each reproduced paper table and figure.
#pragma once

#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

namespace isex::util {

/// RFC-4180 CSV escaping: cells containing a comma, double quote, CR or LF
/// are wrapped in double quotes with embedded quotes doubled. Bench sweeps
/// embed kernel names and free-form labels in cells, so the CSV output path
/// must survive arbitrary content.
inline std::string csv_escape(const std::string& cell) {
  if (cell.find_first_of(",\"\r\n") == std::string::npos) return cell;
  std::string out;
  out.reserve(cell.size() + 2);
  out += '"';
  for (char ch : cell) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}

/// Accumulates rows of heterogeneous cells (converted to strings) and renders
/// them either as an aligned text table or as CSV. The bench binaries print
/// the aligned form to stdout so the output mirrors the paper's tables.
class Table {
 public:
  explicit Table(std::vector<std::string> header) : header_(std::move(header)) {}

  /// Starts a new row; subsequent cell() calls append to it.
  Table& row() {
    rows_.emplace_back();
    return *this;
  }

  template <typename T>
  Table& cell(const T& value) {
    std::ostringstream os;
    if constexpr (std::is_floating_point_v<T>) {
      os << std::fixed << std::setprecision(4) << value;
    } else {
      os << value;
    }
    rows_.back().push_back(os.str());
    return *this;
  }

  Table& cell(double value, int precision) {
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << value;
    rows_.back().push_back(os.str());
    return *this;
  }

  void print(std::ostream& out = std::cout) const {
    std::vector<std::size_t> width(header_.size());
    for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
    for (const auto& r : rows_)
      for (std::size_t c = 0; c < r.size() && c < width.size(); ++c)
        width[c] = std::max(width[c], r[c].size());

    auto line = [&](const std::vector<std::string>& cells) {
      for (std::size_t c = 0; c < cells.size(); ++c)
        out << std::left << std::setw(static_cast<int>(width[c]) + 2) << cells[c];
      out << '\n';
    };
    line(header_);
    std::string rule;
    for (std::size_t c = 0; c < header_.size(); ++c)
      rule += std::string(width[c], '-') + "  ";
    out << rule << '\n';
    for (const auto& r : rows_) line(r);
  }

  void print_csv(std::ostream& out) const {
    auto line = [&](const std::vector<std::string>& cells) {
      for (std::size_t c = 0; c < cells.size(); ++c)
        out << (c ? "," : "") << csv_escape(cells[c]);
      out << '\n';
    };
    line(header_);
    for (const auto& r : rows_) line(r);
  }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace isex::util
