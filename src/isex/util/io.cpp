#include "isex/util/io.hpp"

#include <cerrno>

#include <sys/socket.h>
#include <unistd.h>

namespace isex::util {

ssize_t read_retry(int fd, void* buf, std::size_t len) {
  for (;;) {
    const ssize_t n = ::read(fd, buf, len);
    if (n >= 0 || errno != EINTR) return n;
  }
}

bool write_all_fd(int fd, const void* buf, std::size_t len) {
  const char* p = static_cast<const char*>(buf);
  // Prefer send(MSG_NOSIGNAL) so a vanished peer on a socket fd yields EPIPE
  // even in processes that never installed SIG_IGN (tests, workers); fall
  // back to write() for pipes and regular files.
  bool use_send = true;
  while (len > 0) {
    const ssize_t n =
        use_send ? ::send(fd, p, len, MSG_NOSIGNAL) : ::write(fd, p, len);
    if (n > 0) {
      p += n;
      len -= static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && use_send && errno == ENOTSOCK) {
      use_send = false;
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return false;
  }
  return true;
}

int read_full(int fd, void* buf, std::size_t len) {
  char* p = static_cast<char*>(buf);
  std::size_t got = 0;
  while (got < len) {
    const ssize_t n = read_retry(fd, p + got, len - got);
    if (n > 0) {
      got += static_cast<std::size_t>(n);
      continue;
    }
    if (n == 0) return got == 0 ? 0 : -1;  // EOF; mid-buffer = truncated
    return -1;
  }
  return 1;
}

int accept_retry(int fd) {
  for (;;) {
    const int conn = ::accept(fd, nullptr, nullptr);
    if (conn >= 0 || errno != EINTR) return conn;
  }
}

}  // namespace isex::util
