// Dynamic bitset tuned for subgraph manipulation in DFGs.
//
// Custom-instruction identification, convexity checking and the graph
// partitioners all manipulate node sets of graphs whose size is only known at
// runtime (basic blocks range from a handful of operations to ~2700 for 3des).
// std::vector<bool> is too slow for the set-algebra in the enumeration inner
// loops, and std::bitset needs a compile-time size, so we roll a small
// word-parallel implementation.
#pragma once

#include <cstdint>
#include <cstddef>
#include <functional>
#include <vector>

namespace isex::util {

/// Fixed-universe dynamic bitset with word-parallel set algebra.
class Bitset {
 public:
  Bitset() = default;
  explicit Bitset(std::size_t size)
      : size_(size), words_((size + 63) / 64, 0) {}

  std::size_t size() const { return size_; }

  void set(std::size_t i) { words_[i >> 6] |= (std::uint64_t{1} << (i & 63)); }
  void reset(std::size_t i) { words_[i >> 6] &= ~(std::uint64_t{1} << (i & 63)); }
  bool test(std::size_t i) const {
    return (words_[i >> 6] >> (i & 63)) & 1;
  }

  void clear() { std::fill(words_.begin(), words_.end(), 0); }

  /// Number of set bits.
  std::size_t count() const {
    std::size_t n = 0;
    for (auto w : words_) n += static_cast<std::size_t>(__builtin_popcountll(w));
    return n;
  }

  bool any() const {
    for (auto w : words_)
      if (w) return true;
    return false;
  }
  bool none() const { return !any(); }

  bool operator==(const Bitset& o) const = default;

  Bitset& operator|=(const Bitset& o) {
    for (std::size_t i = 0; i < words_.size(); ++i) words_[i] |= o.words_[i];
    return *this;
  }
  Bitset& operator&=(const Bitset& o) {
    for (std::size_t i = 0; i < words_.size(); ++i) words_[i] &= o.words_[i];
    return *this;
  }
  /// Set difference: removes every bit present in o.
  Bitset& operator-=(const Bitset& o) {
    for (std::size_t i = 0; i < words_.size(); ++i) words_[i] &= ~o.words_[i];
    return *this;
  }

  friend Bitset operator|(Bitset a, const Bitset& b) { return a |= b; }
  friend Bitset operator&(Bitset a, const Bitset& b) { return a &= b; }
  friend Bitset operator-(Bitset a, const Bitset& b) { return a -= b; }

  /// True if this and o share at least one set bit.
  bool intersects(const Bitset& o) const {
    for (std::size_t i = 0; i < words_.size(); ++i)
      if (words_[i] & o.words_[i]) return true;
    return false;
  }

  /// True iff (this ∩ a) has a set bit outside excl — one fused pass over
  /// the words. This is the inner test of the union-based convexity check:
  /// with this = desc-union(S), a = anc-union(S), excl = S, a hit is a node
  /// outside S lying on a path between two members of S.
  bool intersects_outside(const Bitset& a, const Bitset& excl) const {
    for (std::size_t i = 0; i < words_.size(); ++i)
      if (words_[i] & a.words_[i] & ~excl.words_[i]) return true;
    return false;
  }

  /// True if every set bit of this is also set in o.
  bool is_subset_of(const Bitset& o) const {
    for (std::size_t i = 0; i < words_.size(); ++i)
      if (words_[i] & ~o.words_[i]) return false;
    return true;
  }

  /// Invokes f(index) for every set bit, in increasing index order.
  template <typename F>
  void for_each(F&& f) const {
    for (std::size_t wi = 0; wi < words_.size(); ++wi) {
      std::uint64_t w = words_[wi];
      while (w) {
        const int bit = __builtin_ctzll(w);
        f(wi * 64 + static_cast<std::size_t>(bit));
        w &= w - 1;
      }
    }
  }

  /// Collects the indices of all set bits.
  std::vector<int> to_vector() const {
    std::vector<int> out;
    out.reserve(count());
    for_each([&](std::size_t i) { out.push_back(static_cast<int>(i)); });
    return out;
  }

  /// FNV-style hash over the words, for use as an unordered_map key.
  std::size_t hash() const {
    std::size_t h = 1469598103934665603ull;
    for (auto w : words_) {
      h ^= static_cast<std::size_t>(w);
      h *= 1099511628211ull;
    }
    return h;
  }

 private:
  std::size_t size_ = 0;
  std::vector<std::uint64_t> words_;
};

struct BitsetHash {
  std::size_t operator()(const Bitset& b) const { return b.hash(); }
};

}  // namespace isex::util
