// isex::util — EINTR/partial-I/O-safe file-descriptor helpers.
//
// Every raw ::read/::write/::accept in the serving stack goes through these
// wrappers (or replicates their retry discipline), so a signal landing
// mid-syscall or a kernel short-count never corrupts a byte stream. SIGPIPE
// is expected to be ignored process-wide by the callers (serve installs
// SIG_IGN; socket paths additionally use MSG_NOSIGNAL), so a vanished peer
// surfaces as EPIPE from these functions instead of killing the process.
#pragma once

#include <cstddef>

#include <sys/types.h>

namespace isex::util {

/// ::read retried on EINTR. Returns what one successful read returned:
/// > 0 bytes, 0 on EOF, -1 on a real error (errno preserved; EAGAIN and
/// EWOULDBLOCK pass through for non-blocking fds).
ssize_t read_retry(int fd, void* buf, std::size_t len);

/// Writes the whole buffer, retrying on EINTR and short writes. Returns
/// false on a real error (EPIPE when the peer vanished). Blocking fds only.
bool write_all_fd(int fd, const void* buf, std::size_t len);

/// Reads exactly `len` bytes (blocking fd), retrying on EINTR and short
/// reads. Returns 1 on success, 0 on clean EOF at a byte boundary offset 0,
/// and -1 on error or a truncated stream (EOF mid-buffer).
int read_full(int fd, void* buf, std::size_t len);

/// ::accept retried on EINTR; other errors return -1 with errno set.
int accept_retry(int fd);

}  // namespace isex::util
