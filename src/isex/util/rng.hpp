// Deterministic pseudo-random number generation used throughout the library.
//
// All stochastic pieces of the reproduction (synthetic workload construction,
// randomized vertex visitation orders in the partitioners) draw from an
// explicitly seeded engine so that every experiment is bit-reproducible.
#pragma once

#include <cstdint>
#include <random>

namespace isex::util {

/// A small wrapper around std::mt19937_64 with convenience samplers.
/// Passed by reference into every component that needs randomness; never
/// constructed from a non-deterministic source inside the library.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  int uniform_int(int lo, int hi) {
    return std::uniform_int_distribution<int>(lo, hi)(engine_);
  }

  /// Uniform 64-bit integer in [lo, hi] (inclusive).
  std::int64_t uniform_i64(std::int64_t lo, std::int64_t hi) {
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }

  /// Uniform real in [lo, hi).
  double uniform_real(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Bernoulli trial with success probability p.
  bool chance(double p) {
    return std::bernoulli_distribution(p)(engine_);
  }

  /// Raw engine access for std::shuffle and distributions.
  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace isex::util
