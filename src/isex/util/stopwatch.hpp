// Wall-clock stopwatch for the analysis-time measurements reported in the
// Chapter 5 and Chapter 6 experiments (Fig 5.4/5.5, Table 6.1, Table 7.2).
#pragma once

#include <chrono>

namespace isex::util {

/// Monotonic stopwatch; starts on construction, restartable.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void restart() { start_ = Clock::now(); }

  /// Elapsed time in seconds since construction or last restart().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed time in milliseconds.
  double millis() const { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace isex::util
