// Wall-clock stopwatch for the analysis-time measurements reported in the
// Chapter 5 and Chapter 6 experiments (Fig 5.4/5.5, Table 6.1, Table 7.2).
//
// Reads the obs trace clock (monotonic, shared process epoch) rather than a
// private time base, so a stopwatch reading and a trace span over the same
// interval can never disagree; annotate() publishes the measured interval as
// a span on the shared trace timeline.
#pragma once

#include <cstdint>
#include <string_view>

#include "isex/obs/trace.hpp"

namespace isex::util {

/// Monotonic stopwatch; starts on construction, restartable.
class Stopwatch {
 public:
  Stopwatch() : start_ns_(obs::clock_ns()) {}

  void restart() { start_ns_ = obs::clock_ns(); }

  /// Elapsed time in seconds since construction or last restart().
  double seconds() const {
    return static_cast<double>(obs::clock_ns() - start_ns_) * 1e-9;
  }

  /// Elapsed time in milliseconds.
  double millis() const { return seconds() * 1e3; }

  /// Records [start, now] as a named complete span on the shared trace
  /// buffer (no-op while tracing is disabled). The span and seconds() read
  /// the same clock, so the exported trace matches any printed timing.
  void annotate(std::string_view name, std::string_view cat = "util") const {
    obs::trace_complete(name, cat, obs::kWallPid, obs::current_tid(),
                        start_ns_, obs::clock_ns() - start_ns_);
  }

 private:
  std::int64_t start_ns_;
};

}  // namespace isex::util
