// isex::util — small shared file helpers.
#pragma once

#include <cstddef>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

namespace isex::util {

/// Result of read_file_bounded: either `data` (ok) or a one-line `error`
/// naming the path and the reason. A byte count alone can't distinguish
/// "empty file" from "unreadable file", hence the explicit flag.
struct FileReadResult {
  bool ok = false;
  std::vector<unsigned char> data;
  std::string error;  // "<path>: <reason>" when !ok
};

/// Reads a whole file with a hard size cap — the single entry point for
/// *untrusted* file ingestion (lifted binaries, journal dumps, inline curve
/// files). A file larger than `max_bytes` is refused up front, not
/// truncated: a silently clipped input would parse as a different document.
inline FileReadResult read_file_bounded(const std::string& path,
                                        std::size_t max_bytes) {
  FileReadResult r;
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    r.error = path + ": cannot open for reading";
    return r;
  }
  in.seekg(0, std::ios::end);
  const std::streamoff size = in.tellg();
  in.seekg(0, std::ios::beg);
  if (size < 0) {
    r.error = path + ": cannot determine size";
    return r;
  }
  if (static_cast<unsigned long long>(size) > max_bytes) {
    r.error = path + ": " + std::to_string(size) +
              " bytes exceeds the " + std::to_string(max_bytes) +
              "-byte ingestion cap";
    return r;
  }
  r.data.resize(static_cast<std::size_t>(size));
  if (size > 0 &&
      !in.read(reinterpret_cast<char*>(r.data.data()), size)) {
    r.error = path + ": short read";
    r.data.clear();
    return r;
  }
  r.ok = true;
  return r;
}

/// Writes a file via tmp + rename so a signal (or any failure) mid-write
/// never leaves a truncated artifact under the requested name: the old file
/// survives intact until the new one is complete. `emit` receives the open
/// stream; returns false if anything (open, emit, flush, rename) failed.
template <typename Emit>
bool write_file_atomic(const std::string& path, Emit emit) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return false;
    emit(out);
    out.flush();
    if (!out.good()) {
      std::remove(tmp.c_str());
      return false;
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

}  // namespace isex::util
