// isex::util — small shared file helpers.
#pragma once

#include <cstdio>
#include <fstream>
#include <string>

namespace isex::util {

/// Writes a file via tmp + rename so a signal (or any failure) mid-write
/// never leaves a truncated artifact under the requested name: the old file
/// survives intact until the new one is complete. `emit` receives the open
/// stream; returns false if anything (open, emit, flush, rename) failed.
template <typename Emit>
bool write_file_atomic(const std::string& path, Emit emit) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return false;
    emit(out);
    out.flush();
    if (!out.good()) {
      std::remove(tmp.c_str());
      return false;
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

}  // namespace isex::util
