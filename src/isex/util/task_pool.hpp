// isex::util — Chase–Lev-style work-stealing thread pool.
//
// The solver core fans work out at three levels (kernels, basic blocks,
// enumeration subtrees), so the pool must support *nested* parallel regions
// without deadlock and without oversubscribing: a thread that waits for its
// batch keeps executing other queued chunks ("help-first"), so every level of
// nesting shares the same fixed set of OS threads.
//
// Each worker owns a lock-free Chase–Lev deque: the owner pushes/pops at the
// bottom (LIFO, cache-warm), idle workers steal from the top (FIFO, coarse
// chunks first). Threads not owned by the pool submit through a small
// mutex-guarded injection queue and then help like any worker.
//
// Determinism contract: parallel_for(n, fn) invokes fn(i) exactly once for
// every i < n and returns only after all invocations finished (and their
// writes are visible). Callers write results by index, so the merged result
// never depends on execution order — the property every byte-identical
// parallel solver in this codebase is built on.
#pragma once

#include <cstddef>
#include <functional>

namespace isex::util {

/// Detected hardware parallelism (>= 1; hardware_concurrency may report 0).
int hardware_threads();

/// Process-wide thread cap used by util::parallel_for. Resolution order:
/// set_max_threads() if called, else the ISEX_THREADS environment variable,
/// else hardware_threads(). A value of 1 disables all parallel paths — the
/// solvers take their exact legacy serial code paths.
int max_threads();

/// Overrides max_threads(); n <= 0 resets to the ISEX_THREADS/hardware
/// default. Call between parallel regions (the CLI does it once at startup).
void set_max_threads(int n);

/// Runs fn(i) for every i in [0, n) on the process-global pool sized by
/// max_threads(), blocking until all complete. Inline serial loop when
/// max_threads() <= 1 or n <= 1. Nesting is allowed from any thread,
/// including pool workers. The first exception thrown by any fn(i) is
/// rethrown here after the batch drains.
void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

class TaskPool {
 public:
  /// Total parallelism `threads` (>= 1): the pool spawns threads-1 workers;
  /// the submitting thread is the remaining lane (it helps while waiting).
  explicit TaskPool(int threads);
  ~TaskPool();

  TaskPool(const TaskPool&) = delete;
  TaskPool& operator=(const TaskPool&) = delete;

  int threads() const { return threads_; }

  /// See util::parallel_for; this is the instance form.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

  struct Impl;  // public so the .cpp's thread-local worker state can name it

 private:
  Impl* impl_;
  int threads_;
};

}  // namespace isex::util
