#include "isex/util/task_pool.hpp"

#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <deque>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace isex::util {

namespace {

constexpr int kMaxThreads = 256;

struct Batch {
  const std::function<void(std::size_t)>* fn = nullptr;
  std::atomic<long> remaining{0};  // unfinished items; release on last finish
  std::mutex err_mu;
  std::exception_ptr error;  // first exception wins
};

/// One contiguous index range of one batch — the unit the deques schedule.
struct Chunk {
  Batch* batch = nullptr;
  std::size_t begin = 0;
  std::size_t end = 0;
};

/// Chase–Lev deque over Chunk*, fixed capacity. Owner thread push()es and
/// pop()s at the bottom; thieves steal() from the top. All index operations
/// are seq_cst atomics (no standalone fences) so the implementation stays
/// ThreadSanitizer-clean; the chunks are coarse enough that the ordering
/// cost is irrelevant next to the work they carry.
class WorkDeque {
 public:
  static constexpr std::size_t kCapacity = 1 << 13;

  WorkDeque() : buf_(kCapacity) {}

  bool push(Chunk* c) {  // owner only; false when full
    const long b = bottom_.load(std::memory_order_relaxed);
    const long t = top_.load(std::memory_order_acquire);
    if (b - t >= static_cast<long>(kCapacity)) return false;
    buf_[static_cast<std::size_t>(b) & (kCapacity - 1)].store(
        c, std::memory_order_relaxed);
    bottom_.store(b + 1, std::memory_order_seq_cst);
    return true;
  }

  Chunk* pop() {  // owner only; LIFO
    const long b = bottom_.load(std::memory_order_relaxed) - 1;
    bottom_.store(b, std::memory_order_seq_cst);
    long t = top_.load(std::memory_order_seq_cst);
    if (t > b) {  // empty
      bottom_.store(b + 1, std::memory_order_relaxed);
      return nullptr;
    }
    Chunk* c = buf_[static_cast<std::size_t>(b) & (kCapacity - 1)].load(
        std::memory_order_relaxed);
    if (t == b) {  // last item: race the thieves for it
      if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                        std::memory_order_relaxed))
        c = nullptr;  // a thief won
      bottom_.store(b + 1, std::memory_order_relaxed);
    }
    return c;
  }

  Chunk* steal() {  // any thread; FIFO
    long t = top_.load(std::memory_order_seq_cst);
    const long b = bottom_.load(std::memory_order_seq_cst);
    if (t >= b) return nullptr;
    Chunk* c = buf_[static_cast<std::size_t>(t) & (kCapacity - 1)].load(
        std::memory_order_relaxed);
    if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                      std::memory_order_relaxed))
      return nullptr;  // lost the race; caller retries elsewhere
    return c;
  }

 private:
  std::atomic<long> top_{0};
  std::atomic<long> bottom_{0};
  std::vector<std::atomic<Chunk*>> buf_;
};

}  // namespace

struct TaskPool::Impl {
  std::vector<std::unique_ptr<WorkDeque>> deques;  // one per worker
  std::vector<std::thread> workers;

  // External (non-worker) submitters inject here; workers drain it.
  std::mutex inject_mu;
  std::deque<Chunk*> inject;

  // Sleep/wake: work_epoch bumps on every submission; an idle worker that
  // found nothing re-checks the epoch under the mutex before sleeping, so a
  // concurrent submission can never be missed.
  std::mutex wake_mu;
  std::condition_variable wake_cv;
  std::atomic<unsigned long> work_epoch{0};
  std::atomic<bool> stop{false};

  Chunk* find_work(int self) {
    if (self >= 0)
      if (Chunk* c = deques[static_cast<std::size_t>(self)]->pop()) return c;
    {
      std::lock_guard<std::mutex> lk(inject_mu);
      if (!inject.empty()) {
        Chunk* c = inject.front();
        inject.pop_front();
        return c;
      }
    }
    const std::size_t n = deques.size();
    for (std::size_t k = 1; k <= n; ++k) {
      const std::size_t v =
          (static_cast<std::size_t>(self < 0 ? 0 : self) + k) % n;
      if (Chunk* c = deques[v]->steal()) return c;
    }
    return nullptr;
  }

  void run_chunk(Chunk* c) {
    Batch* b = c->batch;
    for (std::size_t i = c->begin; i < c->end; ++i) {
      try {
        (*b->fn)(i);
      } catch (...) {
        std::lock_guard<std::mutex> lk(b->err_mu);
        if (!b->error) b->error = std::current_exception();
      }
    }
    const long n = static_cast<long>(c->end - c->begin);
    // Last chunk of a batch: wake any thread sleeping in the wait loop of
    // this batch's parallel_for (possibly nested several levels up).
    if (b->remaining.fetch_sub(n, std::memory_order_release) == n)
      announce_work();
  }

  void worker_main(int self) {
    while (!stop.load(std::memory_order_relaxed)) {
      if (Chunk* c = find_work(self)) {
        run_chunk(c);
        continue;
      }
      std::unique_lock<std::mutex> lk(wake_mu);
      const unsigned long seen = work_epoch.load(std::memory_order_relaxed);
      wake_cv.wait(lk, [&] {
        return stop.load(std::memory_order_relaxed) ||
               work_epoch.load(std::memory_order_relaxed) != seen;
      });
    }
  }

  void announce_work() {
    {
      std::lock_guard<std::mutex> lk(wake_mu);
      work_epoch.fetch_add(1, std::memory_order_relaxed);
    }
    wake_cv.notify_all();
  }
};

namespace {
// Which pool (if any) owns the current thread, and its deque index.
thread_local TaskPool::Impl* tls_pool = nullptr;
thread_local int tls_worker = -1;
}  // namespace

TaskPool::TaskPool(int threads)
    : impl_(new Impl), threads_(threads < 1 ? 1 : threads) {
  const int workers = threads_ - 1;
  impl_->deques.reserve(static_cast<std::size_t>(workers > 0 ? workers : 1));
  for (int i = 0; i < (workers > 0 ? workers : 1); ++i)
    impl_->deques.push_back(std::make_unique<WorkDeque>());
  for (int i = 0; i < workers; ++i)
    impl_->workers.emplace_back([this, i] {
      tls_pool = impl_;
      tls_worker = i;
      impl_->worker_main(i);
    });
}

TaskPool::~TaskPool() {
  impl_->stop.store(true, std::memory_order_relaxed);
  impl_->announce_work();
  for (auto& t : impl_->workers) t.join();
  delete impl_;
}

void TaskPool::parallel_for(std::size_t n,
                            const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (threads_ <= 1 || n == 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  Batch batch;
  batch.fn = &fn;
  batch.remaining.store(static_cast<long>(n), std::memory_order_relaxed);

  // Oversplit a little beyond the thread count so stolen chunks rebalance
  // uneven per-index work without shrinking chunks into scheduling noise.
  const std::size_t target = static_cast<std::size_t>(threads_) * 4;
  const std::size_t num_chunks = n < target ? n : target;
  const std::size_t base = n / num_chunks, extra = n % num_chunks;
  std::vector<Chunk> chunks(num_chunks);
  std::size_t at = 0;
  for (std::size_t c = 0; c < num_chunks; ++c) {
    chunks[c].batch = &batch;
    chunks[c].begin = at;
    at += base + (c < extra ? 1 : 0);
    chunks[c].end = at;
  }

  const bool own_worker = tls_pool == impl_;
  const int self = own_worker ? tls_worker : -1;
  if (own_worker) {
    // Push in reverse so the owner's LIFO pop proceeds in index order.
    for (std::size_t c = num_chunks; c-- > 0;)
      if (!impl_->deques[static_cast<std::size_t>(self)]->push(&chunks[c]))
        impl_->run_chunk(&chunks[c]);  // deque full: run inline
  } else {
    std::lock_guard<std::mutex> lk(impl_->inject_mu);
    for (auto& c : chunks) impl_->inject.push_back(&c);
  }
  impl_->announce_work();

  // Help until the batch drains; executing chunks of *other* (outer) batches
  // while waiting is what makes nesting deadlock-free. When no work is
  // available anywhere, sleep on the pool's condvar instead of yield-spinning
  // (an oversubscribed machine would otherwise burn its one core on the
  // waiters): run_chunk bumps the epoch when a batch drains, and the epoch is
  // re-read under the mutex, so a completion can never be missed.
  while (batch.remaining.load(std::memory_order_acquire) > 0) {
    if (Chunk* c = impl_->find_work(self)) {
      impl_->run_chunk(c);
      continue;
    }
    std::unique_lock<std::mutex> lk(impl_->wake_mu);
    const unsigned long seen =
        impl_->work_epoch.load(std::memory_order_relaxed);
    impl_->wake_cv.wait(lk, [&] {
      return batch.remaining.load(std::memory_order_acquire) == 0 ||
             impl_->work_epoch.load(std::memory_order_relaxed) != seen;
    });
  }
  if (batch.error) std::rethrow_exception(batch.error);
}

namespace {

std::atomic<int> g_max_threads{0};  // 0 = not yet resolved

int resolve_default_threads() {
  if (const char* env = std::getenv("ISEX_THREADS")) {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && v >= 1)
      return v > kMaxThreads ? kMaxThreads : static_cast<int>(v);
  }
  return hardware_threads();
}

}  // namespace

int hardware_threads() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n > kMaxThreads ? kMaxThreads : n);
}

int max_threads() {
  int v = g_max_threads.load(std::memory_order_relaxed);
  if (v > 0) return v;
  const int def = resolve_default_threads();
  g_max_threads.compare_exchange_strong(v, def, std::memory_order_relaxed);
  return g_max_threads.load(std::memory_order_relaxed);
}

void set_max_threads(int n) {
  if (n <= 0)
    g_max_threads.store(resolve_default_threads(), std::memory_order_relaxed);
  else
    g_max_threads.store(n > kMaxThreads ? kMaxThreads : n,
                        std::memory_order_relaxed);
}

namespace {

// Process-global pool, (re)built lazily to match max_threads(). The rebuild
// only happens when no parallel_for is in flight — concurrent callers keep
// the pool they started with (a thread-count change mid-flight only delays
// taking effect until the regions drain).
std::mutex g_pool_mu;
std::unique_ptr<TaskPool> g_pool;
std::atomic<int> g_pool_users{0};

}  // namespace

void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn) {
  const int want = max_threads();
  if (want <= 1 || n <= 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  TaskPool* pool;
  {
    std::lock_guard<std::mutex> lk(g_pool_mu);
    if (!g_pool || (g_pool->threads() != want &&
                    g_pool_users.load(std::memory_order_relaxed) == 0))
      g_pool = std::make_unique<TaskPool>(want);
    pool = g_pool.get();
    g_pool_users.fetch_add(1, std::memory_order_relaxed);
  }
  try {
    pool->parallel_for(n, fn);
  } catch (...) {
    g_pool_users.fetch_sub(1, std::memory_order_relaxed);
    throw;
  }
  g_pool_users.fetch_sub(1, std::memory_order_relaxed);
}

}  // namespace isex::util
