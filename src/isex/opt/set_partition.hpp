// Exhaustive enumeration of set partitions via restricted growth strings
// (Kreher & Stinson), used by the Chapter 6 exhaustive-search baseline. The
// number of partitions of an n-set is the Bell number B(n), which is why the
// baseline stops scaling past ~12 hot loops (Table 6.1 / Fig 6.8).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

namespace isex::opt {

/// Invokes visit(assignment, num_groups) for every partition of {0..n-1}.
/// assignment[i] in [0, num_groups) is i's group; assignments are restricted
/// growth strings, so each partition is produced exactly once. Enumeration
/// stops early when visit returns false or max_partitions is exhausted.
/// Returns the number of partitions visited.
std::uint64_t for_each_partition(
    int n,
    const std::function<bool(const std::vector<int>&, int)>& visit,
    std::uint64_t max_partitions = UINT64_MAX);

/// Bell number B(n) (number of set partitions); saturates at UINT64_MAX.
std::uint64_t bell_number(int n);

}  // namespace isex::opt
