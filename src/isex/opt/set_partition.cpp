#include "isex/opt/set_partition.hpp"

#include <algorithm>

namespace isex::opt {

namespace {

bool recurse(int i, int n, int max_used, std::vector<int>& a,
             const std::function<bool(const std::vector<int>&, int)>& visit,
             std::uint64_t& remaining, std::uint64_t& visited) {
  if (remaining == 0) return false;
  if (i == n) {
    --remaining;
    ++visited;
    return visit(a, max_used + 1);
  }
  // Restricted growth: element i may join any existing group or open the
  // next fresh one.
  for (int g = 0; g <= max_used + 1 && g < n; ++g) {
    a[static_cast<std::size_t>(i)] = g;
    if (!recurse(i + 1, n, std::max(max_used, g), a, visit, remaining, visited))
      return false;
  }
  return true;
}

}  // namespace

std::uint64_t for_each_partition(
    int n, const std::function<bool(const std::vector<int>&, int)>& visit,
    std::uint64_t max_partitions) {
  if (n <= 0) return 0;
  std::vector<int> a(static_cast<std::size_t>(n), 0);
  std::uint64_t remaining = max_partitions;
  std::uint64_t visited = 0;
  // Element 0 is always in group 0 (restricted growth strings start at 0).
  a[0] = 0;
  recurse(1, n, 0, a, visit, remaining, visited);
  return visited;
}

std::uint64_t bell_number(int n) {
  // Bell triangle with saturating addition.
  std::vector<std::uint64_t> row{1};
  for (int i = 1; i <= n; ++i) {
    std::vector<std::uint64_t> next(static_cast<std::size_t>(i) + 1);
    next[0] = row.back();
    for (std::size_t j = 0; j + 1 < next.size(); ++j) {
      const std::uint64_t sum = next[j] + row[j];
      next[j + 1] = sum < next[j] ? UINT64_MAX : sum;  // overflow clamp
    }
    row = std::move(next);
  }
  return row[0];
}

}  // namespace isex::opt
