// 0-1 knapsack dynamic programs over a quantized area axis.
//
// Custom-instruction selection under a silicon-area budget is formulated as
// 0-1 knapsack throughout the thesis (Cong et al. [25]); the pseudo-polynomial
// DP below is exact on the quantized axis and also yields, in one run, the
// best achievable gain at *every* budget — which is how the per-task
// configuration curves (Fig 3.1) are extracted.
#pragma once

#include <vector>

namespace isex::opt {

struct KnapsackItem {
  double area = 0;  // cost (>= 0)
  double gain = 0;  // value (>= 0)
};

/// Quantizes an area to grid cells, rounding up (conservative: an item never
/// appears cheaper than it is).
int grid_cells(double area, double grid);

/// best[a] = max total gain using total quantized area <= a, for
/// a = 0..cells(max_area). O(items * cells).
std::vector<double> knapsack_profile(const std::vector<KnapsackItem>& items,
                                     double max_area, double grid);

/// Indices of an optimal item subset for the single budget max_area.
std::vector<int> knapsack_select(const std::vector<KnapsackItem>& items,
                                 double max_area, double grid);

}  // namespace isex::opt
