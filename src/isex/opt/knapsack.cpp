#include "isex/opt/knapsack.hpp"

#include <algorithm>
#include <cmath>

namespace isex::opt {

int grid_cells(double area, double grid) {
  return static_cast<int>(std::ceil(area / grid - 1e-9));
}

std::vector<double> knapsack_profile(const std::vector<KnapsackItem>& items,
                                     double max_area, double grid) {
  const int cells = grid_cells(max_area, grid);
  std::vector<double> best(static_cast<std::size_t>(cells) + 1, 0.0);
  for (const KnapsackItem& it : items) {
    const int w = grid_cells(it.area, grid);
    if (it.gain <= 0) continue;
    if (w == 0) {
      // Zero-cost item: always take it.
      for (double& b : best) b += it.gain;
      continue;
    }
    for (int a = cells; a >= w; --a) {
      const double with =
          best[static_cast<std::size_t>(a - w)] + it.gain;
      best[static_cast<std::size_t>(a)] =
          std::max(best[static_cast<std::size_t>(a)], with);
    }
  }
  return best;
}

std::vector<int> knapsack_select(const std::vector<KnapsackItem>& items,
                                 double max_area, double grid) {
  const int cells = grid_cells(max_area, grid);
  const std::size_t n = items.size();
  // keep[i][a]: item i taken in the optimum over items 0..i with budget a.
  std::vector<double> best(static_cast<std::size_t>(cells) + 1, 0.0);
  std::vector<std::vector<bool>> keep(
      n, std::vector<bool>(static_cast<std::size_t>(cells) + 1, false));
  for (std::size_t i = 0; i < n; ++i) {
    const KnapsackItem& it = items[i];
    const int w = grid_cells(it.area, grid);
    if (it.gain <= 0) continue;
    if (w == 0) {
      for (int a = 0; a <= cells; ++a) {
        best[static_cast<std::size_t>(a)] += it.gain;
        keep[i][static_cast<std::size_t>(a)] = true;
      }
      continue;
    }
    for (int a = cells; a >= w; --a) {
      const double with = best[static_cast<std::size_t>(a - w)] + it.gain;
      if (with > best[static_cast<std::size_t>(a)]) {
        best[static_cast<std::size_t>(a)] = with;
        keep[i][static_cast<std::size_t>(a)] = true;
      }
    }
  }
  std::vector<int> chosen;
  int a = cells;
  for (std::size_t i = n; i-- > 0;) {
    if (a >= 0 && keep[i][static_cast<std::size_t>(a)]) {
      chosen.push_back(static_cast<int>(i));
      const int w = grid_cells(items[i].area, grid);
      if (w > 0) a -= w;
    }
  }
  std::reverse(chosen.begin(), chosen.end());
  return chosen;
}

}  // namespace isex::opt
