#include "isex/customize/motivating.hpp"

namespace isex::customize {

rt::TaskSet motivating_example() {
  rt::TaskSet ts;
  ts.tasks.push_back(rt::Task{"T1", 6, {{0, 2}, {7, 1}}});
  ts.tasks.push_back(rt::Task{"T2", 8, {{0, 3}, {6, 2}}});
  ts.tasks.push_back(rt::Task{"T3", 12, {{0, 6}, {4, 5}}});
  return ts;
}

}  // namespace isex::customize
