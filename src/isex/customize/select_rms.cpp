#include "isex/customize/select_rms.hpp"

#include <algorithm>
#include <atomic>
#include <limits>
#include <memory>
#include <numeric>
#include <string>

#include "isex/obs/trace.hpp"
#include "isex/rt/schedulability.hpp"
#include "isex/util/task_pool.hpp"

namespace isex::customize {

namespace {

struct Search {
  const rt::TaskSet& ts;
  double area_budget;
  const RmsOptions& opts;

  /// Parallel mode only: the cross-branch incumbent. Pruning against it must
  /// be *strict* (>) — a subtree able to merely equal a known solution may
  /// still hold the leftmost occurrence of the optimum, which is the one the
  /// serial search reports. The branch-local incumbent keeps the serial
  /// non-strict (>=) prune.
  std::atomic<double>* shared_best = nullptr;

  std::vector<double> min_util_suffix;  // best possible utilization of tasks i..N-1
  std::vector<double> periods;
  std::vector<double> cycles;  // execution time of tasks 0..level-1 (chosen)
  std::vector<int> current;

  double best_util = std::numeric_limits<double>::infinity();
  std::vector<int> best_assignment;
  bool found = false;
  bool truncated = false;  // node cap or budget stopped the search
  long nodes = 0;
  long bound_pruned = 0;
  long area_pruned = 0;
  long sched_pruned = 0;
  long incumbent_updates = 0;

  Search(const rt::TaskSet& t, double budget, const RmsOptions& o)
      : ts(t), area_budget(budget), opts(o) {
    const auto n = ts.size();
    min_util_suffix.assign(n + 1, 0);
    for (std::size_t i = n; i-- > 0;)
      min_util_suffix[i] =
          min_util_suffix[i + 1] + ts.tasks[i].best_cycles() / ts.tasks[i].period;
    periods.reserve(n);
    for (const auto& task : ts.tasks) periods.push_back(task.period);
    cycles.assign(n, 0);
    current.assign(n, 0);
  }

  void run(std::size_t level, double util, double area) {
    if (truncated) return;
    if (opts.max_nodes >= 0 && nodes > opts.max_nodes) {
      truncated = true;
      return;
    }
    if (opts.budget != nullptr && opts.budget->charge()) {
      truncated = true;
      return;
    }
    ++nodes;
    if (level == ts.size()) {
      if (util < best_util) {
        best_util = util;
        best_assignment = current;
        found = true;
        ++incumbent_updates;
        if (shared_best != nullptr) {
          double cur = shared_best->load(std::memory_order_relaxed);
          while (util < cur && !shared_best->compare_exchange_weak(
                                   cur, util, std::memory_order_relaxed)) {
          }
        }
      }
      return;
    }
    if (opts.use_bound_pruning) {
      const double lb = util + min_util_suffix[level];
      if (lb >= best_util ||
          (shared_best != nullptr &&
           lb > shared_best->load(std::memory_order_relaxed))) {
        ++bound_pruned;
        return;
      }
    }

    const rt::Task& t = ts.tasks[level];
    std::vector<std::size_t> order(t.configs.size());
    std::iota(order.begin(), order.end(), 0u);
    if (opts.fastest_first)
      std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
        return t.configs[a].cycles < t.configs[b].cycles;
      });

    for (std::size_t j : order) {
      const auto& cfg = t.configs[j];
      if (cfg.area > area + 1e-9) {  // area pruning
        ++area_pruned;
        continue;
      }
      cycles[level] = cfg.cycles;
      // Exact Theorem-1 check for this task only; the higher-priority tasks
      // were verified at shallower levels and cannot be disturbed.
      if (!rt::rms_task_schedulable(
              static_cast<int>(level),
              {cycles.begin(), cycles.begin() + static_cast<long>(level) + 1},
              {periods.begin(),
               periods.begin() + static_cast<long>(level) + 1})) {
        ++sched_pruned;
        continue;  // this and only this subtree is infeasible
      }
      current[level] = static_cast<int>(j);
      run(level + 1, util + cfg.cycles / t.period, area - cfg.area);
    }
  }
};

/// One search-tree prefix (a partial assignment of tasks 0..depth-1) used to
/// split the B&B across workers.
struct RmsPrefix {
  std::vector<int> assign;
  std::vector<double> cycles;
  double util = 0;
  double area = 0;  // remaining area
};

/// Parallel B&B over root prefixes, byte-identical to the serial search.
///
/// The serial answer is the *leftmost* (in DFS order) occurrence of the
/// minimum utilization: before the first optimal leaf is reached, the
/// incumbent is strictly above the optimum, so no node on the path to that
/// leaf satisfies the non-strict bound prune (its lower bound is <= the
/// optimum). The same argument shows that strict (>) pruning against any
/// shared incumbent value (always >= the optimum, it is some real solution)
/// can never cut the leftmost optimal leaf of any branch. Each branch runs
/// with a local incumbent from infinity and full serial semantics, and the
/// left-to-right strictly-improving merge therefore reproduces exactly the
/// serial best_util and best_assignment; the shared incumbent only removes
/// work that cannot strictly improve, and only nodes/pruning *counters* are
/// scheduling-dependent.
RmsResult select_rms_parallel(const rt::TaskSet& ts, double area_budget,
                              const RmsOptions& opts) {
  // Expand shallow levels in exact serial child order until there are enough
  // branches to feed the pool.
  std::vector<RmsPrefix> frontier{{{}, {}, 0.0, area_budget}};
  std::vector<double> periods;
  for (const auto& task : ts.tasks) periods.push_back(task.period);
  long prefix_nodes = 0, prefix_area_pruned = 0, prefix_sched_pruned = 0;
  std::size_t depth = 0;
  const std::size_t target =
      static_cast<std::size_t>(util::max_threads()) * 4;
  const std::size_t depth_cap = std::min<std::size_t>(3, ts.size() - 1);
  while (depth < depth_cap && frontier.size() < target &&
         !frontier.empty()) {
    const rt::Task& t = ts.tasks[depth];
    std::vector<std::size_t> order(t.configs.size());
    std::iota(order.begin(), order.end(), 0u);
    if (opts.fastest_first)
      std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
        return t.configs[a].cycles < t.configs[b].cycles;
      });
    std::vector<RmsPrefix> next;
    for (RmsPrefix& p : frontier) {
      ++prefix_nodes;  // the run() call this expansion stands in for
      for (std::size_t j : order) {
        const auto& cfg = t.configs[j];
        if (cfg.area > p.area + 1e-9) {
          ++prefix_area_pruned;
          continue;
        }
        RmsPrefix child = p;
        child.cycles.push_back(cfg.cycles);
        if (!rt::rms_task_schedulable(
                static_cast<int>(depth), child.cycles,
                {periods.begin(),
                 periods.begin() + static_cast<long>(depth) + 1})) {
          ++prefix_sched_pruned;
          child.cycles.pop_back();
          continue;
        }
        child.assign.push_back(static_cast<int>(j));
        child.util = p.util + cfg.cycles / t.period;
        child.area = p.area - cfg.area;
        next.push_back(std::move(child));
      }
    }
    frontier = std::move(next);
    ++depth;
  }

  std::atomic<double> shared_best{std::numeric_limits<double>::infinity()};
  std::vector<std::unique_ptr<Search>> branches(frontier.size());
  util::parallel_for(frontier.size(), [&](std::size_t i) {
    auto s = std::make_unique<Search>(ts, area_budget, opts);
    s->shared_best = &shared_best;
    const RmsPrefix& p = frontier[i];
    for (std::size_t l = 0; l < depth; ++l) {
      s->current[l] = p.assign[l];
      s->cycles[l] = p.cycles[l];
    }
    s->run(depth, p.util, p.area);
    branches[i] = std::move(s);
  });

  // Left-to-right strictly-improving merge == serial leftmost optimum.
  long nodes = prefix_nodes, bound_pruned = 0, area_pruned = prefix_area_pruned,
       sched_pruned = prefix_sched_pruned, incumbent_updates = 0;
  double best_util = std::numeric_limits<double>::infinity();
  std::vector<int> best_assignment;
  bool found = false;
  for (const auto& s : branches) {
    nodes += s->nodes;
    bound_pruned += s->bound_pruned;
    area_pruned += s->area_pruned;
    sched_pruned += s->sched_pruned;
    incumbent_updates += s->incumbent_updates;
    if (s->found && s->best_util < best_util) {
      best_util = s->best_util;
      best_assignment = s->best_assignment;
      found = true;
    }
  }
  ISEX_COUNT("customize.rms.runs");
  ISEX_COUNT_ADD("customize.rms.nodes", nodes);
  ISEX_COUNT_ADD("customize.rms.bound_pruned", bound_pruned);
  ISEX_COUNT_ADD("customize.rms.area_pruned", area_pruned);
  ISEX_COUNT_ADD("customize.rms.sched_pruned", sched_pruned);
  ISEX_COUNT_ADD("customize.rms.incumbent_updates", incumbent_updates);

  RmsResult res;
  res.nodes_visited = nodes;
  res.found_feasible = found;
  res.completed = true;  // no cap/budget in the parallel mode
  if (found) {
    res.assignment = best_assignment;
    res.schedulable = true;
  } else {
    res.assignment.assign(ts.size(), 0);
    res.schedulable = false;
  }
  res.utilization = ts.utilization(res.assignment);
  res.area_used = ts.area(res.assignment);
  return res;
}

}  // namespace

RmsResult select_rms(const rt::TaskSet& ts, double area_budget,
                     const RmsOptions& opts) {
  ISEX_SPAN_CAT("customize.select_rms", "customize");
  // The parallel split requires: no budget (a budget with deterministic
  // limits pins the serial truncation schedule, and certify relies on
  // max_nodes runs being exactly reproducible), no node cap, a few tasks to
  // split on, and more than one thread. nodes_visited/pruning counters are
  // scheduling-dependent in parallel runs; the selection itself is
  // byte-identical to serial.
  if (util::max_threads() > 1 && opts.budget == nullptr &&
      opts.max_nodes < 0 && ts.size() >= 5)
    return select_rms_parallel(ts, area_budget, opts);
  Search s(ts, area_budget, opts);
  s.run(0, 0, area_budget);
  ISEX_COUNT("customize.rms.runs");
  ISEX_COUNT_ADD("customize.rms.nodes", s.nodes);
  ISEX_COUNT_ADD("customize.rms.bound_pruned", s.bound_pruned);
  ISEX_COUNT_ADD("customize.rms.area_pruned", s.area_pruned);
  ISEX_COUNT_ADD("customize.rms.sched_pruned", s.sched_pruned);
  ISEX_COUNT_ADD("customize.rms.incumbent_updates", s.incumbent_updates);

  RmsResult res;
  res.nodes_visited = s.nodes;
  res.found_feasible = s.found;
  res.completed = !s.truncated;
  if (s.found) {
    res.assignment = s.best_assignment;
    res.schedulable = true;
  } else {
    res.assignment.assign(ts.size(), 0);
    res.schedulable = false;
  }
  res.utilization = ts.utilization(res.assignment);
  res.area_used = ts.area(res.assignment);
  if (s.truncated) {
    res.status = robust::Status::kBudgetTruncated;
    // Lower bound: every task at its fastest configuration regardless of
    // area or schedulability — the root node's bound of the search.
    const double lb = s.min_util_suffix[0];
    res.optimality_gap =
        lb > 0 ? std::max(0.0, (res.utilization - lb) / lb) : 0.0;
    ISEX_COUNT("customize.rms.budget_truncations");
  }
  return res;
}

robust::Outcome<RmsResult> select_rms_bounded(const rt::TaskSet& ts,
                                              double area_budget,
                                              const RmsOptions& opts) {
  robust::Outcome<RmsResult> out;
  std::string err = ts.validate();
  if (err.empty())
    for (std::size_t i = 1; i < ts.size(); ++i)
      if (ts.tasks[i].period < ts.tasks[i - 1].period) {
        err = "tasks not sorted by increasing period (RMS priority order)";
        break;
      }
  if (!err.empty()) {
    out.status = robust::Status::kInfeasible;
    out.detail = err;
    if (opts.budget != nullptr) out.budget = opts.budget->report();
    return out;
  }
  out.value = select_rms(ts, area_budget, opts);
  out.status = out.value.status;
  out.optimality_gap = out.value.optimality_gap;
  if (out.value.completed && !out.value.found_feasible) {
    out.status = robust::Status::kInfeasible;
    out.detail =
        "no RMS-schedulable assignment within the area budget; value is the "
        "all-software assignment";
  }
  if (opts.budget != nullptr) out.budget = opts.budget->report();
  return out;
}

}  // namespace isex::customize
