#include "isex/customize/select_rms.hpp"

#include <algorithm>
#include <limits>
#include <numeric>
#include <string>

#include "isex/obs/trace.hpp"
#include "isex/rt/schedulability.hpp"

namespace isex::customize {

namespace {

struct Search {
  const rt::TaskSet& ts;
  double area_budget;
  const RmsOptions& opts;

  std::vector<double> min_util_suffix;  // best possible utilization of tasks i..N-1
  std::vector<double> periods;
  std::vector<double> cycles;  // execution time of tasks 0..level-1 (chosen)
  std::vector<int> current;

  double best_util = std::numeric_limits<double>::infinity();
  std::vector<int> best_assignment;
  bool found = false;
  bool truncated = false;  // node cap or budget stopped the search
  long nodes = 0;
  long bound_pruned = 0;
  long area_pruned = 0;
  long sched_pruned = 0;
  long incumbent_updates = 0;

  Search(const rt::TaskSet& t, double budget, const RmsOptions& o)
      : ts(t), area_budget(budget), opts(o) {
    const auto n = ts.size();
    min_util_suffix.assign(n + 1, 0);
    for (std::size_t i = n; i-- > 0;)
      min_util_suffix[i] =
          min_util_suffix[i + 1] + ts.tasks[i].best_cycles() / ts.tasks[i].period;
    periods.reserve(n);
    for (const auto& task : ts.tasks) periods.push_back(task.period);
    cycles.assign(n, 0);
    current.assign(n, 0);
  }

  void run(std::size_t level, double util, double area) {
    if (truncated) return;
    if (opts.max_nodes >= 0 && nodes > opts.max_nodes) {
      truncated = true;
      return;
    }
    if (opts.budget != nullptr && opts.budget->charge()) {
      truncated = true;
      return;
    }
    ++nodes;
    if (level == ts.size()) {
      if (util < best_util) {
        best_util = util;
        best_assignment = current;
        found = true;
        ++incumbent_updates;
      }
      return;
    }
    if (opts.use_bound_pruning &&
        util + min_util_suffix[level] >= best_util) {
      ++bound_pruned;
      return;
    }

    const rt::Task& t = ts.tasks[level];
    std::vector<std::size_t> order(t.configs.size());
    std::iota(order.begin(), order.end(), 0u);
    if (opts.fastest_first)
      std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
        return t.configs[a].cycles < t.configs[b].cycles;
      });

    for (std::size_t j : order) {
      const auto& cfg = t.configs[j];
      if (cfg.area > area + 1e-9) {  // area pruning
        ++area_pruned;
        continue;
      }
      cycles[level] = cfg.cycles;
      // Exact Theorem-1 check for this task only; the higher-priority tasks
      // were verified at shallower levels and cannot be disturbed.
      if (!rt::rms_task_schedulable(
              static_cast<int>(level),
              {cycles.begin(), cycles.begin() + static_cast<long>(level) + 1},
              {periods.begin(),
               periods.begin() + static_cast<long>(level) + 1})) {
        ++sched_pruned;
        continue;  // this and only this subtree is infeasible
      }
      current[level] = static_cast<int>(j);
      run(level + 1, util + cfg.cycles / t.period, area - cfg.area);
    }
  }
};

}  // namespace

RmsResult select_rms(const rt::TaskSet& ts, double area_budget,
                     const RmsOptions& opts) {
  ISEX_SPAN_CAT("customize.select_rms", "customize");
  Search s(ts, area_budget, opts);
  s.run(0, 0, area_budget);
  ISEX_COUNT("customize.rms.runs");
  ISEX_COUNT_ADD("customize.rms.nodes", s.nodes);
  ISEX_COUNT_ADD("customize.rms.bound_pruned", s.bound_pruned);
  ISEX_COUNT_ADD("customize.rms.area_pruned", s.area_pruned);
  ISEX_COUNT_ADD("customize.rms.sched_pruned", s.sched_pruned);
  ISEX_COUNT_ADD("customize.rms.incumbent_updates", s.incumbent_updates);

  RmsResult res;
  res.nodes_visited = s.nodes;
  res.found_feasible = s.found;
  res.completed = !s.truncated;
  if (s.found) {
    res.assignment = s.best_assignment;
    res.schedulable = true;
  } else {
    res.assignment.assign(ts.size(), 0);
    res.schedulable = false;
  }
  res.utilization = ts.utilization(res.assignment);
  res.area_used = ts.area(res.assignment);
  if (s.truncated) {
    res.status = robust::Status::kBudgetTruncated;
    // Lower bound: every task at its fastest configuration regardless of
    // area or schedulability — the root node's bound of the search.
    const double lb = s.min_util_suffix[0];
    res.optimality_gap =
        lb > 0 ? std::max(0.0, (res.utilization - lb) / lb) : 0.0;
    ISEX_COUNT("customize.rms.budget_truncations");
  }
  return res;
}

robust::Outcome<RmsResult> select_rms_bounded(const rt::TaskSet& ts,
                                              double area_budget,
                                              const RmsOptions& opts) {
  robust::Outcome<RmsResult> out;
  std::string err = ts.validate();
  if (err.empty())
    for (std::size_t i = 1; i < ts.size(); ++i)
      if (ts.tasks[i].period < ts.tasks[i - 1].period) {
        err = "tasks not sorted by increasing period (RMS priority order)";
        break;
      }
  if (!err.empty()) {
    out.status = robust::Status::kInfeasible;
    out.detail = err;
    if (opts.budget != nullptr) out.budget = opts.budget->report();
    return out;
  }
  out.value = select_rms(ts, area_budget, opts);
  out.status = out.value.status;
  out.optimality_gap = out.value.optimality_gap;
  if (out.value.completed && !out.value.found_feasible) {
    out.status = robust::Status::kInfeasible;
    out.detail =
        "no RMS-schedulable assignment within the area budget; value is the "
        "all-software assignment";
  }
  if (opts.budget != nullptr) out.budget = opts.budget->report();
  return out;
}

}  // namespace isex::customize
