#include "isex/customize/heuristics.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "isex/rt/schedulability.hpp"

namespace isex::customize {

std::string_view heuristic_name(Heuristic h) {
  switch (h) {
    case Heuristic::kEqualAreaDivision: return "equal-area-division";
    case Heuristic::kSmallestDeadlineFirst: return "smallest-deadline-first";
    case Heuristic::kHighestUtilReduction: return "highest-util-reduction";
    case Heuristic::kBestGainAreaRatio: return "best-gain-area-ratio";
  }
  return "?";
}

namespace {

/// Best (fastest) configuration of task t fitting in `budget`.
int best_config_within(const rt::Task& t, double budget) {
  int best = 0;
  for (std::size_t j = 0; j < t.configs.size(); ++j)
    if (t.configs[j].area <= budget + 1e-9 &&
        t.configs[j].cycles <
            t.configs[static_cast<std::size_t>(best)].cycles)
      best = static_cast<int>(j);
  return best;
}

SelectionResult finish(const rt::TaskSet& ts, std::vector<int> assignment) {
  SelectionResult res;
  res.assignment = std::move(assignment);
  res.utilization = ts.utilization(res.assignment);
  res.area_used = ts.area(res.assignment);
  res.schedulable = rt::edf_schedulable(res.utilization);
  return res;
}

}  // namespace

SelectionResult select_heuristic(const rt::TaskSet& ts, double area_budget,
                                 Heuristic h) {
  const auto n = ts.size();
  std::vector<int> assignment(n, 0);

  if (h == Heuristic::kEqualAreaDivision) {
    const double share = std::floor(area_budget / static_cast<double>(n));
    for (std::size_t i = 0; i < n; ++i)
      assignment[i] = best_config_within(ts.tasks[i], share);
    return finish(ts, std::move(assignment));
  }

  // Priority-ordered greedy: rank tasks, then give each its best
  // configuration that still fits the remaining budget.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0u);
  auto max_du = [&](std::size_t i) {
    const rt::Task& t = ts.tasks[i];
    return (t.sw_cycles() - t.best_cycles()) / t.period;
  };
  auto max_ratio = [&](std::size_t i) {
    const rt::Task& t = ts.tasks[i];
    double best = 0;
    for (const auto& c : t.configs)
      if (c.area > 0)
        best = std::max(best, (t.sw_cycles() - c.cycles) / t.period / c.area);
    return best;
  };
  switch (h) {
    case Heuristic::kSmallestDeadlineFirst:
      std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
        return ts.tasks[a].period < ts.tasks[b].period;
      });
      break;
    case Heuristic::kHighestUtilReduction:
      std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
        return max_du(a) > max_du(b);
      });
      break;
    case Heuristic::kBestGainAreaRatio:
      std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
        return max_ratio(a) > max_ratio(b);
      });
      break;
    case Heuristic::kEqualAreaDivision:
      break;  // handled above
  }

  double remaining = area_budget;
  for (std::size_t i : order) {
    const int j = best_config_within(ts.tasks[i], remaining);
    assignment[i] = j;
    remaining -= ts.tasks[i].configs[static_cast<std::size_t>(j)].area;
  }
  return finish(ts, std::move(assignment));
}

}  // namespace isex::customize
