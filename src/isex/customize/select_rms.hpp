// Custom-instruction selection under RMS via branch-and-bound (Algorithm 2).
//
// RMS has no utilization-only exact test, so minimizing U alone can produce
// an infeasible schedule; the search must check Theorem 1 level by level.
// Levels of the search tree follow decreasing priority (increasing period):
// a lower-priority task can never disturb the already-verified higher-
// priority ones, so only task T_i's own L_i needs checking at level i.
// Pruning: (a) lower bound = chosen utilizations + best-possible utilization
// of all remaining tasks, against the incumbent; (b) area-infeasible
// configurations; (c) configurations are tried fastest-first so a good
// incumbent appears early.
#pragma once

#include "isex/customize/select_edf.hpp"

namespace isex::customize {

struct RmsOptions {
  /// Ablation switches (DESIGN.md: pruning-component study).
  bool use_bound_pruning = true;
  bool fastest_first = true;
  long max_nodes = -1;  // search-node cap; <0 = unlimited
  /// Cooperative execution budget (non-owning; nullptr = unlimited), charged
  /// once per search node. Exhaustion keeps the best incumbent found so far.
  robust::Budget* budget = nullptr;
};

struct RmsResult : SelectionResult {
  long nodes_visited = 0;
  bool found_feasible = false;  // some assignment met all deadlines
  /// True when the search ran to completion (no node cap or budget cut it
  /// short) — i.e. `found_feasible == false` proves infeasibility.
  bool completed = true;
};

/// Requires ts sorted by increasing period (rate-monotonic priority).
/// Minimizes utilization over all RMS-schedulable assignments within the
/// area budget; if none is schedulable, returns the all-software assignment
/// with schedulable=false. With a budget the result is anytime: status
/// kBudgetTruncated keeps the best RMS-schedulable incumbent found.
RmsResult select_rms(const rt::TaskSet& ts, double area_budget,
                     const RmsOptions& opts = {});

/// Anytime wrapper: validates the task set (degenerate inputs become
/// kInfeasible instead of a throw/crash); a completed search with no
/// feasible assignment is also kInfeasible (value = all-software).
robust::Outcome<RmsResult> select_rms_bounded(const rt::TaskSet& ts,
                                              double area_budget,
                                              const RmsOptions& opts = {});

}  // namespace isex::customize
