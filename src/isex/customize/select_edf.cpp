#include "isex/customize/select_edf.hpp"

#include <cmath>
#include <limits>

#include "isex/obs/trace.hpp"
#include "isex/rt/schedulability.hpp"

namespace isex::customize {

SelectionResult select_edf(const rt::TaskSet& ts, double area_budget,
                           const EdfOptions& opts) {
  ISEX_SPAN_CAT("customize.select_edf", "customize");
  const auto n = ts.size();
  const double grid = opts.area_grid;
  const int cells =
      static_cast<int>(std::floor(area_budget / grid + 1e-9));
  const auto width = static_cast<std::size_t>(cells) + 1;
  long config_scans = 0, area_skips = 0;

  // u[i*width + a]: min utilization of tasks 0..i with quantized budget a.
  // choice[.]: configuration index realizing it.
  std::vector<double> u(n * width, std::numeric_limits<double>::infinity());
  std::vector<int> choice(n * width, 0);

  for (std::size_t i = 0; i < n; ++i) {
    const rt::Task& t = ts.tasks[i];
    for (int a = 0; a <= cells; ++a) {
      double best = std::numeric_limits<double>::infinity();
      int best_j = 0;
      for (std::size_t j = 0; j < t.configs.size(); ++j) {
        ++config_scans;
        // Quantize the configuration's area up so budgets are never exceeded.
        const int w = static_cast<int>(
            std::ceil(t.configs[j].area / grid - 1e-9));
        if (w > a) {
          ++area_skips;
          continue;
        }
        const double below =
            i == 0 ? 0.0 : u[(i - 1) * width + static_cast<std::size_t>(a - w)];
        const double cand = t.configs[j].cycles / t.period + below;
        if (cand < best) {
          best = cand;
          best_j = static_cast<int>(j);
        }
      }
      u[i * width + static_cast<std::size_t>(a)] = best;
      choice[i * width + static_cast<std::size_t>(a)] = best_j;
    }
  }

  SelectionResult res;
  res.assignment.assign(n, 0);
  int a = cells;
  for (std::size_t i = n; i-- > 0;) {
    const int j = choice[i * width + static_cast<std::size_t>(a)];
    res.assignment[i] = j;
    a -= static_cast<int>(
        std::ceil(ts.tasks[i].configs[static_cast<std::size_t>(j)].area / grid -
                  1e-9));
  }
  res.utilization = ts.utilization(res.assignment);
  res.area_used = ts.area(res.assignment);
  res.schedulable = rt::edf_schedulable(res.utilization);
  ISEX_COUNT("customize.edf.runs");
  ISEX_COUNT_ADD("customize.edf.dp_cells", n * width);
  ISEX_COUNT_ADD("customize.edf.config_scans", config_scans);
  ISEX_COUNT_ADD("customize.edf.area_skips", area_skips);
  ISEX_HIST("customize.edf.dp_width", width);
  return res;
}

}  // namespace isex::customize
