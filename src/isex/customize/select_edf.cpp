#include "isex/customize/select_edf.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <limits>
#include <string>

#include "isex/obs/trace.hpp"
#include "isex/rt/schedulability.hpp"
#include "isex/util/task_pool.hpp"

namespace isex::customize {

namespace {

/// Area-unconstrained utilization lower bound: every task at its fastest
/// configuration. The denominator of the truncated-run optimality gap.
double utilization_lower_bound(const rt::TaskSet& ts) {
  double lb = 0;
  for (const rt::Task& t : ts.tasks) {
    double best = std::numeric_limits<double>::infinity();
    for (const select::Config& c : t.configs) best = std::min(best, c.cycles);
    if (std::isfinite(best)) lb += best / t.period;
  }
  return lb;
}

}  // namespace

SelectionResult select_edf(const rt::TaskSet& ts, double area_budget,
                           const EdfOptions& opts) {
  ISEX_SPAN_CAT("customize.select_edf", "customize");
  const auto n = ts.size();
  const double grid = opts.area_grid;
  const int cells =
      static_cast<int>(std::floor(area_budget / grid + 1e-9));
  const auto width = static_cast<std::size_t>(cells) + 1;
  long config_scans = 0, area_skips = 0;
  robust::Budget* budget = opts.budget;
  const std::size_t table_bytes = n * width * (sizeof(double) + sizeof(int));
  bool truncated = false;
  std::size_t rows_done = 0;

  SelectionResult res;
  res.assignment.assign(n, 0);

  if (budget != nullptr && budget->charge_mem(table_bytes)) {
    // The DP table itself does not fit the memory budget: fall back to the
    // baseline assignment (configuration 0 per task) without allocating.
    truncated = true;
  } else {
    // u[i*width + a]: min utilization of tasks 0..i with quantized budget a.
    // choice[.]: configuration index realizing it.
    std::vector<double> u(n * width, std::numeric_limits<double>::infinity());
    std::vector<int> choice(n * width, 0);

    // One DP cell: pure function of row i-1, so the cells of a row may be
    // computed in any order (or concurrently) with identical results.
    auto fill_cell = [&](std::size_t i, int a, long* scans, long* skips) {
      const rt::Task& t = ts.tasks[i];
      double best = std::numeric_limits<double>::infinity();
      int best_j = 0;
      for (std::size_t j = 0; j < t.configs.size(); ++j) {
        ++*scans;
        // Quantize the configuration's area up so budgets are never
        // exceeded.
        const int w = static_cast<int>(
            std::ceil(t.configs[j].area / grid - 1e-9));
        if (w > a) {
          ++*skips;
          continue;
        }
        const double below =
            i == 0 ? 0.0
                   : u[(i - 1) * width + static_cast<std::size_t>(a - w)];
        const double cand = t.configs[j].cycles / t.period + below;
        if (cand < best) {
          best = cand;
          best_j = static_cast<int>(j);
        }
      }
      u[i * width + static_cast<std::size_t>(a)] = best;
      choice[i * width + static_cast<std::size_t>(a)] = best_j;
    };

    // Rows are sequential (row i reads row i-1); the cells of one row fan
    // out across the pool when the row is wide enough to pay for it. Only
    // budget-free runs parallelize: the per-cell charge order defines where
    // a truncated run stops, which must stay the serial schedule.
    const bool parallel_rows =
        budget == nullptr && util::max_threads() > 1 && width >= 2048;
    if (parallel_rows) {
      std::atomic<long> scans_total{0}, skips_total{0};
      for (std::size_t i = 0; i < n; ++i) {
        util::parallel_for(width, [&](std::size_t cell) {
          long scans = 0, skips = 0;
          fill_cell(i, static_cast<int>(cell), &scans, &skips);
          scans_total.fetch_add(scans, std::memory_order_relaxed);
          skips_total.fetch_add(skips, std::memory_order_relaxed);
        });
      }
      rows_done = n;
      config_scans = scans_total.load(std::memory_order_relaxed);
      area_skips = skips_total.load(std::memory_order_relaxed);
    } else {
      for (std::size_t i = 0; i < n && !truncated; ++i) {
        for (int a = 0; a <= cells; ++a) {
          if (budget != nullptr && budget->charge()) {
            truncated = true;
            break;
          }
          fill_cell(i, a, &config_scans, &area_skips);
        }
        if (!truncated) rows_done = i + 1;
      }
    }

    // Backtrack through the completed rows; any remaining task keeps its
    // baseline configuration 0 (zero area), so the assignment stays within
    // the area budget even when truncated.
    int a = cells;
    for (std::size_t i = rows_done; i-- > 0;) {
      const int j = choice[i * width + static_cast<std::size_t>(a)];
      res.assignment[i] = j;
      a -= static_cast<int>(std::ceil(
          ts.tasks[i].configs[static_cast<std::size_t>(j)].area / grid -
          1e-9));
    }
    if (budget != nullptr) budget->release_mem(table_bytes);
  }

  res.utilization = ts.utilization(res.assignment);
  res.area_used = ts.area(res.assignment);
  res.schedulable = rt::edf_schedulable(res.utilization);
  if (truncated) {
    res.status = robust::Status::kBudgetTruncated;
    const double lb = utilization_lower_bound(ts);
    res.optimality_gap =
        lb > 0 ? std::max(0.0, (res.utilization - lb) / lb) : 0.0;
    ISEX_COUNT("customize.edf.budget_truncations");
  }
  ISEX_COUNT("customize.edf.runs");
  ISEX_COUNT_ADD("customize.edf.dp_cells", n * width);
  ISEX_COUNT_ADD("customize.edf.config_scans", config_scans);
  ISEX_COUNT_ADD("customize.edf.area_skips", area_skips);
  ISEX_HIST("customize.edf.dp_width", width);
  return res;
}

robust::Outcome<SelectionResult> select_edf_bounded(const rt::TaskSet& ts,
                                                    double area_budget,
                                                    const EdfOptions& opts) {
  robust::Outcome<SelectionResult> out;
  if (std::string err = ts.validate(); !err.empty()) {
    out.status = robust::Status::kInfeasible;
    out.detail = err;
    if (opts.budget != nullptr) out.budget = opts.budget->report();
    return out;
  }
  out.value = select_edf(ts, area_budget, opts);
  out.status = out.value.status;
  out.optimality_gap = out.value.optimality_gap;
  if (opts.budget != nullptr) out.budget = opts.budget->report();
  return out;
}

}  // namespace isex::customize
