// The didactic three-task system of Fig 3.2 / Section 3.1.2.
//
// T1: P=6,  C=2, config2 = (area 7, cycles 1)
// T2: P=8,  C=3, config2 = (area 6, cycles 2)
// T3: P=12, C=6, config2 = (area 4, cycles 5)
// Area budget 10. Software-only U = 2/6 + 3/8 + 6/12 = 29/24 > 1; every
// single-task heuristic fails, while customizing T2 and T3 yields U = 1.
#pragma once

#include "isex/rt/task.hpp"

namespace isex::customize {

rt::TaskSet motivating_example();

inline constexpr double kMotivatingAreaBudget = 10;

}  // namespace isex::customize
