// Optimal custom-instruction selection under EDF (Algorithm 1).
//
// Given a task set where each task carries its configuration curve and a
// total area budget for the custom functional units, pick one configuration
// per task minimizing total utilization. Because EDF schedulability is
// exactly U <= 1, minimizing U subsumes meeting deadlines. The pseudo-
// polynomial dynamic program runs over an area grid of step delta:
//   U_i(A) = min_{j : area_{i,j} <= A} cycle_{i,j}/P_i + U_{i-1}(A - area_{i,j})
#pragma once

#include <vector>

#include "isex/robust/outcome.hpp"
#include "isex/rt/task.hpp"

namespace isex::customize {

struct SelectionResult {
  std::vector<int> assignment;  // chosen configuration index per task
  double utilization = 0;
  double area_used = 0;
  bool schedulable = false;  // under the policy the selector targets
  /// kExact, or kBudgetTruncated when a budget stopped the solver early; the
  /// assignment is then still feasible (area-respecting), built from the
  /// completed part of the search plus baseline (config 0) choices.
  robust::Status status = robust::Status::kExact;
  /// 0 when exact; otherwise (utilization - U_lb) / U_lb with U_lb the
  /// area-unconstrained lower bound sum_i min_j cycles_ij / P_i.
  double optimality_gap = 0;
};

struct EdfOptions {
  double area_grid = 1.0;  // the DP step delta (adder-equivalents)
  /// Cooperative execution budget (non-owning; nullptr = unlimited), charged
  /// per DP cell; the DP table is charged against the memory budget up
  /// front. On exhaustion the completed rows are backtracked and the
  /// remaining tasks stay at configuration 0 (zero area, always fits).
  robust::Budget* budget = nullptr;
};

/// Exact (up to grid quantization) minimum-utilization selection for EDF.
SelectionResult select_edf(const rt::TaskSet& ts, double area_budget,
                           const EdfOptions& opts = {});

/// Anytime wrapper: validates the task set (degenerate inputs become
/// kInfeasible with a reason in `detail` instead of a throw) and reports the
/// budget consumption alongside the selection.
robust::Outcome<SelectionResult> select_edf_bounded(
    const rt::TaskSet& ts, double area_budget, const EdfOptions& opts = {});

}  // namespace isex::customize
