// Optimal custom-instruction selection under EDF (Algorithm 1).
//
// Given a task set where each task carries its configuration curve and a
// total area budget for the custom functional units, pick one configuration
// per task minimizing total utilization. Because EDF schedulability is
// exactly U <= 1, minimizing U subsumes meeting deadlines. The pseudo-
// polynomial dynamic program runs over an area grid of step delta:
//   U_i(A) = min_{j : area_{i,j} <= A} cycle_{i,j}/P_i + U_{i-1}(A - area_{i,j})
#pragma once

#include <vector>

#include "isex/rt/task.hpp"

namespace isex::customize {

struct SelectionResult {
  std::vector<int> assignment;  // chosen configuration index per task
  double utilization = 0;
  double area_used = 0;
  bool schedulable = false;  // under the policy the selector targets
};

struct EdfOptions {
  double area_grid = 1.0;  // the DP step delta (adder-equivalents)
};

/// Exact (up to grid quantization) minimum-utilization selection for EDF.
SelectionResult select_edf(const rt::TaskSet& ts, double area_budget,
                           const EdfOptions& opts = {});

}  // namespace isex::customize
