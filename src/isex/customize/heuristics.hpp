// The per-task heuristics of the motivating example (Fig 3.2).
//
// Customizing each task in isolation misses the interplay the scheduler
// creates; the four natural heuristics below all fail on the didactic
// three-task example while the optimal selection succeeds. They remain in
// the library as baselines for the experiments.
#pragma once

#include <string_view>

#include "isex/customize/select_edf.hpp"

namespace isex::customize {

enum class Heuristic {
  kEqualAreaDivision,         // Fig 3.2(a): budget split evenly across tasks
  kSmallestDeadlineFirst,     // Fig 3.2(b): EDF-priority-ordered greedy
  kHighestUtilReduction,      // Fig 3.2(c): largest possible delta-U first
  kBestGainAreaRatio,         // Fig 3.2(d): largest delta-U per area first
};

std::string_view heuristic_name(Heuristic h);

/// Applies the heuristic under an EDF schedulability target.
SelectionResult select_heuristic(const rt::TaskSet& ts, double area_budget,
                                 Heuristic h);

}  // namespace isex::customize
