#include "isex/codegen/schedule.hpp"

#include <queue>
#include <stdexcept>

namespace isex::codegen {

ScheduledBlock lower(const ir::Dfg& dfg,
                     const std::vector<util::Bitset>& cis) {
  const auto n = static_cast<std::size_t>(dfg.num_nodes());
  // Supernode id per node: CIs first, then one per remaining op.
  std::vector<int> super(n, -1);
  for (std::size_t c = 0; c < cis.size(); ++c) {
    cis[c].for_each([&](std::size_t v) {
      if (super[v] >= 0)
        throw std::invalid_argument("lower: overlapping custom instructions");
      super[v] = static_cast<int>(c);
    });
  }
  int num_super = static_cast<int>(cis.size());
  std::vector<int> super_of_single(n, -1);
  for (std::size_t v = 0; v < n; ++v) {
    const auto op = dfg.node(static_cast<int>(v)).op;
    if (super[v] >= 0) continue;
    if (op == ir::Opcode::kInput || op == ir::Opcode::kConst) continue;
    super[v] = num_super;
    super_of_single[v] = num_super;
    ++num_super;
  }

  // Contracted dependency graph between supernodes.
  std::vector<std::vector<int>> succ(static_cast<std::size_t>(num_super));
  std::vector<int> indegree(static_cast<std::size_t>(num_super), 0);
  for (std::size_t v = 0; v < n; ++v) {
    const int sv = super[v];
    if (sv < 0) continue;
    for (ir::NodeId o : dfg.node(static_cast<int>(v)).operands) {
      const int so = super[static_cast<std::size_t>(o)];
      if (so < 0 || so == sv) continue;
      succ[static_cast<std::size_t>(so)].push_back(sv);
      ++indegree[static_cast<std::size_t>(sv)];
    }
  }

  // Kahn topological sort of supernodes; a leftover means a cycle, i.e. a
  // non-convex custom instruction.
  std::queue<int> ready;
  for (int s = 0; s < num_super; ++s)
    if (indegree[static_cast<std::size_t>(s)] == 0) ready.push(s);
  std::vector<int> order;
  while (!ready.empty()) {
    const int s = ready.front();
    ready.pop();
    order.push_back(s);
    for (int t : succ[static_cast<std::size_t>(s)])
      if (--indegree[static_cast<std::size_t>(t)] == 0) ready.push(t);
  }
  if (static_cast<int>(order.size()) != num_super)
    throw std::invalid_argument(
        "lower: non-convex custom instruction (no atomic schedule exists)");

  ScheduledBlock out;
  for (int s : order) {
    Instruction instr;
    if (s < static_cast<int>(cis.size())) {
      instr.custom = true;
      instr.nodes = cis[static_cast<std::size_t>(s)].to_vector();
    } else {
      for (std::size_t v = 0; v < n; ++v)
        if (super_of_single[v] == s) {
          instr.nodes = {static_cast<ir::NodeId>(v)};
          break;
        }
    }
    out.code.push_back(std::move(instr));
  }
  return out;
}

bool jointly_schedulable(const ir::Dfg& dfg,
                         const std::vector<util::Bitset>& cis) {
  // Contract each CI (and each loose op) and look for a cycle: the same
  // machinery as lower(), without materializing the schedule.
  const auto n = static_cast<std::size_t>(dfg.num_nodes());
  std::vector<int> super(n, -1);
  for (std::size_t c = 0; c < cis.size(); ++c) {
    bool overlap = false;
    cis[c].for_each([&](std::size_t v) {
      if (super[v] >= 0) overlap = true;
      super[v] = static_cast<int>(c);
    });
    if (overlap) return false;
  }
  int num_super = static_cast<int>(cis.size());
  for (std::size_t v = 0; v < n; ++v) {
    const auto op = dfg.node(static_cast<int>(v)).op;
    if (super[v] >= 0 || op == ir::Opcode::kInput || op == ir::Opcode::kConst)
      continue;
    super[v] = num_super++;
  }
  std::vector<std::vector<int>> succ(static_cast<std::size_t>(num_super));
  std::vector<int> indegree(static_cast<std::size_t>(num_super), 0);
  for (std::size_t v = 0; v < n; ++v) {
    const int sv = super[v];
    if (sv < 0) continue;
    for (ir::NodeId o : dfg.node(static_cast<int>(v)).operands) {
      const int so = super[static_cast<std::size_t>(o)];
      if (so < 0 || so == sv) continue;
      succ[static_cast<std::size_t>(so)].push_back(sv);
      ++indegree[static_cast<std::size_t>(sv)];
    }
  }
  std::queue<int> ready;
  for (int s = 0; s < num_super; ++s)
    if (indegree[static_cast<std::size_t>(s)] == 0) ready.push(s);
  int seen = 0;
  while (!ready.empty()) {
    const int s = ready.front();
    ready.pop();
    ++seen;
    for (int t : succ[static_cast<std::size_t>(s)])
      if (--indegree[static_cast<std::size_t>(t)] == 0) ready.push(t);
  }
  return seen == num_super;
}

std::vector<std::size_t> schedulable_subset(
    const ir::Dfg& dfg, const std::vector<util::Bitset>& cis) {
  std::vector<std::size_t> kept;
  std::vector<util::Bitset> accepted;
  for (std::size_t i = 0; i < cis.size(); ++i) {
    accepted.push_back(cis[i]);
    if (jointly_schedulable(dfg, accepted)) {
      kept.push_back(i);
    } else {
      accepted.pop_back();
    }
  }
  return kept;
}

std::vector<std::int64_t> execute(const ir::Dfg& dfg,
                                  const ScheduledBlock& block,
                                  const std::vector<std::int64_t>& inputs) {
  const auto n = static_cast<std::size_t>(dfg.num_nodes());
  std::vector<std::int64_t> values(n, 0);
  std::vector<bool> computed(n, false);
  // Leaves first.
  std::size_t next_input = 0;
  for (std::size_t v = 0; v < n; ++v) {
    const auto op = dfg.node(static_cast<int>(v)).op;
    if (op == ir::Opcode::kInput) {
      if (next_input >= inputs.size())
        throw std::invalid_argument("execute: not enough input values");
      values[v] = inputs[next_input++];
      computed[v] = true;
    } else if (op == ir::Opcode::kConst) {
      values[v] = ir::apply_op(dfg, static_cast<int>(v), values);
      computed[v] = true;
    }
  }
  for (const Instruction& instr : block.code) {
    // Atomicity: all external operands must be ready before the
    // instruction starts (internal producer-consumer chains are fine: the
    // node list is ascending, hence topologically ordered).
    for (ir::NodeId v : instr.nodes)
      for (ir::NodeId o : dfg.node(v).operands) {
        bool internal = false;
        for (ir::NodeId w : instr.nodes) internal = internal || (w == o);
        if (!internal && !computed[static_cast<std::size_t>(o)])
          throw std::logic_error("execute: operand not ready (bad schedule)");
      }
    for (ir::NodeId v : instr.nodes) {
      values[static_cast<std::size_t>(v)] = ir::apply_op(dfg, v, values);
      computed[static_cast<std::size_t>(v)] = true;
    }
  }
  return values;
}

}  // namespace isex::codegen
