// Code generation: lowering a basic block with selected custom instructions
// into a linear instruction schedule (the final stage of the Fig 1.2 design
// flow).
//
// Every selected custom instruction executes atomically, so its nodes must
// be contiguous in the schedule. Contracting each CI into a supernode and
// topologically sorting the contracted graph yields such a schedule exactly
// when every CI is convex — a non-convex CI creates a cycle among
// supernodes, which lower() reports. The scheduled program exposes the code
// size reduction (packing many primitives into one instruction shrinks the
// fetch/decode stream) and can be executed against ir::evaluate for
// functional verification.
#pragma once

#include <vector>

#include "isex/ir/dfg.hpp"
#include "isex/ir/eval.hpp"
#include "isex/util/bitset.hpp"

namespace isex::codegen {

struct Instruction {
  bool custom = false;
  std::vector<ir::NodeId> nodes;  // one node, or a CI's nodes in topo order
};

struct ScheduledBlock {
  std::vector<Instruction> code;

  /// Instructions in the stream (each CI counts once).
  std::size_t length() const { return code.size(); }
};

/// Lowers the block: each CI in `cis` (disjoint node sets) becomes one
/// atomic instruction, remaining operations stay primitive (kInput/kConst
/// leaves produce no instruction). Throws std::invalid_argument if a CI is
/// non-convex (unschedulable) or the CIs overlap.
ScheduledBlock lower(const ir::Dfg& dfg,
                     const std::vector<util::Bitset>& cis);

/// Executes the schedule (each instruction's nodes atomically, in order)
/// and returns per-node values; must equal ir::evaluate on every value node.
std::vector<std::int64_t> execute(const ir::Dfg& dfg,
                                  const ScheduledBlock& block,
                                  const std::vector<std::int64_t>& inputs);

/// True iff the (disjoint, individually convex) CIs admit a joint atomic
/// schedule. Pairwise convexity is NOT sufficient: two convex CIs with
/// interleaved dependencies form a cycle in the contracted graph — the
/// "unschedulable code" hazard Section 2.3.2 of the thesis warns about.
bool jointly_schedulable(const ir::Dfg& dfg,
                         const std::vector<util::Bitset>& cis);

/// Greedily keeps a jointly schedulable subset of the candidates, scanning
/// in the given order (put the highest-gain candidates first). Returns the
/// indices of the kept candidates.
std::vector<std::size_t> schedulable_subset(
    const ir::Dfg& dfg, const std::vector<util::Bitset>& cis);

}  // namespace isex::codegen
