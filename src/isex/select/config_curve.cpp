#include "isex/select/config_curve.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <unordered_map>

#include "isex/codegen/schedule.hpp"
#include "isex/obs/trace.hpp"
#include "isex/util/task_pool.hpp"

namespace isex::select {

double ConfigCurve::cycles_at(double area_budget) const {
  return config_at(area_budget).cycles;
}

const Config& ConfigCurve::config_at(double area_budget) const {
  const Config* best = &points.front();
  for (const Config& c : points) {
    if (c.area <= area_budget + 1e-9) best = &c;
    else break;
  }
  return *best;
}

std::vector<ise::Candidate> disjoint_pool(const ir::Dfg& dfg,
                                          std::vector<ise::Candidate> cands) {
  std::sort(cands.begin(), cands.end(),
            [](const ise::Candidate& a, const ise::Candidate& b) {
              if (a.total_gain() != b.total_gain())
                return a.total_gain() > b.total_gain();
              const double da = a.est.area > 0 ? a.total_gain() / a.est.area : 1e18;
              const double db = b.est.area > 0 ? b.total_gain() / b.est.area : 1e18;
              return da > db;
            });
  util::Bitset covered = dfg.empty_set();
  std::vector<ise::Candidate> pool;
  std::vector<util::Bitset> accepted;
  for (auto& c : cands) {
    if (c.total_gain() <= 0) continue;
    if (c.nodes.intersects(covered)) continue;
    // Disjointness is not enough: the pool must stay jointly atomically
    // schedulable (see codegen::jointly_schedulable).
    accepted.push_back(c.nodes);
    if (!codegen::jointly_schedulable(dfg, accepted)) {
      accepted.pop_back();
      continue;
    }
    covered |= c.nodes;
    pool.push_back(std::move(c));
  }
  return pool;
}

double base_cycles(const ir::Program& prog,
                   const std::vector<std::int64_t>& counts,
                   const hw::CellLibrary& lib) {
  double base = 0;
  for (int b = 0; b < prog.num_blocks(); ++b) {
    double cost = 0;
    for (const ir::Node& n : prog.block(b).dfg.nodes())
      cost += lib.sw_cycles(n);
    base += cost * static_cast<double>(counts[static_cast<std::size_t>(b)]);
  }
  return base;
}

std::vector<opt::KnapsackItem> selection_items(
    const ir::Program& prog, const std::vector<std::int64_t>& counts,
    const hw::CellLibrary& lib, const CurveOptions& opts) {
  ISEX_SPAN_CAT("select.selection_items", "select");
  // Hottest blocks by cycle contribution.
  std::vector<double> contribution(static_cast<std::size_t>(prog.num_blocks()));
  for (int b = 0; b < prog.num_blocks(); ++b) {
    double cost = 0;
    for (const ir::Node& n : prog.block(b).dfg.nodes())
      cost += lib.sw_cycles(n);
    contribution[static_cast<std::size_t>(b)] =
        cost * static_cast<double>(counts[static_cast<std::size_t>(b)]);
  }
  std::vector<int> order(static_cast<std::size_t>(prog.num_blocks()));
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    return contribution[static_cast<std::size_t>(a)] >
           contribution[static_cast<std::size_t>(b)];
  });

  // Candidate pool: disjoint per block, merged across blocks. Blocks are
  // independent, so they fan out across the pool (each block enumeration
  // nests its own seed-level parallelism); the merge appends per-block pools
  // in hot order, so the result is byte-identical to the serial loop. With a
  // budget that has deterministic limits the serial loop is kept: its
  // in-order charging decides where a truncated run stops enumerating.
  const int hot = std::min<int>(opts.max_hot_blocks, prog.num_blocks());
  std::vector<std::vector<ise::Candidate>> block_pools(
      static_cast<std::size_t>(hot));
  auto build_block = [&](std::size_t i) {
    const int b = order[i];
    const auto freq = static_cast<double>(counts[static_cast<std::size_t>(b)]);
    if (freq <= 0) return;
    auto cands = ise::enumerate_candidates(prog.block(b).dfg, lib,
                                           opts.enum_opts, b, freq);
    auto block_pool = disjoint_pool(prog.block(b).dfg, cands);
    if (opts.disconnected_pairs) {
      // The greedy cover is not monotone in the candidate set, so build the
      // pair-augmented pool separately and keep whichever covers more gain.
      auto augmented = cands;
      for (auto& c : ise::enumerate_disconnected(
               prog.block(b).dfg, lib, cands, opts.enum_opts.constraints))
        augmented.push_back(std::move(c));
      auto pair_pool = disjoint_pool(prog.block(b).dfg, std::move(augmented));
      auto total = [](const std::vector<ise::Candidate>& v) {
        double g = 0;
        for (const auto& c : v) g += c.total_gain();
        return g;
      };
      if (total(pair_pool) > total(block_pool)) block_pool = std::move(pair_pool);
    }
    block_pools[i] = std::move(block_pool);
  };
  const robust::Budget* budget = opts.enum_opts.budget;
  const bool parallel_blocks =
      util::max_threads() > 1 &&
      (budget == nullptr || !budget->deterministic_limits());
  if (parallel_blocks)
    util::parallel_for(static_cast<std::size_t>(hot), build_block);
  else
    for (int i = 0; i < hot; ++i) build_block(static_cast<std::size_t>(i));

  std::vector<ise::Candidate> pool;
  for (auto& bp : block_pools)
    for (auto& c : bp) pool.push_back(std::move(c));

  // Isomorphic instructions (same datapath shape) may share one hardware
  // implementation: a whole isomorphism class becomes one item whose gain is
  // the sum over its occurrences.
  std::vector<opt::KnapsackItem> items;
  if (opts.share_isomorphic) {
    std::unordered_map<std::uint64_t, opt::KnapsackItem> classes;
    for (const auto& c : pool) {
      auto [it, inserted] =
          classes.try_emplace(c.iso_hash, opt::KnapsackItem{c.est.area, 0});
      it->second.gain += c.total_gain();
      if (!inserted) it->second.area = std::max(it->second.area, c.est.area);
    }
    items.reserve(classes.size());
    for (auto& [h, item] : classes) items.push_back(item);
  } else {
    items.reserve(pool.size());
    for (const auto& c : pool)
      items.push_back(opt::KnapsackItem{c.est.area, c.total_gain()});
  }
  return items;
}

ConfigCurve build_config_curve(const ir::Program& prog,
                               const std::vector<std::int64_t>& counts,
                               const hw::CellLibrary& lib,
                               const CurveOptions& opts) {
  ISEX_SPAN_CAT("select.build_config_curve", "select");
  ISEX_COUNT("select.curve_builds");
  const double base = base_cycles(prog, counts, lib);
  const auto items = selection_items(prog, counts, lib, opts);
  ISEX_COUNT_ADD("select.knapsack_items", items.size());

  double max_area = 0;
  for (const auto& it : items) max_area += it.area;

  ConfigCurve curve;
  curve.points.push_back(Config{0, base});
  if (!items.empty() && max_area > 0) {
    const auto profile = opt::knapsack_profile(items, max_area, opts.area_grid);
    double last_gain = 0;
    for (std::size_t a = 1; a < profile.size(); ++a) {
      if (profile[a] > last_gain + 1e-9) {
        last_gain = profile[a];
        curve.points.push_back(Config{static_cast<double>(a) * opts.area_grid,
                                      base - profile[a]});
      }
    }
  }
  // Thin to at most max_points, always keeping the first and last.
  if (opts.max_points > 1 &&
      static_cast<int>(curve.points.size()) > opts.max_points) {
    std::vector<Config> thin;
    const std::size_t n = curve.points.size();
    for (int i = 0; i < opts.max_points; ++i) {
      const std::size_t idx =
          (static_cast<std::size_t>(i) * (n - 1)) /
          static_cast<std::size_t>(opts.max_points - 1);
      thin.push_back(curve.points[idx]);
    }
    thin.erase(std::unique(thin.begin(), thin.end(),
                           [](const Config& a, const Config& b) {
                             return a.area == b.area && a.cycles == b.cycles;
                           }),
               thin.end());
    curve.points = std::move(thin);
  }
  return curve;
}

}  // namespace isex::select
