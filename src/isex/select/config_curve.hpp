// Per-task custom-instruction configuration curves.
//
// A "configuration" config_{i,j} of task T_i in Chapter 3 is a selected set
// of custom instructions with its silicon area and the resulting task cycle
// count; config_{i,1} is the plain-software point (area 0). This module runs
// the full identification + selection pipeline over a task Program and
// extracts the area/cycles trade-off curve of Fig 3.1: enumerate candidates
// in the hottest blocks, thin them to a non-overlapping pool (each operation
// is covered by at most one custom instruction), merge isomorphic datapaths
// so identical instructions share silicon, and sweep an exact 0-1 knapsack
// over every area budget.
#pragma once

#include <cstdint>
#include <vector>

#include "isex/hw/cell_library.hpp"
#include "isex/ir/program.hpp"
#include "isex/ise/enumerate.hpp"
#include "isex/opt/knapsack.hpp"

namespace isex::select {

/// One processor configuration: CI silicon area vs task execution cycles.
struct Config {
  double area = 0;    // adder-equivalents
  double cycles = 0;  // task execution time in processor cycles
};

/// Undominated configurations in ascending area / strictly descending cycles.
struct ConfigCurve {
  std::vector<Config> points;

  double base_cycles() const { return points.front().cycles; }
  double max_area() const { return points.back().area; }
  double best_cycles() const { return points.back().cycles; }

  /// Cheapest achievable cycle count with CI area <= budget.
  double cycles_at(double area_budget) const;

  /// Largest area point with area <= budget (the configuration a budget buys).
  const Config& config_at(double area_budget) const;
};

struct CurveOptions {
  ise::EnumOptions enum_opts;
  double area_grid = 0.25;       // knapsack quantization (adder-equivalents)
  bool share_isomorphic = true;  // isomorphic CIs share one implementation
  int max_hot_blocks = 12;       // enumerate only in the hottest blocks
  int max_points = 64;           // curve thinning (0 = keep all breakpoints)
  /// Also build disconnected two-component candidates (CFU-internal
  /// parallelism on the single-issue base core); see
  /// ise::enumerate_disconnected.
  bool disconnected_pairs = false;
};

/// Thins an (overlapping) candidate list of one block to a disjoint pool,
/// greedily by total gain (ties: gain density).
std::vector<ise::Candidate> disjoint_pool(const ir::Dfg& dfg,
                                          std::vector<ise::Candidate> cands);

/// Builds the configuration curve for a task. `counts` gives per-block
/// execution counts — WCET-path counts for the real-time chapters, profiled
/// counts for the speedup studies.
ConfigCurve build_config_curve(const ir::Program& prog,
                               const std::vector<std::int64_t>& counts,
                               const hw::CellLibrary& lib,
                               const CurveOptions& opts);

/// The additive (gain, area) items the curve is built from: the task's
/// custom-instruction library after per-block conflict thinning and optional
/// isomorphic merging. This is the candidate set the Chapter 4 Pareto
/// machinery consumes directly (each item is one delta_{i,j} / a_{i,j}).
std::vector<opt::KnapsackItem> selection_items(
    const ir::Program& prog, const std::vector<std::int64_t>& counts,
    const hw::CellLibrary& lib, const CurveOptions& opts);

/// Base (software-only) cycle count of the task under `counts`.
double base_cycles(const ir::Program& prog,
                   const std::vector<std::int64_t>& counts,
                   const hw::CellLibrary& lib);

}  // namespace isex::select
