// isex::cli — the command-line driver as a library function.
//
// The `isex` binary is a two-line main() over run(): having the whole driver
// (argument parsing, command dispatch, error handling, exit codes) inside
// the library lets the test suite and the fuzz harness exercise exactly the
// code the shipped binary runs, in-process, without spawning executables.
//
// Exit codes: 0 success, 1 analysis result is negative (not schedulable),
// 2 usage / argument / I/O error, 3 --strict was given and some solver
// finished with a non-Exact status (budget truncation, degraded fallback,
// or infeasibility), 4 a witness checker rejected a solver answer
// (--paranoid, or the `certify` command).
#pragma once

#include <string>
#include <vector>

namespace isex::cli {

/// Runs the isex CLI on `args` (argv[1..argc-1]); returns the exit code.
/// Never throws: every error path becomes a one-line stderr diagnostic and
/// exit code 2.
int run(const std::vector<std::string>& args);

}  // namespace isex::cli
