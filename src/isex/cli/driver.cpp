// isex — command-line driver over the library's public API.
//
//   isex list
//   isex curve <benchmark> [--csv]
//   isex select <U0> <budget-fraction> <edf|rms> <benchmark>...
//   isex pareto <benchmark> <eps>
//   isex iterative <U0> <benchmark>...
//   isex reconfig <num-loops> <seed>
//   isex inject <U0> <budget-fraction> <edf|rms> <soft|firm|mode> <factor>
//               <benchmark>...
//   isex margin <U0> <edf|rms> <benchmark>...
//   isex trace <benchmark>... [-o trace.json] [--csv] [--u0 U]
//              [--budget-fraction f] [--policy edf|rms]
//   isex certify <benchmark>... [--u0 U] [--budget-fraction f]
//               [-o report.json]
//   isex serve [--socket path] [--queue-capacity N] [--shed-depth N]
//              [--max-request-bytes N] [--cache-entries N] [--cache-bytes N]
//              [--stats-file f.json] [--stats-interval s]
//              [--journal-capacity N] [--crash-dump f.bin]
//              [--workers N] [--watchdog s] [--chaos p] ...
//   isex lift <binary> [-o dfg.json] [--raw [--vaddr A]]
//             [--fixture <name>] [--emit-fixture <name> <path>]
//     (untrusted-binary frontend: bounded ELF32 read, total RV32I decode,
//      CFG recovery, DFG lift, certification, config curve)
//   isex tail <journal.bin> [-n N] [--rid R] [--trace out.json] [--csv]
//     (accepts a crash-dump base name; resolves the newest <base>.<pid>)
//
// Global flags, accepted anywhere on the command line:
//   --metrics[=file.json]   dump the obs metrics registry after the command
//   --time-budget <t>       wall-clock budget for the solvers: "50ms", "2s",
//                           or a plain number of seconds
//   --node-budget <n>       work budget in solver charges: "500K", "2M", "1G"
//   --mem-budget <b>        accounted-memory budget: "64M", "1G" (bytes)
//   --threads <n>           solver worker threads (default: hardware
//                           concurrency, or ISEX_THREADS; 1 = exact legacy
//                           serial execution)
//   --strict                exit 3 when any solver result is not Exact
//   --paranoid              run the witness checkers on every solver answer
//                           (certify/) and exit 4 on any certificate failure
//
// With a budget set, `select` runs the graceful-degradation ladder
// (robust::select_*_with_fallback) and `iterative` threads the budget
// through MLGP; each prints the outcome status, optimality gap, and budget
// report. Without budget flags every command behaves exactly as before.
//
// Examples:
//   isex select 1.08 0.5 edf crc32 sha djpeg blowfish
//   isex --time-budget 50ms select 1.08 0.5 rms crc32 sha djpeg blowfish
//   isex pareto g721decode 0.69
//   isex inject 1.05 0.5 edf mode 1.25 crc32 sha djpeg blowfish
//   isex --metrics=metrics.json select 1.08 0.5 edf crc32 sha
//
// Exit codes: 0 success, 1 analysis result is negative (not schedulable),
// 2 usage / argument / I/O error, 3 strict-mode budget failure,
// 4 certificate failure (--paranoid or `isex certify`), 128+signal when a
// one-shot command is interrupted by SIGINT/SIGTERM (130/143) — after the
// in-flight solver stops at its budget stride and --metrics/-o outputs are
// flushed (file outputs are written atomically via tmp+rename, so an
// interrupted run never leaves a truncated artifact). `isex serve` instead
// drains gracefully and exits 0 on the first signal.
#include "isex/cli/driver.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <dirent.h>
#include <sys/stat.h>
#include <fstream>
#include <iostream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "isex/certify/ci.hpp"
#include "isex/certify/dfg.hpp"
#include "isex/certify/pareto.hpp"
#include "isex/certify/schedule.hpp"
#include "isex/frontend/fixtures.hpp"
#include "isex/frontend/lift.hpp"
#include "isex/customize/select_edf.hpp"
#include "isex/customize/select_rms.hpp"
#include "isex/faults/sensitivity.hpp"
#include "isex/ise/enumerate.hpp"
#include "isex/ise/single_cut.hpp"
#include "isex/mlgp/iterative.hpp"
#include "isex/mlgp/mlgp.hpp"
#include "isex/obs/journal.hpp"
#include "isex/obs/trace.hpp"
#include "isex/pareto/intra.hpp"
#include "isex/reconfig/algorithms.hpp"
#include "isex/robust/fallback.hpp"
#include "isex/rtreconfig/algorithms.hpp"
#include "isex/serve/server.hpp"
#include "isex/util/file.hpp"
#include "isex/util/table.hpp"
#include "isex/util/task_pool.hpp"
#include "isex/workloads/tasks.hpp"

namespace isex::cli {

namespace {

int usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  isex list\n"
      "  isex curve <benchmark> [--csv]\n"
      "  isex select <U0> <budget-fraction> <edf|rms> <benchmark>...\n"
      "  isex pareto <benchmark> <eps>\n"
      "  isex iterative <U0> <benchmark>...\n"
      "  isex reconfig <num-loops> <seed>\n"
      "  isex inject <U0> <budget-fraction> <edf|rms> <soft|firm|mode> "
      "<factor> <benchmark>...\n"
      "  isex margin <U0> <edf|rms> <benchmark>...\n"
      "  isex trace <benchmark>... [-o trace.json] [--csv] [--u0 U]\n"
      "             [--budget-fraction f] [--policy edf|rms]\n"
      "  isex certify <benchmark>... [--u0 U] [--budget-fraction f]\n"
      "              [-o report.json]\n"
      "  isex serve [--socket path] [--queue-capacity N] [--shed-depth N]\n"
      "             [--workers N] [--watchdog s] [--watchdog-grace s]\n"
      "             [--drain-timeout s] [--poison-kills K]\n"
      "             [--breaker-respawns N] [--breaker-window s]\n"
      "             [--breaker-cooldown s] [--worker-mem BYTES]\n"
      "             [--worker-cpu s] [--chaos p] [--chaos-seed S]\n"
      "             [--max-request-bytes N] [--cache-entries N] "
      "[--cache-bytes N]\n"
      "             [--stats-file f.json] [--stats-interval s]\n"
      "             [--journal-capacity N] [--crash-dump f.bin]\n"
      "  isex lift <binary> [-o dfg.json] [--raw [--vaddr A]]\n"
      "            [--fixture <name>] [--emit-fixture <name> <path>]\n"
      "  isex tail <journal.bin> [-n N] [--rid R] [--trace out.json] "
      "[--csv]\n"
      "global flags:\n"
      "  --metrics[=file.json]  dump the metrics registry after the command\n"
      "  --time-budget <t>      solver wall-clock budget (e.g. 50ms, 2s)\n"
      "  --node-budget <n>      solver work budget in charges (e.g. 500K, 2M)\n"
      "  --mem-budget <b>       solver memory budget in bytes (e.g. 64M, 1G)\n"
      "  --threads <n>          solver worker threads (default: hardware\n"
      "                         concurrency or ISEX_THREADS; 1 = serial)\n"
      "  --strict               exit 3 when any solver result is not Exact\n"
      "  --paranoid             certify every solver answer; exit 4 on any\n"
      "                         certificate failure\n");
  return 2;
}

/// Per-invocation state shared by the commands: the (optional) execution
/// budget and the worst solver status seen, which --strict turns into the
/// exit code.
struct Ctx {
  robust::Budget budget;
  double time_budget_seconds = 0;
  bool has_budget = false;
  bool armed = false;
  bool strict = false;
  bool paranoid = false;
  bool cert_failed = false;
  robust::Status worst = robust::Status::kExact;

  /// Records a witness-checker verdict; failures print one line to stderr
  /// and (under --paranoid) turn into exit code 4 at the end of run().
  void note_certificate(const certify::CertifyReport& rep) {
    if (rep.ok()) return;
    cert_failed = true;
    std::fprintf(stderr, "certificate: %s\n", rep.summary().c_str());
  }

  /// The wall-clock limit is armed here, at the first solver call, not at
  /// flag-parse time — workload construction must not eat the budget.
  robust::Budget* budget_ptr() {
    if (!has_budget) return nullptr;
    if (!armed) {
      if (time_budget_seconds > 0) budget.set_time_budget(time_budget_seconds);
      armed = true;
    }
    return &budget;
  }

  void note(robust::Status s) {
    auto rank = [](robust::Status st) {
      switch (st) {
        case robust::Status::kExact: return 0;
        case robust::Status::kDegraded: return 1;
        case robust::Status::kBudgetTruncated: return 2;
        case robust::Status::kInfeasible: return 3;
      }
      return 0;
    };
    if (rank(s) > rank(worst)) worst = s;
  }
};

// --- argument validation -----------------------------------------------------

double parse_double(const char* what, const std::string& s) {
  std::size_t pos = 0;
  double v = 0;
  try {
    v = std::stod(s, &pos);
  } catch (const std::exception&) {
    pos = 0;
  }
  if (pos != s.size())
    throw std::invalid_argument(std::string(what) + ": expected a number, got '" +
                                s + "'");
  return v;
}

int parse_int(const char* what, const std::string& s) {
  std::size_t pos = 0;
  int v = 0;
  try {
    v = std::stoi(s, &pos);
  } catch (const std::exception&) {
    pos = 0;
  }
  if (pos != s.size())
    throw std::invalid_argument(std::string(what) +
                                ": expected an integer, got '" + s + "'");
  return v;
}

std::uint64_t parse_u64(const char* what, const std::string& s) {
  std::size_t pos = 0;
  std::uint64_t v = 0;
  try {
    // stoull quietly wraps negative input; reject it explicitly.
    if (s.find('-') == std::string::npos) v = std::stoull(s, &pos);
  } catch (const std::exception&) {
    pos = 0;
  }
  if (pos != s.size())
    throw std::invalid_argument(std::string(what) +
                                ": expected an unsigned integer, got '" + s +
                                "'");
  return v;
}

/// "50ms", "2s", or a plain number of seconds; must be > 0.
double parse_time_budget(const std::string& s) {
  std::string num = s;
  double scale = 1.0;
  if (s.size() > 2 && s.compare(s.size() - 2, 2, "ms") == 0) {
    num = s.substr(0, s.size() - 2);
    scale = 1e-3;
  } else if (s.size() > 1 && s.back() == 's') {
    num = s.substr(0, s.size() - 1);
  }
  const double v = parse_double("--time-budget", num) * scale;
  if (v <= 0)
    throw std::invalid_argument("--time-budget must be > 0 (got " + s + ")");
  return v;
}

/// Plain count or K/M/G decimal suffix; must be > 0.
long long parse_scaled_count(const char* what, const std::string& s) {
  std::string num = s;
  long long scale = 1;
  if (!s.empty()) {
    const char c = s.back();
    if (c == 'K' || c == 'k') scale = 1000LL;
    if (c == 'M' || c == 'm') scale = 1000LL * 1000;
    if (c == 'G' || c == 'g') scale = 1000LL * 1000 * 1000;
    if (scale != 1) num = s.substr(0, s.size() - 1);
  }
  const double v = parse_double(what, num);
  if (v <= 0)
    throw std::invalid_argument(std::string(what) + " must be > 0 (got " + s +
                                ")");
  return static_cast<long long>(v * static_cast<double>(scale));
}

double parse_u0(const std::string& s) {
  const double u0 = parse_double("U0", s);
  if (u0 <= 0)
    throw std::invalid_argument("U0 must be > 0 (got " + s + ")");
  return u0;
}

double parse_budget_fraction(const std::string& s) {
  const double f = parse_double("budget-fraction", s);
  if (f < 0 || f > 1)
    throw std::invalid_argument("budget-fraction must be in [0, 1] (got " + s +
                                ")");
  return f;
}

using util::write_file_atomic;

std::size_t edit_distance(const std::string& a, const std::string& b) {
  std::vector<std::size_t> row(b.size() + 1);
  for (std::size_t j = 0; j <= b.size(); ++j) row[j] = j;
  for (std::size_t i = 1; i <= a.size(); ++i) {
    std::size_t diag = row[0];
    row[0] = i;
    for (std::size_t j = 1; j <= b.size(); ++j) {
      const std::size_t cur = row[j];
      row[j] = std::min({row[j] + 1, row[j - 1] + 1,
                         diag + (a[i - 1] == b[j - 1] ? 0 : 1)});
      diag = cur;
    }
  }
  return row[b.size()];
}

/// Throws with a nearest-name suggestion on unknown benchmark names, so typos
/// fail with a one-line hint instead of an unexplained abort.
void require_benchmarks(const std::vector<std::string>& names) {
  const auto& known = workloads::benchmark_names();
  for (const auto& n : names) {
    if (std::find(known.begin(), known.end(), n) != known.end()) continue;
    const auto* best = &known.front();
    std::size_t best_d = edit_distance(n, *best);
    for (const auto& k : known) {
      const std::size_t d = edit_distance(n, k);
      if (d < best_d) {
        best_d = d;
        best = &k;
      }
    }
    throw std::invalid_argument("unknown benchmark '" + n + "'; did you mean '" +
                                *best + "'? (see `isex list`)");
  }
}

rt::Policy parse_policy(const std::string& s) {
  if (s == "edf") return rt::Policy::kEdf;
  if (s == "rms") return rt::Policy::kRms;
  throw std::invalid_argument("policy must be 'edf' or 'rms', got '" + s + "'");
}

rt::MissPolicy parse_miss_policy(const std::string& s) {
  if (s == "soft") return rt::MissPolicy::kSoft;
  if (s == "firm") return rt::MissPolicy::kFirm;
  if (s == "mode") return rt::MissPolicy::kModeChange;
  throw std::invalid_argument("miss policy must be 'soft', 'firm' or 'mode', got '" +
                              s + "'");
}

void print_outcome_line(const robust::Status status, double gap,
                        const robust::BudgetReport& report,
                        const std::string& detail) {
  std::printf("outcome: %s, gap <= %.4f, %.1fms elapsed, %ld nodes%s%s%s\n",
              robust::to_string(status), gap, report.elapsed_seconds * 1e3,
              report.nodes_charged,
              report.exhausted() ? ", exhausted: " : "",
              report.exhausted() ? report.reason().c_str() : "",
              detail.empty() ? "" : (" [" + detail + "]").c_str());
}

/// Budget-free runs call the legacy solvers (bit-identical results); with a
/// budget the graceful-degradation ladder runs and the outcome is printed
/// and recorded for --strict.
customize::SelectionResult select_for(Ctx& ctx, const rt::TaskSet& ts,
                                      double budget, rt::Policy policy) {
  if (!ctx.has_budget) {
    if (policy == rt::Policy::kEdf) {
      const auto r = customize::select_edf(ts, budget);
      if (ctx.paranoid)
        ctx.note_certificate(certify::check_selection_edf(ts, budget, r));
      return r;
    }
    const auto r = customize::select_rms(ts, budget);
    if (ctx.paranoid)
      ctx.note_certificate(certify::check_selection_rms(ts, budget, r));
    return r;
  }
  robust::FallbackOptions fb;
  if (ctx.paranoid) fb.certify_pool_cap = -1;
  if (policy == rt::Policy::kEdf) {
    const auto out = robust::select_edf_with_fallback(
        ts, budget, customize::EdfOptions{}, ctx.budget_ptr(), fb);
    ctx.note(out.status);
    ctx.note_certificate(out.certificate);
    print_outcome_line(out.status, out.optimality_gap, out.budget, out.detail);
    return out.value;
  }
  const auto out = robust::select_rms_with_fallback(
      ts, budget, customize::RmsOptions{}, ctx.budget_ptr(), fb);
  ctx.note(out.status);
  ctx.note_certificate(out.certificate);
  print_outcome_line(out.status, out.optimality_gap, out.budget, out.detail);
  return out.value;
}

// --- commands ----------------------------------------------------------------

int cmd_list() {
  util::Table t({"benchmark", "source"});
  for (const auto& name : workloads::benchmark_names())
    t.row().cell(name).cell(std::string(workloads::benchmark_source(name)));
  t.print();
  return 0;
}

int cmd_curve(const std::string& bench, bool csv) {
  require_benchmarks({bench});
  const auto& task = workloads::cached_task(bench);
  util::Table t({"area", "cycles", "speedup"});
  for (const auto& cfg : task.configs)
    t.row().cell(cfg.area, 2).cell(cfg.cycles, 0).cell(
        task.sw_cycles() / cfg.cycles, 3);
  if (csv)
    t.print_csv(std::cout);
  else
    t.print();
  return 0;
}

int cmd_select(Ctx& ctx, double u0, double frac, rt::Policy policy,
               const std::vector<std::string>& benches) {
  require_benchmarks(benches);
  auto ts = workloads::make_taskset(benches, u0);
  ts.sort_by_period();
  const double budget = frac * ts.max_area();
  const auto r = select_for(ctx, ts, budget, policy);
  util::Table t({"task", "period", "config", "cycles", "area"});
  for (std::size_t i = 0; i < ts.size(); ++i) {
    const auto& cfg =
        ts.tasks[i].configs[static_cast<std::size_t>(r.assignment[i])];
    t.row()
        .cell(ts.tasks[i].name)
        .cell(ts.tasks[i].period, 0)
        .cell(r.assignment[i])
        .cell(cfg.cycles, 0)
        .cell(cfg.area, 1);
  }
  t.print();
  std::printf("\nU = %.4f (%s), area %.1f / %.1f budget\n", r.utilization,
              r.schedulable ? "schedulable" : "NOT schedulable", r.area_used,
              budget);
  return r.schedulable ? 0 : 1;
}

int cmd_pareto(const std::string& bench, double eps) {
  require_benchmarks({bench});
  if (eps <= 0) throw std::invalid_argument("eps must be > 0");
  const auto& lib = hw::CellLibrary::standard_018um();
  auto prog = workloads::make_benchmark(bench);
  const auto counts = prog.wcet_counts(ir::Program::sum_cost(
      [&lib](const ir::Node& n) { return lib.sw_cycles(n); }));
  const auto raw =
      select::selection_items(prog, counts, lib, select::CurveOptions{});
  std::vector<std::pair<double, double>> ag;
  for (const auto& it : raw) ag.emplace_back(it.area, it.gain);
  const auto items = pareto::quantize_items(ag, 0.25);
  const double base = select::base_cycles(prog, counts, lib);
  const auto exact = pareto::exact_workload_front(items, base);
  const auto approx = pareto::approx_workload_front(items, base, eps);
  std::printf("exact front: %zu points; eps=%.2f front: %zu points "
              "(cover=%s)\n\n",
              exact.size(), eps, approx.size(),
              pareto::eps_covers(exact, approx, eps) ? "yes" : "NO");
  util::Table t({"cost(0.25 adders)", "workload"});
  for (const auto& p : approx) t.row().cell(p.cost, 0).cell(p.value, 0);
  t.print();
  return 0;
}

int cmd_iterative(Ctx& ctx, double u0,
                  const std::vector<std::string>& benches) {
  require_benchmarks(benches);
  const auto& lib = hw::CellLibrary::standard_018um();
  std::vector<mlgp::IterTask> tasks;
  for (const auto& n : benches)
    tasks.emplace_back(n, workloads::make_benchmark(n), 0.0);
  for (auto& t : tasks) {
    const double wcet = t.program.wcet(ir::Program::sum_cost(
        [&lib](const ir::Node& n) { return lib.sw_cycles(n); }));
    t.period = wcet / (u0 / static_cast<double>(tasks.size()));
  }
  util::Rng rng(2007);
  mlgp::IterativeOptions opts;
  opts.budget = ctx.budget_ptr();
  const auto res = iterative_customize(tasks, lib, opts, rng);
  util::Table t({"iter", "task", "U", "area", "time(s)"});
  for (const auto& rec : res.trace)
    t.row()
        .cell(rec.iteration)
        .cell(rec.task)
        .cell(rec.utilization, 4)
        .cell(rec.area, 1)
        .cell(rec.elapsed_seconds, 3);
  t.print();
  if (ctx.has_budget) {
    ctx.note(res.status);
    print_outcome_line(res.status, res.optimality_gap, ctx.budget.report(),
                       "");
  }
  std::printf("\nfinal U = %.4f (%s), %zu CIs, area %.1f\n", res.utilization,
              res.met_target ? "schedulable" : "NOT schedulable",
              res.selected.size(), res.area);
  return res.met_target ? 0 : 1;
}

int cmd_reconfig(int n, std::uint64_t seed) {
  if (n <= 0) throw std::invalid_argument("num-loops must be > 0");
  util::Rng gen(seed);
  const auto p = reconfig::synthetic_problem(n, gen);
  util::Rng rng(seed + 1);
  const auto iter = reconfig::iterative_partition(p, rng);
  const auto greedy = reconfig::greedy_partition(p);
  util::Table t({"algorithm", "configs", "gain", "reconfigs", "net gain"});
  auto row = [&](const char* name, const reconfig::Solution& s) {
    t.row()
        .cell(name)
        .cell(s.num_configs())
        .cell(reconfig::raw_gain(p, s), 0)
        .cell(reconfig::count_reconfigurations(p, s))
        .cell(reconfig::net_gain(p, s), 0);
  };
  row("iterative", iter);
  row("greedy", greedy);
  if (n <= 10) {
    const auto ex = reconfig::exhaustive_partition(p);
    row("optimal", ex.solution);
  }
  t.print();
  return 0;
}

/// Fault injection against the configuration a selection run picks: inflate
/// every job by `factor` and report what each degradation policy observes.
int cmd_inject(Ctx& ctx, double u0, double frac, rt::Policy policy,
               rt::MissPolicy miss_policy, double factor,
               const std::vector<std::string>& benches) {
  require_benchmarks(benches);
  if (factor <= 0) throw std::invalid_argument("factor must be > 0");
  auto ts = workloads::make_taskset(benches, u0);
  ts.sort_by_period();
  const auto sel = select_for(ctx, ts, frac * ts.max_area(), policy);
  const double alpha_star = faults::critical_scaling(ts, sel.assignment, policy);
  const auto sim_tasks = faults::to_sim_tasks(ts, sel.assignment);

  faults::FaultModel fault;
  fault.inflation = factor;
  rt::SimOptions so;
  so.policy = policy;
  so.miss_policy = miss_policy;
  so.faults = &fault;
  so.max_misses = 1024;
  // Under EDF the overload falls on the latest deadline, so the horizon must
  // reach past the longest period or overruns would be invisible.
  for (const auto& s : sim_tasks)
    so.horizon = std::max({so.horizon, 2 * s.period, so.horizon_cap});
  const auto r = rt::simulate(sim_tasks, so);

  std::printf("selected U = %.4f, alpha* = %.4f, injected inflation = %.3f "
              "(%s alpha*)\n\n",
              sel.utilization, alpha_star, factor,
              factor > alpha_star ? "above" : "at or below");
  util::Table t({"task", "period", "completed", "missed", "aborted",
                 "worst resp", "resp/period"});
  for (std::size_t i = 0; i < ts.size(); ++i)
    t.row()
        .cell(ts.tasks[i].name)
        .cell(static_cast<double>(sim_tasks[i].period), 0)
        .cell(r.completed_jobs[i])
        .cell(r.missed_jobs[i])
        .cell(r.aborted_jobs[i])
        .cell(static_cast<double>(r.worst_response[i]), 0)
        .cell(static_cast<double>(r.worst_response[i]) /
                  static_cast<double>(sim_tasks[i].period),
              3);
  t.print();
  std::printf("\nhorizon %lld cycles, busy %lld, %zu degradation events, "
              "first miss at %lld\n",
              static_cast<long long>(r.horizon),
              static_cast<long long>(r.busy_cycles), r.events.size(),
              static_cast<long long>(r.misses.empty() ? -1
                                                      : r.misses.front().deadline));
  return r.all_met ? 0 : 1;
}

/// Robustness margins of the selected configurations across budget fractions:
/// per-configuration alpha* plus the area cost of alpha-robust selection.
int cmd_margin(double u0, rt::Policy policy,
               const std::vector<std::string>& benches) {
  require_benchmarks(benches);
  constexpr double kRobustAlpha = 1.1;
  auto ts = workloads::make_taskset(benches, u0);
  ts.sort_by_period();
  util::Table t({"budget", "U", "area", "alpha*", "robust alpha*",
                 "robust U"});
  bool any_robust = false;
  for (double frac : {0.25, 0.5, 0.75, 1.0}) {
    const double budget = frac * ts.max_area();
    const auto rob =
        faults::alpha_robust_select(ts, budget, kRobustAlpha, policy);
    any_robust = any_robust || rob.robust.schedulable;
    t.row()
        .cell(frac, 2)
        .cell(rob.nominal.utilization, 4)
        .cell(rob.nominal.area_used, 1)
        .cell(rob.alpha_star_nominal, 4)
        .cell(rob.alpha_star_robust, 4)
        .cell(rob.robust.schedulable ? rob.robust.utilization : -1, 4);
  }
  t.print();
  const double area_nominal = faults::min_robust_area(ts, 1.0, policy);
  const double area_robust = faults::min_robust_area(ts, kRobustAlpha, policy);
  std::printf("\nalpha* = critical WCET scaling of the selected "
              "configuration\nminimum schedulable area: %.2f nominal, %.2f "
              "at alpha=%.1f -> robustness costs %.2f extra "
              "adder-equivalents%s\n",
              area_nominal, area_robust, kRobustAlpha,
              (area_robust >= 0 && area_nominal >= 0)
                  ? area_robust - area_nominal
                  : -1.0,
              area_robust < 0 ? " (infeasible at full Max_Area)" : "");
  return any_robust ? 0 : 1;
}

/// End-to-end trace of the toolchain on one task set: enumeration + curve
/// construction + selection render as wall-clock spans (pid 1) and the
/// resulting EDF/RMS schedule as a per-task Gantt chart in virtual time
/// (pid 2). Open the output at ui.perfetto.dev or chrome://tracing.
int cmd_trace(Ctx& ctx, std::vector<std::string> rest) {
  std::string out_path = "trace.json";
  bool csv = false;
  double u0 = 1.05, frac = 0.5;
  rt::Policy policy = rt::Policy::kEdf;
  std::vector<std::string> benches;
  for (std::size_t i = 0; i < rest.size(); ++i) {
    const std::string& a = rest[i];
    auto next = [&](const char* what) -> const std::string& {
      if (i + 1 >= rest.size())
        throw std::invalid_argument(std::string(what) + " needs a value");
      return rest[++i];
    };
    if (a == "-o") out_path = next("-o");
    else if (a == "--csv") csv = true;
    else if (a == "--u0") u0 = parse_u0(next("--u0"));
    else if (a == "--budget-fraction")
      frac = parse_budget_fraction(next("--budget-fraction"));
    else if (a == "--policy") policy = parse_policy(next("--policy"));
    else benches.push_back(a);
  }
  if (benches.empty())
    throw std::invalid_argument("trace: at least one benchmark required");
  require_benchmarks(benches);

  auto& tb = obs::TraceBuffer::global();
  tb.clear();
  tb.set_enabled(true);

  auto ts = workloads::make_taskset(benches, u0);
  ts.sort_by_period();
  const double budget = frac * ts.max_area();
  const auto sel = select_for(ctx, ts, budget, policy);
  const auto sim_tasks = faults::to_sim_tasks(ts, sel.assignment);
  rt::SimOptions so;
  so.policy = policy;
  for (const auto& s : sim_tasks)
    so.horizon = std::max(so.horizon, 4 * s.period);
  const auto r = rt::simulate(sim_tasks, so);

  tb.set_enabled(false);
  const bool wrote = write_file_atomic(out_path, [&](std::ostream& out) {
    if (csv)
      tb.write_csv(out);
    else
      tb.write_chrome_json(out);
  });
  if (!wrote) throw std::runtime_error("cannot write '" + out_path + "'");
  std::printf("U = %.4f (%s), area %.1f / %.1f budget\n", sel.utilization,
              sel.schedulable ? "schedulable" : "NOT schedulable",
              sel.area_used, budget);
  std::printf("simulated %lld cycles: %s, %zu trace events (%llu dropped) -> "
              "%s%s\n",
              static_cast<long long>(r.horizon),
              r.all_met ? "all deadlines met" : "deadline misses",
              tb.size(), static_cast<unsigned long long>(tb.dropped()),
              out_path.c_str(),
              csv ? "" : " (open at ui.perfetto.dev)");
  return sel.schedulable && r.all_met ? 0 : 1;
}

void write_certify_json(std::ostream& out, double u0, double frac,
                        const std::vector<std::pair<std::string,
                                                    certify::CertifyReport>>&
                            rows,
                        const certify::CertifyReport& total) {
  auto emit_report = [&](const certify::CertifyReport& r) {
    out << "{\"checks\": " << r.checks << ", \"violations\": [";
    for (std::size_t i = 0; i < r.violations.size(); ++i) {
      if (i) out << ", ";
      out << "{\"check\": \"" << r.violations[i].check << "\", \"message\": \""
          << r.violations[i].message << "\"}";
    }
    out << "]}";
  };
  out << "{\n  \"command\": \"certify\",\n  \"u0\": " << u0
      << ",\n  \"budget_fraction\": " << frac << ",\n  \"stages\": {\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    out << "    \"" << rows[i].first << "\": ";
    emit_report(rows[i].second);
    out << (i + 1 < rows.size() ? ",\n" : "\n");
  }
  out << "  },\n  \"total_checks\": " << total.checks
      << ",\n  \"total_violations\": " << total.violations.size()
      << ",\n  \"ok\": " << (total.ok() ? "true" : "false") << "\n}\n";
}

/// Re-derives and certifies every solver contract on the given benchmarks:
/// per block, the enumeration pool, the optimal single cut and the MLGP
/// partition; per benchmark, the exact and approximate Pareto fronts and
/// their epsilon-cover; and across the joint task set, EDF and RMS selection
/// (with brute-force optimality spot-checks on small instances) plus the
/// Chapter 7 reconfiguration partitioners. All solver runs are bounded by
/// deterministic work caps (node budgets, not wall clocks), so two identical
/// invocations produce byte-identical reports. Exit 0 when every certificate
/// holds, 4 otherwise.
int cmd_certify(Ctx& ctx, std::vector<std::string> rest) {
  std::string out_path;
  double u0 = 1.05, frac = 0.5;
  std::vector<std::string> benches;
  for (std::size_t i = 0; i < rest.size(); ++i) {
    const std::string& a = rest[i];
    auto next = [&](const char* what) -> const std::string& {
      if (i + 1 >= rest.size())
        throw std::invalid_argument(std::string(what) + " needs a value");
      return rest[++i];
    };
    if (a == "-o") out_path = next("-o");
    else if (a == "--u0") u0 = parse_u0(next("--u0"));
    else if (a == "--budget-fraction")
      frac = parse_budget_fraction(next("--budget-fraction"));
    else benches.push_back(a);
  }
  if (benches.empty())
    throw std::invalid_argument("certify: at least one benchmark required");
  require_benchmarks(benches);

  const auto& lib = hw::CellLibrary::standard_018um();
  const long pool_cap = ctx.paranoid ? -1 : 512;
  certify::CertifyReport total;
  std::vector<std::pair<std::string, certify::CertifyReport>> rows;

  for (const auto& bench : benches) {
    certify::CertifyReport rep;
    const auto prog = workloads::make_benchmark(bench);
    for (int b = 0; b < prog.num_blocks(); ++b) {
      const ir::Dfg& dfg = prog.block(b).dfg;
      // (a) CI legality of the enumeration pool.
      ise::EnumOptions eo;
      eo.max_candidates = 20000;
      const auto pool = ise::enumerate_candidates(dfg, lib, eo, b, 1);
      certify::PoolCheckOptions po;
      po.max_full_checks = pool_cap;
      rep.merge(certify::check_candidate_pool(dfg, lib, eo.constraints, pool,
                                              po));
      // The optimal single cut, bounded by a deterministic node budget.
      robust::Budget sb;
      sb.set_node_budget(200000);
      ise::SingleCutOptions so;
      so.budget = &sb;
      const auto cut = ise::optimal_single_cut(dfg, lib, so, b, 1);
      if (cut.best)
        rep.merge(
            certify::check_candidate(dfg, lib, so.constraints, *cut.best, b));
      // (c) the MLGP partition: parts legal, disjoint, inside the regions.
      util::Rng rng(2007);
      mlgp::MlgpOptions mo;
      const auto parts = mlgp::generate_for_block(dfg, lib, mo, rng, b, 1);
      util::Bitset region(static_cast<std::size_t>(dfg.num_nodes()));
      for (const auto& reg : dfg.regions()) region |= reg;
      rep.merge(
          certify::check_partition(dfg, lib, mo.constraints, region, parts));
    }
    // Pareto fronts: staircase form, non-dominance, epsilon-cover.
    const double eps = 0.3;
    const auto counts = prog.wcet_counts(ir::Program::sum_cost(
        [&lib](const ir::Node& n) { return lib.sw_cycles(n); }));
    const auto raw =
        select::selection_items(prog, counts, lib, select::CurveOptions{});
    std::vector<std::pair<double, double>> ag;
    for (const auto& it : raw) ag.emplace_back(it.area, it.gain);
    const auto items = pareto::quantize_items(ag, 0.25);
    const double base = select::base_cycles(prog, counts, lib);
    const auto exact = pareto::exact_workload_front(items, base);
    const auto approx = pareto::approx_workload_front(items, base, eps);
    rep.merge(certify::check_front(exact, bench + " exact"));
    rep.merge(certify::check_front(approx, bench + " approx"));
    rep.merge(certify::check_eps_cover(exact, approx, eps));

    ctx.note_certificate(rep);
    total.merge(rep);
    rows.emplace_back(bench, std::move(rep));
  }

  // (b) selection feasibility and optimality witnesses on the joint task set.
  {
    certify::CertifyReport rep;
    auto ts = workloads::make_taskset(benches, u0);
    ts.sort_by_period();
    const double budget = frac * ts.max_area();
    const auto edf = customize::select_edf(ts, budget);
    rep.merge(certify::check_selection_edf(ts, budget, edf));
    rep.merge(certify::spot_check_edf(
        ts, budget, customize::EdfOptions{}.area_grid, edf));
    customize::RmsOptions ro;
    ro.max_nodes = 500000;  // deterministic cap; truncation is certified too
    const auto rms = customize::select_rms(ts, budget, ro);
    rep.merge(certify::check_selection_rms(ts, budget, rms));
    rep.merge(certify::spot_check_rms(ts, budget, rms));

    // Chapter 7 reconfiguration over the same configuration menus: map each
    // task's configurations to CIS versions (configs[0] is the zero-area
    // software point, exactly versions[0]'s contract).
    rtreconfig::Problem p;
    double max_cfg_area = 0;
    double min_period = ts.tasks.front().period;
    for (const rt::Task& t : ts.tasks) {
      rtreconfig::TaskCis tc;
      tc.name = t.name;
      tc.period = t.period;
      for (std::size_t j = 0; j < t.configs.size() && j < 4; ++j) {
        tc.versions.push_back({t.configs[j].area, t.configs[j].cycles});
        max_cfg_area = std::max(max_cfg_area, t.configs[j].area);
      }
      min_period = std::min(min_period, t.period);
      p.tasks.push_back(std::move(tc));
    }
    p.max_area = std::max(1.0, frac * max_cfg_area);
    p.reconfig_cost = 0.02 * min_period;
    rep.merge(certify::check_rtreconfig(p, rtreconfig::dp_partition(p)));
    rep.merge(certify::check_rtreconfig(p, rtreconfig::static_partition(p)));

    ctx.note_certificate(rep);
    total.merge(rep);
    rows.emplace_back("taskset", std::move(rep));
  }

  util::Table t({"stage", "checks", "violations"});
  for (const auto& [name, rep] : rows)
    t.row().cell(name).cell(rep.checks).cell(
        static_cast<int>(rep.violations.size()));
  t.print();
  std::printf("\ncertify: %s\n", total.summary().c_str());
  if (!out_path.empty()) {
    const bool wrote = write_file_atomic(out_path, [&](std::ostream& out) {
      write_certify_json(out, u0, frac, rows, total);
    });
    if (!wrote) throw std::runtime_error("cannot write '" + out_path + "'");
  }
  return total.ok() ? 0 : 4;
}

/// The long-lived customization-as-a-service daemon (see serve/server.hpp).
/// Global budget flags become the server's per-request defaults; --paranoid
/// turns on exhaustive certification for every request.
int cmd_serve(Ctx& ctx, std::vector<std::string> rest) {
  serve::ServerOptions so;
  so.paranoid = ctx.paranoid;
  if (ctx.has_budget) {
    const robust::BudgetReport rep = ctx.budget.report();
    if (ctx.time_budget_seconds > 0)
      so.default_time_budget_seconds = ctx.time_budget_seconds;
    if (rep.node_budget >= 0) so.default_node_budget = rep.node_budget;
    if (rep.mem_budget_bytes > 0)
      so.default_mem_budget_bytes = rep.mem_budget_bytes;
  }
  std::string socket_path;
  std::string crash_dump_path;
  for (std::size_t i = 0; i < rest.size(); ++i) {
    const std::string& a = rest[i];
    auto next = [&](const char* what) -> const std::string& {
      if (i + 1 >= rest.size())
        throw std::invalid_argument(std::string(what) + " needs a value");
      return rest[++i];
    };
    if (a == "--socket") socket_path = next("--socket");
    else if (a == "--queue-capacity")
      so.queue_capacity = parse_int("--queue-capacity", next("--queue-capacity"));
    else if (a == "--shed-depth") {
      // One knob for the two-rung policy: shed at N, shed harder at 2N.
      so.shed1_depth = parse_int("--shed-depth", next("--shed-depth"));
      so.shed2_depth = 2 * so.shed1_depth;
    } else if (a == "--max-request-bytes")
      so.limits.max_request_bytes = static_cast<std::size_t>(parse_scaled_count(
          "--max-request-bytes", next("--max-request-bytes")));
    else if (a == "--cache-entries")
      so.cache.max_entries = static_cast<std::size_t>(
          parse_int("--cache-entries", next("--cache-entries")));
    else if (a == "--cache-bytes")
      so.cache.max_bytes = static_cast<std::size_t>(
          parse_scaled_count("--cache-bytes", next("--cache-bytes")));
    else if (a == "--stats-file")
      so.stats_path = next("--stats-file");
    else if (a == "--stats-interval")
      so.stats_interval_seconds =
          parse_double("--stats-interval", next("--stats-interval"));
    else if (a == "--journal-capacity")
      obs::Journal::global().set_capacity(static_cast<std::size_t>(
          parse_scaled_count("--journal-capacity", next("--journal-capacity"))));
    else if (a == "--crash-dump")
      crash_dump_path = next("--crash-dump");
    else if (a == "--workers")
      so.workers = parse_int("--workers", next("--workers"));
    else if (a == "--watchdog")
      so.watchdog_seconds = parse_double("--watchdog", next("--watchdog"));
    else if (a == "--watchdog-grace")
      so.watchdog_grace_seconds =
          parse_double("--watchdog-grace", next("--watchdog-grace"));
    else if (a == "--drain-timeout")
      so.drain_timeout_seconds =
          parse_double("--drain-timeout", next("--drain-timeout"));
    else if (a == "--poison-kills")
      so.poison_kill_threshold =
          parse_int("--poison-kills", next("--poison-kills"));
    else if (a == "--breaker-respawns")
      so.breaker_max_respawns =
          parse_int("--breaker-respawns", next("--breaker-respawns"));
    else if (a == "--breaker-window")
      so.breaker_window_seconds =
          parse_double("--breaker-window", next("--breaker-window"));
    else if (a == "--breaker-cooldown")
      so.breaker_cooldown_seconds =
          parse_double("--breaker-cooldown", next("--breaker-cooldown"));
    else if (a == "--chaos")
      so.chaos_probability = parse_double("--chaos", next("--chaos"));
    else if (a == "--chaos-seed")
      so.chaos_seed = parse_u64("--chaos-seed", next("--chaos-seed"));
    else if (a == "--worker-mem")
      so.worker_mem_limit_bytes = static_cast<std::size_t>(
          parse_scaled_count("--worker-mem", next("--worker-mem")));
    else if (a == "--worker-cpu")
      so.worker_cpu_limit_seconds = static_cast<long>(
          parse_int("--worker-cpu", next("--worker-cpu")));
    else
      throw std::invalid_argument("serve: unknown flag '" + a + "'");
  }
  if (so.queue_capacity <= 0)
    throw std::invalid_argument("--queue-capacity must be > 0");
  if (so.shed1_depth <= 0 || so.shed2_depth < so.shed1_depth)
    throw std::invalid_argument("--shed-depth must be > 0");
  if (so.stats_interval_seconds < 0)
    throw std::invalid_argument("--stats-interval must be >= 0");
  if (so.workers < 0 || so.workers > 256)
    throw std::invalid_argument("--workers must be in [0, 256]");
  if (so.chaos_probability < 0 || so.chaos_probability > 1)
    throw std::invalid_argument("--chaos must be a probability in [0, 1]");
  if (so.chaos_probability > 0 && so.workers == 0)
    throw std::invalid_argument("--chaos requires --workers > 0");
  if (so.poison_kill_threshold < 1)
    throw std::invalid_argument("--poison-kills must be >= 1");
  if (so.watchdog_seconds < 0 || so.watchdog_grace_seconds < 0 ||
      so.drain_timeout_seconds < 0 || so.breaker_window_seconds <= 0 ||
      so.breaker_cooldown_seconds < 0 || so.breaker_max_respawns < 1)
    throw std::invalid_argument("serve: supervision flags must be positive");
  if (!so.stats_path.empty() && so.stats_interval_seconds <= 0)
    so.stats_interval_seconds = 10;  // --stats-file alone: sane default cadence
  if (!crash_dump_path.empty()) {
    // A daemon death must leave the flight recorder behind: dump the last
    // capacity() records to <path>.<pid> on SIGABRT/SIGSEGV/etc. Workers
    // inherit the same base and dump to their own pids, so no two
    // processes ever clobber one dump file.
    obs::set_crash_dump_path(crash_dump_path.c_str());
    obs::install_crash_handler();
    so.crash_dump_path = crash_dump_path;
  }

  serve::Server server(so);
  const int rc = socket_path.empty() ? server.run(0, 1)
                                     : serve::run_unix_socket(server, socket_path);
  // A graceful drain is the intended shutdown: absorb the signal so the
  // one-shot 128+sig mapping in run() doesn't re-report it as an interrupt.
  serve::consume_pending_signal();
  robust::clear_global_cancel();
  return rc;
}

/// `isex lift <binary>`: the untrusted-binary frontend, end to end — bounded
/// file read, ELF32 parse, total RV32I decode, basic-block recovery, DFG
/// lift, independent certification, and finally the same identification /
/// selection pipeline the synthetic benchmarks go through (candidate
/// enumeration + config curve). `-o` writes the lifted blocks in serve's
/// inline-DFG JSON node format, so a lifted block can be pasted straight
/// into an `isex serve` request.
int cmd_lift(Ctx& ctx, std::vector<std::string> rest) {
  std::string path, out_path, fixture_name, emit_name;
  bool raw = false;
  std::uint32_t vaddr = 0x10000;
  for (std::size_t i = 0; i < rest.size(); ++i) {
    const std::string& a = rest[i];
    auto next = [&](const char* what) -> const std::string& {
      if (i + 1 >= rest.size())
        throw std::invalid_argument(std::string(what) + " needs a value");
      return rest[++i];
    };
    if (a == "-o") out_path = next("-o");
    else if (a == "--raw") raw = true;
    else if (a == "--vaddr") {
      const std::string& v = next("--vaddr");
      std::size_t pos = 0;
      unsigned long parsed = 0;
      try {
        parsed = std::stoul(v, &pos, 0);  // accepts 0x... and decimal
      } catch (const std::exception&) {
        pos = 0;
      }
      if (pos != v.size() || parsed > 0xfffffffful)
        throw std::invalid_argument("--vaddr: expected a 32-bit address, got '" +
                                    v + "'");
      vaddr = static_cast<std::uint32_t>(parsed);
    } else if (a == "--fixture") {
      fixture_name = next("--fixture");
    } else if (a == "--emit-fixture") {
      emit_name = next("--emit-fixture");
    } else if (!a.empty() && a[0] == '-') {
      throw std::invalid_argument("lift: unknown flag '" + a + "'");
    } else {
      if (!path.empty())
        throw std::invalid_argument("lift: more than one input path");
      path = a;
    }
  }

  const auto find_fixture = [](const std::string& name)
      -> const frontend::Fixture* {
    for (const frontend::Fixture& f : frontend::fixtures())
      if (f.name == name) return &f;
    return nullptr;
  };

  if (!emit_name.empty()) {
    // `--emit-fixture <name> <path>`: write the in-tree fixture ELF so CI
    // (and users) can exercise the file path end to end.
    const frontend::Fixture* f = find_fixture(emit_name);
    if (f == nullptr)
      throw std::invalid_argument("lift: unknown fixture '" + emit_name +
                                  "' (have: crc32 sha dijkstra adpcm_enc "
                                  "stringsearch)");
    if (path.empty())
      throw std::invalid_argument("lift --emit-fixture needs an output path");
    const bool ok = write_file_atomic(path, [&](std::ostream& out) {
      out.write(reinterpret_cast<const char*>(f->elf.data()),
                static_cast<std::streamsize>(f->elf.size()));
    });
    if (!ok) {
      std::fprintf(stderr, "error: cannot write '%s'\n", path.c_str());
      return 2;
    }
    std::printf("wrote fixture %s (%zu bytes) to %s\n", f->name.c_str(),
                f->elf.size(), path.c_str());
    return 0;
  }

  frontend::LiftOptions lo;
  lo.budget = ctx.budget_ptr();
  std::string name;
  frontend::LiftResult lr = frontend::FrontendError{};
  if (!fixture_name.empty()) {
    const frontend::Fixture* f = find_fixture(fixture_name);
    if (f == nullptr)
      throw std::invalid_argument("lift: unknown fixture '" + fixture_name +
                                  "'");
    name = "fixture:" + f->name;
    lr = frontend::lift_elf(f->elf, name, lo);
  } else {
    if (path.empty())
      throw std::invalid_argument(
          "lift: an input path (or --fixture <name>) is required");
    name = path;
    const util::FileReadResult file =
        util::read_file_bounded(path, lo.limits.max_file_bytes);
    if (!file.ok) {
      std::fprintf(stderr, "error: lift: %s\n", file.error.c_str());
      return 2;
    }
    lr = raw ? frontend::lift_raw(file.data, vaddr, name, lo)
             : frontend::lift_elf(file.data, name, lo);
  }
  if (const auto* e = std::get_if<frontend::FrontendError>(&lr)) {
    std::fprintf(stderr, "error: lift: %s: %s\n", name.c_str(),
                 e->render().c_str());
    return e->code == frontend::FrontendErrorCode::kBudget && ctx.strict ? 3
                                                                         : 2;
  }
  frontend::Lifted& lifted = std::get<frontend::Lifted>(lr);
  const ir::Program& prog = lifted.program;
  const frontend::LiftStats& st = lifted.stats;

  // Independent certification before any solver sees the graphs: structural
  // well-formedness of every block, then CI legality of the enumeration pool
  // each block feeds the selection stage (uncapped under --paranoid).
  const auto& lib = hw::CellLibrary::standard_018um();
  certify::CertifyReport rep = certify::check_program(prog);
  ise::EnumOptions eo;
  eo.max_candidates = 20000;
  certify::PoolCheckOptions po;
  po.max_full_checks = ctx.paranoid ? -1 : 512;
  for (int b = 0; b < prog.num_blocks(); ++b) {
    const auto pool =
        ise::enumerate_candidates(prog.block(b).dfg, lib, eo, b, 1);
    rep.merge(
        certify::check_candidate_pool(prog.block(b).dfg, lib, eo.constraints,
                                      pool, po));
  }
  ctx.note_certificate(rep);

  std::printf("lifted %s: %ld instructions (%ld illegal), %d blocks, "
              "%ld nodes, %ld operations\n",
              name.c_str(), st.decoded_instructions, st.illegal_instructions,
              st.blocks, st.nodes, st.operations);
  std::printf("certificate: %s\n", rep.summary().c_str());

  // Op mix over all blocks — the statistic the fixture cross-validation and
  // the calibrated generators are compared on.
  long mix[ir::kNumOpcodes] = {};
  for (const auto& blk : prog.blocks())
    for (const auto& node : blk.dfg.nodes())
      ++mix[static_cast<int>(node.op)];
  std::string mix_line = "op mix:";
  for (int i = 0; i < ir::kNumOpcodes; ++i)
    if (mix[i] > 0)
      mix_line += " " + std::string(ir::opcode_name(static_cast<ir::Opcode>(i))) +
                  "=" + std::to_string(mix[i]);
  std::printf("%s\n", mix_line.c_str());

  util::Table bt({"block", "nodes", "ops", "live-out"});
  for (const auto& blk : prog.blocks()) {
    int louts = 0;
    for (const auto& nd : blk.dfg.nodes()) louts += nd.live_out ? 1 : 0;
    bt.row()
        .cell(blk.label)
        .cell(blk.dfg.num_nodes())
        .cell(blk.dfg.num_operations())
        .cell(louts);
  }
  bt.print();

  // The selection pipeline on the lifted program: every recovered block
  // executes once per pass (the frontend recovers no loop bounds), and the
  // curve shows the customization headroom of the binary's code.
  const auto cost = ir::Program::sum_cost(
      [&lib](const ir::Node& n) { return lib.sw_cycles(n); });
  const auto counts = prog.wcet_counts(cost);
  select::CurveOptions co;
  int max_block = 0;
  for (const auto& b : prog.blocks())
    max_block = std::max(max_block, b.dfg.num_nodes());
  if (max_block > 600) {
    co.enum_opts.max_candidates = 20000;
    co.enum_opts.max_candidate_nodes = 16;
  }
  const auto curve = select::build_config_curve(prog, counts, lib, co);
  util::Table ct({"area", "cycles", "speedup"});
  for (const auto& cfg : curve.points)
    ct.row().cell(cfg.area, 2).cell(cfg.cycles, 0).cell(
        curve.base_cycles() / cfg.cycles, 3);
  ct.print();

  if (!out_path.empty()) {
    const auto esc = [](const std::string& s) {
      std::string o;
      for (const char c : s) {
        if (c == '"' || c == '\\') o += '\\';
        if (static_cast<unsigned char>(c) < 0x20) continue;
        o += c;
      }
      return o;
    };
    const bool ok = write_file_atomic(out_path, [&](std::ostream& out) {
      out << "{\n  \"name\": \"" << esc(name) << "\",\n";
      out << "  \"stats\": {\"instructions\": " << st.decoded_instructions
          << ", \"illegal\": " << st.illegal_instructions
          << ", \"blocks\": " << st.blocks << ", \"nodes\": " << st.nodes
          << ", \"operations\": " << st.operations << "},\n";
      out << "  \"blocks\": [\n";
      for (int b = 0; b < prog.num_blocks(); ++b) {
        const auto& blk = prog.block(b);
        out << "    {\"label\": \"" << esc(blk.label) << "\", \"dfg\": [";
        for (int i = 0; i < blk.dfg.num_nodes(); ++i) {
          const ir::Node& nd = blk.dfg.node(i);
          if (i > 0) out << ", ";
          out << "{\"op\": \"" << ir::opcode_name(nd.op) << "\"";
          if (!nd.operands.empty()) {
            out << ", \"in\": [";
            for (std::size_t j = 0; j < nd.operands.size(); ++j)
              out << (j > 0 ? ", " : "") << nd.operands[j];
            out << "]";
          }
          out << ", \"out\": " << (nd.live_out ? "true" : "false") << "}";
        }
        out << "]}" << (b + 1 < prog.num_blocks() ? "," : "") << "\n";
      }
      out << "  ],\n  \"curve\": [";
      for (std::size_t i = 0; i < curve.points.size(); ++i)
        out << (i > 0 ? ", " : "") << "[" << curve.points[i].area << ", "
            << curve.points[i].cycles << "]";
      out << "]\n}\n";
    });
    if (!ok) {
      std::fprintf(stderr, "error: cannot write '%s'\n", out_path.c_str());
      return 2;
    }
    std::printf("wrote %d lifted blocks to %s\n", prog.num_blocks(),
                out_path.c_str());
  }
  return 0;
}

/// `isex tail <journal.bin>`: renders a binary flight-recorder dump (a crash
/// dump, or a file written by Journal::write_binary) as a table, CSV, or a
/// Chrome trace. `--rid R` filters to one request's records — the
/// after-the-fact explanation of a single response.
int cmd_tail(std::vector<std::string> rest) {
  if (rest.empty()) return usage();
  const std::string path = rest[0];
  std::size_t last_n = 0;
  std::uint64_t rid_filter = 0;
  std::string trace_path;
  bool csv = false;
  for (std::size_t i = 1; i < rest.size(); ++i) {
    const std::string& a = rest[i];
    auto next = [&](const char* what) -> const std::string& {
      if (i + 1 >= rest.size())
        throw std::invalid_argument(std::string(what) + " needs a value");
      return rest[++i];
    };
    if (a == "-n")
      last_n = static_cast<std::size_t>(parse_int("-n", next("-n")));
    else if (a == "--rid")
      rid_filter = parse_u64("--rid", next("--rid"));
    else if (a == "--trace")
      trace_path = next("--trace");
    else if (a == "--csv")
      csv = true;
    else
      throw std::invalid_argument("tail: unknown flag '" + a + "'");
  }

  std::vector<obs::JournalRecord> recs;
  std::string err;
  std::string resolved = path;
  struct stat st{};
  if (::stat(path.c_str(), &st) != 0) {
    // Crash dumps are written to <base>.<pid> so concurrent workers never
    // clobber each other. Accept the base name here: pick the newest
    // matching <base>.<digits> sibling in the directory.
    const std::size_t slash = path.find_last_of('/');
    const std::string dir = slash == std::string::npos
                                ? std::string(".")
                                : path.substr(0, slash);
    const std::string base =
        slash == std::string::npos ? path : path.substr(slash + 1);
    time_t best_mtime = 0;
    if (DIR* d = ::opendir(dir.c_str())) {
      while (dirent* de = ::readdir(d)) {
        const std::string name = de->d_name;
        if (name.size() <= base.size() + 1 || name.compare(0, base.size(), base) != 0 ||
            name[base.size()] != '.')
          continue;
        const std::string suffix = name.substr(base.size() + 1);
        if (suffix.find_first_not_of("0123456789") != std::string::npos)
          continue;
        const std::string cand = dir + "/" + name;
        struct stat cst{};
        if (::stat(cand.c_str(), &cst) == 0 &&
            (best_mtime == 0 || cst.st_mtime >= best_mtime)) {
          best_mtime = cst.st_mtime;
          resolved = cand;
        }
      }
      ::closedir(d);
    }
  }
  if (!obs::read_journal_file(resolved, &recs, &err)) {
    std::fprintf(stderr, "error: %s\n", err.c_str());
    return 2;
  }
  if (resolved != path)
    std::fprintf(stderr, "note: reading per-pid dump %s\n", resolved.c_str());
  if (recs.empty()) {
    // A valid header with zero complete records is a truncated dump (the
    // process died before the first record landed), not an empty table.
    std::fprintf(stderr,
                 "error: %s: journal header is valid but the dump holds no "
                 "complete record (truncated?)\n",
                 resolved.c_str());
    return 2;
  }
  if (rid_filter != 0) {
    recs.erase(std::remove_if(recs.begin(), recs.end(),
                              [&](const obs::JournalRecord& r) {
                                return r.rid != rid_filter;
                              }),
               recs.end());
  }
  if (last_n != 0 && recs.size() > last_n)
    recs.erase(recs.begin(),
               recs.begin() + static_cast<std::ptrdiff_t>(recs.size() - last_n));

  if (!trace_path.empty()) {
    // Journal -> Chrome trace: one track per request id, kResponse records
    // as complete events spanning the request, everything else instant.
    obs::TraceBuffer buf;
    buf.set_enabled(true);
    buf.set_capacity(recs.size() + 16);
    for (const obs::JournalRecord& r : recs) {
      const int tid = static_cast<int>(r.rid % 1'000'000);
      buf.set_thread_name(obs::kWallPid, tid,
                          "rid " + std::to_string(r.rid));
      obs::TraceEvent e;
      e.pid = obs::kWallPid;
      e.tid = tid;
      e.name = obs::to_string(r.kind);
      e.cat = obs::to_string(r.phase);
      e.args = {{"seq", std::to_string(r.seq)},
                {"rid", std::to_string(r.rid)},
                {"v0", std::to_string(r.v0)},
                {"v1", std::to_string(r.v1)}};
      if (r.kind == obs::JournalKind::kResponse)
        e.args.push_back(
            {"disposition",
             obs::to_string(static_cast<obs::Disposition>(r.v0))});
      if (r.dur_ns > 0) {
        e.phase = obs::TraceEvent::Phase::kComplete;
        e.ts = r.ts_ns - r.dur_ns;  // journal stamps completion time
        e.dur = r.dur_ns;
      } else {
        e.phase = obs::TraceEvent::Phase::kInstant;
        e.ts = r.ts_ns;
      }
      buf.record(std::move(e));
    }
    const bool wrote = write_file_atomic(trace_path, [&](std::ostream& out) {
      buf.write_chrome_json(out);
    });
    if (!wrote) {
      std::fprintf(stderr, "error: cannot write '%s'\n", trace_path.c_str());
      return 2;
    }
    std::printf("wrote %zu events to %s\n", recs.size(), trace_path.c_str());
    return 0;
  }

  if (csv) {
    std::printf("seq,rid,ts_ns,dur_ns,kind,phase,v0,v1\n");
    for (const obs::JournalRecord& r : recs)
      std::printf("%llu,%llu,%lld,%lld,%s,%s,%lld,%lld\n",
                  static_cast<unsigned long long>(r.seq),
                  static_cast<unsigned long long>(r.rid),
                  static_cast<long long>(r.ts_ns),
                  static_cast<long long>(r.dur_ns), obs::to_string(r.kind),
                  obs::to_string(r.phase), static_cast<long long>(r.v0),
                  static_cast<long long>(r.v1));
    return 0;
  }

  util::Table t({"seq", "rid", "ts_ms", "dur_us", "kind", "phase", "v0",
                 "v1", "note"});
  for (const obs::JournalRecord& r : recs) {
    std::string note;
    if (r.kind == obs::JournalKind::kResponse)
      note = obs::to_string(static_cast<obs::Disposition>(r.v0));
    else if (r.kind == obs::JournalKind::kCacheLookup)
      note = r.v0 == 1 ? "hit" : r.v0 == 2 ? "poisoned" : "miss";
    t.row()
        .cell(r.seq)
        .cell(r.rid)
        .cell(static_cast<double>(r.ts_ns) / 1e6, 3)
        .cell(static_cast<double>(r.dur_ns) / 1e3, 1)
        .cell(obs::to_string(r.kind))
        .cell(obs::to_string(r.phase))
        .cell(r.v0)
        .cell(r.v1)
        .cell(note);
  }
  t.print();
  std::printf("%zu records\n", recs.size());
  return 0;
}

}  // namespace

int run(const std::vector<std::string>& raw_args) {
  std::vector<std::string> args = raw_args;
  Ctx ctx;
  bool metrics = false;
  std::string metrics_path;
  // Global flags: strip them wherever they appear. Value-taking flags accept
  // both "--flag value" and "--flag=value".
  try {
    auto take_value = [&](std::vector<std::string>::iterator& it,
                          const char* flag) -> std::string {
      const std::string prefix = std::string(flag) + "=";
      if (it->rfind(prefix, 0) == 0) {
        const std::string v = it->substr(prefix.size());
        it = args.erase(it);
        return v;
      }
      it = args.erase(it);
      if (it == args.end())
        throw std::invalid_argument(std::string(flag) + " needs a value");
      const std::string v = *it;
      it = args.erase(it);
      return v;
    };
    for (auto it = args.begin(); it != args.end();) {
      if (*it == "--metrics") {
        metrics = true;
        it = args.erase(it);
      } else if (it->rfind("--metrics=", 0) == 0) {
        metrics = true;
        metrics_path = it->substr(std::strlen("--metrics="));
        it = args.erase(it);
      } else if (*it == "--strict") {
        ctx.strict = true;
        it = args.erase(it);
      } else if (*it == "--paranoid") {
        ctx.paranoid = true;
        it = args.erase(it);
      } else if (*it == "--time-budget" ||
                 it->rfind("--time-budget=", 0) == 0) {
        ctx.time_budget_seconds =
            parse_time_budget(take_value(it, "--time-budget"));
        ctx.has_budget = true;
      } else if (*it == "--node-budget" ||
                 it->rfind("--node-budget=", 0) == 0) {
        ctx.budget.set_node_budget(static_cast<long>(
            parse_scaled_count("--node-budget", take_value(it, "--node-budget"))));
        ctx.has_budget = true;
      } else if (*it == "--mem-budget" ||
                 it->rfind("--mem-budget=", 0) == 0) {
        ctx.budget.set_mem_budget(static_cast<std::size_t>(
            parse_scaled_count("--mem-budget", take_value(it, "--mem-budget"))));
        ctx.has_budget = true;
      } else if (*it == "--threads" || it->rfind("--threads=", 0) == 0) {
        const int n = parse_int("--threads", take_value(it, "--threads"));
        if (n < 1 || n > 256)
          throw std::invalid_argument("--threads must be in [1, 256] (got " +
                                      std::to_string(n) + ")");
        util::set_max_threads(n);
      } else {
        ++it;
      }
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }

  // Dumps the metrics registry; an unwritable path is an I/O error (exit 2)
  // rather than a silent stderr note.
  const auto dump_metrics = [&]() -> bool {
    if (!metrics) return true;
    if (metrics_path.empty()) {
      std::ostringstream os;
      obs::Registry::global().write_json(os);
      std::fprintf(stderr, "%s\n", os.str().c_str());
      return true;
    }
    if (!write_file_atomic(metrics_path, [](std::ostream& out) {
          obs::Registry::global().write_json(out);
        })) {
      std::fprintf(stderr, "error: cannot write '%s'\n", metrics_path.c_str());
      return false;
    }
    return true;
  };

  // The cost tables every estimate trusts are validated once per invocation;
  // a corrupted entry is a configuration error (exit 2), not a wrong answer.
  for (const auto* lib : {&hw::CellLibrary::standard_018um(),
                          &hw::CellLibrary::conservative_018um()}) {
    const std::string err = lib->validate();
    if (!err.empty()) {
      std::fprintf(stderr, "error: %s\n", err.c_str());
      return 2;
    }
  }

  if (args.empty()) return usage();
  const auto dispatch = [&]() -> int {
    if (args[0] == "list") return cmd_list();
    if (args[0] == "curve" && args.size() >= 2)
      return cmd_curve(args[1], args.size() > 2 && args[2] == "--csv");
    if (args[0] == "select" && args.size() >= 5)
      return cmd_select(ctx, parse_u0(args[1]), parse_budget_fraction(args[2]),
                        parse_policy(args[3]), {args.begin() + 4, args.end()});
    if (args[0] == "pareto" && args.size() == 3)
      return cmd_pareto(args[1], parse_double("eps", args[2]));
    if (args[0] == "iterative" && args.size() >= 3)
      return cmd_iterative(ctx, parse_u0(args[1]),
                           {args.begin() + 2, args.end()});
    if (args[0] == "reconfig" && args.size() == 3)
      return cmd_reconfig(parse_int("num-loops", args[1]),
                          parse_u64("seed", args[2]));
    if (args[0] == "inject" && args.size() >= 7)
      return cmd_inject(ctx, parse_u0(args[1]), parse_budget_fraction(args[2]),
                        parse_policy(args[3]), parse_miss_policy(args[4]),
                        parse_double("factor", args[5]),
                        {args.begin() + 6, args.end()});
    if (args[0] == "margin" && args.size() >= 4)
      return cmd_margin(parse_u0(args[1]), parse_policy(args[2]),
                        {args.begin() + 3, args.end()});
    if (args[0] == "trace" && args.size() >= 2)
      return cmd_trace(ctx, {args.begin() + 1, args.end()});
    if (args[0] == "certify" && args.size() >= 2)
      return cmd_certify(ctx, {args.begin() + 1, args.end()});
    if (args[0] == "serve")
      return cmd_serve(ctx, {args.begin() + 1, args.end()});
    if (args[0] == "lift" && args.size() >= 2)
      return cmd_lift(ctx, {args.begin() + 1, args.end()});
    if (args[0] == "tail" && args.size() >= 2)
      return cmd_tail({args.begin() + 1, args.end()});
    return usage();
  };
  int rc = 2;
  try {
    rc = dispatch();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    rc = 2;
  }
  if (!dump_metrics() && rc == 0) rc = 2;
  if (ctx.strict && rc == 0 && ctx.worst != robust::Status::kExact) {
    std::fprintf(stderr, "strict: worst solver status %s (exit 3)\n",
                 robust::to_string(ctx.worst));
    rc = 3;
  }
  // A certificate failure outranks schedulability and strict-mode verdicts:
  // an uncertified answer must never read as a clean result.
  if (ctx.paranoid && ctx.cert_failed && rc != 2) {
    std::fprintf(stderr, "paranoid: certificate failure (exit 4)\n");
    rc = 4;
  }
  // An interrupted one-shot run exits 128+sig — after the metrics flush
  // above, so the partial (budget-truncated) results are still observable.
  // `serve` consumes its signal during the graceful drain and is unaffected.
  if (const int sig = serve::consume_pending_signal(); sig != 0) {
    robust::clear_global_cancel();
    std::fprintf(stderr, "interrupted: signal %d (exit %d)\n", sig, 128 + sig);
    rc = 128 + sig;
  }
  return rc;
}

}  // namespace isex::cli
