// Intra-task workload-area trade-off evaluation (Section 4.2.1).
//
// Input: the task's custom-instruction candidates, each lowering the task's
// workload by delta_{i,j} at integer hardware cost a_{i,j}. The exact Pareto
// curve comes from the pseudo-polynomial DP over the full cost axis (Eq 4.1);
// the epsilon-approximate curve comes from Algorithm 3: partition the cost
// range geometrically with ratio (1+eps)^{1/2} and solve the GAP problem at
// each corner with costs scaled to a' = ceil(a*r/b), r = ceil(n/eps') —
// an O(n^2/eps) DP per corner instead of O(n*C).
#pragma once

#include <vector>

#include "isex/pareto/front.hpp"

namespace isex::pareto {

/// One custom-instruction candidate with an integer hardware cost.
struct Item {
  int cost = 0;      // a_{i,j}, integer grid units
  double gain = 0;   // delta_{i,j}, workload reduction in cycles
};

/// Quantizes (area, gain) pairs onto an integer cost grid.
std::vector<Item> quantize_items(const std::vector<std::pair<double, double>>&
                                     area_gain,
                                 double grid);

/// Exact workload-area Pareto curve via the full-axis DP. O(n*C) with
/// C = sum of costs. base_workload is the software-only cycle count E_i.
Front exact_workload_front(const std::vector<Item>& items,
                           double base_workload);

/// The GAP subroutine: minimum workload achievable with scaled cost
/// ceil(a*r/b) summing to <= r. Returns the chosen subset's true cost too.
struct GapSolution {
  double workload = 0;
  int true_cost = 0;
};
GapSolution gap_min_workload(const std::vector<Item>& items,
                             double base_workload, double corner_cost,
                             double eps_prime);

/// Algorithm 3: the epsilon-approximate Pareto curve.
Front approx_workload_front(const std::vector<Item>& items,
                            double base_workload, double eps);

}  // namespace isex::pareto
