#include "isex/pareto/intra.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace isex::pareto {

std::vector<Item> quantize_items(
    const std::vector<std::pair<double, double>>& area_gain, double grid) {
  std::vector<Item> out;
  out.reserve(area_gain.size());
  for (const auto& [area, gain] : area_gain)
    out.push_back(Item{static_cast<int>(std::ceil(area / grid - 1e-9)), gain});
  return out;
}

Front exact_workload_front(const std::vector<Item>& items,
                           double base_workload) {
  long total = 0;
  for (const Item& it : items) total += it.cost;
  // best[c] = max workload reduction with total cost exactly <= c.
  std::vector<double> best(static_cast<std::size_t>(total) + 1, 0.0);
  for (const Item& it : items) {
    if (it.gain <= 0) continue;
    if (it.cost == 0) {
      for (double& b : best) b += it.gain;
      continue;
    }
    for (long c = total; c >= it.cost; --c)
      best[static_cast<std::size_t>(c)] =
          std::max(best[static_cast<std::size_t>(c)],
                   best[static_cast<std::size_t>(c - it.cost)] + it.gain);
  }
  std::vector<Point> pts;
  pts.push_back({0, base_workload - best[0]});
  for (long c = 1; c <= total; ++c)
    pts.push_back({static_cast<double>(c),
                   base_workload - best[static_cast<std::size_t>(c)]});
  return undominated(std::move(pts));
}

GapSolution gap_min_workload(const std::vector<Item>& items,
                             double base_workload, double corner_cost,
                             double eps_prime) {
  const auto n = items.size();
  const int r = static_cast<int>(
      std::ceil(static_cast<double>(n) / eps_prime - 1e-12));
  // Scaled costs a' = ceil(a * r / b); by properties (a)/(b) of Section
  // 4.2.1.1, A'(S) <= r implies A(S) <= b, and any solution with
  // A(S) <= b/(1+eps') survives the scaling.
  std::vector<int> scaled(n);
  for (std::size_t i = 0; i < n; ++i)
    scaled[i] = static_cast<int>(
        std::ceil(static_cast<double>(items[i].cost) * r / corner_cost -
                  1e-12));
  // DP over r cells, tracking true cost of one optimal subset for reporting.
  struct Cell {
    double gain = 0;
    int true_cost = 0;
  };
  std::vector<Cell> best(static_cast<std::size_t>(r) + 1);
  for (std::size_t i = 0; i < n; ++i) {
    if (items[i].gain <= 0) continue;
    const int w = scaled[i];
    if (w == 0) {
      for (auto& c : best) {
        c.gain += items[i].gain;
        c.true_cost += items[i].cost;
      }
      continue;
    }
    for (int c = r; c >= w; --c) {
      const Cell& from = best[static_cast<std::size_t>(c - w)];
      Cell cand{from.gain + items[i].gain, from.true_cost + items[i].cost};
      if (cand.gain > best[static_cast<std::size_t>(c)].gain)
        best[static_cast<std::size_t>(c)] = cand;
    }
  }
  Cell top;
  for (const auto& c : best)
    if (c.gain > top.gain) top = c;
  return GapSolution{base_workload - top.gain, top.true_cost};
}

Front approx_workload_front(const std::vector<Item>& items,
                            double base_workload, double eps) {
  const double eps_prime = std::sqrt(1.0 + eps) - 1.0;
  long total = 0;
  for (const Item& it : items) total += it.cost;

  std::vector<Point> pts;
  pts.push_back({0, base_workload});  // the all-software corner
  if (total > 0) {
    // Geometric corner costs 1, (1+eps'), (1+eps')^2, ... up to the full
    // cost range (Step 1 of Algorithm 3).
    for (double b = 1; b < static_cast<double>(total) * (1 + eps_prime);
         b *= (1 + eps_prime)) {
      const GapSolution s =
          gap_min_workload(items, base_workload, b, eps_prime);
      pts.push_back({static_cast<double>(s.true_cost), s.workload});
    }
  }
  return undominated(std::move(pts));
}

}  // namespace isex::pareto
