// Pareto-front utilities for the two-objective (cost, value) design spaces of
// Chapter 4, where both objectives are minimized: (area, workload) in the
// intra-task stage and (area, utilization) in the inter-task stage.
#pragma once

#include <vector>

namespace isex::pareto {

struct Point {
  double cost = 0;   // silicon area
  double value = 0;  // workload (cycles) or processor utilization

  bool operator==(const Point&) const = default;
};

/// Ascending cost, strictly descending value (a minimization staircase).
using Front = std::vector<Point>;

/// Removes dominated points and sorts into staircase form.
Front undominated(std::vector<Point> points);

/// True iff p dominates q (<= in both coordinates, < in at least one).
bool dominates(const Point& p, const Point& q);

/// The epsilon-approximation guarantee of Papadimitriou & Yannakakis: every
/// point of `exact` has a point of `approx` within factor (1+eps) in both
/// coordinates. This is the property the FPTAS must satisfy and the property
/// tests verify.
bool eps_covers(const Front& exact, const Front& approx, double eps);

}  // namespace isex::pareto
