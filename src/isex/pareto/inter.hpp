// Inter-task utilization-area trade-off evaluation (Section 4.2.2).
//
// Input: per-task workload-area Pareto curves (the intra-task stage output)
// plus each task's period. The stage picks exactly one configuration per
// task; exact computation runs the grouped-choice DP of Eq 4.2 over the full
// cost axis, and the approximation applies the same GAP cost-scaling per
// geometric corner, with r = ceil(m/eps') for m tasks.
#pragma once

#include "isex/pareto/intra.hpp"

namespace isex::pareto {

/// One task as seen by the inter-task stage: its period and its
/// configuration menu (integer cost, workload in cycles).
struct TaskMenu {
  double period = 0;
  std::vector<Item> configs;  // Item::gain reinterpreted as workload w_{i,k}
};

/// Exact utilization-area Pareto curve over all per-task choices.
Front exact_utilization_front(const std::vector<TaskMenu>& tasks);

/// GAP subroutine for the grouped choice: minimum utilization with scaled
/// total cost <= r, choosing one config per task.
GapSolution gap_min_utilization(const std::vector<TaskMenu>& tasks,
                                double corner_cost, double eps_prime);

/// Epsilon-approximate utilization-area Pareto curve (Algorithm 3, inter
/// stage).
Front approx_utilization_front(const std::vector<TaskMenu>& tasks, double eps);

/// Builds a TaskMenu from a workload-area Front (cost is already integral in
/// the front's grid units).
TaskMenu menu_from_front(const Front& workload_front, double period);

}  // namespace isex::pareto
