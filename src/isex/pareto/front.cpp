#include "isex/pareto/front.hpp"

#include <algorithm>

namespace isex::pareto {

bool dominates(const Point& p, const Point& q) {
  return p.cost <= q.cost + 1e-12 && p.value <= q.value + 1e-12 &&
         (p.cost < q.cost - 1e-12 || p.value < q.value - 1e-12);
}

Front undominated(std::vector<Point> points) {
  std::sort(points.begin(), points.end(), [](const Point& a, const Point& b) {
    if (a.cost != b.cost) return a.cost < b.cost;
    return a.value < b.value;
  });
  Front out;
  for (const Point& p : points) {
    if (!out.empty() && p.value >= out.back().value - 1e-12) continue;
    out.push_back(p);
  }
  return out;
}

bool eps_covers(const Front& exact, const Front& approx, double eps) {
  for (const Point& p : exact) {
    bool covered = false;
    for (const Point& q : approx) {
      if (q.cost <= (1 + eps) * p.cost + 1e-9 &&
          q.value <= (1 + eps) * p.value + 1e-9) {
        covered = true;
        break;
      }
    }
    if (!covered) return false;
  }
  return true;
}

}  // namespace isex::pareto
