#include "isex/pareto/inter.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace isex::pareto {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}

TaskMenu menu_from_front(const Front& workload_front, double period) {
  TaskMenu m;
  m.period = period;
  for (const Point& p : workload_front)
    m.configs.push_back(
        Item{static_cast<int>(std::llround(p.cost)), p.value});
  return m;
}

Front exact_utilization_front(const std::vector<TaskMenu>& tasks) {
  long total = 0;
  for (const auto& t : tasks) {
    long mx = 0;
    for (const Item& c : t.configs) mx = std::max<long>(mx, c.cost);
    total += mx;
  }
  // u[c] = min utilization of the tasks so far with total cost <= c.
  // Grouped-choice DP (Eq 4.2): each task contributes exactly one config.
  std::vector<double> u(static_cast<std::size_t>(total) + 1, 0.0);
  for (const auto& t : tasks) {
    std::vector<double> next(static_cast<std::size_t>(total) + 1, kInf);
    for (long c = 0; c <= total; ++c) {
      for (const Item& cfg : t.configs) {
        if (cfg.cost > c) continue;
        const double cand = u[static_cast<std::size_t>(c - cfg.cost)] +
                            cfg.gain / t.period;  // gain = workload w_{i,k}
        next[static_cast<std::size_t>(c)] =
            std::min(next[static_cast<std::size_t>(c)], cand);
      }
    }
    u = std::move(next);
  }
  std::vector<Point> pts;
  for (long c = 0; c <= total; ++c)
    if (u[static_cast<std::size_t>(c)] < kInf)
      pts.push_back({static_cast<double>(c), u[static_cast<std::size_t>(c)]});
  return undominated(std::move(pts));
}

GapSolution gap_min_utilization(const std::vector<TaskMenu>& tasks,
                                double corner_cost, double eps_prime) {
  const auto m = tasks.size();
  const int r = static_cast<int>(
      std::ceil(static_cast<double>(m) / eps_prime - 1e-12));
  struct Cell {
    double util = kInf;
    int true_cost = 0;
  };
  std::vector<Cell> best(static_cast<std::size_t>(r) + 1);
  best[0] = Cell{0, 0};
  for (const auto& t : tasks) {
    std::vector<Cell> next(static_cast<std::size_t>(r) + 1);
    for (int c = 0; c <= r; ++c) {
      const Cell& from = best[static_cast<std::size_t>(c)];
      if (from.util == kInf) continue;
      for (const Item& cfg : t.configs) {
        const int w = static_cast<int>(
            std::ceil(static_cast<double>(cfg.cost) * r / corner_cost -
                      1e-12));
        if (c + w > r) continue;
        const double util = from.util + cfg.gain / t.period;
        Cell& dst = next[static_cast<std::size_t>(c + w)];
        if (util < dst.util) dst = Cell{util, from.true_cost + cfg.cost};
      }
    }
    best = std::move(next);
  }
  Cell top;
  for (const auto& c : best)
    if (c.util < top.util) top = c;
  return GapSolution{top.util, top.true_cost};
}

Front approx_utilization_front(const std::vector<TaskMenu>& tasks,
                               double eps) {
  const double eps_prime = std::sqrt(1.0 + eps) - 1.0;
  long total = 0;
  for (const auto& t : tasks) {
    long mx = 0;
    for (const Item& c : t.configs) mx = std::max<long>(mx, c.cost);
    total += mx;
  }
  std::vector<Point> pts;
  // The zero-cost corner: all tasks in software (config with cost 0).
  {
    double u = 0;
    for (const auto& t : tasks) {
      double w = kInf;
      for (const Item& c : t.configs)
        if (c.cost == 0) w = std::min(w, c.gain);
      u += w / t.period;
    }
    if (u < kInf) pts.push_back({0, u});
  }
  if (total > 0) {
    for (double b = 1; b < static_cast<double>(total) * (1 + eps_prime);
         b *= (1 + eps_prime)) {
      const GapSolution s = gap_min_utilization(tasks, b, eps_prime);
      if (s.workload < kInf)
        pts.push_back({static_cast<double>(s.true_cost), s.workload});
    }
  }
  return undominated(std::move(pts));
}

}  // namespace isex::pareto
