// isex::robust — the anytime-result protocol and Result-style errors.
//
// Outcome<T> is what every budget-bounded solver entry point returns: the
// value (exact answer, best-so-far incumbent, or fallback result), how the
// run ended (Status), a conservative optimality gap, and the budget
// consumption report. The contract:
//   * kExact            — value is the solver's true answer; gap == 0.
//   * kBudgetTruncated  — the budget ran out; value is a *feasible* incumbent
//                         and optimality_gap bounds its distance from the
//                         optimum (each solver documents its bound).
//   * kDegraded         — a cheaper fallback rung produced the value (see
//                         fallback.hpp); feasibility as above.
//   * kInfeasible       — the solver proved no feasible solution exists, or
//                         the input was degenerate; `detail` says which.
//
// Result<T> is a minimal expected<T, Error> for the call-chain paths that
// previously aborted or threw bare exceptions: validation failures become
// values the caller can route, print, and exit(2) on without unwinding
// through solver internals.
#pragma once

#include <string>
#include <utility>
#include <variant>

#include "isex/certify/report.hpp"
#include "isex/robust/budget.hpp"

namespace isex::robust {

template <typename T>
struct Outcome {
  T value{};
  Status status = Status::kExact;
  /// Conservative relative gap to the (unknown) optimum; 0 for exact runs.
  /// Minimization solvers use (incumbent - lower_bound) / lower_bound,
  /// maximization (enumeration-style) solvers document their own bound.
  double optimality_gap = 0;
  BudgetReport budget;
  /// Human-readable note: ladder rung trail, infeasibility reason, ...
  std::string detail;
  /// Witness-checker verdict on `value` (see certify/). Empty (zero checks,
  /// no violations) when the producing path ran no checker; a failing report
  /// means the ladder demoted through every rung without a certified answer
  /// and the caller must not trust `value`.
  certify::CertifyReport certificate;

  bool exact() const { return status == Status::kExact; }
  bool ok() const { return status != Status::kInfeasible; }
  bool certified() const { return certificate.ok(); }
};

struct Error {
  std::string message;
};

/// Minimal expected<T, Error>: holds either a value or an error message.
template <typename T>
class Result {
 public:
  Result(T value) : v_(std::move(value)) {}              // NOLINT(implicit)
  Result(Error error) : v_(std::move(error)) {}          // NOLINT(implicit)

  bool ok() const { return std::holds_alternative<T>(v_); }
  explicit operator bool() const { return ok(); }

  const T& value() const& { return std::get<T>(v_); }
  T&& value() && { return std::get<T>(std::move(v_)); }
  const Error& error() const { return std::get<Error>(v_); }

 private:
  std::variant<T, Error> v_;
};

}  // namespace isex::robust
