// isex::robust — the graceful-degradation ladder.
//
// When a budget-bounded solver run comes back kBudgetTruncated, the ladder
// retries the problem with progressively cheaper strategies instead of
// surrendering the truncated incumbent immediately:
//   EDF selection:  fine-grid DP -> coarse-grid DP (grid x8) -> greedy
//                   gain/area knapsack;
//   RMS selection:  full branch-and-bound -> beam-limited branch-and-bound
//                   -> greedy knapsack validated by the exact RMS test;
//   enumeration:    full growth enumeration -> degree-bounded enumeration
//                   (small subgraphs only) -> maximal MISOs (linear).
// Each retry rung runs under a fresh slice of the original budget
// (FallbackOptions::retry_time_fraction / retry_node_divisor), so the whole
// ladder stays within a small constant factor of the requested budget. The
// best feasible value seen across rungs wins; results produced by a rung
// below the first are reported as kDegraded, and the rung trail is recorded
// in Outcome::detail and in the obs metrics registry.
#pragma once

#include <algorithm>
#include <cstddef>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "isex/customize/select_rms.hpp"
#include "isex/ise/enumerate.hpp"
#include "isex/robust/outcome.hpp"

namespace isex::robust {

struct FallbackOptions {
  /// Slice of the original wall-clock budget each retry rung may spend.
  double retry_time_fraction = 0.25;
  /// Each retry rung gets node_budget / retry_node_divisor charges.
  long retry_node_divisor = 4;
  /// Floor on a retry rung's node slice, so tiny budgets still let the
  /// cheap rungs do a useful amount of work.
  long retry_node_floor = 4096;
  /// Per-rung cap on full candidate certifications in the enumeration
  /// ladder (deterministic sample above it; see certify::PoolCheckOptions).
  /// < 0 certifies every candidate — what --paranoid selects.
  long certify_pool_cap = 256;
  /// First ladder rung to run (clamped to the last rung). The load-shedding
  /// hook: a server under pressure enters the ladder below the exact rung,
  /// trading optimality-gap for latency. Results from a non-zero start are
  /// relabelled kDegraded like any other below-first-rung answer.
  std::size_t start_rung = 0;
};

/// A fresh budget for one retry rung, sliced from the primary's limits.
Budget make_retry_budget(const Budget& primary, const FallbackOptions& fb);

/// Emits the certify.rung_demotions counter (out-of-line so the template
/// below stays free of the obs headers).
void count_rung_demotion();

/// Flight-recorder hooks, also out-of-line for the same reason. Records are
/// attributed to the calling thread's current request scope (the serve loop
/// opens one per request), so a response's rung/certify history is
/// reconstructible from the journal by request id.
void journal_rung(std::size_t rung, int status, bool certified_ok);
void journal_certify(long checks, long violations);

/// Generic ladder driver. Runs rung 0 against `budget`; while the result is
/// kBudgetTruncated and rungs remain, runs the next rung under a fresh slice
/// budget. `better(candidate, incumbent)` picks the value to keep across
/// rungs; any rung below the first that completes is relabelled kDegraded.
/// The returned Outcome carries the primary budget's report and a detail
/// trail naming every rung that ran.
///
/// Certification: a rung whose lambda already recorded a failing
/// Outcome::certificate, or whose value the optional `certifier` rejects, is
/// *demoted* — its value is discarded and the next rung runs, exactly as if
/// the rung had truncated. When every rung fails its certificate the first
/// failing outcome is returned (certificate attached) so the caller can see
/// what broke; its value must not be trusted.
template <typename T, typename Better>
Outcome<T> solve_with_fallback(
    Budget* budget, const FallbackOptions& fb,
    const std::vector<std::pair<std::string, std::function<Outcome<T>(Budget*)>>>&
        rungs,
    Better better,
    const std::function<certify::CertifyReport(const Outcome<T>&)>& certifier =
        nullptr) {
  Outcome<T> best;
  Outcome<T> first_failed;
  bool have = false, have_failed = false;
  std::string trail;
  const std::size_t first =
      rungs.empty() ? 0 : std::min(fb.start_rung, rungs.size() - 1);
  for (std::size_t i = first; i < rungs.size(); ++i) {
    Budget slice;
    Budget* b = budget;
    if (i > first && budget != nullptr) {
      slice = make_retry_budget(*budget, fb);
      b = &slice;
    }
    Outcome<T> r = rungs[i].second(b);
    if (i > 0 && r.status == Status::kExact) r.status = Status::kDegraded;
    if (r.certificate.ok() && certifier) r.certificate.merge(certifier(r));
    journal_rung(i, static_cast<int>(r.status), r.certificate.ok());
    if (!trail.empty()) trail += " -> ";
    if (!r.certificate.ok()) {
      trail += rungs[i].first + ":certify-failed";
      count_rung_demotion();
      if (!have_failed) {
        first_failed = std::move(r);
        have_failed = true;
      }
      continue;  // demote: try the next rung rather than accept bad output
    }
    trail += rungs[i].first + ":" + to_string(r.status);
    if (r.status == Status::kInfeasible) {
      if (!have) {
        best = std::move(r);
        have = true;
      }
      break;  // a proof of infeasibility ends the ladder
    }
    if (!have || better(r, best)) {
      best = std::move(r);
      have = true;
    }
    if (best.status != Status::kBudgetTruncated) break;
  }
  if (!have && have_failed) best = std::move(first_failed);
  best.detail = best.detail.empty() ? trail : best.detail + "; " + trail;
  if (budget != nullptr) best.budget = budget->report();
  return best;
}

/// EDF selection ladder (see file comment). `base` carries the grid and
/// constraints of the first rung; its budget field is overridden.
Outcome<customize::SelectionResult> select_edf_with_fallback(
    const rt::TaskSet& ts, double area_budget,
    const customize::EdfOptions& base, Budget* budget,
    const FallbackOptions& fb = {});

/// RMS selection ladder. Requires ts sorted by increasing period.
Outcome<customize::RmsResult> select_rms_with_fallback(
    const rt::TaskSet& ts, double area_budget,
    const customize::RmsOptions& base, Budget* budget,
    const FallbackOptions& fb = {});

/// Candidate-enumeration ladder. Values of later rungs are merged with the
/// truncated rung-1 pool (duplicates removed), so descending never loses
/// already-found candidates.
Outcome<std::vector<ise::Candidate>> enumerate_with_fallback(
    const ir::Dfg& dfg, const hw::CellLibrary& lib,
    const ise::EnumOptions& base, Budget* budget, int block = 0,
    double exec_freq = 1, const FallbackOptions& fb = {});

}  // namespace isex::robust
