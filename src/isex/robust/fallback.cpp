#include "isex/robust/fallback.hpp"

#include <algorithm>
#include <unordered_set>

#include "isex/certify/ci.hpp"
#include "isex/certify/schedule.hpp"
#include "isex/customize/heuristics.hpp"
#include "isex/obs/journal.hpp"
#include "isex/obs/metrics.hpp"
#include "isex/obs/trace.hpp"
#include "isex/rt/schedulability.hpp"

namespace isex::robust {

void count_rung_demotion() { ISEX_COUNT("certify.rung_demotions"); }

void journal_rung(std::size_t rung, int status, bool certified_ok) {
  ISEX_JOURNAL(kRung, kSolve, 0, rung, certified_ok ? status : -1);
}

void journal_certify(long checks, long violations) {
  ISEX_JOURNAL(kCertify, kCertify, 0, checks, violations);
}

Budget make_retry_budget(const Budget& primary, const FallbackOptions& fb) {
  const BudgetReport r = primary.report();
  Budget b;
  if (r.time_budget_seconds > 0)
    b.set_time_budget(r.time_budget_seconds * fb.retry_time_fraction);
  if (r.node_budget >= 0)
    b.set_node_budget(std::max(r.node_budget / fb.retry_node_divisor,
                               fb.retry_node_floor));
  if (r.mem_budget_bytes > 0) b.set_mem_budget(r.mem_budget_bytes);
  return b;
}

namespace {

/// Area-unconstrained utilization lower bound (every task at its fastest
/// configuration) — the gap denominator for degraded selection rungs.
double util_lower_bound(const rt::TaskSet& ts) {
  double lb = 0;
  for (const rt::Task& t : ts.tasks) lb += t.best_cycles() / t.period;
  return lb;
}

double gap_vs_lb(const rt::TaskSet& ts, double utilization) {
  const double lb = util_lower_bound(ts);
  return lb > 0 ? std::max(0.0, (utilization - lb) / lb) : 0.0;
}

/// Lower utilization wins; a schedulable value always beats an
/// unschedulable one.
template <typename R>
bool better_selection(const Outcome<R>& a, const Outcome<R>& b) {
  if (a.value.schedulable != b.value.schedulable) return a.value.schedulable;
  return a.value.utilization < b.value.utilization;
}

}  // namespace

Outcome<customize::SelectionResult> select_edf_with_fallback(
    const rt::TaskSet& ts, double area_budget,
    const customize::EdfOptions& base, Budget* budget,
    const FallbackOptions& fb) {
  ISEX_SPAN_CAT("robust.fallback.select_edf", "robust");
  using R = customize::SelectionResult;
  std::vector<std::pair<std::string, std::function<Outcome<R>(Budget*)>>>
      rungs;
  rungs.emplace_back("dp", [&](Budget* b) {
    customize::EdfOptions o = base;
    o.budget = b;
    return customize::select_edf_bounded(ts, area_budget, o);
  });
  rungs.emplace_back("coarse-dp", [&](Budget* b) {
    ISEX_COUNT("robust.fallback.edf.coarse_retries");
    customize::EdfOptions o = base;
    o.area_grid = base.area_grid * 8;
    o.budget = b;
    auto r = customize::select_edf_bounded(ts, area_budget, o);
    // The coarse grid is itself an approximation: even a completed run is
    // degraded relative to the requested grid, so report the lb gap.
    if (r.status == Status::kExact)
      r.optimality_gap = gap_vs_lb(ts, r.value.utilization);
    return r;
  });
  rungs.emplace_back("greedy", [&](Budget*) {
    ISEX_COUNT("robust.fallback.edf.greedy_retries");
    Outcome<R> r;
    r.value = customize::select_heuristic(
        ts, area_budget, customize::Heuristic::kBestGainAreaRatio);
    r.optimality_gap = gap_vs_lb(ts, r.value.utilization);
    return r;
  });
  // Certify each rung's answer against the exact EDF test before the ladder
  // accepts it; the claims are checked as the caller will see them (status
  // and gap synced from the outcome).
  std::function<certify::CertifyReport(const Outcome<R>&)> certifier =
      [&ts, area_budget](const Outcome<R>& o) {
        R v = o.value;
        v.status = o.status;
        v.optimality_gap = o.optimality_gap;
        certify::CertifyReport rep =
            certify::check_selection_edf(ts, area_budget, v);
        journal_certify(rep.checks, static_cast<long>(rep.violations.size()));
        return rep;
      };
  Outcome<R> out =
      solve_with_fallback<R>(budget, fb, rungs, better_selection<R>, certifier);
  out.value.status = out.status;
  out.value.optimality_gap = out.optimality_gap;
  return out;
}

Outcome<customize::RmsResult> select_rms_with_fallback(
    const rt::TaskSet& ts, double area_budget,
    const customize::RmsOptions& base, Budget* budget,
    const FallbackOptions& fb) {
  ISEX_SPAN_CAT("robust.fallback.select_rms", "robust");
  using R = customize::RmsResult;
  constexpr long kBeamNodes = 20000;
  std::vector<std::pair<std::string, std::function<Outcome<R>(Budget*)>>>
      rungs;
  rungs.emplace_back("bnb", [&](Budget* b) {
    customize::RmsOptions o = base;
    o.budget = b;
    return customize::select_rms_bounded(ts, area_budget, o);
  });
  rungs.emplace_back("beam-bnb", [&](Budget* b) {
    ISEX_COUNT("robust.fallback.rms.beam_retries");
    customize::RmsOptions o = base;
    o.max_nodes = base.max_nodes >= 0 ? std::min(base.max_nodes, kBeamNodes)
                                      : kBeamNodes;
    o.budget = b;
    Outcome<R> r;
    r.value = customize::select_rms(ts, area_budget, o);
    // A beam cap is an approximation even when it finishes: never claim
    // exactness from this rung, but do not claim truncation either unless
    // the slice budget itself ran out.
    r.status = r.value.status == Status::kBudgetTruncated &&
                       b != nullptr && b->exhausted_cached()
                   ? Status::kBudgetTruncated
                   : Status::kDegraded;
    r.optimality_gap = gap_vs_lb(ts, r.value.utilization);
    return r;
  });
  rungs.emplace_back("greedy+rms-test", [&](Budget*) {
    ISEX_COUNT("robust.fallback.rms.greedy_retries");
    customize::SelectionResult g = customize::select_heuristic(
        ts, area_budget, customize::Heuristic::kBestGainAreaRatio);
    Outcome<R> r;
    static_cast<customize::SelectionResult&>(r.value) = g;
    // The greedy selector targets EDF; validate its assignment with the
    // exact RMS test and fall back to all-software when it fails.
    auto rms_ok = [&](const std::vector<int>& assignment) {
      std::vector<double> cycles, periods;
      cycles.reserve(ts.size());
      periods.reserve(ts.size());
      for (std::size_t i = 0; i < ts.size(); ++i) {
        cycles.push_back(
            ts.tasks[i]
                .configs[static_cast<std::size_t>(assignment[i])]
                .cycles);
        periods.push_back(ts.tasks[i].period);
      }
      return rt::rms_schedulable(cycles, periods);
    };
    if (!rms_ok(r.value.assignment)) {
      r.value.assignment.assign(ts.size(), 0);
      r.value.utilization = ts.utilization(r.value.assignment);
      r.value.area_used = 0;
    }
    r.value.schedulable = rms_ok(r.value.assignment);
    r.value.found_feasible = r.value.schedulable;
    r.value.completed = true;
    r.optimality_gap = gap_vs_lb(ts, r.value.utilization);
    return r;
  });
  std::function<certify::CertifyReport(const Outcome<R>&)> certifier =
      [&ts, area_budget](const Outcome<R>& o) {
        R v = o.value;
        v.status = o.status;
        v.optimality_gap = o.optimality_gap;
        certify::CertifyReport rep =
            certify::check_selection_rms(ts, area_budget, v);
        journal_certify(rep.checks, static_cast<long>(rep.violations.size()));
        return rep;
      };
  Outcome<R> out =
      solve_with_fallback<R>(budget, fb, rungs, better_selection<R>, certifier);
  out.value.status = out.status;
  out.value.optimality_gap = out.optimality_gap;
  return out;
}

Outcome<std::vector<ise::Candidate>> enumerate_with_fallback(
    const ir::Dfg& dfg, const hw::CellLibrary& lib,
    const ise::EnumOptions& base, Budget* budget, int block, double exec_freq,
    const FallbackOptions& fb) {
  ISEX_SPAN_CAT("robust.fallback.enumerate", "robust");
  using R = std::vector<ise::Candidate>;
  constexpr int kDegreeBoundNodes = 10;
  constexpr long kDegreeBoundCandidates = 20000;
  std::vector<std::pair<std::string, std::function<Outcome<R>(Budget*)>>>
      rungs;
  rungs.emplace_back("full", [&](Budget* b) {
    ise::EnumOptions o = base;
    o.budget = b;
    return ise::enumerate_candidates_bounded(dfg, lib, o, block, exec_freq);
  });
  rungs.emplace_back("degree-bounded", [&](Budget* b) {
    ISEX_COUNT("robust.fallback.enum.degree_retries");
    ise::EnumOptions o = base;
    o.max_candidate_nodes = std::min(base.max_candidate_nodes,
                                     kDegreeBoundNodes);
    o.max_candidates = std::min(base.max_candidates, kDegreeBoundCandidates);
    o.budget = b;
    return ise::enumerate_candidates_bounded(dfg, lib, o, block, exec_freq);
  });
  rungs.emplace_back("maximal-misos", [&](Budget*) {
    ISEX_COUNT("robust.fallback.enum.miso_retries");
    Outcome<R> r;
    r.value =
        ise::maximal_misos(dfg, lib, base.constraints, block, exec_freq);
    return r;
  });
  // Larger candidate pools win; candidates from all rungs are merged below,
  // so the comparator only orders the base value the merge starts from.
  auto better = [](const Outcome<R>& a, const Outcome<R>& b) {
    return a.value.size() > b.value.size();
  };
  // Run the ladder but keep every rung's candidates: wrap each rung so its
  // output accumulates into one deduplicated pool. Each rung's *raw* output
  // is certified before it may touch the pool — a corrupt rung is demoted
  // without poisoning the candidates later rungs inherit.
  std::unordered_set<util::Bitset, util::BitsetHash> seen;
  R pool;
  certify::PoolCheckOptions po;
  po.max_full_checks = fb.certify_pool_cap;
  po.require_unique = false;  // cross-rung duplicates are expected pre-merge
  for (auto& [name, fn] : rungs) {
    auto inner = std::move(fn);
    fn = [&seen, &pool, po, &dfg, &lib, &base, inner](Budget* b) {
      Outcome<R> r = inner(b);
      r.certificate =
          certify::check_candidate_pool(dfg, lib, base.constraints, r.value, po);
      if (!r.certificate.ok()) {
        r.value = pool;  // hand back only what earlier rungs certified
        return r;
      }
      for (ise::Candidate& c : r.value)
        if (seen.insert(c.nodes).second) pool.push_back(std::move(c));
      r.value = pool;
      return r;
    };
  }
  return solve_with_fallback<R>(budget, fb, rungs, better);
}

}  // namespace isex::robust
