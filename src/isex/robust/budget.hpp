// isex::robust — cooperative execution budgets.
//
// Every core solver in this codebase (candidate enumeration, the optimal
// single cut, the EDF dynamic program, the RMS and reconfiguration
// branch-and-bounds, the iterative MLGP loop) is worst-case exponential or
// pseudo-polynomial in quantities an adversarial input controls. A Budget
// makes all of them interruptible without threads or signals: the solver
// charges the budget at loop granularity (one charge per search node / DP
// cell / grow call) and stops cleanly — keeping its running incumbent — as
// soon as any of three limits is hit:
//   * a wall-clock deadline (checked every kTimeCheckStride charges, so the
//     hot path stays one increment + one compare);
//   * a work budget in "nodes" (charges), the deterministic analogue of the
//     deadline for reproducible tests;
//   * an approximate memory budget, charged at the allocation sites that can
//     actually grow without bound (DP tables, enumeration candidate pools and
//     visited sets) — an accounting bound, not an allocator hook.
// Budgets are plain non-owning state threaded through options structs as a
// `Budget*`; a null pointer means unlimited and costs one branch per check,
// so budget-free runs remain bit-identical to the pre-budget code paths.
//
// Sharing across workers: the counters and exhaustion latches are relaxed
// atomics, so one Budget may be charged concurrently from every thread of a
// parallel solver. Configure (set_*) before sharing; reports taken while
// workers still run are racy snapshots. Workers should charge through a
// worker-local BudgetShare, which batches charges into strides — one atomic
// add per stride instead of per charge — and latches exhaustion/cancel
// cooperatively within one stride on every thread. Budgets with
// *deterministic* limits (nodes or memory) imply the deterministic serial
// schedule: parallel solvers check deterministic_limits() and fall back to
// their exact legacy single-threaded paths, which keeps node-budget runs
// byte-reproducible — the property the determinism test suite and certify
// depend on.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>

namespace isex::robust {

/// How a solver run ended. The anytime-result protocol: every bounded solver
/// returns a usable value under every status except (some) kInfeasible.
enum class Status {
  kExact,           // ran to completion; the value is the solver's true answer
  kBudgetTruncated, // budget exhausted; the value is the best-so-far incumbent
  kDegraded,        // a cheaper fallback rung produced the value
  kInfeasible,      // no feasible solution exists, or the input is degenerate
};

const char* to_string(Status s);

/// Snapshot of what a run consumed vs. what it was allowed.
struct BudgetReport {
  double elapsed_seconds = 0;
  double time_budget_seconds = 0;  // <= 0: unlimited
  long nodes_charged = 0;
  long node_budget = -1;           // < 0: unlimited
  std::size_t mem_peak_bytes = 0;  // high-water mark of accounted memory
  std::size_t mem_budget_bytes = 0;  // 0: unlimited
  bool time_exhausted = false;
  bool nodes_exhausted = false;
  bool mem_exhausted = false;
  bool cancelled = false;  // stopped by a global cancellation request

  bool exhausted() const {
    return time_exhausted || nodes_exhausted || mem_exhausted || cancelled;
  }
  /// "", or a comma-joined subset of "time", "nodes", "mem", "cancel".
  std::string reason() const;
};

/// Process-wide cooperative cancellation, for signal handlers: a lock-free
/// atomic flag every Budget observes at its time-check stride. Setting it
/// makes every in-flight budgeted solver stop (status kBudgetTruncated,
/// report.cancelled) within kTimeCheckStride charges — the mechanism behind
/// graceful SIGINT/SIGTERM in the CLI and the serve daemon. Budgets without
/// any limit set observe it too (the stride check always runs).
void request_global_cancel();   // async-signal-safe
void clear_global_cancel();
bool global_cancel_requested();

class Budget {
 public:
  /// Unlimited on construction; set the limits you want. The elapsed-time
  /// clock starts here (set_time_budget restarts it).
  Budget();

  /// Copy/move transfer a snapshot of the counters (the atomics make the
  /// defaults deleted). Only valid while no worker charges either side —
  /// used for configuration handoff, e.g. fallback retry slices.
  Budget(const Budget& o) { *this = o; }
  Budget& operator=(const Budget& o) {
    if (this == &o) return *this;
    start_ns_ = o.start_ns_;
    deadline_ns_ = o.deadline_ns_;
    time_budget_seconds_ = o.time_budget_seconds_;
    node_budget_ = o.node_budget_;
    mem_budget_ = o.mem_budget_;
    nodes_.store(o.nodes_.load(std::memory_order_relaxed),
                 std::memory_order_relaxed);
    ticks_.store(o.ticks_.load(std::memory_order_relaxed),
                 std::memory_order_relaxed);
    mem_current_.store(o.mem_current_.load(std::memory_order_relaxed),
                       std::memory_order_relaxed);
    mem_peak_.store(o.mem_peak_.load(std::memory_order_relaxed),
                    std::memory_order_relaxed);
    time_hit_.store(o.time_hit_.load(std::memory_order_relaxed),
                    std::memory_order_relaxed);
    nodes_hit_.store(o.nodes_hit_.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
    cancel_hit_.store(o.cancel_hit_.load(std::memory_order_relaxed),
                      std::memory_order_relaxed);
    mem_refused_.store(o.mem_refused_.load(std::memory_order_relaxed),
                       std::memory_order_relaxed);
    return *this;
  }
  Budget(Budget&& o) noexcept { *this = o; }
  Budget& operator=(Budget&& o) noexcept { return *this = o; }

  /// Wall-clock limit from *now*; <= 0 removes the limit.
  void set_time_budget(double seconds);
  /// Work limit in charges; < 0 removes the limit.
  void set_node_budget(long nodes);
  /// Accounted-allocation limit in bytes; 0 removes the limit.
  void set_mem_budget(std::size_t bytes);

  bool has_limits() const {
    return deadline_ns_ > 0 || node_budget_ >= 0 || mem_budget_ > 0;
  }

  /// True when some limit makes truncation points input-determined (node or
  /// memory budgets, as opposed to wall-clock only). Parallel solvers must
  /// run their exact serial schedule under such budgets so truncated results
  /// stay byte-reproducible.
  bool deterministic_limits() const {
    return node_budget_ >= 0 || mem_budget_ > 0;
  }

  /// Charges n units of work. Returns true when the caller must stop
  /// (some limit is exhausted or a global cancel is pending). Hot-path cost:
  /// one relaxed add, one-two compares; the clock and the cancel flag are
  /// read every kTimeCheckStride charge events.
  bool charge(long n = 1) {
    const long total = nodes_.fetch_add(n, std::memory_order_relaxed) + n;
    if (node_budget_ >= 0 && total > node_budget_)
      nodes_hit_.store(true, std::memory_order_relaxed);
    if (((ticks_.fetch_add(1, std::memory_order_relaxed) + 1) &
         (kTimeCheckStride - 1)) == 0)
      check_time();
    return hit();
  }

  /// Accounts `bytes` of solver-owned memory. Returns true (without
  /// charging) when the allocation would exceed the memory budget — the
  /// caller must not allocate and should truncate its own result. A refusal
  /// is recorded in the report but does NOT poison charge()/exhausted():
  /// a later, smaller consumer (a cheaper ladder rung) may still fit.
  bool charge_mem(std::size_t bytes);
  /// Releases previously charged bytes (the peak stays recorded).
  void release_mem(std::size_t bytes);

  /// True when the time or node limit is exhausted or a global cancel is
  /// pending. Re-reads the clock, so coarse loops may poll this directly
  /// instead of charging.
  bool exhausted() {
    if (!hit()) check_time();
    return hit();
  }
  /// The latched answer of the last charge()/exhausted(), without touching
  /// the clock.
  bool exhausted_cached() const { return hit(); }

  double elapsed_seconds() const;
  BudgetReport report() const;

  static constexpr long kTimeCheckStride = 256;  // power of two

 private:
  bool hit() const {
    return time_hit_.load(std::memory_order_relaxed) ||
           nodes_hit_.load(std::memory_order_relaxed) ||
           cancel_hit_.load(std::memory_order_relaxed);
  }
  void check_time();

  std::int64_t start_ns_ = 0;      // process trace-clock time at construction
  std::int64_t deadline_ns_ = 0;   // 0: no time limit
  double time_budget_seconds_ = 0;
  long node_budget_ = -1;
  std::size_t mem_budget_ = 0;

  std::atomic<long> nodes_{0};
  std::atomic<long> ticks_{0};
  std::atomic<std::size_t> mem_current_{0};
  std::atomic<std::size_t> mem_peak_{0};
  std::atomic<bool> time_hit_{false};
  std::atomic<bool> nodes_hit_{false};
  std::atomic<bool> cancel_hit_{false};   // observed a global cancel request
  std::atomic<bool> mem_refused_{false};  // an allocation was refused (latch)
};

/// Worker-local charging adapter over one shared Budget: accumulates charges
/// locally and forwards them in strides, so T workers metering one Budget
/// cost one relaxed atomic RMW per kStride charges instead of one per charge.
/// Exhaustion (including a global cancel) latches into stopped() within one
/// stride on every worker — the cooperative-cancel granularity of a parallel
/// solve. A null Budget* is unlimited, mirroring the Budget* convention.
class BudgetShare {
 public:
  BudgetShare() = default;
  explicit BudgetShare(Budget* b) : b_(b) {
    if (b_ != nullptr && b_->exhausted_cached()) stopped_ = true;
  }
  ~BudgetShare() { flush(); }

  BudgetShare(const BudgetShare&) = delete;
  BudgetShare& operator=(const BudgetShare&) = delete;

  /// Charges n units; returns true when the caller must stop.
  bool charge(long n = 1) {
    if (b_ == nullptr) return false;
    if (stopped_) return true;
    pending_ += n;
    if (pending_ >= kStride) flush();
    return stopped_;
  }

  /// Memory accounting is rare enough to forward unstrided.
  bool charge_mem(std::size_t bytes) {
    return b_ != nullptr && b_->charge_mem(bytes);
  }

  /// Forwards any pending charges and refreshes the stop latch.
  void flush() {
    if (b_ == nullptr) return;
    if (pending_ > 0) {
      if (b_->charge(pending_)) stopped_ = true;
      pending_ = 0;
    } else if (b_->exhausted_cached()) {
      stopped_ = true;
    }
  }

  bool stopped() const { return stopped_; }
  Budget* budget() const { return b_; }

  static constexpr long kStride = 64;

 private:
  Budget* b_ = nullptr;
  long pending_ = 0;
  bool stopped_ = false;
};

}  // namespace isex::robust
