#include "isex/robust/budget.hpp"

#include <atomic>

#include "isex/obs/trace.hpp"

namespace isex::robust {

namespace {
// Lock-free so request_global_cancel is async-signal-safe (the serve/CLI
// signal handlers call it directly).
std::atomic<bool> g_cancel{false};
static_assert(std::atomic<bool>::is_always_lock_free);
}  // namespace

void request_global_cancel() {
  g_cancel.store(true, std::memory_order_relaxed);
}

void clear_global_cancel() { g_cancel.store(false, std::memory_order_relaxed); }

bool global_cancel_requested() {
  return g_cancel.load(std::memory_order_relaxed);
}

const char* to_string(Status s) {
  switch (s) {
    case Status::kExact: return "Exact";
    case Status::kBudgetTruncated: return "BudgetTruncated";
    case Status::kDegraded: return "Degraded";
    case Status::kInfeasible: return "Infeasible";
  }
  return "?";
}

std::string BudgetReport::reason() const {
  std::string r;
  auto add = [&r](const char* what) {
    if (!r.empty()) r += ",";
    r += what;
  };
  if (time_exhausted) add("time");
  if (nodes_exhausted) add("nodes");
  if (mem_exhausted) add("mem");
  if (cancelled) add("cancel");
  return r;
}

Budget::Budget() : start_ns_(obs::clock_ns()) {}

void Budget::set_time_budget(double seconds) {
  start_ns_ = obs::clock_ns();
  time_budget_seconds_ = seconds;
  if (seconds <= 0) {
    deadline_ns_ = 0;
    time_hit_ = false;
    return;
  }
  deadline_ns_ = start_ns_ + static_cast<std::int64_t>(seconds * 1e9);
}

void Budget::set_node_budget(long nodes) {
  node_budget_ = nodes < 0 ? -1 : nodes;
  if (node_budget_ < 0) nodes_hit_ = false;
}

void Budget::set_mem_budget(std::size_t bytes) { mem_budget_ = bytes; }

bool Budget::charge_mem(std::size_t bytes) {
  std::size_t now;
  if (mem_budget_ > 0) {
    // CAS loop: admission and accounting must be one atomic decision so
    // concurrent workers can never jointly overshoot the budget.
    std::size_t cur = mem_current_.load(std::memory_order_relaxed);
    do {
      if (cur + bytes > mem_budget_) {
        mem_refused_.store(true, std::memory_order_relaxed);
        ISEX_COUNT("robust.budget.mem_refusals");
        return true;
      }
    } while (!mem_current_.compare_exchange_weak(cur, cur + bytes,
                                                 std::memory_order_relaxed));
    now = cur + bytes;
  } else {
    now = mem_current_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  }
  std::size_t peak = mem_peak_.load(std::memory_order_relaxed);
  while (now > peak && !mem_peak_.compare_exchange_weak(
                           peak, now, std::memory_order_relaxed)) {
  }
  return false;
}

void Budget::release_mem(std::size_t bytes) {
  std::size_t cur = mem_current_.load(std::memory_order_relaxed);
  while (!mem_current_.compare_exchange_weak(
      cur, bytes > cur ? 0 : cur - bytes, std::memory_order_relaxed)) {
  }
}

void Budget::check_time() {
  if (deadline_ns_ > 0 && obs::clock_ns() >= deadline_ns_) {
    if (!time_hit_.exchange(true, std::memory_order_relaxed))
      ISEX_COUNT("robust.budget.time_exhaustions");
  }
  if (!cancel_hit_.load(std::memory_order_relaxed) &&
      global_cancel_requested()) {
    if (!cancel_hit_.exchange(true, std::memory_order_relaxed))
      ISEX_COUNT("robust.budget.cancellations");
  }
}

double Budget::elapsed_seconds() const {
  return static_cast<double>(obs::clock_ns() - start_ns_) * 1e-9;
}

BudgetReport Budget::report() const {
  BudgetReport r;
  r.elapsed_seconds = elapsed_seconds();
  r.time_budget_seconds = time_budget_seconds_;
  r.nodes_charged = nodes_;
  r.node_budget = node_budget_;
  r.mem_peak_bytes = mem_peak_;
  r.mem_budget_bytes = mem_budget_;
  r.time_exhausted = time_hit_;
  r.nodes_exhausted = nodes_hit_;
  r.mem_exhausted = mem_refused_;
  r.cancelled = cancel_hit_;
  return r;
}

}  // namespace isex::robust
