// Multilevel k-way weighted graph partitioning (Karypis-Kumar style).
//
// Used by the Chapter 6 temporal partitioner: vertices are hot loops
// (weighted by the area of their selected CIS version), edges carry the
// reconfiguration counts derived from the loop trace, and the objective is
// minimum edge-cut under roughly-equal part weights. The three classic
// phases are implemented: heavy-edge-matching coarsening, a
// longest-processing-time initial partition of the coarsest graph, and
// greedy boundary refinement (KL-flavoured single-vertex moves) during
// uncoarsening.
#pragma once

#include <utility>
#include <vector>

#include "isex/util/rng.hpp"

namespace isex::partition {

class WeightedGraph {
 public:
  explicit WeightedGraph(int n)
      : weights_(static_cast<std::size_t>(n), 1.0),
        adj_(static_cast<std::size_t>(n)) {}

  int num_vertices() const { return static_cast<int>(weights_.size()); }

  void set_weight(int v, double w) { weights_[static_cast<std::size_t>(v)] = w; }
  double weight(int v) const { return weights_[static_cast<std::size_t>(v)]; }
  double total_weight() const;

  /// Adds (or accumulates onto) the undirected edge {u, v}.
  void add_edge(int u, int v, double w);

  const std::vector<std::pair<int, double>>& neighbours(int v) const {
    return adj_[static_cast<std::size_t>(v)];
  }

 private:
  std::vector<double> weights_;
  std::vector<std::vector<std::pair<int, double>>> adj_;
};

/// Sum of weights of edges whose endpoints lie in different parts.
double edge_cut(const WeightedGraph& g, const std::vector<int>& part);

/// Maximum part weight divided by the ideal (total/k); 1.0 = perfect balance.
double imbalance(const WeightedGraph& g, const std::vector<int>& part, int k);

struct KwayOptions {
  double max_imbalance = 1.35;  // parts may exceed ideal weight by 35%
  int refine_passes = 6;
  int coarsest_size = 24;  // stop coarsening at max(this, 3k) vertices
};

/// Partitions g into k parts (0..k-1), minimizing edge cut under the balance
/// constraint. Every part is non-empty when n >= k. Deterministic given rng.
std::vector<int> kway_partition(const WeightedGraph& g, int k, util::Rng& rng,
                                const KwayOptions& opts = {});

}  // namespace isex::partition
