#include "isex/partition/kway.hpp"

#include <algorithm>
#include <limits>
#include <numeric>

namespace isex::partition {

double WeightedGraph::total_weight() const {
  double t = 0;
  for (double w : weights_) t += w;
  return t;
}

void WeightedGraph::add_edge(int u, int v, double w) {
  if (u == v || w == 0) return;
  auto bump = [&](int a, int b) {
    auto& lst = adj_[static_cast<std::size_t>(a)];
    for (auto& [n, ew] : lst)
      if (n == b) {
        ew += w;
        return;
      }
    lst.emplace_back(b, w);
  };
  bump(u, v);
  bump(v, u);
}

double edge_cut(const WeightedGraph& g, const std::vector<int>& part) {
  double cut = 0;
  for (int v = 0; v < g.num_vertices(); ++v)
    for (const auto& [u, w] : g.neighbours(v))
      if (u > v && part[static_cast<std::size_t>(u)] !=
                       part[static_cast<std::size_t>(v)])
        cut += w;
  return cut;
}

double imbalance(const WeightedGraph& g, const std::vector<int>& part, int k) {
  std::vector<double> pw(static_cast<std::size_t>(k), 0);
  for (int v = 0; v < g.num_vertices(); ++v)
    pw[static_cast<std::size_t>(part[static_cast<std::size_t>(v)])] +=
        g.weight(v);
  const double ideal = g.total_weight() / k;
  double mx = 0;
  for (double w : pw) mx = std::max(mx, w);
  return ideal > 0 ? mx / ideal : 1.0;
}

namespace {

struct Level {
  WeightedGraph graph;
  std::vector<int> map;  // fine vertex -> coarse vertex (of the NEXT level)
};

/// Heavy-edge matching: each coarse vertex merges at most two fine vertices.
WeightedGraph coarsen(const WeightedGraph& g, util::Rng& rng,
                      std::vector<int>& map) {
  const int n = g.num_vertices();
  std::vector<int> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  std::shuffle(order.begin(), order.end(), rng.engine());
  std::vector<int> match(static_cast<std::size_t>(n), -1);
  int coarse_n = 0;
  map.assign(static_cast<std::size_t>(n), -1);
  for (int v : order) {
    if (match[static_cast<std::size_t>(v)] >= 0) continue;
    int best = -1;
    double best_w = -1;
    for (const auto& [u, w] : g.neighbours(v))
      if (match[static_cast<std::size_t>(u)] < 0 && u != v && w > best_w) {
        best = u;
        best_w = w;
      }
    const int c = coarse_n++;
    match[static_cast<std::size_t>(v)] = c;
    map[static_cast<std::size_t>(v)] = c;
    if (best >= 0) {
      match[static_cast<std::size_t>(best)] = c;
      map[static_cast<std::size_t>(best)] = c;
    }
  }
  WeightedGraph coarse(coarse_n);
  for (int v = 0; v < coarse_n; ++v) coarse.set_weight(v, 0);
  for (int v = 0; v < n; ++v) {
    const int cv = map[static_cast<std::size_t>(v)];
    coarse.set_weight(cv, coarse.weight(cv) + g.weight(v));
    for (const auto& [u, w] : g.neighbours(v)) {
      const int cu = map[static_cast<std::size_t>(u)];
      if (u > v && cu != cv) coarse.add_edge(cv, cu, w);
    }
  }
  return coarse;
}

/// Seeded greedy region growth: k random seeds, then the lightest part
/// repeatedly claims the unassigned vertex most connected to it. A few
/// restarts keep the best cut — this escapes the symmetric local optima a
/// weight-only assignment falls into (e.g. two cliques joined by one edge).
std::vector<int> initial_partition(const WeightedGraph& g, int k,
                                   util::Rng& rng) {
  const int n = g.num_vertices();
  std::vector<int> best_part;
  double best_cut = std::numeric_limits<double>::infinity();
  for (int attempt = 0; attempt < 4; ++attempt) {
    std::vector<int> part(static_cast<std::size_t>(n), -1);
    std::vector<double> pw(static_cast<std::size_t>(k), 0);
    // Distinct random seeds.
    std::vector<int> order(static_cast<std::size_t>(n));
    std::iota(order.begin(), order.end(), 0);
    std::shuffle(order.begin(), order.end(), rng.engine());
    for (int p = 0; p < k; ++p) {
      part[static_cast<std::size_t>(order[static_cast<std::size_t>(p)])] = p;
      pw[static_cast<std::size_t>(p)] +=
          g.weight(order[static_cast<std::size_t>(p)]);
    }
    for (int assigned = k; assigned < n; ++assigned) {
      const auto lightest = static_cast<int>(
          std::min_element(pw.begin(), pw.end()) - pw.begin());
      // Unassigned vertex with maximum connectivity to the lightest part;
      // fall back to the heaviest unassigned vertex.
      int pick = -1;
      double pick_link = -1, pick_weight = -1;
      for (int v = 0; v < n; ++v) {
        if (part[static_cast<std::size_t>(v)] >= 0) continue;
        double link = 0;
        for (const auto& [u, w] : g.neighbours(v))
          if (part[static_cast<std::size_t>(u)] == lightest) link += w;
        if (link > pick_link ||
            (link == pick_link && g.weight(v) > pick_weight)) {
          pick = v;
          pick_link = link;
          pick_weight = g.weight(v);
        }
      }
      part[static_cast<std::size_t>(pick)] = lightest;
      pw[static_cast<std::size_t>(lightest)] += g.weight(pick);
    }
    const double cut = edge_cut(g, part);
    if (cut < best_cut) {
      best_cut = cut;
      best_part = std::move(part);
    }
  }
  return best_part;
}

/// Greedy boundary refinement: single-vertex moves with positive cut gain
/// that keep the balance constraint and never empty a part.
void refine(const WeightedGraph& g, int k, std::vector<int>& part,
            const KwayOptions& opts, util::Rng& rng) {
  const int n = g.num_vertices();
  const double limit = opts.max_imbalance * g.total_weight() / k;
  std::vector<double> pw(static_cast<std::size_t>(k), 0);
  std::vector<int> pcount(static_cast<std::size_t>(k), 0);
  for (int v = 0; v < n; ++v) {
    pw[static_cast<std::size_t>(part[static_cast<std::size_t>(v)])] +=
        g.weight(v);
    pcount[static_cast<std::size_t>(part[static_cast<std::size_t>(v)])] += 1;
  }
  std::vector<int> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  for (int pass = 0; pass < opts.refine_passes; ++pass) {
    std::shuffle(order.begin(), order.end(), rng.engine());
    bool moved = false;
    for (int v : order) {
      const int from = part[static_cast<std::size_t>(v)];
      if (pcount[static_cast<std::size_t>(from)] <= 1) continue;
      // Connectivity to each part.
      std::vector<double> link(static_cast<std::size_t>(k), 0);
      for (const auto& [u, w] : g.neighbours(v))
        link[static_cast<std::size_t>(part[static_cast<std::size_t>(u)])] += w;
      int best_to = -1;
      double best_gain = 0;
      for (int to = 0; to < k; ++to) {
        if (to == from) continue;
        if (pw[static_cast<std::size_t>(to)] + g.weight(v) > limit) continue;
        const double gain = link[static_cast<std::size_t>(to)] -
                            link[static_cast<std::size_t>(from)];
        if (gain > best_gain + 1e-12) {
          best_gain = gain;
          best_to = to;
        }
      }
      if (best_to >= 0) {
        part[static_cast<std::size_t>(v)] = best_to;
        pw[static_cast<std::size_t>(from)] -= g.weight(v);
        pw[static_cast<std::size_t>(best_to)] += g.weight(v);
        pcount[static_cast<std::size_t>(from)] -= 1;
        pcount[static_cast<std::size_t>(best_to)] += 1;
        moved = true;
      }
    }
    if (!moved) break;
  }
}

}  // namespace

std::vector<int> kway_partition(const WeightedGraph& g, int k, util::Rng& rng,
                                const KwayOptions& opts) {
  const int n = g.num_vertices();
  if (k <= 1 || n == 0) return std::vector<int>(static_cast<std::size_t>(n), 0);
  if (k >= n) {
    // One vertex per part.
    std::vector<int> part(static_cast<std::size_t>(n));
    std::iota(part.begin(), part.end(), 0);
    return part;
  }

  // Coarsening phase.
  std::vector<Level> levels;
  levels.push_back({g, {}});
  const int floor_size = std::max(opts.coarsest_size, 3 * k);
  while (levels.back().graph.num_vertices() > floor_size) {
    std::vector<int> map;
    WeightedGraph coarse = coarsen(levels.back().graph, rng, map);
    if (coarse.num_vertices() == levels.back().graph.num_vertices()) break;
    levels.back().map = std::move(map);
    levels.push_back({std::move(coarse), {}});
  }

  // Initial partition of the coarsest graph + refinement.
  std::vector<int> part = initial_partition(levels.back().graph, k, rng);
  refine(levels.back().graph, k, part, opts, rng);

  // Uncoarsening: project and refine at every level.
  for (std::size_t li = levels.size() - 1; li-- > 0;) {
    const auto& map = levels[li].map;
    std::vector<int> fine(map.size());
    for (std::size_t v = 0; v < map.size(); ++v)
      fine[v] = part[static_cast<std::size_t>(map[v])];
    part = std::move(fine);
    refine(levels[li].graph, k, part, opts, rng);
  }
  return part;
}

}  // namespace isex::partition
