#include "isex/hw/estimate.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

namespace isex::hw {

HwEstimate estimate(const ir::Dfg& dfg, const util::Bitset& s,
                    const CellLibrary& lib) {
  HwEstimate e;
  // Node ids are topological, so one forward pass computes the critical path.
  std::vector<double> depth(static_cast<std::size_t>(dfg.num_nodes()), 0);
  s.for_each([&](std::size_t i) {
    const ir::Node& n = dfg.node(static_cast<int>(i));
    const OpCost& c = lib.cost(n.op);
    double in_depth = 0;
    for (ir::NodeId o : n.operands) {
      const auto oi = static_cast<std::size_t>(o);
      if (s.test(oi)) in_depth = std::max(in_depth, depth[oi]);
    }
    depth[i] = in_depth + c.hw_latency_ns;
    e.latency_ns = std::max(e.latency_ns, depth[i]);
    e.area += c.area;
    e.sw_cycles += c.sw_cycles;
  });
  e.hw_cycles = std::max(1, static_cast<int>(
                                std::ceil(e.latency_ns / lib.clock_period_ns() -
                                          1e-9))) +
                lib.issue_overhead_cycles();
  e.area *= lib.area_overhead_factor();
  e.gain_per_exec = std::max(0.0, e.sw_cycles - e.hw_cycles);
  return e;
}

}  // namespace isex::hw
