// Hardware estimation of a candidate custom instruction.
//
// Given a node subset S of a DFG, the CFU implementation of S is the spatial
// datapath of its operators: latency is the critical (longest-delay) path
// through S, area is the sum of operator areas, and the instruction occupies
// ceil(latency / clock) processor cycles. The software schedule it replaces
// costs the sum of per-node software latencies (single-issue in-order core).
#pragma once

#include "isex/hw/cell_library.hpp"
#include "isex/ir/dfg.hpp"
#include "isex/util/bitset.hpp"

namespace isex::hw {

struct HwEstimate {
  double latency_ns = 0;   // combinational critical path through S
  int hw_cycles = 0;       // ceil(latency / clock period), min 1
  double sw_cycles = 0;    // cycles of the replaced software sequence
  double area = 0;         // adder-equivalents
  double gain_per_exec = 0;  // sw_cycles - hw_cycles (clamped at 0)
};

/// Estimates the hardware implementation of subgraph s of dfg.
HwEstimate estimate(const ir::Dfg& dfg, const util::Bitset& s,
                    const CellLibrary& lib);

}  // namespace isex::hw
