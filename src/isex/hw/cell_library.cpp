#include "isex/hw/cell_library.hpp"

#include <cmath>

namespace isex::hw {

std::string CellLibrary::validate() const {
  if (!(clock_period_ns_ > 0) || !std::isfinite(clock_period_ns_))
    return "cell library: clock period must be positive, got " +
           std::to_string(clock_period_ns_);
  if (issue_overhead_cycles_ < 0)
    return "cell library: negative issue overhead " +
           std::to_string(issue_overhead_cycles_);
  if (!(area_overhead_factor_ > 0) || !std::isfinite(area_overhead_factor_))
    return "cell library: area overhead factor must be positive, got " +
           std::to_string(area_overhead_factor_);
  for (int i = 0; i < ir::kNumOpcodes; ++i) {
    const auto op = static_cast<ir::Opcode>(i);
    const OpCost& c = table_[static_cast<std::size_t>(i)];
    const std::string name(ir::opcode_name(op));
    if (!std::isfinite(c.sw_cycles) || !std::isfinite(c.hw_latency_ns) ||
        !std::isfinite(c.area))
      return "cell library: non-finite cost entry for " + name;
    if (c.sw_cycles < 0 || c.hw_latency_ns < 0 || c.area < 0)
      return "cell library: negative cost entry for " + name;
    if (ir::is_valid_for_ci(op) && !ir::is_free_input(op)) {
      // A real synthesizable operator: a zero latency or area here would
      // make every candidate containing it look free.
      if (c.sw_cycles <= 0)
        return "cell library: " + name + " has non-positive sw_cycles " +
               std::to_string(c.sw_cycles);
      if (c.hw_latency_ns <= 0)
        return "cell library: " + name + " has non-positive hw latency " +
               std::to_string(c.hw_latency_ns);
      if (c.area <= 0)
        return "cell library: " + name + " has non-positive area " +
               std::to_string(c.area);
    } else if (op != ir::Opcode::kConst && op != ir::Opcode::kInput) {
      // Software-only operations still execute on the base core.
      if (c.sw_cycles <= 0)
        return "cell library: software-only op " + name +
               " has non-positive sw_cycles " + std::to_string(c.sw_cycles);
    }
  }
  return "";
}

namespace {

std::array<OpCost, ir::kNumOpcodes> standard_table() {
  using ir::Opcode;
  std::array<OpCost, ir::kNumOpcodes> t{};
  auto set = [&](Opcode op, double sw, double ns, double area) {
    t[static_cast<std::size_t>(op)] = OpCost{sw, ns, area};
  };
  // 32-bit operators, 0.18um-class delays (ns) and adder-equivalent areas.
  //            opcode            sw   hw-ns  area
  set(Opcode::kAdd,               1,   2.00,  1.00);
  set(Opcode::kSub,               1,   2.10,  1.05);
  set(Opcode::kMul,               2,   5.80, 18.00);
  set(Opcode::kMac,               1,   6.20, 19.00);
  set(Opcode::kAnd,               1,   0.35,  0.12);
  set(Opcode::kOr,                1,   0.35,  0.12);
  set(Opcode::kXor,               1,   0.40,  0.15);
  set(Opcode::kNot,               1,   0.20,  0.06);
  set(Opcode::kShl,               1,   1.20,  2.00);
  set(Opcode::kShr,               1,   1.20,  2.00);
  set(Opcode::kRotl,              1,   1.30,  2.20);
  set(Opcode::kCmp,               1,   1.60,  0.80);
  set(Opcode::kSelect,            1,   0.50,  0.40);
  set(Opcode::kSext,              1,   0.10,  0.02);
  // Leaves: free in both schedules.
  set(Opcode::kConst,             0,   0.00,  0.00);
  set(Opcode::kInput,             0,   0.00,  0.00);
  // Invalid-for-CI operations only ever execute in software.
  set(Opcode::kLoad,              2,   0.00,  0.00);
  set(Opcode::kStore,             1,   0.00,  0.00);
  set(Opcode::kDiv,              20,   0.00,  0.00);
  set(Opcode::kBranch,            1,   0.00,  0.00);
  set(Opcode::kCall,              2,   0.00,  0.00);
  return t;
}

}  // namespace

const CellLibrary& CellLibrary::standard_018um() {
  // 120 MHz core: the MAC (6.2ns) fits in one 8.33ns cycle, matching the
  // thesis' normalization of custom-instruction latency against a 1-cycle MAC.
  static const CellLibrary lib{standard_table(), 8.33};
  return lib;
}

const CellLibrary& CellLibrary::conservative_018um() {
  static const CellLibrary lib{standard_table(), 8.33,
                               /*issue_overhead_cycles=*/1,
                               /*area_overhead_factor=*/1.6};
  return lib;
}

}  // namespace isex::hw
