#include "isex/hw/cell_library.hpp"

namespace isex::hw {

namespace {

std::array<OpCost, ir::kNumOpcodes> standard_table() {
  using ir::Opcode;
  std::array<OpCost, ir::kNumOpcodes> t{};
  auto set = [&](Opcode op, double sw, double ns, double area) {
    t[static_cast<std::size_t>(op)] = OpCost{sw, ns, area};
  };
  // 32-bit operators, 0.18um-class delays (ns) and adder-equivalent areas.
  //            opcode            sw   hw-ns  area
  set(Opcode::kAdd,               1,   2.00,  1.00);
  set(Opcode::kSub,               1,   2.10,  1.05);
  set(Opcode::kMul,               2,   5.80, 18.00);
  set(Opcode::kMac,               1,   6.20, 19.00);
  set(Opcode::kAnd,               1,   0.35,  0.12);
  set(Opcode::kOr,                1,   0.35,  0.12);
  set(Opcode::kXor,               1,   0.40,  0.15);
  set(Opcode::kNot,               1,   0.20,  0.06);
  set(Opcode::kShl,               1,   1.20,  2.00);
  set(Opcode::kShr,               1,   1.20,  2.00);
  set(Opcode::kRotl,              1,   1.30,  2.20);
  set(Opcode::kCmp,               1,   1.60,  0.80);
  set(Opcode::kSelect,            1,   0.50,  0.40);
  set(Opcode::kSext,              1,   0.10,  0.02);
  // Leaves: free in both schedules.
  set(Opcode::kConst,             0,   0.00,  0.00);
  set(Opcode::kInput,             0,   0.00,  0.00);
  // Invalid-for-CI operations only ever execute in software.
  set(Opcode::kLoad,              2,   0.00,  0.00);
  set(Opcode::kStore,             1,   0.00,  0.00);
  set(Opcode::kDiv,              20,   0.00,  0.00);
  set(Opcode::kBranch,            1,   0.00,  0.00);
  set(Opcode::kCall,              2,   0.00,  0.00);
  return t;
}

}  // namespace

const CellLibrary& CellLibrary::standard_018um() {
  // 120 MHz core: the MAC (6.2ns) fits in one 8.33ns cycle, matching the
  // thesis' normalization of custom-instruction latency against a 1-cycle MAC.
  static const CellLibrary lib{standard_table(), 8.33};
  return lib;
}

const CellLibrary& CellLibrary::conservative_018um() {
  static const CellLibrary lib{standard_table(), 8.33,
                               /*issue_overhead_cycles=*/1,
                               /*area_overhead_factor=*/1.6};
  return lib;
}

}  // namespace isex::hw
