// Hardware cost model: per-operation software latency, hardware latency and
// silicon area.
//
// The thesis synthesizes primitive operators with Synopsys tools on a 0.18um
// CMOS cell library to obtain per-operator hardware latency and area, assumes
// a single-issue in-order base core, and normalizes custom-instruction
// latency against a 1-cycle MAC on a 120 MHz processor (Section 5.3.1). The
// numbers below reproduce the relative magnitudes that drive every trade-off
// in the paper (multiplier >> adder >> logic, barrel shifter between them);
// area is measured in adder-equivalents ("number of adders", the unit of
// Figs 3.1/5.4/5.6) with a helper conversion to logic gates (the unit of
// Fig 3.3, ~1K-23K gates).
#pragma once

#include <array>
#include <string>

#include "isex/ir/dfg.hpp"

namespace isex::hw {

struct OpCost {
  double sw_cycles = 1;     // base-processor cycles for one execution
  double hw_latency_ns = 0; // combinational delay when synthesized into a CFU
  double area = 0;          // adder-equivalent silicon area
};

/// Immutable table of per-opcode costs plus the processor clock.
class CellLibrary {
 public:
  /// The default 0.18um / 120 MHz model used by all experiments.
  static const CellLibrary& standard_018um();

  /// A deliberately conservative variant modelling commercial-flow overheads
  /// (XPRES-style): every custom instruction pays one extra issue/operand-
  /// move cycle and 60% extra silicon for decode and interconnect. Used by
  /// the ext_conservative_model calibration study: under this model the
  /// utilization-reduction magnitudes approach the Chapter 3 numbers while
  /// every shape is unchanged.
  static const CellLibrary& conservative_018um();

  const OpCost& cost(ir::Opcode op) const {
    return table_[static_cast<std::size_t>(op)];
  }

  double clock_period_ns() const { return clock_period_ns_; }

  /// Extra cycles every custom-instruction execution pays (issue, operand
  /// moves); 0 in the idealized model.
  int issue_overhead_cycles() const { return issue_overhead_cycles_; }

  /// Multiplier on datapath area for decode/interconnect overhead.
  double area_overhead_factor() const { return area_overhead_factor_; }

  double sw_cycles(const ir::Node& n) const { return cost(n.op).sw_cycles; }

  /// Gate-count view of an adder-equivalent area (Fig 3.3 reports gates).
  static double gates(double adder_area) { return adder_area * 250.0; }

  /// Checks the invariants every estimate depends on: all entries finite and
  /// non-negative; every CI-implementable opcode with positive software
  /// cycles, hardware latency and area (a zero there silently corrupts every
  /// gain/area trade-off downstream); software-only opcodes (loads, stores,
  /// divides, branches, calls) with positive software cost; and a positive
  /// clock period and area-overhead factor. Returns "" when valid, else a
  /// one-line description naming the offending opcode and field. The CLI
  /// validates its library at startup and exits 2 on a non-empty result.
  std::string validate() const;

  CellLibrary(std::array<OpCost, ir::kNumOpcodes> table, double clock_period_ns,
              int issue_overhead_cycles = 0, double area_overhead_factor = 1.0)
      : table_(table), clock_period_ns_(clock_period_ns),
        issue_overhead_cycles_(issue_overhead_cycles),
        area_overhead_factor_(area_overhead_factor) {}

 private:
  std::array<OpCost, ir::kNumOpcodes> table_{};
  double clock_period_ns_ = 8.33;
  int issue_overhead_cycles_ = 0;
  double area_overhead_factor_ = 1.0;
};

}  // namespace isex::hw
