#include "isex/rtreconfig/problem.hpp"

#include <algorithm>
#include <map>

namespace isex::rtreconfig {

int Solution::num_configs() const {
  int mx = -1;
  for (int c : config) mx = std::max(mx, c);
  return mx + 1;
}

double effective_utilization(const Problem& p, const std::vector<int>& version,
                             const std::vector<int>& config) {
  int configs = 0;
  for (int c : config) configs = std::max(configs, c + 1);
  const bool pay_reconfig = configs >= 2;
  double u = 0;
  for (std::size_t i = 0; i < p.tasks.size(); ++i) {
    const TaskCis& t = p.tasks[i];
    double c = t.versions[static_cast<std::size_t>(version[i])].cycles;
    if (pay_reconfig && version[i] > 0) c += p.reconfig_cost;
    u += c / t.period;
  }
  return u;
}

bool feasible(const Problem& p, const Solution& s) {
  if (s.version.size() != p.tasks.size() || s.config.size() != p.tasks.size())
    return false;
  std::map<int, double> area;
  for (std::size_t i = 0; i < p.tasks.size(); ++i) {
    const int v = s.version[i];
    if (v < 0 || v >= static_cast<int>(p.tasks[i].versions.size()))
      return false;
    if ((v > 0) != (s.config[i] >= 0)) return false;
    if (v > 0)
      area[s.config[i]] +=
          p.tasks[i].versions[static_cast<std::size_t>(v)].area;
  }
  for (const auto& [c, a] : area)
    if (a > p.max_area + 1e-9) return false;
  return true;
}

Solution finish(const Problem& p, std::vector<int> version,
                std::vector<int> config) {
  Solution s;
  s.version = std::move(version);
  s.config = std::move(config);
  s.utilization = effective_utilization(p, s.version, s.config);
  s.schedulable = s.utilization <= 1.0 + 1e-9;
  return s;
}

}  // namespace isex::rtreconfig
