// Chapter 7: runtime reconfiguration of custom instructions for real-time
// multi-tasking systems.
//
// Model (reconstructed from the thesis abstract, Section 7.1/7.3 headings
// and Table/Figure captions — the full chapter text is not in the provided
// excerpt; DESIGN.md documents the reconstruction): N periodic tasks, each
// with CIS versions trading fabric area against execution cycles; versions
// are clubbed into configurations, each fitting the fabric area MaxA. With
// a single configuration the fabric never reconfigures; with two or more,
// a job may find the fabric holding another configuration when it starts,
// so in the worst case every hardware-accelerated task pays one
// reconfiguration delay rho per job. The goal is to pick one version per
// task and a spatial/temporal partition minimizing processor utilization
//   U = sum_i (c_i(version) + overhead_i) / P_i
// subject to EDF schedulability (U <= 1) and per-configuration area <= MaxA.
#pragma once

#include <string>
#include <vector>

namespace isex::rtreconfig {

struct Version {
  double area = 0;    // fabric area
  double cycles = 0;  // job execution time with this CIS version
};

struct TaskCis {
  std::string name;
  double period = 0;              // implicit deadline
  std::vector<Version> versions;  // versions[0] = software (area 0)
};

struct Problem {
  std::vector<TaskCis> tasks;
  double max_area = 0;       // fabric area per configuration
  double reconfig_cost = 0;  // rho, cycles per worst-case reload
  double area_grid = 1.0;
};

struct Solution {
  std::vector<int> version;  // per task; 0 = software
  std::vector<int> config;   // per task; -1 = software
  double utilization = 0;    // effective (overhead-inclusive) utilization
  bool schedulable = false;  // EDF: utilization <= 1

  int num_configs() const;
};

/// Effective utilization of an assignment: execution utilization plus, when
/// more than one configuration exists, rho/P_i for every hardware task.
double effective_utilization(const Problem& p, const std::vector<int>& version,
                             const std::vector<int>& config);

/// Structural validity: vector shapes, per-configuration area, and
/// version/config agreement.
bool feasible(const Problem& p, const Solution& s);

/// Completes a (version, config) assignment into a Solution.
Solution finish(const Problem& p, std::vector<int> version,
                std::vector<int> config);

}  // namespace isex::rtreconfig
