// The three Chapter 7 solvers compared in Fig 7.4 / Table 7.2:
//   * dp_partition — the thesis' contribution: a pseudo-polynomial dynamic
//     program per configuration count k (version selection minimizing
//     overhead-inclusive utilization over a virtual k*MaxA fabric) followed
//     by first-fit-decreasing packing into the k real configurations, with
//     drop-to-software repair when packing fails; near-optimal;
//   * optimal_partition — exact branch-and-bound over (version,
//     configuration) assignments with symmetry breaking, the stand-in for
//     the paper's ILP formulation (same optimum, different machinery);
//   * static_partition — the no-reconfiguration baseline (one configuration).
#pragma once

#include "isex/rtreconfig/problem.hpp"

namespace isex::rtreconfig {

Solution dp_partition(const Problem& p);

struct OptimalResult {
  Solution solution;
  long nodes = 0;
  bool completed = true;
};
OptimalResult optimal_partition(const Problem& p, long max_nodes = -1);

Solution static_partition(const Problem& p);

}  // namespace isex::rtreconfig
