// The three Chapter 7 solvers compared in Fig 7.4 / Table 7.2:
//   * dp_partition — the thesis' contribution: a pseudo-polynomial dynamic
//     program per configuration count k (version selection minimizing
//     overhead-inclusive utilization over a virtual k*MaxA fabric) followed
//     by first-fit-decreasing packing into the k real configurations, with
//     drop-to-software repair when packing fails; near-optimal;
//   * optimal_partition — exact branch-and-bound over (version,
//     configuration) assignments with symmetry breaking, the stand-in for
//     the paper's ILP formulation (same optimum, different machinery);
//   * static_partition — the no-reconfiguration baseline (one configuration).
#pragma once

#include "isex/robust/outcome.hpp"
#include "isex/rtreconfig/problem.hpp"

namespace isex::rtreconfig {

/// `budget` (non-owning; nullptr = unlimited) is polled once per
/// configuration count k; exhaustion returns the best solution found over
/// the k values tried so far (always at least the static baseline).
Solution dp_partition(const Problem& p, robust::Budget* budget = nullptr);

/// Anytime wrapper around dp_partition(): status kBudgetTruncated when the
/// k-sweep was cut short, with optimality_gap relative to the execution-
/// utilization lower bound (every task at its fastest version, no overhead).
robust::Outcome<Solution> dp_partition_bounded(const Problem& p,
                                               robust::Budget* budget);

struct OptimalResult {
  Solution solution;
  long nodes = 0;
  bool completed = true;
  /// kExact when the search completed; kBudgetTruncated when the node cap or
  /// budget stopped it (the solution is then the warm-start/static incumbent
  /// improved so far).
  robust::Status status = robust::Status::kExact;
  /// 0 when exact; otherwise (utilization - lb) / lb against the execution-
  /// utilization lower bound.
  double optimality_gap = 0;
};
/// `budget` is charged once per branch-and-bound node.
OptimalResult optimal_partition(const Problem& p, long max_nodes = -1,
                                robust::Budget* budget = nullptr);

Solution static_partition(const Problem& p);

}  // namespace isex::rtreconfig
