#include "isex/rtreconfig/algorithms.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

namespace isex::rtreconfig {

namespace {

/// Grouped knapsack DP: one version per task, total area <= budget,
/// minimizing sum (cycles + overhead_if_hw) / period. Versions larger than
/// max_item_area (one configuration) are unplaceable and skipped. Returns
/// version per task.
std::vector<int> select_versions(const Problem& p, double budget,
                                 double hw_overhead, double max_item_area) {
  const double grid = p.area_grid;
  const int cells = static_cast<int>(std::floor(budget / grid + 1e-9));
  const auto width = static_cast<std::size_t>(cells) + 1;
  const auto n = p.tasks.size();
  std::vector<double> u(n * width, 0);
  std::vector<int> choice(n * width, 0);
  for (std::size_t i = 0; i < n; ++i) {
    const TaskCis& t = p.tasks[i];
    for (int a = 0; a <= cells; ++a) {
      double best = std::numeric_limits<double>::infinity();
      int best_j = 0;
      for (std::size_t j = 0; j < t.versions.size(); ++j) {
        if (t.versions[j].area > max_item_area + 1e-9) continue;
        const int w = static_cast<int>(
            std::ceil(t.versions[j].area / grid - 1e-9));
        if (w > a) continue;
        const double cyc =
            t.versions[j].cycles + (j > 0 ? hw_overhead : 0.0);
        const double below =
            i == 0 ? 0.0 : u[(i - 1) * width + static_cast<std::size_t>(a - w)];
        const double cand = cyc / t.period + below;
        if (cand < best) {
          best = cand;
          best_j = static_cast<int>(j);
        }
      }
      u[i * width + static_cast<std::size_t>(a)] = best;
      choice[i * width + static_cast<std::size_t>(a)] = best_j;
    }
  }
  std::vector<int> version(n, 0);
  int a = cells;
  for (std::size_t i = n; i-- > 0;) {
    const int j = choice[i * width + static_cast<std::size_t>(a)];
    version[i] = j;
    a -= static_cast<int>(std::ceil(
        p.tasks[i].versions[static_cast<std::size_t>(j)].area / grid - 1e-9));
  }
  return version;
}

/// First-fit-decreasing packing of the hardware tasks into bins of MaxA.
/// Returns config per task, or empty when k bins do not suffice.
std::vector<int> ffd_pack(const Problem& p, const std::vector<int>& version,
                          int k) {
  std::vector<int> hw;
  for (std::size_t i = 0; i < p.tasks.size(); ++i)
    if (version[i] > 0) hw.push_back(static_cast<int>(i));
  std::sort(hw.begin(), hw.end(), [&](int a, int b) {
    return p.tasks[static_cast<std::size_t>(a)]
               .versions[static_cast<std::size_t>(
                   version[static_cast<std::size_t>(a)])]
               .area >
           p.tasks[static_cast<std::size_t>(b)]
               .versions[static_cast<std::size_t>(
                   version[static_cast<std::size_t>(b)])]
               .area;
  });
  std::vector<int> config(p.tasks.size(), -1);
  std::vector<double> bin(static_cast<std::size_t>(k), 0);
  for (int t : hw) {
    const double area = p.tasks[static_cast<std::size_t>(t)]
                            .versions[static_cast<std::size_t>(
                                version[static_cast<std::size_t>(t)])]
                            .area;
    int placed = -1;
    for (int b = 0; b < k; ++b)
      if (bin[static_cast<std::size_t>(b)] + area <= p.max_area + 1e-9) {
        placed = b;
        break;
      }
    if (placed < 0) return {};
    bin[static_cast<std::size_t>(placed)] += area;
    config[static_cast<std::size_t>(t)] = placed;
  }
  return config;
}

}  // namespace

Solution static_partition(const Problem& p) {
  const auto version = select_versions(p, p.max_area, 0.0, p.max_area);
  auto config = ffd_pack(p, version, 1);
  return finish(p, version, std::move(config));
}

Solution dp_partition(const Problem& p, robust::Budget* budget) {
  const int n = static_cast<int>(p.tasks.size());
  Solution best = static_partition(p);
  for (int k = 2; k <= n; ++k) {
    // One charge per DP cell of the upcoming k-iteration (n tasks x the
    // virtual k*MaxA area axis), so node budgets see the real work and the
    // time check fires even though this loop itself has few iterations.
    if (budget != nullptr) {
      const long cells =
          static_cast<long>(n) *
          (static_cast<long>(k * p.max_area / p.area_grid) + 1);
      if (budget->charge(std::max(cells, 1L)) || budget->exhausted()) break;
    }
    // With k >= 2 configurations every hardware task pays rho per job.
    auto version =
        select_versions(p, k * p.max_area, p.reconfig_cost, p.max_area);
    auto config = ffd_pack(p, version, k);
    // Packing repair: while the bins overflow, downgrade one step the
    // hardware version whose area saving costs the least utilization.
    while (config.empty()) {
      int victim = -1;
      double cheapest = std::numeric_limits<double>::infinity();
      for (int i = 0; i < n; ++i) {
        const int j = version[static_cast<std::size_t>(i)];
        if (j <= 0) continue;
        const TaskCis& t = p.tasks[static_cast<std::size_t>(i)];
        const auto& cur = t.versions[static_cast<std::size_t>(j)];
        const auto& down = t.versions[static_cast<std::size_t>(j - 1)];
        const double area_saved = cur.area - down.area;
        if (area_saved <= 0) continue;
        // Downgrading to software also drops the per-job rho.
        const double extra =
            (down.cycles - cur.cycles - (j == 1 ? p.reconfig_cost : 0.0)) /
            t.period;
        const double price = extra / area_saved;
        if (price < cheapest) {
          cheapest = price;
          victim = i;
        }
      }
      if (victim < 0) break;
      version[static_cast<std::size_t>(victim)] -= 1;
      config = ffd_pack(p, version, k);
    }
    if (config.empty()) continue;
    Solution s = finish(p, version, std::move(config));
    if (s.utilization < best.utilization) best = s;
  }
  return best;
}

namespace {

struct Search {
  const Problem& p;
  long max_nodes;
  robust::Budget* budget = nullptr;
  long nodes = 0;
  bool completed = true;

  std::vector<int> version;
  std::vector<int> config;
  std::vector<double> bin;  // area used per configuration
  std::vector<double> min_exec_util_suffix;

  double best_util = std::numeric_limits<double>::infinity();
  Solution best;

  explicit Search(const Problem& prob, long cap)
      : p(prob), max_nodes(cap),
        version(prob.tasks.size(), 0), config(prob.tasks.size(), -1),
        bin(prob.tasks.size(), 0),
        min_exec_util_suffix(prob.tasks.size() + 1, 0) {
    for (std::size_t i = p.tasks.size(); i-- > 0;) {
      double mn = std::numeric_limits<double>::infinity();
      for (const auto& v : p.tasks[i].versions) mn = std::min(mn, v.cycles);
      min_exec_util_suffix[i] =
          min_exec_util_suffix[i + 1] + mn / p.tasks[i].period;
    }
  }

  void run(std::size_t level, double exec_util, int used_configs) {
    if (!completed) return;
    if (max_nodes >= 0 && nodes > max_nodes) {
      completed = false;
      return;
    }
    if (budget != nullptr && budget->charge()) {
      completed = false;
      return;
    }
    ++nodes;
    if (level == p.tasks.size()) {
      const double u = effective_utilization(p, version, config);
      if (u < best_util) {
        best_util = u;
        best = finish(p, version, config);
      }
      return;
    }
    // Admissible bound: execution utilization only (reconfiguration
    // overhead can only add).
    if (exec_util + min_exec_util_suffix[level] >= best_util) return;

    const TaskCis& t = p.tasks[level];
    // Software choice.
    version[level] = 0;
    config[level] = -1;
    run(level + 1, exec_util + t.versions[0].cycles / t.period, used_configs);
    // Hardware choices: every version x every open configuration plus one
    // fresh configuration (symmetry breaking).
    for (std::size_t j = 1; j < t.versions.size(); ++j) {
      const double area = t.versions[j].area;
      if (area > p.max_area + 1e-9) continue;
      const int open = std::min(used_configs + 1,
                                static_cast<int>(p.tasks.size()));
      for (int g = 0; g < open; ++g) {
        if (bin[static_cast<std::size_t>(g)] + area > p.max_area + 1e-9)
          continue;
        version[level] = static_cast<int>(j);
        config[level] = g;
        bin[static_cast<std::size_t>(g)] += area;
        run(level + 1, exec_util + t.versions[j].cycles / t.period,
            std::max(used_configs, g + 1));
        bin[static_cast<std::size_t>(g)] -= area;
      }
    }
    version[level] = 0;
    config[level] = -1;
  }
};

}  // namespace

OptimalResult optimal_partition(const Problem& p, long max_nodes,
                                robust::Budget* budget) {
  Search s(p, max_nodes);
  s.budget = budget;
  s.best = static_partition(p);  // warm start with a feasible incumbent
  s.best_util = s.best.utilization;
  s.run(0, 0, 0);
  OptimalResult res;
  res.solution = s.best;
  res.nodes = s.nodes;
  res.completed = s.completed;
  if (!s.completed) {
    res.status = robust::Status::kBudgetTruncated;
    const double lb = s.min_exec_util_suffix[0];
    res.optimality_gap =
        lb > 0 ? std::max(0.0, (s.best.utilization - lb) / lb) : 0.0;
  }
  return res;
}

robust::Outcome<Solution> dp_partition_bounded(const Problem& p,
                                               robust::Budget* budget) {
  robust::Outcome<Solution> out;
  if (p.tasks.empty()) {
    out.status = robust::Status::kInfeasible;
    out.detail = "reconfiguration problem has no tasks";
    if (budget != nullptr) out.budget = budget->report();
    return out;
  }
  out.value = dp_partition(p, budget);
  if (budget != nullptr && budget->exhausted_cached()) {
    out.status = robust::Status::kBudgetTruncated;
    double lb = 0;
    for (const TaskCis& t : p.tasks) {
      double mn = std::numeric_limits<double>::infinity();
      for (const auto& v : t.versions) mn = std::min(mn, v.cycles);
      lb += mn / t.period;
    }
    out.optimality_gap =
        lb > 0 ? std::max(0.0, (out.value.utilization - lb) / lb) : 0.0;
  }
  if (budget != nullptr) out.budget = budget->report();
  return out;
}

}  // namespace isex::rtreconfig
