#include "isex/rtreconfig/sim.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace isex::rtreconfig {

namespace {

struct Job {
  int task;
  std::int64_t deadline;
  std::int64_t remaining;
  std::int64_t index;
  bool reloaded_once = false;
  bool miss_recorded = false;
};

}  // namespace

ReconfigSimResult simulate_with_reconfig(const Problem& p, const Solution& s,
                                         const ReconfigSimOptions& opts) {
  ReconfigSimResult res;
  const auto n = p.tasks.size();
  std::vector<std::int64_t> period(n), wcet(n);
  std::vector<rt::SimTask> sim_tasks(n);
  for (std::size_t i = 0; i < n; ++i) {
    period[i] = static_cast<std::int64_t>(std::llround(p.tasks[i].period));
    wcet[i] = static_cast<std::int64_t>(std::llround(
        p.tasks[i].versions[static_cast<std::size_t>(s.version[i])].cycles));
    if (period[i] <= 0) throw std::invalid_argument("period <= 0");
    sim_tasks[i].wcet = wcet[i];
    sim_tasks[i].period = period[i];
    sim_tasks[i].name = p.tasks[i].name;
  }
  const auto rho = static_cast<std::int64_t>(std::llround(p.reconfig_cost));
  res.sched.completed_jobs.assign(n, 0);
  res.sched.horizon = opts.horizon > 0
                          ? opts.horizon
                          : rt::hyperperiod(sim_tasks, 200'000'000);

  std::vector<Job> ready;
  std::vector<std::int64_t> next_release(n, 0), job_index(n, 0);
  std::int64_t now = 0;
  int fabric = -1;  // resident configuration

  auto release_due = [&](std::int64_t time) {
    for (std::size_t i = 0; i < n; ++i)
      while (next_release[i] <= time && next_release[i] < res.sched.horizon) {
        ready.push_back(Job{static_cast<int>(i), next_release[i] + period[i],
                            wcet[i], job_index[i], false, false});
        ++job_index[i];
        next_release[i] += period[i];
      }
  };
  auto earliest_release = [&] {
    std::int64_t e = res.sched.horizon;
    for (auto r : next_release) e = std::min(e, r);
    return e;
  };
  auto record_misses = [&] {
    for (Job& j : ready)
      if (!j.miss_recorded && j.deadline <= now) {
        j.miss_recorded = true;
        res.sched.all_met = false;
        if (res.sched.misses.size() < 16)
          res.sched.misses.push_back(
              rt::DeadlineMiss{j.task, j.index, j.deadline});
      }
  };

  release_due(0);
  while (now < res.sched.horizon) {
    if (ready.empty()) {
      const auto next = earliest_release();
      if (next >= res.sched.horizon) break;
      now = next;
      release_due(now);
      continue;
    }
    auto it = std::min_element(ready.begin(), ready.end(),
                               [](const Job& a, const Job& b) {
                                 if (a.deadline != b.deadline)
                                   return a.deadline < b.deadline;
                                 return a.task < b.task;
                               });
    // Fabric reload before the job can progress.
    const int cfg = s.config[static_cast<std::size_t>(it->task)];
    const bool needs_fabric = cfg >= 0;
    if (needs_fabric && fabric != cfg &&
        (opts.resume_reloads || !it->reloaded_once)) {
      // The reload occupies the processor (DMA-driven fabrics can overlap;
      // this models the conservative blocking variant).
      const auto stall =
          std::min<std::int64_t>(rho, res.sched.horizon - now);
      now += stall;
      res.stall_cycles += static_cast<double>(stall);
      ++res.reloads;
      fabric = cfg;
      it->reloaded_once = true;
      res.sched.busy_cycles += stall;
      record_misses();
      release_due(now);
      continue;  // re-dispatch: a release during the reload may preempt
    }
    if (needs_fabric) it->reloaded_once = true;

    const auto next = std::min(earliest_release(), res.sched.horizon);
    const auto slice = std::min(it->remaining, next - now);
    now += slice;
    it->remaining -= slice;
    res.sched.busy_cycles += slice;
    if (it->remaining == 0) {
      if (now > it->deadline && !it->miss_recorded) {
        res.sched.all_met = false;
        if (res.sched.misses.size() < 16)
          res.sched.misses.push_back(
              rt::DeadlineMiss{it->task, it->index, it->deadline});
      }
      ++res.sched.completed_jobs[static_cast<std::size_t>(it->task)];
      ready.erase(it);
    }
    record_misses();
    release_due(now);
  }
  record_misses();
  return res;
}

}  // namespace isex::rtreconfig
