// Scheduler simulation with reconfiguration stalls (Chapter 7 validation).
//
// Extends the EDF simulation with a fabric state machine: when a job starts
// or resumes and the fabric holds a different configuration, the job first
// pays the reload delay rho on the processor. The analytic model charges
// every hardware job one rho whenever >= 2 configurations exist — a worst
// case — so an assignment the analysis accepts must meet every deadline in
// simulation (asserted by the tests), while the simulation typically shows
// fewer actual reloads.
#pragma once

#include <cstdint>

#include "isex/rt/simulator.hpp"
#include "isex/rtreconfig/problem.hpp"

namespace isex::rtreconfig {

struct ReconfigSimResult {
  rt::SimResult sched;     // deadline outcome
  long reloads = 0;        // actual fabric reloads
  double stall_cycles = 0; // total reload time spent
};

struct ReconfigSimOptions {
  std::int64_t horizon = 0;  // 0 = one hyperperiod (capped)
  /// true: a preempted job must reload when it resumes after a job of a
  /// different configuration ran (raw single-plane fabric). false: the
  /// platform save/restores the fabric across preemptions, so each job
  /// reloads at most once — the semantics the analytic per-job charge is
  /// exact worst case for.
  bool resume_reloads = false;
};

/// Simulates the solution under EDF.
ReconfigSimResult simulate_with_reconfig(const Problem& p, const Solution& s,
                                         const ReconfigSimOptions& opts = {});

}  // namespace isex::rtreconfig
