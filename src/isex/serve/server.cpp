#include "isex/serve/server.hpp"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <csignal>
#include <cstring>
#include <exception>
#include <utility>
#include <variant>

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <sstream>

#include "isex/certify/schedule.hpp"
#include "isex/hw/cell_library.hpp"
#include "isex/obs/journal.hpp"
#include "isex/obs/metrics.hpp"
#include "isex/obs/trace.hpp"
#include "isex/robust/fallback.hpp"
#include "isex/select/config_curve.hpp"
#include "isex/supervise/pool.hpp"
#include "isex/util/file.hpp"
#include "isex/util/io.hpp"
#include "isex/workloads/tasks.hpp"
#include "isex/workloads/workloads.hpp"

namespace isex::serve {
namespace {

// ---- signal plumbing --------------------------------------------------------
//
// The handler does the minimum that is async-signal-safe: latch the signal
// number and flip the robust:: global-cancel atomic so budgeted solvers stop
// at their next charge stride. Everything else (drain, flush, exit code)
// happens in normal control flow.

// std::atomic<int> rather than volatile sig_atomic_t: the flag is also read
// from server threads (pending_signal), so it needs to be a real atomic to be
// data-race-free; it stays async-signal-safe because atomic<int> is lock-free.
std::atomic<int> g_pending_signal{0};

extern "C" void serve_signal_handler(int sig) {
  int expected = 0;
  if (!g_pending_signal.compare_exchange_strong(expected, sig,
                                                std::memory_order_relaxed)) {
    _exit(128 + sig);  // second signal: no more grace
  }
  robust::request_global_cancel();
}

// A TaskSet or the reason it could not be built.
struct BuiltTaskSet {
  rt::TaskSet ts;
  bool ok = false;
  std::string error;  // bad_request message when !ok
};

bool known_benchmark(const std::string& name) {
  const auto& names = workloads::benchmark_names();
  return std::find(names.begin(), names.end(), name) != names.end();
}

/// Lifts an inline DFG into a configuration curve through the same
/// identification pipeline the benchmark tasks use, under the request budget
/// (enumeration truncates gracefully to fewer candidates).
rt::Task task_from_dfg(const TaskSpec& spec, robust::Budget* budget) {
  const hw::CellLibrary& lib = hw::CellLibrary::standard_018um();
  const auto cost =
      ir::Program::sum_cost([&lib](const ir::Node& n) { return lib.sw_cycles(n); });
  select::CurveOptions copts;
  copts.enum_opts.budget = budget;
  copts.enum_opts.max_candidates = 20000;  // inline DFGs are small (<= 256 ops)
  rt::Task t;
  t.name = spec.name;
  t.period = spec.period;
  t.configs =
      select::build_config_curve(spec.program, spec.program.wcet_counts(cost),
                                 lib, copts)
          .points;
  return t;
}

BuiltTaskSet build_taskset(const Request& req, robust::Budget* budget) {
  BuiltTaskSet out;
  if (!req.benchmarks.empty()) {
    for (const std::string& name : req.benchmarks) {
      if (!known_benchmark(name)) {
        out.error = "unknown benchmark '" + name + "' (see `isex list`)";
        return out;
      }
    }
    out.ts = workloads::make_taskset(req.benchmarks, req.u0);
  } else {
    for (const TaskSpec& spec : req.tasks) {
      if (spec.has_dfg) {
        out.ts.tasks.push_back(task_from_dfg(spec, budget));
      } else {
        out.ts.tasks.push_back(rt::Task{spec.name, spec.period, spec.configs});
      }
    }
  }
  if (std::string err = out.ts.validate(); !err.empty()) {
    out.error = "invalid task set: " + err;
    return out;
  }
  out.ts.sort_by_period();  // RMS requires it; EDF is order-insensitive
  out.ok = true;
  return out;
}

/// `{"count":N,"mean":..,"min":..,"max":..,"p50":..,"p95":..,"p99":..}` for
/// one latency histogram (microseconds). Percentiles come from the pow2
/// buckets via obs::histogram_quantile — bucket-resolution estimates, which
/// is what an operator dashboard needs.
std::string latency_stats_json(const obs::Histogram& h) {
  obs::Registry::HistogramSnapshot s;
  s.count = h.count();
  s.sum = h.sum();
  s.min = s.count ? h.min() : 0;
  s.max = s.count ? h.max() : 0;
  s.buckets = h.buckets();
  const double mean =
      s.count ? static_cast<double>(s.sum) / static_cast<double>(s.count) : 0;
  std::string r = "{\"count\":" + std::to_string(s.count);
  r += ",\"mean\":" + json_number(mean);
  r += ",\"min\":" + std::to_string(s.min);
  r += ",\"max\":" + std::to_string(s.max);
  r += ",\"p50\":" + json_number(obs::histogram_quantile(s, 0.50));
  r += ",\"p95\":" + json_number(obs::histogram_quantile(s, 0.95));
  r += ",\"p99\":" + json_number(obs::histogram_quantile(s, 0.99)) + "}";
  return r;
}

}  // namespace

void install_signal_handlers() {
  struct sigaction sa{};
  sa.sa_handler = serve_signal_handler;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;  // no SA_RESTART: blocked reads return EINTR promptly
  sigaction(SIGINT, &sa, nullptr);
  sigaction(SIGTERM, &sa, nullptr);
  signal(SIGPIPE, SIG_IGN);
}

int pending_signal() {
  return g_pending_signal.load(std::memory_order_relaxed);
}

int consume_pending_signal() {
  return g_pending_signal.exchange(0, std::memory_order_relaxed);
}

Server::Server(const ServerOptions& opts) : opts_(opts), cache_(opts.cache) {}

// Out-of-line so the unique_ptr<WorkerPool> deleter sees the complete type;
// the pool's destructor SIGTERMs and reaps any workers still alive.
Server::~Server() = default;

std::vector<pid_t> Server::worker_pids() const {
  return pool_ ? pool_->pids() : std::vector<pid_t>{};
}

int Server::shed_rung_for_depth(int depth) const {
  if (depth > opts_.shed2_depth) return 2;
  if (depth > opts_.shed1_depth) return 1;
  return 0;
}

long Server::retry_after_ms() const {
  const double est = ewma_service_ms_ * static_cast<double>(admitted_ + 1);
  return std::max(1L, static_cast<long>(est));
}

std::string Server::extract_id(std::string_view line) const {
  // Best-effort correlation id for responses produced before full decoding
  // (admission rejects, drain). Bounded: never parses more than 64 KiB.
  if (line.size() > (std::size_t{64} << 10)) return "";
  JsonParseResult pr = json_parse(line, opts_.limits.json);
  if (!pr.ok() || pr.value.type() != Json::Type::kObject) return "";
  const Json* id = pr.value.find("id");
  if (id == nullptr || id->type() != Json::Type::kString) return "";
  std::string s = id->as_string();
  if (s.size() > opts_.limits.max_id_bytes) return "";
  return s;
}

std::string Server::render_stats(const std::string& id, int queue_depth) const {
  std::string r = "{\"cmd\":\"stats\"";
  r += ",\"queue_depth\":" + std::to_string(queue_depth);
  r += ",\"lines_in\":" + std::to_string(stats_.lines_in);
  r += ",\"accepted\":" + std::to_string(stats_.accepted);
  r += ",\"rejected_overload\":" + std::to_string(stats_.rejected_overload);
  r += ",\"rejected_too_large\":" + std::to_string(stats_.rejected_too_large);
  r += ",\"parse_errors\":" + std::to_string(stats_.parse_errors);
  r += ",\"bad_requests\":" + std::to_string(stats_.bad_requests);
  r += ",\"solved\":" + std::to_string(stats_.solved);
  r += ",\"shed_demotions\":" + std::to_string(stats_.shed_demotions);
  r += ",\"degraded\":" + std::to_string(stats_.degraded);
  r += ",\"internal_errors\":" + std::to_string(stats_.internal_errors);
  r += ",\"cache\":{\"entries\":" + std::to_string(cache_.entries());
  r += ",\"bytes\":" + std::to_string(cache_.bytes());
  r += ",\"hits\":" + std::to_string(cache_.hits());
  r += ",\"misses\":" + std::to_string(cache_.misses());
  r += ",\"evictions\":" + std::to_string(cache_.evictions());
  r += ",\"poisoned\":" + std::to_string(cache_.poisoned()) + "}";
  // Worker-pool counters are always present (all zero with --workers 0) so
  // dashboards never branch on field existence.
  r += ",\"workers\":{\"configured\":" + std::to_string(opts_.workers);
  r += ",\"live\":" + std::to_string(pool_ ? pool_->live_workers() : 0);
  r += ",\"dispatched\":" + std::to_string(stats_.dispatched);
  r += ",\"crashes\":" + std::to_string(stats_.worker_crashes);
  r += ",\"timeouts\":" + std::to_string(stats_.worker_timeouts);
  r += ",\"respawns\":" + std::to_string(stats_.worker_respawns);
  r += ",\"retried\":" + std::to_string(stats_.requests_retried);
  r += ",\"quarantined\":" + std::to_string(stats_.quarantined);
  r += ",\"quarantine_hits\":" + std::to_string(stats_.quarantine_hits);
  r += ",\"breaker_opens\":" + std::to_string(stats_.breaker_opens);
  r += ",\"breaker_rejected\":" + std::to_string(stats_.breaker_rejected);
  r += "}";
  r += ",\"shed\":{\"shed1_depth\":" + std::to_string(opts_.shed1_depth);
  r += ",\"shed2_depth\":" + std::to_string(opts_.shed2_depth);
  r += ",\"current_rung\":" + std::to_string(shed_rung_for_depth(queue_depth));
  r += "}";
  r += ",\"latency_us\":{";
  const std::pair<const char*, const obs::Histogram*> lats[] = {
      {"total", &lat_total_},     {"exact", &lat_exact_},
      {"degraded", &lat_degraded_}, {"shed", &lat_shed_},
      {"cached", &lat_cached_},   {"error", &lat_error_}};
  bool first_lat = true;
  for (const auto& [name, h] : lats) {
    r += first_lat ? "\"" : ",\"";
    first_lat = false;
    r += name;
    r += "\":";
    r += latency_stats_json(*h);
  }
  r += "}}";
  (void)id;
  return r;
}

std::string Server::render_introspect(int queue_depth) const {
  // The stats object plus everything else an operator may want mid-incident:
  // the full metrics registry (empty under ISEX_NO_OBS — introspect exposes
  // the observability subsystem itself, so this section legitimately
  // reflects what was compiled in), flight-recorder state, and the
  // effective options.
  std::string r = "{\"cmd\":\"introspect\",\"stats\":";
  r += render_stats("", queue_depth);
  const obs::Journal& j = obs::Journal::global();
  r += ",\"journal\":{\"head\":" + std::to_string(j.head());
  r += ",\"capacity\":" + std::to_string(j.capacity());
  r += ",\"enabled\":";
  r += j.enabled() ? "true" : "false";
  r += ",\"next_rid\":" + std::to_string(next_rid_) + "}";
  r += ",\"options\":{\"queue_capacity\":" + std::to_string(opts_.queue_capacity);
  r += ",\"shed1_depth\":" + std::to_string(opts_.shed1_depth);
  r += ",\"shed2_depth\":" + std::to_string(opts_.shed2_depth);
  r += ",\"default_time_budget_seconds\":" +
       std::to_string(opts_.default_time_budget_seconds);
  r += ",\"default_node_budget\":" + std::to_string(opts_.default_node_budget);
  r += ",\"default_mem_budget_bytes\":" +
       std::to_string(opts_.default_mem_budget_bytes);
  r += ",\"paranoid\":";
  r += opts_.paranoid ? "true" : "false";
  r += ",\"max_request_bytes\":" +
       std::to_string(opts_.limits.max_request_bytes);
  r += ",\"workers\":" + std::to_string(opts_.workers);
  r += ",\"chaos_probability\":" + json_number(opts_.chaos_probability) + "}";
  // Live per-worker detail (pid, state, handled/crash counts) plus breaker
  // and quarantine state; null when the pool has not started.
  r += ",\"worker_pool\":";
  r += pool_ ? pool_->render_json(obs::clock_ns()) : std::string("null");
  std::ostringstream metrics;
  obs::Registry::global().write_json(metrics);
  r += ",\"metrics\":" + metrics.str();
  // write_json ends with a newline; keep the response single-line.
  while (!r.empty() && (r.back() == '\n' || r.back() == ' ')) r.pop_back();
  r += "}";
  std::string flat;
  flat.reserve(r.size());
  for (char c : r) flat += c == '\n' ? ' ' : c;
  return flat;
}

std::string Server::handle_select(const Request& req, int queue_depth,
                                  std::uint64_t rid) {
  const std::int64_t t0 = obs::clock_ns();

  // Effective per-request budget: request values (already clamped to the
  // schema caps by decode_request) or the server defaults.
  const double time_budget = req.time_budget_seconds > 0
                                 ? req.time_budget_seconds
                                 : opts_.default_time_budget_seconds;
  const long node_budget =
      req.node_budget >= 0 ? req.node_budget : opts_.default_node_budget;
  const std::size_t mem_budget = req.mem_budget_bytes > 0
                                     ? req.mem_budget_bytes
                                     : opts_.default_mem_budget_bytes;
  robust::Budget budget;
  if (node_budget >= 0) budget.set_node_budget(node_budget);
  if (mem_budget > 0) budget.set_mem_budget(mem_budget);
  if (time_budget > 0) budget.set_time_budget(time_budget);

  const std::int64_t build_t0 = obs::clock_ns();
  BuiltTaskSet built = build_taskset(req, &budget);
  ISEX_JOURNAL(kSolve, kBuild, obs::clock_ns() - build_t0,
               built.ts.tasks.size(), built.ok ? 0 : 1);
  if (!built.ok) {
    meta_.error_kind = static_cast<std::uint8_t>(ErrorCode::kBadRequest) + 1;
    return render_error(req.id, ErrorCode::kBadRequest, built.error, -1, rid);
  }
  const rt::TaskSet& ts = built.ts;

  const double area_budget = req.has_area_budget
                                 ? req.area_budget
                                 : req.budget_fraction * ts.max_area();

  // Load shedding: deep queue -> start the ladder below the exact rung.
  const int shed_rung = shed_rung_for_depth(queue_depth);
  if (shed_rung > 0) {
    ++stats_.shed_demotions;
    ISEX_COUNT("serve.shed_demotions");
    ISEX_JOURNAL(kShed, kSolve, 0, shed_rung, queue_depth);
  }

  const bool paranoid = opts_.paranoid || req.paranoid;
  const std::uint64_t key =
      select_cache_key(ts, area_budget, req.policy, time_budget, node_budget,
                       mem_budget, paranoid, shed_rung);

  // Certified reuse: a hit is served only if its stored selection still
  // passes the independent witness checkers against the task set we just
  // built. A failing entry is poisoned out and the request solved cold.
  if (const ResultCache::Entry* e = cache_.find(key)) {
    const certify::CertifyReport check =
        e->rms ? certify::check_selection_rms(ts, area_budget, e->selection)
               : certify::check_selection_edf(
                     ts, area_budget,
                     static_cast<const customize::SelectionResult&>(
                         e->selection));
    robust::journal_certify(check.checks,
                            static_cast<long>(check.violations.size()));
    if (check.ok()) {
      ++stats_.cache_hits;
      ISEX_JOURNAL(kCacheLookup, kCache, 0, 1, 0);
      last_disposition_ = obs::Disposition::kCached;
      meta_.result_json = e->result_json;
      meta_.nodes_charged = e->nodes_charged;
      const double ms =
          static_cast<double>(obs::clock_ns() - t0) / 1e6;
      return render_success(req.id, e->result_json, /*cache_hit=*/true,
                            queue_depth, ms, e->nodes_charged, rid);
    }
    ++stats_.cache_poisoned;
    ISEX_JOURNAL(kCacheLookup, kCache, 0, 2, 0);
    cache_.erase(key);
  } else {
    ISEX_JOURNAL(kCacheLookup, kCache, 0, 0, 0);
  }

  robust::FallbackOptions fb;
  fb.start_rung = static_cast<std::size_t>(shed_rung);
  if (paranoid) fb.certify_pool_cap = -1;

  ResultCache::Entry entry;
  std::string result;
  robust::Status status = robust::Status::kExact;
  const std::int64_t solve_t0 = obs::clock_ns();
  if (req.policy == rt::Policy::kRms) {
    customize::RmsOptions ropts;
    robust::Outcome<customize::RmsResult> out =
        robust::select_rms_with_fallback(ts, area_budget, ropts, &budget, fb);
    result = render_select_result(
        ts, area_budget, req.policy,
        robust::Outcome<customize::SelectionResult>{
            out.value, out.status, out.optimality_gap, out.budget, out.detail,
            out.certificate},
        shed_rung);
    entry.selection = out.value;
    entry.rms = true;
    status = out.status;
    if (out.status != robust::Status::kExact) ++stats_.degraded;
    if (!out.certificate.ok()) {
      meta_.error_kind = static_cast<std::uint8_t>(ErrorCode::kInternal) + 1;
      return render_error(req.id, ErrorCode::kInternal,
                          "certificate failed: " + out.certificate.summary(),
                          -1, rid);
    }
  } else {
    customize::EdfOptions eopts;
    robust::Outcome<customize::SelectionResult> out =
        robust::select_edf_with_fallback(ts, area_budget, eopts, &budget, fb);
    result = render_select_result(ts, area_budget, req.policy, out, shed_rung);
    static_cast<customize::SelectionResult&>(entry.selection) = out.value;
    entry.rms = false;
    status = out.status;
    if (out.status != robust::Status::kExact) ++stats_.degraded;
    if (!out.certificate.ok()) {
      meta_.error_kind = static_cast<std::uint8_t>(ErrorCode::kInternal) + 1;
      return render_error(req.id, ErrorCode::kInternal,
                          "certificate failed: " + out.certificate.summary(),
                          -1, rid);
    }
  }
  ++stats_.solved;
  ISEX_COUNT("serve.requests.solved");

  const robust::BudgetReport rep = budget.report();
  ISEX_JOURNAL(kSolve, kSolve, obs::clock_ns() - solve_t0, rep.nodes_charged,
               static_cast<int>(status));
  last_disposition_ = shed_rung > 0 ? obs::Disposition::kShed
                      : status != robust::Status::kExact
                          ? obs::Disposition::kDegraded
                          : obs::Disposition::kExact;
  entry.result_json = result;
  entry.nodes_charged = rep.nodes_charged;
  cache_.insert(key, std::move(entry));
  meta_.result_json = result;
  meta_.nodes_charged = rep.nodes_charged;
  meta_.degraded = status != robust::Status::kExact;
  meta_.shed = shed_rung > 0;

  const double ms = static_cast<double>(obs::clock_ns() - t0) / 1e6;
  ewma_service_ms_ = 0.8 * ewma_service_ms_ + 0.2 * ms;
  return render_success(req.id, result, /*cache_hit=*/false, queue_depth, ms,
                        rep.nodes_charged, rid);
}

std::string Server::handle_request(const Request& req, int queue_depth,
                                   std::uint64_t rid) {
  switch (req.cmd) {
    case Cmd::kPing:
      last_is_admin_ = true;
      return render_success(req.id, "{\"cmd\":\"ping\"}", false, queue_depth,
                            0.0, 0, rid);
    case Cmd::kStats:
      last_is_admin_ = true;
      return render_success(req.id, render_stats(req.id, queue_depth), false,
                            queue_depth, 0.0, 0, rid);
    case Cmd::kIntrospect:
      last_is_admin_ = true;
      return render_success(req.id, render_introspect(queue_depth), false,
                            queue_depth, 0.0, 0, rid);
    case Cmd::kSelect:
      return handle_select(req, queue_depth, rid);
  }
  return render_error(req.id, ErrorCode::kInternal, "unreachable cmd", -1,
                      rid);
}

void Server::note_response(obs::Disposition d, std::int64_t dur_ns,
                           std::size_t response_bytes) {
  ISEX_JOURNAL(kResponse, kRender, dur_ns, static_cast<std::int64_t>(d),
               response_bytes);
  if (last_is_admin_) return;  // admin requests would skew the latency axes
  const std::int64_t us = dur_ns / 1000;
  lat_total_.record(us);
  switch (d) {
    case obs::Disposition::kExact: lat_exact_.record(us); break;
    case obs::Disposition::kDegraded: lat_degraded_.record(us); break;
    case obs::Disposition::kShed: lat_shed_.record(us); break;
    case obs::Disposition::kCached: lat_cached_.record(us); break;
    case obs::Disposition::kError:
    case obs::Disposition::kDrained: lat_error_.record(us); break;
  }
}

std::string Server::handle_line(std::string_view line, int queue_depth,
                                std::uint64_t caller_rid) {
  ISEX_SPAN("serve.request");
  // rid 0 allocates locally; a nonzero caller rid (the supervisor's, carried
  // over the dispatch frame) keeps flight-recorder correlation consistent
  // across the process boundary.
  const std::uint64_t rid = caller_rid != 0 ? caller_rid : ++next_rid_;
  if (caller_rid != 0 && caller_rid > next_rid_) next_rid_ = caller_rid;
  ISEX_JOURNAL_SCOPE(rid);
  ISEX_JOURNAL(kRequest, kTransport, 0, line.size(), queue_depth);
  const std::int64_t t0 = obs::clock_ns();
  last_disposition_ = obs::Disposition::kError;
  last_is_admin_ = false;
  meta_ = ResponseMeta{};
  std::string response;
  // Request isolation: nothing a single request does — hostile bytes, a
  // throwing solver path, a defect — may unwind past this frame.
  try {
    const std::int64_t decode_t0 = obs::clock_ns();
    DecodeResult dr = decode_request(line, opts_.limits);
    if (const auto* err = std::get_if<DecodeError>(&dr)) {
      ISEX_JOURNAL(kDecode, kDecode, obs::clock_ns() - decode_t0,
                   static_cast<int>(err->code) + 1, 0);
      if (err->code == ErrorCode::kParseError)
        ++stats_.parse_errors;
      else
        ++stats_.bad_requests;
      meta_.error_kind = static_cast<std::uint8_t>(err->code) + 1;
      response = render_error(err->id, err->code, err->message, -1, rid);
    } else {
      ISEX_JOURNAL(kDecode, kDecode, obs::clock_ns() - decode_t0, 0, 0);
      response = handle_request(std::get<Request>(dr), queue_depth, rid);
    }
  } catch (const std::exception& e) {
    ++stats_.internal_errors;
    ISEX_COUNT("serve.requests.internal_errors");
    last_disposition_ = obs::Disposition::kError;
    last_is_admin_ = false;
    meta_ = ResponseMeta{};
    meta_.error_kind = static_cast<std::uint8_t>(ErrorCode::kInternal) + 1;
    response = render_error(extract_id(line), ErrorCode::kInternal, e.what(),
                            -1, rid);
  } catch (...) {
    ++stats_.internal_errors;
    ISEX_COUNT("serve.requests.internal_errors");
    last_disposition_ = obs::Disposition::kError;
    last_is_admin_ = false;
    meta_ = ResponseMeta{};
    meta_.error_kind = static_cast<std::uint8_t>(ErrorCode::kInternal) + 1;
    response = render_error(extract_id(line), ErrorCode::kInternal,
                            "unknown exception", -1, rid);
  }
  meta_.disposition = last_disposition_;
  meta_.is_admin = last_is_admin_;
  note_response(last_disposition_, obs::clock_ns() - t0, response.size());
  return response;
}

void Server::ingest_line(std::string line) {
  if (line.empty()) return;  // blank keep-alives are free
  ++stats_.lines_in;
  ISEX_COUNT("serve.lines_in");
  if (discarding_) return;  // handled in split_lines
  if (admitted_ >= opts_.queue_capacity) {
    // Admission control: reject now, but queue the rejection so the
    // response order still matches the request order.
    ++stats_.rejected_overload;
    ISEX_COUNT("serve.rejected.overload");
    const std::uint64_t rid = ++next_rid_;
    ISEX_JOURNAL_SCOPE(rid);
    const long retry = retry_after_ms();
    ISEX_JOURNAL(kAdmission, kTransport, 0, retry, admitted_);
    std::string resp = render_error(extract_id(line), ErrorCode::kOverload,
                                    "queue full (" +
                                        std::to_string(opts_.queue_capacity) +
                                        " requests pending)",
                                    retry, rid);
    ISEX_JOURNAL(kResponse, kRender, 0,
                 static_cast<std::int64_t>(obs::Disposition::kError),
                 resp.size());
    pending_.push_back(PendingEntry{true, std::move(resp)});
    return;
  }
  ++stats_.accepted;
  ++admitted_;
  pending_.push_back(PendingEntry{false, std::move(line)});
}

void Server::split_lines() {
  std::size_t start = 0;
  for (;;) {
    const std::size_t nl = inbuf_.find('\n', start);
    if (nl == std::string::npos) break;
    if (discarding_) {
      // The newline ends the oversized line whose body we dropped.
      discarding_ = false;
      ++stats_.rejected_too_large;
      ISEX_COUNT("serve.rejected.too_large");
      const std::uint64_t rid = ++next_rid_;
      ISEX_JOURNAL_SCOPE(rid);
      std::string resp =
          render_error("", ErrorCode::kTooLarge,
                       "request line exceeds " +
                           std::to_string(opts_.limits.max_request_bytes) +
                           " bytes",
                       -1, rid);
      ISEX_JOURNAL(kResponse, kRender, 0,
                   static_cast<std::int64_t>(obs::Disposition::kError),
                   resp.size());
      pending_.push_back(PendingEntry{true, std::move(resp)});
    } else {
      std::string line = inbuf_.substr(start, nl - start);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      ingest_line(std::move(line));
    }
    start = nl + 1;
  }
  inbuf_.erase(0, start);
  if (!discarding_ && inbuf_.size() > opts_.limits.max_request_bytes) {
    // A line longer than the cap: drop its bytes as they stream in (memory
    // stays bounded) and emit one too_large response at the newline.
    discarding_ = true;
    inbuf_.clear();
  } else if (discarding_) {
    inbuf_.clear();
  }
}

void Server::pump_input() {
  // Stop reading when the pending queue is saturated well past capacity:
  // from here on the kernel pipe fills up and blocks the sender — bounded
  // memory is the outermost overload defense.
  const std::size_t entry_cap =
      static_cast<std::size_t>(opts_.queue_capacity) * 4 + 16;
  char buf[1 << 16];
  while (!eof_ && pending_.size() < entry_cap) {
    const ssize_t n = ::read(in_fd_, buf, sizeof buf);
    if (n > 0) {
      inbuf_.append(buf, static_cast<std::size_t>(n));
      split_lines();
      continue;
    }
    if (n == 0) {
      eof_ = true;
      if (!inbuf_.empty() && !discarding_) {
        // Final unterminated line: treat EOF as the delimiter.
        std::string line = std::move(inbuf_);
        inbuf_.clear();
        ingest_line(std::move(line));
      }
      break;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) break;  // outer loop checks pending_signal()
    eof_ = true;  // unrecoverable read error: drain what we have
    break;
  }
}

bool Server::write_line(int out_fd, std::string_view line) {
  std::string framed(line);
  framed += '\n';
  // util::write_all_fd retries EINTR and short writes, and uses
  // send(MSG_NOSIGNAL) on sockets so a half-closed client yields EPIPE here
  // instead of SIGPIPE killing a process that never installed SIG_IGN.
  if (!util::write_all_fd(out_fd, framed.data(), framed.size())) {
    write_failed_ = true;  // client vanished (EPIPE) or transport broke
    return false;
  }
  return true;
}

void Server::maybe_flush_stats() {
  if (opts_.stats_path.empty() || opts_.stats_interval_seconds <= 0) return;
  const std::int64_t now = obs::clock_ns();
  const auto interval_ns =
      static_cast<std::int64_t>(opts_.stats_interval_seconds * 1e9);
  if (last_flush_ns_ != 0 && now - last_flush_ns_ < interval_ns) return;
  last_flush_ns_ = now;
  const std::string snapshot = render_introspect(admitted_);
  util::write_file_atomic(opts_.stats_path, [&](std::ostream& out) {
    out << snapshot << "\n";
  });
}

void Server::drain_queue() {
  // Graceful drain: every queued request gets a deterministic answer before
  // exit — preformed responses as-is, unsolved requests "shutting_down".
  while (!pending_.empty()) {
    PendingEntry e = std::move(pending_.front());
    pending_.pop_front();
    if (!e.preformed) {
      --admitted_;
      ++stats_.drained;
      ISEX_COUNT("serve.drained");
      const std::uint64_t rid = ++next_rid_;
      ISEX_JOURNAL_SCOPE(rid);
      ISEX_JOURNAL(kDrain, kTransport, 0, 0, admitted_);
      e.text = render_error(extract_id(e.text), ErrorCode::kShuttingDown,
                            "server draining", -1, rid);
      ISEX_JOURNAL(kResponse, kRender, 0,
                   static_cast<std::int64_t>(obs::Disposition::kDrained),
                   e.text.size());
    }
    if (!write_line(out_fd_, e.text)) break;
  }
}

int Server::run(int in_fd, int out_fd) {
  if (opts_.workers > 0) return run_pooled(in_fd, out_fd);
  in_fd_ = in_fd;
  out_fd_ = out_fd;
  inbuf_.clear();
  pending_.clear();
  discarding_ = false;
  eof_ = false;
  write_failed_ = false;
  admitted_ = 0;

  // Non-blocking reads let the loop interleave pumping (admission) with
  // solving; poll() below supplies the blocking when there is nothing to do.
  const int fl = ::fcntl(in_fd_, F_GETFL);
  if (fl >= 0) ::fcntl(in_fd_, F_SETFL, fl | O_NONBLOCK);

  while (!write_failed_) {
    if (pending_signal() != 0) {
      drain_queue();
      return 0;
    }
    pump_input();
    ISEX_GAUGE_SET("serve.queue.depth", admitted_);
    maybe_flush_stats();
    if (pending_.empty()) {
      if (eof_) break;
      struct pollfd pfd{in_fd_, POLLIN, 0};
      ::poll(&pfd, 1, 200);  // short timeout so signals are noticed promptly
      continue;
    }
    PendingEntry e = std::move(pending_.front());
    pending_.pop_front();
    if (e.preformed) {
      write_line(out_fd_, e.text);
      continue;
    }
    --admitted_;
    // Depth observed *behind* this request drives the shedding decision.
    write_line(out_fd_, handle_line(e.text, admitted_));
  }
  if (fl >= 0) ::fcntl(in_fd_, F_SETFL, fl);
  return write_failed_ ? 2 : 0;
}

int run_unix_socket(Server& server, const std::string& path) {
  sockaddr_un addr{};
  if (path.size() >= sizeof addr.sun_path) return 2;
  const int lfd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (lfd < 0) return 2;
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  ::unlink(path.c_str());  // replace a stale socket file
  if (::bind(lfd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) < 0 ||
      ::listen(lfd, 16) < 0) {
    ::close(lfd);
    return 2;
  }
  while (pending_signal() == 0) {
    struct pollfd pfd{lfd, POLLIN, 0};
    const int pr = ::poll(&pfd, 1, 200);
    if (pr <= 0) continue;  // timeout or EINTR: re-check the signal flag
    const int conn = util::accept_retry(lfd);
    if (conn < 0) continue;
    server.run(conn, conn);  // serves until client EOF or signal
    ::close(conn);
  }
  ::close(lfd);
  ::unlink(path.c_str());
  return 0;
}

}  // namespace isex::serve
