// Server::run_pooled — the supervisor event loop of `isex serve --workers N`.
//
// The supervisor keeps the listener, admission control, result cache,
// journal and response ordering; every select is dispatched over a
// length-prefixed socketpair frame to a pre-forked worker that runs the
// full decode -> solve_with_fallback -> certify pipeline under per-process
// rlimits. The supervisor itself never parses a hostile payload beyond the
// bounded cmd/id/time_budget classification, so no request can take the
// listener down.
//
// Failure matrix handled here (process mechanics live in supervise::
// WorkerPool; the table is documented in DESIGN.md):
//  * worker crash      -> retry the request on another worker (solves are
//                         pure, so at-most-once-per-worker re-execution is
//                         safe); after poison_kill_threshold kills the
//                         content hash is quarantined and the request gets
//                         a structured `worker_crashed` error carrying the
//                         terminating signal and the worker's crash-dump
//                         path.
//  * hung solve        -> per-request watchdog (budget + grace) SIGKILLs
//                         the worker; the request gets `worker_timeout`
//                         (no retry: a retry would just burn another
//                         deadline; the kill still counts toward poison
//                         quarantine).
//  * restart storm     -> the pool's circuit breaker stops respawns; while
//                         it is open and no worker is live, queued selects
//                         fail fast with `worker_unavailable`.
//  * graceful drain    -> SIGTERM forwards cancellation to workers (they
//                         truncate the in-flight solve, answer, and exit);
//                         responses are collected for drain_timeout_seconds
//                         before stragglers are SIGKILLed and their
//                         requests answered `shutting_down`.
//
// Responses always leave in request order: every request occupies one slot
// of an ordered in-flight window, completions fill slots out of order, and
// only the contiguous done-prefix is flushed.

#include <algorithm>
#include <csignal>
#include <cstring>

#include <fcntl.h>
#include <poll.h>
#include <unistd.h>

#include "isex/obs/journal.hpp"
#include "isex/obs/metrics.hpp"
#include "isex/obs/trace.hpp"
#include "isex/serve/cache.hpp"
#include "isex/serve/json.hpp"
#include "isex/serve/server.hpp"
#include "isex/supervise/pool.hpp"
#include "isex/util/io.hpp"

namespace isex::serve {
namespace {

bool signal_writes_crash_dump(int sig) {
  return sig == SIGABRT || sig == SIGSEGV || sig == SIGBUS || sig == SIGFPE ||
         sig == SIGILL;
}

}  // namespace

int Server::run_pooled(int in_fd, int out_fd) {
  using supervise::PoolEvent;
  using supervise::PoolFrame;
  using supervise::WorkerPool;

  in_fd_ = in_fd;
  out_fd_ = out_fd;
  inbuf_.clear();
  pending_.clear();
  inflight_.clear();
  discarding_ = false;
  eof_ = false;
  write_failed_ = false;
  admitted_ = 0;

  // The pool persists across streams like the cache does; workers stay warm.
  if (!pool_) {
    pool_ = std::make_unique<WorkerPool>(opts_, std::vector<int>{in_fd, out_fd});
    if (!pool_->start()) {
      pool_.reset();
      return 2;
    }
  }

  const int fl = ::fcntl(in_fd_, F_GETFL);
  if (fl >= 0) ::fcntl(in_fd_, F_SETFL, fl | O_NONBLOCK);

  const std::size_t entry_cap =
      static_cast<std::size_t>(opts_.queue_capacity) * 4 + 16;

  // Effective watchdog span (seconds, pre-grace) for one request.
  const auto watchdog_span = [&](double req_budget_seconds) {
    if (opts_.watchdog_seconds > 0) return opts_.watchdog_seconds;
    if (req_budget_seconds > 0) return req_budget_seconds;
    if (opts_.default_time_budget_seconds > 0)
      return opts_.default_time_budget_seconds;
    return opts_.limits.max_time_budget_seconds;
  };

  // Finalizes an admitted entry: stores the response, releases its admission
  // slot, and feeds the latency/journal bookkeeping.
  const auto finish = [&](InflightEntry& ent, std::string response,
                          obs::Disposition d, bool admin) {
    if (ent.done) return;
    ent.done = true;
    ent.text = std::move(response);
    --admitted_;
    last_is_admin_ = admin;
    const std::int64_t dur =
        ent.t0_ns != 0 ? obs::clock_ns() - ent.t0_ns : 0;
    note_response(d, dur, ent.text.size());
  };

  const auto finish_drained = [&](InflightEntry& ent) {
    ++stats_.drained;
    ISEX_COUNT("serve.drained");
    ISEX_JOURNAL(kDrain, kTransport, 0, 0, admitted_);
    finish(ent,
           render_error(ent.id.empty() ? extract_id(ent.text) : ent.id,
                        ErrorCode::kShuttingDown, "server draining", -1,
                        ent.rid),
           obs::Disposition::kDrained, false);
  };

  // Bounded classification of a newly admitted line. Admin commands are
  // answered in-process (stats/introspect *must* see supervisor state);
  // everything else — including lines that do not parse — goes to a worker,
  // where the full decoder produces the proper response or error.
  const auto classify = [&](InflightEntry& ent) {
    ent.t0_ns = obs::clock_ns();
    ent.line_hash = fnv1a(ent.text.data(), ent.text.size(), 0xcbf29ce484222325ull);
    double req_budget_seconds = 0;
    bool admin = false;
    {
      JsonParseResult pr = json_parse(ent.text, opts_.limits.json);
      if (pr.ok() && pr.value.is_object()) {
        if (const Json* cmd = pr.value.find("cmd");
            cmd != nullptr && cmd->is_string()) {
          const std::string& s = cmd->as_string();
          admin = s == "ping" || s == "stats" || s == "introspect";
        }
        if (const Json* id = pr.value.find("id");
            id != nullptr && id->is_string() &&
            id->as_string().size() <= opts_.limits.max_id_bytes)
          ent.id = id->as_string();
        if (const Json* tb = pr.value.find("time_budget_ms");
            tb != nullptr && tb->is_number() && tb->as_number() > 0)
          req_budget_seconds =
              std::min(tb->as_number() * 1e-3,
                       opts_.limits.max_time_budget_seconds);
      }
    }
    ent.watchdog_seconds = watchdog_span(req_budget_seconds);

    const int depth = std::max(0, admitted_ - 1);
    if (admin) {
      std::string resp = handle_line(ent.text, depth, ent.rid);
      finish(ent, std::move(resp), last_disposition_, true);
      return;
    }

    // Poison quarantine: refuse content that already killed its quota of
    // workers, before it gets near another one.
    if (pool_->is_quarantined(ent.line_hash)) {
      ++stats_.quarantine_hits;
      ISEX_COUNT("serve.quarantine_hits");
      finish(ent,
             render_error_extra(
                 ent.id, ErrorCode::kQuarantined,
                 "request content quarantined after killing " +
                     std::to_string(opts_.poison_kill_threshold) + " workers",
                 "\"kills\":" + std::to_string(opts_.poison_kill_threshold),
                 -1, ent.rid),
             obs::Disposition::kError, false);
      return;
    }

    // Supervisor result cache: exact request bytes, undemoted (rung 0)
    // results only. The stored object was certified by the worker that
    // produced it; semantic (cross-line) reuse still happens worker-side.
    if (shed_rung_for_depth(depth) == 0) {
      if (const ResultCache::Entry* e = cache_.find(ent.line_hash)) {
        ++stats_.cache_hits;
        ISEX_JOURNAL(kCacheLookup, kCache, 0, 1, 0);
        const double ms =
            static_cast<double>(obs::clock_ns() - ent.t0_ns) / 1e6;
        finish(ent,
               render_success(ent.id, e->result_json, /*cache_hit=*/true,
                              depth, ms, e->nodes_charged, ent.rid),
               obs::Disposition::kCached, false);
        return;
      }
    }
  };

  // A worker frame arrived for `ent`: adopt the worker-rendered response and
  // mirror its metadata into the supervisor's stats.
  const auto finish_from_frame = [&](InflightEntry& ent,
                                     const PoolFrame& frame) {
    const auto d = static_cast<obs::Disposition>(frame.hdr.disposition);
    const bool admin = (frame.hdr.flags & supervise::kRespFlagAdmin) != 0;
    const std::uint8_t ek = frame.hdr.error_kind;
    if (ek == 0) {
      if (d == obs::Disposition::kCached) {
        ++stats_.cache_hits;
      } else if (!admin) {
        ++stats_.solved;
        ISEX_COUNT("serve.requests.solved");
        if (frame.hdr.flags & supervise::kRespFlagDegraded) ++stats_.degraded;
        if (frame.hdr.flags & supervise::kRespFlagShed) {
          ++stats_.shed_demotions;
          ISEX_COUNT("serve.shed_demotions");
        }
      }
    } else {
      const auto code = static_cast<ErrorCode>(ek - 1);
      if (code == ErrorCode::kParseError)
        ++stats_.parse_errors;
      else if (code == ErrorCode::kBadRequest || code == ErrorCode::kTooLarge)
        ++stats_.bad_requests;
      else if (code == ErrorCode::kInternal)
        ++stats_.internal_errors;
    }
    // Cache rung-0 select results under the exact line bytes.
    if ((frame.hdr.flags & supervise::kRespFlagCacheable) != 0 &&
        (frame.hdr.flags & supervise::kRespFlagShed) == 0 &&
        frame.hdr.result_len > 0 &&
        static_cast<std::size_t>(frame.hdr.result_off) +
                frame.hdr.result_len <=
            frame.body.size() &&
        d != obs::Disposition::kCached) {
      ResultCache::Entry entry;
      entry.result_json = frame.body.substr(frame.hdr.result_off,
                                            frame.hdr.result_len);
      entry.nodes_charged = static_cast<long>(frame.hdr.nodes_charged);
      cache_.insert(ent.line_hash, std::move(entry));
    }
    if (!admin && ek == 0 && ent.t0_ns != 0) {
      const double ms =
          static_cast<double>(obs::clock_ns() - ent.t0_ns) / 1e6;
      ewma_service_ms_ = 0.8 * ewma_service_ms_ + 0.2 * ms;
    }
    finish(ent, frame.body, d, admin);
  };

  // A worker died while this entry was dispatched on it.
  const auto handle_death = [&](InflightEntry& ent, const PoolEvent& ev,
                                bool draining) {
    const int kills = pool_->note_kill(ent.line_hash);
    const bool quarantined_now = kills == opts_.poison_kill_threshold;
    if (quarantined_now) {
      ++stats_.quarantined;
      ISEX_COUNT("serve.quarantined");
    }
    std::string extra = "\"signal\":" + std::to_string(ev.signal) +
                        ",\"worker\":" + std::to_string(ev.worker) +
                        ",\"kills\":" + std::to_string(kills);
    if (!opts_.crash_dump_path.empty() &&
        signal_writes_crash_dump(ev.signal)) {
      extra += ",\"crash_dump\":" +
               json_quote(opts_.crash_dump_path + "." +
                          std::to_string(static_cast<long>(ev.pid)));
    }
    if (ev.watchdog) {
      finish(ent,
             render_error_extra(
                 ent.id, ErrorCode::kWorkerTimeout,
                 "solve exceeded its watchdog deadline (" +
                     std::to_string(ent.watchdog_seconds) +
                     "s + grace); worker killed",
                 extra, -1, ent.rid),
             obs::Disposition::kError, false);
      return;
    }
    if (kills < opts_.poison_kill_threshold && !draining) {
      // Retry on another worker. Safe: solves are pure functions of the
      // request bytes with no external side effects, and each retry runs
      // at most once per worker (the killer never sees the line again).
      ent.worker = -1;
      ++stats_.requests_retried;
      ISEX_COUNT("serve.requests.retried");
      return;
    }
    finish(ent,
           render_error_extra(
               ent.id, ErrorCode::kWorkerCrashed,
               "worker pid " + std::to_string(static_cast<long>(ev.pid)) +
                   (ev.signal != 0
                        ? " died with signal " + std::to_string(ev.signal)
                        : " exited with status " +
                              std::to_string(ev.exit_status)) +
                   " while solving this request" +
                   (quarantined_now ? "; content quarantined" : ""),
               extra, -1, ent.rid),
           obs::Disposition::kError, false);
  };

  bool draining = false;
  std::int64_t drain_deadline_ns = 0;
  int exit_code = 0;

  for (;;) {
    const std::int64_t now = obs::clock_ns();

    if (!draining && pending_signal() != 0) {
      draining = true;
      drain_deadline_ns =
          now +
          static_cast<std::int64_t>(opts_.drain_timeout_seconds * 1e9);
      pool_->begin_drain();
    }

    if (!draining) pump_input();

    // Admit classified work into the ordered in-flight window.
    while (!pending_.empty() &&
           (draining || inflight_.size() < entry_cap)) {
      PendingEntry pe = std::move(pending_.front());
      pending_.pop_front();
      InflightEntry ent;
      if (pe.preformed) {
        ent.done = true;
        ent.text = std::move(pe.text);
      } else {
        ent.text = std::move(pe.text);
        ent.rid = ++next_rid_;
        if (draining)
          finish_drained(ent);
        else
          classify(ent);
      }
      inflight_.push_back(std::move(ent));
    }

    if (draining) {
      // Everything not yet on a worker gets a deterministic drain answer.
      for (InflightEntry& ent : inflight_)
        if (!ent.done && ent.worker < 0) finish_drained(ent);
    }

    // Dispatch queued entries, oldest first. depth_behind[i] = admitted
    // requests queued behind entry i (drives worker-side shedding, like
    // admitted_ does for the in-process loop).
    if (!draining) {
      std::vector<int> undone_after(inflight_.size() + 1, 0);
      for (std::size_t i = inflight_.size(); i-- > 0;)
        undone_after[i] = undone_after[i + 1] +
                          (!inflight_[i].done && inflight_[i].worker < 0 ? 1
                                                                         : 0);
      const bool rejecting =
          pool_->breaker_open(now) && pool_->live_workers() == 0;
      for (std::size_t i = 0; i < inflight_.size(); ++i) {
        InflightEntry& ent = inflight_[i];
        if (ent.done || ent.worker >= 0) continue;
        if (rejecting) {
          ++stats_.breaker_rejected;
          ISEX_COUNT("serve.breaker_rejected");
          finish(ent,
                 render_error(ent.id, ErrorCode::kWorkerUnavailable,
                              "worker pool restart storm: circuit breaker "
                              "open and no live workers",
                              pool_->breaker_retry_after_ms(now), ent.rid),
                 obs::Disposition::kError, false);
          continue;
        }
        const int w = pool_->idle_worker();
        if (w < 0) break;
        const int depth = undone_after[i + 1];
        if (pool_->dispatch(w, ent.rid, depth, ent.text,
                            ent.watchdog_seconds)) {
          ent.worker = w;
          ent.depth_at_dispatch = depth;
          ++stats_.dispatched;
          ISEX_COUNT("serve.dispatched");
        }
        // A failed dispatch killed that worker; the entry stays queued and
        // the next pass retries on another one.
      }
    }

    // Wait for input, worker frames, or the next watchdog/drain deadline.
    {
      std::vector<struct pollfd> pfds;
      const bool want_input = !draining && !eof_ &&
                              pending_.size() < entry_cap &&
                              inflight_.size() < entry_cap;
      if (want_input) pfds.push_back({in_fd_, POLLIN, 0});
      const auto refs = pool_->poll_fds();
      for (const auto& r : refs) pfds.push_back({r.fd, POLLIN, 0});
      int timeout_ms = 200;
      if (const std::int64_t dl = pool_->next_deadline_ns(); dl != 0)
        timeout_ms = static_cast<int>(std::clamp<std::int64_t>(
            (dl - now) / 1'000'000 + 1, 1, 200));
      if (draining)
        timeout_ms = static_cast<int>(std::clamp<std::int64_t>(
            (drain_deadline_ns - now) / 1'000'000 + 1, 1, timeout_ms));
      if (!pfds.empty()) {
        ::poll(pfds.data(), static_cast<nfds_t>(pfds.size()), timeout_ms);
      } else if (inflight_.empty() && pending_.empty() &&
                 (eof_ || draining)) {
        // nothing left anywhere
      } else {
        ::usleep(static_cast<useconds_t>(timeout_ms) * 1000);
      }
      // Collect frames from every worker that has bytes (cheap no-op on
      // the quiet ones; poll revents bookkeeping is not worth the map).
      std::vector<PoolFrame> frames;
      for (const auto& r : refs) pool_->read_worker(r.worker, &frames);
      for (PoolFrame& frame : frames) {
        for (InflightEntry& ent : inflight_) {
          if (!ent.done && ent.rid == frame.hdr.rid) {
            finish_from_frame(ent, frame);
            break;
          }
        }
        // Frames matching nothing (a response racing a watchdog kill whose
        // entry already finished) are dropped: the response slot is gone.
      }
    }

    // Reap deaths, respawn under backoff/breaker, fire watchdogs.
    {
      const std::vector<PoolEvent> events = pool_->maintain(obs::clock_ns());
      for (const PoolEvent& ev : events) {
        if (!ev.was_busy || ev.rid == 0) continue;
        for (InflightEntry& ent : inflight_) {
          if (!ent.done && ent.rid == ev.rid) {
            handle_death(ent, ev, draining);
            break;
          }
        }
      }
      stats_.worker_crashes = pool_->crashes();
      stats_.worker_timeouts = pool_->watchdog_kills();
      stats_.worker_respawns = pool_->respawns();
      stats_.breaker_opens = pool_->breaker_opens();
    }

    // Flush the contiguous done-prefix: responses leave in request order.
    while (!inflight_.empty() && inflight_.front().done) {
      if (!write_line(out_fd_, inflight_.front().text)) break;
      inflight_.pop_front();
    }

    ISEX_GAUGE_SET("serve.queue.depth", admitted_);
    maybe_flush_stats();

    if (write_failed_) {
      exit_code = 2;
      break;
    }
    if (draining) {
      const bool all_answered = [&] {
        for (const InflightEntry& ent : inflight_)
          if (!ent.done) return false;
        return true;
      }();
      if (all_answered && inflight_.empty()) break;
      if (obs::clock_ns() >= drain_deadline_ns) {
        // Patience exhausted: kill the stragglers, answer their requests.
        pool_->shutdown(0);
        for (InflightEntry& ent : inflight_)
          if (!ent.done) finish_drained(ent);
        while (!inflight_.empty() && inflight_.front().done) {
          if (!write_line(out_fd_, inflight_.front().text)) break;
          inflight_.pop_front();
        }
        break;
      }
    } else if (eof_ && pending_.empty() && inflight_.empty()) {
      break;
    }
  }

  if (fl >= 0) ::fcntl(in_fd_, F_SETFL, fl);
  return write_failed_ ? 2 : exit_code;
}

}  // namespace isex::serve
