// isex::serve — strict, resource-bounded JSON for the request protocol.
//
// The daemon's first line of defense: every byte stream a client sends is
// decoded by this parser before anything else looks at it. The contract is
// absolute — json_parse never throws, never crashes, never recurses deeper
// than JsonLimits::max_depth, never materializes more than max_values values
// or a string longer than max_string_bytes, and rejects everything that is
// not a single well-formed RFC 8259 value with a one-line error naming the
// byte offset. Malformed input is the *expected* case for a server, so the
// error path is a value, not an exception.
//
// This is deliberately a second, independent JSON implementation: the obs/
// exporters only *write* JSON; nothing in the solver stack ever parses it,
// so a parser bug cannot corrupt solver state and a solver bug cannot leak
// into the wire format.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace isex::serve {

/// Hard resource ceilings enforced during parsing (each one is a defense
/// against a hostile request: deep nesting -> stack exhaustion, huge arrays
/// -> memory exhaustion, long strings -> memory exhaustion).
struct JsonLimits {
  int max_depth = 64;                       // nesting of arrays/objects
  long max_values = 1 << 16;                // total parsed values
  std::size_t max_string_bytes = 1 << 16;   // per decoded string
};

/// Immutable parsed JSON value. Object members keep source order; lookup is
/// linear (requests are small — the limits above guarantee it).
class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Json() = default;

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  bool as_bool() const { return bool_; }
  double as_number() const { return num_; }
  const std::string& as_string() const { return str_; }
  const std::vector<Json>& items() const { return arr_; }
  const std::vector<std::pair<std::string, Json>>& members() const {
    return obj_;
  }

  /// Object member by key, or nullptr (also nullptr on non-objects). With
  /// duplicate keys the last occurrence wins, matching common decoders.
  const Json* find(std::string_view key) const;

  static Json make_null() { return Json(); }
  static Json make_bool(bool b);
  static Json make_number(double v);
  static Json make_string(std::string s);
  static Json make_array(std::vector<Json> items);
  static Json make_object(std::vector<std::pair<std::string, Json>> members);

 private:
  Type type_ = Type::kNull;
  bool bool_ = false;
  double num_ = 0;
  std::string str_;
  std::vector<Json> arr_;
  std::vector<std::pair<std::string, Json>> obj_;
};

struct JsonParseResult {
  Json value;
  std::string error;  // empty iff parse succeeded; includes the byte offset
  bool ok() const { return error.empty(); }
};

/// Parses exactly one JSON value spanning all of `text` (trailing whitespace
/// allowed, trailing garbage rejected). Strict grammar: no NaN/Infinity, no
/// comments, no unquoted keys, no control characters inside strings,
/// surrogate pairs validated. Numbers that overflow double are rejected.
JsonParseResult json_parse(std::string_view text, const JsonLimits& limits = {});

/// `s` as a quoted JSON string literal (escaping via obs::json_escape).
std::string json_quote(std::string_view s);

/// Shortest round-trip-safe rendering: integral values in the exact-int53
/// range print without a fraction; non-finite values (which the protocol
/// never produces) degrade to null rather than emitting invalid JSON.
std::string json_number(double v);

}  // namespace isex::serve
