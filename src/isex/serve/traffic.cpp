#include "isex/serve/traffic.hpp"

#include <vector>

namespace isex::serve {
namespace {

// Cheap kernels only: a soak pushes tens of thousands of requests through
// the real pipeline, and the point is traffic volume, not solver load.
const char* kBenchmarks[] = {"crc32", "sha", "adpcm_enc", "adpcm_dec",
                             "stringsearch"};
constexpr int kNumBenchmarks = 5;

std::string valid_select(util::Rng& rng, int index, bool rms_mix) {
  std::string line = "{\"id\":\"t" + std::to_string(index) + "\",";
  line += "\"cmd\":\"select\",";
  if (rms_mix && rng.chance(0.4)) line += "\"policy\":\"rms\",";
  const int n = rng.uniform_int(1, 3);
  line += "\"benchmarks\":[";
  for (int i = 0; i < n; ++i) {
    if (i > 0) line += ",";
    line += "\"";
    line += kBenchmarks[rng.uniform_int(0, kNumBenchmarks - 1)];
    line += "\"";
  }
  line += "],\"u0\":";
  // A coarse grid of utilizations/fractions keeps the distinct-request
  // population small enough that repeats and cache hits actually happen.
  line += std::to_string(rng.uniform_int(10, 20));
  line += "e-1,\"budget_fraction\":0.";
  line += std::to_string(rng.uniform_int(1, 9));
  line += ",\"node_budget\":200000}";
  return line;
}

std::string overbudget_select(util::Rng& rng, int index) {
  // Starvation-level budgets: the ladder must truncate or degrade, never
  // wedge. node_budget of a few hundred cannot finish any DP rung.
  std::string line = "{\"id\":\"t" + std::to_string(index) + "\",";
  line += "\"cmd\":\"select\",\"benchmarks\":[\"";
  line += kBenchmarks[rng.uniform_int(0, kNumBenchmarks - 1)];
  line += "\",\"";
  line += kBenchmarks[rng.uniform_int(0, kNumBenchmarks - 1)];
  line += "\"],\"u0\":1.4,\"budget_fraction\":0.5,\"node_budget\":";
  line += std::to_string(rng.uniform_int(64, 512));
  line += ",\"time_budget_ms\":1}";
  return line;
}

std::string bad_schema(util::Rng& rng, int index) {
  switch (rng.uniform_int(0, 5)) {
    case 0:
      return "{\"id\":\"t" + std::to_string(index) + "\",\"cmd\":\"launch\"}";
    case 1:  // both task-set forms at once
      return "{\"cmd\":\"select\",\"benchmarks\":[\"crc32\"],\"u0\":1.0,"
             "\"tasks\":[],\"budget_fraction\":0.5}";
    case 2:  // utilization out of range
      return "{\"cmd\":\"select\",\"benchmarks\":[\"crc32\"],\"u0\":-3,"
             "\"budget_fraction\":0.5}";
    case 3:  // unknown benchmark
      return "{\"cmd\":\"select\",\"benchmarks\":[\"quicksort9000\"],"
             "\"u0\":1.0,\"budget_fraction\":0.5}";
    case 4:  // id the wrong type
      return "{\"id\":42,\"cmd\":\"ping\"}";
    default:  // missing area constraint
      return "{\"cmd\":\"select\",\"benchmarks\":[\"sha\"],\"u0\":1.0}";
  }
}

std::string malformed(util::Rng& rng, int index) {
  switch (rng.uniform_int(0, 5)) {
    case 0: {  // truncated valid request
      std::string v = valid_select(rng, index, false);
      return v.substr(0, static_cast<std::size_t>(
                             rng.uniform_int(1, static_cast<int>(v.size()) - 1)));
    }
    case 1: {  // single-byte mutation (newline-free so it stays one line)
      std::string v = valid_select(rng, index, false);
      char m = static_cast<char>(rng.uniform_int(0, 255));
      if (m == '\n') m = ' ';
      v[static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<int>(v.size()) - 1))] = m;
      return v;
    }
    case 2: {  // deep nesting
      const int depth = rng.uniform_int(50, 120);
      std::string v;
      for (int i = 0; i < depth; ++i) v += "[";
      for (int i = 0; i < depth; ++i) v += "]";
      return v;
    }
    case 3: {  // random bytes (newline-free so it stays one line)
      const int len = rng.uniform_int(1, 200);
      std::string v;
      for (int i = 0; i < len; ++i) {
        char c = static_cast<char>(rng.uniform_int(1, 255));
        if (c == '\n') c = ' ';
        v += c;
      }
      return v;
    }
    case 4:
      return "{\"id\":\"t" + std::to_string(index) + "\",\"cmd\":";
    default:
      return "nul";  // keyword prefix
  }
}

}  // namespace

std::string make_traffic_line(util::Rng& rng, int index,
                              const TrafficOptions& opts) {
  // Repeats replay an earlier index's request parameters from a derived
  // seed; only the id differs, and the id is not part of the cache key.
  const int roll = rng.uniform_int(0, 99);
  int band = opts.pct_malformed;
  if (roll < band) return malformed(rng, index);
  band += opts.pct_bad_schema;
  if (roll < band) return bad_schema(rng, index);
  band += opts.pct_ping;
  if (roll < band)
    return rng.chance(0.3)
               ? "{\"id\":\"t" + std::to_string(index) + "\",\"cmd\":\"stats\"}"
               : "{\"id\":\"t" + std::to_string(index) + "\",\"cmd\":\"ping\"}";
  band += opts.pct_overbudget;
  if (roll < band) return overbudget_select(rng, index);
  band += opts.pct_repeat;
  if (roll < band && index > 0) {
    util::Rng replay(static_cast<std::uint64_t>(rng.uniform_int(0, index - 1)) *
                     0x9e3779b97f4a7c15ull);
    return valid_select(replay, index, opts.rms_mix);
  }
  return valid_select(rng, index, opts.rms_mix);
}

}  // namespace isex::serve
