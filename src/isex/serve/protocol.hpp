// isex::serve — the newline-delimited JSON request/response protocol.
//
// One request per line, one response line per request, always in request
// order. A request names its task set either by benchmark refs (the DFGs and
// the cell library live server-side) or inline — explicit per-task
// configuration curves, or raw DFGs the server runs through the full
// identification pipeline. Decoding is total: every byte stream maps to
// either a validated Request or a structured DecodeError; nothing throws
// past decode_request().
//
//   {"id":"r1","cmd":"select","benchmarks":["crc32","sha"],"u0":1.05,
//    "budget_fraction":0.5,"policy":"edf","node_budget":200000}
//   {"id":"r2","cmd":"select","policy":"rms","area_budget":3.5,
//    "tasks":[{"name":"t0","period":1200,
//              "configs":[[0,900],[2,500]]},
//             {"name":"t1","period":900,
//              "dfg":[{"op":"xor","in":[]},{"op":"add","in":[0]}]}]}
//   {"id":"r3","cmd":"ping"}     {"id":"r4","cmd":"stats"}
//
// Error codes (the `error.code` field of a failure response):
//   parse_error    the line is not well-formed JSON within the limits
//   bad_request    well-formed JSON violating the schema or its ranges
//   too_large      the line exceeds max_request_bytes (body was discarded)
//   overload       admission control rejected the request (queue full);
//                  `retry_after_ms` estimates when to retry
//   shutting_down  the server is draining after SIGTERM/SIGINT
//   internal       a defect — request isolation caught an exception
//
// Worker-pool error codes (only possible with `--workers N`; the error
// object carries extra structured fields):
//   worker_crashed      the worker solving this request died (after the
//                       retry budget); `signal` is the terminating signal
//                       (0 for a plain exit) and `crash_dump` the worker's
//                       flight-recorder dump path when one is configured
//   worker_timeout      the watchdog SIGKILLed a hung solve past its
//                       deadline (budget + grace); same extra fields
//   quarantined         this request content killed poison_kill_threshold
//                       workers and is refused without dispatch
//   worker_unavailable  the restart-storm circuit breaker is open and no
//                       live worker exists; `retry_after_ms` hints at the
//                       cooldown remaining
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "isex/customize/select_edf.hpp"
#include "isex/ir/program.hpp"
#include "isex/robust/outcome.hpp"
#include "isex/rt/simulator.hpp"
#include "isex/rt/task.hpp"
#include "isex/serve/json.hpp"

namespace isex::serve {

enum class ErrorCode {
  kParseError,
  kBadRequest,
  kTooLarge,
  kOverload,
  kShuttingDown,
  kInternal,
  // Worker-pool failure matrix (supervise/; see the header comment).
  kWorkerCrashed,
  kWorkerTimeout,
  kQuarantined,
  kWorkerUnavailable,
};
const char* to_string(ErrorCode c);

/// Schema-level ceilings on what a single request may ask of the server.
/// Budgets above the caps are clamped (and reported), sizes above the caps
/// are rejected — a size says "parse more", a budget says "work more", and
/// only the latter has a graceful partial answer.
struct RequestLimits {
  std::size_t max_request_bytes = 1 << 20;  // per line, pre-parse
  std::size_t max_id_bytes = 128;
  int max_tasks = 16;           // per request (benchmarks or inline)
  int max_configs = 64;         // per inline task curve
  int max_dfg_nodes = 256;      // per inline DFG
  double max_time_budget_seconds = 5.0;
  long max_node_budget = 50'000'000;
  std::size_t max_mem_budget_bytes = std::size_t{1} << 30;
  JsonLimits json;
};

enum class Cmd { kSelect, kPing, kStats, kIntrospect };

/// One task of an inline task set: an explicit configuration curve, or a
/// single-block DFG the server lifts into a curve via the identification
/// pipeline (enumerate -> disjoint pool -> knapsack sweep).
struct TaskSpec {
  std::string name;
  double period = 0;  // cycles; deadline == period
  std::vector<select::Config> configs;  // explicit curve ([area, cycles]...)
  bool has_dfg = false;
  ir::Program program{""};  // single-block program built from "dfg"
};

struct Request {
  std::string id;  // echoed verbatim; "" when absent
  Cmd cmd = Cmd::kPing;
  rt::Policy policy = rt::Policy::kEdf;
  // Task set, exactly one of:
  std::vector<std::string> benchmarks;  // server-side DFG refs, with
  double u0 = 0;                        // software-only utilization (required)
  std::vector<TaskSpec> tasks;          // inline tasks with explicit periods
  // Area constraint, exactly one of:
  bool has_budget_fraction = false;
  double budget_fraction = 0;  // of the task set's Max_Area
  bool has_area_budget = false;
  double area_budget = 0;  // absolute adder-equivalents
  // Per-request execution budget (0 / -1 / 0 = use the server defaults).
  double time_budget_seconds = 0;
  long node_budget = -1;
  std::size_t mem_budget_bytes = 0;
  bool budget_clamped = false;  // some requested budget exceeded the cap
  bool paranoid = false;        // exhaustive certification for this request
};

struct DecodeError {
  ErrorCode code = ErrorCode::kBadRequest;
  std::string message;
  /// The request id when the JSON parsed far enough to yield one, so even a
  /// rejected request gets a correlatable response; "" otherwise.
  std::string id;
};

using DecodeResult = std::variant<Request, DecodeError>;

/// Total function from request bytes to Request-or-error. Never throws.
DecodeResult decode_request(std::string_view line, const RequestLimits& limits);

/// `id` rendered as a JSON value ("..." or null) for response assembly.
std::string render_id(const std::string& id);

/// One failure response line (no trailing newline).
/// retry_after_ms >= 0 adds the overload retry hint; rid != 0 adds the
/// server-assigned request id correlating the response with its
/// flight-recorder records (`isex tail --rid N`).
std::string render_error(const std::string& id, ErrorCode code,
                         const std::string& message, long retry_after_ms = -1,
                         std::uint64_t rid = 0);

/// render_error with extra pre-rendered JSON fields spliced into the error
/// object (e.g. `"signal":9,"crash_dump":"/tmp/d.1234"`). `extra_fields`
/// must be valid JSON members without the surrounding braces; empty adds
/// nothing. The worker-pool failure responses use this to stay structured.
std::string render_error_extra(const std::string& id, ErrorCode code,
                               const std::string& message,
                               const std::string& extra_fields,
                               long retry_after_ms = -1, std::uint64_t rid = 0);

/// The stable `result` object of a successful select response: everything
/// deterministic under a node-budget — status, claims, assignment,
/// certificate — and nothing volatile (wall-clock times, queue depth). The
/// cache stores exactly this string, which is what makes "cache hits are
/// byte-identical to cold solves" a checkable contract.
std::string render_select_result(
    const rt::TaskSet& ts, double area_budget, rt::Policy policy,
    const robust::Outcome<customize::SelectionResult>& out, int shed_rung);

/// Wraps a result object into a full response line (no trailing newline),
/// attaching the volatile envelope fields. rid != 0 adds the
/// flight-recorder correlation id.
std::string render_success(const std::string& id, const std::string& result,
                           bool cache_hit, int queue_depth, double elapsed_ms,
                           long nodes_charged, std::uint64_t rid = 0);

}  // namespace isex::serve
