// isex::serve — deterministic mixed-traffic generation for soak testing.
//
// One seeded stream interleaves every request class the daemon must survive:
// well-formed selects over the small benchmark kernels, pings/stats, over-
// budget selects (tiny node budgets that force truncation or shedding),
// repeated requests (cache hits), and hostile lines — truncated JSON, mutated
// bytes, wrong-schema values, deep nesting, random garbage. The same seed
// always yields the same byte stream, so a soak failure replays exactly.
#pragma once

#include <string>

#include "isex/util/rng.hpp"

namespace isex::serve {

/// Percentages (of 100) for each traffic class; the remainder after the
/// listed classes becomes well-formed select requests.
struct TrafficOptions {
  int pct_malformed = 15;   // syntactically broken JSON / random bytes
  int pct_bad_schema = 10;  // valid JSON violating the request schema
  int pct_overbudget = 15;  // selects with starvation-level budgets
  int pct_repeat = 20;      // exact repeats of an earlier request (cache hits)
  int pct_ping = 5;         // pings + stats probes
  bool rms_mix = true;      // mix RMS policy into the selects
};

/// The i-th request line of the seeded stream (no trailing newline).
std::string make_traffic_line(util::Rng& rng, int index,
                              const TrafficOptions& opts = {});

}  // namespace isex::serve
