// isex::serve — the hardened customization-as-a-service daemon.
//
// A single-threaded request loop over a byte-stream transport (stdin/pipe,
// or a unix socket via run_unix_socket): newline-delimited JSON requests in,
// one response line per request out, always in request order. The solver
// core is single-threaded, so the server's job is not parallelism — it is
// *surviving*: hostile bytes, overload, poisoned requests and signals, with
// the robust/certify/obs layers supplying budgets, witnesses and metrics.
//
// Overload behavior, outermost defense first:
//  1. Transport backpressure. The input buffer and the pending queue are
//     bounded; when both fill, the server simply stops reading and the
//     kernel blocks the sender. Memory is O(queue) no matter what arrives.
//  2. Admission control. A request arriving while queue_capacity admitted
//     requests wait is rejected immediately with error code "overload" and
//     a retry_after_ms hint (EWMA service time x queue depth). The
//     rejection is queued as a pre-rendered tombstone so responses stay in
//     request order.
//  3. Load shedding. Admitted requests solved while the queue is deep are
//     demoted down the graceful-degradation ladder (FallbackOptions::
//     start_rung): depth > shed1_depth skips the exact rung, depth >
//     shed2_depth goes straight to the cheapest rung. Pressure buys latency
//     with optimality-gap, never with queueing or a wedge.
//  4. Per-request budgets. Every solve runs under its own robust::Budget
//     (request values clamped to the server caps, server defaults
//     otherwise), so one adversarial instance cannot starve the queue.
//
// Isolation: each request is decoded by the bounded parser, solved under
// its own budget, certified by the witness checkers, and wrapped in a
// catch-all that turns any escape into an "internal" error response — the
// loop itself never unwinds. Cached results are re-certified against a
// freshly built task set before reuse, so shared state (the cache) can only
// ever serve answers that check out now (see cache.hpp).
//
// Shutdown: SIGTERM/SIGINT (install_signal_handlers) finishes the in-flight
// solve, answers every queued request with "shutting_down", flushes, and
// run() returns 0 — the deterministic clean-drain exit. A second signal
// aborts immediately with exit 128+sig.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include <sys/types.h>

#include "isex/obs/journal.hpp"
#include "isex/obs/metrics.hpp"
#include "isex/robust/budget.hpp"
#include "isex/serve/cache.hpp"
#include "isex/serve/protocol.hpp"

namespace isex::supervise {
class WorkerPool;
}

namespace isex::serve {

struct ServerOptions {
  RequestLimits limits;
  int queue_capacity = 64;  // admitted-but-unsolved requests
  int shed1_depth = 16;     // queue depth above which the exact rung is skipped
  int shed2_depth = 32;     // depth above which only the cheapest rung runs
  /// Per-request execution budget defaults (applied when the request does
  /// not set its own); <= 0 / < 0 / 0 mean unlimited.
  double default_time_budget_seconds = 2.0;
  long default_node_budget = 2'000'000;
  std::size_t default_mem_budget_bytes = std::size_t{256} << 20;
  CacheOptions cache;
  bool paranoid = false;  // exhaustive certification on every request
  /// Periodic introspection flush: every stats_interval_seconds the run()
  /// loop writes the introspect JSON to stats_path via the atomic
  /// temp+rename writer (empty path or interval <= 0 disables it). Readers
  /// always see either the previous complete snapshot or the new one.
  std::string stats_path;
  double stats_interval_seconds = 0;

  // --- process supervision (workers > 0 switches run() to the pre-forked
  // crash-isolated pool; see supervise/pool.hpp and DESIGN.md) -------------
  int workers = 0;  // 0 = solve in-process (the original single-process mode)
  /// Watchdog deadline for a dispatched request: watchdog_seconds when > 0,
  /// else the request's effective time budget (server default / schema cap
  /// as fallbacks), plus the grace. Overdue workers are SIGKILLed.
  double watchdog_seconds = 0;
  double watchdog_grace_seconds = 2.0;
  /// Graceful-drain patience: SIGTERM forwards cancel to workers, waits this
  /// long for in-flight responses, then SIGKILLs the stragglers.
  double drain_timeout_seconds = 5.0;
  /// A request whose processing kills this many workers (crash or watchdog)
  /// is quarantined by content hash and answered with a structured error
  /// instead of being retried forever. Retries before that: threshold - 1.
  int poison_kill_threshold = 2;
  /// Restart-storm circuit breaker: more than breaker_max_respawns worker
  /// respawns inside breaker_window_seconds opens the breaker for
  /// breaker_cooldown_seconds — no respawns, and selects with no live worker
  /// are answered "worker_unavailable" immediately.
  int breaker_max_respawns = 5;
  double breaker_window_seconds = 10.0;
  double breaker_cooldown_seconds = 5.0;
  /// Chaos mode (--chaos p): workers randomly abort/segfault/hang/leak with
  /// this probability, decided deterministically per request content (see
  /// supervise/chaos.hpp). Production value: 0.
  double chaos_probability = 0;
  std::uint64_t chaos_seed = 20070613;
  /// Per-worker rlimits applied after fork; 0 disables a limit. RLIMIT_AS is
  /// skipped automatically under asan/tsan/msan (shadow mappings).
  std::size_t worker_mem_limit_bytes = std::size_t{4} << 30;  // RLIMIT_AS
  long worker_cpu_limit_seconds = 600;                        // RLIMIT_CPU
  long worker_nofile_limit = 64;                              // RLIMIT_NOFILE
  /// Crash-dump base path forwarded to workers: each process dumps its
  /// flight recorder to `<path>.<pid>` (see obs::set_crash_dump_path).
  std::string crash_dump_path;
};

/// Monotonic counters the stats command and the drain summary report.
struct ServerStats {
  std::uint64_t lines_in = 0;
  std::uint64_t accepted = 0;
  std::uint64_t rejected_overload = 0;
  std::uint64_t rejected_too_large = 0;
  std::uint64_t parse_errors = 0;
  std::uint64_t bad_requests = 0;
  std::uint64_t solved = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_poisoned = 0;
  std::uint64_t shed_demotions = 0;
  std::uint64_t degraded = 0;  // responses with a non-Exact status
  std::uint64_t internal_errors = 0;
  std::uint64_t drained = 0;  // queued requests answered "shutting_down"
  // Worker-pool lifecycle (always present; all zero when workers == 0).
  std::uint64_t dispatched = 0;        // frames sent to workers
  std::uint64_t worker_crashes = 0;    // workers that died (signal or exit)
  std::uint64_t worker_timeouts = 0;   // watchdog SIGKILLs of hung solves
  std::uint64_t worker_respawns = 0;   // replacement workers forked
  std::uint64_t requests_retried = 0;  // re-dispatches after a worker death
  std::uint64_t quarantined = 0;       // poison requests quarantined
  std::uint64_t quarantine_hits = 0;   // requests rejected as quarantined
  std::uint64_t breaker_opens = 0;     // circuit-breaker open transitions
  std::uint64_t breaker_rejected = 0;  // "worker_unavailable" responses
};

/// Everything the worker side needs to report about the response it just
/// produced, without the supervisor re-parsing the JSON (becomes the
/// supervise::ResponseHeader of the reply frame).
struct ResponseMeta {
  obs::Disposition disposition = obs::Disposition::kError;
  bool is_admin = false;
  bool degraded = false;   // solver status was not Exact
  bool shed = false;       // solved from a demoted rung
  std::uint8_t error_kind = 0;  // 0 = ok, else ErrorCode + 1
  long nodes_charged = 0;
  /// The stable `result` object of a successful select (what the cache
  /// stores); empty when the response is not cacheable.
  std::string result_json;
};

class Server {
 public:
  explicit Server(const ServerOptions& opts);
  ~Server();  // shuts the worker pool down, if one was started

  /// Serves one byte stream until EOF or a pending signal; responses go to
  /// out_fd. Returns 0 on clean EOF or graceful drain, 2 on a transport
  /// write error. Reentrant across streams — the cache, stats and worker
  /// pool persist, per-stream state resets. With opts.workers > 0 requests
  /// are dispatched to the crash-isolated pool (run_pooled); otherwise they
  /// are solved in-process.
  int run(int in_fd, int out_fd);

  /// In-process entry point (tests, fuzzing, soak, and the worker loop):
  /// decodes and handles one request line, returning the response line (no
  /// trailing newline). Never throws. `queue_depth` simulates admitted
  /// pressure for the shedding policy. rid != 0 uses the caller-assigned
  /// flight-recorder id (the supervisor's) instead of allocating one.
  std::string handle_line(std::string_view line, int queue_depth = 0,
                          std::uint64_t rid = 0);

  /// Metadata of the last handle_line response (worker -> supervisor frame).
  const ResponseMeta& last_meta() const { return meta_; }

  const ServerStats& stats() const { return stats_; }
  const ResultCache& cache() const { return cache_; }
  const ServerOptions& options() const { return opts_; }

  /// Live worker pids (empty when workers == 0 or the pool has not started).
  /// Test/introspection surface for killing and inspecting real workers.
  std::vector<pid_t> worker_pids() const;

  /// The introspect payload: the stats object plus the full obs metrics
  /// registry, flight-recorder state and the effective server options.
  /// Exposed for the periodic flush and tests.
  std::string render_introspect(int queue_depth) const;

 private:
  struct PendingEntry {
    bool preformed = false;  // true: `text` is a ready response line
    std::string text;        // raw request line, or the response
  };

  /// One ordered slot of the pooled dispatch loop: a request travelling
  /// through classification -> dispatch -> worker -> response, or a response
  /// that is already final. Responses are flushed strictly from the front so
  /// the in-order contract survives out-of-order worker completion.
  struct InflightEntry {
    bool done = false;
    std::string text;  // request line until done, then the response line
    std::uint64_t rid = 0;
    std::uint64_t line_hash = 0;  // content hash (cache + quarantine key)
    std::string id;               // extracted correlation id
    int worker = -1;              // dispatched worker index; -1 = queued
    int depth_at_dispatch = 0;
    std::int64_t t0_ns = 0;
    double watchdog_seconds = 0;  // effective per-request deadline span
  };

  // Input pumping and admission (defense layers 1 and 2).
  void pump_input();
  void split_lines();
  void ingest_line(std::string line);
  std::string extract_id(std::string_view line) const;
  long retry_after_ms() const;
  int admitted_depth() const { return admitted_; }

  // Request handling (defense layers 3 and 4).
  int shed_rung_for_depth(int depth) const;
  std::string handle_request(const Request& req, int queue_depth,
                             std::uint64_t rid);
  std::string handle_select(const Request& req, int queue_depth,
                            std::uint64_t rid);
  std::string render_stats(const std::string& id, int queue_depth) const;

  /// Records the finished request into the per-disposition latency
  /// histograms and the flight recorder (one kResponse record per response).
  void note_response(obs::Disposition d, std::int64_t dur_ns,
                     std::size_t response_bytes);
  void maybe_flush_stats();

  void drain_queue();
  bool write_line(int out_fd, std::string_view line);

  // --- pooled mode (serve/pooled.cpp) -----------------------------------
  /// The supervisor event loop: admission + classification in-process,
  /// decode/solve/certify dispatched to the worker pool, full failure
  /// matrix (crash, hang, poison, restart storm) handled here.
  int run_pooled(int in_fd, int out_fd);

  ServerOptions opts_;
  ResultCache cache_;
  ServerStats stats_;
  double ewma_service_ms_ = 5.0;

  // Request ids are the flight-recorder correlation key: assigned by the
  // server itself (not obs) so responses are identical with and without
  // ISEX_NO_OBS. rid 0 is reserved for "no request".
  std::uint64_t next_rid_ = 0;
  // The disposition of the response being assembled (set by the handlers,
  // consumed by handle_line); single-threaded by design.
  obs::Disposition last_disposition_ = obs::Disposition::kError;
  bool last_is_admin_ = false;  // ping/stats/introspect: excluded from the
                                // per-disposition latency histograms
  ResponseMeta meta_;           // full metadata of the last handle_line

  // Pooled mode only: the worker pool (lazily started by run_pooled, torn
  // down by the destructor so the pool survives across streams like the
  // cache does) and the ordered in-flight window.
  std::unique_ptr<supervise::WorkerPool> pool_;
  std::deque<InflightEntry> inflight_;

  // Request latency in microseconds, total and per disposition. These are
  // direct obs::Histogram members (not registry macros) so the `stats`
  // response is bit-identical between ISEX_NO_OBS builds — the classes are
  // always compiled; only instrumentation macros vanish.
  obs::Histogram lat_total_, lat_exact_, lat_degraded_, lat_shed_,
      lat_cached_, lat_error_;

  std::int64_t last_flush_ns_ = 0;

  // Per-stream state (reset by run()).
  int in_fd_ = -1, out_fd_ = -1;
  std::string inbuf_;
  bool discarding_ = false;  // inside an oversized line, dropping until '\n'
  bool eof_ = false;
  bool write_failed_ = false;
  std::deque<PendingEntry> pending_;
  int admitted_ = 0;
};

/// Accept loop for `isex serve --socket PATH`: binds a unix stream socket
/// (replacing any stale file), serves connections one at a time with the
/// same Server (shared cache), and drains on SIGTERM/SIGINT. Returns 0 on
/// graceful shutdown, 2 on socket errors.
int run_unix_socket(Server& server, const std::string& path);

/// Installs the graceful-shutdown handlers: first SIGINT/SIGTERM sets the
/// pending-signal flag and requests global solver cancellation
/// (robust::request_global_cancel), a second one force-exits 128+sig.
/// SIGPIPE is ignored so a vanished client surfaces as a write error, not
/// process death. Call once from main(), never from tests.
void install_signal_handlers();

/// The signal recorded by the handler, or 0. consume clears it (used by the
/// one-shot CLI to map an interruption to exit 128+sig exactly once).
int pending_signal();
int consume_pending_signal();

}  // namespace isex::serve
