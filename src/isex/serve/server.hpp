// isex::serve — the hardened customization-as-a-service daemon.
//
// A single-threaded request loop over a byte-stream transport (stdin/pipe,
// or a unix socket via run_unix_socket): newline-delimited JSON requests in,
// one response line per request out, always in request order. The solver
// core is single-threaded, so the server's job is not parallelism — it is
// *surviving*: hostile bytes, overload, poisoned requests and signals, with
// the robust/certify/obs layers supplying budgets, witnesses and metrics.
//
// Overload behavior, outermost defense first:
//  1. Transport backpressure. The input buffer and the pending queue are
//     bounded; when both fill, the server simply stops reading and the
//     kernel blocks the sender. Memory is O(queue) no matter what arrives.
//  2. Admission control. A request arriving while queue_capacity admitted
//     requests wait is rejected immediately with error code "overload" and
//     a retry_after_ms hint (EWMA service time x queue depth). The
//     rejection is queued as a pre-rendered tombstone so responses stay in
//     request order.
//  3. Load shedding. Admitted requests solved while the queue is deep are
//     demoted down the graceful-degradation ladder (FallbackOptions::
//     start_rung): depth > shed1_depth skips the exact rung, depth >
//     shed2_depth goes straight to the cheapest rung. Pressure buys latency
//     with optimality-gap, never with queueing or a wedge.
//  4. Per-request budgets. Every solve runs under its own robust::Budget
//     (request values clamped to the server caps, server defaults
//     otherwise), so one adversarial instance cannot starve the queue.
//
// Isolation: each request is decoded by the bounded parser, solved under
// its own budget, certified by the witness checkers, and wrapped in a
// catch-all that turns any escape into an "internal" error response — the
// loop itself never unwinds. Cached results are re-certified against a
// freshly built task set before reuse, so shared state (the cache) can only
// ever serve answers that check out now (see cache.hpp).
//
// Shutdown: SIGTERM/SIGINT (install_signal_handlers) finishes the in-flight
// solve, answers every queued request with "shutting_down", flushes, and
// run() returns 0 — the deterministic clean-drain exit. A second signal
// aborts immediately with exit 128+sig.
#pragma once

#include <cstdint>
#include <deque>
#include <string>

#include "isex/obs/journal.hpp"
#include "isex/obs/metrics.hpp"
#include "isex/robust/budget.hpp"
#include "isex/serve/cache.hpp"
#include "isex/serve/protocol.hpp"

namespace isex::serve {

struct ServerOptions {
  RequestLimits limits;
  int queue_capacity = 64;  // admitted-but-unsolved requests
  int shed1_depth = 16;     // queue depth above which the exact rung is skipped
  int shed2_depth = 32;     // depth above which only the cheapest rung runs
  /// Per-request execution budget defaults (applied when the request does
  /// not set its own); <= 0 / < 0 / 0 mean unlimited.
  double default_time_budget_seconds = 2.0;
  long default_node_budget = 2'000'000;
  std::size_t default_mem_budget_bytes = std::size_t{256} << 20;
  CacheOptions cache;
  bool paranoid = false;  // exhaustive certification on every request
  /// Periodic introspection flush: every stats_interval_seconds the run()
  /// loop writes the introspect JSON to stats_path via the atomic
  /// temp+rename writer (empty path or interval <= 0 disables it). Readers
  /// always see either the previous complete snapshot or the new one.
  std::string stats_path;
  double stats_interval_seconds = 0;
};

/// Monotonic counters the stats command and the drain summary report.
struct ServerStats {
  std::uint64_t lines_in = 0;
  std::uint64_t accepted = 0;
  std::uint64_t rejected_overload = 0;
  std::uint64_t rejected_too_large = 0;
  std::uint64_t parse_errors = 0;
  std::uint64_t bad_requests = 0;
  std::uint64_t solved = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_poisoned = 0;
  std::uint64_t shed_demotions = 0;
  std::uint64_t degraded = 0;  // responses with a non-Exact status
  std::uint64_t internal_errors = 0;
  std::uint64_t drained = 0;  // queued requests answered "shutting_down"
};

class Server {
 public:
  explicit Server(const ServerOptions& opts);

  /// Serves one byte stream until EOF or a pending signal; responses go to
  /// out_fd. Returns 0 on clean EOF or graceful drain, 2 on a transport
  /// write error. Reentrant across streams — the cache and stats persist,
  /// per-stream state resets.
  int run(int in_fd, int out_fd);

  /// In-process entry point (tests, fuzzing, soak): decodes and handles one
  /// request line, returning the response line (no trailing newline). Never
  /// throws. `queue_depth` simulates admitted pressure for the shedding
  /// policy.
  std::string handle_line(std::string_view line, int queue_depth = 0);

  const ServerStats& stats() const { return stats_; }
  const ResultCache& cache() const { return cache_; }

  /// The introspect payload: the stats object plus the full obs metrics
  /// registry, flight-recorder state and the effective server options.
  /// Exposed for the periodic flush and tests.
  std::string render_introspect(int queue_depth) const;

 private:
  struct PendingEntry {
    bool preformed = false;  // true: `text` is a ready response line
    std::string text;        // raw request line, or the response
  };

  // Input pumping and admission (defense layers 1 and 2).
  void pump_input();
  void split_lines();
  void ingest_line(std::string line);
  std::string extract_id(std::string_view line) const;
  long retry_after_ms() const;
  int admitted_depth() const { return admitted_; }

  // Request handling (defense layers 3 and 4).
  int shed_rung_for_depth(int depth) const;
  std::string handle_request(const Request& req, int queue_depth,
                             std::uint64_t rid);
  std::string handle_select(const Request& req, int queue_depth,
                            std::uint64_t rid);
  std::string render_stats(const std::string& id, int queue_depth) const;

  /// Records the finished request into the per-disposition latency
  /// histograms and the flight recorder (one kResponse record per response).
  void note_response(obs::Disposition d, std::int64_t dur_ns,
                     std::size_t response_bytes);
  void maybe_flush_stats();

  void drain_queue();
  bool write_line(int out_fd, std::string_view line);

  ServerOptions opts_;
  ResultCache cache_;
  ServerStats stats_;
  double ewma_service_ms_ = 5.0;

  // Request ids are the flight-recorder correlation key: assigned by the
  // server itself (not obs) so responses are identical with and without
  // ISEX_NO_OBS. rid 0 is reserved for "no request".
  std::uint64_t next_rid_ = 0;
  // The disposition of the response being assembled (set by the handlers,
  // consumed by handle_line); single-threaded by design.
  obs::Disposition last_disposition_ = obs::Disposition::kError;
  bool last_is_admin_ = false;  // ping/stats/introspect: excluded from the
                                // per-disposition latency histograms

  // Request latency in microseconds, total and per disposition. These are
  // direct obs::Histogram members (not registry macros) so the `stats`
  // response is bit-identical between ISEX_NO_OBS builds — the classes are
  // always compiled; only instrumentation macros vanish.
  obs::Histogram lat_total_, lat_exact_, lat_degraded_, lat_shed_,
      lat_cached_, lat_error_;

  std::int64_t last_flush_ns_ = 0;

  // Per-stream state (reset by run()).
  int in_fd_ = -1, out_fd_ = -1;
  std::string inbuf_;
  bool discarding_ = false;  // inside an oversized line, dropping until '\n'
  bool eof_ = false;
  bool write_failed_ = false;
  std::deque<PendingEntry> pending_;
  int admitted_ = 0;
};

/// Accept loop for `isex serve --socket PATH`: binds a unix stream socket
/// (replacing any stale file), serves connections one at a time with the
/// same Server (shared cache), and drains on SIGTERM/SIGINT. Returns 0 on
/// graceful shutdown, 2 on socket errors.
int run_unix_socket(Server& server, const std::string& path);

/// Installs the graceful-shutdown handlers: first SIGINT/SIGTERM sets the
/// pending-signal flag and requests global solver cancellation
/// (robust::request_global_cancel), a second one force-exits 128+sig.
/// SIGPIPE is ignored so a vanished client surfaces as a write error, not
/// process death. Call once from main(), never from tests.
void install_signal_handlers();

/// The signal recorded by the handler, or 0. consume clears it (used by the
/// one-shot CLI to map an interruption to exit 128+sig exactly once).
int pending_signal();
int consume_pending_signal();

}  // namespace isex::serve
