// isex::serve — content-addressed result cache with certified reuse.
//
// The serving scale lever: design-space-exploration clients issue the same
// (task set, constraints, budget) query over and over, and a solve is
// milliseconds-to-seconds while a lookup is nanoseconds. Keys are FNV-1a
// hashes over a canonical serialization of *everything that determines the
// answer* — per-task configuration curves (which encode the DFG + cell
// library), periods, the area constraint, policy, the effective execution
// budget and the shedding rung — so two requests collide only when a cold
// solve would be expected to produce the same result object.
//
// Reuse is never blind: before a hit is served, the stored selection is
// re-certified by the independent witness checkers (certify::) against a
// freshly built task set. A corrupted entry — bit rot, a poisoned request
// that somehow scribbled on shared state, a stale curve — fails its
// certificate, is evicted, and the request falls through to a cold solve.
// That is the per-request isolation contract: the cache can only ever
// return answers that check out *now*, not answers that checked out once.
#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <string>
#include <unordered_map>

#include "isex/customize/select_rms.hpp"
#include "isex/rt/simulator.hpp"
#include "isex/rt/task.hpp"

namespace isex::serve {

/// 64-bit FNV-1a over arbitrary bytes; the building block of cache keys.
std::uint64_t fnv1a(const void* data, std::size_t len,
                    std::uint64_t seed = 0xcbf29ce484222325ull);
std::uint64_t fnv1a_str(const std::string& s, std::uint64_t seed);
std::uint64_t fnv1a_f64(double v, std::uint64_t seed);
std::uint64_t fnv1a_u64(std::uint64_t v, std::uint64_t seed);

/// The canonical key of a select request (see file comment for what it
/// covers). Curves are hashed point by point, so an inline task set and a
/// benchmark ref producing identical curves share cache entries.
std::uint64_t select_cache_key(const rt::TaskSet& ts, double area_budget,
                               rt::Policy policy, double time_budget_seconds,
                               long node_budget, std::size_t mem_budget_bytes,
                               bool paranoid, int shed_rung);

struct CacheOptions {
  std::size_t max_entries = 512;
  std::size_t max_bytes = 32u << 20;  // accounted rendered-result bytes
};

class ResultCache {
 public:
  struct Entry {
    std::string result_json;  // rendered stable `result` object
    /// Stored claims for revalidation; `rms` selects the checker family.
    customize::RmsResult selection;
    bool rms = false;
    long nodes_charged = 0;  // of the cold solve (echoed on hits)
  };

  explicit ResultCache(const CacheOptions& opts) : opts_(opts) {}

  /// LRU-touching lookup; nullptr on miss. The pointer stays valid until the
  /// next insert()/erase().
  const Entry* find(std::uint64_t key);
  void insert(std::uint64_t key, Entry entry);
  /// Drops a poisoned entry (certificate failed on reuse).
  void erase(std::uint64_t key);

  std::size_t entries() const { return map_.size(); }
  std::size_t bytes() const { return bytes_; }
  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }
  std::uint64_t evictions() const { return evictions_; }
  std::uint64_t poisoned() const { return poisoned_; }

 private:
  bool remove(std::uint64_t key);
  void evict_lru();

  CacheOptions opts_;
  std::list<std::pair<std::uint64_t, Entry>> lru_;  // front = most recent
  std::unordered_map<std::uint64_t,
                     std::list<std::pair<std::uint64_t, Entry>>::iterator>
      map_;
  std::size_t bytes_ = 0;
  std::uint64_t hits_ = 0, misses_ = 0, evictions_ = 0, poisoned_ = 0;
};

}  // namespace isex::serve
