#include "isex/serve/cache.hpp"

#include <cstring>

#include "isex/obs/metrics.hpp"

namespace isex::serve {

std::uint64_t fnv1a(const void* data, std::size_t len, std::uint64_t seed) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t h = seed;
  for (std::size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ull;
  }
  return h;
}

std::uint64_t fnv1a_str(const std::string& s, std::uint64_t seed) {
  // Length-prefix so adjacent fields can't alias ("ab","c" vs "a","bc").
  const std::uint64_t n = s.size();
  seed = fnv1a(&n, sizeof n, seed);
  return fnv1a(s.data(), s.size(), seed);
}

std::uint64_t fnv1a_f64(double v, std::uint64_t seed) {
  std::uint64_t bits = 0;
  static_assert(sizeof bits == sizeof v);
  std::memcpy(&bits, &v, sizeof bits);
  return fnv1a(&bits, sizeof bits, seed);
}

std::uint64_t fnv1a_u64(std::uint64_t v, std::uint64_t seed) {
  return fnv1a(&v, sizeof v, seed);
}

std::uint64_t select_cache_key(const rt::TaskSet& ts, double area_budget,
                               rt::Policy policy, double time_budget_seconds,
                               long node_budget, std::size_t mem_budget_bytes,
                               bool paranoid, int shed_rung) {
  std::uint64_t h = fnv1a_str("isex.serve.select.v1", 0xcbf29ce484222325ull);
  h = fnv1a_u64(policy == rt::Policy::kRms ? 1 : 0, h);
  h = fnv1a_f64(area_budget, h);
  h = fnv1a_f64(time_budget_seconds, h);
  h = fnv1a_u64(static_cast<std::uint64_t>(node_budget < 0 ? -1 : node_budget),
                h);
  h = fnv1a_u64(mem_budget_bytes, h);
  h = fnv1a_u64((paranoid ? 2u : 0u) |
                    (static_cast<unsigned>(shed_rung) << 8),
                h);
  h = fnv1a_u64(ts.size(), h);
  for (const rt::Task& t : ts.tasks) {
    h = fnv1a_str(t.name, h);
    h = fnv1a_f64(t.period, h);
    h = fnv1a_u64(t.configs.size(), h);
    for (const auto& c : t.configs) {
      h = fnv1a_f64(c.area, h);
      h = fnv1a_f64(c.cycles, h);
    }
  }
  return h;
}

const ResultCache::Entry* ResultCache::find(std::uint64_t key) {
  const auto it = map_.find(key);
  if (it == map_.end()) {
    ++misses_;
    ISEX_COUNT("serve.cache.misses");
    return nullptr;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  ++hits_;
  ISEX_COUNT("serve.cache.hits");
  return &it->second->second;
}

void ResultCache::insert(std::uint64_t key, Entry entry) {
  remove(key);
  bytes_ += entry.result_json.size();
  lru_.emplace_front(key, std::move(entry));
  map_[key] = lru_.begin();
  while (map_.size() > opts_.max_entries || bytes_ > opts_.max_bytes) {
    if (lru_.size() <= 1) break;  // always keep the newest entry
    evict_lru();
  }
  ISEX_GAUGE_SET("serve.cache.entries", map_.size());
  ISEX_GAUGE_SET("serve.cache.bytes", bytes_);
}

void ResultCache::erase(std::uint64_t key) {
  if (remove(key)) {
    ++poisoned_;  // the only caller of public erase() is poison eviction
    ISEX_COUNT("serve.cache.poisoned");
  }
}

bool ResultCache::remove(std::uint64_t key) {
  const auto it = map_.find(key);
  if (it == map_.end()) return false;
  bytes_ -= it->second->second.result_json.size();
  lru_.erase(it->second);
  map_.erase(it);
  return true;
}

void ResultCache::evict_lru() {
  auto& [key, entry] = lru_.back();
  bytes_ -= entry.result_json.size();
  map_.erase(key);
  lru_.pop_back();
  ++evictions_;
  ISEX_COUNT("serve.cache.evictions");
}

}  // namespace isex::serve
