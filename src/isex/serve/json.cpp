#include "isex/serve/json.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "isex/obs/metrics.hpp"

namespace isex::serve {

const Json* Json::find(std::string_view key) const {
  if (type_ != Type::kObject) return nullptr;
  const Json* found = nullptr;
  for (const auto& [k, v] : obj_)
    if (k == key) found = &v;
  return found;
}

Json Json::make_bool(bool b) {
  Json j;
  j.type_ = Type::kBool;
  j.bool_ = b;
  return j;
}

Json Json::make_number(double v) {
  Json j;
  j.type_ = Type::kNumber;
  j.num_ = v;
  return j;
}

Json Json::make_string(std::string s) {
  Json j;
  j.type_ = Type::kString;
  j.str_ = std::move(s);
  return j;
}

Json Json::make_array(std::vector<Json> items) {
  Json j;
  j.type_ = Type::kArray;
  j.arr_ = std::move(items);
  return j;
}

Json Json::make_object(std::vector<std::pair<std::string, Json>> members) {
  Json j;
  j.type_ = Type::kObject;
  j.obj_ = std::move(members);
  return j;
}

namespace {

/// Returns the byte length of the valid UTF-8 sequence starting at s[pos]
/// (lead byte >= 0x80), or 0 if the bytes there are not well-formed UTF-8
/// (truncated, stray continuation, overlong, surrogate, or beyond U+10FFFF).
std::size_t valid_utf8_len(std::string_view s, std::size_t pos) {
  const unsigned char lead = static_cast<unsigned char>(s[pos]);
  std::size_t extra;
  unsigned cp;
  if (lead >= 0xC2 && lead <= 0xDF) {
    extra = 1;
    cp = lead & 0x1Fu;
  } else if (lead >= 0xE0 && lead <= 0xEF) {
    extra = 2;
    cp = lead & 0x0Fu;
  } else if (lead >= 0xF0 && lead <= 0xF4) {
    extra = 3;
    cp = lead & 0x07u;
  } else {
    return 0;  // 0x80..0xBF stray continuation, 0xC0/0xC1 overlong, 0xF5+.
  }
  if (pos + 1 + extra > s.size()) return 0;
  for (std::size_t i = 1; i <= extra; ++i) {
    const unsigned char cont = static_cast<unsigned char>(s[pos + i]);
    if ((cont & 0xC0u) != 0x80u) return 0;
    cp = (cp << 6) | (cont & 0x3Fu);
  }
  if ((extra == 2 && cp < 0x800) || (extra == 3 && cp < 0x10000)) return 0;
  if (cp >= 0xD800 && cp <= 0xDFFF) return 0;
  if (cp > 0x10FFFF) return 0;
  return 1 + extra;
}

/// Recursive-descent parser over a bounded input. Depth is bounded by
/// limits.max_depth, so the recursion can never exhaust the stack; the value
/// and string budgets bound heap growth. All errors carry the byte offset.
class Parser {
 public:
  Parser(std::string_view text, const JsonLimits& limits)
      : text_(text), limits_(limits) {}

  JsonParseResult run() {
    JsonParseResult r;
    skip_ws();
    // Depth is 1-based: the top-level value sits at depth 1, so a document
    // nested max_depth levels deep parses and max_depth + 1 is rejected.
    if (!parse_value(r.value, 1)) {
      r.error = error_;
      return r;
    }
    skip_ws();
    if (pos_ != text_.size()) {
      r.error = at("trailing garbage after JSON value");
      r.value = Json();
      return r;
    }
    return r;
  }

 private:
  std::string at(const std::string& what) {
    return what + " (byte " + std::to_string(pos_) + ")";
  }

  bool fail(const std::string& what) {
    if (error_.empty()) error_ = at(what);
    return false;
  }

  bool eof() const { return pos_ >= text_.size(); }
  char peek() const { return text_[pos_]; }

  void skip_ws() {
    while (!eof()) {
      const char c = peek();
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r')
        ++pos_;
      else
        break;
    }
  }

  bool charge_value() {
    if (++values_ > limits_.max_values)
      return fail("too many values (limit " +
                  std::to_string(limits_.max_values) + ")");
    return true;
  }

  bool parse_value(Json& out, int depth) {
    if (depth > limits_.max_depth)
      return fail("nesting deeper than " + std::to_string(limits_.max_depth));
    if (eof()) return fail("unexpected end of input");
    if (!charge_value()) return false;
    switch (peek()) {
      case '{': return parse_object(out, depth);
      case '[': return parse_array(out, depth);
      case '"': {
        std::string s;
        if (!parse_string(s)) return false;
        out = Json::make_string(std::move(s));
        return true;
      }
      case 't': return parse_literal("true", Json::make_bool(true), out);
      case 'f': return parse_literal("false", Json::make_bool(false), out);
      case 'n': return parse_literal("null", Json::make_null(), out);
      default: return parse_number(out);
    }
  }

  bool parse_literal(std::string_view lit, Json value, Json& out) {
    if (text_.substr(pos_, lit.size()) != lit)
      return fail("invalid literal");
    pos_ += lit.size();
    out = std::move(value);
    return true;
  }

  bool parse_object(Json& out, int depth) {
    ++pos_;  // '{'
    std::vector<std::pair<std::string, Json>> members;
    skip_ws();
    if (!eof() && peek() == '}') {
      ++pos_;
      out = Json::make_object(std::move(members));
      return true;
    }
    while (true) {
      skip_ws();
      if (eof() || peek() != '"') return fail("expected object key string");
      std::string key;
      if (!parse_string(key)) return false;
      skip_ws();
      if (eof() || peek() != ':') return fail("expected ':' after object key");
      ++pos_;
      skip_ws();
      Json v;
      if (!parse_value(v, depth + 1)) return false;
      members.emplace_back(std::move(key), std::move(v));
      skip_ws();
      if (eof()) return fail("unterminated object");
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == '}') {
        ++pos_;
        out = Json::make_object(std::move(members));
        return true;
      }
      return fail("expected ',' or '}' in object");
    }
  }

  bool parse_array(Json& out, int depth) {
    ++pos_;  // '['
    std::vector<Json> items;
    skip_ws();
    if (!eof() && peek() == ']') {
      ++pos_;
      out = Json::make_array(std::move(items));
      return true;
    }
    while (true) {
      skip_ws();
      Json v;
      if (!parse_value(v, depth + 1)) return false;
      items.push_back(std::move(v));
      skip_ws();
      if (eof()) return fail("unterminated array");
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == ']') {
        ++pos_;
        out = Json::make_array(std::move(items));
        return true;
      }
      return fail("expected ',' or ']' in array");
    }
  }

  bool append_utf8(std::string& s, unsigned cp) {
    if (cp < 0x80) {
      s += static_cast<char>(cp);
    } else if (cp < 0x800) {
      s += static_cast<char>(0xC0 | (cp >> 6));
      s += static_cast<char>(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
      s += static_cast<char>(0xE0 | (cp >> 12));
      s += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      s += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      s += static_cast<char>(0xF0 | (cp >> 18));
      s += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
      s += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      s += static_cast<char>(0x80 | (cp & 0x3F));
    }
    return true;
  }

  /// Validates and copies one raw multi-byte UTF-8 sequence starting at pos_.
  /// Rejects truncated sequences, stray continuation bytes, overlong
  /// encodings, surrogate code points, and anything above U+10FFFF, so every
  /// accepted string is well-formed UTF-8 end to end.
  bool copy_utf8_sequence(std::string& out) {
    const std::size_t len = valid_utf8_len(text_, pos_);
    if (len == 0) return fail("invalid UTF-8 sequence in string");
    out.append(text_.substr(pos_, len));
    pos_ += len;
    return true;
  }

  bool parse_hex4(unsigned& out) {
    if (pos_ + 4 > text_.size()) return fail("truncated \\u escape");
    unsigned v = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_ + static_cast<std::size_t>(i)];
      v <<= 4;
      if (c >= '0' && c <= '9') v |= static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f') v |= static_cast<unsigned>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') v |= static_cast<unsigned>(c - 'A' + 10);
      else return fail("invalid \\u escape digit");
    }
    pos_ += 4;
    out = v;
    return true;
  }

  bool parse_string(std::string& out) {
    ++pos_;  // '"'
    out.clear();
    while (true) {
      if (eof()) return fail("unterminated string");
      if (out.size() > limits_.max_string_bytes)
        return fail("string longer than " +
                    std::to_string(limits_.max_string_bytes) + " bytes");
      const unsigned char c = static_cast<unsigned char>(text_[pos_]);
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c < 0x20) return fail("raw control character in string");
      if (c != '\\') {
        if (c < 0x80) {
          out += static_cast<char>(c);
          ++pos_;
        } else if (!copy_utf8_sequence(out)) {
          return false;
        }
        continue;
      }
      ++pos_;  // '\'
      if (eof()) return fail("truncated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          unsigned cp = 0;
          if (!parse_hex4(cp)) return false;
          if (cp >= 0xD800 && cp <= 0xDBFF) {  // high surrogate
            if (pos_ + 2 > text_.size() || text_[pos_] != '\\' ||
                text_[pos_ + 1] != 'u')
              return fail("lone high surrogate");
            pos_ += 2;
            unsigned lo = 0;
            if (!parse_hex4(lo)) return false;
            if (lo < 0xDC00 || lo > 0xDFFF)
              return fail("invalid low surrogate");
            cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            return fail("lone low surrogate");
          }
          append_utf8(out, cp);
          break;
        }
        default: return fail("invalid escape character");
      }
    }
  }

  bool parse_number(Json& out) {
    const std::size_t start = pos_;
    if (!eof() && peek() == '-') ++pos_;
    // Integer part: 0, or [1-9][0-9]* (leading zeros rejected).
    if (eof() || peek() < '0' || peek() > '9')
      return fail("invalid number");
    if (peek() == '0') {
      ++pos_;
    } else {
      while (!eof() && peek() >= '0' && peek() <= '9') ++pos_;
    }
    if (!eof() && peek() == '.') {
      ++pos_;
      if (eof() || peek() < '0' || peek() > '9')
        return fail("digit required after decimal point");
      while (!eof() && peek() >= '0' && peek() <= '9') ++pos_;
    }
    if (!eof() && (peek() == 'e' || peek() == 'E')) {
      ++pos_;
      if (!eof() && (peek() == '+' || peek() == '-')) ++pos_;
      if (eof() || peek() < '0' || peek() > '9')
        return fail("digit required in exponent");
      while (!eof() && peek() >= '0' && peek() <= '9') ++pos_;
    }
    // The token is already validated against the strict grammar; strtod on a
    // bounded copy only converts. A huge token (4k digits) is legal JSON but
    // pointless — bound the conversion buffer.
    const std::size_t len = pos_ - start;
    if (len > 512) return fail("number token longer than 512 bytes");
    const std::string tok(text_.substr(start, len));
    char* end = nullptr;
    const double v = std::strtod(tok.c_str(), &end);
    if (end != tok.c_str() + tok.size()) return fail("invalid number");
    if (!std::isfinite(v)) return fail("number overflows double");
    out = Json::make_number(v);
    return true;
  }

  std::string_view text_;
  const JsonLimits& limits_;
  std::size_t pos_ = 0;
  long values_ = 0;
  std::string error_;
};

}  // namespace

JsonParseResult json_parse(std::string_view text, const JsonLimits& limits) {
  JsonParseResult r = Parser(text, limits).run();
  if (!r.ok()) ISEX_COUNT("serve.json.parse_errors");
  return r;
}

std::string json_quote(std::string_view s) {
  // Escapes controls and quotes, and sanitizes the bytes: any sequence that
  // is not well-formed UTF-8 becomes U+FFFD. Renderings routinely echo
  // attacker-supplied request bytes (ids, messages); sanitizing here
  // guarantees the server's own output always re-parses under the same
  // strict parser clients use, no matter what arrived on the wire.
  std::string out;
  out.reserve(s.size() + 2);
  out += '"';
  std::size_t i = 0;
  while (i < s.size()) {
    const unsigned char c = static_cast<unsigned char>(s[i]);
    if (c == '"') {
      out += "\\\"";
      ++i;
    } else if (c == '\\') {
      out += "\\\\";
      ++i;
    } else if (c < 0x20) {
      switch (c) {
        case '\b': out += "\\b"; break;
        case '\f': out += "\\f"; break;
        case '\n': out += "\\n"; break;
        case '\r': out += "\\r"; break;
        case '\t': out += "\\t"; break;
        default: {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        }
      }
      ++i;
    } else if (c < 0x80) {
      out += static_cast<char>(c);
      ++i;
    } else if (const std::size_t len = valid_utf8_len(s, i); len > 0) {
      out.append(s.substr(i, len));
      i += len;
    } else {
      out += "\xEF\xBF\xBD";  // U+FFFD replacement character
      ++i;
    }
  }
  out += '"';
  return out;
}

std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";
  if (v == static_cast<double>(static_cast<long long>(v)) &&
      std::abs(v) < 9.007199254740992e15)
    return std::to_string(static_cast<long long>(v));
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

}  // namespace isex::serve
