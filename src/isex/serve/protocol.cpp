#include "isex/serve/protocol.hpp"

#include <cmath>
#include <map>
#include <utility>

#include "isex/obs/metrics.hpp"

namespace isex::serve {

const char* to_string(ErrorCode c) {
  switch (c) {
    case ErrorCode::kParseError: return "parse_error";
    case ErrorCode::kBadRequest: return "bad_request";
    case ErrorCode::kTooLarge: return "too_large";
    case ErrorCode::kOverload: return "overload";
    case ErrorCode::kShuttingDown: return "shutting_down";
    case ErrorCode::kInternal: return "internal";
    case ErrorCode::kWorkerCrashed: return "worker_crashed";
    case ErrorCode::kWorkerTimeout: return "worker_timeout";
    case ErrorCode::kQuarantined: return "quarantined";
    case ErrorCode::kWorkerUnavailable: return "worker_unavailable";
  }
  return "?";
}

namespace {

/// Decode-time failure collector: the first schema violation wins and the
/// whole decode aborts into a DecodeError.
struct Fail {
  DecodeError err;
  bool failed = false;

  bool bad(const std::string& message) {
    if (!failed) {
      failed = true;
      err = {ErrorCode::kBadRequest, message, ""};
    }
    return false;
  }
};

bool finite_number(const Json* j, double* out) {
  if (j == nullptr || !j->is_number()) return false;
  *out = j->as_number();
  return std::isfinite(*out);
}

/// Reverse map of ir::opcode_name, built once.
bool parse_opcode(const std::string& name, ir::Opcode* out) {
  static const std::map<std::string, ir::Opcode, std::less<>> table = [] {
    std::map<std::string, ir::Opcode, std::less<>> t;
    for (int i = 0; i < ir::kNumOpcodes; ++i) {
      const auto op = static_cast<ir::Opcode>(i);
      t.emplace(std::string(ir::opcode_name(op)), op);
    }
    return t;
  }();
  const auto it = table.find(name);
  if (it == table.end()) return false;
  *out = it->second;
  return true;
}

/// "dfg": [{"op":"add","in":[0,1],"out":true}, ...] — operand indices must
/// reference earlier ops (the DAG topological-order invariant). Ops whose
/// value nothing consumes are implicitly live-out, so every op contributes
/// to the block's outputs unless explicitly consumed.
bool decode_dfg(const Json& ops, const RequestLimits& limits, TaskSpec* spec,
                Fail* f) {
  if (!ops.is_array()) return f->bad("task dfg must be an array of ops");
  const auto& items = ops.items();
  if (items.empty()) return f->bad("task dfg must not be empty");
  if (items.size() > static_cast<std::size_t>(limits.max_dfg_nodes))
    return f->bad("task dfg has " + std::to_string(items.size()) +
                  " ops; limit " + std::to_string(limits.max_dfg_nodes));
  spec->program = ir::Program(spec->name);
  const int block = spec->program.add_block("b0");
  ir::Dfg& dfg = spec->program.block(block).dfg;
  std::vector<bool> consumed(items.size(), false);
  std::vector<bool> explicit_out(items.size(), false);
  for (std::size_t i = 0; i < items.size(); ++i) {
    const Json& node = items[i];
    if (!node.is_object()) return f->bad("dfg op must be an object");
    const Json* opname = node.find("op");
    if (opname == nullptr || !opname->is_string())
      return f->bad("dfg op needs a string \"op\"");
    ir::Opcode op;
    if (!parse_opcode(opname->as_string(), &op))
      return f->bad("unknown opcode '" + opname->as_string() + "'");
    std::vector<ir::NodeId> operands;
    if (const Json* in = node.find("in"); in != nullptr) {
      if (!in->is_array()) return f->bad("dfg op \"in\" must be an array");
      if (in->items().size() > 8)
        return f->bad("dfg op has more than 8 operands");
      for (const Json& o : in->items()) {
        double v = 0;
        if (!finite_number(&o, &v) || v != std::floor(v) || v < 0 ||
            v >= static_cast<double>(i))
          return f->bad("dfg op " + std::to_string(i) +
                        ": operands must be indices of earlier ops");
        operands.push_back(static_cast<ir::NodeId>(v));
        consumed[static_cast<std::size_t>(v)] = true;
      }
    }
    if (const Json* out = node.find("out"); out != nullptr) {
      if (!out->is_bool()) return f->bad("dfg op \"out\" must be a bool");
      explicit_out[i] = out->as_bool();
    }
    dfg.add(op, std::move(operands));
  }
  for (std::size_t i = 0; i < items.size(); ++i)
    if (explicit_out[i] || !consumed[i])
      dfg.mark_live_out(static_cast<ir::NodeId>(i));
  spec->program.set_root(spec->program.stmt_block(block));
  spec->has_dfg = true;
  return true;
}

bool decode_task(const Json& t, const RequestLimits& limits, TaskSpec* spec,
                 Fail* f) {
  if (!t.is_object()) return f->bad("tasks entries must be objects");
  if (const Json* name = t.find("name"); name != nullptr) {
    if (!name->is_string() || name->as_string().empty() ||
        name->as_string().size() > limits.max_id_bytes)
      return f->bad("task name must be a non-empty string");
    spec->name = name->as_string();
  } else {
    return f->bad("inline task needs a \"name\"");
  }
  double period = 0;
  if (!finite_number(t.find("period"), &period) || period <= 0)
    return f->bad("task '" + spec->name + "': period must be a positive number");
  spec->period = period;

  const Json* configs = t.find("configs");
  const Json* dfg = t.find("dfg");
  if ((configs != nullptr) == (dfg != nullptr))
    return f->bad("task '" + spec->name +
                  "': exactly one of \"configs\" or \"dfg\" required");
  if (dfg != nullptr) return decode_dfg(*dfg, limits, spec, f);

  if (!configs->is_array() || configs->items().empty())
    return f->bad("task '" + spec->name + "': configs must be a non-empty array");
  if (configs->items().size() > static_cast<std::size_t>(limits.max_configs))
    return f->bad("task '" + spec->name + "': more than " +
                  std::to_string(limits.max_configs) + " configs");
  for (const Json& c : configs->items()) {
    // [area, cycles] pairs; area ascending with [0] the zero-area software
    // point is validated later by TaskSet::validate.
    if (!c.is_array() || c.items().size() != 2)
      return f->bad("task '" + spec->name + "': configs are [area, cycles] pairs");
    double area = 0, cycles = 0;
    if (!finite_number(&c.items()[0], &area) ||
        !finite_number(&c.items()[1], &cycles) || area < 0 || cycles <= 0)
      return f->bad("task '" + spec->name +
                    "': config area must be >= 0 and cycles > 0");
    spec->configs.push_back({area, cycles});
  }
  return true;
}

}  // namespace

DecodeResult decode_request(std::string_view line,
                            const RequestLimits& limits) {
  if (line.size() > limits.max_request_bytes)
    return DecodeError{ErrorCode::kTooLarge,
                       "request of " + std::to_string(line.size()) +
                           " bytes exceeds the " +
                           std::to_string(limits.max_request_bytes) +
                           "-byte limit",
                       ""};
  JsonParseResult parsed = json_parse(line, limits.json);
  if (!parsed.ok())
    return DecodeError{ErrorCode::kParseError, parsed.error, ""};
  const Json& root = parsed.value;
  if (!root.is_object())
    return DecodeError{ErrorCode::kBadRequest,
                       "request must be a JSON object", ""};

  Request req;
  Fail f;
  if (const Json* id = root.find("id"); id != nullptr) {
    if (!id->is_string())
      return DecodeError{ErrorCode::kBadRequest, "\"id\" must be a string",
                         ""};
    if (id->as_string().size() > limits.max_id_bytes)
      return DecodeError{ErrorCode::kBadRequest,
                         "\"id\" longer than " +
                             std::to_string(limits.max_id_bytes) + " bytes",
                         ""};
    req.id = id->as_string();
  }

  const Json* cmd = root.find("cmd");
  if (cmd == nullptr || !cmd->is_string())
    return DecodeError{ErrorCode::kBadRequest, "\"cmd\" (string) is required",
                       req.id};
  const std::string& c = cmd->as_string();
  if (c == "ping") {
    req.cmd = Cmd::kPing;
    return req;
  }
  if (c == "stats") {
    req.cmd = Cmd::kStats;
    return req;
  }
  if (c == "introspect") {
    req.cmd = Cmd::kIntrospect;
    return req;
  }
  if (c != "select")
    return DecodeError{ErrorCode::kBadRequest,
                       "unknown cmd '" + c +
                           "' (expected select, ping, stats or introspect)",
                       req.id};
  req.cmd = Cmd::kSelect;

  if (const Json* policy = root.find("policy"); policy != nullptr) {
    if (!policy->is_string() ||
        (policy->as_string() != "edf" && policy->as_string() != "rms"))
      f.bad("\"policy\" must be \"edf\" or \"rms\"");
    else
      req.policy = policy->as_string() == "rms" ? rt::Policy::kRms
                                                : rt::Policy::kEdf;
  }

  const Json* benchmarks = root.find("benchmarks");
  const Json* tasks = root.find("tasks");
  if ((benchmarks != nullptr) == (tasks != nullptr))
    f.bad("exactly one of \"benchmarks\" or \"tasks\" is required");
  if (!f.failed && benchmarks != nullptr) {
    if (!benchmarks->is_array() || benchmarks->items().empty())
      f.bad("\"benchmarks\" must be a non-empty array of names");
    else if (benchmarks->items().size() >
             static_cast<std::size_t>(limits.max_tasks))
      f.bad("more than " + std::to_string(limits.max_tasks) + " benchmarks");
    else
      for (const Json& b : benchmarks->items()) {
        if (!b.is_string() || b.as_string().empty() ||
            b.as_string().size() > limits.max_id_bytes) {
          f.bad("benchmark names must be non-empty strings");
          break;
        }
        req.benchmarks.push_back(b.as_string());
      }
    double u0 = 0;
    if (!finite_number(root.find("u0"), &u0) || u0 <= 0 || u0 > 64)
      f.bad("\"u0\" must be a number in (0, 64] with \"benchmarks\"");
    else
      req.u0 = u0;
  }
  if (!f.failed && tasks != nullptr) {
    if (!tasks->is_array() || tasks->items().empty())
      f.bad("\"tasks\" must be a non-empty array");
    else if (tasks->items().size() > static_cast<std::size_t>(limits.max_tasks))
      f.bad("more than " + std::to_string(limits.max_tasks) + " tasks");
    else
      for (const Json& t : tasks->items()) {
        TaskSpec spec;
        if (!decode_task(t, limits, &spec, &f)) break;
        req.tasks.push_back(std::move(spec));
      }
  }

  const Json* frac = root.find("budget_fraction");
  const Json* area = root.find("area_budget");
  if (!f.failed) {
    if ((frac != nullptr) == (area != nullptr)) {
      f.bad("exactly one of \"budget_fraction\" or \"area_budget\" is required");
    } else if (frac != nullptr) {
      double v = 0;
      if (!finite_number(frac, &v) || v < 0 || v > 1)
        f.bad("\"budget_fraction\" must be a number in [0, 1]");
      req.has_budget_fraction = true;
      req.budget_fraction = v;
    } else {
      double v = 0;
      if (!finite_number(area, &v) || v < 0 || v > 1e9)
        f.bad("\"area_budget\" must be a number in [0, 1e9]");
      req.has_area_budget = true;
      req.area_budget = v;
    }
  }

  if (const Json* tb = root.find("time_budget_ms"); tb != nullptr) {
    double v = 0;
    if (!finite_number(tb, &v) || v <= 0)
      f.bad("\"time_budget_ms\" must be a positive number");
    else {
      req.time_budget_seconds = v * 1e-3;
      if (req.time_budget_seconds > limits.max_time_budget_seconds) {
        req.time_budget_seconds = limits.max_time_budget_seconds;
        req.budget_clamped = true;
      }
    }
  }
  if (const Json* nb = root.find("node_budget"); nb != nullptr) {
    double v = 0;
    if (!finite_number(nb, &v) || v < 1 || v != std::floor(v))
      f.bad("\"node_budget\" must be a positive integer");
    else {
      req.node_budget = v > static_cast<double>(limits.max_node_budget)
                            ? limits.max_node_budget
                            : static_cast<long>(v);
      req.budget_clamped |= v > static_cast<double>(limits.max_node_budget);
    }
  }
  if (const Json* mb = root.find("mem_budget_bytes"); mb != nullptr) {
    double v = 0;
    if (!finite_number(mb, &v) || v < 1 || v != std::floor(v))
      f.bad("\"mem_budget_bytes\" must be a positive integer");
    else {
      const double cap = static_cast<double>(limits.max_mem_budget_bytes);
      req.mem_budget_bytes =
          static_cast<std::size_t>(v > cap ? cap : v);
      req.budget_clamped |= v > cap;
    }
  }
  if (const Json* p = root.find("paranoid"); p != nullptr) {
    if (!p->is_bool())
      f.bad("\"paranoid\" must be a bool");
    else
      req.paranoid = p->as_bool();
  }

  if (f.failed) {
    f.err.id = req.id;  // correlate the rejection with the request
    return f.err;
  }
  return req;
}

std::string render_id(const std::string& id) {
  return id.empty() ? "null" : json_quote(id);
}

std::string render_error(const std::string& id, ErrorCode code,
                         const std::string& message, long retry_after_ms,
                         std::uint64_t rid) {
  return render_error_extra(id, code, message, "", retry_after_ms, rid);
}

std::string render_error_extra(const std::string& id, ErrorCode code,
                               const std::string& message,
                               const std::string& extra_fields,
                               long retry_after_ms, std::uint64_t rid) {
  ISEX_COUNT("serve.responses.errors");
  std::string out = "{\"id\":" + render_id(id);
  if (rid != 0) out += ",\"rid\":" + std::to_string(rid);
  out += ",\"ok\":false,\"error\":{\"code\":\"" +
         std::string(to_string(code)) +
         "\",\"message\":" + json_quote(message);
  if (!extra_fields.empty()) out += "," + extra_fields;
  out += "}";
  if (retry_after_ms >= 0)
    out += ",\"retry_after_ms\":" + std::to_string(retry_after_ms);
  out += "}";
  return out;
}

std::string render_select_result(
    const rt::TaskSet& ts, double area_budget, rt::Policy policy,
    const robust::Outcome<customize::SelectionResult>& out, int shed_rung) {
  const customize::SelectionResult& r = out.value;
  std::string s = "{\"cmd\":\"select\",\"policy\":\"";
  s += policy == rt::Policy::kRms ? "rms" : "edf";
  s += "\",\"status\":\"";
  s += robust::to_string(out.status);
  s += "\",\"schedulable\":";
  s += r.schedulable ? "true" : "false";
  s += ",\"utilization\":" + json_number(r.utilization);
  s += ",\"area_used\":" + json_number(r.area_used);
  s += ",\"area_budget\":" + json_number(area_budget);
  s += ",\"gap\":" + json_number(out.optimality_gap);
  s += ",\"shed_rung\":" + std::to_string(shed_rung);
  s += ",\"detail\":" + json_quote(out.detail);
  s += ",\"tasks\":[";
  for (std::size_t i = 0; i < ts.size(); ++i) {
    const rt::Task& t = ts.tasks[i];
    const int cfg = i < r.assignment.size() ? r.assignment[i] : 0;
    const auto& c = t.configs[static_cast<std::size_t>(cfg)];
    if (i) s += ",";
    s += "{\"name\":" + json_quote(t.name) +
         ",\"period\":" + json_number(t.period) +
         ",\"config\":" + std::to_string(cfg) +
         ",\"area\":" + json_number(c.area) +
         ",\"cycles\":" + json_number(c.cycles) + "}";
  }
  s += "],\"certificate\":{\"ok\":";
  s += out.certificate.ok() ? "true" : "false";
  s += ",\"checks\":" + std::to_string(out.certificate.checks) +
       ",\"violations\":[";
  for (std::size_t i = 0; i < out.certificate.violations.size(); ++i) {
    const auto& v = out.certificate.violations[i];
    if (i) s += ",";
    s += "{\"check\":" + json_quote(v.check) +
         ",\"message\":" + json_quote(v.message) + "}";
  }
  s += "]}}";
  return s;
}

std::string render_success(const std::string& id, const std::string& result,
                           bool cache_hit, int queue_depth, double elapsed_ms,
                           long nodes_charged, std::uint64_t rid) {
  ISEX_COUNT("serve.responses.ok");
  std::string out = "{\"id\":" + render_id(id);
  if (rid != 0) out += ",\"rid\":" + std::to_string(rid);
  out += ",\"ok\":true,\"cache\":\"";
  out += cache_hit ? "hit" : "miss";
  out += "\",\"queue_depth\":" + std::to_string(queue_depth);
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.3f", elapsed_ms);
  out += ",\"elapsed_ms\":";
  out += buf;
  out += ",\"nodes\":" + std::to_string(nodes_charged);
  out += ",\"result\":" + result + "}";
  return out;
}

}  // namespace isex::serve
