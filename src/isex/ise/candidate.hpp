// Custom-instruction candidate: a legal subgraph of a basic block's DFG.
#pragma once

#include <cstdint>
#include <vector>

#include "isex/hw/estimate.hpp"
#include "isex/ir/dfg.hpp"
#include "isex/util/bitset.hpp"

namespace isex::ise {

/// Micro-architectural constraints on custom instructions. The default (4
/// register read ports, 2 write ports) is the configuration used throughout
/// the thesis' experiments.
struct Constraints {
  int max_inputs = 4;
  int max_outputs = 2;
};

/// A legal custom-instruction candidate inside one basic block.
struct Candidate {
  util::Bitset nodes;      // node subset of the owning block's DFG
  int block = -1;          // owning basic-block index within its Program
  int num_inputs = 0;
  int num_outputs = 0;
  hw::HwEstimate est;      // latency / area / per-execution gain
  double exec_freq = 1;    // profiled executions of the owning block
  std::uint64_t iso_hash = 0;  // canonical structural hash for area sharing

  /// Profile-weighted cycle saving if this candidate alone is implemented.
  double total_gain() const { return est.gain_per_exec * exec_freq; }
};

/// True iff s is a legal candidate in dfg under c (valid ops, I/O, convexity).
bool is_legal(const ir::Dfg& dfg, const util::Bitset& s, const Constraints& c);

/// Builds a fully-populated Candidate (I/O counts, estimate, iso hash) from a
/// node set assumed legal.
Candidate make_candidate(const ir::Dfg& dfg, const util::Bitset& s,
                         const hw::CellLibrary& lib, int block,
                         double exec_freq);

/// Canonical structural hash of subgraph s: Weisfeiler-Lehman style iterated
/// neighbourhood hashing restricted to s. Isomorphic datapaths collide (used
/// to share silicon between identical custom instructions); distinct shapes
/// collide only with hash-collision probability.
std::uint64_t iso_hash(const ir::Dfg& dfg, const util::Bitset& s);

}  // namespace isex::ise
