#include "isex/ise/single_cut.hpp"

#include <algorithm>
#include <cmath>

#include "isex/obs/trace.hpp"
#include "isex/util/stopwatch.hpp"

namespace isex::ise {

namespace {

struct Search {
  const ir::Dfg& dfg;
  const hw::CellLibrary& lib;
  const SingleCutOptions& opts;
  util::Bitset allowed;      // nodes eligible for inclusion
  std::vector<double> sw;    // per-node software latency
  std::vector<double> suffix_sw;  // sum of sw over eligible ids <= i
  util::Stopwatch clock;
  bool completed = true;
  long explored = 0;
  long bound_pruned = 0;
  long incumbent_updates = 0;

  double best_gain = 0;
  util::Bitset best_set;

  util::Bitset cur;        // included nodes
  util::Bitset forbidden;  // excluded-by-convexity ancestors
  int outputs = 0;         // exact (consumers of included nodes are decided)
  double cur_sw = 0;

  explicit Search(const ir::Dfg& d, const hw::CellLibrary& l,
                  const SingleCutOptions& o)
      : dfg(d), lib(l), opts(o), allowed(d.valid_mask()),
        best_set(d.empty_set()), cur(d.empty_set()),
        forbidden(d.empty_set()) {
    if (o.allowed.size() == static_cast<std::size_t>(d.num_nodes()))
      allowed &= o.allowed;
    // Constants never carry gain and never cost an input; treat them as
    // ineligible so the search tree only branches on real operations.
    for (int i = 0; i < d.num_nodes(); ++i)
      if (d.node(i).op == ir::Opcode::kConst)
        allowed.reset(static_cast<std::size_t>(i));
    sw.resize(static_cast<std::size_t>(d.num_nodes()));
    suffix_sw.resize(static_cast<std::size_t>(d.num_nodes()) + 1, 0);
    for (int i = 0; i < d.num_nodes(); ++i)
      sw[static_cast<std::size_t>(i)] =
          allowed.test(static_cast<std::size_t>(i))
              ? l.cost(d.node(i).op).sw_cycles
              : 0;
    for (int i = 0; i < d.num_nodes(); ++i)
      suffix_sw[static_cast<std::size_t>(i) + 1] =
          suffix_sw[static_cast<std::size_t>(i)] + sw[static_cast<std::size_t>(i)];
  }

  /// Number of distinct register inputs that can no longer be absorbed:
  /// producers of included nodes that are decided-out, ineligible, or
  /// forbidden. (Nodes with id > next are all decided; forbidden ones can
  /// never join.)
  int permanent_inputs(int next) const {
    util::Bitset seen = dfg.empty_set();
    int count = 0;
    cur.for_each([&](std::size_t v) {
      for (ir::NodeId o : dfg.node(static_cast<int>(v)).operands) {
        const auto oi = static_cast<std::size_t>(o);
        if (cur.test(oi) || seen.test(oi)) continue;
        const bool decided_out = o > next;  // processed and not included
        const bool can_never_join = !allowed.test(oi) || forbidden.test(oi);
        if (decided_out || can_never_join) {
          seen.set(oi);
          if (!ir::is_free_input(dfg.node(o).op)) ++count;
        }
      }
    });
    return count;
  }

  void consider_current(double exec_freq) {
    if (cur.count() < 2) return;
    if (dfg.input_count(cur) > opts.constraints.max_inputs) return;
    const hw::HwEstimate est = hw::estimate(dfg, cur, lib);
    const double gain = est.gain_per_exec * exec_freq;
    if (gain > best_gain) {
      best_gain = gain;
      best_set = cur;
      ++incumbent_updates;
    }
  }

  void run(int next, double exec_freq) {
    if (!completed) return;
    ++explored;
    if ((explored & 0x3ff) == 0 && clock.seconds() > opts.time_budget_seconds) {
      completed = false;
      return;
    }
    if (opts.budget != nullptr && opts.budget->charge()) {
      completed = false;
      return;
    }
    if (next < 0) {
      consider_current(exec_freq);
      return;
    }
    // Upper bound: every remaining eligible node is absorbed for free and the
    // hardware executes in a single cycle.
    // (gain(cur) <= (cur_sw - 1) * freq <= ub, so pruning cannot drop the
    // incumbent-improving evaluation of the partial cut itself.)
    const double ub =
        (cur_sw + suffix_sw[static_cast<std::size_t>(next) + 1] - 1) * exec_freq;
    if (ub <= best_gain) {
      ++bound_pruned;
      return;
    }

    const auto ni = static_cast<std::size_t>(next);
    const bool can_include = allowed.test(ni) && !forbidden.test(ni);

    if (can_include) {
      // Branch 1: include `next`.
      const ir::Node& n = dfg.node(next);
      bool is_output = n.live_out;
      if (!is_output)
        for (ir::NodeId c : n.consumers)
          if (!cur.test(static_cast<std::size_t>(c))) {
            is_output = true;
            break;
          }
      const int new_outputs = outputs + (is_output ? 1 : 0);
      if (new_outputs <= opts.constraints.max_outputs) {
        cur.set(ni);
        outputs = new_outputs;
        cur_sw += sw[ni];
        if (permanent_inputs(next - 1) <= opts.constraints.max_inputs)
          run(next - 1, exec_freq);
        cur.reset(ni);
        outputs -= is_output ? 1 : 0;
        cur_sw -= sw[ni];
      }
    }

    // Branch 2: exclude `next`. If it has a descendant in the cut, all of its
    // ancestors become forbidden (convexity).
    const bool separating = dfg.descendants(next).intersects(cur);
    util::Bitset saved;
    if (separating) {
      saved = forbidden;
      forbidden |= dfg.ancestors(next);
    }
    run(next - 1, exec_freq);
    if (separating) forbidden = std::move(saved);
  }
};

}  // namespace

SingleCutResult optimal_single_cut(const ir::Dfg& dfg,
                                   const hw::CellLibrary& lib,
                                   const SingleCutOptions& opts, int block,
                                   double exec_freq) {
  ISEX_SPAN_CAT("ise.optimal_single_cut", "ise");
  Search s(dfg, lib, opts);
  s.run(dfg.num_nodes() - 1, exec_freq);
  ISEX_COUNT_ADD("ise.single_cut.explored", s.explored);
  ISEX_COUNT_ADD("ise.single_cut.bound_pruned", s.bound_pruned);
  ISEX_COUNT_ADD("ise.single_cut.incumbent_updates", s.incumbent_updates);
  if (!s.completed) ISEX_COUNT("ise.single_cut.timeouts");
  SingleCutResult r;
  r.completed = s.completed;
  r.nodes_explored = s.explored;
  if (s.best_gain > 0)
    r.best = make_candidate(dfg, s.best_set, lib, block, exec_freq);
  if (!s.completed) {
    r.status = robust::Status::kBudgetTruncated;
    // Root bound: every eligible node absorbed for free, one hardware cycle.
    const double root_ub =
        (s.suffix_sw[static_cast<std::size_t>(dfg.num_nodes())] - 1) *
        exec_freq;
    r.optimality_gap =
        std::max(0.0, (root_ub - s.best_gain) / std::max(s.best_gain, 1.0));
  }
  return r;
}

}  // namespace isex::ise
