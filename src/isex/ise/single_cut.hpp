// Optimal single-cut identification (Pozzi-Atasu-Ienne style search).
//
// Finds the single legal subgraph (cut) of a DFG that maximizes the
// per-execution cycle gain, by branch-and-bound over include/exclude
// decisions taken in reverse topological order. Because node ids are a
// topological order, processing ids from high to low gives two exact
// incremental facts that drive the pruning:
//   * outputs are final: when node v is included, all of its consumers are
//     already decided, so v's output status never changes;
//   * convexity is a forbidden-set: when v is excluded while having a
//     descendant in the cut, no ancestor of v may ever be included.
// This is the engine of the Iterative Selection (IS) baseline of Chapter 5;
// its exponential worst case on large basic blocks (e.g. 3des, 2745 nodes)
// is exactly the behaviour Fig 5.5 reports, so a search deadline is exposed.
#pragma once

#include <optional>

#include "isex/ise/candidate.hpp"
#include "isex/robust/outcome.hpp"

namespace isex::ise {

struct SingleCutOptions {
  Constraints constraints;
  double time_budget_seconds = 1e9;  // stop early and return best-so-far
  /// Only nodes with mask.test(id) may be included (used by IS to remove the
  /// nodes of previously emitted custom instructions). Empty = all valid.
  util::Bitset allowed;
  /// Cooperative execution budget (non-owning; nullptr = unlimited), charged
  /// once per search node. Exhaustion keeps the running incumbent.
  robust::Budget* budget = nullptr;
};

struct SingleCutResult {
  std::optional<Candidate> best;  // empty if no legal cut with positive gain
  bool completed = true;          // false if the deadline cut the search short
  long nodes_explored = 0;
  /// kExact when the search completed; kBudgetTruncated when the deadline or
  /// the budget stopped it (best is then the incumbent, possibly empty).
  robust::Status status = robust::Status::kExact;
  /// 0 when exact; otherwise (root_upper_bound - incumbent) / max(incumbent,
  /// 1): how far the all-nodes-absorbed-for-free bound still is from the
  /// incumbent's gain.
  double optimality_gap = 0;
};

SingleCutResult optimal_single_cut(const ir::Dfg& dfg,
                                   const hw::CellLibrary& lib,
                                   const SingleCutOptions& opts,
                                   int block = 0, double exec_freq = 1);

}  // namespace isex::ise
