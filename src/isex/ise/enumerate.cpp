#include "isex/ise/enumerate.hpp"

#include <algorithm>
#include <atomic>
#include <unordered_set>

#include "isex/obs/trace.hpp"
#include "isex/util/task_pool.hpp"

namespace isex::ise {

namespace {

/// Approximate bytes one retained subgraph costs (bitset words + container
/// bookkeeping) — the unit the enumerators charge against a memory budget.
std::size_t subgraph_bytes(const ir::Dfg& dfg) {
  return 8 * ((static_cast<std::size_t>(dfg.num_nodes()) + 63) / 64) + 64;
}

/// Progress record one enumeration phase fills in: whether the budget cut it
/// short and how many of its seed nodes it finished, the basis for the
/// coverage-style optimality gap of enumerate_candidates_bounded().
struct EnumStats {
  bool truncated = false;
  long seeds_total = 0;
  long seeds_processed = 0;
};

/// True when this enumeration may fan out across worker threads. Budgets
/// with deterministic limits (nodes/memory) pin the exact serial schedule so
/// truncation points stay byte-reproducible; wall-clock-only budgets are
/// nondeterministic either way and may be shared across workers.
bool parallel_allowed(const robust::Budget* b) {
  return util::max_threads() > 1 &&
         (b == nullptr || !b->deterministic_limits());
}

/// Grows the MaxMISO of `root`: absorb a predecessor when it is valid and
/// all of its consumers are already inside (so only root's value escapes).
util::Bitset miso_grow(const ir::Dfg& dfg, const util::Bitset& valid,
                       int root) {
  util::Bitset s = dfg.empty_set();
  s.set(static_cast<std::size_t>(root));
  bool changed = true;
  while (changed) {
    changed = false;
    // Iterate over a snapshot; s only grows.
    for (int v : s.to_vector()) {
      for (std::int32_t o : dfg.operands_of(v)) {
        const auto oi = static_cast<std::size_t>(o);
        if (s.test(oi) || !valid.test(oi)) continue;
        if (dfg.node(o).op == ir::Opcode::kConst) continue;
        if (dfg.node(o).live_out) continue;
        bool absorbed = true;
        for (std::int32_t cons : dfg.consumers_of(o))
          if (!s.test(static_cast<std::size_t>(cons))) {
            absorbed = false;
            break;
          }
        if (absorbed) {
          s.set(oi);
          changed = true;
        }
      }
    }
  }
  return s;
}

std::vector<Candidate> maximal_misos_serial(const ir::Dfg& dfg,
                                            const hw::CellLibrary& lib,
                                            const Constraints& c, int block,
                                            double exec_freq,
                                            robust::Budget* budget,
                                            EnumStats* stats) {
  long input_rejects = 0, duplicates = 0;
  std::vector<Candidate> out;
  std::unordered_set<util::Bitset, util::BitsetHash> seen;
  const std::size_t entry_bytes = subgraph_bytes(dfg);
  const util::Bitset& valid = dfg.valid_mask();
  if (stats != nullptr) stats->seeds_total = dfg.num_nodes();
  for (int root = 0; root < dfg.num_nodes(); ++root) {
    if (budget != nullptr && budget->charge()) {
      if (stats != nullptr) stats->truncated = true;
      break;
    }
    if (stats != nullptr) ++stats->seeds_processed;
    if (!valid.test(static_cast<std::size_t>(root))) continue;
    if (dfg.node(root).op == ir::Opcode::kConst) continue;
    util::Bitset s = miso_grow(dfg, valid, root);
    if (s.count() < 2) continue;  // single nodes are not worth an instruction
    if (budget != nullptr && budget->charge_mem(entry_bytes)) {
      if (stats != nullptr) {
        stats->truncated = true;
        --stats->seeds_processed;  // this root's pattern was dropped
      }
      break;
    }
    if (!seen.insert(s).second) {
      ++duplicates;
      continue;
    }
    // A MaxMISO is convex by construction (it is closed under "all consumers
    // inside"), has one output, and only the input constraint can fail.
    if (dfg.input_count(s) > c.max_inputs) {
      ++input_rejects;
      continue;
    }
    out.push_back(make_candidate(dfg, s, lib, block, exec_freq));
  }
  ISEX_COUNT_ADD("ise.miso.candidates", out.size());
  ISEX_COUNT_ADD("ise.miso.input_rejects", input_rejects);
  ISEX_COUNT_ADD("ise.miso.duplicates", duplicates);
  return out;
}

/// Parallel MaxMISO enumeration, byte-identical to the serial path: grow and
/// input-check every root concurrently, dedup serially in root order (the
/// order decides which root "owns" a repeated pattern), then build the
/// accepted candidates concurrently and append them in root order.
std::vector<Candidate> maximal_misos_parallel(const ir::Dfg& dfg,
                                              const hw::CellLibrary& lib,
                                              const Constraints& c, int block,
                                              double exec_freq,
                                              EnumStats* stats) {
  dfg.prepare();
  const util::Bitset& valid = dfg.valid_mask();
  const int n = dfg.num_nodes();
  if (stats != nullptr) {
    stats->seeds_total = n;
    stats->seeds_processed = n;
  }
  std::vector<int> roots;
  for (int root = 0; root < n; ++root)
    if (valid.test(static_cast<std::size_t>(root)) &&
        dfg.node(root).op != ir::Opcode::kConst)
      roots.push_back(root);

  struct Grown {
    util::Bitset s;
    bool big = false;       // count() >= 2
    bool inputs_ok = false;  // within max_inputs
  };
  std::vector<Grown> grown(roots.size());
  util::parallel_for(roots.size(), [&](std::size_t i) {
    Grown& g = grown[i];
    g.s = miso_grow(dfg, valid, roots[i]);
    g.big = g.s.count() >= 2;
    if (g.big) g.inputs_ok = dfg.input_count(g.s) <= c.max_inputs;
  });

  long input_rejects = 0, duplicates = 0;
  std::unordered_set<util::Bitset, util::BitsetHash> seen;
  std::vector<const util::Bitset*> accepted;
  for (const Grown& g : grown) {
    if (!g.big) continue;
    if (!seen.insert(g.s).second) {
      ++duplicates;
      continue;
    }
    if (!g.inputs_ok) {
      ++input_rejects;
      continue;
    }
    accepted.push_back(&g.s);
  }

  std::vector<Candidate> out(accepted.size());
  util::parallel_for(accepted.size(), [&](std::size_t i) {
    out[i] = make_candidate(dfg, *accepted[i], lib, block, exec_freq);
  });
  ISEX_COUNT_ADD("ise.miso.candidates", out.size());
  ISEX_COUNT_ADD("ise.miso.input_rejects", input_rejects);
  ISEX_COUNT_ADD("ise.miso.duplicates", duplicates);
  return out;
}

std::vector<Candidate> maximal_misos_impl(const ir::Dfg& dfg,
                                          const hw::CellLibrary& lib,
                                          const Constraints& c, int block,
                                          double exec_freq,
                                          robust::Budget* budget,
                                          EnumStats* stats) {
  ISEX_SPAN_CAT("ise.maximal_misos", "ise");
  // Any budget (even time-only) keeps the serial loop: the per-root charge
  // order decides where a truncated MISO pass cuts, and the serial loop makes
  // that cut a prefix of the root order.
  if (budget == nullptr && util::max_threads() > 1 && dfg.num_nodes() > 1)
    return maximal_misos_parallel(dfg, lib, c, block, exec_freq, stats);
  return maximal_misos_serial(dfg, lib, c, block, exec_freq, budget, stats);
}

}  // namespace

std::vector<Candidate> maximal_misos(const ir::Dfg& dfg,
                                     const hw::CellLibrary& lib,
                                     const Constraints& c, int block,
                                     double exec_freq) {
  return maximal_misos_impl(dfg, lib, c, block, exec_freq, nullptr, nullptr);
}

namespace {

/// One level of the growth DFS. Frames are preallocated per search depth so
/// the inner loop reuses bitset storage instead of allocating per child.
struct GrowFrame {
  util::Bitset s;     // current subgraph
  util::Bitset anc;   // union of ancestors(v) over v in s
  util::Bitset desc;  // union of descendants(v) over v in s
  std::vector<int> frontier;
};

/// Growth enumeration state shared across the recursion.
struct GrowCtx {
  const ir::Dfg& dfg;
  const hw::CellLibrary& lib;
  const EnumOptions& opts;
  int block;
  double exec_freq;
  long budget;  // remaining grow-call allowance (max_candidates countdown)
  std::unordered_set<util::Bitset, util::BitsetHash>* visited;
  std::vector<Candidate>* out;
  robust::Budget* rbudget = nullptr;     // serial path: direct charging
  robust::BudgetShare* share = nullptr;  // parallel path: strided charging
  std::vector<long>* emit_call = nullptr;  // parallel: call index per emission
  // Parallel wave cancellation (see enumerate_connected_parallel): this
  // seed's slot in the wave's shared progress array, published periodically;
  // smaller-slot peers' progress shrinks this seed's effective call cap.
  std::atomic<long>* wave_progress = nullptr;
  std::size_t wave_slot = 0;
  long wave_cap0 = 0;
  bool truncated = false;                  // set once the robust budget stops
  // Search statistics, published to the obs registry once per enumeration.
  long grow_calls = 0;
  long input_rejects = 0;
  long output_rejects = 0;
  long convexity_rejects = 0;
  std::vector<GrowFrame> frames = {};
};

/// Expands the subgraph in frames[depth] (connected, valid nodes only, all
/// ids >= seed) by every neighbour with id > seed; emits it if legal. The
/// frame carries the running ancestor/descendant unions, so the convexity
/// test is O(words) bitops instead of an O(V) full-graph rescan.
/// How many grow calls a wave seed executes between progress publications.
/// Smaller = tighter bound on overshoot past an exhausted cap, larger =
/// less cache traffic on the shared wave counters.
constexpr long kWavePollStride = 128;

void grow(GrowCtx& ctx, std::size_t depth, int seed) {
  if (ctx.budget <= 0 || ctx.truncated) return;
  if (ctx.wave_progress != nullptr && ctx.grow_calls % kWavePollStride == 0) {
    // Publish this seed's progress and re-derive the effective cap from the
    // published progress of smaller-slot wave peers. cap0 - sum(peers) is
    // always an upper bound on this seed's true serial allowance (the
    // counters only grow, and a stale relaxed load only loosens the bound),
    // so cutting the local budget down to it cannot change the replayed
    // output — it only stops work the replay would discard anyway.
    ctx.wave_progress[ctx.wave_slot].store(ctx.grow_calls,
                                           std::memory_order_relaxed);
    long consumed = 0;
    for (std::size_t j = 0; j < ctx.wave_slot; ++j)
      consumed += ctx.wave_progress[j].load(std::memory_order_relaxed);
    const long allowance = ctx.wave_cap0 - consumed - ctx.grow_calls;
    if (allowance < ctx.budget) ctx.budget = allowance;
    if (ctx.budget <= 0) return;
  }
  if (ctx.rbudget != nullptr && ctx.rbudget->charge()) {
    ctx.truncated = true;
    return;
  }
  if (ctx.share != nullptr && ctx.share->charge()) {
    ctx.truncated = true;
    return;
  }
  --ctx.budget;
  ++ctx.grow_calls;
  const ir::Dfg& dfg = ctx.dfg;
  GrowFrame& f = ctx.frames[depth];
  // Same legality tests in the same short-circuit order as the original
  // single conjunction; the split only attributes the first failing reason.
  if (f.s.count() >= 2) {
    if (dfg.input_count(f.s) > ctx.opts.constraints.max_inputs) {
      ++ctx.input_rejects;
    } else if (dfg.output_count(f.s) > ctx.opts.constraints.max_outputs) {
      ++ctx.output_rejects;
    } else if (!dfg.is_convex_unions(f.s, f.anc, f.desc)) {
      ++ctx.convexity_rejects;
    } else {
      if (ctx.emit_call != nullptr) ctx.emit_call->push_back(ctx.grow_calls);
      ctx.out->push_back(
          make_candidate(dfg, f.s, ctx.lib, ctx.block, ctx.exec_freq));
    }
  }
  if (f.s.count() >= static_cast<std::size_t>(ctx.opts.max_candidate_nodes))
    return;

  // Frontier: valid neighbours with id > seed not yet in s.
  const util::Bitset& valid = dfg.valid_mask();
  f.frontier.clear();
  f.s.for_each([&](std::size_t v) {
    auto consider = [&](ir::NodeId u) {
      const auto ui = static_cast<std::size_t>(u);
      if (u <= seed || f.s.test(ui) || !valid.test(ui)) return;
      if (dfg.node(u).op == ir::Opcode::kConst) return;
      f.frontier.push_back(u);
    };
    for (std::int32_t o : dfg.operands_of(static_cast<int>(v))) consider(o);
    for (std::int32_t c : dfg.consumers_of(static_cast<int>(v))) consider(c);
  });
  std::sort(f.frontier.begin(), f.frontier.end());
  f.frontier.erase(std::unique(f.frontier.begin(), f.frontier.end()),
                   f.frontier.end());

  GrowFrame& child = ctx.frames[depth + 1];
  for (int u : f.frontier) {
    if (ctx.truncated) return;
    child.s = f.s;
    child.s.set(static_cast<std::size_t>(u));
    if (ctx.visited->insert(child.s).second) {
      if (ctx.rbudget != nullptr &&
          ctx.rbudget->charge_mem(subgraph_bytes(ctx.dfg))) {
        ctx.truncated = true;
        return;
      }
      if (ctx.share != nullptr &&
          ctx.share->charge_mem(subgraph_bytes(ctx.dfg))) {
        ctx.truncated = true;
        return;
      }
      child.anc = f.anc;
      child.desc = f.desc;
      ctx.dfg.reach_union_add(u, child.anc, child.desc);
      grow(ctx, depth + 1, seed);
    }
  }
}

/// Sizes ctx.frames for the deepest possible search node and seeds frame 0.
void init_frames(GrowCtx& ctx, int seed) {
  const auto depth_cap = static_cast<std::size_t>(
      std::max(2, ctx.opts.max_candidate_nodes) + 2);
  if (ctx.frames.size() < depth_cap) ctx.frames.resize(depth_cap);
  GrowFrame& f0 = ctx.frames[0];
  f0.s = ctx.dfg.empty_set();
  f0.s.set(static_cast<std::size_t>(seed));
  f0.anc = ctx.dfg.ancestors(seed);
  f0.desc = ctx.dfg.descendants(seed);
}

/// Exact legacy schedule: one thread, seeds in id order, one global visited
/// set, direct budget charging.
std::vector<Candidate> enumerate_connected_serial(const ir::Dfg& dfg,
                                                  const hw::CellLibrary& lib,
                                                  const EnumOptions& opts,
                                                  int block, double exec_freq,
                                                  EnumStats* stats) {
  std::vector<Candidate> out;
  std::unordered_set<util::Bitset, util::BitsetHash> visited;
  GrowCtx ctx{dfg,      lib,  opts, block, exec_freq, opts.max_candidates,
              &visited, &out, opts.budget};
  const util::Bitset& valid = dfg.valid_mask();
  if (stats != nullptr) stats->seeds_total = dfg.num_nodes();
  for (int seed = 0; seed < dfg.num_nodes(); ++seed) {
    if (ctx.truncated) break;
    if (stats != nullptr) ++stats->seeds_processed;
    if (!valid.test(static_cast<std::size_t>(seed))) continue;
    if (dfg.node(seed).op == ir::Opcode::kConst) continue;
    init_frames(ctx, seed);
    grow(ctx, 0, seed);
    if (ctx.budget <= 0) break;
  }
  if (stats != nullptr && ctx.truncated) {
    stats->truncated = true;
    if (stats->seeds_processed > 0) --stats->seeds_processed;  // cut mid-seed
  }
  ISEX_COUNT_ADD("ise.enum.candidates", out.size());
  ISEX_COUNT_ADD("ise.enum.grow_calls", ctx.grow_calls);
  ISEX_COUNT_ADD("ise.enum.input_rejects", ctx.input_rejects);
  ISEX_COUNT_ADD("ise.enum.output_rejects", ctx.output_rejects);
  ISEX_COUNT_ADD("ise.enum.convexity_rejects", ctx.convexity_rejects);
  if (ctx.budget <= 0) ISEX_COUNT("ise.enum.budget_exhausted");
  if (ctx.truncated) ISEX_COUNT("ise.enum.robust_budget_truncations");
  return out;
}

/// Result of one seed's full subtree, run with a *local* grow-call cap.
struct SeedRun {
  std::vector<Candidate> cands;
  std::vector<long> emit_call;  // 1-based grow-call index at each emission
  long calls = 0;               // grow calls executed
  bool capped = false;          // local cap hit (subtree not exhausted)
  bool time_stopped = false;    // shared wall-clock budget stopped this seed
  long input_rejects = 0, output_rejects = 0, convexity_rejects = 0;
};

SeedRun run_seed(const ir::Dfg& dfg, const hw::CellLibrary& lib,
                 const EnumOptions& opts, int block, double exec_freq,
                 int seed, long local_cap, robust::Budget* shared,
                 std::atomic<long>* wave_progress, std::size_t wave_slot) {
  SeedRun r;
  std::unordered_set<util::Bitset, util::BitsetHash> visited;
  robust::BudgetShare share(shared);
  GrowCtx ctx{dfg,      lib,      opts,   block, exec_freq, local_cap,
              &visited, &r.cands, nullptr};
  ctx.share = shared != nullptr ? &share : nullptr;
  ctx.emit_call = &r.emit_call;
  ctx.wave_progress = wave_progress;
  ctx.wave_slot = wave_slot;
  ctx.wave_cap0 = local_cap;
  init_frames(ctx, seed);
  grow(ctx, 0, seed);
  // Publish the final count so peers still running stop sooner.
  wave_progress[wave_slot].store(ctx.grow_calls, std::memory_order_relaxed);
  r.calls = ctx.grow_calls;
  r.capped = ctx.budget <= 0;
  r.time_stopped = ctx.truncated;
  r.input_rejects = ctx.input_rejects;
  r.output_rejects = ctx.output_rejects;
  r.convexity_rejects = ctx.convexity_rejects;
  return r;
}

/// Work-stealing fan-out over enumeration subtrees (one per seed), followed
/// by a serial replay that reconstructs the exact output of the legacy
/// serial loop.
///
/// Why this is byte-identical when no wall-clock budget interferes: each
/// subgraph in seed k's subtree has minimum node id k (growth only adds ids
/// > seed), so the per-seed visited sets partition exactly like the serial
/// global set, and within one seed the DFS order is unchanged. The only
/// cross-seed coupling is the global max_candidates grow-call cap. Serial
/// semantics: a grow call executes iff the remaining allowance was positive
/// at entry, so a candidate emitted at (1-based) call e of seed k survives
/// iff e <= allowance left when seed k started. Each seed therefore runs
/// with a local cap (the allowance at its wave's start, an upper bound on
/// its serial allowance), records the call index of every emission, and the
/// replay walks seeds in id order, trims each candidate list against the
/// true remaining allowance, and decrements it by the calls serial would
/// have executed (min(calls, remaining)). Waves of a few seeds per worker
/// keep the overshoot past an exhausted cap bounded by one wave.
///
/// Wave sizing: output is wave-size independent (each seed's local cap is an
/// upper bound on its serial allowance for ANY wave grouping, and the replay
/// trims against the true allowance either way), so wave length is purely a
/// performance knob. Waves start small — the seeds of the wave that straddles
/// an exhausted cap may each run to their local cap, so a cap that binds
/// early wastes little — and double up to a bound, so the fixed scheduling
/// cost of a parallel region is amortised over ever more seeds on large
/// blocks and the straddling wave stays proportionate to the work done
/// before it.
///
/// Cap-binding runs additionally cancel cooperatively: each seed publishes
/// its grow-call count into a shared per-wave progress array every
/// kWavePollStride calls, and shrinks its own budget to
/// cap0 - sum(progress of smaller-slot peers) - own calls. That expression
/// never drops below the seed's true serial allowance (peer counters are
/// monotone and stale reads only loosen it), so the replayed output is
/// untouched; it just stops seeds from exploring work past the point the
/// replay would discard, bounding the overshoot near one poll stride per
/// seed instead of the whole wave running to the cap.
std::vector<Candidate> enumerate_connected_parallel(
    const ir::Dfg& dfg, const hw::CellLibrary& lib, const EnumOptions& opts,
    int block, double exec_freq, EnumStats* stats) {
  dfg.prepare();
  const util::Bitset& valid = dfg.valid_mask();
  const int n = dfg.num_nodes();
  if (stats != nullptr) stats->seeds_total = n;

  std::vector<int> eligible;
  for (int seed = 0; seed < n; ++seed)
    if (valid.test(static_cast<std::size_t>(seed)) &&
        dfg.node(seed).op != ir::Opcode::kConst)
      eligible.push_back(seed);

  std::vector<Candidate> out;
  long remaining = opts.max_candidates;
  long grow_calls = 0, input_rejects = 0, output_rejects = 0,
       convexity_rejects = 0;
  bool cap_stopped = false, time_stopped = false;
  long processed = 0;  // replayed seeds_processed, serial semantics
  int id_cursor = 0;   // first graph id not yet accounted in the replay

  const std::size_t wave_min =
      static_cast<std::size_t>(util::max_threads()) * 2;
  const std::size_t wave_max = wave_min * 16;
  std::size_t wave_len = wave_min;
  std::vector<SeedRun> runs;
  for (std::size_t ei = 0; ei < eligible.size() && !cap_stopped && !time_stopped;
       ei += wave_len, wave_len = std::min(wave_len * 2, wave_max)) {
    const std::size_t count = std::min(wave_len, eligible.size() - ei);
    if (runs.size() < count) runs.resize(count);
    const long cap = remaining;  // every seed's serial allowance is <= this
    std::vector<std::atomic<long>> progress(count);  // zero-initialised
    util::parallel_for(count, [&](std::size_t i) {
      runs[i] = run_seed(dfg, lib, opts, block, exec_freq,
                         eligible[ei + i], cap, opts.budget,
                         progress.data(), i);
    });
    for (std::size_t i = 0; i < count; ++i) {
      SeedRun& r = runs[i];
      const int id = eligible[ei + i];
      processed += id - id_cursor + 1;  // skipped ids + this seed
      id_cursor = id + 1;
      for (std::size_t k = 0; k < r.cands.size(); ++k)
        if (r.emit_call[k] <= remaining) out.push_back(std::move(r.cands[k]));
      grow_calls += r.calls;
      input_rejects += r.input_rejects;
      output_rejects += r.output_rejects;
      convexity_rejects += r.convexity_rejects;
      if (r.time_stopped) {
        time_stopped = true;
        break;
      }
      remaining -= std::min(r.calls, remaining);
      if (remaining <= 0) {
        cap_stopped = true;
        break;
      }
    }
  }
  if (!cap_stopped && !time_stopped) {
    processed += n - id_cursor;  // trailing invalid/const seeds cost nothing
    id_cursor = n;
  }
  if (stats != nullptr) {
    stats->seeds_processed = processed;
    if (time_stopped) {
      stats->truncated = true;
      if (stats->seeds_processed > 0) --stats->seeds_processed;  // cut mid-seed
    }
  }
  ISEX_COUNT_ADD("ise.enum.candidates", out.size());
  ISEX_COUNT_ADD("ise.enum.grow_calls", grow_calls);
  ISEX_COUNT_ADD("ise.enum.input_rejects", input_rejects);
  ISEX_COUNT_ADD("ise.enum.output_rejects", output_rejects);
  ISEX_COUNT_ADD("ise.enum.convexity_rejects", convexity_rejects);
  if (cap_stopped) ISEX_COUNT("ise.enum.budget_exhausted");
  if (time_stopped) ISEX_COUNT("ise.enum.robust_budget_truncations");
  return out;
}

/// Body of enumerate_connected() with budget progress reported via `stats`.
std::vector<Candidate> enumerate_connected_impl(const ir::Dfg& dfg,
                                                const hw::CellLibrary& lib,
                                                const EnumOptions& opts,
                                                int block, double exec_freq,
                                                EnumStats* stats) {
  ISEX_SPAN_CAT("ise.enumerate_connected", "ise");
  // Blocks below this size enumerate in microseconds; a parallel wave costs
  // more than it saves. They still run concurrently with other blocks via
  // the block-level fan-out in the selection layer.
  constexpr int kMinParallelNodes = 64;
  if (parallel_allowed(opts.budget) && dfg.num_nodes() >= kMinParallelNodes &&
      opts.max_candidates > 0)
    return enumerate_connected_parallel(dfg, lib, opts, block, exec_freq,
                                        stats);
  return enumerate_connected_serial(dfg, lib, opts, block, exec_freq, stats);
}

}  // namespace

std::vector<Candidate> enumerate_connected(const ir::Dfg& dfg,
                                           const hw::CellLibrary& lib,
                                           const EnumOptions& opts, int block,
                                           double exec_freq) {
  return enumerate_connected_impl(dfg, lib, opts, block, exec_freq, nullptr);
}

std::vector<Candidate> enumerate_disconnected(
    const ir::Dfg& dfg, const hw::CellLibrary& lib,
    const std::vector<Candidate>& connected, const Constraints& constraints,
    int max_seeds, int max_pairs) {
  ISEX_SPAN_CAT("ise.enumerate_disconnected", "ise");
  long legality_rejects = 0, edge_rejects = 0;
  // Work from the highest-gain connected candidates.
  std::vector<const Candidate*> seeds;
  seeds.reserve(connected.size());
  for (const auto& c : connected) seeds.push_back(&c);
  std::sort(seeds.begin(), seeds.end(), [](const Candidate* a, const Candidate* b) {
    return a->est.gain_per_exec > b->est.gain_per_exec;
  });
  if (static_cast<int>(seeds.size()) > max_seeds)
    seeds.resize(static_cast<std::size_t>(max_seeds));

  std::vector<Candidate> out;
  std::unordered_set<util::Bitset, util::BitsetHash> seen;
  for (std::size_t i = 0; i < seeds.size() &&
                          static_cast<int>(out.size()) < max_pairs;
       ++i) {
    for (std::size_t j = i + 1; j < seeds.size() &&
                                static_cast<int>(out.size()) < max_pairs;
         ++j) {
      const Candidate& a = *seeds[i];
      const Candidate& b = *seeds[j];
      if (a.nodes.intersects(b.nodes)) continue;
      // Node-disjoint is not enough: an edge between the components would
      // serialize them. Reject pairs where one feeds the other.
      bool connected_pair = false;
      a.nodes.for_each([&](std::size_t v) {
        for (std::int32_t c : dfg.consumers_of(static_cast<int>(v)))
          if (b.nodes.test(static_cast<std::size_t>(c))) connected_pair = true;
        for (std::int32_t o : dfg.operands_of(static_cast<int>(v)))
          if (b.nodes.test(static_cast<std::size_t>(o))) connected_pair = true;
      });
      if (connected_pair) {
        ++edge_rejects;
        continue;
      }
      util::Bitset merged = a.nodes;
      merged |= b.nodes;
      if (!seen.insert(merged).second) continue;
      if (!is_legal(dfg, merged, constraints)) {
        ++legality_rejects;
        continue;
      }
      out.push_back(
          make_candidate(dfg, merged, lib, a.block, a.exec_freq));
    }
  }
  ISEX_COUNT_ADD("ise.disconnected.pairs", out.size());
  ISEX_COUNT_ADD("ise.disconnected.edge_rejects", edge_rejects);
  ISEX_COUNT_ADD("ise.disconnected.legality_rejects", legality_rejects);
  return out;
}

std::vector<Candidate> enumerate_candidates(const ir::Dfg& dfg,
                                            const hw::CellLibrary& lib,
                                            const EnumOptions& opts, int block,
                                            double exec_freq) {
  return enumerate_candidates_bounded(dfg, lib, opts, block, exec_freq).value;
}

robust::Outcome<std::vector<Candidate>> enumerate_candidates_bounded(
    const ir::Dfg& dfg, const hw::CellLibrary& lib, const EnumOptions& opts,
    int block, double exec_freq) {
  ISEX_SPAN_CAT("ise.enumerate_candidates", "ise");
  EnumStats connected_stats;
  std::vector<Candidate> out = enumerate_connected_impl(
      dfg, lib, opts, block, exec_freq, &connected_stats);
  std::unordered_set<util::Bitset, util::BitsetHash> seen;
  for (const Candidate& c : out) seen.insert(c.nodes);
  EnumStats miso_stats;
  for (Candidate& m : maximal_misos_impl(dfg, lib, opts.constraints, block,
                                         exec_freq, opts.budget, &miso_stats))
    if (seen.insert(m.nodes).second) out.push_back(std::move(m));
#if ISEX_OBS_ENABLED
  for (const Candidate& c : out)
    ISEX_HIST("ise.candidate_nodes", c.nodes.count());
#endif
  robust::Outcome<std::vector<Candidate>> res;
  res.value = std::move(out);
  const bool truncated = connected_stats.truncated || miso_stats.truncated;
  res.status =
      truncated ? robust::Status::kBudgetTruncated : robust::Status::kExact;
  if (truncated) {
    // Coverage bound: the fraction of seed nodes (over both phases) the
    // enumeration never finished. Not a gain bound — candidates found are
    // individually legal regardless.
    const long total =
        connected_stats.seeds_total + miso_stats.seeds_total;
    const long done =
        connected_stats.seeds_processed + miso_stats.seeds_processed;
    res.optimality_gap =
        total > 0 ? 1.0 - static_cast<double>(done) / static_cast<double>(total)
                  : 1.0;
    res.detail = "enumeration stopped after " + std::to_string(done) + "/" +
                 std::to_string(total) + " seeds";
  }
  if (opts.budget != nullptr) res.budget = opts.budget->report();
  return res;
}

}  // namespace isex::ise
