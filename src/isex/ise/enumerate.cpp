#include "isex/ise/enumerate.hpp"

#include <unordered_set>

#include "isex/obs/trace.hpp"

namespace isex::ise {

namespace {

/// Approximate bytes one retained subgraph costs (bitset words + container
/// bookkeeping) — the unit the enumerators charge against a memory budget.
std::size_t subgraph_bytes(const ir::Dfg& dfg) {
  return 8 * ((static_cast<std::size_t>(dfg.num_nodes()) + 63) / 64) + 64;
}

/// Progress record one enumeration phase fills in: whether the budget cut it
/// short and how many of its seed nodes it finished, the basis for the
/// coverage-style optimality gap of enumerate_candidates_bounded().
struct EnumStats {
  bool truncated = false;
  long seeds_total = 0;
  long seeds_processed = 0;
};

std::vector<Candidate> maximal_misos_impl(const ir::Dfg& dfg,
                                          const hw::CellLibrary& lib,
                                          const Constraints& c, int block,
                                          double exec_freq,
                                          robust::Budget* budget,
                                          EnumStats* stats) {
  ISEX_SPAN_CAT("ise.maximal_misos", "ise");
  long input_rejects = 0, duplicates = 0;
  std::vector<Candidate> out;
  std::unordered_set<util::Bitset, util::BitsetHash> seen;
  const std::size_t entry_bytes = subgraph_bytes(dfg);
  const util::Bitset& valid = dfg.valid_mask();
  if (stats != nullptr) stats->seeds_total = dfg.num_nodes();
  for (int root = 0; root < dfg.num_nodes(); ++root) {
    if (budget != nullptr && budget->charge()) {
      if (stats != nullptr) stats->truncated = true;
      break;
    }
    if (stats != nullptr) ++stats->seeds_processed;
    if (!valid.test(static_cast<std::size_t>(root))) continue;
    if (dfg.node(root).op == ir::Opcode::kConst) continue;
    // Grow the MaxMISO of `root`: absorb a predecessor when it is valid and
    // all of its consumers are already inside (so only root's value escapes).
    util::Bitset s = dfg.empty_set();
    s.set(static_cast<std::size_t>(root));
    bool changed = true;
    while (changed) {
      changed = false;
      // Iterate over a snapshot; s only grows.
      for (int v : s.to_vector()) {
        for (ir::NodeId o : dfg.node(v).operands) {
          const auto oi = static_cast<std::size_t>(o);
          if (s.test(oi) || !valid.test(oi)) continue;
          if (dfg.node(o).op == ir::Opcode::kConst) continue;
          if (dfg.node(o).live_out) continue;
          bool absorbed = true;
          for (ir::NodeId cons : dfg.node(o).consumers)
            if (!s.test(static_cast<std::size_t>(cons))) {
              absorbed = false;
              break;
            }
          if (absorbed) {
            s.set(oi);
            changed = true;
          }
        }
      }
    }
    if (s.count() < 2) continue;  // single nodes are not worth an instruction
    if (budget != nullptr && budget->charge_mem(entry_bytes)) {
      if (stats != nullptr) {
        stats->truncated = true;
        --stats->seeds_processed;  // this root's pattern was dropped
      }
      break;
    }
    if (!seen.insert(s).second) {
      ++duplicates;
      continue;
    }
    // A MaxMISO is convex by construction (it is closed under "all consumers
    // inside"), has one output, and only the input constraint can fail.
    if (dfg.input_count(s) > c.max_inputs) {
      ++input_rejects;
      continue;
    }
    out.push_back(make_candidate(dfg, s, lib, block, exec_freq));
  }
  ISEX_COUNT_ADD("ise.miso.candidates", out.size());
  ISEX_COUNT_ADD("ise.miso.input_rejects", input_rejects);
  ISEX_COUNT_ADD("ise.miso.duplicates", duplicates);
  return out;
}

}  // namespace

std::vector<Candidate> maximal_misos(const ir::Dfg& dfg,
                                     const hw::CellLibrary& lib,
                                     const Constraints& c, int block,
                                     double exec_freq) {
  return maximal_misos_impl(dfg, lib, c, block, exec_freq, nullptr, nullptr);
}

namespace {

/// Growth enumeration state shared across the recursion.
struct GrowCtx {
  const ir::Dfg& dfg;
  const hw::CellLibrary& lib;
  const EnumOptions& opts;
  int block;
  double exec_freq;
  long budget;
  std::unordered_set<util::Bitset, util::BitsetHash> visited;
  std::vector<Candidate>* out;
  robust::Budget* rbudget = nullptr;  // cooperative budget; nullptr: unlimited
  bool truncated = false;             // set once rbudget exhausts
  // Search statistics, published to the obs registry once per enumeration.
  long grow_calls = 0;
  long input_rejects = 0;
  long output_rejects = 0;
  long convexity_rejects = 0;
};

/// Expands subgraph s (connected, valid nodes only, all ids >= seed) by every
/// neighbour with id > seed; emits s if legal.
void grow(GrowCtx& ctx, const util::Bitset& s, int seed) {
  if (ctx.budget <= 0 || ctx.truncated) return;
  if (ctx.rbudget != nullptr && ctx.rbudget->charge()) {
    ctx.truncated = true;
    return;
  }
  --ctx.budget;
  ++ctx.grow_calls;
  const ir::Dfg& dfg = ctx.dfg;
  // Same legality tests in the same short-circuit order as the original
  // single conjunction; the split only attributes the first failing reason.
  if (s.count() >= 2) {
    if (dfg.input_count(s) > ctx.opts.constraints.max_inputs) {
      ++ctx.input_rejects;
    } else if (dfg.output_count(s) > ctx.opts.constraints.max_outputs) {
      ++ctx.output_rejects;
    } else if (!dfg.is_convex(s)) {
      ++ctx.convexity_rejects;
    } else {
      ctx.out->push_back(
          make_candidate(dfg, s, ctx.lib, ctx.block, ctx.exec_freq));
    }
  }
  if (s.count() >= static_cast<std::size_t>(ctx.opts.max_candidate_nodes))
    return;

  // Frontier: valid neighbours with id > seed not yet in s.
  const util::Bitset& valid = dfg.valid_mask();
  std::vector<int> frontier;
  s.for_each([&](std::size_t v) {
    auto consider = [&](ir::NodeId u) {
      const auto ui = static_cast<std::size_t>(u);
      if (u <= seed || s.test(ui) || !valid.test(ui)) return;
      if (dfg.node(u).op == ir::Opcode::kConst) return;
      frontier.push_back(u);
    };
    for (ir::NodeId o : dfg.node(static_cast<int>(v)).operands) consider(o);
    for (ir::NodeId c : dfg.node(static_cast<int>(v)).consumers) consider(c);
  });
  std::sort(frontier.begin(), frontier.end());
  frontier.erase(std::unique(frontier.begin(), frontier.end()), frontier.end());

  for (int u : frontier) {
    if (ctx.truncated) return;
    util::Bitset next = s;
    next.set(static_cast<std::size_t>(u));
    if (ctx.visited.insert(next).second) {
      if (ctx.rbudget != nullptr &&
          ctx.rbudget->charge_mem(subgraph_bytes(ctx.dfg))) {
        ctx.truncated = true;
        return;
      }
      grow(ctx, next, seed);
    }
  }
}

/// Body of enumerate_connected() with budget progress reported via `stats`.
std::vector<Candidate> enumerate_connected_impl(const ir::Dfg& dfg,
                                                const hw::CellLibrary& lib,
                                                const EnumOptions& opts,
                                                int block, double exec_freq,
                                                EnumStats* stats) {
  ISEX_SPAN_CAT("ise.enumerate_connected", "ise");
  std::vector<Candidate> out;
  GrowCtx ctx{dfg,   lib, opts, block, exec_freq, opts.max_candidates,
              {},    &out, opts.budget};
  const util::Bitset& valid = dfg.valid_mask();
  if (stats != nullptr) stats->seeds_total = dfg.num_nodes();
  for (int seed = 0; seed < dfg.num_nodes(); ++seed) {
    if (ctx.truncated) break;
    if (stats != nullptr) ++stats->seeds_processed;
    if (!valid.test(static_cast<std::size_t>(seed))) continue;
    if (dfg.node(seed).op == ir::Opcode::kConst) continue;
    util::Bitset s = dfg.empty_set();
    s.set(static_cast<std::size_t>(seed));
    grow(ctx, s, seed);
    if (ctx.budget <= 0) break;
  }
  if (stats != nullptr && ctx.truncated) {
    stats->truncated = true;
    if (stats->seeds_processed > 0) --stats->seeds_processed;  // cut mid-seed
  }
  ISEX_COUNT_ADD("ise.enum.candidates", out.size());
  ISEX_COUNT_ADD("ise.enum.grow_calls", ctx.grow_calls);
  ISEX_COUNT_ADD("ise.enum.input_rejects", ctx.input_rejects);
  ISEX_COUNT_ADD("ise.enum.output_rejects", ctx.output_rejects);
  ISEX_COUNT_ADD("ise.enum.convexity_rejects", ctx.convexity_rejects);
  if (ctx.budget <= 0) ISEX_COUNT("ise.enum.budget_exhausted");
  if (ctx.truncated) ISEX_COUNT("ise.enum.robust_budget_truncations");
  return out;
}

}  // namespace

std::vector<Candidate> enumerate_connected(const ir::Dfg& dfg,
                                           const hw::CellLibrary& lib,
                                           const EnumOptions& opts, int block,
                                           double exec_freq) {
  return enumerate_connected_impl(dfg, lib, opts, block, exec_freq, nullptr);
}

std::vector<Candidate> enumerate_disconnected(
    const ir::Dfg& dfg, const hw::CellLibrary& lib,
    const std::vector<Candidate>& connected, const Constraints& constraints,
    int max_seeds, int max_pairs) {
  ISEX_SPAN_CAT("ise.enumerate_disconnected", "ise");
  long legality_rejects = 0, edge_rejects = 0;
  // Work from the highest-gain connected candidates.
  std::vector<const Candidate*> seeds;
  seeds.reserve(connected.size());
  for (const auto& c : connected) seeds.push_back(&c);
  std::sort(seeds.begin(), seeds.end(), [](const Candidate* a, const Candidate* b) {
    return a->est.gain_per_exec > b->est.gain_per_exec;
  });
  if (static_cast<int>(seeds.size()) > max_seeds)
    seeds.resize(static_cast<std::size_t>(max_seeds));

  std::vector<Candidate> out;
  std::unordered_set<util::Bitset, util::BitsetHash> seen;
  for (std::size_t i = 0; i < seeds.size() &&
                          static_cast<int>(out.size()) < max_pairs;
       ++i) {
    for (std::size_t j = i + 1; j < seeds.size() &&
                                static_cast<int>(out.size()) < max_pairs;
         ++j) {
      const Candidate& a = *seeds[i];
      const Candidate& b = *seeds[j];
      if (a.nodes.intersects(b.nodes)) continue;
      // Node-disjoint is not enough: an edge between the components would
      // serialize them. Reject pairs where one feeds the other.
      bool connected_pair = false;
      a.nodes.for_each([&](std::size_t v) {
        for (ir::NodeId c : dfg.node(static_cast<int>(v)).consumers)
          if (b.nodes.test(static_cast<std::size_t>(c))) connected_pair = true;
        for (ir::NodeId o : dfg.node(static_cast<int>(v)).operands)
          if (b.nodes.test(static_cast<std::size_t>(o))) connected_pair = true;
      });
      if (connected_pair) {
        ++edge_rejects;
        continue;
      }
      util::Bitset merged = a.nodes;
      merged |= b.nodes;
      if (!seen.insert(merged).second) continue;
      if (!is_legal(dfg, merged, constraints)) {
        ++legality_rejects;
        continue;
      }
      out.push_back(
          make_candidate(dfg, merged, lib, a.block, a.exec_freq));
    }
  }
  ISEX_COUNT_ADD("ise.disconnected.pairs", out.size());
  ISEX_COUNT_ADD("ise.disconnected.edge_rejects", edge_rejects);
  ISEX_COUNT_ADD("ise.disconnected.legality_rejects", legality_rejects);
  return out;
}

std::vector<Candidate> enumerate_candidates(const ir::Dfg& dfg,
                                            const hw::CellLibrary& lib,
                                            const EnumOptions& opts, int block,
                                            double exec_freq) {
  return enumerate_candidates_bounded(dfg, lib, opts, block, exec_freq).value;
}

robust::Outcome<std::vector<Candidate>> enumerate_candidates_bounded(
    const ir::Dfg& dfg, const hw::CellLibrary& lib, const EnumOptions& opts,
    int block, double exec_freq) {
  ISEX_SPAN_CAT("ise.enumerate_candidates", "ise");
  EnumStats connected_stats;
  std::vector<Candidate> out = enumerate_connected_impl(
      dfg, lib, opts, block, exec_freq, &connected_stats);
  std::unordered_set<util::Bitset, util::BitsetHash> seen;
  for (const Candidate& c : out) seen.insert(c.nodes);
  EnumStats miso_stats;
  for (Candidate& m : maximal_misos_impl(dfg, lib, opts.constraints, block,
                                         exec_freq, opts.budget, &miso_stats))
    if (seen.insert(m.nodes).second) out.push_back(std::move(m));
#if ISEX_OBS_ENABLED
  for (const Candidate& c : out)
    ISEX_HIST("ise.candidate_nodes", c.nodes.count());
#endif
  robust::Outcome<std::vector<Candidate>> res;
  res.value = std::move(out);
  const bool truncated = connected_stats.truncated || miso_stats.truncated;
  res.status =
      truncated ? robust::Status::kBudgetTruncated : robust::Status::kExact;
  if (truncated) {
    // Coverage bound: the fraction of seed nodes (over both phases) the
    // enumeration never finished. Not a gain bound — candidates found are
    // individually legal regardless.
    const long total =
        connected_stats.seeds_total + miso_stats.seeds_total;
    const long done =
        connected_stats.seeds_processed + miso_stats.seeds_processed;
    res.optimality_gap =
        total > 0 ? 1.0 - static_cast<double>(done) / static_cast<double>(total)
                  : 1.0;
    res.detail = "enumeration stopped after " + std::to_string(done) + "/" +
                 std::to_string(total) + " seeds";
  }
  if (opts.budget != nullptr) res.budget = opts.budget->report();
  return res;
}

}  // namespace isex::ise
