// Custom-instruction identification: enumeration of legal candidates.
//
// Two enumerators from the literature the thesis builds on:
//  - maximal_misos(): the linear-time maximal multiple-input single-output
//    pattern enumeration (Alippi et al. [82]) — grow upward from each node,
//    absorbing a predecessor only when all of its consumers are absorbed.
//  - enumerate_connected(): growth-based enumeration of *connected convex*
//    MIMO subgraphs under input/output constraints (the clustering family
//    [9,24]); exhaustive over connected convex shapes for small regions and
//    budget-capped for large ones. Seed-anchored growth (extensions must have
//    id > seed, and each subgraph is visited once via a hash of its node set)
//    guarantees no duplicates.
#pragma once

#include <vector>

#include "isex/ise/candidate.hpp"
#include "isex/robust/outcome.hpp"

namespace isex::ise {

struct EnumOptions {
  Constraints constraints;
  int max_candidate_nodes = 40;  // size cap per candidate
  long max_candidates = 200000;  // global work cap per basic block
  /// Cooperative execution budget (non-owning; nullptr = unlimited). The
  /// enumerators charge one unit per grow call / MISO root and account the
  /// candidate pool + visited-set memory. Exhaustion stops enumeration with
  /// the candidates found so far. The max_candidates/max_candidate_nodes
  /// caps above are quality knobs, not budget truncation: hitting them never
  /// changes the reported Status.
  robust::Budget* budget = nullptr;
};

/// All maximal MISO patterns of the block's DFG that satisfy the constraints.
std::vector<Candidate> maximal_misos(const ir::Dfg& dfg,
                                     const hw::CellLibrary& lib,
                                     const Constraints& c, int block = 0,
                                     double exec_freq = 1);

/// Connected convex MIMO candidates under the options' constraints.
std::vector<Candidate> enumerate_connected(const ir::Dfg& dfg,
                                           const hw::CellLibrary& lib,
                                           const EnumOptions& opts,
                                           int block = 0, double exec_freq = 1);

/// Union of both enumerators with duplicate node-sets removed; the standard
/// candidate library used by the selection stages.
std::vector<Candidate> enumerate_candidates(const ir::Dfg& dfg,
                                            const hw::CellLibrary& lib,
                                            const EnumOptions& opts,
                                            int block = 0,
                                            double exec_freq = 1);

/// Anytime variant of enumerate_candidates(): identical output and status
/// kExact when opts.budget never exhausts (or is null); on exhaustion the
/// value is the (individually legal) candidates found so far with status
/// kBudgetTruncated and optimality_gap = fraction of enumeration seeds not
/// yet processed — a coverage bound, not a gain bound.
robust::Outcome<std::vector<Candidate>> enumerate_candidates_bounded(
    const ir::Dfg& dfg, const hw::CellLibrary& lib, const EnumOptions& opts,
    int block = 0, double exec_freq = 1);

/// Disconnected candidates ([81, 23, 36]): pairs of node-disjoint connected
/// candidates whose union is still legal. The components share no edges, so
/// the CFU executes them in parallel — hardware latency is the maximum of
/// the two, software cost the sum — which raises the gain ceiling on a
/// single-issue base core that has no other instruction-level parallelism.
/// `connected` is an existing candidate library; pairs are built from its
/// top `max_seeds` entries by gain and capped at `max_pairs` outputs.
std::vector<Candidate> enumerate_disconnected(
    const ir::Dfg& dfg, const hw::CellLibrary& lib,
    const std::vector<Candidate>& connected, const Constraints& constraints,
    int max_seeds = 40, int max_pairs = 400);

}  // namespace isex::ise
