#include "isex/ise/candidate.hpp"

#include <algorithm>

namespace isex::ise {

bool is_legal(const ir::Dfg& dfg, const util::Bitset& s, const Constraints& c) {
  if (s.none()) return false;
  if (!dfg.all_valid(s)) return false;
  if (dfg.input_count(s) > c.max_inputs) return false;
  if (dfg.output_count(s) > c.max_outputs) return false;
  return dfg.is_convex(s);
}

std::uint64_t iso_hash(const ir::Dfg& dfg, const util::Bitset& s) {
  // Iterated refinement: each node's label mixes its opcode with the sorted
  // labels of its in-subgraph operands. Two rounds distinguish all shapes we
  // care about (datapaths are shallow DAGs); the final hash is order-free.
  const auto ids = s.to_vector();
  std::vector<std::uint64_t> label(static_cast<std::size_t>(dfg.num_nodes()), 0);
  for (int v : ids)
    label[static_cast<std::size_t>(v)] =
        0x9e3779b97f4a7c15ull * (static_cast<std::uint64_t>(dfg.node(v).op) + 1);
  for (int round = 0; round < 3; ++round) {
    std::vector<std::uint64_t> next = label;
    for (int v : ids) {
      std::vector<std::uint64_t> in;
      for (ir::NodeId o : dfg.node(v).operands)
        if (s.test(static_cast<std::size_t>(o)))
          in.push_back(label[static_cast<std::size_t>(o)]);
      std::sort(in.begin(), in.end());
      std::uint64_t h = label[static_cast<std::size_t>(v)];
      for (std::uint64_t x : in) {
        h ^= x + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
        h *= 0x100000001b3ull;
      }
      next[static_cast<std::size_t>(v)] = h;
    }
    label = std::move(next);
  }
  std::vector<std::uint64_t> all;
  all.reserve(ids.size());
  for (int v : ids) all.push_back(label[static_cast<std::size_t>(v)]);
  std::sort(all.begin(), all.end());
  std::uint64_t h = 1469598103934665603ull;
  for (std::uint64_t x : all) {
    h ^= x;
    h *= 1099511628211ull;
  }
  return h;
}

Candidate make_candidate(const ir::Dfg& dfg, const util::Bitset& s,
                         const hw::CellLibrary& lib, int block,
                         double exec_freq) {
  Candidate c;
  c.nodes = s;
  c.block = block;
  c.num_inputs = dfg.input_count(s);
  c.num_outputs = dfg.output_count(s);
  c.est = hw::estimate(dfg, s, lib);
  c.exec_freq = exec_freq;
  c.iso_hash = iso_hash(dfg, s);
  return c;
}

}  // namespace isex::ise
