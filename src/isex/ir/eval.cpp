#include "isex/ir/eval.hpp"

#include <stdexcept>

namespace isex::ir {

std::int64_t pseudo_rom(std::int64_t address) {
  // SplitMix64: deterministic, well-distributed table contents.
  auto z = static_cast<std::uint64_t>(address) + 0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return static_cast<std::int64_t>(z ^ (z >> 31));
}

std::int64_t apply_op(const Dfg& dfg, NodeId n,
                      const std::vector<std::int64_t>& values) {
  const Node& node = dfg.node(n);
  auto in = [&](std::size_t i) {
    return values[static_cast<std::size_t>(node.operands[i])];
  };
  auto u = [&](std::size_t i) { return static_cast<std::uint64_t>(in(i)); };
  const auto shift = [&](std::size_t i) {
    return static_cast<int>(u(i) & 63);
  };
  switch (node.op) {
    case Opcode::kAdd: return static_cast<std::int64_t>(u(0) + u(1));
    case Opcode::kSub: return static_cast<std::int64_t>(u(0) - u(1));
    case Opcode::kMul: return static_cast<std::int64_t>(u(0) * u(1));
    case Opcode::kMac:
      return static_cast<std::int64_t>(u(0) * u(1) +
                                       (node.operands.size() > 2 ? u(2) : 0));
    case Opcode::kAnd: return static_cast<std::int64_t>(u(0) & u(1));
    case Opcode::kOr: return static_cast<std::int64_t>(u(0) | u(1));
    case Opcode::kXor: return static_cast<std::int64_t>(u(0) ^ u(1));
    case Opcode::kNot: return static_cast<std::int64_t>(~u(0));
    case Opcode::kShl: return static_cast<std::int64_t>(u(0) << shift(1));
    case Opcode::kShr: return static_cast<std::int64_t>(u(0) >> shift(1));
    case Opcode::kRotl: {
      const int s = shift(1);
      return static_cast<std::int64_t>(
          s == 0 ? u(0) : (u(0) << s) | (u(0) >> (64 - s)));
    }
    case Opcode::kCmp: return in(0) < in(1) ? 1 : 0;
    case Opcode::kSelect: return in(0) != 0 ? in(1) : in(2);
    case Opcode::kSext:
      return static_cast<std::int64_t>(static_cast<std::int32_t>(in(0)));
    case Opcode::kConst:
      // Deterministic per-node literal derived from the node id.
      return pseudo_rom(0x5EED0000 + n) & 0xffff;
    case Opcode::kInput:
      throw std::logic_error("apply_op: inputs are supplied externally");
    case Opcode::kLoad: return pseudo_rom(in(0));
    case Opcode::kDiv: return in(1) != 0 ? in(0) / in(1) : 0;
    case Opcode::kStore:
    case Opcode::kBranch:
    case Opcode::kCall:
      return 0;  // side effects are outside the value domain
    case Opcode::kCount: break;
  }
  throw std::logic_error("apply_op: bad opcode");
}

std::vector<std::int64_t> evaluate(const Dfg& dfg,
                                   const std::vector<std::int64_t>& inputs) {
  std::vector<std::int64_t> values(static_cast<std::size_t>(dfg.num_nodes()),
                                   0);
  std::size_t next_input = 0;
  for (NodeId n = 0; n < dfg.num_nodes(); ++n) {
    if (dfg.node(n).op == Opcode::kInput) {
      if (next_input >= inputs.size())
        throw std::invalid_argument("evaluate: not enough input values");
      values[static_cast<std::size_t>(n)] = inputs[next_input++];
    } else {
      values[static_cast<std::size_t>(n)] = apply_op(dfg, n, values);
    }
  }
  return values;
}

}  // namespace isex::ir
