// Data-flow graph of one basic block.
//
// Nodes are primitive operations; a directed edge u -> v means v consumes the
// value produced by u. The graph is a DAG by construction: operands must
// already exist when a node is added, so node ids are a topological order.
//
// This is the object every identification / generation algorithm in the
// library works on. It exposes the three queries those algorithms are built
// from: input-operand count, output-operand count and convexity of an
// arbitrary node subset (represented as util::Bitset over node ids).
#pragma once

#include <cassert>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "isex/ir/opcode.hpp"
#include "isex/util/bitset.hpp"

namespace isex::ir {

using NodeId = int;

/// One operation in the DFG.
struct Node {
  Opcode op = Opcode::kAdd;
  std::vector<NodeId> operands;   // predecessor value producers
  std::vector<NodeId> consumers;  // successor nodes reading this value
  bool live_out = false;          // value escapes the basic block
};

class Dfg {
 public:
  Dfg() = default;

  /// Adds a node whose operands must all be existing node ids (< new id).
  NodeId add(Opcode op, std::vector<NodeId> operands = {});

  /// Marks a node's value as live past the end of the block; such a node is
  /// always an output of any custom instruction containing it.
  void mark_live_out(NodeId n) { nodes_[static_cast<std::size_t>(n)].live_out = true; }

  int num_nodes() const { return static_cast<int>(nodes_.size()); }
  const Node& node(NodeId n) const { return nodes_[static_cast<std::size_t>(n)]; }
  const std::vector<Node>& nodes() const { return nodes_; }

  /// Total number of "computation" nodes (excludes kInput/kConst leaves);
  /// this is the basic-block size statistic reported in Table 5.1.
  int num_operations() const;

  /// Bitmask of nodes valid for custom-instruction inclusion.
  const util::Bitset& valid_mask() const;

  // --- Data-oriented adjacency (CSR) ----------------------------------------
  // Node ids are already a topological order (add() enforces operands < id);
  // the CSR view flattens the per-node operand/consumer vectors into two
  // offset+index buffer pairs so the enumeration inner loops walk contiguous
  // memory instead of chasing one heap vector per node.

  /// Operand ids of node n as a flat slice of the CSR buffer.
  std::span<const std::int32_t> operands_of(NodeId n) const {
    ensure_csr();
    return {csr_op_idx_.data() + csr_op_off_[static_cast<std::size_t>(n)],
            csr_op_idx_.data() + csr_op_off_[static_cast<std::size_t>(n) + 1]};
  }
  /// Consumer ids of node n as a flat slice of the CSR buffer.
  std::span<const std::int32_t> consumers_of(NodeId n) const {
    ensure_csr();
    return {csr_use_idx_.data() + csr_use_off_[static_cast<std::size_t>(n)],
            csr_use_idx_.data() + csr_use_off_[static_cast<std::size_t>(n) + 1]};
  }

  /// Eagerly builds every lazily cached derived structure (valid mask, CSR
  /// adjacency, reach sets). The caches are mutable and built on first use,
  /// which is fine single-threaded but a data race if the first use happens
  /// concurrently — parallel drivers call prepare() once before fanning out,
  /// after which all const queries on this graph are read-only.
  void prepare() const;

  // --- Subgraph queries (S is a bitset over node ids) -----------------------

  /// Number of distinct register input operands of subgraph S: producers
  /// outside S feeding a node in S, not counting hardwired constants.
  int input_count(const util::Bitset& s) const;

  /// Number of distinct register outputs of S: nodes in S whose value is
  /// consumed outside S or is live-out.
  int output_count(const util::Bitset& s) const;

  /// True iff S is convex: no dataflow path leaves S and re-enters it.
  /// Union-based O(|S| * words) bitops: S is non-convex iff some node outside
  /// S is simultaneously a descendant of a member and an ancestor of a member,
  /// i.e. (desc-union(S) ∩ anc-union(S)) ⊄ S.
  bool is_convex(const util::Bitset& s) const;

  /// Reference implementation of is_convex: the original O(V) scan over all
  /// outside nodes. Kept for differential tests; certify:: has its own fully
  /// independent path-based checker and uses neither.
  bool is_convex_scan(const util::Bitset& s) const;

  /// Incremental form of is_convex for enumeration search nodes: anc/desc
  /// are the running unions of ancestors()/descendants() over the members of
  /// s, maintained by the caller via reach_union_add() as the subgraph grows.
  /// O(words) per test instead of re-unioning per member.
  bool is_convex_unions(const util::Bitset& s, const util::Bitset& anc,
                        const util::Bitset& desc) const {
    return !desc.intersects_outside(anc, s);
  }
  /// Grows the running reach unions by node n's ancestor/descendant sets.
  void reach_union_add(NodeId n, util::Bitset& anc, util::Bitset& desc) const {
    ensure_reach_sets();
    anc |= ancestors_[static_cast<std::size_t>(n)];
    desc |= descendants_[static_cast<std::size_t>(n)];
  }

  /// True iff S contains only CI-valid nodes.
  bool all_valid(const util::Bitset& s) const;

  /// Ancestor set of node n (transitively, excluding n itself). Computed
  /// lazily once per graph; O(V*E/64) total.
  const util::Bitset& ancestors(NodeId n) const;
  /// Descendant set of node n (transitively, excluding n itself).
  const util::Bitset& descendants(NodeId n) const;

  /// Maximal connected (in the undirected sense) subgraphs of valid nodes.
  /// Invalid nodes (loads, stores, branches, divides, inputs) separate
  /// regions; constants are assigned to no region (they are free satellites).
  std::vector<util::Bitset> regions() const;

  /// An empty node set sized for this graph.
  util::Bitset empty_set() const { return util::Bitset(static_cast<std::size_t>(num_nodes())); }

  /// Sum of software latencies of the nodes in S, using latency(node) supplied
  /// by the caller (keeps the IR independent of the hardware library).
  template <typename LatencyFn>
  double subgraph_sum(const util::Bitset& s, LatencyFn&& latency) const {
    double total = 0;
    s.for_each([&](std::size_t i) { total += latency(nodes_[i]); });
    return total;
  }

 private:
  void ensure_reach_sets() const;
  void ensure_csr() const;

  std::vector<Node> nodes_;
  mutable std::vector<util::Bitset> ancestors_;    // lazily built
  mutable std::vector<util::Bitset> descendants_;  // lazily built
  mutable util::Bitset valid_mask_;
  mutable bool valid_mask_built_ = false;
  // CSR adjacency (lazily built, immutable once built; add() invalidates).
  mutable std::vector<std::int32_t> csr_op_off_, csr_op_idx_;
  mutable std::vector<std::int32_t> csr_use_off_, csr_use_idx_;
  mutable bool csr_built_ = false;
};

}  // namespace isex::ir
