// Concrete evaluation of DFGs: an interpreter giving every opcode defined
// semantics over int64 values.
//
// This is the executable ground truth behind the code-generation stage: a
// customized schedule (custom instructions executing atomically) must
// produce exactly the values of the plain software schedule. Loads read a
// deterministic pseudo-ROM (the S-box / coefficient tables of the kernels
// are read-only), so evaluation is a pure function of the live-in values.
#pragma once

#include <cstdint>
#include <vector>

#include "isex/ir/dfg.hpp"

namespace isex::ir {

/// Deterministic read-only memory: the value at an address. (SplitMix64 of
/// the address — stands in for constant tables.)
std::int64_t pseudo_rom(std::int64_t address);

/// Evaluates every node of the DFG. `inputs` supplies the values of kInput
/// nodes in their order of appearance; kConst nodes take deterministic
/// per-node values. Returns one value per node (0 for non-value producers).
std::vector<std::int64_t> evaluate(const Dfg& dfg,
                                   const std::vector<std::int64_t>& inputs);

/// The value a single node computes from already-evaluated operands.
std::int64_t apply_op(const Dfg& dfg, NodeId n,
                      const std::vector<std::int64_t>& values);

}  // namespace isex::ir
