// Structured program representation: basic blocks + a syntax tree.
//
// The thesis' flow (Trimaran front-end) computes per-task WCET with the
// Timing Schema approach over the program's syntax tree (sequence = sum,
// if = max over branches, loop = bound x body) and profiles basic-block
// execution frequencies with representative inputs. We keep exactly that
// structure: a Program owns its basic blocks (each a Dfg) and a tree of
// statements; both WCET analysis (worst case) and profiling (expected case,
// using branch probabilities) are recursions over the tree.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "isex/ir/dfg.hpp"

namespace isex::ir {

struct BasicBlock {
  std::string label;
  Dfg dfg;
  std::int64_t exec_count = 0;  // filled by Program::profile()
};

enum class StmtKind { kBlock, kSeq, kIf, kLoop };

/// One node of the syntax tree. Stored in an arena inside Program and
/// referenced by index, so the tree is trivially copyable with the Program.
struct Stmt {
  StmtKind kind = StmtKind::kBlock;
  int block = -1;                    // kBlock: index into blocks()
  std::vector<int> children;         // kSeq/kIf: children; kLoop: single body
  std::vector<double> branch_prob;   // kIf: execution probability per child
  std::int64_t loop_bound = 0;       // kLoop: max (and profiled) iteration count
};

/// Cost of one execution of a basic block, in processor cycles. Supplied by
/// the caller so the same Program can be costed before and after
/// custom-instruction replacement.
using BlockCost = std::function<double(int /*block index*/, const BasicBlock&)>;

class Program {
 public:
  explicit Program(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  // --- construction ---------------------------------------------------------
  int add_block(std::string label);
  BasicBlock& block(int i) { return blocks_[static_cast<std::size_t>(i)]; }
  const BasicBlock& block(int i) const { return blocks_[static_cast<std::size_t>(i)]; }
  int num_blocks() const { return static_cast<int>(blocks_.size()); }
  const std::vector<BasicBlock>& blocks() const { return blocks_; }

  int stmt_block(int block_index);
  int stmt_seq(std::vector<int> children);
  /// branch_prob must sum to ~1 and have one entry per child.
  int stmt_if(std::vector<int> children, std::vector<double> branch_prob);
  int stmt_loop(std::int64_t bound, int body);
  void set_root(int stmt) { root_ = stmt; }
  int root() const { return root_; }
  const Stmt& stmt(int i) const { return stmts_[static_cast<std::size_t>(i)]; }
  int num_stmts() const { return static_cast<int>(stmts_.size()); }

  // --- analysis -------------------------------------------------------------

  /// Timing-schema WCET in cycles under the given per-block cost.
  double wcet(const BlockCost& cost) const;

  /// Per-block execution count along the worst-case path (if-branches resolve
  /// to the max-cost child). Index = block index.
  std::vector<std::int64_t> wcet_counts(const BlockCost& cost) const;

  /// Fills BasicBlock::exec_count with the profiled (expected) execution
  /// counts using branch probabilities and loop bounds; returns total
  /// profiled cycles under the given cost.
  double profile(const BlockCost& cost);

  /// Cost of one execution of a block as the plain sum of per-node software
  /// latencies given by sw_latency(node). Convenience default cost model.
  static BlockCost sum_cost(std::function<double(const Node&)> sw_latency);

  /// Indices of loop statements in the tree, outermost first.
  std::vector<int> loop_stmts() const;

  /// Block indices contained (transitively) in the given statement.
  std::vector<int> blocks_in(int stmt) const;

 private:
  double wcet_rec(int stmt, const BlockCost& cost,
                  std::vector<std::int64_t>* counts, std::int64_t mult) const;
  double profile_rec(int stmt, const BlockCost& cost, double mult);

  std::string name_;
  std::vector<BasicBlock> blocks_;
  std::vector<Stmt> stmts_;
  int root_ = -1;
};

}  // namespace isex::ir
