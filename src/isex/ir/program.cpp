#include "isex/ir/program.hpp"

#include <cmath>
#include <stdexcept>

namespace isex::ir {

int Program::add_block(std::string label) {
  blocks_.push_back(BasicBlock{std::move(label), Dfg{}, 0});
  return static_cast<int>(blocks_.size()) - 1;
}

int Program::stmt_block(int block_index) {
  if (block_index < 0 || block_index >= num_blocks())
    throw std::invalid_argument("stmt_block: bad block index");
  stmts_.push_back(Stmt{StmtKind::kBlock, block_index, {}, {}, 0});
  return static_cast<int>(stmts_.size()) - 1;
}

int Program::stmt_seq(std::vector<int> children) {
  stmts_.push_back(Stmt{StmtKind::kSeq, -1, std::move(children), {}, 0});
  return static_cast<int>(stmts_.size()) - 1;
}

int Program::stmt_if(std::vector<int> children, std::vector<double> branch_prob) {
  if (children.size() != branch_prob.size() || children.empty())
    throw std::invalid_argument("stmt_if: children/probabilities mismatch");
  stmts_.push_back(Stmt{StmtKind::kIf, -1, std::move(children), std::move(branch_prob), 0});
  return static_cast<int>(stmts_.size()) - 1;
}

int Program::stmt_loop(std::int64_t bound, int body) {
  if (bound <= 0) throw std::invalid_argument("stmt_loop: bound must be positive");
  stmts_.push_back(Stmt{StmtKind::kLoop, -1, {body}, {}, bound});
  return static_cast<int>(stmts_.size()) - 1;
}

double Program::wcet_rec(int stmt_i, const BlockCost& cost,
                         std::vector<std::int64_t>* counts,
                         std::int64_t mult) const {
  const Stmt& s = stmts_[static_cast<std::size_t>(stmt_i)];
  switch (s.kind) {
    case StmtKind::kBlock: {
      if (counts) (*counts)[static_cast<std::size_t>(s.block)] += mult;
      return cost(s.block, blocks_[static_cast<std::size_t>(s.block)]);
    }
    case StmtKind::kSeq: {
      double total = 0;
      for (int c : s.children) total += wcet_rec(c, cost, counts, mult);
      return total;
    }
    case StmtKind::kIf: {
      // Worst case: the most expensive branch is always taken. When
      // accumulating path counts we must commit to that branch only, so
      // evaluate children without counting first, then recurse into the max.
      double best = -1;
      int best_child = -1;
      for (int c : s.children) {
        const double w = wcet_rec(c, cost, nullptr, 0);
        if (w > best) {
          best = w;
          best_child = c;
        }
      }
      if (counts && best_child >= 0) wcet_rec(best_child, cost, counts, mult);
      return best;
    }
    case StmtKind::kLoop: {
      const double body = wcet_rec(s.children[0], cost, counts, mult * s.loop_bound);
      return body * static_cast<double>(s.loop_bound);
    }
  }
  return 0;
}

double Program::wcet(const BlockCost& cost) const {
  if (root_ < 0) throw std::logic_error("Program::wcet: no root statement");
  return wcet_rec(root_, cost, nullptr, 1);
}

std::vector<std::int64_t> Program::wcet_counts(const BlockCost& cost) const {
  std::vector<std::int64_t> counts(static_cast<std::size_t>(num_blocks()), 0);
  if (root_ < 0) throw std::logic_error("Program::wcet_counts: no root statement");
  wcet_rec(root_, cost, &counts, 1);
  return counts;
}

double Program::profile_rec(int stmt_i, const BlockCost& cost, double mult) {
  const Stmt& s = stmts_[static_cast<std::size_t>(stmt_i)];
  switch (s.kind) {
    case StmtKind::kBlock: {
      auto& b = blocks_[static_cast<std::size_t>(s.block)];
      b.exec_count += static_cast<std::int64_t>(std::llround(mult));
      return mult * cost(s.block, b);
    }
    case StmtKind::kSeq: {
      double total = 0;
      for (int c : s.children) total += profile_rec(c, cost, mult);
      return total;
    }
    case StmtKind::kIf: {
      double total = 0;
      for (std::size_t i = 0; i < s.children.size(); ++i)
        total += profile_rec(s.children[i], cost, mult * s.branch_prob[i]);
      return total;
    }
    case StmtKind::kLoop:
      return profile_rec(s.children[0], cost, mult * static_cast<double>(s.loop_bound));
  }
  return 0;
}

double Program::profile(const BlockCost& cost) {
  if (root_ < 0) throw std::logic_error("Program::profile: no root statement");
  for (auto& b : blocks_) b.exec_count = 0;
  return profile_rec(root_, cost, 1.0);
}

BlockCost Program::sum_cost(std::function<double(const Node&)> sw_latency) {
  return [lat = std::move(sw_latency)](int, const BasicBlock& b) {
    double total = 0;
    for (const Node& n : b.dfg.nodes()) total += lat(n);
    return total;
  };
}

std::vector<int> Program::loop_stmts() const {
  std::vector<int> out;
  // Statement ids are creation order; a pre-order collection in tree order is
  // more useful, so walk from the root.
  std::vector<int> stack;
  if (root_ >= 0) stack.push_back(root_);
  while (!stack.empty()) {
    const int si = stack.back();
    stack.pop_back();
    const Stmt& s = stmts_[static_cast<std::size_t>(si)];
    if (s.kind == StmtKind::kLoop) out.push_back(si);
    for (auto it = s.children.rbegin(); it != s.children.rend(); ++it)
      stack.push_back(*it);
  }
  return out;
}

std::vector<int> Program::blocks_in(int stmt_i) const {
  std::vector<int> out;
  std::vector<int> stack{stmt_i};
  while (!stack.empty()) {
    const int si = stack.back();
    stack.pop_back();
    const Stmt& s = stmts_[static_cast<std::size_t>(si)];
    if (s.kind == StmtKind::kBlock) out.push_back(s.block);
    for (auto it = s.children.rbegin(); it != s.children.rend(); ++it)
      stack.push_back(*it);
  }
  return out;
}

}  // namespace isex::ir
