#include "isex/ir/opcode.hpp"

namespace isex::ir {

std::string_view opcode_name(Opcode op) {
  switch (op) {
    case Opcode::kAdd: return "add";
    case Opcode::kSub: return "sub";
    case Opcode::kMul: return "mul";
    case Opcode::kMac: return "mac";
    case Opcode::kAnd: return "and";
    case Opcode::kOr: return "or";
    case Opcode::kXor: return "xor";
    case Opcode::kNot: return "not";
    case Opcode::kShl: return "shl";
    case Opcode::kShr: return "shr";
    case Opcode::kRotl: return "rotl";
    case Opcode::kCmp: return "cmp";
    case Opcode::kSelect: return "select";
    case Opcode::kSext: return "sext";
    case Opcode::kConst: return "const";
    case Opcode::kInput: return "input";
    case Opcode::kLoad: return "load";
    case Opcode::kStore: return "store";
    case Opcode::kDiv: return "div";
    case Opcode::kBranch: return "branch";
    case Opcode::kCall: return "call";
    case Opcode::kCount: break;
  }
  return "?";
}

}  // namespace isex::ir
