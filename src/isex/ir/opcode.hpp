// Primitive operation set of the mini-IR.
//
// The opcode vocabulary mirrors the machine-independent intermediate
// representation the thesis' tool flow obtains from Trimaran: simple RISC-like
// scalar operations plus explicit memory / control operations. Memory and
// control-transfer operations (and anything else the micro-architecture cannot
// put in a custom functional unit) are *invalid* for custom-instruction
// inclusion and act as region separators in the data-flow graph.
#pragma once

#include <string_view>

namespace isex::ir {

enum class Opcode {
  // Arithmetic (valid for CI inclusion).
  kAdd,
  kSub,
  kMul,
  kMac,    // multiply-accumulate; the latency unit of the thesis (1 cycle @ 120MHz)
  // Logic / bit manipulation (valid).
  kAnd,
  kOr,
  kXor,
  kNot,
  kShl,
  kShr,
  kRotl,
  kCmp,    // comparison producing a flag value
  kSelect, // predicated select (c ? a : b), result of if-conversion
  kSext,   // sign/zero extension & sub-word extraction
  // Leaf value producers.
  kConst,  // literal; hardwired into hardware, contributes no input operand
  kInput,  // live-in variable / formal argument; always outside any CI
  // Invalid operations: region separators.
  kLoad,
  kStore,
  kDiv,    // iterative divider is not synthesized into CFUs in the flow
  kBranch,
  kCall,

  kCount,
};

inline constexpr int kNumOpcodes = static_cast<int>(Opcode::kCount);

/// True if a node with this opcode may be part of a custom instruction.
/// Loads, stores, divides, branches and calls are excluded (architectural
/// constraint); kInput nodes represent live-in values, not computation.
constexpr bool is_valid_for_ci(Opcode op) {
  switch (op) {
    case Opcode::kLoad:
    case Opcode::kStore:
    case Opcode::kDiv:
    case Opcode::kBranch:
    case Opcode::kCall:
    case Opcode::kInput:
      return false;
    default:
      return true;
  }
}

/// True for nodes that produce a value consumed through a register operand.
/// (Stores and branches produce no register result.)
constexpr bool produces_value(Opcode op) {
  switch (op) {
    case Opcode::kStore:
    case Opcode::kBranch:
      return false;
    default:
      return true;
  }
}

/// Constants are hardwired into the CFU datapath and therefore do not count
/// towards the input-operand constraint of a custom instruction.
constexpr bool is_free_input(Opcode op) { return op == Opcode::kConst; }

std::string_view opcode_name(Opcode op);

}  // namespace isex::ir
