#include "isex/ir/dfg.hpp"

#include <stdexcept>

namespace isex::ir {

NodeId Dfg::add(Opcode op, std::vector<NodeId> operands) {
  const NodeId id = static_cast<NodeId>(nodes_.size());
  for (NodeId o : operands) {
    if (o < 0 || o >= id) throw std::invalid_argument("Dfg::add: operand id out of range");
    if (!produces_value(nodes_[static_cast<std::size_t>(o)].op))
      throw std::invalid_argument("Dfg::add: operand produces no value");
  }
  Node n;
  n.op = op;
  n.operands = std::move(operands);
  nodes_.push_back(std::move(n));
  for (NodeId o : nodes_.back().operands)
    nodes_[static_cast<std::size_t>(o)].consumers.push_back(id);
  // Invalidate caches.
  ancestors_.clear();
  descendants_.clear();
  valid_mask_built_ = false;
  csr_built_ = false;
  return id;
}

void Dfg::ensure_csr() const {
  if (csr_built_) return;
  const auto n = static_cast<std::size_t>(num_nodes());
  csr_op_off_.assign(n + 1, 0);
  csr_use_off_.assign(n + 1, 0);
  std::size_t ops = 0, uses = 0;
  for (std::size_t i = 0; i < n; ++i) {
    csr_op_off_[i] = static_cast<std::int32_t>(ops);
    csr_use_off_[i] = static_cast<std::int32_t>(uses);
    ops += nodes_[i].operands.size();
    uses += nodes_[i].consumers.size();
  }
  csr_op_off_[n] = static_cast<std::int32_t>(ops);
  csr_use_off_[n] = static_cast<std::int32_t>(uses);
  csr_op_idx_.clear();
  csr_op_idx_.reserve(ops);
  csr_use_idx_.clear();
  csr_use_idx_.reserve(uses);
  for (std::size_t i = 0; i < n; ++i) {
    for (NodeId o : nodes_[i].operands)
      csr_op_idx_.push_back(static_cast<std::int32_t>(o));
    for (NodeId c : nodes_[i].consumers)
      csr_use_idx_.push_back(static_cast<std::int32_t>(c));
  }
  csr_built_ = true;
}

void Dfg::prepare() const {
  valid_mask();
  ensure_csr();
  ensure_reach_sets();
}

int Dfg::num_operations() const {
  int n = 0;
  for (const auto& node : nodes_)
    if (node.op != Opcode::kInput && node.op != Opcode::kConst) ++n;
  return n;
}

const util::Bitset& Dfg::valid_mask() const {
  if (!valid_mask_built_) {
    valid_mask_ = util::Bitset(static_cast<std::size_t>(num_nodes()));
    for (int i = 0; i < num_nodes(); ++i)
      if (is_valid_for_ci(nodes_[static_cast<std::size_t>(i)].op))
        valid_mask_.set(static_cast<std::size_t>(i));
    valid_mask_built_ = true;
  }
  return valid_mask_;
}

int Dfg::input_count(const util::Bitset& s) const {
  ensure_csr();
  util::Bitset seen(static_cast<std::size_t>(num_nodes()));
  int count = 0;
  s.for_each([&](std::size_t i) {
    for (std::int32_t o : operands_of(static_cast<NodeId>(i))) {
      const auto oi = static_cast<std::size_t>(o);
      if (s.test(oi) || seen.test(oi)) continue;
      seen.set(oi);
      if (!is_free_input(nodes_[oi].op)) ++count;
    }
  });
  return count;
}

int Dfg::output_count(const util::Bitset& s) const {
  ensure_csr();
  int count = 0;
  s.for_each([&](std::size_t i) {
    const Node& n = nodes_[i];
    if (!produces_value(n.op)) return;
    bool out = n.live_out;
    if (!out)
      for (std::int32_t c : consumers_of(static_cast<NodeId>(i)))
        if (!s.test(static_cast<std::size_t>(c))) {
          out = true;
          break;
        }
    if (out) ++count;
  });
  return count;
}

void Dfg::ensure_reach_sets() const {
  if (!ancestors_.empty()) return;
  const auto n = static_cast<std::size_t>(num_nodes());
  ancestors_.assign(n, util::Bitset(n));
  descendants_.assign(n, util::Bitset(n));
  // Node ids are a topological order, so a single forward pass builds
  // ancestor sets and a single backward pass builds descendant sets.
  for (std::size_t i = 0; i < n; ++i)
    for (NodeId o : nodes_[i].operands) {
      const auto oi = static_cast<std::size_t>(o);
      ancestors_[i].set(oi);
      ancestors_[i] |= ancestors_[oi];
    }
  for (std::size_t i = n; i-- > 0;)
    for (NodeId c : nodes_[i].consumers) {
      const auto ci = static_cast<std::size_t>(c);
      descendants_[i].set(ci);
      descendants_[i] |= descendants_[ci];
    }
}

const util::Bitset& Dfg::ancestors(NodeId n) const {
  ensure_reach_sets();
  return ancestors_[static_cast<std::size_t>(n)];
}

const util::Bitset& Dfg::descendants(NodeId n) const {
  ensure_reach_sets();
  return descendants_[static_cast<std::size_t>(n)];
}

bool Dfg::is_convex(const util::Bitset& s) const {
  ensure_reach_sets();
  // A node u outside S violates convexity iff it has both an ancestor and a
  // descendant inside S — equivalently u is a descendant of some member AND
  // an ancestor of some member, i.e. u ∈ desc-union(S) ∩ anc-union(S) \ S.
  // Unioning |S| reach sets and one fused word scan beats the O(V) rescan of
  // every outside node for all but the tiniest graphs.
  util::Bitset anc(static_cast<std::size_t>(num_nodes()));
  util::Bitset desc(static_cast<std::size_t>(num_nodes()));
  s.for_each([&](std::size_t v) {
    anc |= ancestors_[v];
    desc |= descendants_[v];
  });
  return !desc.intersects_outside(anc, s);
}

bool Dfg::is_convex_scan(const util::Bitset& s) const {
  ensure_reach_sets();
  // S is non-convex iff some node outside S lies on a path between two nodes
  // of S, i.e. has both an ancestor and a descendant inside S.
  const auto n = static_cast<std::size_t>(num_nodes());
  for (std::size_t v = 0; v < n; ++v) {
    if (s.test(v)) continue;
    if (ancestors_[v].intersects(s) && descendants_[v].intersects(s)) return false;
  }
  return true;
}

bool Dfg::all_valid(const util::Bitset& s) const {
  return s.is_subset_of(valid_mask());
}

std::vector<util::Bitset> Dfg::regions() const {
  const auto n = static_cast<std::size_t>(num_nodes());
  std::vector<int> comp(n, -1);
  std::vector<util::Bitset> out;
  const util::Bitset& valid = valid_mask();
  std::vector<std::size_t> stack;
  for (std::size_t seed = 0; seed < n; ++seed) {
    if (!valid.test(seed) || comp[seed] >= 0) continue;
    if (nodes_[seed].op == Opcode::kConst) continue;  // satellites, no region
    const int c = static_cast<int>(out.size());
    out.emplace_back(n);
    stack.assign(1, seed);
    comp[seed] = c;
    while (!stack.empty()) {
      const std::size_t v = stack.back();
      stack.pop_back();
      out[static_cast<std::size_t>(c)].set(v);
      auto visit = [&](NodeId u) {
        const auto ui = static_cast<std::size_t>(u);
        if (!valid.test(ui) || comp[ui] >= 0) return;
        if (nodes_[ui].op == Opcode::kConst) return;
        comp[ui] = c;
        stack.push_back(ui);
      };
      for (NodeId o : nodes_[v].operands) visit(o);
      for (NodeId s2 : nodes_[v].consumers) visit(s2);
    }
  }
  return out;
}

}  // namespace isex::ir
