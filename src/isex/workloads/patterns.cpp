#include "isex/workloads/patterns.hpp"

#include <numeric>

namespace isex::workloads {

std::vector<NodeId> emit_inputs(Dfg& d, int n) {
  std::vector<NodeId> out;
  out.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) out.push_back(d.add(Opcode::kInput));
  return out;
}

NodeId emit_hash_round(Dfg& d, NodeId a, NodeId b) {
  const NodeId rot = d.add(Opcode::kRotl, {a, d.add(Opcode::kConst)});
  const NodeId x = d.add(Opcode::kXor, {rot, b});
  const NodeId m = d.add(Opcode::kAnd, {a, b});
  return d.add(Opcode::kAdd, {x, m});
}

NodeId emit_feistel_half(Dfg& d, NodeId l, NodeId r) {
  const NodeId idx = d.add(Opcode::kShr, {r, d.add(Opcode::kConst)});
  const NodeId sbox = d.add(Opcode::kLoad, {idx});
  const NodeId sh = d.add(Opcode::kShl, {r, d.add(Opcode::kConst)});
  const NodeId f = d.add(Opcode::kAdd, {sbox, sh});
  return d.add(Opcode::kXor, {l, f});
}

NodeId emit_mac_chain(Dfg& d, const std::vector<NodeId>& xs,
                      const std::vector<NodeId>& hs) {
  NodeId acc = d.add(Opcode::kMul, {xs[0], hs[0]});
  for (std::size_t i = 1; i < xs.size() && i < hs.size(); ++i) {
    const NodeId p = d.add(Opcode::kMul, {xs[i], hs[i]});
    acc = d.add(Opcode::kAdd, {acc, p});
  }
  return acc;
}

std::pair<NodeId, NodeId> emit_butterfly(Dfg& d, NodeId a, NodeId b,
                                         bool scale_diff) {
  const NodeId sum = d.add(Opcode::kAdd, {a, b});
  NodeId diff = d.add(Opcode::kSub, {a, b});
  if (scale_diff)
    diff = d.add(Opcode::kMul, {diff, d.add(Opcode::kConst)});
  return {sum, diff};
}

NodeId emit_predicated_update(Dfg& d, NodeId x, NodeId delta) {
  const NodeId sum = d.add(Opcode::kAdd, {x, delta});
  const NodeId limit = d.add(Opcode::kConst);
  const NodeId over = d.add(Opcode::kCmp, {sum, limit});
  return d.add(Opcode::kSelect, {over, limit, sum});
}

NodeId emit_crc_bit(Dfg& d, NodeId crc, NodeId poly) {
  const NodeId lsb = d.add(Opcode::kAnd, {crc, d.add(Opcode::kConst)});
  const NodeId mask = d.add(Opcode::kSub, {d.add(Opcode::kConst), lsb});
  const NodeId sel = d.add(Opcode::kAnd, {poly, mask});
  const NodeId sh = d.add(Opcode::kShr, {crc, d.add(Opcode::kConst)});
  return d.add(Opcode::kXor, {sh, sel});
}

NodeId emit_table_mix(Dfg& d, NodeId x) {
  const NodeId idx = d.add(Opcode::kAnd, {x, d.add(Opcode::kConst)});
  const NodeId t = d.add(Opcode::kLoad, {idx});
  const NodeId sh = d.add(Opcode::kShl, {x, d.add(Opcode::kConst)});
  return d.add(Opcode::kOr, {t, sh});
}

NodeId emit_expression(Dfg& d, std::vector<NodeId> producers, int ops,
                       const OpMix& mix, util::Rng& rng) {
  static constexpr Opcode kOps[10] = {
      Opcode::kAdd, Opcode::kSub, Opcode::kMul, Opcode::kAnd, Opcode::kOr,
      Opcode::kXor, Opcode::kShl, Opcode::kShr, Opcode::kCmp, Opcode::kSelect};
  const double total =
      std::accumulate(mix.weights.begin(), mix.weights.end(), 0.0);
  NodeId last = producers.empty() ? d.add(Opcode::kInput) : producers.back();
  if (producers.empty()) producers.push_back(last);
  for (int k = 0; k < ops; ++k) {
    double pick = rng.uniform_real(0, total);
    int op_i = 0;
    for (; op_i < 9; ++op_i) {
      pick -= mix.weights[static_cast<std::size_t>(op_i)];
      if (pick <= 0) break;
    }
    const Opcode op = kOps[op_i];
    auto operand = [&] {
      return producers[static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<int>(producers.size()) - 1))];
    };
    NodeId n;
    if (op == Opcode::kSelect) {
      n = d.add(op, {operand(), operand(), operand()});
    } else {
      n = d.add(op, {operand(), operand()});
    }
    producers.push_back(n);
    last = n;
  }
  return last;
}

void seal_block(Dfg& d) {
  for (int i = 0; i < d.num_nodes(); ++i)
    if (ir::produces_value(d.node(i).op) && d.node(i).consumers.empty() &&
        d.node(i).op != Opcode::kConst && d.node(i).op != Opcode::kInput)
      d.mark_live_out(i);
}

}  // namespace isex::workloads
