// Synthetic benchmark kernels.
//
// The thesis evaluates on MiBench, MediaBench, the Malardalen WCET suite and
// Trimaran benchmarks, compiled by Trimaran 4.0 and profiled with reference
// inputs. This module replaces that toolchain with deterministic generators
// that assemble each kernel from its characteristic dataflow idioms
// (patterns.hpp), calibrated against the published per-benchmark statistics
// (Table 5.1: max/average basic-block size, WCET magnitude). The algorithms
// under study consume only (DFG shape, op mix, profile weights), which the
// generators reproduce; the substitution is documented in DESIGN.md.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "isex/ir/program.hpp"

namespace isex::workloads {

/// Names of all available benchmark kernels.
const std::vector<std::string>& benchmark_names();

/// Builds the named kernel; throws std::invalid_argument on unknown names.
/// Deterministic: equal names produce identical programs.
ir::Program make_benchmark(std::string_view name);

/// Benchmark provenance for the table printers ("MiBench", "MediaBench",
/// "WCET", "Trimaran").
std::string_view benchmark_source(std::string_view name);

// Individual kernels (also reachable via make_benchmark).
ir::Program make_crc32();
ir::Program make_sha();
ir::Program make_blowfish();
ir::Program make_rijndael();
ir::Program make_aes();
ir::Program make_ndes();
ir::Program make_3des();
ir::Program make_md5();
ir::Program make_jpeg_encode();   // "cjpeg"
ir::Program make_jpeg_decode();   // "djpeg"
ir::Program make_jfdctint();
ir::Program make_g721_encode();
ir::Program make_g721_decode();
ir::Program make_adpcm_encode();
ir::Program make_adpcm_decode();
ir::Program make_susan();
ir::Program make_edn();
ir::Program make_lms();
ir::Program make_compress();
ir::Program make_ispell();
ir::Program make_fft();
ir::Program make_viterbi();
ir::Program make_dijkstra();
ir::Program make_stringsearch();
ir::Program make_bitcount();
ir::Program make_qsort();
ir::Program make_basicmath();
ir::Program make_patricia();

}  // namespace isex::workloads
