// Task-set construction: benchmark kernels -> configuration curves -> the
// multi-task workloads of Tables 3.1, 4.1 and 5.2.
#pragma once

#include <string>
#include <vector>

#include "isex/rt/task.hpp"
#include "isex/workloads/workloads.hpp"

namespace isex::workloads {

/// Runs the full identification + selection pipeline on a benchmark and
/// returns it as a periodic task (period unset; callers use
/// TaskSet::set_periods_for_utilization). Results are memoized per
/// benchmark — curve construction enumerates thousands of candidates.
const rt::Task& cached_task(const std::string& benchmark);

/// Builds every not-yet-cached benchmark in `names` concurrently (tasks are
/// independent, so build order does not affect content) and publishes them
/// to the cache. Serial no-op with one thread or at most one cold name.
void prefetch_tasks(const std::vector<std::string>& names);

/// Composes a task set from benchmark names at the given software-only
/// utilization.
rt::TaskSet make_taskset(const std::vector<std::string>& names,
                         double utilization);

/// Table 3.1: the six 4-task sets of the Chapter 3 experiments.
const std::vector<std::vector<std::string>>& ch3_tasksets();

/// Table 4.1: the five 6-10-task sets of the Chapter 4 experiments.
const std::vector<std::vector<std::string>>& ch4_tasksets();

/// Table 5.2: the five 4-task sets of the Chapter 5 experiments.
const std::vector<std::vector<std::string>>& ch5_tasksets();

}  // namespace isex::workloads
