// Additional MiBench-family kernels: fft, viterbi (gsm), dijkstra,
// stringsearch, bitcount, qsort, basicmath, patricia. These broaden the
// substrate's structural variety — butterfly FFTs, add-compare-select
// trellises, relaxation loops, byte scanners, pure bit kernels, comparison
// sorters, polynomial evaluation and trie walks — and give the selection /
// partitioning studies workloads with very different customization headroom.
#include "isex/workloads/patterns.hpp"
#include "isex/workloads/workloads.hpp"

namespace isex::workloads {

ir::Program make_fft() {
  // Radix-2 FFT: butterfly stages with twiddle multiplies (fixed point).
  ir::Program p("fft");
  util::Rng rng(0xFF7);
  const int butterfly = p.add_block("butterfly");
  const int twiddle = p.add_block("twiddle_update");
  const int scale = p.add_block("scale_pass");
  {
    auto& d = p.block(butterfly).dfg;
    auto in = emit_inputs(d, 4);  // re/im of the two points
    // Complex multiply by the twiddle factor: 4 muls, 2 adds.
    const auto wr = d.add(Opcode::kConst);
    const auto wi = d.add(Opcode::kConst);
    const auto m1 = d.add(Opcode::kMul, {in[2], wr});
    const auto m2 = d.add(Opcode::kMul, {in[3], wi});
    const auto m3 = d.add(Opcode::kMul, {in[2], wi});
    const auto m4 = d.add(Opcode::kMul, {in[3], wr});
    const auto tr = d.add(Opcode::kSub, {m1, m2});
    const auto ti = d.add(Opcode::kAdd, {m3, m4});
    const auto trs = d.add(Opcode::kShr, {tr, d.add(Opcode::kConst)});
    const auto tis = d.add(Opcode::kShr, {ti, d.add(Opcode::kConst)});
    auto [sr, dr] = emit_butterfly(d, in[0], trs, false);
    auto [si, di] = emit_butterfly(d, in[1], tis, false);
    for (auto v : {sr, dr, si, di}) d.mark_live_out(v);
  }
  {
    auto& d = p.block(twiddle).dfg;
    emit_expression(d, emit_inputs(d, 2), 8,
                    OpMix{{2, 2, 2, 0, 0, 0, 2, 2, 0, 0}}, rng);
    seal_block(d);
  }
  {
    auto& d = p.block(scale).dfg;
    auto in = emit_inputs(d, 2);
    d.mark_live_out(d.add(Opcode::kShr, {in[0], d.add(Opcode::kConst)}));
    d.mark_live_out(d.add(Opcode::kShr, {in[1], d.add(Opcode::kConst)}));
  }
  // 1024-point FFT: 10 stages x 512 butterflies.
  const int stage = p.stmt_seq(
      {p.stmt_loop(512, p.stmt_block(butterfly)), p.stmt_block(twiddle)});
  p.set_root(p.stmt_seq(
      {p.stmt_loop(10, stage), p.stmt_loop(1024, p.stmt_block(scale))}));
  return p;
}

ir::Program make_viterbi() {
  // GSM-style Viterbi decoder: add-compare-select butterflies over 16
  // trellis states per received symbol.
  ir::Program p("viterbi");
  util::Rng rng(0x717EB);
  const int bmetric = p.add_block("branch_metric");
  const int acs = p.add_block("acs_states");
  const int traceback = p.add_block("traceback");
  {
    auto& d = p.block(bmetric).dfg;
    auto in = emit_inputs(d, 2);
    for (int b = 0; b < 4; ++b) {
      const auto expect = d.add(Opcode::kConst);
      const auto x = d.add(Opcode::kXor, {in[0], expect});
      const auto m = d.add(Opcode::kAnd, {x, in[1]});
      d.mark_live_out(d.add(Opcode::kAdd, {m, expect}));
    }
  }
  {
    // 8 unrolled ACS butterflies: two adds, a compare, a select each.
    auto& d = p.block(acs).dfg;
    auto in = emit_inputs(d, 4);  // two path metrics, two branch metrics
    for (int s = 0; s < 8; ++s) {
      const auto p0 = d.add(Opcode::kAdd, {in[0], in[2]});
      const auto p1 = d.add(Opcode::kAdd, {in[1], in[3]});
      const auto cmp = d.add(Opcode::kCmp, {p0, p1});
      const auto best = d.add(Opcode::kSelect, {cmp, p0, p1});
      d.mark_live_out(best);
      d.mark_live_out(cmp);  // survivor bit
    }
  }
  {
    auto& d = p.block(traceback).dfg;
    auto in = emit_inputs(d, 2);
    const auto idx = d.add(Opcode::kShr, {in[0], d.add(Opcode::kConst)});
    const auto sv = d.add(Opcode::kLoad, {idx});
    const auto bit = d.add(Opcode::kAnd, {sv, d.add(Opcode::kConst)});
    d.mark_live_out(d.add(Opcode::kOr,
                          {d.add(Opcode::kShl, {in[1], d.add(Opcode::kConst)}),
                           bit}));
  }
  (void)rng;
  const int symbol =
      p.stmt_seq({p.stmt_block(bmetric), p.stmt_loop(2, p.stmt_block(acs))});
  p.set_root(p.stmt_seq({p.stmt_loop(378, symbol),
                         p.stmt_loop(378, p.stmt_block(traceback))}));
  return p;
}

ir::Program make_dijkstra() {
  // Dijkstra: relax loop (loads + compare/select) and a linear-scan
  // extract-min; control-heavy with modest datapath headroom.
  ir::Program p("dijkstra");
  util::Rng rng(0xD1135);
  const int extract = p.add_block("extract_min");
  const int relax = p.add_block("relax_edge");
  {
    auto& d = p.block(extract).dfg;
    auto in = emit_inputs(d, 2);  // best, candidate distance
    const auto dist = d.add(Opcode::kLoad, {in[1]});
    const auto c = d.add(Opcode::kCmp, {dist, in[0]});
    d.mark_live_out(d.add(Opcode::kSelect, {c, dist, in[0]}));
    d.mark_live_out(c);
  }
  {
    auto& d = p.block(relax).dfg;
    auto in = emit_inputs(d, 2);  // du, edge index
    const auto w = d.add(Opcode::kLoad, {in[1]});
    const auto cand = d.add(Opcode::kAdd, {in[0], w});
    const auto dv = d.add(Opcode::kLoad, {cand});
    const auto c = d.add(Opcode::kCmp, {cand, dv});
    const auto nv = d.add(Opcode::kSelect, {c, cand, dv});
    d.add(Opcode::kStore, {nv, in[1]});
    d.mark_live_out(nv);
  }
  (void)rng;
  const int node = p.stmt_seq({p.stmt_loop(100, p.stmt_block(extract)),
                               p.stmt_loop(8, p.stmt_block(relax))});
  p.set_root(p.stmt_loop(100, node));
  return p;
}

ir::Program make_stringsearch() {
  // Boyer-Moore-Horspool: skip-table probes plus a compare loop.
  ir::Program p("stringsearch");
  util::Rng rng(0x57216);
  const int probe = p.add_block("skip_probe");
  const int compare = p.add_block("tail_compare");
  {
    auto& d = p.block(probe).dfg;
    auto in = emit_inputs(d, 2);
    const auto ch = d.add(Opcode::kAnd, {in[0], d.add(Opcode::kConst)});
    const auto skip = d.add(Opcode::kLoad, {ch});
    d.mark_live_out(d.add(Opcode::kAdd, {in[1], skip}));
  }
  {
    auto& d = p.block(compare).dfg;
    auto in = emit_inputs(d, 2);
    const auto a = d.add(Opcode::kLoad, {in[0]});
    const auto b = d.add(Opcode::kLoad, {in[1]});
    const auto x = d.add(Opcode::kXor, {a, b});
    d.mark_live_out(d.add(Opcode::kCmp, {x, d.add(Opcode::kConst)}));
  }
  (void)rng;
  const int pos = p.stmt_seq(
      {p.stmt_block(probe),
       p.stmt_if({p.stmt_loop(4, p.stmt_block(compare)), p.stmt_block(probe)},
                 {0.2, 0.8})});
  p.set_root(p.stmt_loop(12000, pos));
  return p;
}

ir::Program make_bitcount() {
  // Pure bit-twiddling: several population-count variants back to back —
  // the classic high-headroom customization target.
  ir::Program p("bitcount");
  util::Rng rng(0xB17C);
  const int tree = p.add_block("popcount_tree");
  const int kern = p.add_block("kernighan_steps");
  {
    // Tree reduction: x = (x&m) + ((x>>s)&m) for 5 levels.
    auto& d = p.block(tree).dfg;
    auto in = emit_inputs(d, 1);
    auto x = in[0];
    for (int level = 0; level < 5; ++level) {
      const auto m = d.add(Opcode::kConst);
      const auto lo = d.add(Opcode::kAnd, {x, m});
      const auto sh = d.add(Opcode::kShr, {x, d.add(Opcode::kConst)});
      const auto hi = d.add(Opcode::kAnd, {sh, m});
      x = d.add(Opcode::kAdd, {lo, hi});
    }
    d.mark_live_out(x);
  }
  {
    // Four unrolled x &= x-1 steps with a count accumulate.
    auto& d = p.block(kern).dfg;
    auto in = emit_inputs(d, 2);
    auto x = in[0];
    auto count = in[1];
    for (int s = 0; s < 4; ++s) {
      const auto dec = d.add(Opcode::kSub, {x, d.add(Opcode::kConst)});
      x = d.add(Opcode::kAnd, {x, dec});
      const auto nz = d.add(Opcode::kCmp, {d.add(Opcode::kConst), x});
      count = d.add(Opcode::kAdd, {count, nz});
    }
    d.mark_live_out(x);
    d.mark_live_out(count);
  }
  (void)rng;
  p.set_root(p.stmt_loop(
      75000, p.stmt_seq({p.stmt_block(tree), p.stmt_block(kern)})));
  return p;
}

ir::Program make_qsort() {
  // qsort: partition compares + swaps (loads/stores); little headroom.
  ir::Program p("qsort");
  util::Rng rng(0x4507);
  const int part = p.add_block("partition_step");
  const int swap = p.add_block("swap");
  {
    auto& d = p.block(part).dfg;
    auto in = emit_inputs(d, 2);
    const auto a = d.add(Opcode::kLoad, {in[0]});
    const auto c = d.add(Opcode::kCmp, {a, in[1]});
    d.mark_live_out(c);
    d.mark_live_out(d.add(Opcode::kAdd, {in[0], d.add(Opcode::kConst)}));
  }
  {
    auto& d = p.block(swap).dfg;
    auto in = emit_inputs(d, 2);
    const auto a = d.add(Opcode::kLoad, {in[0]});
    const auto b = d.add(Opcode::kLoad, {in[1]});
    d.add(Opcode::kStore, {b, in[0]});
    d.add(Opcode::kStore, {a, in[1]});
    d.mark_live_out(d.add(Opcode::kSub, {in[1], in[0]}));
  }
  (void)rng;
  const int step = p.stmt_seq(
      {p.stmt_block(part),
       p.stmt_if({p.stmt_block(swap), p.stmt_block(part)}, {0.4, 0.6})});
  p.set_root(p.stmt_loop(60000, step));
  return p;
}

ir::Program make_basicmath() {
  // basicmath: cubic-root polynomial evaluation (Horner) + integer sqrt
  // bit-by-bit loop + angle conversions; div-heavy in places.
  ir::Program p("basicmath");
  util::Rng rng(0xBA51C);
  const int horner = p.add_block("horner_cubic");
  const int isqrt = p.add_block("isqrt_step");
  const int convert = p.add_block("deg_rad");
  {
    auto& d = p.block(horner).dfg;
    auto in = emit_inputs(d, 1);
    auto acc = d.add(Opcode::kConst);
    for (int k = 0; k < 3; ++k) {
      const auto m = d.add(Opcode::kMul, {acc, in[0]});
      acc = d.add(Opcode::kAdd, {m, d.add(Opcode::kConst)});
    }
    d.mark_live_out(acc);
  }
  {
    auto& d = p.block(isqrt).dfg;
    auto in = emit_inputs(d, 3);  // rem, root, bit
    const auto trial = d.add(Opcode::kAdd, {in[1], in[2]});
    const auto c = d.add(Opcode::kCmp, {trial, in[0]});
    const auto nrem = d.add(Opcode::kSelect,
                            {c, d.add(Opcode::kSub, {in[0], trial}), in[0]});
    const auto nroot = d.add(Opcode::kSelect,
                             {c, d.add(Opcode::kAdd, {trial, in[2]}), in[1]});
    d.mark_live_out(d.add(Opcode::kShr, {nrem, d.add(Opcode::kConst)}));
    d.mark_live_out(d.add(Opcode::kShr, {nroot, d.add(Opcode::kConst)}));
  }
  {
    auto& d = p.block(convert).dfg;
    auto in = emit_inputs(d, 1);
    const auto m = d.add(Opcode::kMul, {in[0], d.add(Opcode::kConst)});
    d.mark_live_out(d.add(Opcode::kDiv, {m, d.add(Opcode::kConst)}));
  }
  (void)rng;
  p.set_root(p.stmt_seq({p.stmt_loop(3000, p.stmt_block(horner)),
                         p.stmt_loop(16000, p.stmt_block(isqrt)),
                         p.stmt_loop(360, p.stmt_block(convert))}));
  return p;
}

ir::Program make_patricia() {
  // Patricia trie routing-table lookups: bit tests + pointer loads.
  ir::Program p("patricia");
  util::Rng rng(0xBA721);
  const int walk = p.add_block("trie_step");
  const int match = p.add_block("prefix_match");
  {
    auto& d = p.block(walk).dfg;
    auto in = emit_inputs(d, 2);  // key, node
    const auto bitpos = d.add(Opcode::kLoad, {in[1]});
    const auto sh = d.add(Opcode::kShr, {in[0], bitpos});
    const auto bit = d.add(Opcode::kAnd, {sh, d.add(Opcode::kConst)});
    const auto off = d.add(Opcode::kAdd, {in[1], bit});
    d.mark_live_out(d.add(Opcode::kLoad, {off}));
  }
  {
    auto& d = p.block(match).dfg;
    auto in = emit_inputs(d, 2);
    const auto x = d.add(Opcode::kXor, {in[0], in[1]});
    const auto masked = d.add(Opcode::kAnd, {x, d.add(Opcode::kConst)});
    d.mark_live_out(d.add(Opcode::kCmp, {masked, d.add(Opcode::kConst)}));
  }
  (void)rng;
  const int lookup =
      p.stmt_seq({p.stmt_loop(16, p.stmt_block(walk)), p.stmt_block(match)});
  p.set_root(p.stmt_loop(5000, lookup));
  return p;
}

}  // namespace isex::workloads
