// DFG pattern emitters: the computational idioms the benchmark kernels are
// assembled from.
//
// The identification / selection / partitioning algorithms see only DFG
// shape, operation mix and profile weights, so the synthetic kernels are
// built from the idioms that dominate the real MiBench / MediaBench / WCET
// programs: hash rounds (rotate-xor-add), Feistel rounds (xor with S-box
// loads), MAC chains (DSP filters), DCT butterflies, predicated updates
// (if-converted ADPCM steps), CRC bit steps, and table-lookup mixes.
// Every emitter appends nodes to a caller-supplied DFG and returns the ids of
// the values it produces, so kernels can chain idioms into longer datapaths.
#pragma once

#include <array>
#include <utility>
#include <vector>

#include "isex/ir/dfg.hpp"
#include "isex/util/rng.hpp"

namespace isex::workloads {

using ir::Dfg;
using ir::NodeId;
using ir::Opcode;

/// n fresh live-in values.
std::vector<NodeId> emit_inputs(Dfg& d, int n);

/// One hash round: t = rotl(a, c) ^ b; out = t + (a & b). Returns {out}.
NodeId emit_hash_round(Dfg& d, NodeId a, NodeId b);

/// One Feistel half-round with an S-box access: out = l ^ f(r) where
/// f(r) = load(r >> c) + (r << c'). The load is an invalid node, so this
/// idiom creates the region boundaries typical of DES/Blowfish blocks.
NodeId emit_feistel_half(Dfg& d, NodeId l, NodeId r);

/// MAC chain of `taps` multiply-accumulates over alternating inputs:
/// acc += x[i] * h[i]. Returns the accumulator.
NodeId emit_mac_chain(Dfg& d, const std::vector<NodeId>& xs,
                      const std::vector<NodeId>& hs);

/// 2-point DCT butterfly: returns {a + b, a - b} optionally scaled by a
/// constant multiply on the difference path.
std::pair<NodeId, NodeId> emit_butterfly(Dfg& d, NodeId a, NodeId b,
                                         bool scale_diff);

/// Predicated saturating update (if-converted ADPCM step):
/// out = select(cmp(x, limit), limit, x + delta).
NodeId emit_predicated_update(Dfg& d, NodeId x, NodeId delta);

/// One CRC bit step: crc' = (crc >> 1) ^ (poly & -(crc & 1)), built from
/// shr/and/xor/sub primitives. Returns the new crc value.
NodeId emit_crc_bit(Dfg& d, NodeId crc, NodeId poly);

/// Byte-substitution mix: y = load(x & 0xff) | (x << 8) — the classic
/// table-driven cipher/compression idiom (invalid load inside).
NodeId emit_table_mix(Dfg& d, NodeId x);

/// Pseudo-random arithmetic/logic expression tree over the given producers,
/// `ops` nodes long, using the weighted op mix. Weights index:
/// {add,sub,mul,and,or,xor,shl,shr,cmp,select}. Returns the last value.
struct OpMix {
  std::array<double, 10> weights{1, 1, 1, 1, 1, 1, 1, 1, 1, 1};
};
NodeId emit_expression(Dfg& d, std::vector<NodeId> producers, int ops,
                       const OpMix& mix, util::Rng& rng);

/// Marks every node without consumers as live-out (typical end-of-block).
void seal_block(Dfg& d);

}  // namespace isex::workloads
