// Media / signal-path kernels: the JPEG pipelines, the integer DCT, G.721
// ADPCM speech codecs, IMA ADPCM, and the SUSAN image filter.
#include "isex/workloads/patterns.hpp"
#include "isex/workloads/workloads.hpp"

namespace isex::workloads {

namespace {

/// An 8-point 1-D integer DCT stage: butterflies + scaled rotations
/// (jfdctint's loop body; ~100 operations).
void fill_dct_block(Dfg& d, util::Rng& rng) {
  auto in = emit_inputs(d, 8);
  // Stage 1: 4 butterflies.
  std::vector<NodeId> s, t;
  for (int i = 0; i < 4; ++i) {
    auto [sum, diff] = emit_butterfly(d, in[static_cast<std::size_t>(i)],
                                      in[static_cast<std::size_t>(7 - i)], false);
    s.push_back(sum);
    t.push_back(diff);
  }
  // Stage 2: even part butterflies, odd part scaled rotations.
  auto [e0, e1] = emit_butterfly(d, s[0], s[3], false);
  auto [e2, e3] = emit_butterfly(d, s[1], s[2], true);
  std::vector<NodeId> outs{e0, e1, e2, e3};
  for (int i = 0; i < 4; ++i) {
    const NodeId m1 = d.add(Opcode::kMul, {t[static_cast<std::size_t>(i)],
                                           d.add(Opcode::kConst)});
    const NodeId m2 = d.add(Opcode::kMul,
                            {t[static_cast<std::size_t>((i + 1) % 4)],
                             d.add(Opcode::kConst)});
    const NodeId sum = d.add(Opcode::kAdd, {m1, m2});
    const NodeId sh = d.add(Opcode::kShr, {sum, d.add(Opcode::kConst)});
    outs.push_back(sh);
  }
  // Descale / round.
  for (NodeId o : outs) {
    const NodeId r = d.add(Opcode::kAdd, {o, d.add(Opcode::kConst)});
    d.mark_live_out(d.add(Opcode::kShr, {r, d.add(Opcode::kConst)}));
  }
  (void)rng;
}

/// Quantization / zig-zag style block: mul + shift + predicated clamp.
void fill_quant_block(Dfg& d, int lanes, util::Rng& rng) {
  auto in = emit_inputs(d, 4);
  for (int i = 0; i < lanes; ++i) {
    const NodeId m = d.add(Opcode::kMul, {in[static_cast<std::size_t>(i % 4)],
                                          d.add(Opcode::kConst)});
    const NodeId sh = d.add(Opcode::kShr, {m, d.add(Opcode::kConst)});
    d.mark_live_out(emit_predicated_update(d, sh, in[static_cast<std::size_t>((i + 1) % 4)]));
  }
  (void)rng;
}

/// Huffman-ish bit packing: table loads + shifts/or (load separators).
void fill_entropy_block(Dfg& d, int symbols, util::Rng& rng) {
  auto in = emit_inputs(d, 3);
  NodeId acc = in[0];
  for (int i = 0; i < symbols; ++i) {
    const NodeId code = emit_table_mix(d, acc);
    acc = d.add(Opcode::kOr,
                {d.add(Opcode::kShl, {acc, d.add(Opcode::kConst)}), code});
  }
  d.mark_live_out(acc);
  (void)rng;
}

ir::Program make_jpeg(const char* name, std::uint64_t seed, bool decode) {
  ir::Program p(name);
  util::Rng rng(seed);
  const int setup = p.add_block("setup");
  const int color = p.add_block(decode ? "ycc_to_rgb" : "rgb_to_ycc");
  const int dct = p.add_block(decode ? "idct_1d" : "fdct_1d");
  const int quant = p.add_block(decode ? "dequant" : "quant");
  const int entropy = p.add_block(decode ? "huff_decode" : "huff_encode");
  {
    auto& d = p.block(setup).dfg;
    emit_expression(d, emit_inputs(d, 3), 12, OpMix{}, rng);
    seal_block(d);
  }
  {
    // Color conversion: 3x3 MAC with shifts.
    auto& d = p.block(color).dfg;
    auto in = emit_inputs(d, 3);
    for (int ch = 0; ch < 3; ++ch) {
      std::vector<NodeId> consts;
      for (int k = 0; k < 3; ++k) consts.push_back(d.add(Opcode::kConst));
      const NodeId mac = emit_mac_chain(d, in, consts);
      d.mark_live_out(d.add(Opcode::kShr, {mac, d.add(Opcode::kConst)}));
    }
  }
  fill_dct_block(p.block(dct).dfg, rng);
  fill_quant_block(p.block(quant).dfg, 16, rng);
  fill_entropy_block(p.block(entropy).dfg, 10, rng);

  // Per 8x8 block: 16 1-D DCT passes (8 rows + 8 cols), quant, entropy.
  const int per_mcu =
      p.stmt_seq({p.stmt_loop(16, p.stmt_block(dct)), p.stmt_block(quant),
                  p.stmt_block(entropy)});
  // 1200 MCUs (~320x240 image) with color conversion per MCU.
  const int mcu = p.stmt_seq({p.stmt_loop(64, p.stmt_block(color)), per_mcu});
  p.set_root(p.stmt_seq({p.stmt_block(setup), p.stmt_loop(1200, mcu)}));
  return p;
}

/// The G.721 ADPCM predictor: cmp/select-heavy small blocks (Table 5.1:
/// avg BB 9, max 80), huge sample counts (WCET ~1.1e8).
ir::Program make_g721(const char* name, std::uint64_t seed, bool encode) {
  ir::Program p(name);
  util::Rng rng(seed);
  const int setup = p.add_block("setup");
  const int predict = p.add_block("predictor");    // max-size block
  const int quantize = p.add_block(encode ? "quantize" : "reconstruct");
  const int adapt = p.add_block("step_adapt");
  const int update = p.add_block("update_filter");
  {
    auto& d = p.block(setup).dfg;
    emit_expression(d, emit_inputs(d, 2), 8, OpMix{}, rng);
    seal_block(d);
  }
  {
    // 6-tap pole/zero predictor: sign/magnitude tricks - shifts, cmps, adds.
    auto& d = p.block(predict).dfg;
    auto in = emit_inputs(d, 6);
    NodeId acc = d.add(Opcode::kConst);
    for (int tap = 0; tap < 6; ++tap) {
      const NodeId x = in[static_cast<std::size_t>(tap)];
      const NodeId mag = d.add(Opcode::kShr, {x, d.add(Opcode::kConst)});
      const NodeId sgn = d.add(Opcode::kCmp, {x, d.add(Opcode::kConst)});
      const NodeId neg = d.add(Opcode::kSub, {d.add(Opcode::kConst), mag});
      const NodeId term = d.add(Opcode::kSelect, {sgn, neg, mag});
      acc = d.add(Opcode::kAdd, {acc, term});
    }
    const NodeId sh = d.add(Opcode::kShr, {acc, d.add(Opcode::kConst)});
    emit_expression(d, {sh, in[0], in[1]}, 34,
                    OpMix{{3, 2, 0, 1, 1, 1, 2, 3, 2, 3}}, rng);
    seal_block(d);
  }
  {
    auto& d = p.block(quantize).dfg;
    auto in = emit_inputs(d, 2);
    const NodeId diff = d.add(Opcode::kSub, {in[0], in[1]});
    const NodeId clamped = emit_predicated_update(d, diff, in[1]);
    d.mark_live_out(d.add(Opcode::kShr, {clamped, d.add(Opcode::kConst)}));
  }
  {
    auto& d = p.block(adapt).dfg;
    auto in = emit_inputs(d, 2);
    d.mark_live_out(emit_predicated_update(d, in[0], in[1]));
  }
  {
    auto& d = p.block(update).dfg;
    emit_expression(d, emit_inputs(d, 3), 12,
                    OpMix{{3, 2, 0, 1, 0, 1, 2, 2, 2, 2}}, rng);
    seal_block(d);
  }
  const int sample = p.stmt_seq(
      {p.stmt_block(predict), p.stmt_block(quantize),
       p.stmt_if({p.stmt_block(adapt), p.stmt_block(update)}, {0.5, 0.5}),
       p.stmt_block(update)});
  p.set_root(
      p.stmt_seq({p.stmt_block(setup), p.stmt_loop(1500000, sample)}));
  return p;
}

/// IMA ADPCM: one big if-converted step block (Table 5.1: max BB 331).
ir::Program make_adpcm(const char* name, std::uint64_t seed, bool encode) {
  ir::Program p(name);
  util::Rng rng(seed);
  const int setup = p.add_block("setup");
  const int step = p.add_block("step");  // large if-converted block
  const int pack = p.add_block(encode ? "pack" : "unpack");
  {
    auto& d = p.block(setup).dfg;
    emit_expression(d, emit_inputs(d, 2), 6, OpMix{}, rng);
    seal_block(d);
  }
  {
    auto& d = p.block(step).dfg;
    auto in = emit_inputs(d, 4);
    NodeId valpred = in[0];
    NodeId index = in[1];
    // Eight unrolled sample steps, each fully if-converted (~40 ops).
    for (int s = 0; s < 8; ++s) {
      const NodeId delta = d.add(Opcode::kSub, {in[2], valpred});
      const NodeId sgn = d.add(Opcode::kCmp, {delta, d.add(Opcode::kConst)});
      const NodeId mag = d.add(Opcode::kSelect,
                               {sgn, d.add(Opcode::kSub, {d.add(Opcode::kConst), delta}),
                                delta});
      NodeId vpdiff = d.add(Opcode::kShr, {mag, d.add(Opcode::kConst)});
      for (int b = 0; b < 3; ++b) {
        const NodeId bit = d.add(Opcode::kCmp, {mag, d.add(Opcode::kConst)});
        const NodeId half = d.add(Opcode::kShr, {mag, d.add(Opcode::kConst)});
        vpdiff = d.add(Opcode::kSelect,
                       {bit, d.add(Opcode::kAdd, {vpdiff, half}), vpdiff});
      }
      const NodeId vneg = d.add(Opcode::kSub, {valpred, vpdiff});
      const NodeId vpos = d.add(Opcode::kAdd, {valpred, vpdiff});
      valpred = d.add(Opcode::kSelect, {sgn, vneg, vpos});
      valpred = emit_predicated_update(d, valpred, in[3]);
      index = emit_predicated_update(d, index, sgn);
    }
    d.mark_live_out(valpred);
    d.mark_live_out(index);
  }
  {
    auto& d = p.block(pack).dfg;
    auto in = emit_inputs(d, 2);
    const NodeId hi = d.add(Opcode::kShl, {in[0], d.add(Opcode::kConst)});
    d.mark_live_out(d.add(Opcode::kOr, {hi, in[1]}));
  }
  const int body = p.stmt_seq({p.stmt_block(step), p.stmt_block(pack)});
  p.set_root(p.stmt_seq({p.stmt_block(setup), p.stmt_loop(1250, body)}));
  return p;
}

}  // namespace

ir::Program make_jpeg_encode() { return make_jpeg("cjpeg", 0xC19E6, false); }
ir::Program make_jpeg_decode() { return make_jpeg("djpeg", 0xD19E6, true); }

ir::Program make_jfdctint() {
  // Standalone integer DCT (WCET suite): 8 row passes + 8 column passes of
  // the 1-D DCT block, one image block total (WCET ~2.2K cycles).
  ir::Program p("jfdctint");
  util::Rng rng(0x1FDC7);
  const int row = p.add_block("row_pass");
  const int col = p.add_block("col_pass");
  fill_dct_block(p.block(row).dfg, rng);
  fill_dct_block(p.block(col).dfg, rng);
  p.set_root(p.stmt_seq({p.stmt_loop(8, p.stmt_block(row)),
                         p.stmt_loop(8, p.stmt_block(col))}));
  return p;
}

ir::Program make_g721_encode() { return make_g721("g721encode", 0x6721E, true); }
ir::Program make_g721_decode() { return make_g721("g721decode", 0x6721D, false); }
ir::Program make_adpcm_encode() { return make_adpcm("adpcm_enc", 0xADE, true); }
ir::Program make_adpcm_decode() { return make_adpcm("adpcm_dec", 0xADD, false); }

ir::Program make_susan() {
  // SUSAN edge detector: per-pixel window of absolute-difference threshold
  // accumulation (cmp/select/add) + a centroid MAC block.
  ir::Program p("susan");
  util::Rng rng(0x5005A);
  const int setup = p.add_block("setup");
  const int usan = p.add_block("usan_window");
  const int centroid = p.add_block("centroid");
  {
    auto& d = p.block(setup).dfg;
    emit_expression(d, emit_inputs(d, 2), 8, OpMix{}, rng);
    seal_block(d);
  }
  {
    auto& d = p.block(usan).dfg;
    auto in = emit_inputs(d, 5);
    NodeId acc = d.add(Opcode::kConst);
    for (int px = 0; px < 12; ++px) {
      const NodeId diff =
          d.add(Opcode::kSub, {in[static_cast<std::size_t>(px % 4)], in[4]});
      const NodeId sgn = d.add(Opcode::kCmp, {diff, d.add(Opcode::kConst)});
      const NodeId neg = d.add(Opcode::kSub, {d.add(Opcode::kConst), diff});
      const NodeId abs = d.add(Opcode::kSelect, {sgn, neg, diff});
      const NodeId thr = d.add(Opcode::kCmp, {abs, d.add(Opcode::kConst)});
      acc = d.add(Opcode::kAdd, {acc, thr});
    }
    d.mark_live_out(acc);
  }
  {
    auto& d = p.block(centroid).dfg;
    auto in = emit_inputs(d, 4);
    std::vector<NodeId> consts;
    for (int k = 0; k < 4; ++k) consts.push_back(d.add(Opcode::kConst));
    d.mark_live_out(emit_mac_chain(d, in, consts));
  }
  const int pixel = p.stmt_seq({p.stmt_block(usan), p.stmt_block(centroid)});
  p.set_root(p.stmt_seq({p.stmt_block(setup), p.stmt_loop(76800, pixel)}));
  return p;
}

}  // namespace isex::workloads
