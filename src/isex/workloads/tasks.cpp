#include "isex/workloads/tasks.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <mutex>
#include <stdexcept>

#include "isex/hw/cell_library.hpp"
#include "isex/obs/trace.hpp"
#include "isex/select/config_curve.hpp"
#include "isex/util/task_pool.hpp"

namespace isex::workloads {

namespace {

select::CurveOptions default_curve_options(const ir::Program& prog) {
  select::CurveOptions opts;
  // Bound the enumeration effort on kernels with very large basic blocks
  // (3des); the curve quality saturates long before these caps.
  int max_block = 0;
  for (const auto& b : prog.blocks())
    max_block = std::max(max_block, b.dfg.num_nodes());
  if (max_block > 600) {
    opts.enum_opts.max_candidates = 20000;
    opts.enum_opts.max_candidate_nodes = 16;
  } else {
    opts.enum_opts.max_candidates = 60000;
    opts.enum_opts.max_candidate_nodes = 24;
  }
  return opts;
}

rt::Task build_task(const std::string& benchmark) {
  ISEX_SPAN_CAT("workloads.build_task." + benchmark, "workloads");
  ISEX_COUNT("workloads.tasks_built");
  const auto& lib = hw::CellLibrary::standard_018um();
  ir::Program prog = make_benchmark(benchmark);
  const auto cost = ir::Program::sum_cost(
      [&lib](const ir::Node& n) { return lib.sw_cycles(n); });
  const auto counts = prog.wcet_counts(cost);
  const auto curve =
      select::build_config_curve(prog, counts, lib, default_curve_options(prog));
  rt::Task t;
  t.name = benchmark;
  t.configs = curve.points;
  return t;
}

}  // namespace

namespace {

struct TaskCache {
  std::mutex mu;
  std::map<std::string, rt::Task> map;  // node-stable: refs survive inserts
};

TaskCache& task_cache() {
  static TaskCache c;
  return c;
}

}  // namespace

const rt::Task& cached_task(const std::string& benchmark) {
  TaskCache& c = task_cache();
  std::scoped_lock lock(c.mu);
  auto it = c.map.find(benchmark);
  if (it == c.map.end())
    it = c.map.emplace(benchmark, build_task(benchmark)).first;
  return it->second;
}

void prefetch_tasks(const std::vector<std::string>& names) {
  TaskCache& c = task_cache();
  std::vector<std::string> missing;
  {
    std::scoped_lock lock(c.mu);
    for (const auto& n : names)
      if (!n.empty() && !c.map.contains(n) &&
          std::find(missing.begin(), missing.end(), n) == missing.end())
        missing.push_back(n);
  }
  // cached_task serializes builds under the cache lock; with several cold
  // kernels and threads available, build them outside the lock concurrently
  // (a task's content is independent of build order) and publish at the end.
  if (missing.size() <= 1 || util::max_threads() <= 1) return;
  std::vector<rt::Task> built(missing.size());
  util::parallel_for(missing.size(),
                     [&](std::size_t i) { built[i] = build_task(missing[i]); });
  std::scoped_lock lock(c.mu);
  for (std::size_t i = 0; i < missing.size(); ++i)
    c.map.emplace(std::move(missing[i]), std::move(built[i]));
}

rt::TaskSet make_taskset(const std::vector<std::string>& names,
                         double utilization) {
  prefetch_tasks(names);
  if (names.empty())
    throw std::invalid_argument("make_taskset: empty benchmark list");
  if (!(utilization > 0) || !std::isfinite(utilization))
    throw std::invalid_argument(
        "make_taskset: utilization must be positive and finite (got " +
        std::to_string(utilization) + ")");
  rt::TaskSet ts;
  for (const auto& n : names) {
    if (n.empty())
      throw std::invalid_argument("make_taskset: empty benchmark name");
    ts.tasks.push_back(cached_task(n));
  }
  ts.set_periods_for_utilization(utilization);
  if (const std::string err = ts.validate(); !err.empty())
    throw std::logic_error("make_taskset: built an invalid task set: " + err);
  return ts;
}

const std::vector<std::vector<std::string>>& ch3_tasksets() {
  static const std::vector<std::vector<std::string>> sets = {
      {"crc32", "sha", "djpeg", "blowfish"},
      {"blowfish", "adpcm_dec", "crc32", "cjpeg"},
      {"adpcm_enc", "blowfish", "djpeg", "crc32"},
      {"sha", "susan", "crc32", "g721encode"},
      {"adpcm_dec", "djpeg", "crc32", "blowfish"},
      {"crc32", "sha", "blowfish", "susan"},
  };
  return sets;
}

const std::vector<std::vector<std::string>>& ch4_tasksets() {
  static const std::vector<std::vector<std::string>> sets = {
      {"cjpeg", "adpcm_enc", "aes", "compress", "rijndael", "ispell"},
      {"djpeg", "g721decode", "cjpeg", "ispell", "adpcm_enc", "jfdctint",
       "aes"},
      {"cjpeg", "ispell", "edn", "sha", "g721decode", "djpeg", "compress",
       "ndes"},
      {"adpcm_enc", "rijndael", "cjpeg", "ispell", "sha", "ndes", "djpeg",
       "compress", "edn"},
      {"aes", "djpeg", "g721decode", "rijndael", "jfdctint", "cjpeg", "edn",
       "ispell", "sha", "ndes"},
  };
  return sets;
}

const std::vector<std::vector<std::string>>& ch5_tasksets() {
  static const std::vector<std::vector<std::string>> sets = {
      {"3des", "rijndael", "sha", "g721decode"},
      {"sha", "jfdctint", "rijndael", "ndes"},
      {"ndes", "g721decode", "rijndael", "sha"},
      {"aes", "3des", "adpcm_enc", "jfdctint"},
      {"adpcm_enc", "jfdctint", "rijndael", "sha"},
  };
  return sets;
}

}  // namespace isex::workloads
