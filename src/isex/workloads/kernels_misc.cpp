// DSP / miscellaneous kernels: edn (vector MACs), lms (adaptive filter),
// compress (LZ-style table code), ispell (string hashing / lookups) —
// plus the benchmark registry.
#include <stdexcept>

#include "isex/workloads/patterns.hpp"
#include "isex/workloads/workloads.hpp"

namespace isex::workloads {

ir::Program make_edn() {
  // EDN: a bundle of small vector kernels dominated by MAC inner products.
  ir::Program p("edn");
  util::Rng rng(0xED7);
  const int fir = p.add_block("fir_inner");
  const int latsynth = p.add_block("lattice_synth");
  const int codebook = p.add_block("codebook_search");
  {
    auto& d = p.block(fir).dfg;
    auto xs = emit_inputs(d, 4);
    auto hs = emit_inputs(d, 4);
    d.mark_live_out(emit_mac_chain(d, xs, hs));
  }
  {
    auto& d = p.block(latsynth).dfg;
    auto in = emit_inputs(d, 4);
    NodeId top = in[0];
    for (int s = 0; s < 4; ++s) {
      const NodeId m = d.add(Opcode::kMul,
                             {in[static_cast<std::size_t>(1 + s % 3)],
                              d.add(Opcode::kConst)});
      const NodeId sh = d.add(Opcode::kShr, {m, d.add(Opcode::kConst)});
      top = d.add(Opcode::kSub, {top, sh});
    }
    d.mark_live_out(top);
  }
  {
    auto& d = p.block(codebook).dfg;
    auto in = emit_inputs(d, 4);
    const NodeId mac = emit_mac_chain(d, {in[0], in[1]}, {in[2], in[3]});
    const NodeId best = d.add(Opcode::kCmp, {mac, in[0]});
    d.mark_live_out(d.add(Opcode::kSelect, {best, mac, in[0]}));
  }
  p.set_root(p.stmt_seq({p.stmt_loop(800, p.stmt_block(fir)),
                         p.stmt_loop(600, p.stmt_block(latsynth)),
                         p.stmt_loop(400, p.stmt_block(codebook))}));
  (void)rng;
  return p;
}

ir::Program make_lms() {
  // LMS adaptive filter: filter MAC + coefficient update per sample
  // (Table 5.1: small blocks, max BB 29).
  ir::Program p("lms");
  util::Rng rng(0x135);
  const int filt = p.add_block("filter");
  const int update = p.add_block("coeff_update");
  {
    auto& d = p.block(filt).dfg;
    auto xs = emit_inputs(d, 4);
    auto ws = emit_inputs(d, 4);
    const NodeId y = emit_mac_chain(d, xs, ws);
    d.mark_live_out(d.add(Opcode::kShr, {y, d.add(Opcode::kConst)}));
  }
  {
    auto& d = p.block(update).dfg;
    auto in = emit_inputs(d, 3);  // err, x, w
    const NodeId mu_e = d.add(Opcode::kMul, {in[0], d.add(Opcode::kConst)});
    const NodeId g = d.add(Opcode::kMul, {mu_e, in[1]});
    const NodeId sh = d.add(Opcode::kShr, {g, d.add(Opcode::kConst)});
    d.mark_live_out(d.add(Opcode::kAdd, {in[2], sh}));
  }
  const int sample = p.stmt_seq({p.stmt_block(filt), p.stmt_block(update)});
  p.set_root(p.stmt_loop(1500, sample));
  (void)rng;
  return p;
}

ir::Program make_compress() {
  // LZW-style compress: hash probe (loads), code emit (shifts/or), with a
  // hit/miss branch — control-heavy, modest customization potential.
  ir::Program p("compress");
  util::Rng rng(0xC03);
  const int hash = p.add_block("hash_probe");
  const int hit = p.add_block("hit_emit");
  const int miss = p.add_block("miss_insert");
  {
    auto& d = p.block(hash).dfg;
    auto in = emit_inputs(d, 2);
    const NodeId h1 = d.add(Opcode::kShl, {in[0], d.add(Opcode::kConst)});
    const NodeId h2 = d.add(Opcode::kXor, {h1, in[1]});
    const NodeId probe = d.add(Opcode::kLoad, {h2});
    const NodeId eq = d.add(Opcode::kCmp, {probe, in[0]});
    d.mark_live_out(eq);
  }
  {
    auto& d = p.block(hit).dfg;
    auto in = emit_inputs(d, 2);
    const NodeId sh = d.add(Opcode::kShl, {in[0], d.add(Opcode::kConst)});
    d.mark_live_out(d.add(Opcode::kOr, {sh, in[1]}));
  }
  {
    auto& d = p.block(miss).dfg;
    auto in = emit_inputs(d, 2);
    const NodeId st = d.add(Opcode::kAdd, {in[0], in[1]});
    d.add(Opcode::kStore, {st, in[0]});
    emit_expression(d, {st}, 8, OpMix{{2, 1, 0, 2, 2, 2, 2, 2, 1, 0}}, rng);
    seal_block(d);
  }
  const int body = p.stmt_seq(
      {p.stmt_block(hash),
       p.stmt_if({p.stmt_block(hit), p.stmt_block(miss)}, {0.7, 0.3})});
  p.set_root(p.stmt_loop(3000, body));
  return p;
}

ir::Program make_ispell() {
  // ispell: per-word hash loop + affix-check logic; string-ish byte ops.
  ir::Program p("ispell");
  util::Rng rng(0x15BE11);
  const int hash = p.add_block("word_hash");
  const int affix = p.add_block("affix_check");
  const int lookup = p.add_block("dict_lookup");
  {
    auto& d = p.block(hash).dfg;
    auto in = emit_inputs(d, 2);
    NodeId h = in[0];
    for (int c = 0; c < 4; ++c) {
      const NodeId ch = d.add(Opcode::kAnd, {in[1], d.add(Opcode::kConst)});
      const NodeId sh = d.add(Opcode::kShl, {h, d.add(Opcode::kConst)});
      const NodeId mix = d.add(Opcode::kXor, {sh, ch});
      h = d.add(Opcode::kSub, {mix, h});
    }
    d.mark_live_out(h);
  }
  {
    auto& d = p.block(affix).dfg;
    auto in = emit_inputs(d, 3);
    emit_expression(d, in, 18, OpMix{{2, 2, 0, 3, 2, 2, 1, 1, 3, 3}}, rng);
    seal_block(d);
  }
  {
    auto& d = p.block(lookup).dfg;
    auto in = emit_inputs(d, 1);
    const NodeId e = d.add(Opcode::kLoad, {in[0]});
    d.mark_live_out(d.add(Opcode::kCmp, {e, in[0]}));
  }
  const int word = p.stmt_seq(
      {p.stmt_loop(6, p.stmt_block(hash)), p.stmt_block(lookup),
       p.stmt_if({p.stmt_block(affix), p.stmt_block(lookup)}, {0.4, 0.6})});
  p.set_root(p.stmt_loop(2500, word));
  return p;
}

// --- registry ---------------------------------------------------------------

namespace {

struct Entry {
  const char* name;
  const char* source;
  ir::Program (*make)();
};

constexpr Entry kRegistry[] = {
    {"crc32", "MiBench", make_crc32},
    {"sha", "MiBench", make_sha},
    {"blowfish", "MiBench", make_blowfish},
    {"rijndael", "MiBench", make_rijndael},
    {"susan", "MiBench", make_susan},
    {"adpcm_enc", "MiBench", make_adpcm_encode},
    {"adpcm_dec", "MiBench", make_adpcm_decode},
    {"cjpeg", "MediaBench", make_jpeg_encode},
    {"djpeg", "MediaBench", make_jpeg_decode},
    {"g721encode", "MediaBench", make_g721_encode},
    {"g721decode", "MediaBench", make_g721_decode},
    {"jfdctint", "WCET", make_jfdctint},
    {"ndes", "WCET", make_ndes},
    {"edn", "WCET", make_edn},
    {"lms", "WCET", make_lms},
    {"compress", "WCET", make_compress},
    {"aes", "Trimaran", make_aes},
    {"3des", "Trimaran", make_3des},
    {"md5", "Trimaran", make_md5},
    {"ispell", "Trimaran", make_ispell},
    {"fft", "MiBench", make_fft},
    {"viterbi", "MiBench", make_viterbi},
    {"dijkstra", "MiBench", make_dijkstra},
    {"stringsearch", "MiBench", make_stringsearch},
    {"bitcount", "MiBench", make_bitcount},
    {"qsort", "MiBench", make_qsort},
    {"basicmath", "MiBench", make_basicmath},
    {"patricia", "MiBench", make_patricia},
};

}  // namespace

const std::vector<std::string>& benchmark_names() {
  static const std::vector<std::string> names = [] {
    std::vector<std::string> v;
    for (const Entry& e : kRegistry) v.emplace_back(e.name);
    return v;
  }();
  return names;
}

ir::Program make_benchmark(std::string_view name) {
  for (const Entry& e : kRegistry)
    if (name == e.name) return e.make();
  throw std::invalid_argument("unknown benchmark: " + std::string(name));
}

std::string_view benchmark_source(std::string_view name) {
  for (const Entry& e : kRegistry)
    if (name == e.name) return e.source;
  return "?";
}

}  // namespace isex::workloads
