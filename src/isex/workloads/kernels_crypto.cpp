// Cryptographic / hashing kernels: crc32, sha, md5, blowfish, rijndael, aes,
// ndes, 3des. Shapes follow Table 5.1 (e.g. 3des carries one 2700+-operation
// unrolled basic block; sha a ~490-operation unrolled round block).
#include "isex/workloads/patterns.hpp"
#include "isex/workloads/workloads.hpp"

namespace isex::workloads {

namespace {

/// Appends `rounds` hash rounds plus filler logic to the block and seals it.
void fill_hash_block(Dfg& d, int rounds, int filler, const OpMix& mix,
                     util::Rng& rng) {
  auto in = emit_inputs(d, 6);
  NodeId a = in[0], b = in[1];
  for (int r = 0; r < rounds; ++r) {
    const NodeId next = emit_hash_round(d, a, b);
    b = a;
    a = next;
  }
  if (filler > 0) emit_expression(d, {a, b, in[2], in[3]}, filler, mix, rng);
  seal_block(d);
}

}  // namespace

ir::Program make_crc32() {
  // Bit-serial CRC over a byte stream: outer loop over bytes, inner fully
  // unrolled 8-bit step chain (pure shift/xor/and — highly customizable).
  ir::Program p("crc32");
  const int init = p.add_block("init");
  const int step = p.add_block("bit_steps");
  const int tail = p.add_block("tail");

  util::Rng rng(0xC0C32);
  {
    auto& d = p.block(init).dfg;
    auto in = emit_inputs(d, 2);
    emit_expression(d, in, 6, OpMix{{1, 1, 0, 2, 1, 2, 1, 1, 0, 0}}, rng);
    seal_block(d);
  }
  {
    // Table-driven byte steps, 4 bytes unrolled:
    //   crc = (crc >> 8) ^ table[(crc ^ *p) & 0xff]
    // The table loads split the block into small regions, so crc32's
    // customization potential is modest (as on the real MiBench code).
    auto& d = p.block(step).dfg;
    auto in = emit_inputs(d, 2);
    NodeId crc = in[0];
    for (int byte = 0; byte < 4; ++byte) {
      const NodeId mixed = d.add(Opcode::kXor, {crc, in[1]});
      const NodeId idx = d.add(Opcode::kAnd, {mixed, d.add(Opcode::kConst)});
      const NodeId tab = d.add(Opcode::kLoad, {idx});
      const NodeId sh = d.add(Opcode::kShr, {crc, d.add(Opcode::kConst)});
      crc = d.add(Opcode::kXor, {sh, tab});
    }
    d.mark_live_out(crc);
    // A bit-reflection fold executed with the same frequency keeps some
    // shift/xor customization headroom in the kernel.
    NodeId fold = in[1];
    const NodeId poly = in[0];
    for (int bit = 0; bit < 4; ++bit) fold = emit_crc_bit(d, fold, poly);
    d.mark_live_out(fold);
  }
  {
    auto& d = p.block(tail).dfg;
    auto in = emit_inputs(d, 1);
    d.mark_live_out(d.add(Opcode::kNot, {in[0]}));
  }
  const int loop = p.stmt_loop(4096, p.stmt_block(step));  // one 4KB buffer
  p.set_root(p.stmt_seq({p.stmt_block(init), loop, p.stmt_block(tail)}));
  return p;
}

ir::Program make_sha() {
  // SHA-1 style: outer loop over 512-bit chunks; the compression function is
  // one large unrolled block (~480 ops, Table 5.1 max BB 487) plus a message
  // schedule block of medium size.
  ir::Program p("sha");
  const int init = p.add_block("init");
  const int schedule = p.add_block("msg_schedule");
  const int compress = p.add_block("compress_rounds");
  const int finish = p.add_block("finish");

  util::Rng rng(0x5A11);
  {
    auto& d = p.block(init).dfg;
    emit_expression(d, emit_inputs(d, 3), 10, OpMix{}, rng);
    seal_block(d);
  }
  {
    // w[i] = rotl(w[i-3]^w[i-8]^w[i-14]^w[i-16], 1): xor/rotl chains.
    auto& d = p.block(schedule).dfg;
    auto w = emit_inputs(d, 16);
    for (int i = 0; i < 24; ++i) {
      const NodeId x1 = d.add(Opcode::kXor, {w[w.size() - 3], w[w.size() - 8]});
      const NodeId x2 = d.add(Opcode::kXor, {x1, w[w.size() - 14]});
      const NodeId x3 = d.add(Opcode::kXor, {x2, w[w.size() - 16]});
      w.push_back(d.add(Opcode::kRotl, {x3, d.add(Opcode::kConst)}));
    }
    seal_block(d);
  }
  {
    auto& d = p.block(compress).dfg;
    fill_hash_block(d, 76, 20, OpMix{{3, 1, 0, 2, 2, 3, 1, 1, 0, 0}}, rng);
  }
  {
    auto& d = p.block(finish).dfg;
    auto in = emit_inputs(d, 5);
    for (int i = 0; i < 5; ++i)
      d.mark_live_out(d.add(Opcode::kAdd, {in[static_cast<std::size_t>(i)],
                                           in[static_cast<std::size_t>((i + 1) % 5)]}));
  }
  const int chunk =
      p.stmt_seq({p.stmt_block(schedule), p.stmt_block(compress)});
  p.set_root(p.stmt_seq(
      {p.stmt_block(init), p.stmt_loop(12000, chunk), p.stmt_block(finish)}));
  return p;
}

ir::Program make_md5() {
  // MD5: four 16-step round groups; each group is one unrolled block of
  // add/xor/or/rotl steps.
  ir::Program p("md5");
  util::Rng rng(0x3D5);
  const int init = p.add_block("init");
  {
    auto& d = p.block(init).dfg;
    emit_expression(d, emit_inputs(d, 4), 8, OpMix{}, rng);
    seal_block(d);
  }
  std::vector<int> round_stmts;
  for (int g = 0; g < 4; ++g) {
    const int blk = p.add_block("round_group_" + std::to_string(g));
    auto& d = p.block(blk).dfg;
    auto in = emit_inputs(d, 5);
    NodeId a = in[0], b = in[1], c = in[2], dd = in[3];
    for (int s = 0; s < 16; ++s) {
      // F(b,c,d) variants by group.
      NodeId f;
      switch (g) {
        case 0: f = d.add(Opcode::kOr, {d.add(Opcode::kAnd, {b, c}),
                                        d.add(Opcode::kAnd, {d.add(Opcode::kNot, {b}), dd})});
          break;
        case 1: f = d.add(Opcode::kOr, {d.add(Opcode::kAnd, {b, dd}),
                                        d.add(Opcode::kAnd, {c, d.add(Opcode::kNot, {dd})})});
          break;
        case 2: f = d.add(Opcode::kXor, {d.add(Opcode::kXor, {b, c}), dd});
          break;
        default: f = d.add(Opcode::kXor, {c, d.add(Opcode::kOr, {b, d.add(Opcode::kNot, {dd})})});
      }
      const NodeId sum = d.add(Opcode::kAdd, {a, f});
      const NodeId sum2 = d.add(Opcode::kAdd, {sum, in[4]});
      const NodeId rot = d.add(Opcode::kRotl, {sum2, d.add(Opcode::kConst)});
      const NodeId nb = d.add(Opcode::kAdd, {rot, b});
      a = dd; dd = c; c = b; b = nb;
    }
    d.mark_live_out(a);
    d.mark_live_out(b);
    d.mark_live_out(c);
    d.mark_live_out(dd);
    round_stmts.push_back(p.stmt_block(blk));
  }
  p.set_root(p.stmt_seq(
      {p.stmt_block(init), p.stmt_loop(6000, p.stmt_seq(round_stmts))}));
  return p;
}

ir::Program make_blowfish() {
  // Blowfish: 16 Feistel rounds per 64-bit block, each with S-box lookups;
  // a medium unrolled round block (Table 5.1 max BB 457) and a very large
  // iteration count (WCET ~4e8).
  ir::Program p("blowfish");
  util::Rng rng(0xB10F);
  const int init = p.add_block("key_init");
  const int rounds = p.add_block("feistel_rounds");
  const int post = p.add_block("post_whiten");
  {
    auto& d = p.block(init).dfg;
    emit_expression(d, emit_inputs(d, 4), 14,
                    OpMix{{1, 0, 0, 2, 1, 3, 1, 1, 0, 0}}, rng);
    seal_block(d);
  }
  {
    auto& d = p.block(rounds).dfg;
    auto in = emit_inputs(d, 3);
    NodeId l = in[0], r = in[1];
    for (int round = 0; round < 16; ++round) {
      // F uses four S-box mixes combined with add/xor.
      const NodeId m1 = emit_table_mix(d, r);
      const NodeId m2 = emit_table_mix(d, r);
      const NodeId f1 = d.add(Opcode::kAdd, {m1, m2});
      const NodeId m3 = emit_table_mix(d, r);
      const NodeId f2 = d.add(Opcode::kXor, {f1, m3});
      const NodeId nl = d.add(Opcode::kXor, {l, f2});
      l = r;
      r = nl;
      // Round-key xor.
      r = d.add(Opcode::kXor, {r, in[2]});
    }
    d.mark_live_out(l);
    d.mark_live_out(r);
  }
  {
    auto& d = p.block(post).dfg;
    auto in = emit_inputs(d, 2);
    d.mark_live_out(d.add(Opcode::kXor, {in[0], in[1]}));
  }
  const int body = p.stmt_seq({p.stmt_block(rounds), p.stmt_block(post)});
  p.set_root(p.stmt_seq({p.stmt_block(init), p.stmt_loop(800000, body)}));
  return p;
}

namespace {

/// Shared shape for the AES-family kernels: per-round block with table mixes
/// and xor diffusion.
ir::Program make_aes_like(const char* name, std::uint64_t seed, int mixes,
                          int filler, std::int64_t blocks) {
  ir::Program p(name);
  util::Rng rng(seed);
  const int init = p.add_block("key_expand");
  const int round = p.add_block("round");
  const int last = p.add_block("final_round");
  {
    auto& d = p.block(init).dfg;
    emit_expression(d, emit_inputs(d, 4), 20,
                    OpMix{{1, 0, 0, 2, 1, 3, 2, 2, 0, 0}}, rng);
    seal_block(d);
  }
  {
    auto& d = p.block(round).dfg;
    auto in = emit_inputs(d, 4);
    std::vector<NodeId> cols;
    for (int c = 0; c < mixes; ++c) {
      const NodeId t = emit_table_mix(d, in[static_cast<std::size_t>(c % 4)]);
      const NodeId x =
          d.add(Opcode::kXor, {t, in[static_cast<std::size_t>((c + 1) % 4)]});
      cols.push_back(x);
    }
    emit_expression(d, cols, filler, OpMix{{1, 0, 0, 1, 1, 4, 2, 2, 0, 0}},
                    rng);
    seal_block(d);
  }
  {
    auto& d = p.block(last).dfg;
    auto in = emit_inputs(d, 2);
    d.mark_live_out(d.add(Opcode::kXor, {emit_table_mix(d, in[0]), in[1]}));
  }
  const int rounds = p.stmt_loop(10, p.stmt_block(round));
  const int one_block = p.stmt_seq({rounds, p.stmt_block(last)});
  p.set_root(p.stmt_seq({p.stmt_block(init), p.stmt_loop(blocks, one_block)}));
  return p;
}

}  // namespace

ir::Program make_rijndael() {
  return make_aes_like("rijndael", 0x1234AE5, 16, 80, 24000);
}

ir::Program make_aes() { return make_aes_like("aes", 0xAE50001, 12, 90, 64); }

ir::Program make_ndes() {
  // Compact DES: 16 Feistel rounds, small blocks (Table 5.1: max BB 56).
  ir::Program p("ndes");
  util::Rng rng(0xDE5);
  const int perm = p.add_block("permute");
  const int round = p.add_block("round");
  const int out = p.add_block("output");
  {
    auto& d = p.block(perm).dfg;
    emit_expression(d, emit_inputs(d, 2), 24,
                    OpMix{{0, 0, 0, 3, 2, 2, 3, 3, 0, 0}}, rng);
    seal_block(d);
  }
  {
    auto& d = p.block(round).dfg;
    auto in = emit_inputs(d, 3);
    NodeId l = in[0], r = in[1];
    const NodeId nl = emit_feistel_half(d, l, r);
    const NodeId keyed = d.add(Opcode::kXor, {nl, in[2]});
    d.mark_live_out(r);
    d.mark_live_out(keyed);
  }
  {
    auto& d = p.block(out).dfg;
    emit_expression(d, emit_inputs(d, 2), 18,
                    OpMix{{0, 0, 0, 3, 2, 2, 3, 3, 0, 0}}, rng);
    seal_block(d);
  }
  const int body = p.stmt_seq(
      {p.stmt_block(perm), p.stmt_loop(16, p.stmt_block(round)),
       p.stmt_block(out)});
  p.set_root(p.stmt_loop(24, body));
  return p;
}

ir::Program make_3des() {
  // Triple-DES with the 48 Feistel rounds fully unrolled into one giant
  // basic block (Table 5.1: max BB 2745, the block that defeats the
  // exhaustive single-cut searches of Fig 5.5).
  ir::Program p("3des");
  util::Rng rng(0x3DE5);
  const int init = p.add_block("key_schedule");
  const int big = p.add_block("unrolled_48_rounds");
  const int post = p.add_block("post");
  {
    auto& d = p.block(init).dfg;
    emit_expression(d, emit_inputs(d, 4), 40,
                    OpMix{{1, 0, 0, 2, 2, 3, 2, 2, 0, 0}}, rng);
    seal_block(d);
  }
  {
    auto& d = p.block(big).dfg;
    auto in = emit_inputs(d, 6);
    NodeId l = in[0], r = in[1];
    for (int round = 0; round < 48; ++round) {
      const NodeId nl = emit_feistel_half(d, l, r);  // ~7 nodes incl. load
      // Expansion / P-box diffusion filler around each round (~48 ops).
      const NodeId mixed = emit_expression(
          d, {nl, r, in[2 + static_cast<std::size_t>(round % 4)]}, 48,
          OpMix{{1, 1, 0, 3, 2, 4, 2, 2, 0, 0}}, rng);
      l = r;
      r = d.add(Opcode::kXor, {nl, mixed});
    }
    d.mark_live_out(l);
    d.mark_live_out(r);
  }
  {
    auto& d = p.block(post).dfg;
    emit_expression(d, emit_inputs(d, 2), 16, OpMix{}, rng);
    seal_block(d);
  }
  const int body = p.stmt_seq({p.stmt_block(big), p.stmt_block(post)});
  p.set_root(p.stmt_seq({p.stmt_block(init), p.stmt_loop(36000, body)}));
  return p;
}

}  // namespace isex::workloads
