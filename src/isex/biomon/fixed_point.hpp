// Q-format fixed-point arithmetic (Section 8.2.1).
//
// The bio-monitoring algorithms are specified in floating point; embedded
// cores without FPUs run them in fixed point, and the conversion is a
// prerequisite for customization (integer datapaths synthesize into CFUs,
// floating-point ones do not). This header provides the Q-format value type
// used by the case-study kernels and their tests.
#pragma once

#include <cstdint>

namespace isex::biomon {

/// Signed fixed-point value with F fractional bits over int32 storage,
/// intermediate math in int64 (the "MAC register" of the modelled core).
template <int F>
class Fixed {
  static_assert(F > 0 && F < 31);

 public:
  constexpr Fixed() = default;

  static constexpr Fixed from_raw(std::int32_t raw) {
    Fixed f;
    f.raw_ = raw;
    return f;
  }
  static constexpr Fixed from_double(double v) {
    return from_raw(static_cast<std::int32_t>(v * (1 << F) + (v >= 0 ? 0.5 : -0.5)));
  }
  static constexpr Fixed from_int(int v) {
    return from_raw(static_cast<std::int32_t>(v) << F);
  }

  constexpr std::int32_t raw() const { return raw_; }
  constexpr double to_double() const {
    return static_cast<double>(raw_) / (1 << F);
  }

  friend constexpr Fixed operator+(Fixed a, Fixed b) {
    return from_raw(a.raw_ + b.raw_);
  }
  friend constexpr Fixed operator-(Fixed a, Fixed b) {
    return from_raw(a.raw_ - b.raw_);
  }
  friend constexpr Fixed operator*(Fixed a, Fixed b) {
    const std::int64_t wide =
        static_cast<std::int64_t>(a.raw_) * static_cast<std::int64_t>(b.raw_);
    return from_raw(static_cast<std::int32_t>(wide >> F));
  }
  friend constexpr Fixed operator/(Fixed a, Fixed b) {
    const std::int64_t wide = (static_cast<std::int64_t>(a.raw_) << F);
    return from_raw(static_cast<std::int32_t>(wide / b.raw_));
  }
  friend constexpr bool operator<(Fixed a, Fixed b) { return a.raw_ < b.raw_; }
  friend constexpr bool operator==(Fixed a, Fixed b) = default;

  constexpr Fixed abs() const { return raw_ < 0 ? from_raw(-raw_) : *this; }

 private:
  std::int32_t raw_ = 0;
};

using Q15 = Fixed<15>;  // [-65536, 65536) with ~3e-5 resolution
using Q8 = Fixed<8>;

}  // namespace isex::biomon
