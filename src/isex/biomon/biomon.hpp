// Wearable bio-monitoring case study (Chapter 8, FPT'08).
//
// Three applications run on the wearable platform:
//   * heart_rate    — continuous ECG heart-rate extraction: band-pass FIR,
//                     squaring/energy window, peak detection;
//   * pulse_transit — pulse-transit-time blood-pressure surrogate: correlate
//                     the ECG R-peak with the PPG pulse foot (Fig 8.2);
//   * fall_detect   — accelerometer fall detection: magnitude, high-pass,
//                     threshold state machine.
// All three are fixed-point integer kernels (Section 8.2.1), built from the
// same DFG idioms as the main workloads; Fig 8.4 reports their speedup with
// customization, reproduced by bench/fig8_4_biomonitoring.
#pragma once

#include <vector>

#include "isex/ir/program.hpp"

namespace isex::biomon {

ir::Program make_heart_rate();
ir::Program make_pulse_transit();
ir::Program make_fall_detect();

/// All three case-study kernels.
std::vector<ir::Program> all_biomon_kernels();

/// Reference fixed-point signal chain used by the tests: 4-tap band-pass +
/// moving energy over a synthetic ECG-like wave; returns the detected
/// beat count. Demonstrates the numerics the DFG kernels model.
int detect_beats_fixed(const std::vector<double>& samples,
                       double threshold);

}  // namespace isex::biomon
