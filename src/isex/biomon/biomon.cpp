#include "isex/biomon/biomon.hpp"

#include "isex/biomon/fixed_point.hpp"
#include "isex/workloads/patterns.hpp"

namespace isex::biomon {

using workloads::emit_inputs;
using workloads::emit_mac_chain;
using workloads::emit_predicated_update;
using ir::Opcode;

namespace {

/// Fixed-point FIR block: MAC chain followed by the Q-format rescale shift.
void fill_fir_block(ir::Dfg& d, int taps) {
  auto xs = emit_inputs(d, taps);
  std::vector<ir::NodeId> hs;
  for (int k = 0; k < taps; ++k) hs.push_back(d.add(Opcode::kConst));
  const auto acc = emit_mac_chain(d, xs, hs);
  d.mark_live_out(d.add(Opcode::kShr, {acc, d.add(Opcode::kConst)}));
}

/// Squared-energy window block: x*x accumulate + rescale.
void fill_energy_block(ir::Dfg& d, int lanes) {
  auto in = emit_inputs(d, lanes);
  ir::NodeId acc = d.add(Opcode::kConst);
  for (int k = 0; k < lanes; ++k) {
    const auto sq = d.add(Opcode::kMul, {in[static_cast<std::size_t>(k)],
                                         in[static_cast<std::size_t>(k)]});
    const auto sc = d.add(Opcode::kShr, {sq, d.add(Opcode::kConst)});
    acc = d.add(Opcode::kAdd, {acc, sc});
  }
  d.mark_live_out(acc);
}

/// Threshold / peak state block: cmp + select ladder.
void fill_peak_block(ir::Dfg& d) {
  auto in = emit_inputs(d, 3);  // energy, threshold, state
  const auto over = d.add(Opcode::kCmp, {in[0], in[1]});
  const auto rising = d.add(Opcode::kCmp, {in[0], in[2]});
  const auto armed = d.add(Opcode::kAnd, {over, rising});
  const auto next = d.add(Opcode::kSelect, {armed, in[0], in[2]});
  d.mark_live_out(next);
  d.mark_live_out(armed);
}

}  // namespace

ir::Program make_heart_rate() {
  ir::Program p("heart_rate");
  const int fir = p.add_block("bandpass_fir");
  const int energy = p.add_block("energy_window");
  const int peak = p.add_block("peak_detect");
  fill_fir_block(p.block(fir).dfg, 8);
  fill_energy_block(p.block(energy).dfg, 8);
  fill_peak_block(p.block(peak).dfg);
  // 256 Hz ECG, one-second frames.
  const int sample = p.stmt_seq({p.stmt_block(fir), p.stmt_block(energy),
                                 p.stmt_block(peak)});
  p.set_root(p.stmt_loop(256, sample));
  return p;
}

ir::Program make_pulse_transit() {
  ir::Program p("pulse_transit");
  const int ecg_fir = p.add_block("ecg_fir");
  const int ppg_fir = p.add_block("ppg_fir");
  const int xcorr = p.add_block("cross_corr");
  const int foot = p.add_block("pulse_foot");
  fill_fir_block(p.block(ecg_fir).dfg, 6);
  fill_fir_block(p.block(ppg_fir).dfg, 6);
  {
    // Short sliding cross-correlation lag evaluation.
    auto& d = p.block(xcorr).dfg;
    auto a = emit_inputs(d, 4);
    auto b = emit_inputs(d, 4);
    const auto acc = emit_mac_chain(d, a, b);
    d.mark_live_out(d.add(Opcode::kShr, {acc, d.add(Opcode::kConst)}));
  }
  {
    auto& d = p.block(foot).dfg;
    auto in = emit_inputs(d, 2);
    const auto diff = d.add(Opcode::kSub, {in[0], in[1]});
    d.mark_live_out(emit_predicated_update(d, diff, in[1]));
  }
  const int per_sample =
      p.stmt_seq({p.stmt_block(ecg_fir), p.stmt_block(ppg_fir)});
  const int per_beat =
      p.stmt_seq({p.stmt_loop(16, p.stmt_block(xcorr)), p.stmt_block(foot)});
  p.set_root(p.stmt_seq(
      {p.stmt_loop(256, per_sample), p.stmt_loop(72, per_beat)}));
  return p;
}

ir::Program make_fall_detect() {
  ir::Program p("fall_detect");
  const int mag = p.add_block("magnitude");
  const int hp = p.add_block("highpass");
  const int state = p.add_block("threshold_fsm");
  {
    // |a|^2 = ax^2 + ay^2 + az^2 in fixed point.
    auto& d = p.block(mag).dfg;
    auto in = emit_inputs(d, 3);
    ir::NodeId acc = d.add(Opcode::kConst);
    for (int axis = 0; axis < 3; ++axis) {
      const auto sq = d.add(Opcode::kMul, {in[static_cast<std::size_t>(axis)],
                                           in[static_cast<std::size_t>(axis)]});
      acc = d.add(Opcode::kAdd, {acc, d.add(Opcode::kShr, {sq, d.add(Opcode::kConst)})});
    }
    d.mark_live_out(acc);
  }
  fill_fir_block(p.block(hp).dfg, 4);
  {
    auto& d = p.block(state).dfg;
    auto in = emit_inputs(d, 3);  // energy, free-fall thr, impact thr
    const auto freefall = d.add(Opcode::kCmp, {in[1], in[0]});
    const auto impact = d.add(Opcode::kCmp, {in[0], in[2]});
    const auto event = d.add(Opcode::kAnd, {freefall, impact});
    d.mark_live_out(d.add(Opcode::kSelect, {event, in[2], in[0]}));
  }
  const int sample = p.stmt_seq(
      {p.stmt_block(mag), p.stmt_block(hp), p.stmt_block(state)});
  p.set_root(p.stmt_loop(100, sample));  // 100 Hz accelerometer
  return p;
}

std::vector<ir::Program> all_biomon_kernels() {
  std::vector<ir::Program> v;
  v.push_back(make_heart_rate());
  v.push_back(make_pulse_transit());
  v.push_back(make_fall_detect());
  return v;
}

int detect_beats_fixed(const std::vector<double>& samples, double threshold) {
  // 4-tap band-pass-ish differencing FIR in Q15, then squared energy with a
  // rising-edge beat detector — the numeric twin of make_heart_rate().
  const Q15 h[4] = {Q15::from_double(0.25), Q15::from_double(0.75),
                    Q15::from_double(-0.75), Q15::from_double(-0.25)};
  const Q15 thr = Q15::from_double(threshold);
  Q15 window[4] = {};
  int beats = 0;
  bool above = false;
  for (double s : samples) {
    window[3] = window[2];
    window[2] = window[1];
    window[1] = window[0];
    window[0] = Q15::from_double(s);
    Q15 acc{};
    for (int k = 0; k < 4; ++k) acc = acc + window[k] * h[k];
    const Q15 energy = acc * acc;
    const bool over = thr < energy;
    if (over && !above) ++beats;
    above = over;
  }
  return beats;
}

}  // namespace isex::biomon
