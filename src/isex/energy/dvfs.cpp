#include "isex/energy/dvfs.hpp"

#include "isex/rt/schedulability.hpp"

namespace isex::energy {

const std::vector<OperatingPoint>& tm5400_points() {
  static const std::vector<OperatingPoint> pts = {
      {300, 1.200}, {366, 1.300}, {433, 1.350}, {500, 1.400},
      {566, 1.475}, {600, 1.550}, {633, 1.600},
  };
  return pts;
}

ScalingResult static_voltage_scaling(const rt::TaskSet& ts,
                                     const std::vector<int>& assignment,
                                     bool edf,
                                     const std::vector<OperatingPoint>& points) {
  ScalingResult out;
  const double fmax = points.back().freq_mhz;
  const double u = ts.utilization(assignment);
  for (const OperatingPoint& p : points) {
    const double scale = fmax / p.freq_mhz;
    const double u_scaled = u * scale;
    bool ok;
    if (edf) {
      ok = rt::edf_schedulable(u_scaled);
    } else {
      ok = u_scaled <=
           rt::rms_utilization_bound(static_cast<int>(ts.size())) +
               rt::kSchedEps;
    }
    if (ok) {
      out.schedulable = true;
      out.point = p;
      out.scaled_utilization = u_scaled;
      return out;
    }
  }
  // Not schedulable even at the top point; report it anyway.
  out.point = points.back();
  out.scaled_utilization = u;
  return out;
}

double hyperperiod_energy(const rt::TaskSet& ts,
                          const std::vector<int>& assignment,
                          const OperatingPoint& point, double hyperperiod) {
  double busy = 0;
  for (std::size_t i = 0; i < ts.size(); ++i) {
    const rt::Task& t = ts.tasks[i];
    busy += t.configs[static_cast<std::size_t>(assignment[i])].cycles *
            (hyperperiod / t.period);
  }
  return busy * point.volt * point.volt;
}

}  // namespace isex::energy
