// Dynamic voltage scaling simulation: static scaling vs cycle-conserving
// EDF (Pillai & Shin) — the energy extension beyond the static scheme the
// paper evaluates.
//
// Jobs usually finish below their WCET; cc-EDF reclaims the difference: each
// task's bandwidth estimate is C_i/P_i while a job is pending and
// (actual cycles)/P_i once it completes, and the processor always runs at
// the lowest operating point whose speed covers the estimate sum. The
// simulator executes the schedule event by event (releases, completions,
// operating-point changes) and integrates V^2-weighted busy cycles, so the
// static and dynamic schemes are compared on identical job streams.
#pragma once

#include <cstdint>
#include <vector>

#include "isex/energy/dvfs.hpp"
#include "isex/util/rng.hpp"

namespace isex::energy {

struct DvsTask {
  double wcet = 0;    // cycles at the maximum operating point
  double period = 0;
  /// Actual demand of each job is wcet * uniform(bc_min, bc_max).
  double bc_min = 0.5;
  double bc_max = 1.0;
};

enum class DvsPolicy {
  kNoDvs,     // always the top operating point
  kStatic,    // lowest point with U_wcet * fmax/f <= 1, fixed forever
  kCcEdf,     // cycle-conserving EDF reclaiming early completions
};

struct DvsSimResult {
  bool all_met = true;
  double energy = 0;          // sum of V^2-weighted executed cycles
  double busy_cycles = 0;     // work executed (cycle counts at fmax scale)
  double avg_freq_mhz = 0;    // execution-time-weighted average frequency
  long completed_jobs = 0;
};

/// Simulates `horizon` time units (at fmax scale) of the task set under EDF
/// with the given DVS policy. Deterministic given rng.
DvsSimResult simulate_dvs(const std::vector<DvsTask>& tasks, DvsPolicy policy,
                          double horizon, util::Rng& rng,
                          const std::vector<OperatingPoint>& points =
                              tm5400_points());

}  // namespace isex::energy
