// Voltage/frequency scaling and energy accounting (Section 3.2.2).
//
// Customization lowers utilization; static voltage scaling (Pillai & Shin)
// then picks the lowest operating point that keeps the task set schedulable,
// and the energy over a hyperperiod falls as V^2. The operating points are
// the Transmeta TM5400 LongRun steps the thesis scales across (300 MHz at
// 1.2 V up to 633 MHz at 1.6 V). As in the paper, the EDF path may scale
// aggressively thanks to the exact U <= 1 test while the RMS path uses the
// conservative Liu-Layland bound, which is what makes the EDF energy savings
// of Fig 3.4 larger.
#pragma once

#include <vector>

#include "isex/rt/task.hpp"

namespace isex::energy {

struct OperatingPoint {
  double freq_mhz = 0;
  double volt = 0;
};

/// TM5400 operating points in increasing frequency order.
const std::vector<OperatingPoint>& tm5400_points();

struct ScalingResult {
  bool schedulable = false;
  OperatingPoint point;           // lowest feasible operating point
  double scaled_utilization = 0;  // utilization at that point
};

/// Lowest operating point at which the assignment stays schedulable.
/// Cycle counts are fixed; at frequency f the time demand scales by
/// f_max / f. EDF uses the exact U test; RMS uses the Liu-Layland bound.
ScalingResult static_voltage_scaling(const rt::TaskSet& ts,
                                     const std::vector<int>& assignment,
                                     bool edf,
                                     const std::vector<OperatingPoint>& points =
                                         tm5400_points());

/// Dynamic energy over one hyperperiod H (arbitrary units, comparable across
/// configurations): busy cycles scale-invariantly sum to
/// sum_i C_i * (H / P_i), and each cycle costs V^2.
double hyperperiod_energy(const rt::TaskSet& ts,
                          const std::vector<int>& assignment,
                          const OperatingPoint& point, double hyperperiod);

}  // namespace isex::energy
