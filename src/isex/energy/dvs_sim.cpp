#include "isex/energy/dvs_sim.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "isex/rt/schedulability.hpp"

namespace isex::energy {

namespace {

struct Job {
  int task;
  double deadline;
  double remaining;  // actual work left (cycles at fmax scale)
  double actual;     // the job's total actual demand
};

}  // namespace

DvsSimResult simulate_dvs(const std::vector<DvsTask>& tasks, DvsPolicy policy,
                          double horizon, util::Rng& rng,
                          const std::vector<OperatingPoint>& points) {
  for (const auto& t : tasks)
    if (t.period <= 0 || t.wcet < 0)
      throw std::invalid_argument("simulate_dvs: bad task");
  const double fmax = points.back().freq_mhz;

  double u_wcet = 0;
  for (const auto& t : tasks) u_wcet += t.wcet / t.period;

  // Lowest operating point whose speed covers `demand` (utilization).
  auto point_for = [&](double demand) -> const OperatingPoint& {
    for (const auto& p : points)
      if (demand <= p.freq_mhz / fmax + rt::kSchedEps) return p;
    return points.back();
  };
  const OperatingPoint& static_point = point_for(u_wcet);

  // cc-EDF bandwidth estimates: wcet/P while a job is pending, actual/P
  // after completion until the next release.
  std::vector<double> estimate(tasks.size());
  for (std::size_t i = 0; i < tasks.size(); ++i)
    estimate[i] = tasks[i].wcet / tasks[i].period;

  auto current_point = [&]() -> const OperatingPoint& {
    switch (policy) {
      case DvsPolicy::kNoDvs: return points.back();
      case DvsPolicy::kStatic: return static_point;
      case DvsPolicy::kCcEdf: {
        double u = 0;
        for (double e : estimate) u += e;
        return point_for(u);
      }
    }
    return points.back();
  };

  DvsSimResult res;
  std::vector<Job> ready;
  std::vector<double> next_release(tasks.size(), 0);
  double now = 0;
  double freq_time = 0;  // integral of f over execution time
  double exec_time = 0;

  auto release_due = [&](double time) {
    for (std::size_t i = 0; i < tasks.size(); ++i)
      while (next_release[i] <= time + 1e-9 && next_release[i] < horizon) {
        const double actual =
            tasks[i].wcet * rng.uniform_real(tasks[i].bc_min, tasks[i].bc_max);
        ready.push_back(Job{static_cast<int>(i),
                            next_release[i] + tasks[i].period, actual,
                            actual});
        estimate[i] = tasks[i].wcet / tasks[i].period;
        next_release[i] += tasks[i].period;
      }
  };
  auto earliest_release = [&] {
    double e = horizon;
    for (double r : next_release) e = std::min(e, r);
    return e;
  };

  release_due(0);
  while (now < horizon - 1e-9) {
    if (ready.empty()) {
      const double next = earliest_release();
      if (next >= horizon) break;
      now = next;
      release_due(now);
      continue;
    }
    auto it = std::min_element(ready.begin(), ready.end(),
                               [](const Job& a, const Job& b) {
                                 if (a.deadline != b.deadline)
                                   return a.deadline < b.deadline;
                                 return a.task < b.task;
                               });
    const OperatingPoint& op = current_point();
    const double speed = op.freq_mhz / fmax;
    const double completion = now + it->remaining / speed;
    const double next = std::min({earliest_release(), completion, horizon});
    const double work = (next - now) * speed;
    res.energy += work * op.volt * op.volt;
    res.busy_cycles += work;
    freq_time += (next - now) * op.freq_mhz;
    exec_time += next - now;
    it->remaining -= work;
    now = next;
    if (it->remaining <= 1e-9) {
      if (now > it->deadline + 1e-9) res.all_met = false;
      // cc-EDF: the completed job's bandwidth drops to its actual usage
      // until the next release re-arms the WCET reservation.
      estimate[static_cast<std::size_t>(it->task)] =
          it->actual / tasks[static_cast<std::size_t>(it->task)].period;
      ++res.completed_jobs;
      ready.erase(it);
    }
    release_due(now);
  }
  // Jobs pending past their deadline at the horizon.
  for (const Job& j : ready)
    if (j.deadline < horizon - 1e-9) res.all_met = false;
  res.avg_freq_mhz = exec_time > 0 ? freq_time / exec_time : 0;
  return res;
}

}  // namespace isex::energy
