// WCET sensitivity analysis and robustness-aware selection.
//
// The Chapter 3 selection pipeline guarantees schedulability only if the
// WCETs are exact. This module answers the robustness question that leaves
// open: the critical scaling factor alpha* of a selected configuration is the
// largest uniform factor by which every task's execution time can inflate
// with the system still schedulable — analytically U * alpha <= 1 under EDF,
// and a binary search over the exact Bini-Buttazzo test under RMS. The
// analytic alpha* is cross-validated against first-miss instants from
// injected simulation, and a margin-aware wrapper over select_edf/select_rms
// selects under inflated WCETs (alpha-robust selection), reporting the area
// cost of robustness.
#pragma once

#include <cstdint>
#include <vector>

#include "isex/customize/select_edf.hpp"
#include "isex/customize/select_rms.hpp"
#include "isex/rt/simulator.hpp"

namespace isex::faults {

/// alpha* under EDF: U * alpha <= 1, so alpha* = 1 / U (infinity-free: U <= 0
/// returns a large sentinel).
double critical_scaling_edf(double utilization);

/// alpha* under RMS: the largest alpha with rms_schedulable(alpha * C, P),
/// located by bracketed binary search over the exact test to relative
/// tolerance `tol`. Tasks must be sorted by increasing period.
double critical_scaling_rms(const std::vector<double>& cycles,
                            const std::vector<double>& periods,
                            double tol = 1e-9);

/// alpha* of a configuration assignment of `ts` under `policy` (for RMS, ts
/// must be sorted by increasing period).
double critical_scaling(const rt::TaskSet& ts,
                        const std::vector<int>& assignment, rt::Policy policy);

/// SimTask view of an assignment: integer cycles/periods, with the software
/// configuration as the CI-fault fallback and the task's fastest
/// configuration as the designated mode-change fallback.
std::vector<rt::SimTask> to_sim_tasks(const rt::TaskSet& ts,
                                      const std::vector<int>& assignment);

/// Simulation cross-check of alpha*: deadline of the first miss under a
/// deterministic inflation `alpha`, or -1 if no job misses over the horizon
/// (0 = one hyperperiod, capped).
std::int64_t first_miss_instant(const std::vector<rt::SimTask>& tasks,
                                rt::Policy policy, double alpha,
                                std::int64_t horizon = 0);

struct RobustSelectionResult {
  customize::SelectionResult nominal;  // selection with WCETs as modelled
  /// Selection performed with every configuration's cycles inflated by
  /// `alpha`; utilization/area_used are reported in nominal (uninflated)
  /// terms, schedulable means schedulable *under the inflated WCETs*.
  customize::SelectionResult robust;
  double alpha = 1.0;
  double alpha_star_nominal = 0;  // alpha* of the nominal selection
  double alpha_star_robust = 0;   // alpha* of the robust selection
  double area_overhead = 0;       // robust area - nominal area: cost of margin
};

/// Margin-aware selection: pick configurations that stay schedulable even if
/// every WCET inflates by `alpha`. For RMS, ts must be sorted by period.
RobustSelectionResult alpha_robust_select(const rt::TaskSet& ts,
                                          double area_budget, double alpha,
                                          rt::Policy policy);

/// The area cost of robustness: smallest area budget (to `resolution`, via
/// bisection — schedulability of the optimal selection is monotone in the
/// budget) whose selection stays schedulable with every WCET inflated by
/// `alpha`. Returns -1 if even the full Max_Area budget is not enough.
double min_robust_area(const rt::TaskSet& ts, double alpha, rt::Policy policy,
                       double resolution = 0.25);

}  // namespace isex::faults
