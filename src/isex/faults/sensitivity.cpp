#include "isex/faults/sensitivity.hpp"

#include <cmath>
#include <stdexcept>

#include "isex/rt/schedulability.hpp"

namespace isex::faults {

namespace {

constexpr double kAlphaCeiling = 1e9;  // "never misses" sentinel

std::vector<double> scaled(const std::vector<double>& v, double f) {
  std::vector<double> out(v.size());
  for (std::size_t i = 0; i < v.size(); ++i) out[i] = v[i] * f;
  return out;
}

}  // namespace

double critical_scaling_edf(double utilization) {
  if (utilization <= 0) return kAlphaCeiling;
  return 1.0 / utilization;
}

double critical_scaling_rms(const std::vector<double>& cycles,
                            const std::vector<double>& periods, double tol) {
  if (cycles.size() != periods.size())
    throw std::invalid_argument("critical_scaling_rms: size mismatch");
  auto ok = [&](double a) { return rt::rms_schedulable(scaled(cycles, a), periods); };
  // Bracket [lo, hi] with ok(lo) && !ok(hi). alpha = 0 empties the demand, so
  // it is always schedulable; expand hi geometrically until it fails.
  double lo = 0, hi = 1;
  while (ok(hi)) {
    lo = hi;
    hi *= 2;
    if (hi >= kAlphaCeiling) return kAlphaCeiling;
  }
  while (hi - lo > tol * std::max(1.0, lo)) {
    const double mid = 0.5 * (lo + hi);
    (ok(mid) ? lo : hi) = mid;
  }
  return lo;
}

double critical_scaling(const rt::TaskSet& ts,
                        const std::vector<int>& assignment, rt::Policy policy) {
  if (policy == rt::Policy::kEdf)
    return critical_scaling_edf(ts.utilization(assignment));
  std::vector<double> cycles, periods;
  for (std::size_t i = 0; i < ts.size(); ++i) {
    cycles.push_back(
        ts.tasks[i].configs[static_cast<std::size_t>(assignment[i])].cycles);
    periods.push_back(ts.tasks[i].period);
  }
  return critical_scaling_rms(cycles, periods);
}

std::vector<rt::SimTask> to_sim_tasks(const rt::TaskSet& ts,
                                      const std::vector<int>& assignment) {
  std::vector<rt::SimTask> out;
  for (std::size_t i = 0; i < ts.size(); ++i) {
    const auto& t = ts.tasks[i];
    const auto& cfg = t.configs[static_cast<std::size_t>(assignment[i])];
    rt::SimTask s;
    s.wcet = static_cast<std::int64_t>(std::llround(cfg.cycles));
    s.period = static_cast<std::int64_t>(std::llround(t.period));
    s.sw_wcet = static_cast<std::int64_t>(std::llround(t.sw_cycles()));
    s.fallback_wcet = static_cast<std::int64_t>(std::llround(t.best_cycles()));
    s.name = t.name;
    out.push_back(s);
  }
  return out;
}

std::int64_t first_miss_instant(const std::vector<rt::SimTask>& tasks,
                                rt::Policy policy, double alpha,
                                std::int64_t horizon) {
  FaultModel fault;
  fault.inflation = alpha;
  rt::SimOptions so;
  so.policy = policy;
  so.horizon = horizon;
  so.stop_at_first_miss = true;
  so.faults = &fault;
  const auto r = rt::simulate(tasks, so);
  return r.misses.empty() ? -1 : r.misses.front().deadline;
}

double min_robust_area(const rt::TaskSet& ts, double alpha, rt::Policy policy,
                       double resolution) {
  if (alpha <= 0 || resolution <= 0)
    throw std::invalid_argument("min_robust_area: nonpositive parameter");
  rt::TaskSet inflated = ts;
  for (auto& t : inflated.tasks)
    for (auto& cfg : t.configs) cfg.cycles *= alpha;
  auto ok = [&](double budget) {
    if (policy == rt::Policy::kEdf)
      return customize::select_edf(inflated, budget).schedulable;
    return customize::select_rms(inflated, budget).schedulable;
  };
  double lo = 0, hi = ts.max_area();
  if (!ok(hi)) return -1;
  if (ok(lo)) return 0;
  while (hi - lo > resolution) {
    const double mid = 0.5 * (lo + hi);
    (ok(mid) ? hi : lo) = mid;
  }
  return hi;
}

RobustSelectionResult alpha_robust_select(const rt::TaskSet& ts,
                                          double area_budget, double alpha,
                                          rt::Policy policy) {
  if (alpha <= 0)
    throw std::invalid_argument("alpha_robust_select: alpha <= 0");
  rt::TaskSet inflated = ts;
  for (auto& t : inflated.tasks)
    for (auto& cfg : t.configs) cfg.cycles *= alpha;

  auto select = [&](const rt::TaskSet& s) -> customize::SelectionResult {
    if (policy == rt::Policy::kEdf) return customize::select_edf(s, area_budget);
    return customize::select_rms(s, area_budget);
  };

  RobustSelectionResult r;
  r.alpha = alpha;
  r.nominal = select(ts);
  r.robust = select(inflated);
  // Report the robust pick in nominal terms; its schedulable flag already
  // reflects the inflated-WCET test it was selected under.
  r.robust.utilization = ts.utilization(r.robust.assignment);
  r.robust.area_used = ts.area(r.robust.assignment);
  r.alpha_star_nominal = critical_scaling(ts, r.nominal.assignment, policy);
  r.alpha_star_robust = critical_scaling(ts, r.robust.assignment, policy);
  r.area_overhead = r.robust.area_used - r.nominal.area_used;
  return r;
}

}  // namespace isex::faults
