#include "isex/faults/model.hpp"

#include <cmath>
#include <stdexcept>
#include <string>

#include "isex/obs/trace.hpp"

namespace isex::faults {

namespace {

// splitmix64: a tiny counter-based generator. Each job gets its own stream
// keyed by (seed, task, job), so samples are independent of the order in
// which the simulator asks for them.
std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t job_stream(std::uint64_t seed, int task, std::int64_t job) {
  std::uint64_t s = seed;
  s ^= splitmix64(s) + 0x9e3779b97f4a7c15ULL * static_cast<std::uint64_t>(task + 1);
  s ^= splitmix64(s) + 0xc2b2ae3d27d4eb4fULL * static_cast<std::uint64_t>(job + 1);
  return s;
}

/// Uniform double in [0, 1).
double next_unit(std::uint64_t& state) {
  return static_cast<double>(splitmix64(state) >> 11) * 0x1.0p-53;
}

}  // namespace

bool FaultModel::any_enabled() const {
  if (inflation != 1.0) return true;
  for (double f : per_task_inflation)
    if (f != 1.0) return true;
  if (overrun_probability > 0 && overrun_max_factor > 1.0) return true;
  if (max_release_jitter > 0) return true;
  return !ci_faults.empty();
}

JobPerturbation FaultModel::perturb(int task, std::int64_t job,
                                    std::int64_t release, std::int64_t wcet,
                                    std::int64_t sw_wcet) const {
  if (wcet < 0) throw std::invalid_argument("perturb: wcet < 0");
  JobPerturbation p;
  std::uint64_t state = job_stream(seed, task, job);
  ISEX_COUNT("faults.perturb_calls");
  const bool tracing =
      ISEX_OBS_ENABLED && obs::TraceBuffer::global().enabled();

  // CI unavailability: the job loses its accelerated datapath and runs the
  // software version (never faster than the configured demand).
  std::int64_t base = wcet;
  for (const auto& w : ci_faults)
    if ((w.task < 0 || w.task == task) && release >= w.start && release < w.end) {
      p.ci_fault = true;
      if (sw_wcet > base) base = sw_wcet;
      ISEX_COUNT("faults.ci_faults");
      if (tracing)
        obs::trace_instant("ci_fault", "faults", obs::kSimPid, task, release,
                           {{"job", std::to_string(job)}});
      break;
    }

  double factor = inflation;
  if (!per_task_inflation.empty())
    factor *= per_task_inflation[static_cast<std::size_t>(task)];
  // The stochastic draws are consumed unconditionally so that a job's
  // perturbation is a pure function of (seed, task, job) and the model knobs
  // that apply to it — toggling jitter does not reshuffle overrun spikes.
  const double spike_roll = next_unit(state);
  const double spike_mag = next_unit(state);
  const double jitter_roll = next_unit(state);
  if (overrun_probability > 0 && spike_roll < overrun_probability) {
    factor *= 1.0 + spike_mag * (overrun_max_factor - 1.0);
    ISEX_COUNT("faults.overrun_spikes");
    if (tracing)
      obs::trace_instant("overrun_spike", "faults", obs::kSimPid, task,
                         release, {{"job", std::to_string(job)}});
  }

  if (factor < 0) throw std::invalid_argument("perturb: negative inflation");
  // Round up so an inflation epsilon above 1 never deflates, but subtract a
  // guard so factor == 1.0 reproduces the base demand bit-exactly.
  p.exec = static_cast<std::int64_t>(
      std::ceil(static_cast<double>(base) * factor - 1e-9));
  if (p.exec < 0) p.exec = 0;

  if (max_release_jitter > 0) {
    p.jitter = static_cast<std::int64_t>(
        jitter_roll * static_cast<double>(max_release_jitter + 1));
    if (p.jitter > 0) ISEX_COUNT("faults.jittered_jobs");
  }
  return p;
}

}  // namespace isex::faults
