// Fault models for the real-time runtime.
//
// The schedulability guarantees of Chapter 3 assume exact WCETs and always-
// available custom instructions. This module models the ways real ASIP
// deployments violate those assumptions, as per-job perturbations of a
// simulated task set:
//   - deterministic execution-time inflation (systematic WCET underestimation),
//   - seeded stochastic overrun spikes (bounded factor, spike probability),
//   - bounded release jitter (the deadline stays anchored to the nominal
//     release),
//   - transient CI-unavailability windows during which a task's jobs fall
//     back from accelerated cycles to plain-software cycles.
//
// Sampling is deterministic in (seed, task, job index): a job's perturbation
// never depends on simulation event order, so injected runs are reproducible
// and two policies can be compared on identical fault traces.
#pragma once

#include <cstdint>
#include <vector>

namespace isex::faults {

/// Transient custom-instruction unavailability: jobs of `task` *released* in
/// [start, end) execute at their software-only cycle count.
struct CiFaultWindow {
  int task = -1;  // -1 = every task
  std::int64_t start = 0;
  std::int64_t end = 0;
};

/// The sampled perturbation of one job.
struct JobPerturbation {
  std::int64_t exec = 0;    // actual execution demand in cycles
  std::int64_t jitter = 0;  // release delay; the deadline does not move
  bool ci_fault = false;    // job fell inside a CI-unavailability window
};

struct FaultModel {
  /// Deterministic inflation applied to every job of every task (>= 1 for
  /// overruns; < 1 models pessimistic WCETs).
  double inflation = 1.0;
  /// Optional per-task inflation on top of the global factor; empty = none,
  /// otherwise one factor per task.
  std::vector<double> per_task_inflation;

  /// Stochastic overrun: with probability `overrun_probability` a job's
  /// execution time is additionally multiplied by a uniform draw from
  /// [1, overrun_max_factor].
  double overrun_probability = 0.0;
  double overrun_max_factor = 1.0;

  /// Release jitter: each job's availability is delayed by a uniform draw
  /// from [0, max_release_jitter] cycles.
  std::int64_t max_release_jitter = 0;

  std::vector<CiFaultWindow> ci_faults;

  std::uint64_t seed = 0x15ebed;

  /// True iff any perturbation can differ from the identity.
  bool any_enabled() const;

  /// Samples the perturbation of job `job` of task `task`, nominally released
  /// at `release` with execution demand `wcet` cycles (`sw_wcet` = the task's
  /// software-only demand, used when a CI fault window covers the release;
  /// <= 0 means no software fallback is modelled). Deterministic in
  /// (seed, task, job).
  JobPerturbation perturb(int task, std::int64_t job, std::int64_t release,
                          std::int64_t wcet, std::int64_t sw_wcet) const;
};

}  // namespace isex::faults
