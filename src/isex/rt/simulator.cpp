#include "isex/rt/simulator.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace isex::rt {

std::int64_t hyperperiod(const std::vector<SimTask>& tasks, std::int64_t cap) {
  std::int64_t h = 1;
  for (const auto& t : tasks) {
    h = std::lcm(h, t.period);
    if (h <= 0 || h > cap) return cap;
  }
  return h;
}

namespace {

struct Job {
  int task;
  std::int64_t release;
  std::int64_t deadline;
  std::int64_t remaining;
  std::int64_t index;          // job number of its task
  bool miss_recorded = false;  // each job misses at most once
};

}  // namespace

SimResult simulate(const std::vector<SimTask>& tasks, const SimOptions& opts) {
  for (const auto& t : tasks) {
    if (t.period <= 0) throw std::invalid_argument("simulate: period <= 0");
    if (t.wcet < 0) throw std::invalid_argument("simulate: wcet < 0");
  }
  SimResult res;
  res.completed_jobs.assign(tasks.size(), 0);
  res.horizon = opts.horizon > 0 ? opts.horizon
                                 : hyperperiod(tasks, opts.horizon_cap);

  // The ready list stays small for realistic loads (scans are linear), and a
  // plain vector lets the miss detector walk incomplete jobs directly.
  std::vector<Job> ready;
  std::vector<std::int64_t> next_release(tasks.size(), 0);
  std::vector<std::int64_t> job_index(tasks.size(), 0);
  std::int64_t now = 0;

  // Priority: EDF = earliest absolute deadline; RMS = shortest period.
  // Ties break toward the lower task index.
  auto higher = [&](const Job& a, const Job& b) {
    if (opts.policy == Policy::kEdf) {
      if (a.deadline != b.deadline) return a.deadline < b.deadline;
    } else {
      const auto pa = tasks[static_cast<std::size_t>(a.task)].period;
      const auto pb = tasks[static_cast<std::size_t>(b.task)].period;
      if (pa != pb) return pa < pb;
    }
    return a.task < b.task;
  };

  auto release_due = [&](std::int64_t time) {
    for (std::size_t i = 0; i < tasks.size(); ++i)
      while (next_release[i] <= time && next_release[i] < res.horizon) {
        ready.push_back(Job{static_cast<int>(i), next_release[i],
                            next_release[i] + tasks[i].period, tasks[i].wcet,
                            job_index[i], false});
        ++job_index[i];
        next_release[i] += tasks[i].period;
      }
  };
  auto earliest_release = [&] {
    std::int64_t e = res.horizon;
    for (std::size_t i = 0; i < tasks.size(); ++i)
      e = std::min(e, next_release[i]);
    return e;
  };
  /// Records every incomplete job whose deadline is <= now (starved jobs
  /// included); returns false if the caller should stop.
  auto record_passed_deadlines = [&]() -> bool {
    for (Job& j : ready) {
      if (j.miss_recorded || j.deadline > now) continue;
      j.miss_recorded = true;
      res.all_met = false;
      if (static_cast<int>(res.misses.size()) < opts.max_misses)
        res.misses.push_back(DeadlineMiss{j.task, j.index, j.deadline});
      if (opts.stop_at_first_miss) return false;
    }
    return true;
  };

  release_due(0);
  while (now < res.horizon) {
    if (ready.empty()) {
      const std::int64_t next = earliest_release();
      if (next >= res.horizon) break;
      now = next;
      release_due(now);
      continue;
    }
    // Dispatch the highest-priority ready job.
    auto it = std::min_element(
        ready.begin(), ready.end(),
        [&](const Job& a, const Job& b) { return higher(a, b); });
    // Run until completion or the next release (which may preempt).
    const std::int64_t next = std::min(earliest_release(), res.horizon);
    const std::int64_t slice = std::min(it->remaining, next - now);
    now += slice;
    it->remaining -= slice;
    res.busy_cycles += slice;
    if (it->remaining == 0) {
      if (now > it->deadline && !it->miss_recorded) {
        res.all_met = false;
        if (static_cast<int>(res.misses.size()) < opts.max_misses)
          res.misses.push_back(DeadlineMiss{it->task, it->index, it->deadline});
        if (opts.stop_at_first_miss) return res;
      }
      ++res.completed_jobs[static_cast<std::size_t>(it->task)];
      ready.erase(it);
    }
    if (!record_passed_deadlines()) return res;
    release_due(now);
  }
  // Jobs still pending at the horizon may already be past their deadlines.
  record_passed_deadlines();
  return res;
}

}  // namespace isex::rt
