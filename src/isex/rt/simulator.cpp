#include "isex/rt/simulator.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include "isex/obs/trace.hpp"

namespace isex::rt {

std::int64_t hyperperiod(const std::vector<SimTask>& tasks, std::int64_t cap) {
  std::int64_t h = 1;
  for (const auto& t : tasks) {
    if (t.period <= 0) throw std::invalid_argument("hyperperiod: period <= 0");
    // lcm via h / gcd * period, with an explicit overflow check: std::lcm on
    // adversarial near-INT64_MAX periods is UB before the cap comparison.
    const std::int64_t g = std::gcd(h, t.period);
    if (__builtin_mul_overflow(h / g, t.period, &h)) return cap;
    if (h > cap) return cap;
  }
  return h;
}

namespace {

struct Job {
  int task;
  std::int64_t release;        // nominal release; the deadline anchor
  std::int64_t arrival;        // release + jitter: when it becomes ready
  std::int64_t deadline;
  std::int64_t remaining;
  std::int64_t index;          // job number of its task
  bool miss_recorded = false;  // each job misses at most once
};

// Mode-change policy state of one task.
struct ModeState {
  bool fallback = false;
  int misses = 0;  // consecutive deadline misses
  int clean = 0;   // consecutive on-time completions while in fallback
};

}  // namespace

std::string validate_sim_inputs(const std::vector<SimTask>& tasks,
                                const SimOptions& opts) {
  if (tasks.empty()) return "simulate: empty task set";
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    const SimTask& t = tasks[i];
    const std::string who =
        "task " + (t.name.empty() ? std::to_string(i) : t.name);
    if (t.period <= 0) return "simulate: " + who + ": period <= 0";
    if (t.wcet < 0) return "simulate: " + who + ": wcet < 0";
    if (t.sw_wcet < 0) return "simulate: " + who + ": sw_wcet < 0";
    if (t.fallback_wcet < 0) return "simulate: " + who + ": fallback_wcet < 0";
  }
  if (opts.horizon < 0) return "simulate: horizon < 0";
  if (opts.faults != nullptr && !opts.faults->per_task_inflation.empty() &&
      opts.faults->per_task_inflation.size() != tasks.size())
    return "simulate: per_task_inflation size mismatch";
  return "";
}

SimResult simulate(const std::vector<SimTask>& tasks, const SimOptions& opts) {
  if (const std::string err = validate_sim_inputs(tasks, opts); !err.empty())
    throw std::invalid_argument(err);
  SimResult res;
  res.completed_jobs.assign(tasks.size(), 0);
  res.missed_jobs.assign(tasks.size(), 0);
  res.aborted_jobs.assign(tasks.size(), 0);
  res.worst_response.assign(tasks.size(), 0);
  res.horizon = opts.horizon > 0 ? opts.horizon
                                 : hyperperiod(tasks, opts.horizon_cap);

  const faults::FaultModel* fm =
      (opts.faults != nullptr && opts.faults->any_enabled()) ? opts.faults
                                                             : nullptr;
  const bool aborts = opts.miss_policy != MissPolicy::kSoft;
  const bool mode_change = opts.miss_policy == MissPolicy::kModeChange;

  // Trace instrumentation: job execution slices render as one Gantt track per
  // task under the virtual-time pid. Recording never alters scheduling state,
  // so traced and untraced runs produce bit-identical SimResults.
  obs::TraceBuffer& tb = obs::TraceBuffer::global();
  // ISEX_OBS_ENABLED is a compile-time 0 under ISEX_NO_OBS, so every tracing
  // branch below folds away in an instrumentation-free build.
  const bool tracing = ISEX_OBS_ENABLED && tb.enabled();
  auto track_name = [&](int task) {
    const auto& n = tasks[static_cast<std::size_t>(task)].name;
    return n.empty() ? "task" + std::to_string(task) : n;
  };
  if (tracing)
    for (std::size_t i = 0; i < tasks.size(); ++i)
      tb.set_thread_name(obs::kSimPid, static_cast<int>(i),
                         track_name(static_cast<int>(i)));
  std::int64_t jobs_released = 0;
  std::int64_t preemptions = 0;
  // Job whose slice was cut short by an event; a different job dispatched
  // next means it was preempted.
  int resume_task = -1;
  std::int64_t resume_index = -1;

#if ISEX_OBS_ENABLED
  // Publishes run statistics on every exit path (including the
  // stop_at_first_miss early returns).
  struct PublishStats {
    const SimResult& res;
    const std::int64_t& released;
    const std::int64_t& preempts;
    ~PublishStats() {
      std::int64_t completed = 0, missed = 0, aborted = 0;
      for (auto v : res.completed_jobs) completed += v;
      for (auto v : res.missed_jobs) missed += v;
      for (auto v : res.aborted_jobs) aborted += v;
      ISEX_COUNT("rt.sim.runs");
      ISEX_COUNT_ADD("rt.sim.jobs_released", released);
      ISEX_COUNT_ADD("rt.sim.jobs_completed", completed);
      ISEX_COUNT_ADD("rt.sim.jobs_missed", missed);
      ISEX_COUNT_ADD("rt.sim.jobs_aborted", aborted);
      ISEX_COUNT_ADD("rt.sim.preemptions", preempts);
      ISEX_COUNT_ADD("rt.sim.busy_cycles", res.busy_cycles);
    }
  } publish_stats{res, jobs_released, preemptions};
#endif

  // The ready list stays small for realistic loads (scans are linear), and a
  // plain vector lets the miss detector walk incomplete jobs directly.
  // `pending` holds jobs whose jittered arrival is still in the future; it is
  // always empty in fault-free runs.
  std::vector<Job> ready, pending;
  std::vector<std::int64_t> next_release(tasks.size(), 0);
  std::vector<std::int64_t> job_index(tasks.size(), 0);
  std::vector<ModeState> mode(tasks.size());
  std::int64_t now = 0;

  // Priority: EDF = earliest absolute deadline; RMS = shortest period.
  // Ties break toward the lower task index.
  auto higher = [&](const Job& a, const Job& b) {
    if (opts.policy == Policy::kEdf) {
      if (a.deadline != b.deadline) return a.deadline < b.deadline;
    } else {
      const auto pa = tasks[static_cast<std::size_t>(a.task)].period;
      const auto pb = tasks[static_cast<std::size_t>(b.task)].period;
      if (pa != pb) return pa < pb;
    }
    return a.task < b.task;
  };

  /// Records the statistics of a miss of job `j`; returns false if the caller
  /// should stop. The mode-change machine advances separately (after any
  /// abort, so the degradation log reads cause-then-consequence).
  auto note_miss = [&](Job& j) -> bool {
    j.miss_recorded = true;
    res.all_met = false;
    ++res.missed_jobs[static_cast<std::size_t>(j.task)];
    if (static_cast<int>(res.misses.size()) < opts.max_misses)
      res.misses.push_back(DeadlineMiss{j.task, j.index, j.deadline});
    if (tracing)
      obs::trace_instant("miss", "sim.miss", obs::kSimPid, j.task, j.deadline,
                         {{"job", std::to_string(j.index)}});
    return !opts.stop_at_first_miss;
  };
  auto mode_on_miss = [&](int task, std::int64_t job, std::int64_t t) {
    if (!mode_change) return;
    auto& st = mode[static_cast<std::size_t>(task)];
    st.clean = 0;
    if (!st.fallback && ++st.misses >= opts.mode_change.miss_threshold) {
      st.fallback = true;
      st.misses = 0;
      res.events.push_back(DegradationEvent{
          DegradationEvent::Kind::kEnterFallback, task, t, job});
      if (tracing)
        obs::trace_instant("enter_fallback", "sim.degrade", obs::kSimPid, task,
                           t, {{"job", std::to_string(job)}});
    }
  };
  auto note_on_time = [&](const Job& j, std::int64_t t) {
    if (!mode_change) return;
    auto& st = mode[static_cast<std::size_t>(j.task)];
    st.misses = 0;
    if (st.fallback && ++st.clean >= opts.mode_change.recovery_jobs) {
      st.fallback = false;
      st.clean = 0;
      res.events.push_back(DegradationEvent{DegradationEvent::Kind::kRecover,
                                            j.task, t, j.index});
      if (tracing)
        obs::trace_instant("recover", "sim.degrade", obs::kSimPid, j.task, t,
                           {{"job", std::to_string(j.index)}});
    }
  };

  /// Generates all jobs with nominal release <= time. Jittered arrivals in
  /// the future park in `pending`.
  auto release_due = [&](std::int64_t time) {
    for (std::size_t i = 0; i < tasks.size(); ++i)
      while (next_release[i] <= time && next_release[i] < res.horizon) {
        const std::int64_t r = next_release[i];
        std::int64_t exec = tasks[i].wcet;
        if (mode_change && mode[i].fallback && tasks[i].fallback_wcet > 0)
          exec = tasks[i].fallback_wcet;
        std::int64_t arrival = r;
        if (fm != nullptr) {
          const std::int64_t sw =
              tasks[i].sw_wcet > 0 ? tasks[i].sw_wcet : tasks[i].wcet;
          const auto p =
              fm->perturb(static_cast<int>(i), job_index[i], r, exec, sw);
          exec = p.exec;
          arrival = r + p.jitter;
        }
        Job j{static_cast<int>(i), r,      arrival,      r + tasks[i].period,
              exec,                job_index[i], false};
        (arrival <= time ? ready : pending).push_back(j);
        ++jobs_released;
        if (tracing)
          obs::trace_instant("release", "sim.release", obs::kSimPid,
                             static_cast<int>(i), r,
                             {{"job", std::to_string(job_index[i])}});
        ++job_index[i];
        next_release[i] += tasks[i].period;
      }
  };
  auto advance_pending = [&](std::int64_t time) {
    for (std::size_t k = 0; k < pending.size();) {
      if (pending[k].arrival <= time) {
        ready.push_back(pending[k]);
        pending.erase(pending.begin() + static_cast<long>(k));
      } else {
        ++k;
      }
    }
  };
  /// Next instant anything changes: a nominal release or a jittered arrival.
  auto earliest_event = [&] {
    std::int64_t e = res.horizon;
    for (std::size_t i = 0; i < tasks.size(); ++i)
      e = std::min(e, next_release[i]);
    for (const Job& j : pending) e = std::min(e, j.arrival);
    return e;
  };
  /// Records every incomplete job whose deadline is <= now (starved jobs
  /// included); under firm/mode-change policies such jobs are aborted on the
  /// spot. Returns false if the caller should stop.
  auto record_passed_deadlines = [&]() -> bool {
    for (auto* queue : {&ready, &pending})
      for (std::size_t k = 0; k < queue->size();) {
        Job& j = (*queue)[k];
        if (j.deadline > now || (j.miss_recorded && !aborts)) {
          ++k;
          continue;
        }
        const int task = j.task;
        const std::int64_t index = j.index;
        const bool go = j.miss_recorded || note_miss(j);
        if (aborts) {
          ++res.aborted_jobs[static_cast<std::size_t>(task)];
          res.events.push_back(
              DegradationEvent{DegradationEvent::Kind::kAbort, task, now, index});
          if (tracing)
            obs::trace_instant("abort", "sim.degrade", obs::kSimPid, task, now,
                               {{"job", std::to_string(index)}});
          // An aborted job cannot be "preempted" by whatever runs next.
          if (task == resume_task && index == resume_index) resume_task = -1;
          queue->erase(queue->begin() + static_cast<long>(k));  // j dangles
        } else {
          ++k;
        }
        mode_on_miss(task, index, now);
        if (!go) return false;
      }
    return true;
  };

  release_due(0);
  advance_pending(0);
  while (now < res.horizon) {
    if (ready.empty()) {
      const std::int64_t next = earliest_event();
      if (next >= res.horizon) break;
      now = next;
      release_due(now);
      advance_pending(now);
      if (!record_passed_deadlines()) return res;
      continue;
    }
    // Dispatch the highest-priority ready job.
    auto it = std::min_element(
        ready.begin(), ready.end(),
        [&](const Job& a, const Job& b) { return higher(a, b); });
    if (resume_task >= 0 &&
        (it->task != resume_task || it->index != resume_index)) {
      ++preemptions;
      if (tracing)
        obs::trace_instant("preempt", "sim.preempt", obs::kSimPid, resume_task,
                           now, {{"by", track_name(it->task)}});
    }
    // Run until completion or the next event (which may preempt). Every
    // absolute deadline coincides with a nominal release instant of its own
    // task, so firm aborts land exactly on the deadline.
    const std::int64_t next = std::min(earliest_event(), res.horizon);
    const std::int64_t slice = std::min(it->remaining, next - now);
    now += slice;
    it->remaining -= slice;
    res.busy_cycles += slice;
    if (tracing && slice > 0)
      obs::trace_complete(track_name(it->task), "sim.exec", obs::kSimPid,
                          it->task, now - slice, slice,
                          {{"job", std::to_string(it->index)}});
    if (it->remaining > 0) {
      resume_task = it->task;
      resume_index = it->index;
    } else {
      resume_task = -1;
    }
    if (it->remaining == 0) {
      if (now > it->deadline && !it->miss_recorded) {
        if (!note_miss(*it)) return res;
        mode_on_miss(it->task, it->index, now);
      } else if (now <= it->deadline) {
        note_on_time(*it, now);
      }
      ++res.completed_jobs[static_cast<std::size_t>(it->task)];
      auto& wr = res.worst_response[static_cast<std::size_t>(it->task)];
      wr = std::max(wr, now - it->release);
      ISEX_HIST("rt.sim.response_cycles", now - it->release);
      ready.erase(it);
    }
    if (!record_passed_deadlines()) return res;
    release_due(now);
    advance_pending(now);
  }
  // Jobs still pending at the horizon may already be past their deadlines.
  record_passed_deadlines();
  return res;
}

robust::Result<SimResult> try_simulate(const std::vector<SimTask>& tasks,
                                       const SimOptions& opts) {
  if (std::string err = validate_sim_inputs(tasks, opts); !err.empty())
    return robust::Error{std::move(err)};
  return simulate(tasks, opts);
}

}  // namespace isex::rt
