// Schedulability analysis for EDF and RMS on a uniprocessor.
//
// EDF: a set of independent preemptable periodic tasks with deadline = period
// is schedulable iff U <= 1 (Liu & Layland).
//
// RMS: no utilization-only exact test exists; we implement the exact test of
// Theorem 1 (Bini & Buttazzo): task T_i (tasks indexed by decreasing
// priority, i.e. increasing period) is schedulable iff
//     L_i = min_{t in S_{i-1}(P_i)}  [ sum_{j<=i} ceil(t/P_j) C_j ] / t  <= 1
// where S_0(t) = {t} and S_i(t) = S_{i-1}(floor(t/P_i) P_i) U S_{i-1}(t).
// The Liu-Layland sufficient bound U <= n(2^{1/n}-1) is also provided (used
// by the conservative RMS voltage-scaling path of Fig 3.4).
#pragma once

#include <vector>

namespace isex::rt {

inline constexpr double kSchedEps = 1e-9;

/// EDF exact test: total utilization <= 1.
bool edf_schedulable(double total_utilization);

/// Liu-Layland sufficient RMS bound for n tasks.
double rms_utilization_bound(int n);

/// Exact RMS response check for task `i` (0-based), given execution times C
/// and periods P of tasks 0..i sorted by increasing period. Returns L_i.
double rms_load_factor(int i, const std::vector<double>& cycles,
                       const std::vector<double>& periods);

/// True iff task i meets its deadline under RMS (L_i <= 1).
bool rms_task_schedulable(int i, const std::vector<double>& cycles,
                          const std::vector<double>& periods);

/// True iff the entire task set (sorted by increasing period) is
/// RMS-schedulable: max_i L_i <= 1.
bool rms_schedulable(const std::vector<double>& cycles,
                     const std::vector<double>& periods);

}  // namespace isex::rt
