// Cycle-accurate preemptive uniprocessor scheduler simulation.
//
// An event-driven simulator for periodic implicit-deadline task sets under
// EDF or RMS. It is the executable ground truth the analytic schedulability
// tests are validated against in the test suite (the exact RMS test of
// Theorem 1 must agree with simulation over the hyperperiod), and it is the
// execution substrate of the failure-injection subsystem (isex::faults):
// SimOptions can attach a faults::FaultModel (per-job overruns, release
// jitter, CI-unavailability windows) and pick a deadline-miss policy —
// run-to-completion (soft), job-abort-at-deadline (firm), or a mode-change
// policy that degrades a misbehaving task to its fallback configuration and
// recovers after a miss-free hysteresis window. With no fault model attached
// and the default soft policy, behaviour is bit-identical to the plain
// simulator.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "isex/faults/model.hpp"
#include "isex/robust/outcome.hpp"

namespace isex::rt {

enum class Policy { kEdf, kRms };

struct SimTask {
  std::int64_t wcet = 0;    // cycles per job
  std::int64_t period = 0;  // release separation = relative deadline
  /// Software-only demand, used when a CI-unavailability fault strips the
  /// task of its accelerated datapath. 0 = same as wcet (no CIs modelled);
  /// negative values are rejected by validate_sim_inputs.
  std::int64_t sw_wcet = 0;
  /// Demand of the designated degraded-mode configuration the mode-change
  /// policy switches to after repeated misses. 0 = same as wcet (no
  /// fallback designated; mode changes are then logged but ineffective);
  /// negative values are rejected by validate_sim_inputs.
  std::int64_t fallback_wcet = 0;
  /// Display name for the obs trace track of this task ("task<i>" if empty);
  /// has no effect on simulation results.
  std::string name = {};
};

struct DeadlineMiss {
  int task = -1;
  std::int64_t job = -1;        // job index (0 = first release)
  std::int64_t deadline = -1;   // absolute deadline that was missed
};

/// One graceful-degradation action taken by the runtime.
struct DegradationEvent {
  enum class Kind {
    kAbort,          // firm/mode-change: incomplete job dropped at its deadline
    kEnterFallback,  // mode-change: task switched to its fallback configuration
    kRecover,        // mode-change: task restored to its nominal configuration
  };
  Kind kind = Kind::kAbort;
  int task = -1;
  std::int64_t time = 0;  // instant the action was taken
  std::int64_t job = -1;  // job that triggered it
};

struct SimResult {
  bool all_met = true;
  std::vector<DeadlineMiss> misses;   // at most max_misses recorded
  std::int64_t busy_cycles = 0;       // total executed cycles
  std::int64_t horizon = 0;           // simulated span
  std::vector<std::int64_t> completed_jobs;  // per task
  // --- degradation / robustness statistics (all zero for fault-free runs
  //     under the soft policy) ---
  std::vector<std::int64_t> missed_jobs;     // per task, uncapped miss counts
  std::vector<std::int64_t> aborted_jobs;    // per task, jobs dropped at deadline
  std::vector<std::int64_t> worst_response;  // per task, over completed jobs
  std::vector<DegradationEvent> events;      // degradation log, time-ordered
};

/// What the runtime does when a job overruns its deadline.
enum class MissPolicy {
  kSoft,        // run-to-completion: late jobs keep the processor (seed behaviour)
  kFirm,        // abort-at-deadline: incomplete jobs are dropped at their deadline
  kModeChange,  // firm aborts + per-task fallback switching (ModeChangeOptions)
};

struct ModeChangeOptions {
  int miss_threshold = 2;  // consecutive misses before entering fallback
  int recovery_jobs = 4;   // consecutive on-time jobs in fallback before recovery
};

struct SimOptions {
  Policy policy = Policy::kEdf;
  std::int64_t horizon = 0;  // 0 = one hyperperiod (capped at horizon_cap)
  std::int64_t horizon_cap = 200'000'000;
  int max_misses = 16;
  bool stop_at_first_miss = false;
  MissPolicy miss_policy = MissPolicy::kSoft;
  ModeChangeOptions mode_change;
  /// Fault injection; not owned, nullptr = fault-free run.
  const faults::FaultModel* faults = nullptr;
};

/// Least common multiple of the task periods, saturating at `cap` (also on
/// int64 overflow of the lcm fold itself).
std::int64_t hyperperiod(const std::vector<SimTask>& tasks, std::int64_t cap);

/// "" when the inputs are simulatable, else a one-line description of the
/// first violation (empty task set, non-positive period, negative wcet /
/// sw_wcet / fallback_wcet, negative horizon, fault-model size mismatch).
std::string validate_sim_inputs(const std::vector<SimTask>& tasks,
                                const SimOptions& opts);

/// Simulates the task set; all tasks release their first job at time 0.
/// Ties (equal deadline / equal period) break by lower task index.
/// Degenerate inputs (see validate_sim_inputs) throw std::invalid_argument.
SimResult simulate(const std::vector<SimTask>& tasks, const SimOptions& opts);

/// Non-throwing simulate: degenerate inputs come back as an Error value
/// instead of an exception, for callers routing validation failures to an
/// exit code or a report rather than unwinding.
robust::Result<SimResult> try_simulate(const std::vector<SimTask>& tasks,
                                       const SimOptions& opts);

}  // namespace isex::rt
