// Cycle-accurate preemptive uniprocessor scheduler simulation.
//
// An event-driven simulator for periodic implicit-deadline task sets under
// EDF or RMS. It is the executable ground truth the analytic schedulability
// tests are validated against in the test suite (the exact RMS test of
// Theorem 1 must agree with simulation over the hyperperiod), and it powers
// the failure-injection tests (overload behaviour, first-miss instants).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace isex::rt {

enum class Policy { kEdf, kRms };

struct SimTask {
  std::int64_t wcet = 0;    // cycles per job
  std::int64_t period = 0;  // release separation = relative deadline
};

struct DeadlineMiss {
  int task = -1;
  std::int64_t job = -1;        // job index (0 = first release)
  std::int64_t deadline = -1;   // absolute deadline that was missed
};

struct SimResult {
  bool all_met = true;
  std::vector<DeadlineMiss> misses;   // at most max_misses recorded
  std::int64_t busy_cycles = 0;       // total executed cycles
  std::int64_t horizon = 0;           // simulated span
  std::vector<std::int64_t> completed_jobs;  // per task
};

struct SimOptions {
  Policy policy = Policy::kEdf;
  std::int64_t horizon = 0;  // 0 = one hyperperiod (capped at horizon_cap)
  std::int64_t horizon_cap = 200'000'000;
  int max_misses = 16;
  bool stop_at_first_miss = false;
};

/// Least common multiple of the task periods, saturating at `cap`.
std::int64_t hyperperiod(const std::vector<SimTask>& tasks, std::int64_t cap);

/// Simulates the task set; all tasks release their first job at time 0.
/// Ties (equal deadline / equal period) break by lower task index.
SimResult simulate(const std::vector<SimTask>& tasks, const SimOptions& opts);

}  // namespace isex::rt
