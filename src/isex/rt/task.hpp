// Periodic real-time task model (Chapter 3).
//
// Each task T_i has a period P_i (= relative deadline) and a list of custom-
// instruction-enhanced configurations config_{i,j} = (area_{i,j}, cycle_{i,j})
// with config_{i,1} the plain-software point (area 0, cycle = C_i). A system
// solution assigns one configuration per task; its quality is the total
// processor utilization U = sum cycle_{i,j(i)} / P_i.
#pragma once

#include <string>
#include <vector>

#include "isex/select/config_curve.hpp"

namespace isex::rt {

struct Task {
  std::string name;
  double period = 0;  // P_i; deadline == period
  std::vector<select::Config> configs;  // ascending area; [0] is software-only

  double sw_cycles() const { return configs.front().cycles; }
  double best_cycles() const;
  double max_area() const;
  double utilization(int config) const {
    return configs[static_cast<std::size_t>(config)].cycles / period;
  }
};

struct TaskSet {
  std::vector<Task> tasks;

  std::size_t size() const { return tasks.size(); }

  /// Sum of the per-task maximum configuration areas: the "Max_Area" axis
  /// endpoint of the Fig 3.3 sweeps.
  double max_area() const;

  /// Utilization of a configuration assignment (one index per task).
  double utilization(const std::vector<int>& assignment) const;

  /// Software-only utilization.
  double sw_utilization() const;

  /// Total area consumed by an assignment.
  double area(const std::vector<int>& assignment) const;

  /// Scales periods so the software-only utilization equals u_target, giving
  /// every task an equal utilization share (P_i = alpha_i * C_i, the thesis'
  /// task-set construction).
  void set_periods_for_utilization(double u_target);

  /// Sorts tasks by ascending period (rate-monotonic priority order).
  void sort_by_period();

  /// Checks the structural invariants every solver assumes: non-empty task
  /// list, each task with a positive finite period, a non-empty ascending-
  /// area configuration list whose first entry is the zero-area software
  /// point, and positive cycle counts. Returns "" when valid, else a one-line
  /// description of the first violation (task name included).
  std::string validate() const;
};

}  // namespace isex::rt
