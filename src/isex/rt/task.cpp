#include "isex/rt/task.hpp"

#include <algorithm>
#include <cmath>

namespace isex::rt {

double Task::best_cycles() const {
  double best = configs.front().cycles;
  for (const auto& c : configs) best = std::min(best, c.cycles);
  return best;
}

double Task::max_area() const {
  double a = 0;
  for (const auto& c : configs) a = std::max(a, c.area);
  return a;
}

double TaskSet::max_area() const {
  double a = 0;
  for (const auto& t : tasks) a += t.max_area();
  return a;
}

double TaskSet::utilization(const std::vector<int>& assignment) const {
  double u = 0;
  for (std::size_t i = 0; i < tasks.size(); ++i)
    u += tasks[i].utilization(assignment[i]);
  return u;
}

double TaskSet::sw_utilization() const {
  double u = 0;
  for (const auto& t : tasks) u += t.sw_cycles() / t.period;
  return u;
}

double TaskSet::area(const std::vector<int>& assignment) const {
  double a = 0;
  for (std::size_t i = 0; i < tasks.size(); ++i)
    a += tasks[i].configs[static_cast<std::size_t>(assignment[i])].area;
  return a;
}

void TaskSet::set_periods_for_utilization(double u_target) {
  // Equal share: each task runs at utilization u_target / N in software.
  const double share = u_target / static_cast<double>(tasks.size());
  for (auto& t : tasks) t.period = t.sw_cycles() / share;
}

void TaskSet::sort_by_period() {
  std::sort(tasks.begin(), tasks.end(),
            [](const Task& a, const Task& b) { return a.period < b.period; });
}

std::string TaskSet::validate() const {
  if (tasks.empty()) return "task set is empty";
  for (const Task& t : tasks) {
    const std::string who =
        "task '" + (t.name.empty() ? std::string("?") : t.name) + "'";
    if (!(t.period > 0) || !std::isfinite(t.period))
      return who + ": period must be positive and finite";
    if (t.configs.empty()) return who + ": has no configurations";
    if (t.configs.front().area != 0)
      return who + ": first configuration must be the software point (area 0)";
    for (std::size_t j = 0; j < t.configs.size(); ++j) {
      if (!(t.configs[j].cycles > 0) || !std::isfinite(t.configs[j].cycles))
        return who + ": configuration " + std::to_string(j) +
               " has non-positive cycles";
      if (t.configs[j].area < 0 || !std::isfinite(t.configs[j].area))
        return who + ": configuration " + std::to_string(j) +
               " has negative area";
    }
  }
  return "";
}

}  // namespace isex::rt
