#include "isex/rt/schedulability.hpp"

#include <cmath>
#include <limits>
#include <set>
#include <utility>

namespace isex::rt {

bool edf_schedulable(double total_utilization) {
  return total_utilization <= 1.0 + kSchedEps;
}

double rms_utilization_bound(int n) {
  if (n <= 0) return 1.0;
  return static_cast<double>(n) *
         (std::pow(2.0, 1.0 / static_cast<double>(n)) - 1.0);
}

namespace {

/// Gathers S_i(t) into `points`. Overlapping subtrees collapse through the
/// visited set, so the worst-case 2^i blow-up rarely materializes.
void gather(int i, double t, const std::vector<double>& periods,
            std::set<std::pair<int, double>>& visited,
            std::set<double>& points) {
  if (!visited.insert({i, t}).second) return;
  if (i < 0) {
    points.insert(t);
    return;
  }
  const double p = periods[static_cast<std::size_t>(i)];
  const double snapped = std::floor(t / p + kSchedEps) * p;
  gather(i - 1, snapped, periods, visited, points);
  gather(i - 1, t, periods, visited, points);
}

}  // namespace

double rms_load_factor(int i, const std::vector<double>& cycles,
                       const std::vector<double>& periods) {
  // Test points: S_{i-1}(P_i).
  std::set<std::pair<int, double>> visited;
  std::set<double> points;
  gather(i - 1, periods[static_cast<std::size_t>(i)], periods, visited, points);

  double best = std::numeric_limits<double>::infinity();
  for (double t : points) {
    if (t <= kSchedEps) continue;
    double demand = 0;
    for (int j = 0; j <= i; ++j)
      demand += std::ceil(t / periods[static_cast<std::size_t>(j)] - kSchedEps) *
                cycles[static_cast<std::size_t>(j)];
    best = std::min(best, demand / t);
  }
  return best;
}

bool rms_task_schedulable(int i, const std::vector<double>& cycles,
                          const std::vector<double>& periods) {
  return rms_load_factor(i, cycles, periods) <= 1.0 + kSchedEps;
}

bool rms_schedulable(const std::vector<double>& cycles,
                     const std::vector<double>& periods) {
  for (std::size_t i = 0; i < cycles.size(); ++i)
    if (!rms_task_schedulable(static_cast<int>(i), cycles, periods))
      return false;
  return true;
}

}  // namespace isex::rt
