// Structural Verilog emission for selected custom instructions — the
// "Synthesis" box of the Fig 1.2 / 1.3 design flow.
//
// A custom instruction is a combinational datapath: the emitter produces a
// self-contained Verilog-2001 module with one 32-bit input port per
// register operand, one output port per result, localparams for hardwired
// constants, and continuous assignments for every operator. The header
// comment carries the estimate (latency, cycles, area) so downstream
// synthesis scripts can check timing assumptions.
#pragma once

#include <string>

#include "isex/ise/candidate.hpp"

namespace isex::rtl {

struct VerilogOptions {
  int width = 32;              // operand bit width
  std::string module_prefix = "ci_";
};

/// Emits the module for candidate `c` of `dfg`. The candidate must be legal
/// (asserted); the module name is prefix + name.
std::string emit_verilog(const ir::Dfg& dfg, const ise::Candidate& c,
                         const std::string& name,
                         const VerilogOptions& opts = {});

/// Structural sanity check used by the tests and by emit_verilog's
/// postcondition: every output is driven, every wire driven exactly once.
bool verilog_well_formed(const std::string& text);

}  // namespace isex::rtl
