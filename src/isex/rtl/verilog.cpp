#include "isex/rtl/verilog.hpp"

#include <map>
#include <sstream>
#include <stdexcept>

#include "isex/ir/eval.hpp"

namespace isex::rtl {

namespace {

/// Verilog expression for one operator over named operand expressions.
std::string op_expr(ir::Opcode op, const std::vector<std::string>& a,
                    int width) {
  using ir::Opcode;
  switch (op) {
    case Opcode::kAdd: return a[0] + " + " + a[1];
    case Opcode::kSub: return a[0] + " - " + a[1];
    case Opcode::kMul: return a[0] + " * " + a[1];
    case Opcode::kMac:
      return a.size() > 2 ? a[0] + " * " + a[1] + " + " + a[2]
                          : a[0] + " * " + a[1];
    case Opcode::kAnd: return a[0] + " & " + a[1];
    case Opcode::kOr: return a[0] + " | " + a[1];
    case Opcode::kXor: return a[0] + " ^ " + a[1];
    case Opcode::kNot: return "~" + a[0];
    case Opcode::kShl: return a[0] + " << " + a[1] + "[4:0]";
    case Opcode::kShr: return a[0] + " >> " + a[1] + "[4:0]";
    case Opcode::kRotl: {
      std::ostringstream os;
      os << "(" << a[0] << " << " << a[1] << "[4:0]) | (" << a[0] << " >> ("
         << width << " - " << a[1] << "[4:0]))";
      return os.str();
    }
    case Opcode::kCmp:
      return "{{" + std::to_string(width - 1) + "{1'b0}}, ($signed(" + a[0] +
             ") < $signed(" + a[1] + "))}";
    case Opcode::kSelect: return "(|" + a[0] + ") ? " + a[1] + " : " + a[2];
    case Opcode::kSext:
      return "{{" + std::to_string(width / 2) + "{" + a[0] + "[" +
             std::to_string(width / 2 - 1) + "]}}, " + a[0] + "[" +
             std::to_string(width / 2 - 1) + ":0]}";
    default:
      throw std::invalid_argument("op_expr: opcode not synthesizable");
  }
}

}  // namespace

std::string emit_verilog(const ir::Dfg& dfg, const ise::Candidate& c,
                         const std::string& name, const VerilogOptions& opts) {
  // Names: external value producers become input ports; constants become
  // localparams; internal nodes become wires; escaping values become
  // output ports (driven from the internal wire).
  std::map<int, std::string> value_name;  // node -> expression name
  std::vector<std::pair<std::string, int>> ports_in;   // (name, node)
  std::vector<std::pair<std::string, int>> ports_out;  // (name, node)
  std::vector<int> consts;

  c.nodes.for_each([&](std::size_t v) {
    const ir::Node& n = dfg.node(static_cast<int>(v));
    for (ir::NodeId o : n.operands) {
      const auto oi = static_cast<std::size_t>(o);
      if (c.nodes.test(oi) || value_name.count(o)) continue;
      if (ir::is_free_input(dfg.node(o).op)) {
        value_name[o] = "K" + std::to_string(o);
        consts.push_back(o);
      } else {
        const std::string pname = "in" + std::to_string(ports_in.size());
        value_name[o] = pname;
        ports_in.emplace_back(pname, o);
      }
    }
  });
  c.nodes.for_each([&](std::size_t v) {
    value_name[static_cast<int>(v)] = "w" + std::to_string(v);
  });
  c.nodes.for_each([&](std::size_t v) {
    const ir::Node& n = dfg.node(static_cast<int>(v));
    bool escapes = n.live_out;
    for (ir::NodeId cons : n.consumers)
      if (!c.nodes.test(static_cast<std::size_t>(cons))) escapes = true;
    if (escapes)
      ports_out.emplace_back("out" + std::to_string(ports_out.size()),
                             static_cast<int>(v));
  });

  std::ostringstream os;
  const int w = opts.width;
  os << "// Custom instruction '" << name << "': " << c.nodes.count()
     << " ops, " << c.num_inputs << " in / " << c.num_outputs << " out\n"
     << "// estimate: " << c.est.latency_ns << " ns critical path, "
     << c.est.hw_cycles << " cycle(s), " << c.est.area
     << " adder-equivalents\n"
     << "module " << opts.module_prefix << name << " (\n";
  for (std::size_t i = 0; i < ports_in.size(); ++i)
    os << "  input  wire [" << w - 1 << ":0] " << ports_in[i].first << ",\n";
  for (std::size_t i = 0; i < ports_out.size(); ++i)
    os << "  output wire [" << w - 1 << ":0] " << ports_out[i].first
       << (i + 1 < ports_out.size() ? ",\n" : "\n");
  os << ");\n";
  for (int k : consts)
    os << "  localparam [" << w - 1 << ":0] " << value_name[k] << " = "
       << w << "'d"
       << (static_cast<std::uint64_t>(ir::pseudo_rom(0x5EED0000 + k)) & 0xffff)
       << ";\n";
  c.nodes.for_each([&](std::size_t v) {
    os << "  wire [" << w - 1 << ":0] w" << v << ";\n";
  });
  os << "\n";
  c.nodes.for_each([&](std::size_t v) {
    const ir::Node& n = dfg.node(static_cast<int>(v));
    std::vector<std::string> args;
    for (ir::NodeId o : n.operands) args.push_back(value_name.at(o));
    os << "  assign w" << v << " = " << op_expr(n.op, args, w) << ";\n";
  });
  os << "\n";
  for (const auto& [pname, node] : ports_out)
    os << "  assign " << pname << " = w" << node << ";\n";
  os << "endmodule\n";
  return os.str();
}

bool verilog_well_formed(const std::string& text) {
  // Light structural lint: every declared wire is assigned exactly once and
  // every output port is assigned.
  std::map<std::string, int> declared, driven;
  std::istringstream is(text);
  std::string line;
  std::vector<std::string> outputs;
  while (std::getline(is, line)) {
    auto find_name = [&](const std::string& prefix) -> std::string {
      const auto p = line.find(prefix);
      if (p == std::string::npos) return {};
      auto start = p + prefix.size();
      auto end = line.find_first_of(" ;,=", start);
      return line.substr(start, end - start);
    };
    if (line.find("  wire") == 0 || line.find("  wire") != std::string::npos) {
      const auto p = line.find("] ");
      if (p != std::string::npos && line.find("assign") == std::string::npos &&
          line.find("input") == std::string::npos &&
          line.find("output") == std::string::npos) {
        auto name = line.substr(p + 2);
        if (!name.empty() && name.back() == ';') name.pop_back();
        declared[name] = 1;
      }
    }
    if (line.find("output wire") != std::string::npos) {
      auto name = find_name("] ");
      if (!name.empty()) outputs.push_back(name);
    }
    const auto ap = line.find("assign ");
    if (ap != std::string::npos) {
      auto start = ap + 7;
      auto end = line.find_first_of(" =", start);
      driven[line.substr(start, end - start)]++;
    }
  }
  for (const auto& [name, d] : declared)
    if (driven[name] != 1) return false;
  for (const auto& o : outputs)
    if (driven[o] != 1) return false;
  return true;
}

}  // namespace isex::rtl
