// The Iterative Selection (IS) baseline of Pozzi-Atasu-Ienne used in the
// Chapter 5 comparison (Fig 5.5 / 5.6): repeatedly extract the optimal
// single cut, remove its nodes from consideration, repeat until no cut with
// positive gain remains. Each iteration's cumulative analysis time and
// speedup are logged so the speedup-vs-time trajectories can be plotted
// against MLGP. The exact single-cut engine is exponential in the worst
// case, which is why IS stalls on very large basic blocks (3des).
#pragma once

#include <vector>

#include "isex/ise/single_cut.hpp"

namespace isex::mlgp {

struct IsOptions {
  ise::Constraints constraints;
  double per_cut_time_budget = 30;  // seconds before a cut search is abandoned
  double total_time_budget = 300;   // seconds for the whole run
  int max_cuts_per_block = 64;
};

struct IsStep {
  ise::Candidate ci;
  double elapsed_seconds = 0;  // cumulative since the run started
};

struct IsResult {
  std::vector<IsStep> steps;
  bool completed = true;  // false if any budget expired
};

/// Runs IS on one basic block.
IsResult iterative_selection(const ir::Dfg& dfg, const hw::CellLibrary& lib,
                             const IsOptions& opts, int block = 0,
                             double exec_freq = 1);

}  // namespace isex::mlgp
