#include "isex/mlgp/is_baseline.hpp"

#include "isex/util/stopwatch.hpp"

namespace isex::mlgp {

IsResult iterative_selection(const ir::Dfg& dfg, const hw::CellLibrary& lib,
                             const IsOptions& opts, int block,
                             double exec_freq) {
  IsResult res;
  util::Stopwatch clock;
  util::Bitset allowed = dfg.valid_mask();
  for (int iter = 0; iter < opts.max_cuts_per_block; ++iter) {
    const double remaining = opts.total_time_budget - clock.seconds();
    if (remaining <= 0) {
      res.completed = false;
      break;
    }
    ise::SingleCutOptions sc;
    sc.constraints = opts.constraints;
    sc.time_budget_seconds = std::min(opts.per_cut_time_budget, remaining);
    sc.allowed = allowed;
    const auto cut = ise::optimal_single_cut(dfg, lib, sc, block, exec_freq);
    if (!cut.completed) res.completed = false;
    if (!cut.best) break;  // no further cut with positive gain
    // Remove the chosen nodes from future consideration.
    allowed -= cut.best->nodes;
    res.steps.push_back(IsStep{*cut.best, clock.seconds()});
    if (!cut.completed) break;  // the truncated search's result still counts
  }
  return res;
}

}  // namespace isex::mlgp
