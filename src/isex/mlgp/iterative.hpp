// The iterative top-down customization scheme (Algorithm 4, Section 5.1).
//
// Instead of enumerating custom instructions for every task up front
// (bottom-up, hours for task sets containing 3des-sized blocks), the
// iterative scheme zooms into the bottleneck: each round picks the task with
// the highest utilization, walks the basic blocks on its WCET path in weight
// order, and lets MLGP carve custom instructions out of the largest
// still-uncovered regions until the round's utilization target contribution
// is met. Rounds repeat until the task set is schedulable (U <= target) or
// no task can be improved further.
#pragma once

#include <string>
#include <vector>

#include "isex/ir/program.hpp"
#include "isex/mlgp/mlgp.hpp"

namespace isex::mlgp {

/// A task inside the iterative flow; owns its selection state.
struct IterTask {
  std::string name;
  ir::Program program;
  double period = 0;

  // Selection state, maintained by iterative_customize().
  std::vector<util::Bitset> used;      // per block: nodes already inside CIs
  std::vector<double> block_gain;      // per block: cycles saved per execution

  explicit IterTask(std::string n, ir::Program p, double period_)
      : name(std::move(n)), program(std::move(p)), period(period_) {}

  /// Current per-block cost (software cost minus selected CI gains).
  ir::BlockCost cost(const hw::CellLibrary& lib) const;
  double wcet(const hw::CellLibrary& lib) const;
};

struct IterativeOptions {
  double u_target = 1.0;
  int max_iterations = 400;
  double path_weight_threshold = 0.9;  // WCET-path prefix explored per round
  MlgpOptions mlgp;
  /// Cooperative execution budget (non-owning; nullptr = unlimited), checked
  /// between rounds and forwarded to the per-round MLGP generation (unless
  /// mlgp.budget is already set). Every round leaves the selection state
  /// consistent, so stopping early just reports the utilization reached.
  robust::Budget* budget = nullptr;
};

struct IterationRecord {
  int iteration = 0;
  std::string task;          // the task customized this round
  double utilization = 0;    // total U after the round
  double area = 0;           // cumulative CI area (isomorphism-shared)
  double elapsed_seconds = 0;
};

struct IterativeResult {
  double utilization = 0;
  double area = 0;
  bool met_target = false;
  std::vector<IterationRecord> trace;
  std::vector<ise::Candidate> selected;  // all generated custom instructions
  /// kExact when the scheme ran to its natural end (target met or no task
  /// improvable); kBudgetTruncated when the budget stopped the rounds.
  robust::Status status = robust::Status::kExact;
  /// 0 when the target was met; otherwise how far utilization still is above
  /// the target, relative to the target.
  double optimality_gap = 0;
};

IterativeResult iterative_customize(std::vector<IterTask>& tasks,
                                    const hw::CellLibrary& lib,
                                    const IterativeOptions& opts,
                                    util::Rng& rng);

}  // namespace isex::mlgp
