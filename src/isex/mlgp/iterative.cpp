#include "isex/mlgp/iterative.hpp"

#include <algorithm>
#include <numeric>
#include <unordered_map>

#include "isex/util/stopwatch.hpp"

namespace isex::mlgp {

ir::BlockCost IterTask::cost(const hw::CellLibrary& lib) const {
  return [this, &lib](int b, const ir::BasicBlock& blk) {
    double sw = 0;
    for (const ir::Node& n : blk.dfg.nodes()) sw += lib.sw_cycles(n);
    const double gain =
        block_gain.empty() ? 0 : block_gain[static_cast<std::size_t>(b)];
    return sw - gain;
  };
}

double IterTask::wcet(const hw::CellLibrary& lib) const {
  return program.wcet(cost(lib));
}

namespace {

/// Connected components (undirected) of `mask` within the DFG — the regions
/// still available for custom-instruction generation after earlier rounds
/// consumed parts of the block.
std::vector<util::Bitset> components_of(const ir::Dfg& dfg,
                                        const util::Bitset& mask) {
  std::vector<util::Bitset> out;
  util::Bitset seen = dfg.empty_set();
  mask.for_each([&](std::size_t seed) {
    if (seen.test(seed)) return;
    util::Bitset comp = dfg.empty_set();
    std::vector<std::size_t> stack{seed};
    seen.set(seed);
    while (!stack.empty()) {
      const std::size_t v = stack.back();
      stack.pop_back();
      comp.set(v);
      auto visit = [&](ir::NodeId u) {
        const auto ui = static_cast<std::size_t>(u);
        if (mask.test(ui) && !seen.test(ui)) {
          seen.set(ui);
          stack.push_back(ui);
        }
      };
      for (ir::NodeId o : dfg.node(static_cast<int>(v)).operands) visit(o);
      for (ir::NodeId c : dfg.node(static_cast<int>(v)).consumers) visit(c);
    }
    out.push_back(std::move(comp));
  });
  return out;
}

}  // namespace

IterativeResult iterative_customize(std::vector<IterTask>& tasks,
                                    const hw::CellLibrary& lib,
                                    const IterativeOptions& opts,
                                    util::Rng& rng) {
  util::Stopwatch clock;
  IterativeResult res;
  // Isomorphism-shared area accounting: one implementation per shape.
  std::unordered_map<std::uint64_t, double> area_classes;
  auto total_area = [&] {
    double a = 0;
    for (const auto& [h, area] : area_classes) a += area;
    return a;
  };

  for (auto& t : tasks) {
    t.used.assign(static_cast<std::size_t>(t.program.num_blocks()),
                  util::Bitset{});
    for (int b = 0; b < t.program.num_blocks(); ++b)
      t.used[static_cast<std::size_t>(b)] = t.program.block(b).dfg.empty_set();
    t.block_gain.assign(static_cast<std::size_t>(t.program.num_blocks()), 0.0);
  }

  std::vector<bool> active(tasks.size(), true);
  auto utilization = [&] {
    double u = 0;
    for (const auto& t : tasks) u += t.wcet(lib) / t.period;
    return u;
  };

  // Forward the scheme-level budget into the per-round MLGP generation so a
  // single budget bounds the whole flow; a caller-provided mlgp.budget wins.
  MlgpOptions mlgp_opts = opts.mlgp;
  if (mlgp_opts.budget == nullptr) mlgp_opts.budget = opts.budget;
  bool truncated = false;

  double u = utilization();
  for (int iter = 1; iter <= opts.max_iterations; ++iter) {
    if (u <= opts.u_target + 1e-12) break;
    if (opts.budget != nullptr && opts.budget->exhausted()) {
      truncated = true;
      break;
    }
    // Select the active task with maximum utilization (line 5).
    int ti = -1;
    double max_u = -1;
    for (std::size_t i = 0; i < tasks.size(); ++i) {
      if (!active[i]) continue;
      const double tu = tasks[i].wcet(lib) / tasks[i].period;
      if (tu > max_u) {
        max_u = tu;
        ti = static_cast<int>(i);
      }
    }
    if (ti < 0) break;  // every task exhausted
    IterTask& task = tasks[static_cast<std::size_t>(ti)];
    const double delta = (u - opts.u_target) * task.period;  // line 6

    // WCET-path block subsequence with >= threshold of the path weight
    // (line 7).
    const auto cost = task.cost(lib);
    const auto counts = task.program.wcet_counts(cost);
    const double wcet_before = task.program.wcet(cost);
    std::vector<int> blocks(static_cast<std::size_t>(task.program.num_blocks()));
    std::iota(blocks.begin(), blocks.end(), 0);
    auto weight = [&](int b) {
      return cost(b, task.program.block(b)) *
             static_cast<double>(counts[static_cast<std::size_t>(b)]);
    };
    std::sort(blocks.begin(), blocks.end(),
              [&](int a, int b) { return weight(a) > weight(b); });
    std::vector<int> prefix;
    double acc = 0;
    for (int b : blocks) {
      if (counts[static_cast<std::size_t>(b)] == 0) break;
      prefix.push_back(b);
      acc += weight(b);
      if (acc >= opts.path_weight_threshold * wcet_before) break;
    }

    // Custom-instruction generation over the selected blocks (line 8):
    // largest uncovered region first, until the round target delta is met.
    double gained = 0;
    for (int b : prefix) {
      if (gained >= delta) break;
      auto& dfg = task.program.block(b).dfg;
      const auto freq = static_cast<double>(counts[static_cast<std::size_t>(b)]);
      util::Bitset avail = dfg.valid_mask();
      avail -= task.used[static_cast<std::size_t>(b)];
      for (int i = 0; i < dfg.num_nodes(); ++i)
        if (dfg.node(i).op == ir::Opcode::kConst)
          avail.reset(static_cast<std::size_t>(i));
      auto regions = components_of(dfg, avail);
      std::sort(regions.begin(), regions.end(),
                [](const util::Bitset& a, const util::Bitset& b2) {
                  return a.count() > b2.count();
                });
      for (const auto& region : regions) {
        if (gained >= delta) break;
        if (region.count() < 2) continue;
        auto cis = generate(dfg, region, lib, mlgp_opts, rng, b, freq);
        for (auto& ci : cis) {
          task.used[static_cast<std::size_t>(b)] |= ci.nodes;
          task.block_gain[static_cast<std::size_t>(b)] += ci.est.gain_per_exec;
          gained += ci.total_gain();
          auto [it, inserted] =
              area_classes.try_emplace(ci.iso_hash, ci.est.area);
          if (!inserted) it->second = std::max(it->second, ci.est.area);
          res.selected.push_back(std::move(ci));
        }
      }
    }

    if (gained <= 0) {
      active[static_cast<std::size_t>(ti)] = false;  // line 12
      bool any = false;
      for (bool a : active) any = any || a;
      if (!any) break;  // line 13
      continue;          // no progress this round; try the next task
    }

    u = utilization();
    res.trace.push_back(IterationRecord{iter, task.name, u, total_area(),
                                        clock.seconds()});
  }

  res.utilization = u;
  res.area = total_area();
  res.met_target = u <= opts.u_target + 1e-12;
  if (truncated) res.status = robust::Status::kBudgetTruncated;
  if (!res.met_target && opts.u_target > 0)
    res.optimality_gap =
        std::max(0.0, (u - opts.u_target) / opts.u_target);
  return res;
}

}  // namespace isex::mlgp
