#include "isex/mlgp/mlgp.hpp"

#include <algorithm>
#include <map>
#include <numeric>

#include "isex/codegen/schedule.hpp"

namespace isex::mlgp {

namespace {

using util::Bitset;

struct Ctx {
  const ir::Dfg& dfg;
  const hw::CellLibrary& lib;
  const MlgpOptions& opts;

  bool legal(const Bitset& s) const {
    if (s.none()) return true;  // an emptied partition simply disappears
    return dfg.input_count(s) <= opts.constraints.max_inputs &&
           dfg.output_count(s) <= opts.constraints.max_outputs &&
           dfg.is_convex(s);
  }

  /// gain/area ratio of a (legal) subgraph; the matching and refinement
  /// objective of Section 5.2.3.
  double ratio(const Bitset& s) const {
    if (s.none()) return 0;
    const auto e = hw::estimate(dfg, s, lib);
    return e.area > 0 ? e.gain_per_exec / e.area : e.gain_per_exec * 1e6;
  }
};

using Groups = std::vector<Bitset>;

/// node -> group index map for one level.
std::vector<int> node_to_group(const ir::Dfg& dfg, const Groups& groups) {
  std::vector<int> map(static_cast<std::size_t>(dfg.num_nodes()), -1);
  for (std::size_t g = 0; g < groups.size(); ++g)
    groups[g].for_each([&](std::size_t v) { map[v] = static_cast<int>(g); });
  return map;
}

/// Undirected adjacency between groups induced by DFG edges.
std::vector<std::vector<int>> group_adjacency(const ir::Dfg& dfg,
                                              const Groups& groups) {
  const auto n2g = node_to_group(dfg, groups);
  std::vector<std::vector<int>> adj(groups.size());
  for (int v = 0; v < dfg.num_nodes(); ++v) {
    const int gv = n2g[static_cast<std::size_t>(v)];
    if (gv < 0) continue;
    for (ir::NodeId u : dfg.node(v).operands) {
      const int gu = n2g[static_cast<std::size_t>(u)];
      if (gu < 0 || gu == gv) continue;
      adj[static_cast<std::size_t>(gv)].push_back(gu);
      adj[static_cast<std::size_t>(gu)].push_back(gv);
    }
  }
  for (auto& lst : adj) {
    std::sort(lst.begin(), lst.end());
    lst.erase(std::unique(lst.begin(), lst.end()), lst.end());
  }
  return adj;
}

/// One matching pass; returns the coarser level and fills fine->coarse map.
/// Returns false when nothing merged (coarsening has converged).
bool coarsen(const Ctx& ctx, const Groups& fine, Groups& coarse,
             std::vector<int>& map, util::Rng& rng) {
  const auto adj = group_adjacency(ctx.dfg, fine);
  std::vector<int> order(fine.size());
  std::iota(order.begin(), order.end(), 0);
  std::shuffle(order.begin(), order.end(), rng.engine());

  std::vector<int> matched(fine.size(), -1);
  map.assign(fine.size(), -1);
  coarse.clear();
  bool any = false;
  for (int u : order) {
    if (matched[static_cast<std::size_t>(u)] >= 0) continue;
    int best = -1;
    double best_ratio = -1;
    for (int v : adj[static_cast<std::size_t>(u)]) {
      if (matched[static_cast<std::size_t>(v)] >= 0) continue;
      Bitset merged = fine[static_cast<std::size_t>(u)];
      merged |= fine[static_cast<std::size_t>(v)];
      if (!ctx.legal(merged)) continue;
      if (!ctx.opts.ratio_matching) {
        best = v;  // ablation: first feasible neighbour in shuffled order
        break;
      }
      const double r = ctx.ratio(merged);
      if (r > best_ratio) {
        best_ratio = r;
        best = v;
      }
    }
    const int c = static_cast<int>(coarse.size());
    matched[static_cast<std::size_t>(u)] = c;
    map[static_cast<std::size_t>(u)] = c;
    Bitset merged = fine[static_cast<std::size_t>(u)];
    if (best >= 0) {
      matched[static_cast<std::size_t>(best)] = c;
      map[static_cast<std::size_t>(best)] = c;
      merged |= fine[static_cast<std::size_t>(best)];
      any = true;
    }
    coarse.push_back(std::move(merged));
  }
  return any;
}

/// Boundary refinement at one level (Algorithm 5): move group v to a
/// neighbouring partition when every touched partition stays legal and the
/// summed gain/area ratio improves; repair input violations by pulling up to
/// max_repair_pulls producer groups along.
void refine_level(const Ctx& ctx, const Groups& groups, std::vector<int>& part,
                  std::vector<Bitset>& pnodes, util::Rng& rng) {
  const auto adj = group_adjacency(ctx.dfg, groups);
  std::vector<int> order(groups.size());
  std::iota(order.begin(), order.end(), 0);

  for (int pass = 0; pass < ctx.opts.refine_passes; ++pass) {
    std::shuffle(order.begin(), order.end(), rng.engine());
    bool moved = false;
    for (int v : order) {
      if (ctx.opts.budget != nullptr && ctx.opts.budget->charge()) return;
      const int pv = part[static_cast<std::size_t>(v)];
      // Neighbouring partitions of v.
      std::vector<int> nparts;
      for (int u : adj[static_cast<std::size_t>(v)]) {
        const int pu = part[static_cast<std::size_t>(u)];
        if (pu != pv) nparts.push_back(pu);
      }
      std::sort(nparts.begin(), nparts.end());
      nparts.erase(std::unique(nparts.begin(), nparts.end()), nparts.end());
      if (nparts.empty()) continue;

      double best_delta = 1e-12;
      std::map<int, Bitset> best_state;
      std::vector<std::pair<int, int>> best_moves;  // (group, to-partition)

      for (int p : nparts) {
        // Tentative partition contents for this composite move.
        std::map<int, Bitset> state;
        auto nodes_of = [&](int pid) -> Bitset& {
          auto it = state.find(pid);
          if (it == state.end())
            it = state.emplace(pid, pnodes[static_cast<std::size_t>(pid)]).first;
          return it->second;
        };
        std::vector<std::pair<int, int>> moves{{v, p}};
        nodes_of(pv) -= groups[static_cast<std::size_t>(v)];
        nodes_of(p) |= groups[static_cast<std::size_t>(v)];
        if (!ctx.legal(nodes_of(pv))) continue;

        // Input repair: pull adjacent producer groups into p.
        int pulls = 0;
        while (!ctx.legal(nodes_of(p)) && pulls < ctx.opts.max_repair_pulls) {
          // Candidate pulls: groups adjacent to v (graph-local repair).
          int best_u = -1, best_score = 0;
          for (int u : adj[static_cast<std::size_t>(v)]) {
            if (u == v) continue;
            bool already = false;
            for (const auto& [g, to] : moves)
              if (g == u) already = true;
            if (already) continue;
            const int pu = part[static_cast<std::size_t>(u)];
            if (pu == p) continue;
            // Score: producer nodes of u feeding the growing partition.
            int score = 0;
            const Bitset& target = nodes_of(p);
            groups[static_cast<std::size_t>(u)].for_each([&](std::size_t un) {
              for (ir::NodeId c : ctx.dfg.node(static_cast<int>(un)).consumers)
                if (target.test(static_cast<std::size_t>(c))) {
                  ++score;
                  return;
                }
            });
            if (score > best_score) {
              best_score = score;
              best_u = u;
            }
          }
          if (best_u < 0) break;
          const int pu = part[static_cast<std::size_t>(best_u)];
          nodes_of(pu) -= groups[static_cast<std::size_t>(best_u)];
          if (!ctx.legal(nodes_of(pu))) {
            nodes_of(pu) |= groups[static_cast<std::size_t>(best_u)];
            break;  // cannot carve the producer out of its partition
          }
          nodes_of(p) |= groups[static_cast<std::size_t>(best_u)];
          moves.emplace_back(best_u, p);
          ++pulls;
        }
        if (!ctx.legal(nodes_of(p))) continue;

        // Ratio improvement over all touched partitions (Algorithm 5 l.11).
        double delta = 0;
        for (const auto& [pid, nodes] : state)
          delta += ctx.ratio(nodes) -
                   ctx.ratio(pnodes[static_cast<std::size_t>(pid)]);
        if (delta > best_delta) {
          best_delta = delta;
          best_state = state;
          best_moves = moves;
        }
      }

      if (!best_moves.empty()) {
        for (const auto& [pid, nodes] : best_state)
          pnodes[static_cast<std::size_t>(pid)] = nodes;
        for (const auto& [g, to] : best_moves)
          part[static_cast<std::size_t>(g)] = to;
        moved = true;
      }
    }
    if (!moved) break;
  }
}

}  // namespace

std::vector<ise::Candidate> generate(const ir::Dfg& dfg,
                                     const util::Bitset& region,
                                     const hw::CellLibrary& lib,
                                     const MlgpOptions& opts, util::Rng& rng,
                                     int block, double exec_freq) {
  Ctx ctx{dfg, lib, opts};

  // Level 0: every region node is its own group.
  std::vector<Groups> levels;
  std::vector<std::vector<int>> maps;  // maps[l]: level l -> level l+1
  Groups g0;
  region.for_each([&](std::size_t v) {
    Bitset b = dfg.empty_set();
    b.set(v);
    g0.push_back(std::move(b));
  });
  if (g0.empty()) return {};
  levels.push_back(std::move(g0));

  // Coarsening until convergence (G_{i+1} == G_i). A budget-exhausted stop
  // mid-way is safe: the coarsest level built so far still covers the region
  // with legal groups.
  while (true) {
    if (opts.budget != nullptr && opts.budget->charge()) break;
    Groups coarse;
    std::vector<int> map;
    if (!coarsen(ctx, levels.back(), coarse, map, rng)) break;
    maps.push_back(std::move(map));
    levels.push_back(std::move(coarse));
  }

  // Initial partitioning: each coarsest vertex is one custom instruction.
  const auto& top = levels.back();
  std::vector<int> part(top.size());
  std::iota(part.begin(), part.end(), 0);
  std::vector<Bitset> pnodes = top;

  // Uncoarsening with refinement. Very fine levels of huge regions are
  // skipped: the moves there are single-node jitter at quadratic cost.
  constexpr std::size_t kRefineMaxGroups = 600;
  for (std::size_t l = levels.size(); l-- > 0;) {
    if (l + 1 < levels.size()) {
      // Project the partition of level l+1 onto level l.
      const auto& map = maps[l];
      std::vector<int> fine_part(levels[l].size());
      for (std::size_t g = 0; g < map.size(); ++g)
        fine_part[g] = part[static_cast<std::size_t>(map[g])];
      part = std::move(fine_part);
    }
    if (levels[l].size() <= kRefineMaxGroups)
      refine_level(ctx, levels[l], part, pnodes, rng);
    else
      break;  // pnodes already reflects the coarser refinement
  }

  std::vector<ise::Candidate> out;
  for (const Bitset& s : pnodes) {
    if (s.count() < 2) continue;
    ise::Candidate c = ise::make_candidate(dfg, s, lib, block, exec_freq);
    if (c.est.gain_per_exec > 0) out.push_back(std::move(c));
  }
  // Individually convex partitions may still be mutually unschedulable
  // (interleaved dependencies form a cycle among atomic instructions);
  // keep a jointly schedulable subset, best gains first.
  std::sort(out.begin(), out.end(),
            [](const ise::Candidate& a, const ise::Candidate& b) {
              return a.est.gain_per_exec > b.est.gain_per_exec;
            });
  std::vector<util::Bitset> sets;
  sets.reserve(out.size());
  for (const auto& c : out) sets.push_back(c.nodes);
  const auto kept = codegen::schedulable_subset(dfg, sets);
  std::vector<ise::Candidate> filtered;
  filtered.reserve(kept.size());
  for (std::size_t i : kept) filtered.push_back(std::move(out[i]));
  return filtered;
}

std::vector<ise::Candidate> generate_for_block(const ir::Dfg& dfg,
                                               const hw::CellLibrary& lib,
                                               const MlgpOptions& opts,
                                               util::Rng& rng, int block,
                                               double exec_freq) {
  auto regions = dfg.regions();
  std::sort(regions.begin(), regions.end(),
            [](const util::Bitset& a, const util::Bitset& b) {
              return a.count() > b.count();
            });
  std::vector<ise::Candidate> out;
  for (const auto& r : regions) {
    if (opts.budget != nullptr && opts.budget->exhausted_cached()) break;
    for (auto& c : generate(dfg, r, lib, opts, rng, block, exec_freq))
      out.push_back(std::move(c));
  }
  return out;
}

}  // namespace isex::mlgp
