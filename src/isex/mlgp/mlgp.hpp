// MLGP: custom-instruction generation by multi-level graph partitioning
// (Section 5.2.3).
//
// Given one region of a DFG (a maximal connected subgraph of CI-valid
// nodes), MLGP partitions it into a handful of large legal custom
// instructions in near-linear time:
//   * coarsening: repeated constraint-aware matching — an unmatched vertex
//     merges with the adjacent vertex that keeps the combined subgraph legal
//     (inputs/outputs/convexity) and maximizes the gain/area ratio;
//   * initial partitioning: every coarsest vertex is its own partition;
//   * uncoarsening: the partitioning is projected back level by level, and
//     at each level boundary vertices are greedily moved between partitions
//     when the move keeps every touched partition legal and improves the
//     summed gain/area ratio (Algorithm 5), with a bounded input-repair step
//     that pulls producer vertices along.
// Every partition is a legal custom instruction at every moment — the
// algorithm's output is a set of disjoint candidates covering the region.
#pragma once

#include <vector>

#include "isex/ise/candidate.hpp"
#include "isex/robust/budget.hpp"
#include "isex/util/rng.hpp"

namespace isex::mlgp {

struct MlgpOptions {
  ise::Constraints constraints;
  int refine_passes = 3;
  int max_repair_pulls = 3;  // producer vertices pulled to fix input counts
  /// Ablation switch (DESIGN.md): match by gain/area ratio (the paper's
  /// heuristic) or by random feasible neighbour.
  bool ratio_matching = true;
  /// Cooperative execution budget (non-owning; nullptr = unlimited), checked
  /// per coarsening level and per refinement-move evaluation. MLGP keeps
  /// every partition legal at all times, so stopping at any point still
  /// yields a valid (merely less refined) set of custom instructions.
  robust::Budget* budget = nullptr;
};

/// Generates disjoint legal custom instructions covering `region` of `dfg`.
/// Returned candidates have >= 2 nodes and positive per-execution gain.
std::vector<ise::Candidate> generate(const ir::Dfg& dfg,
                                     const util::Bitset& region,
                                     const hw::CellLibrary& lib,
                                     const MlgpOptions& opts, util::Rng& rng,
                                     int block = 0, double exec_freq = 1);

/// Convenience: runs generate() over every region of the block's DFG,
/// hottest (largest) region first.
std::vector<ise::Candidate> generate_for_block(const ir::Dfg& dfg,
                                               const hw::CellLibrary& lib,
                                               const MlgpOptions& opts,
                                               util::Rng& rng, int block = 0,
                                               double exec_freq = 1);

}  // namespace isex::mlgp
