// isex::supervise — the supervisor<->worker wire protocol.
//
// The supervisor and each worker share one AF_UNIX SOCK_STREAM socketpair.
// Messages are length-prefixed binary frames (uint32 payload length, then
// the payload); the payload starts with a fixed header struct followed by
// the request line (supervisor -> worker) or the rendered response line plus
// metadata (worker -> supervisor). Both sides run on the same host and
// architecture by construction (fork), so the structs go over the wire as
// raw bytes — no serialization layer to get wrong.
//
// The response header carries everything the supervisor needs to keep its
// counters, cache and journal truthful without parsing the response JSON:
// the disposition, the error kind, solver nodes charged, and the substring
// bounds of the stable `result` object (for the supervisor-held result
// cache; 0/0 when the response is not cacheable).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace isex::supervise {

/// Payload layout of a supervisor -> worker frame, followed by `line_bytes`
/// of raw request line.
struct RequestHeader {
  std::uint64_t rid = 0;        // supervisor-assigned flight-recorder id
  std::int32_t queue_depth = 0; // depth behind this request (shed decisions)
  std::uint32_t line_bytes = 0;
};

/// ResponseHeader::flags bits.
enum : std::uint8_t {
  kRespFlagAdmin = 1,      // ping/stats/introspect (excluded from latency)
  kRespFlagDegraded = 2,   // solver status was not Exact
  kRespFlagShed = 4,       // solved from a demoted ladder rung
  kRespFlagCacheable = 8,  // successful select; result bounds are valid
};

/// Payload layout of a worker -> supervisor frame, followed by
/// `response_bytes` of rendered response line.
struct ResponseHeader {
  std::uint64_t rid = 0;          // echoed from the request frame
  std::int64_t nodes_charged = 0;
  std::uint32_t response_bytes = 0;
  std::uint32_t result_off = 0;  // stable `result` object substring of the
  std::uint32_t result_len = 0;  // response; 0/0 = nothing to cache
  std::uint8_t disposition = 0;  // obs::Disposition
  std::uint8_t error_kind = 0;   // 0 = ok, else serve::ErrorCode + 1
  std::uint8_t flags = 0;        // kRespFlag*
  std::uint8_t pad = 0;
};

/// Writes one frame (blocking fd): uint32 length prefix + header + body.
/// Retries EINTR/short writes; returns false on transport error.
bool write_frame(int fd, const RequestHeader& hdr, std::string_view line);
bool write_frame(int fd, const ResponseHeader& hdr, std::string_view response);

/// Assembles the on-wire bytes of a request frame without writing them (the
/// supervisor writes through a nonblocking fd with its own deadline loop, so
/// a worker that stops reading can never wedge the dispatch path).
std::string encode_frame(const RequestHeader& hdr, std::string_view line);

/// Blocking exact-read of one request frame (the worker side). Returns 1 on
/// success, 0 on clean EOF between frames (shutdown), -1 on error/truncation
/// or a frame exceeding `max_bytes`.
int read_request_frame(int fd, RequestHeader* hdr, std::string* line,
                       std::size_t max_bytes);

/// Incremental response-frame reader (the supervisor side, non-blocking
/// fds): append() whatever poll() made readable, then drain complete frames
/// with next(). A frame split across arbitrarily many reads reassembles;
/// a malformed length (> max_bytes) poisons the stream (error() == true),
/// which the supervisor treats exactly like a worker crash.
class FrameReader {
 public:
  explicit FrameReader(std::size_t max_bytes) : max_bytes_(max_bytes) {}

  void append(const char* data, std::size_t len) { buf_.append(data, len); }
  bool error() const { return error_; }

  /// Extracts the next complete frame, if any.
  bool next(ResponseHeader* hdr, std::string* response);

  void reset() {
    buf_.clear();
    error_ = false;
  }

 private:
  std::string buf_;
  std::size_t max_bytes_;
  bool error_ = false;
};

}  // namespace isex::supervise
