#include "isex/supervise/worker.hpp"

#include <csignal>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <new>
#include <vector>

#include <signal.h>
#include <sys/resource.h>
#include <unistd.h>

#include "isex/obs/journal.hpp"
#include "isex/robust/budget.hpp"
#include "isex/supervise/chaos.hpp"
#include "isex/supervise/frame.hpp"

// Address-space rlimits and sanitizer shadow mappings cannot coexist: asan
// reserves terabytes of virtual address space up front, so RLIMIT_AS would
// kill every worker at startup. Detect both GCC and Clang spellings.
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define ISEX_UNDER_SANITIZER 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer) || \
    __has_feature(memory_sanitizer)
#define ISEX_UNDER_SANITIZER 1
#endif
#endif
#ifndef ISEX_UNDER_SANITIZER
#define ISEX_UNDER_SANITIZER 0
#endif

namespace isex::supervise {
namespace {

// Drain flag: SIGTERM asks the worker to finish the in-flight frame and
// exit. The handler also flips the robust:: global-cancel atomic so a
// mid-solve worker truncates at its next budget charge instead of running
// its full budget out while the supervisor waits.
volatile sig_atomic_t g_worker_term = 0;

extern "C" void worker_term_handler(int) {
  g_worker_term = 1;
  robust::request_global_cancel();
}

void set_limit(int resource, rlim_t value) {
  struct rlimit rl;
  rl.rlim_cur = value;
  rl.rlim_max = value;
  ::setrlimit(resource, &rl);  // best effort; EPERM on raising is fine
}

}  // namespace

void apply_worker_rlimits(const serve::ServerOptions& opts) {
  // Chaos mode kills workers by the thousand; core files would swamp the
  // filesystem and serialize every respawn behind the kernel's core writer.
  set_limit(RLIMIT_CORE, 0);
#if !ISEX_UNDER_SANITIZER
  if (opts.worker_mem_limit_bytes > 0)
    set_limit(RLIMIT_AS, static_cast<rlim_t>(opts.worker_mem_limit_bytes));
#endif
  if (opts.worker_cpu_limit_seconds > 0)
    set_limit(RLIMIT_CPU, static_cast<rlim_t>(opts.worker_cpu_limit_seconds));
  if (opts.worker_nofile_limit > 0)
    set_limit(RLIMIT_NOFILE, static_cast<rlim_t>(opts.worker_nofile_limit));
}

void worker_main(int fd, const serve::ServerOptions& opts, int worker_index) {
  (void)worker_index;
  // Post-fork hygiene. The journal ring is inherited COW from the
  // supervisor; clear it so a worker's crash dump contains only this
  // worker's records. The crash handler writes to <base>.<pid>, so
  // concurrent workers never clobber each other's dumps.
  obs::Journal::global().clear();
  robust::clear_global_cancel();
  if (!opts.crash_dump_path.empty()) {
    obs::set_crash_dump_path(opts.crash_dump_path.c_str());
    obs::install_crash_handler();
  }
  apply_worker_rlimits(opts);

  struct sigaction sa {};
  sa.sa_handler = worker_term_handler;
  sigemptyset(&sa.sa_mask);
  ::sigaction(SIGTERM, &sa, nullptr);
  // ^C goes to the whole foreground process group; only the supervisor may
  // decide what an interactive interrupt means.
  ::signal(SIGINT, SIG_IGN);
  ::signal(SIGPIPE, SIG_IGN);

  serve::ServerOptions wopts = opts;
  wopts.workers = 0;         // this process IS the solver; never re-fork
  wopts.stats_path.clear();  // only the supervisor flushes snapshots

  serve::Server server(wopts);

  // Chaos leaks are parked here so they stay reachable: the point is memory
  // growth (eventually fatal under RLIMIT_AS), not tripping leak checkers.
  std::vector<std::unique_ptr<char[]>> chaos_ballast;

  RequestHeader hdr;
  std::string line;
  for (;;) {
    if (g_worker_term) ::_exit(0);
    const int r = read_request_frame(fd, &hdr, &line,
                                     opts.limits.max_request_bytes + 4096);
    if (r == 0) ::_exit(0);                      // supervisor closed: drain
    if (r < 0) ::_exit(g_worker_term ? 0 : 3);   // torn frame: give up loudly

    switch (chaos_decision(line, opts.chaos_probability, opts.chaos_seed)) {
      case ChaosKind::kAbort:
        std::abort();
      case ChaosKind::kSegv:
        ::raise(SIGSEGV);
        std::abort();  // asan may swallow the raise; die regardless
      case ChaosKind::kHang:
        for (;;) ::pause();  // only the watchdog's SIGKILL ends this
      case ChaosKind::kLeak: {
        constexpr std::size_t kLeakBytes = std::size_t{1} << 20;
        char* p = new (std::nothrow) char[kLeakBytes];
        if (p != nullptr) {
          std::memset(p, 0xA5, kLeakBytes);  // force residency
          chaos_ballast.emplace_back(p);
        }
        break;  // then handle the request normally
      }
      case ChaosKind::kNone:
        break;
    }

    const std::string resp =
        server.handle_line(line, hdr.queue_depth, hdr.rid);
    const serve::ResponseMeta& meta = server.last_meta();

    ResponseHeader rh;
    rh.rid = hdr.rid;
    rh.nodes_charged = meta.nodes_charged;
    rh.disposition = static_cast<std::uint8_t>(meta.disposition);
    rh.error_kind = meta.error_kind;
    rh.flags = 0;
    if (meta.is_admin) rh.flags |= kRespFlagAdmin;
    if (meta.degraded) rh.flags |= kRespFlagDegraded;
    if (meta.shed) rh.flags |= kRespFlagShed;
    if (!meta.result_json.empty()) {
      // Locate the stable result object inside the rendered envelope so the
      // supervisor can cache it without parsing JSON.
      const std::size_t pos = resp.find(meta.result_json);
      if (pos != std::string::npos) {
        rh.result_off = static_cast<std::uint32_t>(pos);
        rh.result_len = static_cast<std::uint32_t>(meta.result_json.size());
        rh.flags |= kRespFlagCacheable;
      }
    }
    if (!write_frame(fd, rh, resp)) ::_exit(0);  // supervisor vanished
  }
}

}  // namespace isex::supervise
