#include "isex/supervise/pool.hpp"

#include <algorithm>
#include <cerrno>
#include <csignal>
#include <cstring>

#include <fcntl.h>
#include <poll.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <sys/syscall.h>
#include <sys/wait.h>
#include <unistd.h>

#include "isex/obs/journal.hpp"
#include "isex/obs/trace.hpp"
#include "isex/supervise/worker.hpp"

namespace isex::supervise {
namespace {

constexpr std::int64_t kBackoffBaseNs = 50'000'000;   // 50 ms
constexpr std::int64_t kBackoffCapNs = 2'000'000'000; // 2 s
constexpr int kBackoffMaxLevel = 5;

// Closes every fd except std{in,out,err} and `keep`. A worker must not hold
// any descriptor it did not ask for: an inherited client transport keeps the
// stream alive after the client closed it (EOF never arrives), an inherited
// listener keeps the socket bound after the supervisor dies. close_range(2)
// where the kernel has it; bounded brute force otherwise.
void close_all_fds_except(int keep) {
#ifdef __NR_close_range
  bool ok = true;
  if (keep > 3)
    ok &= ::syscall(__NR_close_range, 3u, static_cast<unsigned>(keep - 1),
                    0u) == 0;
  ok &= ::syscall(__NR_close_range,
                  static_cast<unsigned>(keep >= 3 ? keep + 1 : 3), ~0u,
                  0u) == 0;
  if (ok) return;
#endif
  struct rlimit rl{};
  long hi = 1024;
  if (::getrlimit(RLIMIT_NOFILE, &rl) == 0 && rl.rlim_cur != RLIM_INFINITY)
    hi = std::min<long>(static_cast<long>(rl.rlim_cur), 65536);
  for (long fd = 3; fd < hi; ++fd)
    if (fd != keep) ::close(static_cast<int>(fd));
}

}  // namespace

WorkerPool::WorkerPool(const serve::ServerOptions& opts,
                       std::vector<int> close_in_child)
    : opts_(opts),
      close_in_child_(std::move(close_in_child)),
      rng_state_(0x9e3779b97f4a7c15ull ^ (opts.chaos_seed | 1)) {
  const std::size_t max_frame = opts_.limits.max_request_bytes * 4 + 65536;
  slots_.reserve(static_cast<std::size_t>(opts_.workers));
  for (int i = 0; i < opts_.workers; ++i) slots_.emplace_back(max_frame);
}

WorkerPool::~WorkerPool() {
  bool any = false;
  for (const Slot& s : slots_) any |= s.pid > 0;
  if (any) shutdown(0.5);
}

double WorkerPool::uniform() {
  rng_state_ ^= rng_state_ << 13;
  rng_state_ ^= rng_state_ >> 7;
  rng_state_ ^= rng_state_ << 17;
  return static_cast<double>(rng_state_ >> 11) /
         static_cast<double>(std::uint64_t{1} << 53);
}

std::int64_t WorkerPool::backoff_delay_ns(int level) {
  const std::int64_t base =
      kBackoffBaseNs << std::min(level, kBackoffMaxLevel);
  const std::int64_t capped = std::min(base, kBackoffCapNs);
  // +/- 25% jitter de-synchronizes mass respawns after a common-cause kill.
  return static_cast<std::int64_t>(static_cast<double>(capped) *
                                   (0.75 + 0.5 * uniform()));
}

bool WorkerPool::spawn(int w, std::int64_t now_ns) {
  Slot& s = slots_[static_cast<std::size_t>(w)];
  int sv[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, sv) != 0) return false;
  const pid_t pid = ::fork();
  if (pid < 0) {
    ::close(sv[0]);
    ::close(sv[1]);
    return false;
  }
  if (pid == 0) {
    // Child: keep only our end of our socketpair. The explicit list covers
    // transports that may sit on fds 0-2 (`isex serve` over stdin/stdout);
    // the sweep covers everything else — sibling worker fds, the client
    // connection, the unix-socket listener. A worker holding any of those
    // would keep streams alive after their real owner closed them.
    ::close(sv[0]);
    for (int fd : close_in_child_)
      if (fd >= 0) ::close(fd);
    close_all_fds_except(sv[1]);
    worker_main(sv[1], opts_, w);  // never returns
  }
  ::close(sv[1]);
  const int fl = ::fcntl(sv[0], F_GETFL);
  if (fl >= 0) ::fcntl(sv[0], F_SETFL, fl | O_NONBLOCK);
  s.pid = pid;
  s.fd = sv[0];
  s.state = Slot::State::kLive;
  s.busy = false;
  s.rid = 0;
  s.deadline_ns = 0;
  s.watchdog_kill = false;
  s.eof = false;
  s.reader.reset();
  s.next_spawn_ns = now_ns;
  ISEX_JOURNAL(kWorkerSpawn, kNone, 0, w, pid);
  return true;
}

bool WorkerPool::start() {
  const std::int64_t now = obs::clock_ns();
  int live = 0;
  for (int w = 0; w < size(); ++w)
    if (spawn(w, now)) ++live;
  return live > 0;
}

int WorkerPool::live_workers() const {
  int n = 0;
  for (const Slot& s : slots_)
    if (s.state == Slot::State::kLive) ++n;
  return n;
}

int WorkerPool::idle_worker() const {
  for (int w = 0; w < size(); ++w) {
    const Slot& s = slots_[static_cast<std::size_t>(w)];
    if (s.state == Slot::State::kLive && !s.busy && !s.eof) return w;
  }
  return -1;
}

void WorkerPool::kill_slot(int w, bool watchdog) {
  Slot& s = slots_[static_cast<std::size_t>(w)];
  if (s.state != Slot::State::kLive || s.pid <= 0) return;
  ::kill(s.pid, SIGKILL);
  s.state = Slot::State::kKilled;
  s.watchdog_kill = watchdog;
  if (watchdog) {
    ++watchdog_kills_;
    ISEX_JOURNAL(kWorkerKill, kNone, 0, w, s.pid);
  }
}

bool WorkerPool::dispatch(int w, std::uint64_t rid, int queue_depth,
                          std::string_view line,
                          double watchdog_span_seconds) {
  Slot& s = slots_[static_cast<std::size_t>(w)];
  if (s.state != Slot::State::kLive || s.busy) return false;

  RequestHeader hdr;
  hdr.rid = rid;
  hdr.queue_depth = queue_depth;
  const std::string frame = encode_frame(hdr, line);

  // The fd is nonblocking; a worker that stops reading (stopped, wedged
  // before the chaos point, kernel buffer full) cannot block the
  // supervisor. Budget the write generously — a live worker drains a frame
  // in microseconds — and treat a timeout as a dead worker.
  const double span =
      watchdog_span_seconds > 0 ? watchdog_span_seconds : 5.0;
  const std::int64_t write_deadline =
      obs::clock_ns() +
      static_cast<std::int64_t>((span + opts_.watchdog_grace_seconds) * 1e9);
  std::size_t off = 0;
  while (off < frame.size()) {
    const ssize_t n =
        ::send(s.fd, frame.data() + off, frame.size() - off, MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      const std::int64_t now = obs::clock_ns();
      if (now >= write_deadline) break;
      const int wait_ms = static_cast<int>(
          std::min<std::int64_t>((write_deadline - now) / 1'000'000, 100) + 1);
      struct pollfd pfd {s.fd, POLLOUT, 0};
      ::poll(&pfd, 1, wait_ms);
      continue;
    }
    break;  // EPIPE etc.: the worker is gone
  }
  if (off < frame.size()) {
    kill_slot(w, /*watchdog=*/false);
    return false;
  }
  s.busy = true;
  s.rid = rid;
  s.deadline_ns =
      obs::clock_ns() +
      static_cast<std::int64_t>((span + opts_.watchdog_grace_seconds) * 1e9);
  ISEX_JOURNAL(kDispatch, kTransport, 0, w, static_cast<std::int64_t>(rid));
  return true;
}

std::vector<WorkerPool::PollRef> WorkerPool::poll_fds() const {
  std::vector<PollRef> out;
  out.reserve(slots_.size());
  for (int w = 0; w < size(); ++w) {
    const Slot& s = slots_[static_cast<std::size_t>(w)];
    if (s.fd >= 0 && s.state != Slot::State::kDead)
      out.push_back(PollRef{w, s.fd});
  }
  return out;
}

void WorkerPool::read_worker(int w, std::vector<PoolFrame>* out) {
  Slot& s = slots_[static_cast<std::size_t>(w)];
  if (s.fd < 0) return;
  char buf[1 << 16];
  for (;;) {
    const ssize_t n = ::read(s.fd, buf, sizeof buf);
    if (n > 0) {
      s.reader.append(buf, static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    s.eof = true;  // EOF or hard error: maintain() will reap the child
    break;
  }
  PoolFrame f;
  f.worker = w;
  while (s.reader.next(&f.hdr, &f.body)) {
    if (s.busy && f.hdr.rid == s.rid) {
      s.busy = false;
      s.rid = 0;
      s.deadline_ns = 0;
    }
    ++s.handled;
    s.backoff_level = 0;  // a served frame proves the worker is healthy
    out->push_back(std::move(f));
    f = PoolFrame{};
    f.worker = w;
  }
  if (s.reader.error()) kill_slot(w, /*watchdog=*/false);
}

std::vector<PoolEvent> WorkerPool::maintain(std::int64_t now_ns) {
  std::vector<PoolEvent> events;
  for (int w = 0; w < size(); ++w) {
    Slot& s = slots_[static_cast<std::size_t>(w)];

    // Hung-solve watchdog: a busy worker past its deadline gets SIGKILL.
    if (s.state == Slot::State::kLive && s.busy && s.deadline_ns != 0 &&
        now_ns > s.deadline_ns) {
      kill_slot(w, /*watchdog=*/true);
    }

    // Reap. WNOHANG on a healthy child returns 0 and costs nothing.
    if (s.pid > 0 && s.state != Slot::State::kDead) {
      int st = 0;
      const pid_t r = ::waitpid(s.pid, &st, WNOHANG);
      if (r == s.pid) {
        PoolEvent ev;
        ev.worker = w;
        ev.pid = s.pid;
        ev.signal = WIFSIGNALED(st) ? WTERMSIG(st) : 0;
        ev.exit_status = WIFEXITED(st) ? WEXITSTATUS(st) : 0;
        ev.watchdog = s.watchdog_kill;
        ev.was_busy = s.busy;
        ev.rid = s.rid;
        ISEX_JOURNAL(kWorkerExit, kNone, 0,
                     ev.signal != 0 ? ev.signal : -ev.exit_status, s.pid);
        const bool clean_drain =
            draining_ && ev.signal == 0 && ev.exit_status == 0;
        if (!clean_drain && !ev.watchdog) {
          ++crashes_;
          ++s.slot_crashes;
        }
        if (s.fd >= 0) ::close(s.fd);
        s.fd = -1;
        s.pid = -1;
        s.state = Slot::State::kDead;
        s.busy = false;
        s.rid = 0;
        s.deadline_ns = 0;
        s.watchdog_kill = false;
        s.eof = false;
        s.reader.reset();
        s.next_spawn_ns = now_ns + backoff_delay_ns(s.backoff_level);
        if (s.backoff_level < kBackoffMaxLevel + 2) ++s.backoff_level;
        events.push_back(ev);
      }
    }

    // Respawn, unless draining or the breaker is open.
    if (s.state == Slot::State::kDead && !draining_ &&
        now_ns >= s.next_spawn_ns && !breaker_open(now_ns)) {
      if (spawn(w, now_ns)) {
        ++respawns_;
        respawn_times_ns_.push_back(now_ns);
        const std::int64_t window = static_cast<std::int64_t>(
            opts_.breaker_window_seconds * 1e9);
        while (!respawn_times_ns_.empty() &&
               now_ns - respawn_times_ns_.front() > window)
          respawn_times_ns_.pop_front();
        if (static_cast<int>(respawn_times_ns_.size()) >
            opts_.breaker_max_respawns) {
          breaker_until_ns_ =
              now_ns + static_cast<std::int64_t>(
                           opts_.breaker_cooldown_seconds * 1e9);
          ++breaker_opens_;
        }
      }
    }
  }
  return events;
}

std::int64_t WorkerPool::next_deadline_ns() const {
  std::int64_t best = 0;
  for (const Slot& s : slots_) {
    if (s.state == Slot::State::kLive && s.busy && s.deadline_ns != 0 &&
        (best == 0 || s.deadline_ns < best))
      best = s.deadline_ns;
  }
  return best;
}

int WorkerPool::note_kill(std::uint64_t line_hash) {
  const int n = ++kill_counts_[line_hash];
  if (n == opts_.poison_kill_threshold)
    ISEX_JOURNAL(kQuarantine, kNone, 0, n, 0);
  return n;
}

bool WorkerPool::is_quarantined(std::uint64_t line_hash) const {
  const auto it = kill_counts_.find(line_hash);
  return it != kill_counts_.end() && it->second >= opts_.poison_kill_threshold;
}

std::size_t WorkerPool::quarantine_size() const {
  std::size_t n = 0;
  for (const auto& [hash, kills] : kill_counts_)
    if (kills >= opts_.poison_kill_threshold) ++n;
  return n;
}

bool WorkerPool::breaker_open(std::int64_t now_ns) const {
  return now_ns < breaker_until_ns_;
}

long WorkerPool::breaker_retry_after_ms(std::int64_t now_ns) const {
  if (!breaker_open(now_ns)) return 1;
  return std::max<long>(
      1, static_cast<long>((breaker_until_ns_ - now_ns) / 1'000'000));
}

void WorkerPool::begin_drain() {
  draining_ = true;
  for (Slot& s : slots_)
    if (s.state == Slot::State::kLive && s.pid > 0) ::kill(s.pid, SIGTERM);
}

int WorkerPool::shutdown(double timeout_seconds) {
  begin_drain();
  // Closing our socket ends makes idle workers see EOF and exit even if a
  // SIGTERM raced with their read loop.
  for (Slot& s : slots_) {
    if (s.fd >= 0) ::close(s.fd);
    s.fd = -1;
  }
  const std::int64_t deadline =
      obs::clock_ns() + static_cast<std::int64_t>(timeout_seconds * 1e9);
  for (;;) {
    bool pending = false;
    for (Slot& s : slots_) {
      if (s.pid <= 0) continue;
      int st = 0;
      if (::waitpid(s.pid, &st, WNOHANG) == s.pid) {
        s.pid = -1;
        s.state = Slot::State::kDead;
      } else {
        pending = true;
      }
    }
    if (!pending || obs::clock_ns() >= deadline) break;
    ::usleep(10'000);
  }
  int killed = 0;
  for (Slot& s : slots_) {
    if (s.pid <= 0) continue;
    ::kill(s.pid, SIGKILL);
    ++killed;
    int st = 0;
    ::waitpid(s.pid, &st, 0);
    s.pid = -1;
    s.state = Slot::State::kDead;
  }
  return killed;
}

std::vector<pid_t> WorkerPool::pids() const {
  std::vector<pid_t> out;
  for (const Slot& s : slots_)
    if (s.pid > 0 && s.state == Slot::State::kLive) out.push_back(s.pid);
  return out;
}

std::string WorkerPool::render_json(std::int64_t now_ns) const {
  std::string r = "{\"configured\":" + std::to_string(size());
  r += ",\"live\":" + std::to_string(live_workers());
  r += ",\"crashes\":" + std::to_string(crashes_);
  r += ",\"respawns\":" + std::to_string(respawns_);
  r += ",\"watchdog_kills\":" + std::to_string(watchdog_kills_);
  r += ",\"breaker\":{\"open\":";
  r += breaker_open(now_ns) ? "true" : "false";
  r += ",\"opens\":" + std::to_string(breaker_opens_);
  r += ",\"window_respawns\":" + std::to_string(respawn_times_ns_.size());
  r += "}";
  r += ",\"quarantine\":{\"entries\":" + std::to_string(quarantine_size());
  r += ",\"tracked_hashes\":" + std::to_string(kill_counts_.size()) + "}";
  r += ",\"per_worker\":[";
  for (int w = 0; w < size(); ++w) {
    const Slot& s = slots_[static_cast<std::size_t>(w)];
    if (w) r += ",";
    r += "{\"index\":" + std::to_string(w);
    r += ",\"pid\":" + std::to_string(s.pid > 0 ? s.pid : -1);
    r += ",\"state\":\"";
    switch (s.state) {
      case Slot::State::kDead: r += "dead"; break;
      case Slot::State::kLive: r += s.busy ? "busy" : "idle"; break;
      case Slot::State::kKilled: r += "killed"; break;
    }
    r += "\",\"handled\":" + std::to_string(s.handled);
    r += ",\"crashes\":" + std::to_string(s.slot_crashes) + "}";
  }
  r += "]}";
  return r;
}

}  // namespace isex::supervise
