#include "isex/supervise/frame.hpp"

#include <cstring>

#include "isex/util/io.hpp"

namespace isex::supervise {
namespace {

template <typename Header>
std::string encode_frame_impl(const Header& hdr, std::string_view body) {
  const std::uint32_t len =
      static_cast<std::uint32_t>(sizeof(Header) + body.size());
  // One contiguous buffer, one write loop: a worker dying mid-frame leaves a
  // cleanly detectable truncation, never an interleaving.
  std::string frame;
  frame.reserve(sizeof(len) + len);
  frame.append(reinterpret_cast<const char*>(&len), sizeof(len));
  frame.append(reinterpret_cast<const char*>(&hdr), sizeof(hdr));
  frame.append(body.data(), body.size());
  return frame;
}

template <typename Header>
bool write_frame_impl(int fd, const Header& hdr, std::string_view body) {
  const std::string frame = encode_frame_impl(hdr, body);
  return util::write_all_fd(fd, frame.data(), frame.size());
}

}  // namespace

std::string encode_frame(const RequestHeader& hdr, std::string_view line) {
  RequestHeader h = hdr;
  h.line_bytes = static_cast<std::uint32_t>(line.size());
  return encode_frame_impl(h, line);
}

bool write_frame(int fd, const RequestHeader& hdr, std::string_view line) {
  RequestHeader h = hdr;
  h.line_bytes = static_cast<std::uint32_t>(line.size());
  return write_frame_impl(fd, h, line);
}

bool write_frame(int fd, const ResponseHeader& hdr,
                 std::string_view response) {
  ResponseHeader h = hdr;
  h.response_bytes = static_cast<std::uint32_t>(response.size());
  return write_frame_impl(fd, h, response);
}

int read_request_frame(int fd, RequestHeader* hdr, std::string* line,
                       std::size_t max_bytes) {
  std::uint32_t len = 0;
  const int r = util::read_full(fd, &len, sizeof(len));
  if (r <= 0) return r;  // 0 = clean EOF between frames
  if (len < sizeof(RequestHeader) || len > max_bytes + sizeof(RequestHeader))
    return -1;
  if (util::read_full(fd, hdr, sizeof(*hdr)) != 1) return -1;
  const std::size_t body = len - sizeof(RequestHeader);
  if (hdr->line_bytes != body) return -1;
  line->resize(body);
  if (body > 0 && util::read_full(fd, line->data(), body) != 1) return -1;
  return 1;
}

bool FrameReader::next(ResponseHeader* hdr, std::string* response) {
  if (error_) return false;
  std::uint32_t len = 0;
  if (buf_.size() < sizeof(len)) return false;
  std::memcpy(&len, buf_.data(), sizeof(len));
  if (len < sizeof(ResponseHeader) ||
      len > max_bytes_ + sizeof(ResponseHeader)) {
    error_ = true;  // garbage length: the stream is unrecoverable
    return false;
  }
  if (buf_.size() < sizeof(len) + len) return false;
  std::memcpy(hdr, buf_.data() + sizeof(len), sizeof(*hdr));
  const std::size_t body = len - sizeof(ResponseHeader);
  if (hdr->response_bytes != body) {
    error_ = true;
    return false;
  }
  response->assign(buf_, sizeof(len) + sizeof(ResponseHeader), body);
  buf_.erase(0, sizeof(len) + len);
  return true;
}

}  // namespace isex::supervise
