#include "isex/supervise/chaos.hpp"

#include "isex/serve/cache.hpp"

namespace isex::supervise {

const char* to_string(ChaosKind k) {
  switch (k) {
    case ChaosKind::kNone: return "none";
    case ChaosKind::kAbort: return "abort";
    case ChaosKind::kSegv: return "segv";
    case ChaosKind::kHang: return "hang";
    case ChaosKind::kLeak: return "leak";
  }
  return "?";
}

ChaosKind chaos_decision(std::string_view line, double probability,
                         std::uint64_t seed) {
  if (probability <= 0) return ChaosKind::kNone;
  if (line.find("\"chaos\":\"abort\"") != std::string_view::npos)
    return ChaosKind::kAbort;
  if (line.find("\"chaos\":\"segv\"") != std::string_view::npos)
    return ChaosKind::kSegv;
  if (line.find("\"chaos\":\"hang\"") != std::string_view::npos)
    return ChaosKind::kHang;
  if (line.find("\"chaos\":\"leak\"") != std::string_view::npos)
    return ChaosKind::kLeak;

  const std::uint64_t h =
      serve::fnv1a(line.data(), line.size(), 0xcbf29ce484222325ull ^ seed);
  // Top bits drive the fire/no-fire draw, low bits pick the kind, so the
  // two decisions are effectively independent.
  const double u =
      static_cast<double>(h >> 11) / static_cast<double>(1ull << 53);
  if (u >= probability) return ChaosKind::kNone;
  const std::uint64_t kind = h % 100;
  if (kind < 40) return ChaosKind::kAbort;
  if (kind < 70) return ChaosKind::kSegv;
  if (kind < 90) return ChaosKind::kLeak;
  return ChaosKind::kHang;
}

}  // namespace isex::supervise
