// isex::supervise — the worker side of the crash-isolated pool.
//
// A worker is a forked child of the supervisor (no exec: it shares the
// warmed benchmark curves and cell library copy-on-write) that runs the
// complete hostile-input pipeline — bounded decode, budgeted solve with
// fallback, witness certification — so the supervisor process never touches
// a request payload beyond admission and a bounded cmd/id classification.
// Anything a request does to the worker (crash, hang, runaway allocation)
// is contained by the process boundary plus per-worker rlimits; the
// supervisor observes it as a dead or overdue child and answers with a
// structured error instead of dying.
//
// Lifecycle contract: the worker reads request frames from its socketpair
// fd and writes exactly one response frame per request. Clean EOF on the fd
// (supervisor closed its end) or SIGTERM between frames means drain:
// _exit(0). The worker never returns and never runs atexit handlers — after
// a frame-loop fault there is nothing worth flushing, and _exit keeps
// sanitizer leak checkers from auditing intentionally chaos-leaked memory.
#pragma once

#include "isex/serve/server.hpp"

namespace isex::supervise {

/// Applies the per-worker rlimits from the options (0/negative disables a
/// limit). RLIMIT_AS is skipped under asan/tsan/msan — shadow memory makes
/// address-space caps meaningless there. RLIMIT_CORE is forced to 0: chaos
/// mode kills workers by the thousand and core files would dominate the
/// run's I/O. Exposed separately so tests can assert the limits in a child.
void apply_worker_rlimits(const serve::ServerOptions& opts);

/// The child's main: post-fork hygiene (journal reset, per-pid crash dump
/// handler, rlimits, own signal handlers), then the frame loop. `fd` is the
/// worker end of the socketpair; `worker_index` only labels diagnostics.
[[noreturn]] void worker_main(int fd, const serve::ServerOptions& opts,
                              int worker_index);

}  // namespace isex::supervise
