// isex::supervise — the supervisor side of the crash-isolated worker pool.
//
// WorkerPool owns the process-lifecycle half of the failure matrix; the
// request semantics (what a death *means* for the request that caused it)
// stay in serve::Server::run_pooled, which consumes the pool's events:
//
//   failure              detection                    pool response
//   -------------------  --------------------------  ----------------------
//   worker crash         waitpid (signal/exit)        reap, PoolEvent, then
//                                                     respawn with jittered
//                                                     exponential backoff
//   hung solve           per-request watchdog         SIGKILL, PoolEvent
//                        deadline (budget + grace)    {watchdog=true}
//   restart storm        > breaker_max_respawns in    breaker opens: no
//                        breaker_window_seconds       respawns for cooldown
//   poison request       kill counts per content      note_kill/is_quaran-
//                        hash (fed by the server)     tined bookkeeping
//   torn frame stream    FrameReader::error()         SIGKILL + respawn
//
// All fds are nonblocking on the supervisor side and every write goes
// through a deadline loop, so no worker state — wedged, stopped, dead —
// can ever block the supervisor.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include <sys/types.h>

#include "isex/serve/server.hpp"
#include "isex/supervise/frame.hpp"

namespace isex::supervise {

/// One worker death (crash, watchdog kill, clean exit) the supervisor must
/// translate into request semantics.
struct PoolEvent {
  int worker = -1;
  pid_t pid = -1;
  int signal = 0;        // terminating signal; 0 = plain exit
  int exit_status = 0;   // meaningful when signal == 0
  bool watchdog = false; // the hung-solve watchdog SIGKILLed it
  bool was_busy = false; // a request was in flight on this worker
  std::uint64_t rid = 0; // that request's rid when was_busy
};

/// One complete response frame read off a worker socket.
struct PoolFrame {
  int worker = -1;
  ResponseHeader hdr;
  std::string body;
};

class WorkerPool {
 public:
  /// `close_in_child` lists supervisor-only fds (the client transport) every
  /// forked worker closes, so a dead supervisor's pipes do not stay open.
  explicit WorkerPool(const serve::ServerOptions& opts,
                      std::vector<int> close_in_child = {});
  ~WorkerPool();
  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Forks the initial complement. Returns false if not a single worker
  /// could be spawned (the caller should fail the stream, not limp along).
  bool start();

  int size() const { return static_cast<int>(slots_.size()); }
  int live_workers() const;
  int idle_worker() const;  // lowest-index live idle worker, or -1

  /// Sends one request frame to (idle, live) worker `w` and arms its
  /// watchdog: deadline = now + (watchdog_span_seconds + grace). The write
  /// runs against the nonblocking fd with its own deadline; a worker that
  /// will not accept the frame is SIGKILLed and false is returned (the
  /// caller re-dispatches elsewhere).
  bool dispatch(int w, std::uint64_t rid, int queue_depth,
                std::string_view line, double watchdog_span_seconds);

  /// Poll integration: every open worker fd with its owning index.
  struct PollRef {
    int worker;
    int fd;
  };
  std::vector<PollRef> poll_fds() const;

  /// Drains whatever is readable on worker `w` into its frame reader and
  /// appends complete frames to *out. EOF and torn streams are noted for
  /// maintain() to turn into death events; they never throw or block.
  void read_worker(int w, std::vector<PoolFrame>* out);

  /// One maintenance pass: watchdog-kill overdue workers, reap dead
  /// children (waitpid WNOHANG), respawn under backoff + breaker. Returns
  /// the death events observed this pass.
  std::vector<PoolEvent> maintain(std::int64_t now_ns);

  /// Earliest armed watchdog deadline (ns), or 0 when nothing is in flight
  /// — bounds the supervisor's poll timeout.
  std::int64_t next_deadline_ns() const;

  // --- poison-request quarantine (content-hash keyed) ---------------------
  /// Records that request content `line_hash` killed a worker; returns the
  /// new kill count. The server quarantines at poison_kill_threshold.
  int note_kill(std::uint64_t line_hash);
  bool is_quarantined(std::uint64_t line_hash) const;
  std::size_t quarantine_size() const;

  // --- restart-storm circuit breaker --------------------------------------
  bool breaker_open(std::int64_t now_ns) const;
  long breaker_retry_after_ms(std::int64_t now_ns) const;

  // --- drain / shutdown ---------------------------------------------------
  /// SIGTERMs every live worker (they cancel the in-flight solve, answer,
  /// and exit) and stops all future respawns.
  void begin_drain();
  /// Closes all fds, reaps with `timeout_seconds` patience, SIGKILLs the
  /// stragglers and reaps those too. Returns the number SIGKILLed.
  int shutdown(double timeout_seconds);

  // --- introspection ------------------------------------------------------
  std::vector<pid_t> pids() const;
  /// Per-worker state plus breaker/quarantine, as one JSON object (the
  /// `introspect` response embeds it verbatim).
  std::string render_json(std::int64_t now_ns) const;

  std::uint64_t crashes() const { return crashes_; }
  std::uint64_t respawns() const { return respawns_; }
  std::uint64_t watchdog_kills() const { return watchdog_kills_; }
  std::uint64_t breaker_opens() const { return breaker_opens_; }

 private:
  struct Slot {
    pid_t pid = -1;
    int fd = -1;
    enum class State {
      kDead,    // no process; may be awaiting its respawn time
      kLive,    // running (possibly busy)
      kKilled,  // SIGKILL sent, awaiting waitpid
    } state = State::kDead;
    bool busy = false;
    std::uint64_t rid = 0;
    std::int64_t deadline_ns = 0;
    bool watchdog_kill = false;  // the pending death was a watchdog kill
    bool eof = false;            // socket EOF seen before the reap
    FrameReader reader;
    std::int64_t next_spawn_ns = 0;
    int backoff_level = 0;  // consecutive deaths; reset on a served frame
    std::uint64_t handled = 0;
    std::uint64_t slot_crashes = 0;

    explicit Slot(std::size_t max_frame) : reader(max_frame) {}
  };

  bool spawn(int w, std::int64_t now_ns);
  void kill_slot(int w, bool watchdog);
  std::int64_t backoff_delay_ns(int level);
  double uniform();  // deterministic jitter source

  serve::ServerOptions opts_;
  std::vector<int> close_in_child_;
  std::vector<Slot> slots_;
  bool draining_ = false;

  std::deque<std::int64_t> respawn_times_ns_;  // breaker sliding window
  std::int64_t breaker_until_ns_ = 0;

  std::unordered_map<std::uint64_t, int> kill_counts_;

  std::uint64_t crashes_ = 0;
  std::uint64_t respawns_ = 0;
  std::uint64_t watchdog_kills_ = 0;
  std::uint64_t breaker_opens_ = 0;

  std::uint64_t rng_state_;
};

}  // namespace isex::supervise
