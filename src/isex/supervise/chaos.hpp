// isex::supervise — deterministic chaos injection for worker processes.
//
// `isex serve --chaos p` makes each worker a hostile environment: before
// handling a request it may abort, segfault, hang until the watchdog kills
// it, or leak memory. The decision is a *pure function of the request bytes*
// (FNV-1a over the line, mixed with the chaos seed), never of wall-clock or
// per-process RNG state. That determinism is what makes chaos testable:
//  * the soak harness recomputes the same decision client-side, so it knows
//    exactly which requests were sabotaged and can demand byte-identical
//    results for all the others;
//  * a retried poison request misbehaves identically on the next worker, so
//    the quarantine path (K kills -> content-hash quarantine) is exercised
//    for real instead of depending on rare coincidences.
//
// Tests can also force a specific failure with an explicit marker embedded
// anywhere in the line ("chaos":"abort" / "segv" / "hang" / "leak"); markers
// are honored whenever chaos mode is enabled (probability > 0), regardless
// of the dice.
#pragma once

#include <cstdint>
#include <string_view>

namespace isex::supervise {

enum class ChaosKind : std::uint8_t {
  kNone = 0,
  kAbort = 1,  // SIGABRT via std::abort()
  kSegv = 2,   // SIGSEGV via raise()
  kHang = 3,   // sleep forever; only the watchdog's SIGKILL ends it
  kLeak = 4,   // leak a chunk of heap, then handle the request normally
};
const char* to_string(ChaosKind k);

/// The chaos verdict for one request line. probability <= 0 disables chaos
/// entirely (always kNone). Explicit "chaos":"..." markers win over the
/// dice; otherwise the line hash decides with the weights 40% abort,
/// 30% segv, 20% leak, 10% hang (hangs are rare because each one costs a
/// full watchdog deadline).
ChaosKind chaos_decision(std::string_view line, double probability,
                         std::uint64_t seed);

}  // namespace isex::supervise
