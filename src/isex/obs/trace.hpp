// isex::obs — trace spans and the shared trace buffer.
//
// Two timelines share one buffer, distinguished by pid:
//  - pid 1 ("isex wall clock"): RAII Span wall-time intervals from the
//    analysis phases (enumeration, curve construction, selection). Timestamps
//    are nanoseconds from the process trace epoch.
//  - pid 2 ("rt virtual time"): the scheduler simulator's per-job execution
//    slices and release/miss/abort instants, with one trace thread per task.
//    Timestamps are processor cycles, exported as 1 cycle = 1 us so a
//    schedule renders directly as a Gantt chart.
//
// Export targets: Chrome trace / Perfetto JSON (open at ui.perfetto.dev or
// chrome://tracing) and a flat CSV for scripted analysis. Recording is off by
// default; when disabled the only cost at an instrumentation site is one
// relaxed atomic load. Defining ISEX_NO_OBS compiles the ISEX_SPAN macro (and
// the inline recording helpers' call sites) out entirely.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "isex/obs/metrics.hpp"

namespace isex::obs {

/// Monotonic nanoseconds since the process trace epoch (first call).
std::int64_t clock_ns();

/// Always true; exists (with a compile-time assert on the implementation
/// clock) so tests can pin the regression: every timing source in the tree —
/// Budget deadlines, Stopwatch, trace timestamps, the serve EWMA — must read
/// clock_ns(), and clock_ns() must never be wall time. A wall-clock step
/// (NTP, DST, a VM migration) must shift timestamps, never expire budgets.
bool clock_is_steady();

inline constexpr int kWallPid = 1;  // wall-clock spans (ts in ns)
inline constexpr int kSimPid = 2;   // simulator virtual time (ts in cycles)

struct TraceEvent {
  enum class Phase : std::uint8_t { kComplete, kInstant, kCounter };
  Phase phase = Phase::kComplete;
  std::string name;
  std::string cat;
  int pid = kWallPid;
  int tid = 0;
  std::int64_t ts = 0;   // ns (wall pid) or cycles (sim pid)
  std::int64_t dur = 0;  // same unit as ts; kComplete only
  std::vector<std::pair<std::string, std::string>> args;
};

/// Thread-safe bounded event buffer. Overflow drops new events and counts
/// them, so a long simulation cannot exhaust memory.
class TraceBuffer {
 public:
  static TraceBuffer& global();

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }

  /// Maximum retained events (default 1 << 20).
  void set_capacity(std::size_t cap);

  void record(TraceEvent e);
  /// Perfetto metadata: names the (pid, tid) track (e.g. a task name).
  void set_thread_name(int pid, int tid, std::string name);

  void clear();  // events, drop count and thread names
  std::size_t size() const;
  std::uint64_t dropped() const;
  std::vector<TraceEvent> events() const;

  /// Chrome trace format: {"traceEvents":[...]}; wall timestamps in us with
  /// ns precision, sim timestamps as 1 cycle = 1 us.
  void write_chrome_json(std::ostream& out) const;
  /// Flat CSV: phase,name,cat,pid,tid,ts,dur,args (RFC-4180 escaped).
  void write_csv(std::ostream& out) const;

 private:
  mutable std::mutex mu_;
  std::atomic<bool> enabled_{false};
  std::size_t capacity_ = 1 << 20;
  std::uint64_t dropped_ = 0;
  std::vector<TraceEvent> events_;
  std::vector<std::pair<std::pair<int, int>, std::string>> thread_names_;
};

/// Small stable id for the calling thread (trace tid of wall-clock spans).
int current_tid();

/// RAII wall-clock span on the shared buffer. When recording is disabled at
/// construction the span is disarmed and costs nothing further.
class Span {
 public:
  explicit Span(std::string_view name, std::string_view cat = "isex");
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Attaches a key/value pair shown in the trace viewer's args pane.
  void arg(std::string_view key, std::string_view value);

 private:
  bool armed_;
  std::int64_t start_ns_ = 0;
  std::string name_, cat_;
  std::vector<std::pair<std::string, std::string>> args_;
};

/// Records an instant event if the buffer is enabled (cheap no-op otherwise).
void trace_instant(std::string_view name, std::string_view cat, int pid,
                   int tid, std::int64_t ts,
                   std::vector<std::pair<std::string, std::string>> args = {});

/// Records a complete (begin + duration) event if the buffer is enabled.
void trace_complete(std::string_view name, std::string_view cat, int pid,
                    int tid, std::int64_t ts, std::int64_t dur,
                    std::vector<std::pair<std::string, std::string>> args = {});

}  // namespace isex::obs

#ifndef ISEX_NO_OBS
#define ISEX_OBS_CONCAT_IMPL(a, b) a##b
#define ISEX_OBS_CONCAT(a, b) ISEX_OBS_CONCAT_IMPL(a, b)
/// Wall-clock span covering the rest of the enclosing scope.
#define ISEX_SPAN(name) \
  ::isex::obs::Span ISEX_OBS_CONCAT(isex_obs_span_, __LINE__)(name)
#define ISEX_SPAN_CAT(name, cat) \
  ::isex::obs::Span ISEX_OBS_CONCAT(isex_obs_span_, __LINE__)(name, cat)
#else
#define ISEX_SPAN(name) ((void)0)
#define ISEX_SPAN_CAT(name, cat) ((void)0)
#endif
