#include "isex/obs/metrics.hpp"

#include <algorithm>
#include <climits>
#include <cstdio>
#include <ostream>

namespace isex::obs {

// --- Histogram ---------------------------------------------------------------

Histogram::Histogram() : num_slots_(kPow2Buckets) {
  slots_ = std::make_unique<std::atomic<std::uint64_t>[]>(num_slots_);
  for (std::size_t i = 0; i < num_slots_; ++i) slots_[i].store(0);
}

Histogram::Histogram(std::vector<std::int64_t> bounds)
    : bounds_(std::move(bounds)), num_slots_(bounds_.size() + 1) {
  slots_ = std::make_unique<std::atomic<std::uint64_t>[]>(num_slots_);
  for (std::size_t i = 0; i < num_slots_; ++i) slots_[i].store(0);
}

void Histogram::record(std::int64_t value) {
  const std::int64_t v = value < 0 ? 0 : value;
  std::size_t slot;
  if (bounds_.empty()) {
    slot = static_cast<std::size_t>(
        std::bit_width(static_cast<std::uint64_t>(v)));
  } else {
    slot = static_cast<std::size_t>(
        std::upper_bound(bounds_.begin(), bounds_.end(), v - 1) -
        bounds_.begin());
  }
  slots_[slot].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
  // min/max via CAS loops; contention is negligible at metric rates.
  std::int64_t cur = min_.load(std::memory_order_relaxed);
  while (v < cur &&
         !min_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
  cur = max_.load(std::memory_order_relaxed);
  while (v > cur &&
         !max_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

std::vector<Histogram::Bucket> Histogram::buckets() const {
  std::vector<Bucket> out;
  for (std::size_t i = 0; i < num_slots_; ++i) {
    const std::uint64_t c = slots_[i].load(std::memory_order_relaxed);
    if (c == 0) continue;
    std::int64_t ub;
    if (bounds_.empty()) {
      // Slot i counts values with bit_width == i: upper bound 2^i - 1.
      ub = i >= 63 ? INT64_MAX : (std::int64_t{1} << i) - 1;
    } else {
      ub = i < bounds_.size() ? bounds_[i] : INT64_MAX;
    }
    out.push_back(Bucket{ub, c});
  }
  return out;
}

void Histogram::reset() {
  for (std::size_t i = 0; i < num_slots_; ++i)
    slots_[i].store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(INT64_MAX, std::memory_order_relaxed);
  max_.store(INT64_MIN, std::memory_order_relaxed);
}

// --- Registry ----------------------------------------------------------------

Registry& Registry::global() {
  static Registry* r = new Registry;  // leaked: outlives static destructors
  return *r;
}

Counter& Registry::counter(std::string_view name) {
  std::scoped_lock lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end())
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  return *it->second;
}

Gauge& Registry::gauge(std::string_view name) {
  std::scoped_lock lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end())
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  return *it->second;
}

Histogram& Registry::histogram(std::string_view name) {
  std::scoped_lock lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end())
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  return *it->second;
}

Histogram& Registry::histogram(std::string_view name,
                               std::vector<std::int64_t> bounds) {
  std::scoped_lock lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end())
    it = histograms_
             .emplace(std::string(name),
                      std::make_unique<Histogram>(std::move(bounds)))
             .first;
  return *it->second;
}

void Registry::reset() {
  std::scoped_lock lock(mu_);
  for (auto& [_, c] : counters_) c->reset();
  for (auto& [_, g] : gauges_) g->reset();
  for (auto& [_, h] : histograms_) h->reset();
}

Registry::Snapshot Registry::snapshot() const {
  std::scoped_lock lock(mu_);
  Snapshot s;
  for (const auto& [name, c] : counters_) s.counters[name] = c->get();
  for (const auto& [name, g] : gauges_) s.gauges[name] = g->get();
  for (const auto& [name, h] : histograms_) {
    HistogramSnapshot hs;
    hs.count = h->count();
    hs.sum = h->sum();
    hs.min = hs.count ? h->min() : 0;
    hs.max = hs.count ? h->max() : 0;
    hs.buckets = h->buckets();
    s.histograms[name] = std::move(hs);
  }
  return s;
}

double histogram_quantile(const Registry::HistogramSnapshot& h, double q) {
  if (h.count == 0 || h.buckets.empty()) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  const double target = q * static_cast<double>(h.count);
  std::uint64_t cum = 0;
  std::int64_t prev_ub = -1;  // exclusive lower edge of the current bucket
  for (const Histogram::Bucket& b : h.buckets) {
    const std::uint64_t next = cum + b.count;
    if (static_cast<double>(next) >= target) {
      // Interpolate within [prev_ub+1, upper_bound]; the overflow bucket has
      // no finite width, so fall back to the recorded max.
      const double lo = static_cast<double>(prev_ub) + 1.0;
      const double hi = b.upper_bound == INT64_MAX
                            ? static_cast<double>(h.max)
                            : static_cast<double>(b.upper_bound);
      const double frac =
          b.count == 0 ? 1.0
                       : (target - static_cast<double>(cum)) /
                             static_cast<double>(b.count);
      double v = lo + (hi - lo) * std::min(1.0, std::max(0.0, frac));
      v = std::min(v, static_cast<double>(h.max));
      v = std::max(v, static_cast<double>(h.min));
      return v;
    }
    cum = next;
    prev_ub = b.upper_bound;
  }
  return static_cast<double>(h.max);
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char ch : s) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(ch)));
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  return out;
}

void Registry::write_json(std::ostream& out) const {
  const Snapshot s = snapshot();
  out << "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, v] : s.counters) {
    out << (first ? "" : ",") << "\n    \"" << json_escape(name) << "\": " << v;
    first = false;
  }
  out << (first ? "" : "\n  ") << "},\n  \"gauges\": {";
  first = true;
  for (const auto& [name, v] : s.gauges) {
    out << (first ? "" : ",") << "\n    \"" << json_escape(name) << "\": " << v;
    first = false;
  }
  out << (first ? "" : "\n  ") << "},\n  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : s.histograms) {
    out << (first ? "" : ",") << "\n    \"" << json_escape(name)
        << "\": {\"count\": " << h.count << ", \"sum\": " << h.sum
        << ", \"min\": " << h.min << ", \"max\": " << h.max
        << ", \"buckets\": [";
    for (std::size_t i = 0; i < h.buckets.size(); ++i) {
      out << (i ? ", " : "") << "{\"le\": " << h.buckets[i].upper_bound
          << ", \"count\": " << h.buckets[i].count << "}";
    }
    out << "]}";
    first = false;
  }
  out << (first ? "" : "\n  ") << "}\n}\n";
}

void Registry::write_csv(std::ostream& out) const {
  const Snapshot s = snapshot();
  out << "kind,name,stat,value\n";
  for (const auto& [name, v] : s.counters)
    out << "counter," << name << ",value," << v << '\n';
  for (const auto& [name, v] : s.gauges)
    out << "gauge," << name << ",value," << v << '\n';
  for (const auto& [name, h] : s.histograms) {
    out << "histogram," << name << ",count," << h.count << '\n';
    out << "histogram," << name << ",sum," << h.sum << '\n';
    out << "histogram," << name << ",min," << h.min << '\n';
    out << "histogram," << name << ",max," << h.max << '\n';
  }
}

}  // namespace isex::obs
