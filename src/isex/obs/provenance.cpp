#include "isex/obs/provenance.hpp"

#include <unistd.h>

#include <cstdlib>
#include <ostream>
#include <thread>

#include "isex/obs/metrics.hpp"

#ifndef ISEX_BUILD_TYPE
#define ISEX_BUILD_TYPE "unknown"
#endif

namespace isex::obs {

Provenance collect_provenance() {
  Provenance p;
  p.build_type = ISEX_BUILD_TYPE;
  if (p.build_type.empty()) p.build_type = "unknown";
  const char* sha = std::getenv("GITHUB_SHA");
  if (sha == nullptr || *sha == '\0') sha = std::getenv("ISEX_GIT_SHA");
  p.git_sha = (sha != nullptr && *sha != '\0') ? sha : "unknown";
  double loads[1] = {-1.0};
  if (::getloadavg(loads, 1) == 1) p.load_avg_1m = loads[0];
  p.num_cpus = static_cast<int>(std::thread::hardware_concurrency());
  if (p.num_cpus <= 0) p.num_cpus = 1;
  char host[256] = {0};
  if (::gethostname(host, sizeof(host) - 1) == 0 && host[0] != '\0') {
    p.hostname = host;
  } else {
    p.hostname = "unknown";
  }
  return p;
}

void write_provenance_json(std::ostream& out, const Provenance& p) {
  out << "{\"build_type\": \"" << json_escape(p.build_type)
      << "\", \"git_sha\": \"" << json_escape(p.git_sha)
      << "\", \"load_avg_1m\": " << p.load_avg_1m
      << ", \"num_cpus\": " << p.num_cpus << ", \"hostname\": \""
      << json_escape(p.hostname) << "\"}";
}

}  // namespace isex::obs
