// isex::obs — benchmark provenance: where did this BENCH_*.json come from?
//
// Every bench emitter stamps its output with the build type, git revision,
// load average and CPU count at run time. tools/bench_compare refuses to
// diff runs whose provenance makes the comparison meaningless (debug vs
// release, or a machine under heavy unrelated load) — the original
// BENCH_micro.json baseline was recorded in a debug build at load ≈ 15 and
// silently compared as if it meant something.
#pragma once

#include <iosfwd>
#include <string>

namespace isex::obs {

struct Provenance {
  std::string build_type;   // CMAKE_BUILD_TYPE baked in at compile time
  std::string git_sha;      // $GITHUB_SHA or $ISEX_GIT_SHA, else "unknown"
  double load_avg_1m = -1;  // getloadavg(); -1 if unavailable
  int num_cpus = 0;
  std::string hostname;
};

/// Captures provenance for the current process/build.
Provenance collect_provenance();

/// Writes `{"build_type": ..., "git_sha": ..., "load_avg_1m": ...,
/// "num_cpus": ..., "hostname": ...}` (one line, no trailing newline).
void write_provenance_json(std::ostream& out, const Provenance& p);

}  // namespace isex::obs
