#include "isex/obs/trace.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <ostream>

#include "isex/util/table.hpp"

namespace isex::obs {

std::int64_t clock_ns() {
  using Clock = std::chrono::steady_clock;
  static_assert(Clock::is_steady);
  static const Clock::time_point epoch = Clock::now();
  return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                              epoch)
      .count();
}

bool clock_is_steady() { return std::chrono::steady_clock::is_steady; }

int current_tid() {
  static std::atomic<int> next{1};
  thread_local int tid = next.fetch_add(1, std::memory_order_relaxed);
  return tid;
}

TraceBuffer& TraceBuffer::global() {
  static TraceBuffer* b = new TraceBuffer;  // leaked: outlives static dtors
  return *b;
}

void TraceBuffer::set_capacity(std::size_t cap) {
  std::scoped_lock lock(mu_);
  capacity_ = cap;
}

void TraceBuffer::record(TraceEvent e) {
  std::scoped_lock lock(mu_);
  if (events_.size() >= capacity_) {
    ++dropped_;
    return;
  }
  events_.push_back(std::move(e));
}

void TraceBuffer::set_thread_name(int pid, int tid, std::string name) {
  std::scoped_lock lock(mu_);
  for (auto& [key, n] : thread_names_)
    if (key == std::pair{pid, tid}) {
      n = std::move(name);
      return;
    }
  thread_names_.emplace_back(std::pair{pid, tid}, std::move(name));
}

void TraceBuffer::clear() {
  std::scoped_lock lock(mu_);
  events_.clear();
  thread_names_.clear();
  dropped_ = 0;
}

std::size_t TraceBuffer::size() const {
  std::scoped_lock lock(mu_);
  return events_.size();
}

std::uint64_t TraceBuffer::dropped() const {
  std::scoped_lock lock(mu_);
  return dropped_;
}

std::vector<TraceEvent> TraceBuffer::events() const {
  std::scoped_lock lock(mu_);
  return events_;
}

namespace {

/// Chrome trace timestamps are microseconds. Wall events carry ns (exported
/// with fractional-us precision); sim events carry cycles mapped 1:1 to us.
void write_ts(std::ostream& out, int pid, std::int64_t v) {
  if (pid == kSimPid) {
    out << v;
  } else {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%lld.%03lld",
                  static_cast<long long>(v / 1000),
                  static_cast<long long>(v % 1000));
    out << buf;
  }
}

void write_args_json(std::ostream& out,
                     const std::vector<std::pair<std::string, std::string>>&
                         args) {
  out << "{";
  for (std::size_t i = 0; i < args.size(); ++i)
    out << (i ? ", " : "") << "\"" << json_escape(args[i].first) << "\": \""
        << json_escape(args[i].second) << "\"";
  out << "}";
}

}  // namespace

void TraceBuffer::write_chrome_json(std::ostream& out) const {
  std::scoped_lock lock(mu_);
  out << "{\"traceEvents\": [\n";
  bool first = true;
  auto sep = [&] {
    if (!first) out << ",\n";
    first = false;
  };
  sep();
  out << "  {\"ph\": \"M\", \"name\": \"process_name\", \"pid\": " << kWallPid
      << ", \"args\": {\"name\": \"isex wall clock\"}}";
  sep();
  out << "  {\"ph\": \"M\", \"name\": \"process_name\", \"pid\": " << kSimPid
      << ", \"args\": {\"name\": \"rt virtual time (1 cycle = 1us)\"}}";
  for (const auto& [key, name] : thread_names_) {
    sep();
    out << "  {\"ph\": \"M\", \"name\": \"thread_name\", \"pid\": "
        << key.first << ", \"tid\": " << key.second
        << ", \"args\": {\"name\": \"" << json_escape(name) << "\"}}";
  }
  for (const TraceEvent& e : events_) {
    sep();
    const char* ph = e.phase == TraceEvent::Phase::kComplete ? "X"
                     : e.phase == TraceEvent::Phase::kInstant ? "i"
                                                              : "C";
    out << "  {\"ph\": \"" << ph << "\", \"name\": \"" << json_escape(e.name)
        << "\", \"cat\": \"" << json_escape(e.cat) << "\", \"pid\": " << e.pid
        << ", \"tid\": " << e.tid << ", \"ts\": ";
    write_ts(out, e.pid, e.ts);
    if (e.phase == TraceEvent::Phase::kComplete) {
      out << ", \"dur\": ";
      write_ts(out, e.pid, e.dur);
    }
    if (e.phase == TraceEvent::Phase::kInstant) out << ", \"s\": \"t\"";
    if (!e.args.empty()) {
      out << ", \"args\": ";
      write_args_json(out, e.args);
    }
    out << "}";
  }
  out << "\n]}\n";
}

void TraceBuffer::write_csv(std::ostream& out) const {
  std::scoped_lock lock(mu_);
  out << "phase,name,cat,pid,tid,ts,dur,args\n";
  for (const TraceEvent& e : events_) {
    const char* ph = e.phase == TraceEvent::Phase::kComplete ? "complete"
                     : e.phase == TraceEvent::Phase::kInstant ? "instant"
                                                              : "counter";
    std::string args;
    for (std::size_t i = 0; i < e.args.size(); ++i) {
      if (i) args += ';';
      args += e.args[i].first + '=' + e.args[i].second;
    }
    out << ph << ',' << util::csv_escape(e.name) << ','
        << util::csv_escape(e.cat) << ',' << e.pid << ',' << e.tid << ','
        << e.ts << ',' << e.dur << ',' << util::csv_escape(args) << '\n';
  }
}

Span::Span(std::string_view name, std::string_view cat)
    : armed_(TraceBuffer::global().enabled()) {
  if (!armed_) return;
  start_ns_ = clock_ns();
  name_ = name;
  cat_ = cat;
}

Span::~Span() {
  if (!armed_) return;
  TraceEvent e;
  e.phase = TraceEvent::Phase::kComplete;
  e.name = std::move(name_);
  e.cat = std::move(cat_);
  e.pid = kWallPid;
  e.tid = current_tid();
  e.ts = start_ns_;
  e.dur = clock_ns() - start_ns_;
  e.args = std::move(args_);
  TraceBuffer::global().record(std::move(e));
}

void Span::arg(std::string_view key, std::string_view value) {
  if (!armed_) return;
  args_.emplace_back(std::string(key), std::string(value));
}

void trace_instant(std::string_view name, std::string_view cat, int pid,
                   int tid, std::int64_t ts,
                   std::vector<std::pair<std::string, std::string>> args) {
  TraceBuffer& tb = TraceBuffer::global();
  if (!tb.enabled()) return;
  TraceEvent e;
  e.phase = TraceEvent::Phase::kInstant;
  e.name = std::string(name);
  e.cat = std::string(cat);
  e.pid = pid;
  e.tid = tid;
  e.ts = ts;
  e.args = std::move(args);
  tb.record(std::move(e));
}

void trace_complete(std::string_view name, std::string_view cat, int pid,
                    int tid, std::int64_t ts, std::int64_t dur,
                    std::vector<std::pair<std::string, std::string>> args) {
  TraceBuffer& tb = TraceBuffer::global();
  if (!tb.enabled()) return;
  TraceEvent e;
  e.phase = TraceEvent::Phase::kComplete;
  e.name = std::string(name);
  e.cat = std::string(cat);
  e.pid = pid;
  e.tid = tid;
  e.ts = ts;
  e.dur = dur;
  e.args = std::move(args);
  tb.record(std::move(e));
}

}  // namespace isex::obs
