// isex::obs — process-wide metrics registry.
//
// Named counters, gauges and fixed-bucket histograms with an O(1) hot path:
// call sites resolve the name once (function-local static) and then touch a
// single cache-line-padded relaxed atomic per hit. Instrumentation sites use
// the ISEX_COUNT / ISEX_HIST / ISEX_GAUGE_SET macros below; when ISEX_NO_OBS
// is defined those macros expand to `((void)0)` and the instrumented code
// compiles to exactly the uninstrumented algorithms. The macro switch never
// changes any class or inline-function definition, so translation units built
// with and without ISEX_NO_OBS link together safely (the tests rely on this).
//
// Naming convention (see DESIGN.md): `<module>.<subject>.<what>` with dots,
// e.g. "ise.enum.candidates", "customize.rms.bound_pruned", "rt.sim.preemptions".
#pragma once

#include <atomic>
#include <bit>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace isex::obs {

/// Monotonically increasing event count. Padded so two counters never share a
/// cache line (independent hot loops must not false-share).
class alignas(64) Counter {
 public:
  void add(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t get() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Last-written instantaneous value (e.g. a table width, a queue depth).
class alignas(64) Gauge {
 public:
  void set(double v) { v_.store(v, std::memory_order_relaxed); }
  double get() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// Fixed-bucket histogram over non-negative integer samples. The default
/// bucketing is powers of two (bucket k counts samples with bit_width == k,
/// i.e. upper bounds 0,1,3,7,...), giving an O(1) branch-free record();
/// explicit ascending upper bounds are supported for calibrated axes.
class Histogram {
 public:
  /// Power-of-two buckets covering the full non-negative int64 range.
  Histogram();
  /// Explicit ascending inclusive upper bounds; samples above the last bound
  /// land in an implicit overflow bucket.
  explicit Histogram(std::vector<std::int64_t> bounds);

  void record(std::int64_t value);

  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  std::int64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  std::int64_t min() const { return min_.load(std::memory_order_relaxed); }
  std::int64_t max() const { return max_.load(std::memory_order_relaxed); }

  struct Bucket {
    std::int64_t upper_bound;  // inclusive; INT64_MAX = overflow bucket
    std::uint64_t count;
  };
  /// Non-empty buckets only, ascending by bound.
  std::vector<Bucket> buckets() const;

  void reset();

 private:
  static constexpr int kPow2Buckets = 65;  // bit_width(v) in [0, 64]

  std::vector<std::int64_t> bounds_;  // empty = power-of-two mode
  std::size_t num_slots_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> slots_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::int64_t> sum_{0};
  std::atomic<std::int64_t> min_{INT64_MAX};
  std::atomic<std::int64_t> max_{INT64_MIN};
};

/// Process-wide named metric registry. Creation takes a mutex; the returned
/// references are stable for the process lifetime, so call sites cache them
/// (the ISEX_COUNT family does this automatically) and the steady-state cost
/// is one relaxed atomic op.
class Registry {
 public:
  static Registry& global();

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  /// Power-of-two-bucket histogram (the first registration wins; subsequent
  /// calls with the same name return the existing instance).
  Histogram& histogram(std::string_view name);
  Histogram& histogram(std::string_view name, std::vector<std::int64_t> bounds);

  /// Zeroes every metric (instances stay registered and references valid).
  void reset();

  struct HistogramSnapshot {
    std::uint64_t count = 0;
    std::int64_t sum = 0, min = 0, max = 0;
    std::vector<Histogram::Bucket> buckets;
  };
  struct Snapshot {
    std::map<std::string, std::uint64_t> counters;
    std::map<std::string, double> gauges;
    std::map<std::string, HistogramSnapshot> histograms;
  };
  Snapshot snapshot() const;

  /// {"counters":{...},"gauges":{...},"histograms":{...}} — stable key order.
  void write_json(std::ostream& out) const;
  /// Flat `kind,name,value` CSV (histograms expand one row per statistic).
  void write_csv(std::ostream& out) const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

/// Escapes a string for embedding in a JSON string literal (no quotes added).
std::string json_escape(std::string_view s);

/// Estimates the q-quantile (q in [0,1]) of a histogram snapshot by linear
/// interpolation inside the winning bucket, clamped to the recorded
/// [min, max]. Returns 0 for an empty histogram. Exact-bucket axes (pow2
/// microsecond latencies) give p50/p95/p99 good to the bucket resolution —
/// fine for operator dashboards, not for benchmarking claims.
double histogram_quantile(const Registry::HistogramSnapshot& h, double q);

}  // namespace isex::obs

// --- instrumentation macros --------------------------------------------------
//
// `name` must be a string literal (or at least outlive the process); the
// metric is resolved once per call site.
#ifndef ISEX_NO_OBS
#define ISEX_OBS_ENABLED 1
#define ISEX_COUNT_ADD(name, n)                              \
  do {                                                       \
    static ::isex::obs::Counter& isex_obs_counter_ =         \
        ::isex::obs::Registry::global().counter(name);       \
    isex_obs_counter_.add(static_cast<std::uint64_t>(n));    \
  } while (0)
#define ISEX_COUNT(name) ISEX_COUNT_ADD(name, 1)
#define ISEX_GAUGE_SET(name, v)                              \
  do {                                                       \
    static ::isex::obs::Gauge& isex_obs_gauge_ =             \
        ::isex::obs::Registry::global().gauge(name);         \
    isex_obs_gauge_.set(static_cast<double>(v));             \
  } while (0)
#define ISEX_HIST(name, v)                                   \
  do {                                                       \
    static ::isex::obs::Histogram& isex_obs_hist_ =          \
        ::isex::obs::Registry::global().histogram(name);     \
    isex_obs_hist_.record(static_cast<std::int64_t>(v));     \
  } while (0)
#else
#define ISEX_OBS_ENABLED 0
#define ISEX_COUNT_ADD(name, n) ((void)0)
#define ISEX_COUNT(name) ((void)0)
#define ISEX_GAUGE_SET(name, v) ((void)0)
#define ISEX_HIST(name, v) ((void)0)
#endif
