#include "isex/obs/journal.hpp"

#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>

#include "isex/obs/trace.hpp"
#include "isex/util/file.hpp"

namespace isex::obs {
namespace {

thread_local std::uint64_t t_current_rid = 0;

std::size_t round_up_pow2(std::size_t n) {
  std::size_t cap = 1;
  while (cap < n && cap < (std::size_t{1} << 30)) cap <<= 1;
  return cap;
}

constexpr std::size_t kDefaultCapacity = 4096;

}  // namespace

const char* to_string(JournalKind k) {
  switch (k) {
    case JournalKind::kNone: return "none";
    case JournalKind::kRequest: return "request";
    case JournalKind::kDecode: return "decode";
    case JournalKind::kAdmission: return "admission";
    case JournalKind::kShed: return "shed";
    case JournalKind::kCacheLookup: return "cache_lookup";
    case JournalKind::kRung: return "rung";
    case JournalKind::kCertify: return "certify";
    case JournalKind::kSolve: return "solve";
    case JournalKind::kResponse: return "response";
    case JournalKind::kDrain: return "drain";
    case JournalKind::kMark: return "mark";
    case JournalKind::kWorkerSpawn: return "worker_spawn";
    case JournalKind::kWorkerExit: return "worker_exit";
    case JournalKind::kWorkerKill: return "worker_kill";
    case JournalKind::kDispatch: return "dispatch";
    case JournalKind::kQuarantine: return "quarantine";
  }
  return "unknown";
}

const char* to_string(JournalPhase p) {
  switch (p) {
    case JournalPhase::kNone: return "-";
    case JournalPhase::kTransport: return "transport";
    case JournalPhase::kDecode: return "decode";
    case JournalPhase::kBuild: return "build";
    case JournalPhase::kSolve: return "solve";
    case JournalPhase::kCertify: return "certify";
    case JournalPhase::kCache: return "cache";
    case JournalPhase::kRender: return "render";
  }
  return "unknown";
}

const char* to_string(Disposition d) {
  switch (d) {
    case Disposition::kExact: return "exact";
    case Disposition::kDegraded: return "degraded";
    case Disposition::kShed: return "shed";
    case Disposition::kCached: return "cached";
    case Disposition::kError: return "error";
    case Disposition::kDrained: return "drained";
  }
  return "unknown";
}

Journal::Journal() { set_capacity(kDefaultCapacity); }

Journal& Journal::global() {
  // Leaked singleton so crash handlers and exit paths can always reach it.
  static Journal* j = new Journal();
  return *j;
}

void Journal::set_capacity(std::size_t capacity) {
  std::size_t cap = round_up_pow2(capacity == 0 ? 1 : capacity);
  slots_ = std::make_unique<Slot[]>(cap);
  mask_ = cap - 1;
  head_.store(0, std::memory_order_release);
}

std::uint64_t Journal::record(JournalKind kind, JournalPhase phase,
                              std::int64_t dur_ns, std::int64_t v0,
                              std::int64_t v1, std::uint64_t rid) {
  if (!enabled()) return 0;
  const std::uint64_t seq = head_.fetch_add(1, std::memory_order_relaxed) + 1;
  Slot& slot = slots_[(seq - 1) & mask_];
  JournalRecord rec;
  rec.seq = seq;
  rec.rid = rid != 0 ? rid : t_current_rid;
  rec.ts_ns = clock_ns();
  rec.dur_ns = dur_ns;
  rec.v0 = v0;
  rec.v1 = v1;
  rec.kind = kind;
  rec.phase = phase;
  std::uint64_t w[kRecordWords];
  std::memcpy(w, &rec, sizeof(rec));
  // Per-slot seqlock: mark busy, write payload words, publish seq. A writer
  // that laps another mid-write just leaves the slot busy briefly; readers
  // skip any slot whose stamp is not the exact seq they expect both before
  // and after copying.
  slot.stamp.store(kBusy, std::memory_order_release);
  for (std::size_t i = 0; i < kRecordWords; ++i) {
    slot.words[i].store(w[i], std::memory_order_relaxed);
  }
  slot.stamp.store(seq, std::memory_order_release);
  return seq;
}

bool Journal::read_slot(std::uint64_t seq, JournalRecord* out) const {
  const Slot& slot = slots_[(seq - 1) & mask_];
  if (slot.stamp.load(std::memory_order_acquire) != seq) return false;
  std::uint64_t w[kRecordWords];
  for (std::size_t i = 0; i < kRecordWords; ++i) {
    w[i] = slot.words[i].load(std::memory_order_relaxed);
  }
  std::atomic_thread_fence(std::memory_order_acquire);
  if (slot.stamp.load(std::memory_order_relaxed) != seq) return false;
  std::memcpy(out, w, sizeof(*out));
  return true;
}

std::vector<JournalRecord> Journal::snapshot(std::size_t last_n,
                                             std::uint64_t* torn) const {
  const std::uint64_t head = head_.load(std::memory_order_acquire);
  const std::size_t cap = mask_ + 1;
  std::uint64_t n = std::min<std::uint64_t>(head, cap);
  if (last_n != 0 && last_n < n) n = last_n;
  std::vector<JournalRecord> out;
  out.reserve(n);
  std::uint64_t torn_count = 0;
  for (std::uint64_t seq = head - n + 1; seq <= head; ++seq) {
    JournalRecord copy;
    if (!read_slot(seq, &copy)) {
      // Overwritten by a lapping writer (or mid-write): torn, skipped.
      ++torn_count;
      continue;
    }
    out.push_back(copy);
  }
  if (torn) *torn = torn_count;
  return out;
}

namespace {
bool write_all(int fd, const void* buf, std::size_t len) {
  const char* p = static_cast<const char*>(buf);
  while (len > 0) {
    ssize_t w = ::write(fd, p, len);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += w;
    len -= static_cast<std::size_t>(w);
  }
  return true;
}
}  // namespace

bool Journal::write_binary(int fd, std::size_t last_n) const {
  JournalFileHeader hdr;
  if (!write_all(fd, &hdr, sizeof(hdr))) return false;
  const std::vector<JournalRecord> recs = snapshot(last_n);
  for (const JournalRecord& r : recs) {
    if (!write_all(fd, &r, sizeof(r))) return false;
  }
  return true;
}

std::size_t Journal::crash_dump(int fd) const {
  // Async-signal-safe: only ::write, a stack buffer, and atomic loads.
  static const JournalFileHeader hdr{};
  if (!write_all(fd, &hdr, sizeof(hdr))) return 0;
  const std::uint64_t head = head_.load(std::memory_order_acquire);
  const std::size_t cap = mask_ + 1;
  const std::uint64_t n = std::min<std::uint64_t>(head, cap);
  std::size_t written = 0;
  for (std::uint64_t seq = head - n + 1; seq <= head; ++seq) {
    JournalRecord copy;
    if (!read_slot(seq, &copy)) continue;
    if (!write_all(fd, &copy, sizeof(copy))) break;
    ++written;
  }
  return written;
}

void Journal::clear() {
  const std::size_t cap = mask_ + 1;
  for (std::size_t i = 0; i < cap; ++i) {
    slots_[i].stamp.store(0, std::memory_order_relaxed);
    for (std::size_t wi = 0; wi < kRecordWords; ++wi) {
      slots_[i].words[wi].store(0, std::memory_order_relaxed);
    }
  }
  head_.store(0, std::memory_order_release);
}

std::uint64_t current_request_id() { return t_current_rid; }

JournalScope::JournalScope(std::uint64_t rid) : prev_(t_current_rid) {
  t_current_rid = rid;
}

JournalScope::~JournalScope() { t_current_rid = prev_; }

bool read_journal_file(const std::string& path,
                       std::vector<JournalRecord>* out, std::string* error) {
  out->clear();
  // Dumps are untrusted input (crash artifacts, arbitrary user paths): read
  // through the shared bounded ingestion helper instead of streaming, so a
  // bogus path can't pull in gigabytes before the header check runs.
  constexpr std::size_t kMaxDumpBytes = 64u << 20;
  util::FileReadResult file = util::read_file_bounded(path, kMaxDumpBytes);
  if (!file.ok) {
    if (error) *error = file.error;
    return false;
  }
  if (file.data.size() < sizeof(JournalFileHeader)) {
    if (error)
      *error = path + ": " + std::to_string(file.data.size()) +
               " bytes is too short for a journal header (" +
               std::to_string(sizeof(JournalFileHeader)) + " needed)";
    return false;
  }
  JournalFileHeader hdr;
  std::memcpy(&hdr, file.data.data(), sizeof(hdr));
  if (hdr.magic != JournalFileHeader::kMagic) {
    if (error) *error = path + ": bad journal magic (not a journal dump)";
    return false;
  }
  if (hdr.version != 1) {
    if (error)
      *error =
          path + ": unsupported journal version " + std::to_string(hdr.version);
    return false;
  }
  if (hdr.record_size != sizeof(JournalRecord)) {
    if (error) {
      *error = path + ": journal record size " +
               std::to_string(hdr.record_size) + " != " +
               std::to_string(sizeof(JournalRecord));
    }
    return false;
  }
  const std::size_t body = file.data.size() - sizeof(hdr);
  const std::size_t n = body / sizeof(JournalRecord);
  for (std::size_t i = 0; i < n; ++i) {
    JournalRecord rec;
    std::memcpy(&rec, file.data.data() + sizeof(hdr) + i * sizeof(rec),
                sizeof(rec));
    out->push_back(rec);
  }
  // A partial trailing record (crash mid-write) is silently dropped.
  return true;
}

// --- crash handler -----------------------------------------------------------

namespace {

char g_crash_path[256] = {0};
std::atomic<bool> g_in_crash_handler{false};

const int kCrashSignals[] = {SIGABRT, SIGSEGV, SIGBUS, SIGFPE, SIGILL};

void crash_handler(int sig) {
  // One shot: a crash inside the handler must not recurse.
  if (!g_in_crash_handler.exchange(true)) {
    if (g_crash_path[0] != '\0') {
      // Dump to "<path>.<pid>" so concurrent worker processes sharing one
      // configured base path never clobber each other's dumps. Built with
      // async-signal-safe byte pushing only (no snprintf/malloc).
      char path[sizeof(g_crash_path) + 16];
      std::size_t n = 0;
      while (g_crash_path[n] != '\0') {
        path[n] = g_crash_path[n];
        ++n;
      }
      path[n++] = '.';
      char digits[16];
      int d = 0;
      long pid = static_cast<long>(::getpid());
      do {
        digits[d++] = static_cast<char>('0' + pid % 10);
        pid /= 10;
      } while (pid > 0 && d < 15);
      while (d > 0) path[n++] = digits[--d];
      path[n] = '\0';
      int fd = ::open(path, O_CREAT | O_WRONLY | O_TRUNC, 0644);
      if (fd >= 0) {
        Journal::global().crash_dump(fd);
        ::close(fd);
      }
    }
  }
  // Restore default disposition and re-raise so the process dies with the
  // original signal (exit status 128+sig, core dump where configured).
  ::signal(sig, SIG_DFL);
  ::raise(sig);
}

}  // namespace

void set_crash_dump_path(const char* path) {
  if (path == nullptr) {
    g_crash_path[0] = '\0';
    return;
  }
  std::size_t len = std::strlen(path);
  if (len >= sizeof(g_crash_path)) len = sizeof(g_crash_path) - 1;
  std::memcpy(g_crash_path, path, len);
  g_crash_path[len] = '\0';
}

void install_crash_handler() {
  // Force singleton construction now: the handler itself must not run the
  // (non-signal-safe) static-local initialization path.
  (void)Journal::global();
  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_handler = crash_handler;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = SA_RESETHAND;
  for (int sig : kCrashSignals) ::sigaction(sig, &sa, nullptr);
}

}  // namespace isex::obs
