// isex::obs — the flight recorder: a bounded, thread-safe, structured
// journal of fixed-size binary records explaining what the serve path did
// and why.
//
// Design constraints, in order:
//  1. Crash-readable. Records live in one preallocated slot array; an
//     async-signal-safe handler can walk it after SIGSEGV/SIGABRT with no
//     malloc, no formatting, no locks (crash_dump / install_crash_handler).
//  2. Wait-free writers. record() is a fetch_add plus plain stores behind a
//     per-slot commit stamp (a seqlock): writers never block each other and
//     never block on readers, so the journal can sit on the request hot
//     path (<5% soak-throughput overhead, measured in EXPERIMENTS.md).
//  3. Attribution. Every record carries a request id (rid). The serve loop
//     allocates one rid per request line and opens a JournalScope, so
//     instrumentation deep in robust::solve_with_fallback, certify:: and
//     the result cache lands on the right request without threading an id
//     through every solver signature. A response's disposition is
//     reconstructible afterwards by filtering the journal on its rid
//     (`isex tail --rid N`).
//
// Records are overwritten ring-wise; a reader (snapshot, the stats request,
// `isex tail`) revalidates each slot's stamp after copying and drops torn
// records instead of ever returning a half-written one — the journal_test
// MT stress pins this.
//
// ISEX_NO_OBS compiles the ISEX_JOURNAL* macros to ((void)0) like every
// other obs instrumentation site; the classes themselves never change shape
// (ODR safety across mixed TUs), and the serve results stay bit-identical
// because nothing downstream reads the journal to make decisions.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <type_traits>
#include <vector>

namespace isex::obs {

/// What happened. Values are part of the binary dump format: append only.
enum class JournalKind : std::uint16_t {
  kNone = 0,
  kRequest = 1,    // request line entered handling; v0 = line bytes
  kDecode = 2,     // decode finished; v0 = 0 ok / protocol ErrorCode
  kAdmission = 3,  // admission reject; v0 = retry_after_ms, v1 = depth
  kShed = 4,       // load-shed decision; v0 = start rung, v1 = queue depth
  kCacheLookup = 5,   // v0: 0 = miss, 1 = hit, 2 = poisoned-on-reuse
  kRung = 6,       // ladder rung finished; v0 = rung index, v1 = Status
  kCertify = 7,    // witness checker ran; v0 = checks, v1 = violations
  kSolve = 8,      // whole solve finished; v0 = nodes charged, v1 = Status
  kResponse = 9,   // response rendered; v0 = Disposition, v1 = bytes
  kDrain = 10,     // queued request answered "shutting_down" on drain
  kMark = 11,      // free-form instrumentation point (tests, tools)
  // Worker-pool supervision (supervise/pool.cpp; recorded by the supervisor).
  kWorkerSpawn = 12,  // v0 = worker index, v1 = pid
  kWorkerExit = 13,   // v0 = signal (term) or -exit_status, v1 = pid
  kWorkerKill = 14,   // supervisor SIGKILL; v0 = worker index, v1 = pid
  kDispatch = 15,     // request sent to a worker; v0 = worker index
  kQuarantine = 16,   // poison request quarantined; v0 = kill count
};
const char* to_string(JournalKind k);

/// Which stage of the request pipeline a record belongs to.
enum class JournalPhase : std::uint16_t {
  kNone = 0,
  kTransport = 1,  // split/admission, before decoding
  kDecode = 2,
  kBuild = 3,      // task-set construction (curves, DFG lifting)
  kSolve = 4,
  kCertify = 5,
  kCache = 6,
  kRender = 7,
};
const char* to_string(JournalPhase p);

/// How a response left the server — the field `bench_compare` gates shed
/// behavior on and `isex tail` explains responses with.
enum class Disposition : std::int64_t {
  kExact = 0,
  kDegraded = 1,      // non-Exact solver status (truncated or fallback rung)
  kShed = 2,          // answered from a demoted ladder start rung
  kCached = 3,        // served from the certified result cache
  kError = 4,         // any error response (code in the envelope)
  kDrained = 5,       // answered "shutting_down" during drain
};
const char* to_string(Disposition d);

/// One fixed-size binary journal record. Trivially copyable by contract:
/// the ring, the crash dump and the `isex tail` reader all treat it as raw
/// bytes.
struct JournalRecord {
  std::uint64_t seq = 0;    // 1-based global sequence number
  std::uint64_t rid = 0;    // request id; 0 = outside any request scope
  std::int64_t ts_ns = 0;   // obs::clock_ns() at record time
  std::int64_t dur_ns = 0;  // 0 for instant events
  std::int64_t v0 = 0;      // kind-specific (see JournalKind)
  std::int64_t v1 = 0;
  JournalKind kind = JournalKind::kNone;
  JournalPhase phase = JournalPhase::kNone;
  std::uint32_t pad = 0;
  std::uint64_t reserved = 0;  // format headroom; always 0 in version 1
};
static_assert(sizeof(JournalRecord) == 64, "dump format is fixed-width");
static_assert(std::is_trivially_copyable_v<JournalRecord>);

/// Header of the binary dump format (crash dumps and `Journal::write_binary`
/// share it; `isex tail` validates it before trusting a byte).
struct JournalFileHeader {
  std::uint32_t magic = kMagic;
  std::uint32_t version = 1;
  std::uint32_t record_size = sizeof(JournalRecord);
  std::uint32_t reserved = 0;

  static constexpr std::uint32_t kMagic = 0x314a7349;  // "IsJ1" little-endian
};
static_assert(sizeof(JournalFileHeader) == 16);

/// The process-wide flight recorder ring.
class Journal {
 public:
  static Journal& global();

  /// Capacity is rounded up to a power of two; reallocates and clears.
  /// Never call concurrently with writers (configure at startup).
  void set_capacity(std::size_t capacity);
  std::size_t capacity() const { return mask_ + 1; }

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }

  /// Appends one record (wait-free, thread-safe). rid 0 means "attribute to
  /// the calling thread's current JournalScope, if any". Returns the
  /// sequence number, or 0 when disabled.
  std::uint64_t record(JournalKind kind, JournalPhase phase,
                       std::int64_t dur_ns = 0, std::int64_t v0 = 0,
                       std::int64_t v1 = 0, std::uint64_t rid = 0);

  /// Total records ever written (the ring holds the last capacity() of them).
  std::uint64_t head() const { return head_.load(std::memory_order_acquire); }

  /// Copies the last `last_n` committed records (0 = everything retained),
  /// oldest first. Torn slots — concurrently overwritten mid-copy — are
  /// skipped and counted in *torn (never returned half-written).
  std::vector<JournalRecord> snapshot(std::size_t last_n = 0,
                                      std::uint64_t* torn = nullptr) const;

  /// Writes header + the last `last_n` committed records to fd via plain
  /// ::write. Uses snapshot() (allocates); NOT async-signal-safe.
  bool write_binary(int fd, std::size_t last_n = 0) const;

  /// Async-signal-safe dump: header + raw slot walk, oldest first, no
  /// locks/malloc/format. Torn slots are skipped by stamp revalidation.
  /// Returns records written.
  std::size_t crash_dump(int fd) const;

  /// Clears all records (not the capacity). Not concurrency-safe; tests.
  void clear();

 private:
  // Payload is stored as relaxed atomic words (not a plain JournalRecord) so
  // the seqlock is a data race neither formally nor under tsan; the stamp is
  // 0 = free, kBusy = mid-write, else the committed seq.
  static constexpr std::size_t kRecordWords =
      sizeof(JournalRecord) / sizeof(std::uint64_t);
  struct Slot {
    std::atomic<std::uint64_t> stamp{0};
    std::atomic<std::uint64_t> words[kRecordWords] = {};
  };
  static constexpr std::uint64_t kBusy = ~std::uint64_t{0};

  bool read_slot(std::uint64_t seq, JournalRecord* out) const;

  std::atomic<bool> enabled_{true};
  std::atomic<std::uint64_t> head_{0};
  std::size_t mask_ = 0;
  std::unique_ptr<Slot[]> slots_;

  Journal();
};

/// The rid new journal records are attributed to on this thread (0 = none).
std::uint64_t current_request_id();

/// RAII request-attribution scope: sets the calling thread's current rid,
/// restoring the previous one on destruction (scopes nest). The class is
/// identical with and without ISEX_NO_OBS; only the macro below vanishes.
class JournalScope {
 public:
  explicit JournalScope(std::uint64_t rid);
  ~JournalScope();
  JournalScope(const JournalScope&) = delete;
  JournalScope& operator=(const JournalScope&) = delete;

 private:
  std::uint64_t prev_;
};

/// Decodes a binary journal dump (header + records). Returns false and sets
/// *error on a bad magic/version/record size; tolerates a truncated tail
/// (a crash dump may be cut by the dying process) by dropping the partial
/// final record.
bool read_journal_file(const std::string& path,
                       std::vector<JournalRecord>* out, std::string* error);

/// Registers `path` as the crash-dump *base* (copied into a static buffer;
/// at most 255 bytes) and installs async-signal-safe handlers for
/// SIGABRT/SIGSEGV/SIGBUS/SIGFPE/SIGILL that write the last-capacity()
/// journal records to `<path>.<pid>`, then re-raise with the default action
/// so the process still dies with the original signal. The pid suffix keeps
/// concurrent worker processes sharing one configured base from clobbering
/// each other (`isex tail` accepts either the base or a suffixed path).
/// Call once, from main-like code (the serve daemon), never from tests that
/// expect to survive.
void set_crash_dump_path(const char* path);
void install_crash_handler();

}  // namespace isex::obs

// --- instrumentation macros --------------------------------------------------
#ifndef ISEX_OBS_CONCAT
#define ISEX_OBS_CONCAT_IMPL(a, b) a##b
#define ISEX_OBS_CONCAT(a, b) ISEX_OBS_CONCAT_IMPL(a, b)
#endif
#ifndef ISEX_NO_OBS
#define ISEX_JOURNAL(kind, phase, dur_ns, v0, v1)                       \
  (void)::isex::obs::Journal::global().record(                          \
      ::isex::obs::JournalKind::kind, ::isex::obs::JournalPhase::phase, \
      static_cast<std::int64_t>(dur_ns), static_cast<std::int64_t>(v0), \
      static_cast<std::int64_t>(v1))
#define ISEX_JOURNAL_SCOPE(rid) \
  ::isex::obs::JournalScope ISEX_OBS_CONCAT(isex_obs_jscope_, __LINE__)(rid)
#else
#define ISEX_JOURNAL(kind, phase, dur_ns, v0, v1) ((void)0)
#define ISEX_JOURNAL_SCOPE(rid) ((void)0)
#endif
