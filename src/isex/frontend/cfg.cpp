#include "isex/frontend/cfg.hpp"

#include <string>
#include <utility>

namespace isex::frontend {

namespace {

FrontendError err(FrontendErrorCode code, std::string msg,
                  std::uint64_t offset = 0) {
  FrontendError e;
  e.code = code;
  e.message = std::move(msg);
  e.offset = offset;
  return e;
}

/// Decoded view of one executable span: a fixed 4-byte grid from its base.
struct SpanCode {
  std::uint32_t vaddr = 0;
  std::vector<rv::Inst> insts;
  std::vector<bool> leader;
};

/// Index of the span containing `addr` on its instruction grid, or -1.
int locate(const std::vector<SpanCode>& spans, std::uint32_t addr,
           std::size_t* index_out) {
  for (std::size_t s = 0; s < spans.size(); ++s) {
    const SpanCode& sc = spans[s];
    const std::uint64_t end =
        sc.vaddr + static_cast<std::uint64_t>(sc.insts.size()) * 4;
    if (addr < sc.vaddr || addr >= end) continue;
    if ((addr - sc.vaddr) % 4 != 0) return -1;  // between grid slots
    *index_out = (addr - sc.vaddr) / 4;
    return static_cast<int>(s);
  }
  return -1;
}

}  // namespace

CfgResult recover_cfg(const ElfImage& image, const FrontendLimits& limits,
                      robust::Budget* budget) {
  robust::BudgetShare share(budget);

  // Pass 1: total decode of every span.
  std::vector<SpanCode> spans;
  spans.reserve(image.exec.size());
  long total_insts = 0;
  long illegal = 0;
  for (const ExecSpan& es : image.exec) {
    const std::size_t n = es.bytes.size() / 4;
    total_insts += static_cast<long>(n);
    if (total_insts > limits.max_instructions)
      return err(FrontendErrorCode::kTooLarge,
                 "more than max_instructions (" +
                     std::to_string(limits.max_instructions) +
                     ") decodable words",
                 es.file_offset);
    SpanCode sc;
    sc.vaddr = es.vaddr;
    sc.insts.reserve(n);
    sc.leader.assign(n, false);
    for (std::size_t i = 0; i < n; ++i) {
      if (share.charge())
        return err(FrontendErrorCode::kBudget, "budget exhausted during decode",
                   es.vaddr + 4 * i);
      const std::size_t b = i * 4;
      const std::uint32_t w =
          static_cast<std::uint32_t>(es.bytes[b]) |
          (static_cast<std::uint32_t>(es.bytes[b + 1]) << 8) |
          (static_cast<std::uint32_t>(es.bytes[b + 2]) << 16) |
          (static_cast<std::uint32_t>(es.bytes[b + 3]) << 24);
      sc.insts.push_back(rv::decode(w));
      if (sc.insts.back().op == rv::Op::kIllegal) ++illegal;
    }
    spans.push_back(std::move(sc));
  }

  // Pass 2: leaders. Span starts, post-terminator slots, direct targets.
  for (SpanCode& sc : spans) {
    if (!sc.leader.empty()) sc.leader[0] = true;
  }
  for (std::size_t s0 = 0; s0 < spans.size(); ++s0) {
    SpanCode& sc = spans[s0];
    for (std::size_t i = 0; i < sc.insts.size(); ++i) {
      if (share.charge())
        return err(FrontendErrorCode::kBudget,
                   "budget exhausted during leader analysis",
                   sc.vaddr + 4 * i);
      const rv::Inst& in = sc.insts[i];
      const bool term =
          rv::is_terminator(in.op) || in.op == rv::Op::kIllegal;
      if (!term) continue;
      // The slot after a terminator starts a new block (if it exists).
      if (i + 1 < sc.leader.size()) sc.leader[i + 1] = true;
      if (rv::is_direct_branch(in.op)) {
        // pc-relative target; uint32 wrap is fine — a wrapped address simply
        // fails to land in any span.
        const std::uint32_t target =
            static_cast<std::uint32_t>(sc.vaddr + 4 * i) +
            static_cast<std::uint32_t>(in.imm);
        std::size_t slot = 0;
        const int s = locate(spans, target, &slot);
        if (s >= 0) spans[static_cast<std::size_t>(s)].leader[slot] = true;
      }
    }
  }

  // Pass 3: cut blocks at leaders and terminators.
  Cfg out;
  out.decoded_instructions = total_insts;
  out.illegal_instructions = illegal;
  for (const SpanCode& sc : spans) {
    Block cur;
    bool open = false;
    auto close = [&](bool fall_through, std::uint32_t next_addr) -> bool {
      if (!open) return true;
      if (out.blocks.size() >= static_cast<std::size_t>(limits.max_blocks))
        return false;
      cur.has_fall_through = fall_through;
      cur.fall_through = fall_through ? next_addr : 0;
      out.blocks.push_back(std::move(cur));
      cur = Block{};
      open = false;
      return true;
    };
    for (std::size_t i = 0; i < sc.insts.size(); ++i) {
      const std::uint32_t addr =
          static_cast<std::uint32_t>(sc.vaddr + 4 * i);
      if (sc.leader[i] && open) {
        if (!close(true, addr))
          return err(FrontendErrorCode::kTooLarge,
                     "more than max_blocks basic blocks", addr);
      }
      if (!open) {
        cur.start = addr;
        open = true;
      }
      cur.insts.push_back(DecodedInst{addr, sc.insts[i]});
      const rv::Inst& in = sc.insts[i];
      if (rv::is_terminator(in.op) || in.op == rv::Op::kIllegal) {
        if (rv::is_direct_branch(in.op)) {
          cur.has_target = true;
          cur.target = addr + static_cast<std::uint32_t>(in.imm);
        }
        // Conditional branches fall through; JAL/JALR/illegal do not.
        const bool falls =
            in.op != rv::Op::kJal && in.op != rv::Op::kJalr &&
            in.op != rv::Op::kIllegal && rv::is_terminator(in.op);
        if (!close(falls, addr + 4))
          return err(FrontendErrorCode::kTooLarge,
                     "more than max_blocks basic blocks", addr);
      }
    }
    if (!close(false, 0))
      return err(FrontendErrorCode::kTooLarge,
                 "more than max_blocks basic blocks",
                 sc.vaddr + 4 * sc.insts.size());
  }
  share.flush();
  if (share.stopped())
    return err(FrontendErrorCode::kBudget, "budget exhausted during recovery");
  return out;
}

}  // namespace isex::frontend
