// isex::frontend — a total RV32I decoder and its round-trip encoder.
//
// decode() is a *total function* over 32-bit words: every input maps to
// exactly one Inst, with unrecognized encodings mapped to Op::kIllegal (the
// raw word preserved) instead of a trap or an exception. The decoder is
// table-free in the data sense but fully case-covered in the control sense:
// the major-opcode switch and the funct3/funct7 sub-switches all have
// explicit default arms that produce kIllegal, so no byte pattern can reach
// undefined behavior. The encoder is the decoder's inverse on legal
// instructions — encode(decode(w)) == w for every w that decodes legally,
// and decode(encode(i)) == i for every well-formed Inst — which is what the
// round-trip tests and the hand-assembled fixtures are built on.
//
// Scope is exactly RV32I (the unprivileged base ISA): LUI/AUIPC, JAL/JALR,
// the six conditional branches, the five loads, the three stores, the nine
// OP-IMM ALU forms, the ten OP register forms, FENCE, ECALL and EBREAK.
// Compressed (16-bit) instructions and every extension decode to kIllegal.
#pragma once

#include <cstdint>
#include <string_view>

namespace isex::frontend::rv {

enum class Op : std::uint8_t {
  kLui, kAuipc,
  kJal, kJalr,
  kBeq, kBne, kBlt, kBge, kBltu, kBgeu,
  kLb, kLh, kLw, kLbu, kLhu,
  kSb, kSh, kSw,
  kAddi, kSlti, kSltiu, kXori, kOri, kAndi, kSlli, kSrli, kSrai,
  kAdd, kSub, kSll, kSlt, kSltu, kXor, kSrl, kSra, kOr, kAnd,
  kFence, kEcall, kEbreak,
  kIllegal,
  kCount,
};

std::string_view op_name(Op op);

/// One decoded instruction. Fields not used by the format are zero; `imm`
/// is already sign-extended (shift-immediates hold the 5-bit shamt).
struct Inst {
  Op op = Op::kIllegal;
  std::uint8_t rd = 0;
  std::uint8_t rs1 = 0;
  std::uint8_t rs2 = 0;
  std::int32_t imm = 0;
  std::uint32_t raw = 0;  // the encoded word (preserved for kIllegal)

  bool operator==(const Inst&) const = default;
};

/// Instruction format of an opcode (drives encode() and the fuzz harness).
enum class Format { kR, kI, kS, kB, kU, kJ, kSystem, kIllegal };
Format format_of(Op op);

/// Total decode: every 32-bit word yields an Inst; unknown encodings yield
/// Op::kIllegal with the word preserved in `raw`. Never throws.
Inst decode(std::uint32_t word);

/// Re-encodes a well-formed Inst (register fields < 32, immediate within
/// the format's range; callers own that contract — the fixture builders
/// below enforce it). For Op::kIllegal returns `raw` unchanged.
std::uint32_t encode(const Inst& inst);

/// True for control-transfer instructions that terminate a basic block.
bool is_terminator(Op op);
/// True for the direct branches/jumps whose target is pc + imm.
bool is_direct_branch(Op op);

// --- assembly-style builders for the in-tree fixtures -----------------------
// Each returns a fully-populated Inst; encode() turns them into words.

Inst lui(int rd, std::int32_t imm20);      // imm20 is the *upper* 20 bits
Inst auipc(int rd, std::int32_t imm20);
Inst jal(int rd, std::int32_t offset);     // byte offset, even, ±1 MiB
Inst jalr(int rd, int rs1, std::int32_t imm);
Inst branch(Op op, int rs1, int rs2, std::int32_t offset);
Inst load(Op op, int rd, int rs1, std::int32_t imm);
Inst store(Op op, int rs2, int rs1, std::int32_t imm);
Inst op_imm(Op op, int rd, int rs1, std::int32_t imm);
Inst op_reg(Op op, int rd, int rs1, int rs2);
Inst ecall();
Inst ebreak();

}  // namespace isex::frontend::rv
