// isex::frontend — basic-block recovery over a decoded instruction stream.
//
// Classic leader analysis restricted to what an untrusted stream can support:
// a leader is the first instruction of an executable span, the instruction
// after any terminator, or the target of a *direct* branch/jump whose target
// lands 4-aligned inside some span. Indirect control flow (JALR) terminates a
// block but contributes no leader — its targets are unknowable statically and
// guessing would let a hostile binary steer the recovery. Every block is a
// maximal leader-to-terminator run; illegal words terminate blocks too (the
// bytes after them may be data, and a lifter that ran through them would
// manufacture dataflow from garbage).
#pragma once

#include <cstdint>
#include <variant>
#include <vector>

#include "isex/frontend/elf.hpp"
#include "isex/frontend/rv32i.hpp"
#include "isex/robust/budget.hpp"

namespace isex::frontend {

struct DecodedInst {
  std::uint32_t addr = 0;
  rv::Inst inst;
};

/// One recovered basic block: a non-empty maximal straight-line run.
struct Block {
  std::uint32_t start = 0;
  std::vector<DecodedInst> insts;
  bool has_fall_through = false;  // execution can reach `start + 4*n`
  std::uint32_t fall_through = 0;
  bool has_target = false;        // ends in a direct branch/jump to `target`
  std::uint32_t target = 0;
};

struct Cfg {
  std::vector<Block> blocks;       // ascending start address
  long decoded_instructions = 0;   // every 32-bit word decoded (incl. illegal)
  long illegal_instructions = 0;
};

using CfgResult = std::variant<Cfg, FrontendError>;

/// Decodes every aligned 32-bit word of every executable span (1-3 trailing
/// bytes of a span are ignored — they cannot hold an RV32I instruction) and
/// partitions the stream into basic blocks. Total: every image yields either
/// a Cfg or a FrontendError (kTooLarge past a limit, kBudget when `budget`
/// exhausts). A null budget is unlimited.
CfgResult recover_cfg(const ElfImage& image, const FrontendLimits& limits,
                      robust::Budget* budget);

}  // namespace isex::frontend
