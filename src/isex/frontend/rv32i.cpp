#include "isex/frontend/rv32i.hpp"

namespace isex::frontend::rv {

namespace {

// Field extraction helpers. All shifts are on uint32_t, all sign extension
// goes through explicit two's-complement arithmetic on int64_t, so no UB for
// any input word.
constexpr std::uint32_t bits(std::uint32_t w, int hi, int lo) {
  return (w >> lo) & ((1u << (hi - lo + 1)) - 1u);
}
constexpr std::int32_t sext(std::uint32_t v, int width) {
  const std::uint32_t sign = 1u << (width - 1);
  return static_cast<std::int32_t>((v ^ sign)) - static_cast<std::int32_t>(sign);
}

constexpr std::int32_t imm_i(std::uint32_t w) { return sext(bits(w, 31, 20), 12); }
constexpr std::int32_t imm_s(std::uint32_t w) {
  return sext((bits(w, 31, 25) << 5) | bits(w, 11, 7), 12);
}
constexpr std::int32_t imm_b(std::uint32_t w) {
  return sext((bits(w, 31, 31) << 12) | (bits(w, 7, 7) << 11) |
                  (bits(w, 30, 25) << 5) | (bits(w, 11, 8) << 1),
              13);
}
constexpr std::int32_t imm_u(std::uint32_t w) {
  // The U immediate is the upper 20 bits; keep it as the shifted value's
  // upper-20 count (what lui/auipc builders take), not the <<12 form, so the
  // round trip is exact without worrying about low-bit garbage.
  return static_cast<std::int32_t>(sext(bits(w, 31, 12), 20));
}
constexpr std::int32_t imm_j(std::uint32_t w) {
  return sext((bits(w, 31, 31) << 20) | (bits(w, 19, 12) << 12) |
                  (bits(w, 20, 20) << 11) | (bits(w, 30, 21) << 1),
              21);
}

Inst make(Op op, std::uint32_t w, std::uint8_t rd, std::uint8_t rs1,
          std::uint8_t rs2, std::int32_t imm) {
  Inst i;
  i.op = op;
  i.rd = rd;
  i.rs1 = rs1;
  i.rs2 = rs2;
  i.imm = imm;
  i.raw = w;
  return i;
}

Inst illegal(std::uint32_t w) { return make(Op::kIllegal, w, 0, 0, 0, 0); }

}  // namespace

std::string_view op_name(Op op) {
  switch (op) {
    case Op::kLui: return "lui";
    case Op::kAuipc: return "auipc";
    case Op::kJal: return "jal";
    case Op::kJalr: return "jalr";
    case Op::kBeq: return "beq";
    case Op::kBne: return "bne";
    case Op::kBlt: return "blt";
    case Op::kBge: return "bge";
    case Op::kBltu: return "bltu";
    case Op::kBgeu: return "bgeu";
    case Op::kLb: return "lb";
    case Op::kLh: return "lh";
    case Op::kLw: return "lw";
    case Op::kLbu: return "lbu";
    case Op::kLhu: return "lhu";
    case Op::kSb: return "sb";
    case Op::kSh: return "sh";
    case Op::kSw: return "sw";
    case Op::kAddi: return "addi";
    case Op::kSlti: return "slti";
    case Op::kSltiu: return "sltiu";
    case Op::kXori: return "xori";
    case Op::kOri: return "ori";
    case Op::kAndi: return "andi";
    case Op::kSlli: return "slli";
    case Op::kSrli: return "srli";
    case Op::kSrai: return "srai";
    case Op::kAdd: return "add";
    case Op::kSub: return "sub";
    case Op::kSll: return "sll";
    case Op::kSlt: return "slt";
    case Op::kSltu: return "sltu";
    case Op::kXor: return "xor";
    case Op::kSrl: return "srl";
    case Op::kSra: return "sra";
    case Op::kOr: return "or";
    case Op::kAnd: return "and";
    case Op::kFence: return "fence";
    case Op::kEcall: return "ecall";
    case Op::kEbreak: return "ebreak";
    case Op::kIllegal: return "illegal";
    case Op::kCount: break;
  }
  return "?";
}

Format format_of(Op op) {
  switch (op) {
    case Op::kLui:
    case Op::kAuipc: return Format::kU;
    case Op::kJal: return Format::kJ;
    case Op::kJalr:
    case Op::kLb: case Op::kLh: case Op::kLw: case Op::kLbu: case Op::kLhu:
    case Op::kAddi: case Op::kSlti: case Op::kSltiu: case Op::kXori:
    case Op::kOri: case Op::kAndi: case Op::kSlli: case Op::kSrli:
    case Op::kSrai: return Format::kI;
    case Op::kBeq: case Op::kBne: case Op::kBlt: case Op::kBge:
    case Op::kBltu: case Op::kBgeu: return Format::kB;
    case Op::kSb: case Op::kSh: case Op::kSw: return Format::kS;
    case Op::kAdd: case Op::kSub: case Op::kSll: case Op::kSlt:
    case Op::kSltu: case Op::kXor: case Op::kSrl: case Op::kSra:
    case Op::kOr: case Op::kAnd: return Format::kR;
    case Op::kFence: case Op::kEcall: case Op::kEbreak: return Format::kSystem;
    case Op::kIllegal:
    case Op::kCount: break;
  }
  return Format::kIllegal;
}

Inst decode(std::uint32_t w) {
  // A 32-bit RV instruction has the two low bits set; anything else is a
  // compressed or reserved encoding — structurally illegal here.
  if ((w & 0x3u) != 0x3u || (w & 0x1cu) == 0x1cu) return illegal(w);
  const std::uint32_t opcode = bits(w, 6, 0);
  const auto rd = static_cast<std::uint8_t>(bits(w, 11, 7));
  const auto rs1 = static_cast<std::uint8_t>(bits(w, 19, 15));
  const auto rs2 = static_cast<std::uint8_t>(bits(w, 24, 20));
  const std::uint32_t f3 = bits(w, 14, 12);
  const std::uint32_t f7 = bits(w, 31, 25);

  switch (opcode) {
    case 0x37: return make(Op::kLui, w, rd, 0, 0, imm_u(w));
    case 0x17: return make(Op::kAuipc, w, rd, 0, 0, imm_u(w));
    case 0x6f: return make(Op::kJal, w, rd, 0, 0, imm_j(w));
    case 0x67:
      if (f3 != 0) return illegal(w);
      return make(Op::kJalr, w, rd, rs1, 0, imm_i(w));
    case 0x63: {
      Op op;
      switch (f3) {
        case 0: op = Op::kBeq; break;
        case 1: op = Op::kBne; break;
        case 4: op = Op::kBlt; break;
        case 5: op = Op::kBge; break;
        case 6: op = Op::kBltu; break;
        case 7: op = Op::kBgeu; break;
        default: return illegal(w);
      }
      return make(op, w, 0, rs1, rs2, imm_b(w));
    }
    case 0x03: {
      Op op;
      switch (f3) {
        case 0: op = Op::kLb; break;
        case 1: op = Op::kLh; break;
        case 2: op = Op::kLw; break;
        case 4: op = Op::kLbu; break;
        case 5: op = Op::kLhu; break;
        default: return illegal(w);
      }
      return make(op, w, rd, rs1, 0, imm_i(w));
    }
    case 0x23: {
      Op op;
      switch (f3) {
        case 0: op = Op::kSb; break;
        case 1: op = Op::kSh; break;
        case 2: op = Op::kSw; break;
        default: return illegal(w);
      }
      return make(op, w, 0, rs1, rs2, imm_s(w));
    }
    case 0x13: {
      switch (f3) {
        case 0: return make(Op::kAddi, w, rd, rs1, 0, imm_i(w));
        case 2: return make(Op::kSlti, w, rd, rs1, 0, imm_i(w));
        case 3: return make(Op::kSltiu, w, rd, rs1, 0, imm_i(w));
        case 4: return make(Op::kXori, w, rd, rs1, 0, imm_i(w));
        case 6: return make(Op::kOri, w, rd, rs1, 0, imm_i(w));
        case 7: return make(Op::kAndi, w, rd, rs1, 0, imm_i(w));
        case 1:
          if (f7 != 0) return illegal(w);
          return make(Op::kSlli, w, rd, rs1, 0,
                      static_cast<std::int32_t>(rs2));
        case 5:
          if (f7 == 0)
            return make(Op::kSrli, w, rd, rs1, 0,
                        static_cast<std::int32_t>(rs2));
          if (f7 == 0x20)
            return make(Op::kSrai, w, rd, rs1, 0,
                        static_cast<std::int32_t>(rs2));
          return illegal(w);
        default: return illegal(w);
      }
    }
    case 0x33: {
      if (f7 == 0) {
        switch (f3) {
          case 0: return make(Op::kAdd, w, rd, rs1, rs2, 0);
          case 1: return make(Op::kSll, w, rd, rs1, rs2, 0);
          case 2: return make(Op::kSlt, w, rd, rs1, rs2, 0);
          case 3: return make(Op::kSltu, w, rd, rs1, rs2, 0);
          case 4: return make(Op::kXor, w, rd, rs1, rs2, 0);
          case 5: return make(Op::kSrl, w, rd, rs1, rs2, 0);
          case 6: return make(Op::kOr, w, rd, rs1, rs2, 0);
          case 7: return make(Op::kAnd, w, rd, rs1, rs2, 0);
          default: return illegal(w);
        }
      }
      if (f7 == 0x20) {
        if (f3 == 0) return make(Op::kSub, w, rd, rs1, rs2, 0);
        if (f3 == 5) return make(Op::kSra, w, rd, rs1, rs2, 0);
        return illegal(w);
      }
      return illegal(w);
    }
    case 0x0f:
      if (f3 != 0) return illegal(w);
      return make(Op::kFence, w, rd, rs1, 0, imm_i(w));
    case 0x73:
      if (f3 != 0 || rd != 0 || rs1 != 0) return illegal(w);
      if (bits(w, 31, 20) == 0) return make(Op::kEcall, w, 0, 0, 0, 0);
      if (bits(w, 31, 20) == 1) return make(Op::kEbreak, w, 0, 0, 0, 0);
      return illegal(w);
    default:
      return illegal(w);
  }
}

namespace {

std::uint32_t major_opcode(Op op) {
  switch (format_of(op)) {
    case Format::kU: return op == Op::kLui ? 0x37u : 0x17u;
    case Format::kJ: return 0x6fu;
    case Format::kB: return 0x63u;
    case Format::kS: return 0x23u;
    case Format::kR: return 0x33u;
    case Format::kI:
      if (op == Op::kJalr) return 0x67u;
      if (op == Op::kLb || op == Op::kLh || op == Op::kLw || op == Op::kLbu ||
          op == Op::kLhu)
        return 0x03u;
      return 0x13u;
    case Format::kSystem: return op == Op::kFence ? 0x0fu : 0x73u;
    case Format::kIllegal: break;
  }
  return 0;
}

std::uint32_t funct3(Op op) {
  switch (op) {
    case Op::kJalr: case Op::kBeq: case Op::kLb: case Op::kSb:
    case Op::kAddi: case Op::kAdd: case Op::kSub: case Op::kFence:
      return 0;
    case Op::kBne: case Op::kLh: case Op::kSh: case Op::kSlli:
    case Op::kSll:
      return 1;
    case Op::kLw: case Op::kSw: case Op::kSlti: case Op::kSlt:
      return 2;
    case Op::kSltiu: case Op::kSltu:
      return 3;
    case Op::kBlt: case Op::kLbu: case Op::kXori: case Op::kXor:
      return 4;
    case Op::kBge: case Op::kLhu: case Op::kSrli: case Op::kSrai:
    case Op::kSrl: case Op::kSra:
      return 5;
    case Op::kBltu: case Op::kOri: case Op::kOr:
      return 6;
    case Op::kBgeu: case Op::kAndi: case Op::kAnd:
      return 7;
    default:
      return 0;
  }
}

std::uint32_t funct7(Op op) {
  return (op == Op::kSub || op == Op::kSra || op == Op::kSrai) ? 0x20u : 0u;
}

}  // namespace

std::uint32_t encode(const Inst& i) {
  if (i.op == Op::kIllegal || i.op == Op::kCount) return i.raw;
  if (i.op == Op::kEcall) return 0x00000073u;
  if (i.op == Op::kEbreak) return 0x00100073u;
  const std::uint32_t opc = major_opcode(i.op);
  const std::uint32_t rd = (static_cast<std::uint32_t>(i.rd) & 31u) << 7;
  const std::uint32_t rs1 = (static_cast<std::uint32_t>(i.rs1) & 31u) << 15;
  const std::uint32_t rs2 = (static_cast<std::uint32_t>(i.rs2) & 31u) << 20;
  const std::uint32_t f3 = funct3(i.op) << 12;
  const auto uimm = static_cast<std::uint32_t>(i.imm);
  switch (format_of(i.op)) {
    case Format::kU:
      return ((uimm & 0xfffffu) << 12) | rd | opc;
    case Format::kJ:
      return (((uimm >> 20) & 1u) << 31) | (((uimm >> 1) & 0x3ffu) << 21) |
             (((uimm >> 11) & 1u) << 20) | (((uimm >> 12) & 0xffu) << 12) |
             rd | opc;
    case Format::kI:
      if (i.op == Op::kSlli || i.op == Op::kSrli || i.op == Op::kSrai)
        return (funct7(i.op) << 25) | ((uimm & 31u) << 20) | rs1 | f3 | rd |
               opc;
      return ((uimm & 0xfffu) << 20) | rs1 | f3 | rd | opc;
    case Format::kS:
      return (((uimm >> 5) & 0x7fu) << 25) | rs2 | rs1 | f3 |
             ((uimm & 0x1fu) << 7) | opc;
    case Format::kB:
      return (((uimm >> 12) & 1u) << 31) | (((uimm >> 5) & 0x3fu) << 25) |
             rs2 | rs1 | f3 | (((uimm >> 1) & 0xfu) << 8) |
             (((uimm >> 11) & 1u) << 7) | opc;
    case Format::kR:
      return (funct7(i.op) << 25) | rs2 | rs1 | f3 | rd | opc;
    case Format::kSystem:  // fence (ecall/ebreak handled above)
      return ((uimm & 0xfffu) << 20) | rs1 | f3 | rd | opc;
    case Format::kIllegal:
      break;
  }
  return i.raw;
}

bool is_terminator(Op op) {
  switch (op) {
    case Op::kJal: case Op::kJalr:
    case Op::kBeq: case Op::kBne: case Op::kBlt: case Op::kBge:
    case Op::kBltu: case Op::kBgeu:
    case Op::kEcall: case Op::kEbreak:
      return true;
    default:
      return false;
  }
}

bool is_direct_branch(Op op) {
  switch (op) {
    case Op::kJal:
    case Op::kBeq: case Op::kBne: case Op::kBlt: case Op::kBge:
    case Op::kBltu: case Op::kBgeu:
      return true;
    default:
      return false;
  }
}

namespace {
Inst built(Op op, int rd, int rs1, int rs2, std::int32_t imm) {
  Inst i;
  i.op = op;
  i.rd = static_cast<std::uint8_t>(rd);
  i.rs1 = static_cast<std::uint8_t>(rs1);
  i.rs2 = static_cast<std::uint8_t>(rs2);
  i.imm = imm;
  i.raw = encode(i);
  return i;
}
}  // namespace

Inst lui(int rd, std::int32_t imm20) { return built(Op::kLui, rd, 0, 0, imm20); }
Inst auipc(int rd, std::int32_t imm20) {
  return built(Op::kAuipc, rd, 0, 0, imm20);
}
Inst jal(int rd, std::int32_t offset) {
  return built(Op::kJal, rd, 0, 0, offset);
}
Inst jalr(int rd, int rs1, std::int32_t imm) {
  return built(Op::kJalr, rd, rs1, 0, imm);
}
Inst branch(Op op, int rs1, int rs2, std::int32_t offset) {
  return built(op, 0, rs1, rs2, offset);
}
Inst load(Op op, int rd, int rs1, std::int32_t imm) {
  return built(op, rd, rs1, 0, imm);
}
Inst store(Op op, int rs2, int rs1, std::int32_t imm) {
  return built(op, 0, rs1, rs2, imm);
}
Inst op_imm(Op op, int rd, int rs1, std::int32_t imm) {
  return built(op, rd, rs1, 0, imm);
}
Inst op_reg(Op op, int rd, int rs1, int rs2) {
  return built(op, rd, rs1, rs2, 0);
}
Inst ecall() { return built(Op::kEcall, 0, 0, 0, 0); }
Inst ebreak() { return built(Op::kEbreak, 0, 0, 0, 0); }

}  // namespace isex::frontend::rv
