// isex::frontend — a bounded ELF32 container reader.
//
// Reads exactly what the lifter needs — the executable byte ranges and their
// virtual addresses — from an untrusted ELF32 image, and nothing else. The
// discipline: every multi-byte field is read through a bounds-checked cursor
// over the caller's span (no pointer arithmetic past the mapped bytes, no
// reinterpret_cast of file bytes into structs), every offset+size product is
// computed in 64-bit and checked against the image size before use, and
// every violation is a typed FrontendError naming the offending file offset.
// Section headers (SHF_EXECINSTR) are preferred because they bound .text
// tightly; images whose section table is absent or lies fall back to the
// PT_LOAD/PF_X program headers.
#pragma once

#include <cstdint>
#include <span>
#include <variant>
#include <vector>

#include "isex/frontend/limits.hpp"

namespace isex::frontend {

/// One executable range of the image: `bytes` aliases the input span (the
/// caller keeps the image alive), `vaddr` is where those bytes execute.
struct ExecSpan {
  std::uint32_t vaddr = 0;
  std::uint32_t file_offset = 0;
  std::span<const std::uint8_t> bytes;
};

struct ElfImage {
  std::uint32_t entry = 0;
  std::uint16_t machine = 0;
  std::vector<ExecSpan> exec;   // ascending vaddr, non-empty
};

using ElfResult = std::variant<ElfImage, FrontendError>;

/// EM_RISCV; the only machine the decoder understands.
inline constexpr std::uint16_t kMachineRiscv = 243;

/// Total parse of an ELF32 little-endian RISC-V image. Every byte stream
/// returns either a validated ElfImage whose spans all lie inside `image`,
/// or a FrontendError — never throws, never reads out of bounds.
ElfResult parse_elf32(std::span<const std::uint8_t> image,
                      const FrontendLimits& limits);

}  // namespace isex::frontend
