// isex::frontend — resource ceilings and the structured-error vocabulary of
// the untrusted-binary frontend.
//
// A compiled binary is the most hostile input this system ingests: headers
// lie about sizes, offsets wrap, segments overlap, and instruction streams
// are arbitrary bytes. The frontend therefore follows the same discipline as
// serve's request parser — every limit is an explicit, RequestLimits-style
// ceiling checked before the corresponding allocation or loop, and every
// failure is a typed value, never an exception escaping the module and never
// undefined behavior. A caller that respects LiftResult's variant cannot
// observe a crash, a hang, or an unbounded allocation no matter what bytes
// it feeds in.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace isex::frontend {

/// Hard ceilings on what one binary may ask of the frontend. Sizes above a
/// cap are rejected with a structured error (a size says "parse more" and
/// has no graceful partial answer); the separate robust::Budget threaded
/// through LiftOptions says "work more" and truncates gracefully.
struct FrontendLimits {
  std::size_t max_file_bytes = 8u << 20;   // whole container file
  std::size_t max_text_bytes = 2u << 20;   // total executable bytes decoded
  int max_segments = 64;                   // ELF program headers
  int max_sections = 256;                  // ELF section headers
  int max_exec_spans = 32;                 // distinct executable ranges
  long max_instructions = 1 << 20;         // decoded 32-bit words
  int max_blocks = 8192;                   // recovered basic blocks
  int max_nodes_per_block = 8192;          // lifted DFG nodes per block
  long max_total_nodes = 1 << 20;          // lifted DFG nodes per binary
};

enum class FrontendErrorCode {
  kIo,             // the file could not be read at all
  kTooLarge,       // a FrontendLimits size ceiling was exceeded
  kNotElf,         // missing/foreign magic, wrong class/endianness/machine
  kBadElf,         // well-magic'd container with lying headers (overflow,
                   // out-of-range offsets, truncated tables)
  kNoCode,         // structurally valid container with nothing executable
  kBudget,         // the cooperative robust::Budget exhausted mid-lift
  kInternal,       // the lifter violated its own postcondition (a lifted
                   // DFG failed certification) — a frontend bug, surfaced
                   // as a structured error instead of poisoning a solver
};

const char* to_string(FrontendErrorCode c);

/// The typed failure half of every frontend result. `offset` is the file
/// offset (or instruction address, for decode-stage errors) that triggered
/// the rejection, so a fuzz finding names its byte.
struct FrontendError {
  FrontendErrorCode code = FrontendErrorCode::kBadElf;
  std::string message;
  std::uint64_t offset = 0;

  std::string render() const;  // "bad_elf: <message> (offset 0x...)"
};

}  // namespace isex::frontend
