#include "isex/frontend/fixtures.hpp"

#include "isex/frontend/elf.hpp"

namespace isex::frontend {

namespace {

using rv::Inst;
using rv::Op;

// ABI register numbers used below, for readability.
constexpr int ra = 1;
constexpr int t0 = 5, t1 = 6, t2 = 7, t3 = 28, t4 = 29, t5 = 30, t6 = 31;
constexpr int s0 = 8, s1 = 9, s2 = 18, s3 = 19, s4 = 20;
constexpr int a0 = 10, a1 = 11, a2 = 12, a3 = 13;

/// Backward branch to instruction index `head` of the same sequence; the
/// branch itself sits at v.size() when pushed.
std::int32_t back_to(const std::vector<Inst>& v, int head) {
  return 4 * (head - static_cast<int>(v.size()));
}

/// crc32 — MiBench bit-serial CRC: one table-driven byte step
/// ((crc>>8) ^ table[(crc^byte)&0xff]) plus four unrolled reflection folds
/// (the shr/neg/and/xor idiom), matching make_crc32's bit_steps block.
std::vector<Inst> asm_crc32() {
  std::vector<Inst> v;
  const int loop = 0;
  v.push_back(rv::load(Op::kLbu, t0, a0, 0));          // byte = *p
  v.push_back(rv::op_reg(Op::kXor, t1, s0, t0));       // crc ^ byte
  v.push_back(rv::op_imm(Op::kAndi, t2, t1, 255));
  v.push_back(rv::op_imm(Op::kSlli, t3, t2, 2));
  v.push_back(rv::op_reg(Op::kAdd, t4, a2, t3));       // &table[idx]
  v.push_back(rv::load(Op::kLw, t5, t4, 0));
  v.push_back(rv::op_imm(Op::kSrli, t6, s0, 8));
  v.push_back(rv::op_reg(Op::kXor, s0, t6, t5));       // crc update
  for (int bit = 0; bit < 4; ++bit) {                  // reflection folds
    v.push_back(rv::op_imm(Op::kAndi, t0, s1, 1));
    v.push_back(rv::op_imm(Op::kSrli, s1, s1, 1));
    v.push_back(rv::op_reg(Op::kSub, t1, 0, t0));      // -(fold & 1)
    v.push_back(rv::op_reg(Op::kAnd, t2, t1, a3));     // & poly
    v.push_back(rv::op_reg(Op::kXor, s1, s1, t2));
  }
  v.push_back(rv::op_imm(Op::kAddi, a0, a0, 1));
  v.push_back(rv::branch(Op::kBne, a0, a1, back_to(v, loop)));
  v.push_back(rv::jalr(0, ra, 0));                     // ret
  return v;
}

/// sha — SHA-1 style rounds: rotl-by-5 spelled slli/srli/or (RV32I has no
/// rotate), xor/and majority mix, triple accumulate — make_sha's
/// compress_rounds idiom (emit_hash_round: rotl, xor, add, and).
std::vector<Inst> asm_sha() {
  std::vector<Inst> v;
  const int loop = 0;
  v.push_back(rv::load(Op::kLw, t0, a0, 0));           // w[i]
  for (int round = 0; round < 3; ++round) {
    v.push_back(rv::op_imm(Op::kSlli, t1, s0, 5));
    v.push_back(rv::op_imm(Op::kSrli, t2, s0, 27));
    v.push_back(rv::op_reg(Op::kOr, t3, t1, t2));      // rotl(a, 5)
    v.push_back(rv::op_reg(Op::kXor, t4, s1, s2));     // b ^ c
    v.push_back(rv::op_reg(Op::kAnd, t5, t4, s3));     // & d
    v.push_back(rv::op_reg(Op::kAdd, s4, s4, t3));
    v.push_back(rv::op_reg(Op::kAdd, s4, s4, t5));
    v.push_back(rv::op_reg(Op::kAdd, s4, s4, t0));     // + w
    v.push_back(rv::op_imm(Op::kSlli, t1, s1, 30));    // b = rotl(b, 30)
    v.push_back(rv::op_imm(Op::kSrli, t2, s1, 2));
    v.push_back(rv::op_reg(Op::kOr, s1, t1, t2));
  }
  v.push_back(rv::op_imm(Op::kAddi, a0, a0, 4));
  v.push_back(rv::branch(Op::kBne, a0, a1, back_to(v, loop)));
  v.push_back(rv::jalr(0, ra, 0));
  return v;
}

/// dijkstra — the relax_edge loop: two loads, candidate add, the compare-
/// and-conditionally-store relax update (a real compiler keeps the branch
/// here; make_dijkstra models the same update as kSelect + kStore, so the
/// op-mix categories line up: memory + compare/select heavy, light arith).
std::vector<Inst> asm_dijkstra() {
  std::vector<Inst> v;
  const int loop = 0;
  v.push_back(rv::load(Op::kLw, t0, a1, 0));           // edge weight
  v.push_back(rv::op_reg(Op::kAdd, t1, a0, t0));       // cand = du + w
  v.push_back(rv::load(Op::kLw, t2, a3, 0));           // dv = dist[v]
  v.push_back(rv::branch(Op::kBge, t1, t2, 8));        // cand >= dv: skip
  v.push_back(rv::store(Op::kSw, t1, a3, 0));          // relax: dist[v]=cand
  v.push_back(rv::op_imm(Op::kAddi, a1, a1, 4));       // skip:
  v.push_back(rv::op_imm(Op::kAddi, a3, a3, 4));
  v.push_back(rv::branch(Op::kBne, a1, a2, back_to(v, loop)));
  v.push_back(rv::jalr(0, ra, 0));
  return v;
}

/// adpcm_enc — the encoder step: sub-word sample load, difference, the
/// sra/xor/sub absolute-value idiom, step-size shifts and the quantizer
/// compare cascade, sub-word store of the code.
std::vector<Inst> asm_adpcm() {
  std::vector<Inst> v;
  const int loop = 0;
  v.push_back(rv::load(Op::kLh, t0, a0, 0));           // sample
  v.push_back(rv::op_reg(Op::kSub, t1, t0, s1));       // diff = s - valpred
  v.push_back(rv::op_imm(Op::kSrai, t2, t1, 31));      // sign
  v.push_back(rv::op_reg(Op::kXor, t3, t1, t2));
  v.push_back(rv::op_reg(Op::kSub, t3, t3, t2));       // abs(diff)
  v.push_back(rv::op_imm(Op::kSrli, t4, s2, 3));       // step >> 3
  v.push_back(rv::op_reg(Op::kSlt, t5, t4, t3));       // quantize bit 2
  v.push_back(rv::op_imm(Op::kSlli, t6, t5, 2));
  v.push_back(rv::op_imm(Op::kSrli, s3, s2, 1));       // step >> 1
  v.push_back(rv::op_reg(Op::kSlt, s4, s3, t3));       // quantize bit 0
  v.push_back(rv::op_reg(Op::kOr, t6, t6, s4));        // code
  v.push_back(rv::op_reg(Op::kAdd, s1, s1, t4));       // valpred update
  v.push_back(rv::store(Op::kSb, t6, a1, 0));
  v.push_back(rv::op_imm(Op::kAddi, a0, a0, 2));
  v.push_back(rv::op_imm(Op::kAddi, a1, a1, 1));
  v.push_back(rv::branch(Op::kBne, a0, a2, back_to(v, loop)));
  v.push_back(rv::jalr(0, ra, 0));
  return v;
}

/// stringsearch — Boyer-Moore-Horspool: the skip-table probe block
/// (mask/load/advance, make_stringsearch's skip_probe) falling into a
/// two-load xor/compare tail block, with the backward branch giving the
/// fixture real multi-block structure.
std::vector<Inst> asm_stringsearch() {
  std::vector<Inst> v;
  const int probe = 0;
  v.push_back(rv::load(Op::kLbu, t0, a0, 0));          // window char
  v.push_back(rv::op_imm(Op::kAndi, t1, t0, 255));
  v.push_back(rv::op_reg(Op::kAdd, t2, a2, t1));       // &skip[ch]
  v.push_back(rv::load(Op::kLbu, t3, t2, 0));
  v.push_back(rv::op_reg(Op::kAdd, a0, a0, t3));       // advance window
  v.push_back(rv::branch(Op::kBltu, a0, a3, back_to(v, probe)));
  // tail compare (fall-through when the window passed the end)
  v.push_back(rv::load(Op::kLw, t4, a0, 0));
  v.push_back(rv::load(Op::kLw, t5, a1, 0));
  v.push_back(rv::op_reg(Op::kXor, t6, t4, t5));
  v.push_back(rv::op_imm(Op::kSltiu, s0, t6, 1));      // equal?
  v.push_back(rv::jalr(0, ra, 0));
  return v;
}

Fixture build(std::string name, std::string reference,
              std::vector<Inst> insts) {
  Fixture f;
  f.name = std::move(name);
  f.reference = std::move(reference);
  f.insts = std::move(insts);
  f.elf = make_elf32(encode_all(f.insts), 0x10000);
  return f;
}

}  // namespace

std::vector<std::uint32_t> encode_all(std::span<const rv::Inst> insts) {
  std::vector<std::uint32_t> words;
  words.reserve(insts.size());
  for (const rv::Inst& i : insts) words.push_back(rv::encode(i));
  return words;
}

std::vector<std::uint8_t> make_elf32(std::span<const std::uint32_t> words,
                                     std::uint32_t vaddr) {
  constexpr std::uint32_t kEhdr = 52, kPhdr = 32, kShdr = 40;
  const std::uint32_t text_off = kEhdr + kPhdr;
  const std::uint32_t text_size = static_cast<std::uint32_t>(words.size()) * 4;
  const std::uint32_t shoff = text_off + text_size;
  std::vector<std::uint8_t> out(shoff + 2 * kShdr, 0);

  auto put16 = [&](std::uint32_t off, std::uint16_t x) {
    out[off] = static_cast<std::uint8_t>(x);
    out[off + 1] = static_cast<std::uint8_t>(x >> 8);
  };
  auto put32 = [&](std::uint32_t off, std::uint32_t x) {
    for (int i = 0; i < 4; ++i)
      out[off + static_cast<std::uint32_t>(i)] =
          static_cast<std::uint8_t>(x >> (8 * i));
  };

  // ELF header.
  out[0] = 0x7f; out[1] = 'E'; out[2] = 'L'; out[3] = 'F';
  out[4] = 1;  // ELFCLASS32
  out[5] = 1;  // little-endian
  out[6] = 1;  // EV_CURRENT
  put16(16, 2);             // e_type: EXEC
  put16(18, kMachineRiscv); // e_machine
  put32(20, 1);             // e_version
  put32(24, vaddr);         // e_entry
  put32(28, kEhdr);         // e_phoff
  put32(32, shoff);         // e_shoff
  put16(40, static_cast<std::uint16_t>(kEhdr));  // e_ehsize
  put16(42, static_cast<std::uint16_t>(kPhdr));  // e_phentsize
  put16(44, 1);             // e_phnum
  put16(46, static_cast<std::uint16_t>(kShdr));  // e_shentsize
  put16(48, 2);             // e_shnum (null + .text)
  put16(50, 0);             // e_shstrndx

  // Program header: one PT_LOAD, R+X, covering .text exactly.
  put32(kEhdr + 0, 1);          // p_type: PT_LOAD
  put32(kEhdr + 4, text_off);   // p_offset
  put32(kEhdr + 8, vaddr);      // p_vaddr
  put32(kEhdr + 12, vaddr);     // p_paddr
  put32(kEhdr + 16, text_size); // p_filesz
  put32(kEhdr + 20, text_size); // p_memsz
  put32(kEhdr + 24, 5);         // p_flags: R | X
  put32(kEhdr + 28, 4);         // p_align

  // .text bytes.
  for (std::size_t i = 0; i < words.size(); ++i)
    put32(text_off + static_cast<std::uint32_t>(i) * 4, words[i]);

  // Section headers: index 0 stays all-zero (SHN_UNDEF); index 1 is .text.
  const std::uint32_t sh = shoff + kShdr;
  put32(sh + 4, 1);           // sh_type: PROGBITS
  put32(sh + 8, 0x2 | 0x4);   // sh_flags: ALLOC | EXECINSTR
  put32(sh + 12, vaddr);      // sh_addr
  put32(sh + 16, text_off);   // sh_offset
  put32(sh + 20, text_size);  // sh_size
  put32(sh + 32, 4);          // sh_addralign
  return out;
}

const std::vector<Fixture>& fixtures() {
  static const std::vector<Fixture> all = [] {
    std::vector<Fixture> v;
    v.push_back(build("crc32", "crc32", asm_crc32()));
    v.push_back(build("sha", "sha", asm_sha()));
    v.push_back(build("dijkstra", "dijkstra", asm_dijkstra()));
    v.push_back(build("adpcm_enc", "adpcm_enc", asm_adpcm()));
    v.push_back(build("stringsearch", "stringsearch", asm_stringsearch()));
    return v;
  }();
  return all;
}

}  // namespace isex::frontend
