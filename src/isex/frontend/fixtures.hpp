// isex::frontend — hand-assembled RV32I fixtures for the lifter.
//
// Five MiBench-style inner loops (the benchmarks the thesis profiles and the
// synthetic generators calibrate against), written instruction by instruction
// with the rv:: builders and packed into minimal ELF32 images by the in-tree
// writer. They serve three masters: the decoder round-trip tests (every word
// here must decode back to the Inst that built it), the lifter tests (each
// fixture's lifted op mix is cross-validated against its calibrated
// synthetic counterpart in workloads::make_benchmark), and the end-to-end
// CLI tests (`isex lift` on a fixture file must certify and produce a
// config curve). Deterministic by construction — no randomness, no host
// toolchain.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "isex/frontend/rv32i.hpp"

namespace isex::frontend {

struct Fixture {
  std::string name;       // fixture id, e.g. "crc32"
  std::string reference;  // workloads::make_benchmark name to cross-validate
  std::vector<rv::Inst> insts;       // the assembled instruction sequence
  std::vector<std::uint8_t> elf;     // complete ELF32 image of the code
};

/// All five fixtures: crc32, sha, dijkstra, adpcm_enc, stringsearch.
/// Built on first use; the result is immutable and deterministic.
const std::vector<Fixture>& fixtures();

/// Wraps instruction words into a minimal ELF32 RISC-V executable: one
/// PF_X PT_LOAD segment and one SHF_EXECINSTR .text section, both covering
/// exactly the given words at `vaddr`.
std::vector<std::uint8_t> make_elf32(std::span<const std::uint32_t> words,
                                     std::uint32_t vaddr);

/// Encodes a sequence of built instructions into their words.
std::vector<std::uint32_t> encode_all(std::span<const rv::Inst> insts);

}  // namespace isex::frontend
