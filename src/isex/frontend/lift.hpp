// isex::frontend — per-block DFG lifting of recovered RV32I code.
//
// Lifts each recovered basic block into an ir::Dfg on the calibrated op
// alphabet by classic register dataflow: a map from architectural register
// to the node currently holding its value. A register read before any local
// write becomes a kInput leaf (live-in); immediates, LUI/AUIPC results and
// link addresses become deduplicated kConst leaves (their values are known
// at lift time); every register still holding a locally computed value at
// the block end is marked live-out. Memory and control operations map to
// the alphabet's invalid opcodes (kLoad/kStore/kBranch/kCall) and thereby
// act as region separators, exactly like the synthetic generators' blocks.
//
// Sub-word memory traffic keeps its extraction explicit: LB/LH/LBU/LHU lift
// to kSext(kLoad(addr)) and SB/SH store a kSext of the value, so the lifted
// op mix exposes the same sext-rich structure the thesis measured in MiBench.
// XORI rd, rs, -1 lifts to kNot — the idiom every compiler emits for
// bitwise complement.
//
// Postcondition (enforced, not assumed): every lifted block passes
// certify::check_dfg, the independent well-formedness witness. A violation
// means a lifter bug and surfaces as FrontendErrorCode::kInternal — a
// structured error to the caller, never a malformed graph to a solver.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <variant>

#include "isex/frontend/cfg.hpp"
#include "isex/ir/program.hpp"

namespace isex::frontend {

struct LiftOptions {
  FrontendLimits limits;
  robust::Budget* budget = nullptr;  // null: unlimited
  /// Skip the certify::check_dfg postcondition gate (only the fuzz harness
  /// uses this, to time the lift path in isolation; every production caller
  /// leaves it on).
  bool certify_blocks = true;
};

struct LiftStats {
  long decoded_instructions = 0;
  long illegal_instructions = 0;
  int blocks = 0;
  long nodes = 0;        // all DFG nodes, leaves included
  long operations = 0;   // computation nodes (Dfg::num_operations sum)
};

struct Lifted {
  ir::Program program;
  LiftStats stats;
};

using LiftResult = std::variant<Lifted, FrontendError>;

/// Lifts an already-recovered CFG. The program is one kSeq of all blocks
/// (straight-line timing-schema shape; loop structure recovery is out of
/// scope for the frontend).
LiftResult lift_cfg(const Cfg& cfg, std::string name, const LiftOptions& opts);

/// ELF bytes -> parse_elf32 -> recover_cfg -> lift_cfg, end to end.
LiftResult lift_elf(std::span<const std::uint8_t> file, std::string name,
                    const LiftOptions& opts);

/// Raw instruction words at a base address (no container), for `--raw`
/// inputs and the fuzz harness.
LiftResult lift_raw(std::span<const std::uint8_t> text, std::uint32_t vaddr,
                    std::string name, const LiftOptions& opts);

}  // namespace isex::frontend
