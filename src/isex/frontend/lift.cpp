#include "isex/frontend/lift.hpp"

#include <cstdio>
#include <map>
#include <utility>

#include "isex/certify/dfg.hpp"

namespace isex::frontend {

namespace {

using ir::Dfg;
using ir::NodeId;
using ir::Opcode;
using rv::Op;

FrontendError err(FrontendErrorCode code, std::string msg,
                  std::uint64_t offset = 0) {
  FrontendError e;
  e.code = code;
  e.message = std::move(msg);
  e.offset = offset;
  return e;
}

/// Register-dataflow state of one block being lifted.
struct BlockLifter {
  Dfg& dfg;
  NodeId reg[32];        // node currently holding each register; -1 unset
  bool local_def[32];    // register was written inside this block
  std::map<std::int32_t, NodeId> consts;  // per-block kConst dedup

  explicit BlockLifter(Dfg& d) : dfg(d) {
    for (int i = 0; i < 32; ++i) {
      reg[i] = -1;
      local_def[i] = false;
    }
  }

  NodeId konst(std::int32_t value) {
    auto it = consts.find(value);
    if (it != consts.end()) return it->second;
    const NodeId n = dfg.add(Opcode::kConst);
    consts.emplace(value, n);
    return n;
  }

  /// The node holding register r; x0 is the constant zero, a first read of
  /// any other register materializes a kInput (live-in value).
  NodeId use(int r) {
    if (r == 0) return konst(0);
    if (reg[r] < 0) reg[r] = dfg.add(Opcode::kInput);
    return reg[r];
  }

  /// Register write; x0 writes are architectural no-ops and the value node
  /// (already added) simply stays unconsumed.
  void def(int r, NodeId n) {
    if (r == 0) return;
    reg[r] = n;
    local_def[r] = true;
  }

  /// Effective address rs1 + imm, skipping the add when the offset is zero.
  NodeId address(int rs1, std::int32_t imm) {
    const NodeId base = use(rs1);
    if (imm == 0) return base;
    return dfg.add(Opcode::kAdd, {base, konst(imm)});
  }

  void finish() {
    for (int r = 1; r < 32; ++r)
      if (local_def[r] && reg[r] >= 0) dfg.mark_live_out(reg[r]);
  }
};

/// Lifts one instruction into the block's DFG. `pc` is the instruction's
/// address (LUI-less AUIPC/JAL link values are compile-time constants).
void lift_inst(BlockLifter& bl, const DecodedInst& di) {
  const rv::Inst& in = di.inst;
  const std::uint32_t pc = di.addr;
  auto upper = [](std::int32_t imm20) {
    return static_cast<std::int32_t>(static_cast<std::uint32_t>(imm20) << 12);
  };
  switch (in.op) {
    case Op::kLui:
      bl.def(in.rd, bl.konst(upper(in.imm)));
      break;
    case Op::kAuipc:
      bl.def(in.rd, bl.konst(static_cast<std::int32_t>(
                        pc + static_cast<std::uint32_t>(upper(in.imm)))));
      break;

    case Op::kAddi:
      if (in.rs1 == 0)
        bl.def(in.rd, bl.konst(in.imm));         // li
      else if (in.imm == 0)
        bl.def(in.rd, bl.use(in.rs1));           // mv: alias, no node
      else
        bl.def(in.rd,
               bl.dfg.add(Opcode::kAdd, {bl.use(in.rs1), bl.konst(in.imm)}));
      break;
    case Op::kSlti:
    case Op::kSltiu:
      bl.def(in.rd,
             bl.dfg.add(Opcode::kCmp, {bl.use(in.rs1), bl.konst(in.imm)}));
      break;
    case Op::kXori:
      if (in.imm == -1)
        bl.def(in.rd, bl.dfg.add(Opcode::kNot, {bl.use(in.rs1)}));  // not
      else
        bl.def(in.rd,
               bl.dfg.add(Opcode::kXor, {bl.use(in.rs1), bl.konst(in.imm)}));
      break;
    case Op::kOri:
      bl.def(in.rd,
             bl.dfg.add(Opcode::kOr, {bl.use(in.rs1), bl.konst(in.imm)}));
      break;
    case Op::kAndi:
      bl.def(in.rd,
             bl.dfg.add(Opcode::kAnd, {bl.use(in.rs1), bl.konst(in.imm)}));
      break;
    case Op::kSlli:
      bl.def(in.rd,
             bl.dfg.add(Opcode::kShl, {bl.use(in.rs1), bl.konst(in.imm)}));
      break;
    case Op::kSrli:
    case Op::kSrai:
      bl.def(in.rd,
             bl.dfg.add(Opcode::kShr, {bl.use(in.rs1), bl.konst(in.imm)}));
      break;

    case Op::kAdd:
      bl.def(in.rd,
             bl.dfg.add(Opcode::kAdd, {bl.use(in.rs1), bl.use(in.rs2)}));
      break;
    case Op::kSub:
      bl.def(in.rd,
             bl.dfg.add(Opcode::kSub, {bl.use(in.rs1), bl.use(in.rs2)}));
      break;
    case Op::kSll:
      bl.def(in.rd,
             bl.dfg.add(Opcode::kShl, {bl.use(in.rs1), bl.use(in.rs2)}));
      break;
    case Op::kSrl:
    case Op::kSra:
      bl.def(in.rd,
             bl.dfg.add(Opcode::kShr, {bl.use(in.rs1), bl.use(in.rs2)}));
      break;
    case Op::kSlt:
    case Op::kSltu:
      bl.def(in.rd,
             bl.dfg.add(Opcode::kCmp, {bl.use(in.rs1), bl.use(in.rs2)}));
      break;
    case Op::kXor:
      bl.def(in.rd,
             bl.dfg.add(Opcode::kXor, {bl.use(in.rs1), bl.use(in.rs2)}));
      break;
    case Op::kOr:
      bl.def(in.rd,
             bl.dfg.add(Opcode::kOr, {bl.use(in.rs1), bl.use(in.rs2)}));
      break;
    case Op::kAnd:
      bl.def(in.rd,
             bl.dfg.add(Opcode::kAnd, {bl.use(in.rs1), bl.use(in.rs2)}));
      break;

    case Op::kLw:
      bl.def(in.rd,
             bl.dfg.add(Opcode::kLoad, {bl.address(in.rs1, in.imm)}));
      break;
    case Op::kLb:
    case Op::kLh:
    case Op::kLbu:
    case Op::kLhu: {
      const NodeId ld =
          bl.dfg.add(Opcode::kLoad, {bl.address(in.rs1, in.imm)});
      bl.def(in.rd, bl.dfg.add(Opcode::kSext, {ld}));
      break;
    }
    case Op::kSw:
      bl.dfg.add(Opcode::kStore,
                 {bl.address(in.rs1, in.imm), bl.use(in.rs2)});
      break;
    case Op::kSb:
    case Op::kSh: {
      const NodeId narrowed = bl.dfg.add(Opcode::kSext, {bl.use(in.rs2)});
      bl.dfg.add(Opcode::kStore, {bl.address(in.rs1, in.imm), narrowed});
      break;
    }

    case Op::kBeq:
    case Op::kBne:
    case Op::kBlt:
    case Op::kBge:
    case Op::kBltu:
    case Op::kBgeu: {
      const NodeId cmp =
          bl.dfg.add(Opcode::kCmp, {bl.use(in.rs1), bl.use(in.rs2)});
      bl.dfg.add(Opcode::kBranch, {cmp});
      break;
    }
    case Op::kJal:
      bl.dfg.add(Opcode::kBranch);
      if (in.rd != 0)
        bl.def(in.rd, bl.konst(static_cast<std::int32_t>(pc + 4)));
      break;
    case Op::kJalr: {
      const NodeId call = bl.dfg.add(Opcode::kCall, {bl.use(in.rs1)});
      bl.dfg.mark_live_out(call);  // the call's effects escape the block
      if (in.rd != 0)
        bl.def(in.rd, bl.konst(static_cast<std::int32_t>(pc + 4)));
      break;
    }
    case Op::kFence:
    case Op::kEcall:
    case Op::kEbreak:
    case Op::kIllegal: {
      // Opaque side effect / environment transfer / undecodable word: an
      // operand-free kCall barrier whose effect escapes the block.
      const NodeId call = bl.dfg.add(Opcode::kCall);
      bl.dfg.mark_live_out(call);
      break;
    }
    case Op::kCount:
      break;  // unreachable; decode never produces kCount
  }
}

}  // namespace

LiftResult lift_cfg(const Cfg& cfg, std::string name,
                    const LiftOptions& opts) {
  robust::BudgetShare share(opts.budget);
  if (cfg.blocks.empty())
    return err(FrontendErrorCode::kNoCode,
               "no basic blocks (spans too short to hold an instruction)");

  ir::Program prog(std::move(name));
  LiftStats stats;
  stats.decoded_instructions = cfg.decoded_instructions;
  stats.illegal_instructions = cfg.illegal_instructions;

  std::vector<int> stmts;
  stmts.reserve(cfg.blocks.size());
  for (const Block& blk : cfg.blocks) {
    char label[32];
    std::snprintf(label, sizeof label, "bb_0x%08x", blk.start);
    const int bi = prog.add_block(label);
    BlockLifter bl(prog.block(bi).dfg);
    for (const DecodedInst& di : blk.insts) {
      if (share.charge())
        return err(FrontendErrorCode::kBudget, "budget exhausted during lift",
                   di.addr);
      lift_inst(bl, di);
      if (bl.dfg.num_nodes() > opts.limits.max_nodes_per_block)
        return err(FrontendErrorCode::kTooLarge,
                   "block exceeds max_nodes_per_block (" +
                       std::to_string(opts.limits.max_nodes_per_block) + ")",
                   blk.start);
    }
    bl.finish();
    stats.nodes += bl.dfg.num_nodes();
    stats.operations += bl.dfg.num_operations();
    if (stats.nodes > opts.limits.max_total_nodes)
      return err(FrontendErrorCode::kTooLarge,
                 "binary exceeds max_total_nodes (" +
                     std::to_string(opts.limits.max_total_nodes) + ")",
                 blk.start);
    stmts.push_back(prog.stmt_block(bi));
  }
  prog.set_root(prog.stmt_seq(std::move(stmts)));
  stats.blocks = prog.num_blocks();

  if (opts.certify_blocks) {
    const certify::CertifyReport rep = certify::check_program(prog);
    if (!rep.ok())
      return err(FrontendErrorCode::kInternal,
                 "lifted program failed certification: " + rep.summary());
  }
  return Lifted{std::move(prog), stats};
}

LiftResult lift_elf(std::span<const std::uint8_t> file, std::string name,
                    const LiftOptions& opts) {
  ElfResult er = parse_elf32(file, opts.limits);
  if (auto* e = std::get_if<FrontendError>(&er)) return *e;
  CfgResult cr =
      recover_cfg(std::get<ElfImage>(er), opts.limits, opts.budget);
  if (auto* e = std::get_if<FrontendError>(&cr)) return *e;
  return lift_cfg(std::get<Cfg>(cr), std::move(name), opts);
}

LiftResult lift_raw(std::span<const std::uint8_t> text, std::uint32_t vaddr,
                    std::string name, const LiftOptions& opts) {
  if (text.size() > opts.limits.max_text_bytes)
    return err(FrontendErrorCode::kTooLarge,
               "raw text is " + std::to_string(text.size()) +
                   " bytes; max_text_bytes " +
                   std::to_string(opts.limits.max_text_bytes));
  ElfImage img;
  img.machine = kMachineRiscv;
  img.entry = vaddr;
  if (!text.empty() &&
      vaddr <= 0xffffffffu - static_cast<std::uint32_t>(text.size() - 1))
    img.exec.push_back(ExecSpan{vaddr, 0, text});
  else if (!text.empty())
    return err(FrontendErrorCode::kBadElf,
               "raw text wraps the 32-bit address space");
  if (img.exec.empty())
    return err(FrontendErrorCode::kNoCode, "raw text is empty");
  CfgResult cr = recover_cfg(img, opts.limits, opts.budget);
  if (auto* e = std::get_if<FrontendError>(&cr)) return *e;
  return lift_cfg(std::get<Cfg>(cr), std::move(name), opts);
}

}  // namespace isex::frontend
