#include "isex/frontend/elf.hpp"

#include <algorithm>
#include <cstdio>
#include <string>

namespace isex::frontend {

const char* to_string(FrontendErrorCode c) {
  switch (c) {
    case FrontendErrorCode::kIo: return "io";
    case FrontendErrorCode::kTooLarge: return "too_large";
    case FrontendErrorCode::kNotElf: return "not_elf";
    case FrontendErrorCode::kBadElf: return "bad_elf";
    case FrontendErrorCode::kNoCode: return "no_code";
    case FrontendErrorCode::kBudget: return "budget";
    case FrontendErrorCode::kInternal: return "internal";
  }
  return "?";
}

std::string FrontendError::render() const {
  char off[32];
  std::snprintf(off, sizeof off, " (offset 0x%llx)",
                static_cast<unsigned long long>(offset));
  return std::string(to_string(code)) + ": " + message + off;
}

namespace {

/// Bounds-checked little-endian reads over the image. Every accessor
/// returns false instead of touching a byte past the span.
struct Cursor {
  std::span<const std::uint8_t> data;

  bool in_range(std::uint64_t off, std::uint64_t len) const {
    return off <= data.size() && len <= data.size() - off;
  }
  bool u8(std::uint64_t off, std::uint8_t* out) const {
    if (!in_range(off, 1)) return false;
    *out = data[static_cast<std::size_t>(off)];
    return true;
  }
  bool u16(std::uint64_t off, std::uint16_t* out) const {
    if (!in_range(off, 2)) return false;
    *out = static_cast<std::uint16_t>(
        data[static_cast<std::size_t>(off)] |
        (static_cast<std::uint16_t>(data[static_cast<std::size_t>(off) + 1])
         << 8));
    return true;
  }
  bool u32(std::uint64_t off, std::uint32_t* out) const {
    if (!in_range(off, 4)) return false;
    std::uint32_t v = 0;
    for (int i = 3; i >= 0; --i)
      v = (v << 8) | data[static_cast<std::size_t>(off) + static_cast<std::size_t>(i)];
    *out = v;
    return true;
  }
};

FrontendError err(FrontendErrorCode code, std::string msg,
                  std::uint64_t offset = 0) {
  FrontendError e;
  e.code = code;
  e.message = std::move(msg);
  e.offset = offset;
  return e;
}

// ELF constants (only what the reader needs).
constexpr std::uint64_t kEhdrSize = 52;     // ELF32 header
constexpr std::uint64_t kPhentMin = 32;     // ELF32 program header entry
constexpr std::uint64_t kShentMin = 40;     // ELF32 section header entry
constexpr std::uint32_t kPtLoad = 1;
constexpr std::uint32_t kPfExec = 1;
constexpr std::uint32_t kShfExecinstr = 0x4;
constexpr std::uint32_t kShtProgbits = 1;
constexpr std::uint32_t kShtNobits = 8;

/// Appends one executable range after the overflow/containment checks all
/// frontends of untrusted binaries live or die by: offset+size inside the
/// file, vaddr+size inside the 32-bit address space, total text bounded.
bool add_span(const Cursor& cur, const FrontendLimits& limits,
              std::uint32_t vaddr, std::uint32_t offset, std::uint32_t size,
              std::uint64_t hdr_off, std::vector<ExecSpan>* out,
              std::uint64_t* total_text, FrontendError* e) {
  if (size == 0) return true;
  if (!cur.in_range(offset, size)) {
    *e = err(FrontendErrorCode::kBadElf,
             "executable range [0x" + std::to_string(offset) + ", +" +
                 std::to_string(size) + ") exceeds the file",
             hdr_off);
    return false;
  }
  if (vaddr > 0xffffffffu - (size - 1)) {
    *e = err(FrontendErrorCode::kBadElf,
             "executable range wraps the 32-bit address space", hdr_off);
    return false;
  }
  *total_text += size;
  if (*total_text > limits.max_text_bytes) {
    *e = err(FrontendErrorCode::kTooLarge,
             "executable bytes exceed max_text_bytes (" +
                 std::to_string(limits.max_text_bytes) + ")",
             hdr_off);
    return false;
  }
  if (out->size() >= static_cast<std::size_t>(limits.max_exec_spans)) {
    *e = err(FrontendErrorCode::kTooLarge,
             "more than max_exec_spans executable ranges", hdr_off);
    return false;
  }
  ExecSpan s;
  s.vaddr = vaddr;
  s.file_offset = offset;
  s.bytes = cur.data.subspan(offset, size);
  out->push_back(s);
  return true;
}

}  // namespace

ElfResult parse_elf32(std::span<const std::uint8_t> image,
                      const FrontendLimits& limits) {
  if (image.size() > limits.max_file_bytes)
    return err(FrontendErrorCode::kTooLarge,
               "image is " + std::to_string(image.size()) +
                   " bytes; max_file_bytes " +
                   std::to_string(limits.max_file_bytes));
  const Cursor cur{image};
  if (image.size() < kEhdrSize)
    return err(FrontendErrorCode::kNotElf, "file shorter than an ELF32 header");
  if (!(image[0] == 0x7f && image[1] == 'E' && image[2] == 'L' &&
        image[3] == 'F'))
    return err(FrontendErrorCode::kNotElf, "missing ELF magic");
  if (image[4] != 1)  // EI_CLASS: ELFCLASS32
    return err(FrontendErrorCode::kNotElf, "not ELFCLASS32", 4);
  if (image[5] != 1)  // EI_DATA: little-endian
    return err(FrontendErrorCode::kNotElf, "not little-endian", 5);
  if (image[6] != 1)  // EI_VERSION
    return err(FrontendErrorCode::kNotElf, "unsupported ELF version", 6);

  std::uint16_t machine = 0, phentsize = 0, phnum = 0, shentsize = 0,
                shnum = 0;
  std::uint32_t entry = 0, phoff = 0, shoff = 0;
  if (!cur.u16(18, &machine) || !cur.u32(24, &entry) || !cur.u32(28, &phoff) ||
      !cur.u32(32, &shoff) || !cur.u16(42, &phentsize) ||
      !cur.u16(44, &phnum) || !cur.u16(46, &shentsize) || !cur.u16(48, &shnum))
    return err(FrontendErrorCode::kNotElf, "truncated ELF header");
  if (machine != kMachineRiscv)
    return err(FrontendErrorCode::kNotElf,
               "machine " + std::to_string(machine) + " is not RISC-V (" +
                   std::to_string(kMachineRiscv) + ")",
               18);

  ElfImage out;
  out.entry = entry;
  out.machine = machine;
  std::uint64_t total_text = 0;
  FrontendError e;

  // Pass 1: section headers (tight .text bounds). A lying or absent section
  // table falls through to the program headers rather than rejecting the
  // image — linkers legitimately strip sections.
  bool sections_usable = shoff != 0 && shnum != 0;
  if (sections_usable) {
    if (shnum > limits.max_sections)
      return err(FrontendErrorCode::kTooLarge,
                 std::to_string(shnum) + " sections; max_sections " +
                     std::to_string(limits.max_sections),
                 46);
    if (shentsize < kShentMin ||
        !cur.in_range(shoff, static_cast<std::uint64_t>(shentsize) * shnum))
      sections_usable = false;
  }
  if (sections_usable) {
    for (std::uint16_t i = 0; i < shnum && sections_usable; ++i) {
      const std::uint64_t off =
          shoff + static_cast<std::uint64_t>(i) * shentsize;
      std::uint32_t sh_type = 0, sh_flags = 0, sh_addr = 0, sh_offset = 0,
                    sh_size = 0;
      if (!cur.u32(off + 4, &sh_type) || !cur.u32(off + 8, &sh_flags) ||
          !cur.u32(off + 12, &sh_addr) || !cur.u32(off + 16, &sh_offset) ||
          !cur.u32(off + 20, &sh_size)) {
        sections_usable = false;
        break;
      }
      if ((sh_flags & kShfExecinstr) == 0 || sh_type == kShtNobits) continue;
      if (sh_type != kShtProgbits) continue;
      if (!add_span(cur, limits, sh_addr, sh_offset, sh_size, off, &out.exec,
                    &total_text, &e))
        return e;
    }
  }

  // Pass 2: program headers, only when the section pass yielded nothing.
  if (out.exec.empty()) {
    total_text = 0;
    out.exec.clear();
    if (phoff == 0 || phnum == 0)
      return err(FrontendErrorCode::kNoCode,
                 "no executable sections and no program headers");
    if (phnum > limits.max_segments)
      return err(FrontendErrorCode::kTooLarge,
                 std::to_string(phnum) + " segments; max_segments " +
                     std::to_string(limits.max_segments),
                 42);
    if (phentsize < kPhentMin ||
        !cur.in_range(phoff, static_cast<std::uint64_t>(phentsize) * phnum))
      return err(FrontendErrorCode::kBadElf,
                 "program header table exceeds the file", 28);
    for (std::uint16_t i = 0; i < phnum; ++i) {
      const std::uint64_t off =
          phoff + static_cast<std::uint64_t>(i) * phentsize;
      std::uint32_t p_type = 0, p_offset = 0, p_vaddr = 0, p_filesz = 0,
                    p_flags = 0;
      if (!cur.u32(off, &p_type) || !cur.u32(off + 4, &p_offset) ||
          !cur.u32(off + 8, &p_vaddr) || !cur.u32(off + 16, &p_filesz) ||
          !cur.u32(off + 24, &p_flags))
        return err(FrontendErrorCode::kBadElf, "truncated program header",
                   off);
      if (p_type != kPtLoad || (p_flags & kPfExec) == 0) continue;
      if (!add_span(cur, limits, p_vaddr, p_offset, p_filesz, off, &out.exec,
                    &total_text, &e))
        return e;
    }
  }

  if (out.exec.empty())
    return err(FrontendErrorCode::kNoCode,
               "no executable bytes (no SHF_EXECINSTR section or PF_X "
               "PT_LOAD segment)");
  std::sort(out.exec.begin(), out.exec.end(),
            [](const ExecSpan& a, const ExecSpan& b) {
              return a.vaddr < b.vaddr;
            });
  // Overlapping executable ranges would make block addresses ambiguous; a
  // well-formed binary never has them, a hostile one does not get to.
  for (std::size_t i = 1; i < out.exec.size(); ++i) {
    const ExecSpan& prev = out.exec[i - 1];
    if (out.exec[i].vaddr < prev.vaddr + prev.bytes.size())
      return err(FrontendErrorCode::kBadElf,
                 "overlapping executable ranges at vaddr 0x" +
                     std::to_string(out.exec[i].vaddr),
                 out.exec[i].file_offset);
  }
  return out;
}

}  // namespace isex::frontend
