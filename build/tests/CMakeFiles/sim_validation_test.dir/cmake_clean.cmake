file(REMOVE_RECURSE
  "CMakeFiles/sim_validation_test.dir/sim_validation_test.cpp.o"
  "CMakeFiles/sim_validation_test.dir/sim_validation_test.cpp.o.d"
  "sim_validation_test"
  "sim_validation_test.pdb"
  "sim_validation_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_validation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
