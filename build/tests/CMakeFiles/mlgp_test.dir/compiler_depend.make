# Empty compiler generated dependencies file for mlgp_test.
# This may be replaced when dependencies are built.
