file(REMOVE_RECURSE
  "CMakeFiles/mlgp_test.dir/mlgp_test.cpp.o"
  "CMakeFiles/mlgp_test.dir/mlgp_test.cpp.o.d"
  "mlgp_test"
  "mlgp_test.pdb"
  "mlgp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mlgp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
