# Empty dependencies file for config_curve_test.
# This may be replaced when dependencies are built.
