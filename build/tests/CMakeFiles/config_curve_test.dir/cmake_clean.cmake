file(REMOVE_RECURSE
  "CMakeFiles/config_curve_test.dir/config_curve_test.cpp.o"
  "CMakeFiles/config_curve_test.dir/config_curve_test.cpp.o.d"
  "config_curve_test"
  "config_curve_test.pdb"
  "config_curve_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/config_curve_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
