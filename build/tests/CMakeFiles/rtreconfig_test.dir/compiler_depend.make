# Empty compiler generated dependencies file for rtreconfig_test.
# This may be replaced when dependencies are built.
