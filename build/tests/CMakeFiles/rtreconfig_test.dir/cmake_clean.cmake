file(REMOVE_RECURSE
  "CMakeFiles/rtreconfig_test.dir/rtreconfig_test.cpp.o"
  "CMakeFiles/rtreconfig_test.dir/rtreconfig_test.cpp.o.d"
  "rtreconfig_test"
  "rtreconfig_test.pdb"
  "rtreconfig_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtreconfig_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
