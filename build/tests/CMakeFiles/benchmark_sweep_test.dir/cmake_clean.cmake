file(REMOVE_RECURSE
  "CMakeFiles/benchmark_sweep_test.dir/benchmark_sweep_test.cpp.o"
  "CMakeFiles/benchmark_sweep_test.dir/benchmark_sweep_test.cpp.o.d"
  "benchmark_sweep_test"
  "benchmark_sweep_test.pdb"
  "benchmark_sweep_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/benchmark_sweep_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
