# Empty dependencies file for trace_compress_test.
# This may be replaced when dependencies are built.
