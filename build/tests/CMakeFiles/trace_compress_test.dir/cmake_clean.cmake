file(REMOVE_RECURSE
  "CMakeFiles/trace_compress_test.dir/trace_compress_test.cpp.o"
  "CMakeFiles/trace_compress_test.dir/trace_compress_test.cpp.o.d"
  "trace_compress_test"
  "trace_compress_test.pdb"
  "trace_compress_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trace_compress_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
