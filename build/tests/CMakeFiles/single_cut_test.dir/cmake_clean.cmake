file(REMOVE_RECURSE
  "CMakeFiles/single_cut_test.dir/single_cut_test.cpp.o"
  "CMakeFiles/single_cut_test.dir/single_cut_test.cpp.o.d"
  "single_cut_test"
  "single_cut_test.pdb"
  "single_cut_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/single_cut_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
