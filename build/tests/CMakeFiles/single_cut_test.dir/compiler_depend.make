# Empty compiler generated dependencies file for single_cut_test.
# This may be replaced when dependencies are built.
