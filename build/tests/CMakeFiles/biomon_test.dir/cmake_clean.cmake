file(REMOVE_RECURSE
  "CMakeFiles/biomon_test.dir/biomon_test.cpp.o"
  "CMakeFiles/biomon_test.dir/biomon_test.cpp.o.d"
  "biomon_test"
  "biomon_test.pdb"
  "biomon_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/biomon_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
