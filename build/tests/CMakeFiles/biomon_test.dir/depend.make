# Empty dependencies file for biomon_test.
# This may be replaced when dependencies are built.
