file(REMOVE_RECURSE
  "CMakeFiles/dvs_sim_test.dir/dvs_sim_test.cpp.o"
  "CMakeFiles/dvs_sim_test.dir/dvs_sim_test.cpp.o.d"
  "dvs_sim_test"
  "dvs_sim_test.pdb"
  "dvs_sim_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dvs_sim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
