# Empty compiler generated dependencies file for architectures_test.
# This may be replaced when dependencies are built.
