file(REMOVE_RECURSE
  "CMakeFiles/hw_util_test.dir/hw_util_test.cpp.o"
  "CMakeFiles/hw_util_test.dir/hw_util_test.cpp.o.d"
  "hw_util_test"
  "hw_util_test.pdb"
  "hw_util_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hw_util_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
