file(REMOVE_RECURSE
  "CMakeFiles/disconnected_test.dir/disconnected_test.cpp.o"
  "CMakeFiles/disconnected_test.dir/disconnected_test.cpp.o.d"
  "disconnected_test"
  "disconnected_test.pdb"
  "disconnected_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/disconnected_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
