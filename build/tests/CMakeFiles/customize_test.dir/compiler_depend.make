# Empty compiler generated dependencies file for customize_test.
# This may be replaced when dependencies are built.
