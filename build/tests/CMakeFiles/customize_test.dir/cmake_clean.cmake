file(REMOVE_RECURSE
  "CMakeFiles/customize_test.dir/customize_test.cpp.o"
  "CMakeFiles/customize_test.dir/customize_test.cpp.o.d"
  "customize_test"
  "customize_test.pdb"
  "customize_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/customize_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
