# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/architectures_test[1]_include.cmake")
include("/root/repo/build/tests/benchmark_sweep_test[1]_include.cmake")
include("/root/repo/build/tests/biomon_test[1]_include.cmake")
include("/root/repo/build/tests/bitset_test[1]_include.cmake")
include("/root/repo/build/tests/codegen_test[1]_include.cmake")
include("/root/repo/build/tests/config_curve_test[1]_include.cmake")
include("/root/repo/build/tests/customize_test[1]_include.cmake")
include("/root/repo/build/tests/dfg_test[1]_include.cmake")
include("/root/repo/build/tests/disconnected_test[1]_include.cmake")
include("/root/repo/build/tests/dvs_sim_test[1]_include.cmake")
include("/root/repo/build/tests/enumerate_test[1]_include.cmake")
include("/root/repo/build/tests/hw_util_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/kway_test[1]_include.cmake")
include("/root/repo/build/tests/mlgp_test[1]_include.cmake")
include("/root/repo/build/tests/opt_test[1]_include.cmake")
include("/root/repo/build/tests/pareto_test[1]_include.cmake")
include("/root/repo/build/tests/program_test[1]_include.cmake")
include("/root/repo/build/tests/reconfig_test[1]_include.cmake")
include("/root/repo/build/tests/rt_test[1]_include.cmake")
include("/root/repo/build/tests/rtl_test[1]_include.cmake")
include("/root/repo/build/tests/rtreconfig_test[1]_include.cmake")
include("/root/repo/build/tests/sim_validation_test[1]_include.cmake")
include("/root/repo/build/tests/single_cut_test[1]_include.cmake")
include("/root/repo/build/tests/trace_compress_test[1]_include.cmake")
include("/root/repo/build/tests/workloads_test[1]_include.cmake")
