# Empty compiler generated dependencies file for example_biomonitor.
# This may be replaced when dependencies are built.
