file(REMOVE_RECURSE
  "CMakeFiles/example_biomonitor.dir/biomonitor.cpp.o"
  "CMakeFiles/example_biomonitor.dir/biomonitor.cpp.o.d"
  "example_biomonitor"
  "example_biomonitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_biomonitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
