# Empty compiler generated dependencies file for example_synthesize_ci.
# This may be replaced when dependencies are built.
