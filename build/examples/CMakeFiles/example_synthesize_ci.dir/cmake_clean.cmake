file(REMOVE_RECURSE
  "CMakeFiles/example_synthesize_ci.dir/synthesize_ci.cpp.o"
  "CMakeFiles/example_synthesize_ci.dir/synthesize_ci.cpp.o.d"
  "example_synthesize_ci"
  "example_synthesize_ci.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_synthesize_ci.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
