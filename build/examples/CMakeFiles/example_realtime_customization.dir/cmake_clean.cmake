file(REMOVE_RECURSE
  "CMakeFiles/example_realtime_customization.dir/realtime_customization.cpp.o"
  "CMakeFiles/example_realtime_customization.dir/realtime_customization.cpp.o.d"
  "example_realtime_customization"
  "example_realtime_customization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_realtime_customization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
