# Empty dependencies file for example_realtime_customization.
# This may be replaced when dependencies are built.
