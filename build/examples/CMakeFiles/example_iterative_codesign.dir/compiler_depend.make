# Empty compiler generated dependencies file for example_iterative_codesign.
# This may be replaced when dependencies are built.
