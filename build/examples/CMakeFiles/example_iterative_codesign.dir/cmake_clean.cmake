file(REMOVE_RECURSE
  "CMakeFiles/example_iterative_codesign.dir/iterative_codesign.cpp.o"
  "CMakeFiles/example_iterative_codesign.dir/iterative_codesign.cpp.o.d"
  "example_iterative_codesign"
  "example_iterative_codesign.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_iterative_codesign.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
