# Empty dependencies file for example_reconfig_jpeg.
# This may be replaced when dependencies are built.
