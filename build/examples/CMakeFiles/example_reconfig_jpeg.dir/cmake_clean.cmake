file(REMOVE_RECURSE
  "CMakeFiles/example_reconfig_jpeg.dir/reconfig_jpeg.cpp.o"
  "CMakeFiles/example_reconfig_jpeg.dir/reconfig_jpeg.cpp.o.d"
  "example_reconfig_jpeg"
  "example_reconfig_jpeg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_reconfig_jpeg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
