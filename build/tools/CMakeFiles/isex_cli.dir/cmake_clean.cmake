file(REMOVE_RECURSE
  "CMakeFiles/isex_cli.dir/isex_cli.cpp.o"
  "CMakeFiles/isex_cli.dir/isex_cli.cpp.o.d"
  "isex"
  "isex.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/isex_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
