# Empty compiler generated dependencies file for isex_cli.
# This may be replaced when dependencies are built.
