file(REMOVE_RECURSE
  "CMakeFiles/fig3_4_energy.dir/fig3_4_energy.cpp.o"
  "CMakeFiles/fig3_4_energy.dir/fig3_4_energy.cpp.o.d"
  "fig3_4_energy"
  "fig3_4_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_4_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
