# Empty dependencies file for fig8_4_biomonitoring.
# This may be replaced when dependencies are built.
