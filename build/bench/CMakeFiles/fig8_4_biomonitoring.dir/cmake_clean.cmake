file(REMOVE_RECURSE
  "CMakeFiles/fig8_4_biomonitoring.dir/fig8_4_biomonitoring.cpp.o"
  "CMakeFiles/fig8_4_biomonitoring.dir/fig8_4_biomonitoring.cpp.o.d"
  "fig8_4_biomonitoring"
  "fig8_4_biomonitoring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_4_biomonitoring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
