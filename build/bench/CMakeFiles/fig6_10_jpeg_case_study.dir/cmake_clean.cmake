file(REMOVE_RECURSE
  "CMakeFiles/fig6_10_jpeg_case_study.dir/fig6_10_jpeg_case_study.cpp.o"
  "CMakeFiles/fig6_10_jpeg_case_study.dir/fig6_10_jpeg_case_study.cpp.o.d"
  "fig6_10_jpeg_case_study"
  "fig6_10_jpeg_case_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_10_jpeg_case_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
