# Empty dependencies file for fig4_4_pareto_curves.
# This may be replaced when dependencies are built.
