# Empty compiler generated dependencies file for fig3_3_util_vs_area.
# This may be replaced when dependencies are built.
