file(REMOVE_RECURSE
  "CMakeFiles/fig3_3_util_vs_area.dir/fig3_3_util_vs_area.cpp.o"
  "CMakeFiles/fig3_3_util_vs_area.dir/fig3_3_util_vs_area.cpp.o.d"
  "fig3_3_util_vs_area"
  "fig3_3_util_vs_area.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_3_util_vs_area.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
