# Empty compiler generated dependencies file for tab6_1_running_time.
# This may be replaced when dependencies are built.
