file(REMOVE_RECURSE
  "CMakeFiles/tab6_1_running_time.dir/tab6_1_running_time.cpp.o"
  "CMakeFiles/tab6_1_running_time.dir/tab6_1_running_time.cpp.o.d"
  "tab6_1_running_time"
  "tab6_1_running_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab6_1_running_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
