# Empty compiler generated dependencies file for ext_architectures.
# This may be replaced when dependencies are built.
