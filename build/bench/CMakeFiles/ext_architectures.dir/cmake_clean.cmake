file(REMOVE_RECURSE
  "CMakeFiles/ext_architectures.dir/ext_architectures.cpp.o"
  "CMakeFiles/ext_architectures.dir/ext_architectures.cpp.o.d"
  "ext_architectures"
  "ext_architectures.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_architectures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
