# Empty compiler generated dependencies file for tab4_2_approx_speedup.
# This may be replaced when dependencies are built.
