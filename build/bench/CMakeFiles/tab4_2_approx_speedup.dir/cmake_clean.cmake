file(REMOVE_RECURSE
  "CMakeFiles/tab4_2_approx_speedup.dir/tab4_2_approx_speedup.cpp.o"
  "CMakeFiles/tab4_2_approx_speedup.dir/tab4_2_approx_speedup.cpp.o.d"
  "tab4_2_approx_speedup"
  "tab4_2_approx_speedup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab4_2_approx_speedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
