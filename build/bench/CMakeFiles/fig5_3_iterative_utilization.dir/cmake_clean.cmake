file(REMOVE_RECURSE
  "CMakeFiles/fig5_3_iterative_utilization.dir/fig5_3_iterative_utilization.cpp.o"
  "CMakeFiles/fig5_3_iterative_utilization.dir/fig5_3_iterative_utilization.cpp.o.d"
  "fig5_3_iterative_utilization"
  "fig5_3_iterative_utilization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_3_iterative_utilization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
