# Empty dependencies file for tab7_2_fig7_4_dp_vs_optimal.
# This may be replaced when dependencies are built.
