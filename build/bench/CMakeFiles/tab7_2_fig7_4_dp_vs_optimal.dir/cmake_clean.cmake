file(REMOVE_RECURSE
  "CMakeFiles/tab7_2_fig7_4_dp_vs_optimal.dir/tab7_2_fig7_4_dp_vs_optimal.cpp.o"
  "CMakeFiles/tab7_2_fig7_4_dp_vs_optimal.dir/tab7_2_fig7_4_dp_vs_optimal.cpp.o.d"
  "tab7_2_fig7_4_dp_vs_optimal"
  "tab7_2_fig7_4_dp_vs_optimal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab7_2_fig7_4_dp_vs_optimal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
