# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for tab7_2_fig7_4_dp_vs_optimal.
