# Empty dependencies file for ext_dynamic_scaling.
# This may be replaced when dependencies are built.
