file(REMOVE_RECURSE
  "CMakeFiles/ext_dynamic_scaling.dir/ext_dynamic_scaling.cpp.o"
  "CMakeFiles/ext_dynamic_scaling.dir/ext_dynamic_scaling.cpp.o.d"
  "ext_dynamic_scaling"
  "ext_dynamic_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_dynamic_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
