# Empty compiler generated dependencies file for fig5_5_speedup_vs_time.
# This may be replaced when dependencies are built.
