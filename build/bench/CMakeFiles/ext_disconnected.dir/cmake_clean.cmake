file(REMOVE_RECURSE
  "CMakeFiles/ext_disconnected.dir/ext_disconnected.cpp.o"
  "CMakeFiles/ext_disconnected.dir/ext_disconnected.cpp.o.d"
  "ext_disconnected"
  "ext_disconnected.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_disconnected.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
