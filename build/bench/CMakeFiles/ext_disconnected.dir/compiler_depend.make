# Empty compiler generated dependencies file for ext_disconnected.
# This may be replaced when dependencies are built.
