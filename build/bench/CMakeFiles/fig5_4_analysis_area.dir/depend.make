# Empty dependencies file for fig5_4_analysis_area.
# This may be replaced when dependencies are built.
