file(REMOVE_RECURSE
  "CMakeFiles/fig5_4_analysis_area.dir/fig5_4_analysis_area.cpp.o"
  "CMakeFiles/fig5_4_analysis_area.dir/fig5_4_analysis_area.cpp.o.d"
  "fig5_4_analysis_area"
  "fig5_4_analysis_area.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_4_analysis_area.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
