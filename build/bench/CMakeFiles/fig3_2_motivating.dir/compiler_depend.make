# Empty compiler generated dependencies file for fig3_2_motivating.
# This may be replaced when dependencies are built.
