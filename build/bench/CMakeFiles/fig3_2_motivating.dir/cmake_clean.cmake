file(REMOVE_RECURSE
  "CMakeFiles/fig3_2_motivating.dir/fig3_2_motivating.cpp.o"
  "CMakeFiles/fig3_2_motivating.dir/fig3_2_motivating.cpp.o.d"
  "fig3_2_motivating"
  "fig3_2_motivating.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_2_motivating.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
