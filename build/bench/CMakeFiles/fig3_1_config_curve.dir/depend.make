# Empty dependencies file for fig3_1_config_curve.
# This may be replaced when dependencies are built.
