file(REMOVE_RECURSE
  "CMakeFiles/fig3_1_config_curve.dir/fig3_1_config_curve.cpp.o"
  "CMakeFiles/fig3_1_config_curve.dir/fig3_1_config_curve.cpp.o.d"
  "fig3_1_config_curve"
  "fig3_1_config_curve.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_1_config_curve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
