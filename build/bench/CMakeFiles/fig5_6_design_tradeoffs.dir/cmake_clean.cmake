file(REMOVE_RECURSE
  "CMakeFiles/fig5_6_design_tradeoffs.dir/fig5_6_design_tradeoffs.cpp.o"
  "CMakeFiles/fig5_6_design_tradeoffs.dir/fig5_6_design_tradeoffs.cpp.o.d"
  "fig5_6_design_tradeoffs"
  "fig5_6_design_tradeoffs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_6_design_tradeoffs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
