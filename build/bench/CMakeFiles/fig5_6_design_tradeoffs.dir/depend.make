# Empty dependencies file for fig5_6_design_tradeoffs.
# This may be replaced when dependencies are built.
