file(REMOVE_RECURSE
  "CMakeFiles/ext_conservative_model.dir/ext_conservative_model.cpp.o"
  "CMakeFiles/ext_conservative_model.dir/ext_conservative_model.cpp.o.d"
  "ext_conservative_model"
  "ext_conservative_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_conservative_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
