# Empty dependencies file for ext_conservative_model.
# This may be replaced when dependencies are built.
