file(REMOVE_RECURSE
  "CMakeFiles/fig6_8_solution_quality.dir/fig6_8_solution_quality.cpp.o"
  "CMakeFiles/fig6_8_solution_quality.dir/fig6_8_solution_quality.cpp.o.d"
  "fig6_8_solution_quality"
  "fig6_8_solution_quality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_8_solution_quality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
