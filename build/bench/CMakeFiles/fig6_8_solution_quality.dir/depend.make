# Empty dependencies file for fig6_8_solution_quality.
# This may be replaced when dependencies are built.
