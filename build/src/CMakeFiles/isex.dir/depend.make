# Empty dependencies file for isex.
# This may be replaced when dependencies are built.
