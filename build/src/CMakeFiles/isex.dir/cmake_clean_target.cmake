file(REMOVE_RECURSE
  "libisex.a"
)
