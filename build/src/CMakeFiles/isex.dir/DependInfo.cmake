
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/isex/biomon/biomon.cpp" "src/CMakeFiles/isex.dir/isex/biomon/biomon.cpp.o" "gcc" "src/CMakeFiles/isex.dir/isex/biomon/biomon.cpp.o.d"
  "/root/repo/src/isex/codegen/schedule.cpp" "src/CMakeFiles/isex.dir/isex/codegen/schedule.cpp.o" "gcc" "src/CMakeFiles/isex.dir/isex/codegen/schedule.cpp.o.d"
  "/root/repo/src/isex/customize/heuristics.cpp" "src/CMakeFiles/isex.dir/isex/customize/heuristics.cpp.o" "gcc" "src/CMakeFiles/isex.dir/isex/customize/heuristics.cpp.o.d"
  "/root/repo/src/isex/customize/motivating.cpp" "src/CMakeFiles/isex.dir/isex/customize/motivating.cpp.o" "gcc" "src/CMakeFiles/isex.dir/isex/customize/motivating.cpp.o.d"
  "/root/repo/src/isex/customize/select_edf.cpp" "src/CMakeFiles/isex.dir/isex/customize/select_edf.cpp.o" "gcc" "src/CMakeFiles/isex.dir/isex/customize/select_edf.cpp.o.d"
  "/root/repo/src/isex/customize/select_rms.cpp" "src/CMakeFiles/isex.dir/isex/customize/select_rms.cpp.o" "gcc" "src/CMakeFiles/isex.dir/isex/customize/select_rms.cpp.o.d"
  "/root/repo/src/isex/energy/dvfs.cpp" "src/CMakeFiles/isex.dir/isex/energy/dvfs.cpp.o" "gcc" "src/CMakeFiles/isex.dir/isex/energy/dvfs.cpp.o.d"
  "/root/repo/src/isex/energy/dvs_sim.cpp" "src/CMakeFiles/isex.dir/isex/energy/dvs_sim.cpp.o" "gcc" "src/CMakeFiles/isex.dir/isex/energy/dvs_sim.cpp.o.d"
  "/root/repo/src/isex/hw/cell_library.cpp" "src/CMakeFiles/isex.dir/isex/hw/cell_library.cpp.o" "gcc" "src/CMakeFiles/isex.dir/isex/hw/cell_library.cpp.o.d"
  "/root/repo/src/isex/hw/estimate.cpp" "src/CMakeFiles/isex.dir/isex/hw/estimate.cpp.o" "gcc" "src/CMakeFiles/isex.dir/isex/hw/estimate.cpp.o.d"
  "/root/repo/src/isex/ir/dfg.cpp" "src/CMakeFiles/isex.dir/isex/ir/dfg.cpp.o" "gcc" "src/CMakeFiles/isex.dir/isex/ir/dfg.cpp.o.d"
  "/root/repo/src/isex/ir/eval.cpp" "src/CMakeFiles/isex.dir/isex/ir/eval.cpp.o" "gcc" "src/CMakeFiles/isex.dir/isex/ir/eval.cpp.o.d"
  "/root/repo/src/isex/ir/opcode.cpp" "src/CMakeFiles/isex.dir/isex/ir/opcode.cpp.o" "gcc" "src/CMakeFiles/isex.dir/isex/ir/opcode.cpp.o.d"
  "/root/repo/src/isex/ir/program.cpp" "src/CMakeFiles/isex.dir/isex/ir/program.cpp.o" "gcc" "src/CMakeFiles/isex.dir/isex/ir/program.cpp.o.d"
  "/root/repo/src/isex/ise/candidate.cpp" "src/CMakeFiles/isex.dir/isex/ise/candidate.cpp.o" "gcc" "src/CMakeFiles/isex.dir/isex/ise/candidate.cpp.o.d"
  "/root/repo/src/isex/ise/enumerate.cpp" "src/CMakeFiles/isex.dir/isex/ise/enumerate.cpp.o" "gcc" "src/CMakeFiles/isex.dir/isex/ise/enumerate.cpp.o.d"
  "/root/repo/src/isex/ise/single_cut.cpp" "src/CMakeFiles/isex.dir/isex/ise/single_cut.cpp.o" "gcc" "src/CMakeFiles/isex.dir/isex/ise/single_cut.cpp.o.d"
  "/root/repo/src/isex/mlgp/is_baseline.cpp" "src/CMakeFiles/isex.dir/isex/mlgp/is_baseline.cpp.o" "gcc" "src/CMakeFiles/isex.dir/isex/mlgp/is_baseline.cpp.o.d"
  "/root/repo/src/isex/mlgp/iterative.cpp" "src/CMakeFiles/isex.dir/isex/mlgp/iterative.cpp.o" "gcc" "src/CMakeFiles/isex.dir/isex/mlgp/iterative.cpp.o.d"
  "/root/repo/src/isex/mlgp/mlgp.cpp" "src/CMakeFiles/isex.dir/isex/mlgp/mlgp.cpp.o" "gcc" "src/CMakeFiles/isex.dir/isex/mlgp/mlgp.cpp.o.d"
  "/root/repo/src/isex/opt/knapsack.cpp" "src/CMakeFiles/isex.dir/isex/opt/knapsack.cpp.o" "gcc" "src/CMakeFiles/isex.dir/isex/opt/knapsack.cpp.o.d"
  "/root/repo/src/isex/opt/set_partition.cpp" "src/CMakeFiles/isex.dir/isex/opt/set_partition.cpp.o" "gcc" "src/CMakeFiles/isex.dir/isex/opt/set_partition.cpp.o.d"
  "/root/repo/src/isex/pareto/front.cpp" "src/CMakeFiles/isex.dir/isex/pareto/front.cpp.o" "gcc" "src/CMakeFiles/isex.dir/isex/pareto/front.cpp.o.d"
  "/root/repo/src/isex/pareto/inter.cpp" "src/CMakeFiles/isex.dir/isex/pareto/inter.cpp.o" "gcc" "src/CMakeFiles/isex.dir/isex/pareto/inter.cpp.o.d"
  "/root/repo/src/isex/pareto/intra.cpp" "src/CMakeFiles/isex.dir/isex/pareto/intra.cpp.o" "gcc" "src/CMakeFiles/isex.dir/isex/pareto/intra.cpp.o.d"
  "/root/repo/src/isex/partition/kway.cpp" "src/CMakeFiles/isex.dir/isex/partition/kway.cpp.o" "gcc" "src/CMakeFiles/isex.dir/isex/partition/kway.cpp.o.d"
  "/root/repo/src/isex/reconfig/algorithms.cpp" "src/CMakeFiles/isex.dir/isex/reconfig/algorithms.cpp.o" "gcc" "src/CMakeFiles/isex.dir/isex/reconfig/algorithms.cpp.o.d"
  "/root/repo/src/isex/reconfig/architectures.cpp" "src/CMakeFiles/isex.dir/isex/reconfig/architectures.cpp.o" "gcc" "src/CMakeFiles/isex.dir/isex/reconfig/architectures.cpp.o.d"
  "/root/repo/src/isex/reconfig/fabric_sim.cpp" "src/CMakeFiles/isex.dir/isex/reconfig/fabric_sim.cpp.o" "gcc" "src/CMakeFiles/isex.dir/isex/reconfig/fabric_sim.cpp.o.d"
  "/root/repo/src/isex/reconfig/jpeg_case.cpp" "src/CMakeFiles/isex.dir/isex/reconfig/jpeg_case.cpp.o" "gcc" "src/CMakeFiles/isex.dir/isex/reconfig/jpeg_case.cpp.o.d"
  "/root/repo/src/isex/reconfig/problem.cpp" "src/CMakeFiles/isex.dir/isex/reconfig/problem.cpp.o" "gcc" "src/CMakeFiles/isex.dir/isex/reconfig/problem.cpp.o.d"
  "/root/repo/src/isex/reconfig/spatial.cpp" "src/CMakeFiles/isex.dir/isex/reconfig/spatial.cpp.o" "gcc" "src/CMakeFiles/isex.dir/isex/reconfig/spatial.cpp.o.d"
  "/root/repo/src/isex/reconfig/trace_compress.cpp" "src/CMakeFiles/isex.dir/isex/reconfig/trace_compress.cpp.o" "gcc" "src/CMakeFiles/isex.dir/isex/reconfig/trace_compress.cpp.o.d"
  "/root/repo/src/isex/rt/schedulability.cpp" "src/CMakeFiles/isex.dir/isex/rt/schedulability.cpp.o" "gcc" "src/CMakeFiles/isex.dir/isex/rt/schedulability.cpp.o.d"
  "/root/repo/src/isex/rt/simulator.cpp" "src/CMakeFiles/isex.dir/isex/rt/simulator.cpp.o" "gcc" "src/CMakeFiles/isex.dir/isex/rt/simulator.cpp.o.d"
  "/root/repo/src/isex/rt/task.cpp" "src/CMakeFiles/isex.dir/isex/rt/task.cpp.o" "gcc" "src/CMakeFiles/isex.dir/isex/rt/task.cpp.o.d"
  "/root/repo/src/isex/rtl/verilog.cpp" "src/CMakeFiles/isex.dir/isex/rtl/verilog.cpp.o" "gcc" "src/CMakeFiles/isex.dir/isex/rtl/verilog.cpp.o.d"
  "/root/repo/src/isex/rtreconfig/algorithms.cpp" "src/CMakeFiles/isex.dir/isex/rtreconfig/algorithms.cpp.o" "gcc" "src/CMakeFiles/isex.dir/isex/rtreconfig/algorithms.cpp.o.d"
  "/root/repo/src/isex/rtreconfig/problem.cpp" "src/CMakeFiles/isex.dir/isex/rtreconfig/problem.cpp.o" "gcc" "src/CMakeFiles/isex.dir/isex/rtreconfig/problem.cpp.o.d"
  "/root/repo/src/isex/rtreconfig/sim.cpp" "src/CMakeFiles/isex.dir/isex/rtreconfig/sim.cpp.o" "gcc" "src/CMakeFiles/isex.dir/isex/rtreconfig/sim.cpp.o.d"
  "/root/repo/src/isex/select/config_curve.cpp" "src/CMakeFiles/isex.dir/isex/select/config_curve.cpp.o" "gcc" "src/CMakeFiles/isex.dir/isex/select/config_curve.cpp.o.d"
  "/root/repo/src/isex/workloads/kernels_crypto.cpp" "src/CMakeFiles/isex.dir/isex/workloads/kernels_crypto.cpp.o" "gcc" "src/CMakeFiles/isex.dir/isex/workloads/kernels_crypto.cpp.o.d"
  "/root/repo/src/isex/workloads/kernels_extra.cpp" "src/CMakeFiles/isex.dir/isex/workloads/kernels_extra.cpp.o" "gcc" "src/CMakeFiles/isex.dir/isex/workloads/kernels_extra.cpp.o.d"
  "/root/repo/src/isex/workloads/kernels_media.cpp" "src/CMakeFiles/isex.dir/isex/workloads/kernels_media.cpp.o" "gcc" "src/CMakeFiles/isex.dir/isex/workloads/kernels_media.cpp.o.d"
  "/root/repo/src/isex/workloads/kernels_misc.cpp" "src/CMakeFiles/isex.dir/isex/workloads/kernels_misc.cpp.o" "gcc" "src/CMakeFiles/isex.dir/isex/workloads/kernels_misc.cpp.o.d"
  "/root/repo/src/isex/workloads/patterns.cpp" "src/CMakeFiles/isex.dir/isex/workloads/patterns.cpp.o" "gcc" "src/CMakeFiles/isex.dir/isex/workloads/patterns.cpp.o.d"
  "/root/repo/src/isex/workloads/tasks.cpp" "src/CMakeFiles/isex.dir/isex/workloads/tasks.cpp.o" "gcc" "src/CMakeFiles/isex.dir/isex/workloads/tasks.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
