// Dynamic voltage scaling simulation tests: deadline safety of every
// policy, the static <= no-DVS and ccEDF <= static energy ordering, and
// reclaiming behaviour as actual execution shrinks below WCET.
#include <gtest/gtest.h>

#include "isex/energy/dvs_sim.hpp"

namespace isex::energy {
namespace {

std::vector<DvsTask> sample_tasks(double u, double bc_min, double bc_max) {
  // Three tasks with equal utilization shares summing to u.
  std::vector<DvsTask> tasks;
  const double periods[] = {100, 150, 400};
  for (double p : periods)
    tasks.push_back(DvsTask{u / 3 * p, p, bc_min, bc_max});
  return tasks;
}

TEST(DvsSim, AllPoliciesMeetDeadlinesAtModerateLoad) {
  for (auto policy : {DvsPolicy::kNoDvs, DvsPolicy::kStatic, DvsPolicy::kCcEdf}) {
    util::Rng rng(7);
    const auto r =
        simulate_dvs(sample_tasks(0.4, 0.3, 1.0), policy, 60'000, rng);
    EXPECT_TRUE(r.all_met) << static_cast<int>(policy);
    EXPECT_GT(r.completed_jobs, 0);
  }
}

TEST(DvsSim, EnergyOrderingNoDvsStaticCcEdf) {
  util::Rng r1(3), r2(3), r3(3);  // identical job streams
  // U = 0.8 keeps the static point off the 300 MHz floor (566 MHz), leaving
  // cc-EDF headroom to reclaim into.
  const auto tasks = sample_tasks(0.8, 0.4, 0.8);
  const auto none = simulate_dvs(tasks, DvsPolicy::kNoDvs, 120'000, r1);
  const auto stat = simulate_dvs(tasks, DvsPolicy::kStatic, 120'000, r2);
  const auto cc = simulate_dvs(tasks, DvsPolicy::kCcEdf, 120'000, r3);
  ASSERT_TRUE(none.all_met && stat.all_met && cc.all_met);
  EXPECT_LT(stat.energy, none.energy);
  EXPECT_LT(cc.energy, stat.energy);
  // Identical work executed across policies.
  EXPECT_NEAR(none.busy_cycles, stat.busy_cycles, 1e-6);
  EXPECT_NEAR(none.busy_cycles, cc.busy_cycles, 1e-6);
}

TEST(DvsSim, CcEdfReclaimsMoreWhenJobsFinishEarlier) {
  util::Rng r1(5), r2(5);
  const auto lazy = sample_tasks(0.5, 0.2, 0.3);   // jobs use ~25% of WCET
  const auto busy = sample_tasks(0.5, 0.95, 1.0);  // jobs use ~WCET
  const auto e_lazy = simulate_dvs(lazy, DvsPolicy::kCcEdf, 120'000, r1);
  const auto e_busy = simulate_dvs(busy, DvsPolicy::kCcEdf, 120'000, r2);
  ASSERT_TRUE(e_lazy.all_met && e_busy.all_met);
  EXPECT_LT(e_lazy.avg_freq_mhz, e_busy.avg_freq_mhz);
}

TEST(DvsSim, StaticPointMatchesAnalyticChoice) {
  // U = 0.55: 0.55*633 = 348 MHz -> the 366 MHz point.
  util::Rng rng(1);
  const auto r =
      simulate_dvs(sample_tasks(0.55, 1.0, 1.0), DvsPolicy::kStatic, 30'000, rng);
  EXPECT_TRUE(r.all_met);
  EXPECT_NEAR(r.avg_freq_mhz, 366, 1e-6);
}

TEST(DvsSim, OverloadReportsMisses) {
  util::Rng rng(2);
  const auto r =
      simulate_dvs(sample_tasks(1.3, 1.0, 1.0), DvsPolicy::kNoDvs, 30'000, rng);
  EXPECT_FALSE(r.all_met);
}

TEST(DvsSim, FullWcetJobsNeverMissUnderCcEdf) {
  // cc-EDF's safety property: even with bc = 1 (no reclaiming possible),
  // deadlines hold as long as U <= 1.
  for (int seed = 0; seed < 10; ++seed) {
    util::Rng rng(static_cast<std::uint64_t>(seed) * 101 + 1);
    const double u = 0.6 + 0.04 * seed;  // up to 0.96
    const auto r =
        simulate_dvs(sample_tasks(u, 1.0, 1.0), DvsPolicy::kCcEdf, 60'000, rng);
    EXPECT_TRUE(r.all_met) << "U=" << u;
  }
}

}  // namespace
}  // namespace isex::energy
