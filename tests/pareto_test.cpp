// Chapter 4 tests: exact Pareto DP vs brute force, the FPTAS epsilon-cover
// guarantee (TEST_P sweep over seeds x epsilon), and the inter-task stage.
#include <gtest/gtest.h>

#include <cmath>

#include "isex/pareto/inter.hpp"
#include "isex/pareto/intra.hpp"
#include "isex/util/rng.hpp"

namespace isex::pareto {
namespace {

std::vector<Item> random_items(util::Rng& rng, int n) {
  std::vector<Item> items;
  for (int i = 0; i < n; ++i)
    items.push_back(Item{rng.uniform_int(1, 20),
                         static_cast<double>(rng.uniform_int(0, 400))});
  return items;
}

Front brute_workload_front(const std::vector<Item>& items, double base) {
  std::vector<Point> pts;
  const auto n = items.size();
  for (std::uint64_t mask = 0; mask < (std::uint64_t{1} << n); ++mask) {
    double cost = 0, gain = 0;
    for (std::size_t i = 0; i < n; ++i)
      if (mask & (std::uint64_t{1} << i)) {
        cost += items[i].cost;
        gain += items[i].gain;
      }
    pts.push_back({cost, base - gain});
  }
  return undominated(std::move(pts));
}

TEST(FrontUtils, UndominatedStaircase) {
  Front f = undominated({{3, 5}, {1, 9}, {2, 7}, {2, 8}, {4, 5}, {0, 10}});
  ASSERT_EQ(f.size(), 4u);
  EXPECT_EQ(f[0], (Point{0, 10}));
  EXPECT_EQ(f[1], (Point{1, 9}));
  EXPECT_EQ(f[2], (Point{2, 7}));
  EXPECT_EQ(f[3], (Point{3, 5}));
}

TEST(FrontUtils, Dominates) {
  EXPECT_TRUE(dominates({1, 2}, {2, 2}));
  EXPECT_TRUE(dominates({1, 2}, {1, 3}));
  EXPECT_FALSE(dominates({1, 2}, {1, 2}));
  EXPECT_FALSE(dominates({2, 1}, {1, 2}));
}

class ExactFrontProperty : public ::testing::TestWithParam<int> {};

TEST_P(ExactFrontProperty, MatchesBruteForce) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 97 + 11);
  const auto items = random_items(rng, rng.uniform_int(1, 10));
  const double base = 5000;
  const Front exact = exact_workload_front(items, base);
  const Front brute = brute_workload_front(items, base);
  ASSERT_EQ(exact.size(), brute.size());
  for (std::size_t i = 0; i < exact.size(); ++i) {
    EXPECT_NEAR(exact[i].cost, brute[i].cost, 1e-9);
    EXPECT_NEAR(exact[i].value, brute[i].value, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExactFrontProperty, ::testing::Range(0, 15));

// The FPTAS guarantee, swept over (seed, epsilon) — the epsilon values are
// the ones the thesis uses (eps chosen so sqrt(1+eps) is rational).
class FptasProperty
    : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(FptasProperty, ApproxCoversExactWithinEpsilon) {
  const auto [seed, eps] = GetParam();
  util::Rng rng(static_cast<std::uint64_t>(seed) * 89 + 3);
  const auto items = random_items(rng, rng.uniform_int(2, 14));
  const double base = 8000;
  const Front exact = exact_workload_front(items, base);
  const Front approx = approx_workload_front(items, base, eps);
  EXPECT_TRUE(eps_covers(exact, approx, eps)) << "eps=" << eps;
  // Every approximate point is a real solution: the exact front weakly
  // dominates it.
  for (const Point& q : approx) {
    bool ok = false;
    for (const Point& p : exact)
      if (p.cost <= q.cost + 1e-9 && p.value <= q.value + 1e-9) {
        ok = true;
        break;
      }
    EXPECT_TRUE(ok) << "approx point is not achievable";
  }
}

INSTANTIATE_TEST_SUITE_P(
    SeedsByEps, FptasProperty,
    ::testing::Combine(::testing::Range(0, 8),
                       ::testing::Values(0.21, 0.44, 0.69, 3.0)));

TEST(Fptas, ApproxCurveIsSmaller) {
  util::Rng rng(2024);
  const auto items = random_items(rng, 14);
  const double base = 8000;
  const Front exact = exact_workload_front(items, base);
  const Front a069 = approx_workload_front(items, base, 0.69);
  const Front a3 = approx_workload_front(items, base, 3.0);
  EXPECT_LE(a069.size(), exact.size());
  EXPECT_LE(a3.size(), a069.size());  // larger eps -> coarser curve
}

// --- inter-task stage -------------------------------------------------------

std::vector<TaskMenu> random_tasks(util::Rng& rng, int m) {
  std::vector<TaskMenu> tasks;
  for (int t = 0; t < m; ++t) {
    TaskMenu menu;
    menu.period = rng.uniform_int(50, 400);
    double w = rng.uniform_int(20, 200);
    menu.configs.push_back(Item{0, w});
    int cost = 0;
    const int k = rng.uniform_int(0, 4);
    for (int j = 0; j < k; ++j) {
      cost += rng.uniform_int(1, 15);
      w *= rng.uniform_real(0.7, 0.95);
      menu.configs.push_back(Item{cost, w});
    }
    tasks.push_back(std::move(menu));
  }
  return tasks;
}

Front brute_utilization_front(const std::vector<TaskMenu>& tasks) {
  std::vector<Point> pts;
  std::vector<std::size_t> pick(tasks.size(), 0);
  while (true) {
    double cost = 0, util = 0;
    for (std::size_t i = 0; i < tasks.size(); ++i) {
      cost += tasks[i].configs[pick[i]].cost;
      util += tasks[i].configs[pick[i]].gain / tasks[i].period;
    }
    pts.push_back({cost, util});
    std::size_t i = 0;
    for (; i < tasks.size(); ++i) {
      if (++pick[i] < tasks[i].configs.size()) break;
      pick[i] = 0;
    }
    if (i == tasks.size()) break;
  }
  return undominated(std::move(pts));
}

class InterProperty : public ::testing::TestWithParam<int> {};

TEST_P(InterProperty, ExactMatchesBruteForce) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 61 + 19);
  const auto tasks = random_tasks(rng, rng.uniform_int(2, 4));
  const Front exact = exact_utilization_front(tasks);
  const Front brute = brute_utilization_front(tasks);
  ASSERT_EQ(exact.size(), brute.size());
  for (std::size_t i = 0; i < exact.size(); ++i) {
    EXPECT_NEAR(exact[i].cost, brute[i].cost, 1e-9);
    EXPECT_NEAR(exact[i].value, brute[i].value, 1e-9);
  }
}

TEST_P(InterProperty, ApproxCoversExact) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 67 + 23);
  const auto tasks = random_tasks(rng, rng.uniform_int(2, 5));
  const Front exact = exact_utilization_front(tasks);
  for (double eps : {0.44, 3.0}) {
    const Front approx = approx_utilization_front(tasks, eps);
    EXPECT_TRUE(eps_covers(exact, approx, eps)) << "eps=" << eps;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, InterProperty, ::testing::Range(0, 12));

TEST(Quantize, RoundsUp) {
  const auto items =
      quantize_items({{0.0, 5.0}, {0.3, 7.0}, {1.0, 9.0}}, 0.25);
  EXPECT_EQ(items[0].cost, 0);
  EXPECT_EQ(items[1].cost, 2);
  EXPECT_EQ(items[2].cost, 4);
}

}  // namespace
}  // namespace isex::pareto
