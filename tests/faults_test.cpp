// Fault-injection & graceful-degradation tests: zero-fault runs must
// reproduce the plain simulator bit-exactly, firm and soft policies must
// diverge exactly at the analytic first-miss instant, the sensitivity
// analysis' critical scaling factor alpha* must sandwich the simulated
// miss/no-miss boundary under both EDF and RMS, and the mode-change machinery
// must degrade and recover as configured.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <limits>
#include <vector>

#include "isex/customize/select_edf.hpp"
#include "isex/customize/select_rms.hpp"
#include "isex/faults/model.hpp"
#include "isex/faults/sensitivity.hpp"
#include "isex/rt/schedulability.hpp"
#include "isex/rt/simulator.hpp"
#include "isex/util/rng.hpp"

namespace isex {
namespace {

using rt::MissPolicy;
using rt::Policy;
using rt::SimOptions;
using rt::SimResult;
using rt::SimTask;

bool same_core_result(const SimResult& a, const SimResult& b) {
  if (a.all_met != b.all_met || a.busy_cycles != b.busy_cycles ||
      a.horizon != b.horizon || a.completed_jobs != b.completed_jobs ||
      a.misses.size() != b.misses.size())
    return false;
  for (std::size_t i = 0; i < a.misses.size(); ++i)
    if (a.misses[i].task != b.misses[i].task ||
        a.misses[i].job != b.misses[i].job ||
        a.misses[i].deadline != b.misses[i].deadline)
      return false;
  return true;
}

// --- zero-fault equivalence --------------------------------------------------

// A fully disabled fault model attached to the simulator must reproduce the
// plain run bit-exactly on the existing validation task-set generators (the
// same seeded families rt_test validates analysis against).
class ZeroFaultEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(ZeroFaultEquivalence, DisabledModelIsIdentityOnRandomSets) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 101 + 17);
  const int n = rng.uniform_int(2, 5);
  std::vector<SimTask> tasks;
  for (int i = 0; i < n; ++i) {
    const std::int64_t p = rng.uniform_int(4, 24);
    const std::int64_t c = rng.uniform_int(1, static_cast<int>(p));
    tasks.push_back({c, p});
  }
  const faults::FaultModel disabled;  // every knob at its identity value
  ASSERT_FALSE(disabled.any_enabled());
  for (const Policy pol : {Policy::kEdf, Policy::kRms}) {
    for (const bool stop : {false, true}) {
      SimOptions plain;
      plain.policy = pol;
      plain.stop_at_first_miss = stop;
      SimOptions injected = plain;
      injected.faults = &disabled;
      const auto a = rt::simulate(tasks, plain);
      const auto b = rt::simulate(tasks, injected);
      EXPECT_TRUE(same_core_result(a, b));
      EXPECT_TRUE(b.events.empty());
      // Degradation statistics are consistent with the recorded misses.
      std::int64_t missed = 0;
      for (auto m : b.missed_jobs) missed += m;
      EXPECT_EQ(missed == 0, b.all_met);
      for (auto aborted : b.aborted_jobs) EXPECT_EQ(aborted, 0);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ZeroFaultEquivalence, ::testing::Range(0, 40));

TEST(ZeroFault, FirmPolicyMatchesSoftOnSchedulableSets) {
  // Without misses there is nothing to abort: all policies coincide.
  const std::vector<SimTask> tasks{{2, 4}, {3, 6}};  // U = 1.0 under EDF
  SimOptions soft;
  soft.policy = Policy::kEdf;
  SimOptions firm = soft;
  firm.miss_policy = MissPolicy::kFirm;
  SimOptions mode = soft;
  mode.miss_policy = MissPolicy::kModeChange;
  const auto a = rt::simulate(tasks, soft);
  for (const auto& opts : {firm, mode}) {
    const auto b = rt::simulate(tasks, opts);
    EXPECT_TRUE(same_core_result(a, b));
    EXPECT_TRUE(b.events.empty());
  }
}

// --- firm vs soft divergence at the analytic first miss ----------------------

/// Synchronous-release EDF first-miss instant: smallest t in (0, horizon] with
/// processor demand sum_i floor(t / P_i) * C_i exceeding t.
std::int64_t analytic_first_miss_edf(const std::vector<SimTask>& tasks,
                                     std::int64_t horizon) {
  for (std::int64_t t = 1; t <= horizon; ++t) {
    std::int64_t demand = 0;
    for (const auto& task : tasks) demand += (t / task.period) * task.wcet;
    if (demand > t) return t;
  }
  return -1;
}

TEST(Degradation, FirmAndSoftDivergeExactlyAtFirstMissInstant) {
  // U = 3/4 + 2/6 = 1.083: overloaded. Demand-bound first miss at t = 12.
  const std::vector<SimTask> tasks{{3, 4}, {2, 6}};
  const std::int64_t first = analytic_first_miss_edf(tasks, 48);
  ASSERT_EQ(first, 12);

  SimOptions soft;
  soft.policy = Policy::kEdf;
  soft.horizon = 48;
  SimOptions firm = soft;
  firm.miss_policy = MissPolicy::kFirm;
  const auto s = rt::simulate(tasks, soft);
  const auto f = rt::simulate(tasks, firm);

  // Both record their first miss at the analytic instant...
  ASSERT_FALSE(s.misses.empty());
  ASSERT_FALSE(f.misses.empty());
  EXPECT_EQ(s.misses.front().deadline, first);
  EXPECT_EQ(f.misses.front().deadline, first);
  EXPECT_EQ(s.misses.front().task, f.misses.front().task);
  EXPECT_EQ(s.misses.front().job, f.misses.front().job);

  // ...and the firm abort happens exactly there. After it, the policies
  // diverge: firm never lets a job run past its deadline (responses bounded
  // by the period), while soft's late completions push responses beyond it.
  std::int64_t aborted = 0;
  for (auto a : f.aborted_jobs) aborted += a;
  EXPECT_GE(aborted, 1);
  ASSERT_FALSE(f.events.empty());
  EXPECT_EQ(f.events.front().kind, rt::DegradationEvent::Kind::kAbort);
  EXPECT_EQ(f.events.front().time, first);
  for (std::size_t i = 0; i < tasks.size(); ++i)
    EXPECT_LE(f.worst_response[i], tasks[i].period);
  bool soft_ran_late = false;
  for (std::size_t i = 0; i < tasks.size(); ++i)
    soft_ran_late = soft_ran_late || s.worst_response[i] > tasks[i].period;
  EXPECT_TRUE(soft_ran_late);
  EXPECT_LT(f.completed_jobs[1], s.completed_jobs[1]);  // dropped vs late-done
  for (auto a : s.aborted_jobs) EXPECT_EQ(a, 0);  // soft never aborts
}

// --- sensitivity analysis ----------------------------------------------------

/// A synthetic task set with hand-built configuration curves (large cycle
/// counts keep the integer-rounding error of inflated simulation negligible
/// against the alpha* sandwich margins).
rt::TaskSet synthetic_taskset() {
  rt::TaskSet ts;
  auto add = [&](const char* name, double period,
                 std::vector<select::Config> configs) {
    rt::Task t;
    t.name = name;
    t.period = period;
    t.configs = std::move(configs);
    ts.tasks.push_back(std::move(t));
  };
  add("a", 40'000, {{0, 30'000}, {10, 20'000}, {25, 12'000}});
  add("b", 60'000, {{0, 36'000}, {8, 27'000}, {20, 18'000}});
  add("c", 120'000, {{0, 48'000}, {12, 30'000}});
  return ts;
}

TEST(Sensitivity, AlphaStarSandwichesSimulatedFirstMissUnderEdf) {
  auto ts = synthetic_taskset();
  const auto sel = customize::select_edf(ts, 60.0);
  ASSERT_TRUE(sel.schedulable);
  const double alpha = faults::critical_scaling(ts, sel.assignment, Policy::kEdf);
  EXPECT_NEAR(alpha, 1.0 / sel.utilization, 1e-12);
  EXPECT_GT(alpha, 1.0);

  const auto sim_tasks = faults::to_sim_tasks(ts, sel.assignment);
  // Just above alpha*: the simulation records its first deadline miss.
  EXPECT_GT(faults::first_miss_instant(sim_tasks, Policy::kEdf, alpha * 1.01), 0);
  // Just below alpha*: no job ever misses over the hyperperiod.
  EXPECT_EQ(faults::first_miss_instant(sim_tasks, Policy::kEdf, alpha * 0.99), -1);
}

TEST(Sensitivity, AlphaStarSandwichesSimulatedFirstMissUnderRms) {
  auto ts = synthetic_taskset();
  ts.sort_by_period();
  const auto sel = customize::select_rms(ts, 60.0);
  ASSERT_TRUE(sel.schedulable);
  const double alpha = faults::critical_scaling(ts, sel.assignment, Policy::kRms);
  EXPECT_GT(alpha, 1.0);

  // The exact test is linear in a uniform scaling, so alpha* must equal the
  // reciprocal of the worst level-i load factor.
  std::vector<double> cycles, periods;
  for (std::size_t i = 0; i < ts.size(); ++i) {
    cycles.push_back(
        ts.tasks[i].configs[static_cast<std::size_t>(sel.assignment[i])].cycles);
    periods.push_back(ts.tasks[i].period);
  }
  double worst = 0;
  for (std::size_t i = 0; i < ts.size(); ++i)
    worst = std::max(worst,
                     rt::rms_load_factor(static_cast<int>(i), cycles, periods));
  EXPECT_NEAR(alpha, 1.0 / worst, 1e-6);

  const auto sim_tasks = faults::to_sim_tasks(ts, sel.assignment);
  EXPECT_GT(faults::first_miss_instant(sim_tasks, Policy::kRms, alpha * 1.01), 0);
  EXPECT_EQ(faults::first_miss_instant(sim_tasks, Policy::kRms, alpha * 0.99), -1);
}

TEST(Sensitivity, AlphaRobustSelectionBuysMarginWithArea) {
  auto ts = synthetic_taskset();
  ts.set_periods_for_utilization(1.4);  // software-only overload
  const auto rob =
      faults::alpha_robust_select(ts, ts.max_area(), 1.1, Policy::kEdf);
  ASSERT_TRUE(rob.nominal.schedulable);
  ASSERT_TRUE(rob.robust.schedulable);
  // The robust pick really tolerates the demanded inflation...
  EXPECT_GE(rob.alpha_star_robust, 1.1 - 1e-9);
  // ...and margin is never cheaper than the nominal optimum.
  EXPECT_GE(rob.area_overhead, -1e-9);
  EXPECT_GE(rob.alpha_star_robust, rob.alpha_star_nominal - 1e-9);
}

TEST(Sensitivity, RobustnessCostsArea) {
  auto ts = synthetic_taskset();
  ts.set_periods_for_utilization(1.4);
  const double nominal = faults::min_robust_area(ts, 1.0, Policy::kEdf);
  const double robust = faults::min_robust_area(ts, 1.1, Policy::kEdf);
  // Nominal schedulability needs CI area (sw-only U = 1.4 > 1), and a 10%
  // WCET margin needs strictly more (exact thresholds: 30 vs 42 adders).
  EXPECT_NEAR(nominal, 30.0, 0.5);
  EXPECT_NEAR(robust, 42.0, 0.5);
  // An impossible demand reports infeasibility instead of an area.
  EXPECT_EQ(faults::min_robust_area(ts, 100.0, Policy::kEdf), -1);
}

// --- fault models ------------------------------------------------------------

TEST(FaultModel, PerturbIsDeterministicPerJob) {
  faults::FaultModel fm;
  fm.overrun_probability = 0.5;
  fm.overrun_max_factor = 2.0;
  fm.max_release_jitter = 40;
  const auto a = fm.perturb(1, 7, 700, 1000, 1500);
  const auto b = fm.perturb(1, 7, 700, 1000, 1500);
  EXPECT_EQ(a.exec, b.exec);
  EXPECT_EQ(a.jitter, b.jitter);
  EXPECT_GE(a.exec, 1000);
  EXPECT_LE(a.exec, 2000);
  EXPECT_GE(a.jitter, 0);
  EXPECT_LE(a.jitter, 40);
  // A different seed re-rolls the stream.
  faults::FaultModel other = fm;
  other.seed += 1;
  bool differs = false;
  for (std::int64_t j = 0; j < 64 && !differs; ++j)
    differs = fm.perturb(0, j, 0, 1000, 1000).exec !=
              other.perturb(0, j, 0, 1000, 1000).exec;
  EXPECT_TRUE(differs);
}

TEST(FaultModel, CiUnavailabilityFallsBackToSoftwareCyclesInWindowOnly) {
  // U = 0.5 with the CI; the software fallback (120 > period) cannot finish.
  std::vector<SimTask> tasks{{50, 100, /*sw_wcet=*/120}};
  faults::FaultModel fm;
  fm.ci_faults.push_back({0, 200, 400});  // releases at 200 and 300 affected
  SimOptions so;
  so.policy = Policy::kEdf;
  so.horizon = 1000;
  so.faults = &fm;
  const auto r = rt::simulate(tasks, so);
  EXPECT_EQ(r.missed_jobs[0], 2);
  for (const auto& m : r.misses) {
    EXPECT_GT(m.deadline, 200);
    EXPECT_LE(m.deadline, 400 + 100);  // the fault cannot outlive its window
  }
  EXPECT_EQ(r.completed_jobs[0], 10);  // soft policy: late jobs still finish
  EXPECT_EQ(r.busy_cycles, 8 * 50 + 2 * 120);
}

TEST(FaultModel, StochasticOverrunIsSeededAndBounded) {
  std::vector<SimTask> tasks{{1000, 10'000}};
  faults::FaultModel fm;
  fm.overrun_probability = 1.0;
  fm.overrun_max_factor = 1.5;
  SimOptions so;
  so.policy = Policy::kEdf;
  so.horizon = 1'000'000;
  so.faults = &fm;
  const auto a = rt::simulate(tasks, so);
  const auto b = rt::simulate(tasks, so);
  EXPECT_EQ(a.busy_cycles, b.busy_cycles);  // same seed, same trace
  EXPECT_GT(a.busy_cycles, 100 * 1000);     // every job spiked
  EXPECT_LE(a.busy_cycles, 100 * 1500);     // bounded factor
  EXPECT_TRUE(a.all_met);                   // spikes fit inside the slack
}

TEST(FaultModel, ReleaseJitterDelaysButDeadlinesHold) {
  std::vector<SimTask> tasks{{30, 100}};
  faults::FaultModel fm;
  fm.max_release_jitter = 50;
  SimOptions so;
  so.policy = Policy::kEdf;
  so.horizon = 100'000;
  so.faults = &fm;
  const auto r = rt::simulate(tasks, so);
  // Worst-case completion: release + 50 jitter + 30 execution < deadline.
  EXPECT_TRUE(r.all_met);
  EXPECT_EQ(r.completed_jobs[0], 1000);
  EXPECT_EQ(r.busy_cycles, 1000 * 30);
  EXPECT_GT(r.worst_response[0], 30);  // some job actually jittered
  EXPECT_LE(r.worst_response[0], 80);
}

// --- mode-change policy ------------------------------------------------------

TEST(ModeChange, EntersFallbackAfterKMissesAndRecoversAfterCleanWindow) {
  // Nominal demand inflates to 125 > period 100: every nominal job misses.
  // The fallback configuration (30 -> inflated 75) is schedulable, so the
  // task oscillates: K=2 aborts, fallback entry, R=3 clean jobs, recovery.
  std::vector<SimTask> tasks{{50, 100, /*sw_wcet=*/0, /*fallback_wcet=*/30}};
  faults::FaultModel fm;
  fm.inflation = 2.5;
  SimOptions so;
  so.policy = Policy::kEdf;
  so.horizon = 2000;
  so.faults = &fm;
  so.miss_policy = MissPolicy::kModeChange;
  so.mode_change.miss_threshold = 2;
  so.mode_change.recovery_jobs = 3;
  const auto r = rt::simulate(tasks, so);

  ASSERT_GE(r.events.size(), 4u);
  // First two jobs abort at their deadlines; the second abort trips fallback.
  EXPECT_EQ(r.events[0].kind, rt::DegradationEvent::Kind::kAbort);
  EXPECT_EQ(r.events[0].time, 100);
  EXPECT_EQ(r.events[1].kind, rt::DegradationEvent::Kind::kAbort);
  EXPECT_EQ(r.events[1].time, 200);
  EXPECT_EQ(r.events[2].kind, rt::DegradationEvent::Kind::kEnterFallback);
  EXPECT_EQ(r.events[2].time, 200);
  // Three clean fallback jobs (released 200/300/400, each 75 cycles) recover
  // the task at the completion of the third.
  EXPECT_EQ(r.events[3].kind, rt::DegradationEvent::Kind::kRecover);
  EXPECT_EQ(r.events[3].time, 475);
  // After recovery, nominal jobs miss again: the cycle repeats.
  const auto again = std::find_if(
      r.events.begin() + 4, r.events.end(), [](const rt::DegradationEvent& e) {
        return e.kind == rt::DegradationEvent::Kind::kEnterFallback;
      });
  EXPECT_NE(again, r.events.end());
  EXPECT_GT(r.missed_jobs[0], 2);
  EXPECT_GT(r.completed_jobs[0], 0);
  EXPECT_EQ(r.missed_jobs[0], r.aborted_jobs[0]);  // every miss was an abort
}

TEST(ModeChange, WithoutDesignatedFallbackDegradationIsLoggedButIneffective) {
  std::vector<SimTask> tasks{{50, 100}};  // no fallback_wcet
  faults::FaultModel fm;
  fm.inflation = 2.5;
  SimOptions so;
  so.policy = Policy::kEdf;
  so.horizon = 1000;
  so.faults = &fm;
  so.miss_policy = MissPolicy::kModeChange;
  const auto r = rt::simulate(tasks, so);
  EXPECT_EQ(r.completed_jobs[0], 0);  // every job still aborts
  EXPECT_EQ(r.aborted_jobs[0], 10);
  bool entered = false;
  for (const auto& e : r.events)
    entered = entered || e.kind == rt::DegradationEvent::Kind::kEnterFallback;
  EXPECT_TRUE(entered);
}

// --- hyperperiod overflow guard ----------------------------------------------

TEST(Hyperperiod, SaturatesInsteadOfOverflowingOnAdversarialPeriods) {
  const std::int64_t big = std::numeric_limits<std::int64_t>::max() - 1;
  const std::int64_t max = std::numeric_limits<std::int64_t>::max();
  // Coprime near-INT64_MAX periods with the cap wide open: only the
  // __builtin_mul_overflow branch can save the lcm fold here.
  EXPECT_EQ(rt::hyperperiod({{1, big}, {1, big - 1}}, max), max);
  EXPECT_EQ(rt::hyperperiod({{1, (1LL << 62) + 1}, {1, (1LL << 62) - 1}}, max),
            max);
  // A single huge period saturates via the plain cap comparison.
  EXPECT_EQ(rt::hyperperiod({{1, big}}, 1'000'000'000), 1'000'000'000);
  // Small inputs keep their exact lcm.
  EXPECT_EQ(rt::hyperperiod({{1, 4}, {1, 6}}, 1000), 12);
  EXPECT_THROW(rt::hyperperiod({{1, 0}}, max), std::invalid_argument);
}

}  // namespace
}  // namespace isex
