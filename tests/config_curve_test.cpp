#include "isex/select/config_curve.hpp"

#include <gtest/gtest.h>

#include "test_util.hpp"

namespace isex::select {
namespace {

const hw::CellLibrary& lib() { return hw::CellLibrary::standard_018um(); }

ir::Program one_block_program(util::Rng& rng, int ops) {
  ir::Program p("t");
  const int b = p.add_block("bb0");
  p.block(b).dfg = isex::testing::random_dfg(rng, 4, ops, 0.08);
  p.set_root(p.stmt_loop(100, p.stmt_block(b)));
  return p;
}

TEST(DisjointPool, NoOverlapAndPositiveGain) {
  util::Rng rng(11);
  const auto d = isex::testing::random_dfg(rng, 4, 40, 0.1);
  auto cands = ise::enumerate_candidates(d, lib(), ise::EnumOptions{}, 0, 50);
  const auto pool = disjoint_pool(d, std::move(cands));
  auto covered = d.empty_set();
  for (const auto& c : pool) {
    EXPECT_GT(c.total_gain(), 0);
    EXPECT_FALSE(c.nodes.intersects(covered));
    covered |= c.nodes;
  }
}

class CurveProperty : public ::testing::TestWithParam<int> {};

TEST_P(CurveProperty, CurveIsAValidParetoStaircase) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 41 + 13);
  ir::Program p = one_block_program(rng, 50);
  const auto counts = p.wcet_counts(ir::Program::sum_cost(
      [](const ir::Node& n) { return lib().sw_cycles(n); }));
  const auto curve = build_config_curve(p, counts, lib(), CurveOptions{});
  ASSERT_GE(curve.points.size(), 1u);
  EXPECT_DOUBLE_EQ(curve.points.front().area, 0.0);
  for (std::size_t i = 1; i < curve.points.size(); ++i) {
    EXPECT_GT(curve.points[i].area, curve.points[i - 1].area);
    EXPECT_LT(curve.points[i].cycles, curve.points[i - 1].cycles);
  }
  // cycles_at is monotone non-increasing in the budget.
  double prev = curve.cycles_at(0);
  for (double a = 0; a <= curve.max_area() + 1; a += 1.0) {
    const double c = curve.cycles_at(a);
    EXPECT_LE(c, prev + 1e-9);
    prev = c;
  }
  EXPECT_DOUBLE_EQ(curve.cycles_at(1e18), curve.best_cycles());
}

TEST_P(CurveProperty, GainNeverExceedsBaseCycles) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 43 + 7);
  ir::Program p = one_block_program(rng, 30);
  const auto counts = p.wcet_counts(ir::Program::sum_cost(
      [](const ir::Node& n) { return lib().sw_cycles(n); }));
  const auto curve = build_config_curve(p, counts, lib(), CurveOptions{});
  for (const auto& pt : curve.points) {
    EXPECT_GT(pt.cycles, 0);
    EXPECT_LE(pt.cycles, curve.base_cycles());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CurveProperty, ::testing::Range(0, 10));

TEST(Curve, IsomorphicSharingNeverWorse) {
  // A program whose block repeats the same (a+b)<<c datapath 4 times: with
  // sharing, one implementation's area unlocks all four gains.
  ir::Program p("iso");
  const int b = p.add_block("bb0");
  auto& d = p.block(b).dfg;
  for (int k = 0; k < 4; ++k) {
    const auto x = d.add(ir::Opcode::kInput);
    const auto y = d.add(ir::Opcode::kInput);
    const auto m1 = d.add(ir::Opcode::kMul, {x, y});
    const auto m2 = d.add(ir::Opcode::kMul, {m1, y});
    const auto a2 = d.add(ir::Opcode::kAdd, {m2, x});
    d.mark_live_out(a2);
  }
  p.set_root(p.stmt_loop(10, p.stmt_block(b)));
  const auto counts = p.wcet_counts(ir::Program::sum_cost(
      [](const ir::Node& n) { return lib().sw_cycles(n); }));
  CurveOptions shared;
  CurveOptions solo;
  solo.share_isomorphic = false;
  const auto cs = build_config_curve(p, counts, lib(), shared);
  const auto cn = build_config_curve(p, counts, lib(), solo);
  // At every budget, sharing achieves at most the unshared cycle count.
  for (double a = 0; a <= cn.max_area(); a += 5)
    EXPECT_LE(cs.cycles_at(a), cn.cycles_at(a) + 1e-9);
  // And the max areas differ: sharing needs one implementation only.
  EXPECT_LT(cs.max_area(), cn.max_area());
}

}  // namespace
}  // namespace isex::select
