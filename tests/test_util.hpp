// Shared helpers for the test suite: seeded random DFG / task-set generators
// and a brute-force legal-subgraph enumerator used as ground truth.
#pragma once

#include <vector>

#include "isex/hw/estimate.hpp"
#include "isex/ir/dfg.hpp"
#include "isex/ise/candidate.hpp"
#include "isex/rt/task.hpp"
#include "isex/util/rng.hpp"

namespace isex::testing {

/// Random DAG with a realistic mix of valid ops and occasional invalid
/// (load/store/div) separators. Node operands always reference earlier nodes.
inline ir::Dfg random_dfg(util::Rng& rng, int num_inputs, int num_ops,
                          double invalid_prob = 0.1) {
  using ir::Opcode;
  static constexpr Opcode kValidOps[] = {
      Opcode::kAdd, Opcode::kSub,  Opcode::kMul, Opcode::kAnd,
      Opcode::kOr,  Opcode::kXor,  Opcode::kShl, Opcode::kShr,
      Opcode::kCmp, Opcode::kSelect};
  static constexpr Opcode kInvalidOps[] = {Opcode::kLoad, Opcode::kDiv};

  ir::Dfg dfg;
  std::vector<ir::NodeId> producers;
  for (int i = 0; i < num_inputs; ++i)
    producers.push_back(dfg.add(Opcode::kInput));
  for (int i = 0; i < num_ops; ++i) {
    const bool invalid = rng.chance(invalid_prob);
    Opcode op = invalid
                    ? kInvalidOps[static_cast<std::size_t>(rng.uniform_int(0, 1))]
                    : kValidOps[static_cast<std::size_t>(rng.uniform_int(0, 9))];
    const int arity = (op == Opcode::kLoad) ? 1 : (op == Opcode::kSelect ? 3 : 2);
    std::vector<ir::NodeId> operands;
    for (int a = 0; a < arity; ++a)
      operands.push_back(producers[static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<int>(producers.size()) - 1))]);
    producers.push_back(dfg.add(op, std::move(operands)));
  }
  // Sinks (no consumers) are live-out; also randomly expose a few values.
  for (int i = 0; i < dfg.num_nodes(); ++i) {
    if (!ir::produces_value(dfg.node(i).op)) continue;
    if (dfg.node(i).consumers.empty() || rng.chance(0.05)) dfg.mark_live_out(i);
  }
  return dfg;
}

/// All legal candidates by exhaustive 2^k subset enumeration over the valid
/// non-constant nodes (ground truth for the enumerators; keep k small).
inline std::vector<util::Bitset> brute_force_legal(const ir::Dfg& dfg,
                                                   const ise::Constraints& c) {
  std::vector<int> eligible;
  for (int i = 0; i < dfg.num_nodes(); ++i)
    if (ir::is_valid_for_ci(dfg.node(i).op) &&
        dfg.node(i).op != ir::Opcode::kConst)
      eligible.push_back(i);
  std::vector<util::Bitset> out;
  const auto k = eligible.size();
  for (std::uint64_t mask = 1; mask < (std::uint64_t{1} << k); ++mask) {
    util::Bitset s = dfg.empty_set();
    for (std::size_t b = 0; b < k; ++b)
      if (mask & (std::uint64_t{1} << b))
        s.set(static_cast<std::size_t>(eligible[b]));
    if (s.count() >= 2 && ise::is_legal(dfg, s, c)) out.push_back(std::move(s));
  }
  return out;
}

/// Random synthetic task set: each task gets a strictly-improving random
/// configuration curve (the structure select_edf/select_rms consume).
inline rt::TaskSet random_taskset(util::Rng& rng, int num_tasks,
                                  int max_configs) {
  rt::TaskSet ts;
  for (int i = 0; i < num_tasks; ++i) {
    rt::Task t;
    t.name = "T" + std::to_string(i);
    const double sw = rng.uniform_int(20, 400);
    t.period = sw * rng.uniform_real(1.5, 6.0);
    t.configs.push_back({0, sw});
    const int extra = rng.uniform_int(0, max_configs - 1);
    double area = 0;
    double cycles = sw;
    for (int j = 0; j < extra; ++j) {
      area += rng.uniform_int(1, 30);
      cycles *= rng.uniform_real(0.75, 0.98);
      t.configs.push_back({area, std::max(1.0, std::floor(cycles))});
    }
    ts.tasks.push_back(std::move(t));
  }
  return ts;
}

}  // namespace isex::testing
