// Optimization toolbox tests: knapsack DP vs brute force, set-partition
// enumeration vs Bell numbers.
#include <gtest/gtest.h>

#include <set>

#include "isex/opt/knapsack.hpp"
#include "isex/opt/set_partition.hpp"
#include "isex/util/rng.hpp"

namespace isex::opt {
namespace {

double brute_knapsack(const std::vector<KnapsackItem>& items, double budget) {
  const auto n = items.size();
  double best = 0;
  for (std::uint64_t mask = 0; mask < (std::uint64_t{1} << n); ++mask) {
    double area = 0, gain = 0;
    for (std::size_t i = 0; i < n; ++i)
      if (mask & (std::uint64_t{1} << i)) {
        area += items[i].area;
        gain += items[i].gain;
      }
    if (area <= budget + 1e-9) best = std::max(best, gain);
  }
  return best;
}

class KnapsackProperty : public ::testing::TestWithParam<int> {};

TEST_P(KnapsackProperty, ProfileMatchesBruteForceOnIntegerAreas) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 53 + 1);
  std::vector<KnapsackItem> items;
  const int n = rng.uniform_int(1, 12);
  double total = 0;
  for (int i = 0; i < n; ++i) {
    KnapsackItem it{static_cast<double>(rng.uniform_int(0, 15)),
                    static_cast<double>(rng.uniform_int(0, 100))};
    total += it.area;
    items.push_back(it);
  }
  // Integer grid = exact.
  const auto profile = knapsack_profile(items, total, 1.0);
  for (int budget = 0; budget <= static_cast<int>(total); budget += 3) {
    EXPECT_DOUBLE_EQ(profile[static_cast<std::size_t>(budget)],
                     brute_knapsack(items, budget))
        << "budget " << budget;
  }
}

TEST_P(KnapsackProperty, SelectReconstructionIsConsistent) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 59 + 2);
  std::vector<KnapsackItem> items;
  const int n = rng.uniform_int(1, 12);
  for (int i = 0; i < n; ++i)
    items.push_back({static_cast<double>(rng.uniform_int(0, 12)),
                     static_cast<double>(rng.uniform_int(0, 50))});
  const double budget = rng.uniform_int(0, 40);
  const auto chosen = knapsack_select(items, budget, 1.0);
  double area = 0, gain = 0;
  std::set<int> uniq(chosen.begin(), chosen.end());
  EXPECT_EQ(uniq.size(), chosen.size());
  for (int i : chosen) {
    area += items[static_cast<std::size_t>(i)].area;
    gain += items[static_cast<std::size_t>(i)].gain;
  }
  EXPECT_LE(area, budget + 1e-9);
  EXPECT_DOUBLE_EQ(gain, brute_knapsack(items, budget));
}

INSTANTIATE_TEST_SUITE_P(Seeds, KnapsackProperty, ::testing::Range(0, 20));

TEST(Knapsack, GridCellsRoundsUp) {
  EXPECT_EQ(grid_cells(0.0, 0.25), 0);
  EXPECT_EQ(grid_cells(0.25, 0.25), 1);
  EXPECT_EQ(grid_cells(0.26, 0.25), 2);
  EXPECT_EQ(grid_cells(10.0, 1.0), 10);
}

TEST(SetPartition, CountsAreBellNumbers) {
  for (int n = 1; n <= 8; ++n) {
    const auto count = for_each_partition(
        n, [](const std::vector<int>&, int) { return true; });
    EXPECT_EQ(count, bell_number(n)) << "n=" << n;
  }
}

TEST(SetPartition, BellNumbers) {
  EXPECT_EQ(bell_number(0), 1u);
  EXPECT_EQ(bell_number(1), 1u);
  EXPECT_EQ(bell_number(3), 5u);
  EXPECT_EQ(bell_number(5), 52u);
  EXPECT_EQ(bell_number(10), 115975u);
  EXPECT_EQ(bell_number(12), 4213597u);
}

TEST(SetPartition, AllPartitionsDistinctAndValid) {
  std::set<std::vector<int>> seen;
  for_each_partition(5, [&](const std::vector<int>& a, int groups) {
    EXPECT_TRUE(seen.insert(a).second);
    // Restricted growth: group ids form a prefix 0..groups-1.
    int max_g = -1;
    for (int g : a) {
      EXPECT_LE(g, max_g + 1);
      max_g = std::max(max_g, g);
    }
    EXPECT_EQ(max_g + 1, groups);
    return true;
  });
  EXPECT_EQ(seen.size(), 52u);
}

TEST(SetPartition, EarlyStopRespected) {
  int visits = 0;
  for_each_partition(8, [&](const std::vector<int>&, int) {
    return ++visits < 10;
  });
  EXPECT_EQ(visits, 10);
  const auto n = for_each_partition(
      8, [](const std::vector<int>&, int) { return true; }, 25);
  EXPECT_EQ(n, 25u);
}

}  // namespace
}  // namespace isex::opt
