// isex::obs — registry semantics, span nesting, exporter parse-back,
// thread-safety smoke, and the tracing-on/off bit-identical guard.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cctype>
#include <cstdint>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "isex/customize/select_edf.hpp"
#include "isex/customize/select_rms.hpp"
#include "isex/obs/metrics.hpp"
#include "isex/obs/trace.hpp"
#include "isex/rt/simulator.hpp"
#include "isex/util/stopwatch.hpp"
#include "isex/workloads/tasks.hpp"

namespace isex {
namespace {

// --- minimal JSON reader for exporter parse-back -----------------------------
//
// Validates syntax and walks the tree; just enough to assert the Chrome trace
// export is well-formed JSON (numbers, strings with escapes, nesting) without
// depending on an external parser.
class JsonReader {
 public:
  explicit JsonReader(std::string text) : s_(std::move(text)) {}

  /// Parses one complete value and requires trailing whitespace only.
  bool valid() {
    pos_ = 0;
    objects_ = 0;
    if (!value()) return false;
    ws();
    return pos_ == s_.size();
  }
  /// Number of JSON objects parsed by the last valid() call.
  int objects() const { return objects_; }

 private:
  void ws() {
    while (pos_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[pos_])))
      ++pos_;
  }
  bool lit(const char* t) {
    const std::size_t n = std::char_traits<char>::length(t);
    if (s_.compare(pos_, n, t) != 0) return false;
    pos_ += n;
    return true;
  }
  bool string() {
    if (s_[pos_] != '"') return false;
    ++pos_;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) return false;
        const char e = s_[pos_];
        if (e == 'u') {
          for (int i = 0; i < 4; ++i)
            if (++pos_ >= s_.size() ||
                !std::isxdigit(static_cast<unsigned char>(s_[pos_])))
              return false;
        } else if (std::string_view("\"\\/bfnrt").find(e) ==
                   std::string_view::npos) {
          return false;
        }
      }
      ++pos_;
    }
    if (pos_ >= s_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }
  bool number() {
    const std::size_t start = pos_;
    if (pos_ < s_.size() && s_[pos_] == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-'))
      ++pos_;
    return pos_ > start;
  }
  bool value() {
    ws();
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': {
        ++objects_;
        ++pos_;
        ws();
        if (pos_ < s_.size() && s_[pos_] == '}') return ++pos_, true;
        while (true) {
          ws();
          if (!string()) return false;
          ws();
          if (pos_ >= s_.size() || s_[pos_] != ':') return false;
          ++pos_;
          if (!value()) return false;
          ws();
          if (pos_ < s_.size() && s_[pos_] == ',') { ++pos_; continue; }
          break;
        }
        if (pos_ >= s_.size() || s_[pos_] != '}') return false;
        return ++pos_, true;
      }
      case '[': {
        ++pos_;
        ws();
        if (pos_ < s_.size() && s_[pos_] == ']') return ++pos_, true;
        while (true) {
          if (!value()) return false;
          ws();
          if (pos_ < s_.size() && s_[pos_] == ',') { ++pos_; continue; }
          break;
        }
        if (pos_ >= s_.size() || s_[pos_] != ']') return false;
        return ++pos_, true;
      }
      case '"':
        return string();
      case 't':
        return lit("true");
      case 'f':
        return lit("false");
      case 'n':
        return lit("null");
      default:
        return number();
    }
  }

  std::string s_;
  std::size_t pos_ = 0;
  int objects_ = 0;
};

TEST(JsonReaderTest, AcceptsAndRejects) {
  EXPECT_TRUE(JsonReader(R"({"a": [1, -2.5e3, "x\n\"y\u00e9"], "b": {}})").valid());
  EXPECT_FALSE(JsonReader(R"({"a": )").valid());
  EXPECT_FALSE(JsonReader(R"({"a": 1} trailing)").valid());
  EXPECT_FALSE(JsonReader("{\"bad\": \"\\q\"}").valid());
}

// --- registry ----------------------------------------------------------------

TEST(MetricsTest, CounterGetOrCreateIsStable) {
  auto& reg = obs::Registry::global();
  auto& a = reg.counter("test.obs.counter_a");
  auto& a2 = reg.counter("test.obs.counter_a");
  EXPECT_EQ(&a, &a2);
  a.reset();
  a.add();
  a.add(41);
  EXPECT_EQ(a.get(), 42u);
  const auto snap = reg.snapshot();
  EXPECT_EQ(snap.counters.at("test.obs.counter_a"), 42u);
}

TEST(MetricsTest, GaugeHoldsLastValue) {
  auto& g = obs::Registry::global().gauge("test.obs.gauge");
  g.set(1.5);
  g.set(-3.25);
  EXPECT_DOUBLE_EQ(g.get(), -3.25);
}

TEST(MetricsTest, MacrosFeedTheGlobalRegistry) {
  obs::Registry::global().counter("test.obs.macro_counter").reset();
  for (int i = 0; i < 5; ++i) ISEX_COUNT("test.obs.macro_counter");
  ISEX_COUNT_ADD("test.obs.macro_counter", 10);
  // In a -DISEX_NO_OBS build the macros are `((void)0)` and must leave the
  // counter untouched; otherwise they add through the cached reference.
  const std::uint64_t expected = ISEX_OBS_ENABLED ? 15u : 0u;
  EXPECT_EQ(obs::Registry::global().counter("test.obs.macro_counter").get(),
            expected);
}

TEST(MetricsTest, Pow2HistogramBuckets) {
  obs::Histogram h;
  h.record(0);
  h.record(1);
  h.record(5);
  h.record(5);
  h.record(1000);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.sum(), 1011);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 1000);
  const auto buckets = h.buckets();
  ASSERT_EQ(buckets.size(), 4u);  // 0, 1, [4,7], [512,1023]
  EXPECT_EQ(buckets[0].upper_bound, 0);
  EXPECT_EQ(buckets[0].count, 1u);
  EXPECT_EQ(buckets[1].upper_bound, 1);
  EXPECT_EQ(buckets[2].upper_bound, 7);
  EXPECT_EQ(buckets[2].count, 2u);
  EXPECT_EQ(buckets[3].upper_bound, 1023);
}

TEST(MetricsTest, ExplicitBoundsHistogram) {
  obs::Histogram h({10, 100});
  h.record(10);   // first bucket (inclusive bound)
  h.record(11);   // second bucket
  h.record(1000000);  // overflow bucket
  const auto buckets = h.buckets();
  ASSERT_EQ(buckets.size(), 3u);
  EXPECT_EQ(buckets[0].upper_bound, 10);
  EXPECT_EQ(buckets[0].count, 1u);
  EXPECT_EQ(buckets[1].upper_bound, 100);
  EXPECT_EQ(buckets[1].count, 1u);
  EXPECT_EQ(buckets[2].upper_bound, INT64_MAX);
  EXPECT_EQ(buckets[2].count, 1u);
}

TEST(MetricsTest, RegistryJsonParsesBack) {
  auto& reg = obs::Registry::global();
  reg.counter("test.obs.json \"quoted\"\n").add(7);
  reg.gauge("test.obs.json_gauge").set(2.5);
  reg.histogram("test.obs.json_hist").record(3);
  std::ostringstream os;
  reg.write_json(os);
  JsonReader r(os.str());
  EXPECT_TRUE(r.valid()) << os.str();
  EXPECT_NE(os.str().find("test.obs.json \\\"quoted\\\"\\n"), std::string::npos);
}

TEST(MetricsTest, ResetZeroesButKeepsReferencesValid) {
  auto& reg = obs::Registry::global();
  auto& c = reg.counter("test.obs.reset_me");
  c.add(9);
  reg.reset();
  EXPECT_EQ(c.get(), 0u);
  c.add(2);
  EXPECT_EQ(reg.snapshot().counters.at("test.obs.reset_me"), 2u);
}

// --- trace buffer and spans --------------------------------------------------

class TraceBufferTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto& tb = obs::TraceBuffer::global();
    tb.clear();
    tb.set_capacity(1 << 20);
    tb.set_enabled(true);
  }
  void TearDown() override {
    obs::TraceBuffer::global().set_enabled(false);
    obs::TraceBuffer::global().clear();
  }
};

TEST_F(TraceBufferTest, SpanNestingRecordsContainedIntervals) {
  {
    obs::Span outer("outer", "test");
    outer.arg("k", "v");
    {
      obs::Span inner("inner", "test");
    }
  }
  const auto events = obs::TraceBuffer::global().events();
  ASSERT_EQ(events.size(), 2u);
  // Spans close inner-first.
  EXPECT_EQ(events[0].name, "inner");
  EXPECT_EQ(events[1].name, "outer");
  const auto& inner = events[0];
  const auto& outer = events[1];
  EXPECT_GE(inner.ts, outer.ts);
  EXPECT_LE(inner.ts + inner.dur, outer.ts + outer.dur);
  ASSERT_EQ(outer.args.size(), 1u);
  EXPECT_EQ(outer.args[0].first, "k");
  EXPECT_EQ(outer.args[0].second, "v");
}

TEST_F(TraceBufferTest, DisabledBufferRecordsNothing) {
  obs::TraceBuffer::global().set_enabled(false);
  {
    obs::Span s("ignored", "test");
    ISEX_SPAN("ignored_macro");
  }
  obs::trace_instant("ignored", "test", obs::kSimPid, 0, 5);
  EXPECT_EQ(obs::TraceBuffer::global().size(), 0u);
}

TEST_F(TraceBufferTest, OverflowDropsAndCounts) {
  auto& tb = obs::TraceBuffer::global();
  tb.clear();
  tb.set_capacity(4);
  for (int i = 0; i < 10; ++i)
    obs::trace_instant("e", "test", obs::kSimPid, 0, i);
  EXPECT_EQ(tb.size(), 4u);
  EXPECT_EQ(tb.dropped(), 6u);
  tb.set_capacity(1 << 20);
}

TEST_F(TraceBufferTest, ChromeJsonParsesBackWithBothTimelines) {
  auto& tb = obs::TraceBuffer::global();
  tb.set_thread_name(obs::kSimPid, 0, "crc32");
  { obs::Span s("wall \"span\"", "test"); }
  obs::trace_complete("crc32", "sim.exec", obs::kSimPid, 0, 100, 50,
                      {{"job", "0"}});
  obs::trace_instant("miss", "sim", obs::kSimPid, 0, 150);
  std::ostringstream os;
  tb.write_chrome_json(os);
  const std::string json = os.str();
  JsonReader r(json);
  EXPECT_TRUE(r.valid()) << json;
  // 3 events + >= 3 metadata records (2 process names, 1 thread name), each
  // an object with an args object inside.
  EXPECT_GE(r.objects(), 6);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"i\""), std::string::npos);
  EXPECT_NE(json.find("\"wall \\\"span\\\"\""), std::string::npos);
  EXPECT_NE(json.find("\"crc32\""), std::string::npos);
}

TEST_F(TraceBufferTest, CsvExportEscapesAndRoundsTrips) {
  obs::trace_complete("a,b", "test\"cat", obs::kSimPid, 3, 7, 2);
  std::ostringstream os;
  obs::TraceBuffer::global().write_csv(os);
  const std::string csv = os.str();
  EXPECT_NE(csv.find("\"a,b\""), std::string::npos);
  EXPECT_NE(csv.find("\"test\"\"cat\""), std::string::npos);
  // Header + one row.
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 2);
}

TEST_F(TraceBufferTest, StopwatchAnnotatePublishesMatchingSpan) {
  util::Stopwatch sw;
  volatile int sink = 0;
  for (int i = 0; i < 1000; ++i) sink = sink + i;
  sw.annotate("test.stopwatch");
  const auto events = obs::TraceBuffer::global().events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name, "test.stopwatch");
  EXPECT_EQ(events[0].pid, obs::kWallPid);
  // The span and seconds() read the same clock, so the recorded duration can
  // never exceed a later reading.
  EXPECT_LE(static_cast<double>(events[0].dur) * 1e-9, sw.seconds());
  EXPECT_GE(events[0].dur, 0);
}

TEST_F(TraceBufferTest, ThreadSafetySmoke) {
  auto& tb = obs::TraceBuffer::global();
  auto& c = obs::Registry::global().counter("test.obs.mt");
  c.reset();
  constexpr int kThreads = 8, kIters = 5000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t)
    workers.emplace_back([&, t] {
      for (int i = 0; i < kIters; ++i) {
        c.add();
        if (i % 50 == 0)
          obs::trace_instant("mt", "test", obs::kSimPid, t, i);
      }
    });
  for (auto& w : workers) w.join();
  EXPECT_EQ(c.get(), static_cast<std::uint64_t>(kThreads) * kIters);
  EXPECT_EQ(tb.size() + tb.dropped(),
            static_cast<std::uint64_t>(kThreads) * (kIters / 50));
  std::ostringstream os;
  tb.write_chrome_json(os);
  EXPECT_TRUE(JsonReader(os.str()).valid());
}

// --- tracing must not perturb results ----------------------------------------

TEST(ObsInvarianceTest, SelectionBitIdenticalWithTracingOnAndOff) {
  auto ts = workloads::make_taskset({"crc32", "sha"}, 1.02);
  ts.sort_by_period();
  const double budget = 0.5 * ts.max_area();

  auto& tb = obs::TraceBuffer::global();
  tb.clear();
  tb.set_enabled(false);
  const auto edf_off = customize::select_edf(ts, budget);
  const auto rms_off = customize::select_rms(ts, budget);

  tb.set_enabled(true);
  const auto edf_on = customize::select_edf(ts, budget);
  const auto rms_on = customize::select_rms(ts, budget);
  tb.set_enabled(false);
  tb.clear();

  EXPECT_EQ(edf_on.assignment, edf_off.assignment);
  EXPECT_EQ(edf_on.utilization, edf_off.utilization);  // bit-identical
  EXPECT_EQ(edf_on.area_used, edf_off.area_used);
  EXPECT_EQ(edf_on.schedulable, edf_off.schedulable);
  EXPECT_EQ(rms_on.assignment, rms_off.assignment);
  EXPECT_EQ(rms_on.utilization, rms_off.utilization);
  EXPECT_EQ(rms_on.schedulable, rms_off.schedulable);
}

TEST(ObsInvarianceTest, SimulationBitIdenticalWithTracingOnAndOff) {
  std::vector<rt::SimTask> tasks = {{3, 10}, {4, 15}, {5, 30}};
  rt::SimOptions so;
  so.horizon = 300;

  auto& tb = obs::TraceBuffer::global();
  tb.clear();
  tb.set_enabled(false);
  const auto off = rt::simulate(tasks, so);
  tb.set_enabled(true);
  const auto on = rt::simulate(tasks, so);
  tb.set_enabled(false);

  EXPECT_EQ(on.completed_jobs, off.completed_jobs);
  EXPECT_EQ(on.missed_jobs, off.missed_jobs);
  EXPECT_EQ(on.busy_cycles, off.busy_cycles);
  EXPECT_EQ(on.worst_response, off.worst_response);
  EXPECT_EQ(on.all_met, off.all_met);
  // The traced run produced schedule events on the sim timeline (unless the
  // simulator's instrumentation was compiled out with ISEX_NO_OBS).
  if (ISEX_OBS_ENABLED)
    EXPECT_GT(tb.size(), 0u);
  else
    EXPECT_EQ(tb.size(), 0u);
  tb.clear();
}

}  // namespace
}  // namespace isex
