#include "isex/util/bitset.hpp"

#include <gtest/gtest.h>

#include <set>

#include "isex/util/rng.hpp"

namespace isex::util {
namespace {

TEST(Bitset, StartsEmpty) {
  Bitset b(130);
  EXPECT_EQ(b.count(), 0u);
  EXPECT_TRUE(b.none());
  EXPECT_FALSE(b.any());
  for (std::size_t i = 0; i < 130; ++i) EXPECT_FALSE(b.test(i));
}

TEST(Bitset, SetResetTest) {
  Bitset b(100);
  b.set(0);
  b.set(63);
  b.set(64);
  b.set(99);
  EXPECT_EQ(b.count(), 4u);
  EXPECT_TRUE(b.test(63));
  EXPECT_TRUE(b.test(64));
  b.reset(63);
  EXPECT_FALSE(b.test(63));
  EXPECT_EQ(b.count(), 3u);
}

TEST(Bitset, SetAlgebra) {
  Bitset a(70), b(70);
  a.set(1);
  a.set(65);
  b.set(65);
  b.set(2);
  EXPECT_EQ((a & b).to_vector(), std::vector<int>{65});
  EXPECT_EQ((a | b).to_vector(), (std::vector<int>{1, 2, 65}));
  EXPECT_EQ((a - b).to_vector(), std::vector<int>{1});
  EXPECT_TRUE(a.intersects(b));
  b.reset(65);
  EXPECT_FALSE(a.intersects(b));
}

TEST(Bitset, SubsetRelation) {
  Bitset a(10), b(10);
  a.set(3);
  b.set(3);
  b.set(7);
  EXPECT_TRUE(a.is_subset_of(b));
  EXPECT_FALSE(b.is_subset_of(a));
  EXPECT_TRUE(a.is_subset_of(a));
}

TEST(Bitset, ForEachVisitsAscending) {
  Bitset b(200);
  b.set(5);
  b.set(64);
  b.set(199);
  std::vector<std::size_t> seen;
  b.for_each([&](std::size_t i) { seen.push_back(i); });
  EXPECT_EQ(seen, (std::vector<std::size_t>{5, 64, 199}));
}

TEST(Bitset, EqualityAndHash) {
  Bitset a(90), b(90);
  a.set(10);
  b.set(10);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.hash(), b.hash());
  b.set(11);
  EXPECT_NE(a, b);
}

// Property: set algebra agrees with std::set on random data.
class BitsetRandom : public ::testing::TestWithParam<int> {};

TEST_P(BitsetRandom, MatchesStdSet) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  const std::size_t n = 150;
  Bitset a(n), b(n);
  std::set<int> sa, sb;
  for (int i = 0; i < 60; ++i) {
    const int x = rng.uniform_int(0, static_cast<int>(n) - 1);
    const int y = rng.uniform_int(0, static_cast<int>(n) - 1);
    a.set(static_cast<std::size_t>(x));
    sa.insert(x);
    b.set(static_cast<std::size_t>(y));
    sb.insert(y);
  }
  std::set<int> su, si, sd;
  std::set_union(sa.begin(), sa.end(), sb.begin(), sb.end(),
                 std::inserter(su, su.end()));
  std::set_intersection(sa.begin(), sa.end(), sb.begin(), sb.end(),
                        std::inserter(si, si.end()));
  std::set_difference(sa.begin(), sa.end(), sb.begin(), sb.end(),
                      std::inserter(sd, sd.end()));
  auto as_set = [](const Bitset& x) {
    auto v = x.to_vector();
    return std::set<int>(v.begin(), v.end());
  };
  EXPECT_EQ(as_set(a | b), su);
  EXPECT_EQ(as_set(a & b), si);
  EXPECT_EQ(as_set(a - b), sd);
  EXPECT_EQ(a.count(), sa.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, BitsetRandom, ::testing::Range(0, 10));

}  // namespace
}  // namespace isex::util
