// Whole-suite sweep: every benchmark kernel flows through the full pipeline
// (WCET analysis, profiling, identification, selection, MLGP, codegen
// functional verification). One TEST_P instance per kernel.
#include <gtest/gtest.h>

#include "isex/codegen/schedule.hpp"
#include "isex/mlgp/mlgp.hpp"
#include "isex/select/config_curve.hpp"
#include "isex/workloads/workloads.hpp"

namespace isex::workloads {
namespace {

const hw::CellLibrary& lib() { return hw::CellLibrary::standard_018um(); }

class BenchmarkSweep : public ::testing::TestWithParam<std::string> {};

TEST_P(BenchmarkSweep, WcetAndProfileAreConsistent) {
  auto prog = make_benchmark(GetParam());
  const auto cost = ir::Program::sum_cost(
      [](const ir::Node& n) { return lib().sw_cycles(n); });
  const double wcet = prog.wcet(cost);
  const double profiled = prog.profile(cost);
  EXPECT_GT(wcet, 0);
  EXPECT_GT(profiled, 0);
  // The WCET path takes max branches; the profile averages them.
  EXPECT_GE(wcet, profiled - 1e-6) << GetParam();
  // Block counts on the WCET path never exceed structural bounds.
  const auto counts = prog.wcet_counts(cost);
  double recomputed = 0;
  for (int b = 0; b < prog.num_blocks(); ++b)
    recomputed += cost(b, prog.block(b)) *
                  static_cast<double>(counts[static_cast<std::size_t>(b)]);
  EXPECT_NEAR(recomputed, wcet, 1e-6 * wcet + 1e-9);
}

TEST_P(BenchmarkSweep, CurveIsValidAndCiLibraryLegal) {
  auto prog = make_benchmark(GetParam());
  const auto cost = ir::Program::sum_cost(
      [](const ir::Node& n) { return lib().sw_cycles(n); });
  const auto counts = prog.wcet_counts(cost);
  select::CurveOptions opts;
  opts.enum_opts.max_candidates = 8000;  // keep the sweep fast
  const auto curve = select::build_config_curve(prog, counts, lib(), opts);
  ASSERT_GE(curve.points.size(), 1u);
  EXPECT_DOUBLE_EQ(curve.points.front().area, 0);
  for (std::size_t i = 1; i < curve.points.size(); ++i) {
    EXPECT_GT(curve.points[i].area, curve.points[i - 1].area);
    EXPECT_LT(curve.points[i].cycles, curve.points[i - 1].cycles);
    EXPECT_GT(curve.points[i].cycles, 0);
  }
}

TEST_P(BenchmarkSweep, MlgpSelectionsVerifyFunctionally) {
  auto prog = make_benchmark(GetParam());
  const auto cost = ir::Program::sum_cost(
      [](const ir::Node& n) { return lib().sw_cycles(n); });
  prog.profile(cost);
  // Hottest block only (the sweep runs for every kernel).
  int hot = 0;
  double best = -1;
  for (int b = 0; b < prog.num_blocks(); ++b) {
    const double w = cost(b, prog.block(b)) *
                     static_cast<double>(prog.block(b).exec_count);
    if (w > best) {
      best = w;
      hot = b;
    }
  }
  const auto& dfg = prog.block(hot).dfg;
  util::Rng rng(3);
  const auto cis = mlgp::generate_for_block(dfg, lib(), mlgp::MlgpOptions{}, rng);
  std::vector<util::Bitset> sets;
  for (const auto& c : cis) sets.push_back(c.nodes);
  ASSERT_NO_THROW({
    const auto block = codegen::lower(dfg, sets);
    std::vector<std::int64_t> inputs;
    util::Rng vals(11);
    for (int k = 0; k < dfg.num_nodes(); ++k)
      inputs.push_back(vals.uniform_i64(-5000, 5000));
    const auto sw = ir::evaluate(dfg, inputs);
    const auto hw = codegen::execute(dfg, block, inputs);
    for (int v = 0; v < dfg.num_nodes(); ++v)
      if (ir::produces_value(dfg.node(v).op))
        ASSERT_EQ(sw[static_cast<std::size_t>(v)],
                  hw[static_cast<std::size_t>(v)])
            << GetParam() << " node " << v;
  }) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(
    AllKernels, BenchmarkSweep, ::testing::ValuesIn(benchmark_names()),
    [](const ::testing::TestParamInfo<std::string>& info) {
      std::string name = info.param;
      for (char& c : name)
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      return name;
    });

}  // namespace
}  // namespace isex::workloads
